package drtree_test

import (
	"testing"

	"drtree"
)

// TestFacadeTreeRoundTrip exercises the public overlay API end to end.
func TestFacadeTreeRoundTrip(t *testing.T) {
	tree, err := drtree.NewTree(drtree.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		f := drtree.R2(float64(i*10), 0, float64(i*10)+15, 20)
		if _, err := tree.Join(drtree.ProcID(i), f); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := tree.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	d, err := tree.Publish(3, drtree.Point{35, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) == 0 {
		t.Fatal("no deliveries")
	}
	if _, err := tree.Leave(5); err != nil {
		t.Fatal(err)
	}
	if err := tree.Crash(7); err != nil {
		t.Fatal(err)
	}
	tree.Stabilize()
	if err := tree.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 10 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

// TestFacadeBrokerRoundTrip exercises the public pub/sub API.
func TestFacadeBrokerRoundTrip(t *testing.T) {
	space, err := drtree.NewSpace("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	broker, err := drtree.NewBroker(space, drtree.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := drtree.ParseFilter("x in [0, 10] && y in [0, 10]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Subscribe(1, f); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.SubscribeExpr(2, "x in [5, 20] && y in [5, 20]"); err != nil {
		t.Fatal(err)
	}
	n, err := broker.Publish(1, drtree.Event{"x": 7, "y": 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 2 || len(n.FalseNegatives) != 0 {
		t.Fatalf("notification: %+v", n)
	}
}

// TestFacadeRectConstructors covers the geometry constructors.
func TestFacadeRectConstructors(t *testing.T) {
	r := drtree.R2(0, 0, 5, 5)
	if !r.ContainsPoint(drtree.Point{2, 2}) {
		t.Fatal("R2 rect must contain interior point")
	}
	nd, err := drtree.NewRect([]float64{0, 0, 0}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Dims() != 3 {
		t.Fatalf("Dims = %d", nd.Dims())
	}
	if _, err := drtree.NewRect([]float64{1}, []float64{0}); err == nil {
		t.Fatal("inverted bounds must error")
	}
}
