package drtree_test

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"drtree"
)

// TestFacadeTreeRoundTrip exercises the concrete sequential engine
// through the public API end to end.
func TestFacadeTreeRoundTrip(t *testing.T) {
	tree, err := drtree.NewTree(drtree.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		f := drtree.R2(float64(i*10), 0, float64(i*10)+15, 20)
		if err := tree.Join(drtree.ProcID(i), f); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := tree.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	d, err := tree.Publish(3, drtree.Point{35, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) == 0 {
		t.Fatal("no deliveries")
	}
	if err := tree.Leave(5); err != nil {
		t.Fatal(err)
	}
	if err := tree.Crash(7); err != nil {
		t.Fatal(err)
	}
	tree.Stabilize()
	if err := tree.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 10 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

// TestOpenAllEngines drives the same tiny scenario through Open for
// every engine kind, using only the Engine interface.
func TestOpenAllEngines(t *testing.T) {
	for _, kind := range []drtree.EngineKind{drtree.EngineCore, drtree.EngineProto, drtree.EngineLive} {
		t.Run(string(kind), func(t *testing.T) {
			eng, err := drtree.Open(drtree.WithEngine(kind), drtree.WithFanout(2, 4), drtree.WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			for i := 1; i <= 8; i++ {
				f := drtree.R2(float64(i*10), 0, float64(i*10)+15, 20)
				if err := eng.Join(drtree.ProcID(i), f); err != nil {
					t.Fatalf("join %d: %v", i, err)
				}
			}
			if st := eng.Stabilize(); !st.Converged {
				t.Fatalf("stabilize did not converge: %+v", st)
			}
			if err := eng.CheckLegal(); err != nil {
				t.Fatal(err)
			}
			if eng.Len() != 8 {
				t.Fatalf("Len = %d", eng.Len())
			}
			if root, h := eng.Root(); root == drtree.NoProc || h < 0 {
				t.Fatalf("no root: (%d, %d)", root, h)
			}
			d, err := eng.Publish(3, drtree.Point{35, 10})
			if err != nil {
				t.Fatal(err)
			}
			if fn := drtree.FalseNegatives(eng, d, drtree.Point{35, 10}); len(fn) != 0 {
				t.Fatalf("engine %s: matching subscribers %v missed %+v", kind, fn, d)
			}
			batch := []drtree.Publication{
				{Producer: 3, Event: drtree.Point{35, 10}},
				{Producer: 5, Event: drtree.Point{62, 10}},
			}
			ds, err := eng.PublishBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds) != len(batch) {
				t.Fatalf("batch returned %d deliveries", len(ds))
			}
			for k := range ds {
				if fn := drtree.FalseNegatives(eng, ds[k], batch[k].Event); len(fn) != 0 {
					t.Fatalf("engine %s batch %d: matching subscribers %v missed %+v", kind, k, fn, ds[k])
				}
			}
			if err := eng.Crash(2); err != nil {
				t.Fatal(err)
			}
			if st := eng.Stabilize(); !st.Converged {
				t.Fatalf("post-crash stabilize did not converge: %+v", st)
			}
			if err := eng.CheckLegal(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenOptionValidation covers option errors and capability
// narrowing.
func TestOpenOptionValidation(t *testing.T) {
	if _, err := drtree.Open(drtree.WithEngine("bogus")); err == nil {
		t.Error("unknown engine must be rejected")
	}
	if _, err := drtree.Open(drtree.WithSplit("bogus")); err == nil {
		t.Error("unknown split must be rejected")
	}
	if _, err := drtree.Open(drtree.WithFanout(0, 4)); err == nil {
		t.Error("invalid fanout must be rejected")
	}
	if _, err := drtree.Open(drtree.WithCheckEvery(0)); err == nil {
		t.Error("invalid check period must be rejected")
	}
	if _, err := drtree.ParseEngineKind("liv"); err == nil {
		t.Error("ParseEngineKind must reject typos")
	}

	eng, err := drtree.Open(drtree.WithElection(drtree.LargestMBR{}), drtree.WithSplit("rstar"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, ok := eng.(drtree.NetworkedEngine); ok {
		t.Error("sequential engine must not claim the networked capability")
	}
	neng, err := drtree.Open(drtree.WithEngine(drtree.EngineProto))
	if err != nil {
		t.Fatal(err)
	}
	defer neng.Close()
	if _, ok := neng.(drtree.NetworkedEngine); !ok {
		t.Error("proto engine must expose the networked capability")
	}
	if _, ok := neng.(drtree.SteppedEngine); !ok {
		t.Error("proto engine must expose the stepped capability")
	}

	if _, err := drtree.Open(drtree.WithPublishWorkers(-1)); err == nil {
		t.Error("negative publish worker count must be rejected")
	}
}

// TestFacadePublishWorkers drives the parallel disseminator through the
// public facade and checks it delivers identically to the sequential
// path.
func TestFacadePublishWorkers(t *testing.T) {
	build := func(workers int) (drtree.Engine, []drtree.Delivery) {
		var deliveries []drtree.Delivery
		t.Helper()
		eng, err := drtree.Open(drtree.WithFanout(2, 4), drtree.WithPublishWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 60; i++ {
			f := i % 10
			r, err := drtree.NewRect([]float64{float64(f * 10), 0}, []float64{float64(f*10 + 15), 100})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Join(drtree.ProcID(i), r); err != nil {
				t.Fatal(err)
			}
		}
		batch := make([]drtree.Publication, 32)
		for k := range batch {
			batch[k] = drtree.Publication{Producer: drtree.ProcID(1 + k%60), Event: []float64{float64(k * 3 % 100), 50}}
		}
		deliveries, err = eng.PublishBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		return eng, deliveries
	}
	seqEng, seq := build(1)
	defer seqEng.Close()
	parEng, par := build(4)
	defer parEng.Close()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel deliveries diverge from sequential:\n%+v\nvs\n%+v", par, seq)
	}
	if err := parEng.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeBrokerRoundTrip exercises the public pub/sub API over the
// default engine.
func TestFacadeBrokerRoundTrip(t *testing.T) {
	space, err := drtree.NewSpace("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := drtree.NewBroker(space, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	f, err := drtree.ParseFilter("x in [0, 10] && y in [0, 10]")
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Subscribe(1, f); err != nil {
		t.Fatal(err)
	}
	if err := broker.SubscribeExpr(2, "x in [5, 20] && y in [5, 20]"); err != nil {
		t.Fatal(err)
	}
	n, err := broker.Publish(1, drtree.Event{"x": 7, "y": 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 2 || len(n.FalseNegatives) != 0 {
		t.Fatalf("notification: %+v", n)
	}
}

// TestFacadeBrokerOverWire runs the Broker over the message-passing
// engine — the pub/sub front end and the wire protocol composed through
// the Engine interface only.
func TestFacadeBrokerOverWire(t *testing.T) {
	space, err := drtree.NewSpace("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := drtree.Open(drtree.WithEngine(drtree.EngineProto), drtree.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := drtree.NewBroker(space, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	for i, expr := range []string{
		"x in [0, 40] && y in [0, 40]",
		"x in [20, 60] && y in [20, 60]",
		"x in [50, 90] && y in [0, 30]",
		"x in [10, 30] && y in [50, 80]",
	} {
		if err := broker.SubscribeExpr(drtree.ProcID(i+1), expr); err != nil {
			t.Fatal(err)
		}
	}
	if st := broker.Repair(); !st.Converged {
		t.Fatalf("broker overlay did not stabilize: %+v", st)
	}
	n, err := broker.Publish(1, drtree.Event{"x": 25, "y": 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.FalseNegatives) != 0 {
		t.Fatalf("wire broker lost subscribers: %+v", n)
	}
	if len(n.Interested) != 2 {
		t.Fatalf("want subscribers 1 and 2 interested: %+v", n)
	}
}

// TestFacadeRectConstructors covers the geometry constructors.
func TestFacadeRectConstructors(t *testing.T) {
	r := drtree.R2(0, 0, 5, 5)
	if !r.ContainsPoint(drtree.Point{2, 2}) {
		t.Fatal("R2 rect must contain interior point")
	}
	nd, err := drtree.NewRect([]float64{0, 0, 0}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Dims() != 3 {
		t.Fatalf("Dims = %d", nd.Dims())
	}
	if _, err := drtree.NewRect([]float64{1}, []float64{0}); err == nil {
		t.Fatal("inverted bounds must error")
	}
}

// TestFacadeDeliveryLayer exercises the queue-backed subscriber surface
// through the public API: SubscribeFunc with options, SubscribeChan,
// overflow policies, delivery stats and the producer sentinel.
func TestFacadeDeliveryLayer(t *testing.T) {
	space, err := drtree.NewSpace("x")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := drtree.NewBroker(space, eng, drtree.WithGateways(2))
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	var delivered atomic.Uint64
	err = broker.SubscribeFunc(1, drtree.Range("x", 0, 10),
		func(e drtree.Envelope) error { delivered.Add(1); return nil },
		drtree.WithQueueDepth(drtree.DefaultQueueDepth),
		drtree.WithOverflowPolicy(drtree.DropOldest),
		drtree.WithAtLeastOnce(1))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := broker.SubscribeChan(2, drtree.Range("x", 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(1, drtree.Event{"x": 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.Seq != 1 || e.Event["x"] != 5.0 {
			t.Fatalf("channel envelope %+v", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no channel delivery through the facade")
	}
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("no handler delivery through the facade")
		}
		time.Sleep(time.Millisecond)
	}
	st, ok := broker.DeliveryStatsOf(1)
	if !ok || st.Delivered != 1 || st.Policy != drtree.DropOldest {
		t.Fatalf("DeliveryStatsOf(1) = %+v, %v", st, ok)
	}
	if all := broker.DeliveryStats(); len(all) != 2 {
		t.Fatalf("DeliveryStats lists %d subscribers, want 2", len(all))
	}
	if _, err := broker.Publish(42, drtree.Event{"x": 5}); !errors.Is(err, drtree.ErrProducerNotRegistered) {
		t.Fatalf("unregistered producer: %v, want drtree.ErrProducerNotRegistered", err)
	}
}

// TestFacadeDurableBroker exercises the durable control plane through
// the public surface only: a WAL-backed broker journals subscriptions,
// a second broker over the same directory recovers them, and a consumer
// re-attaches by ID.
func TestFacadeDurableBroker(t *testing.T) {
	dir := t.TempDir()
	space, err := drtree.NewSpace("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	store, err := drtree.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := drtree.NewBroker(space, eng, drtree.WithStore(store), drtree.WithSnapshotEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.SubscribeExpr(1, "x in [0, 10] && y in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if err := broker.SubscribeExpr(2, "x in [5, 20] && y in [5, 20]"); err != nil {
		t.Fatal(err)
	}
	broker.Close()
	store.Close()

	reopened, err := drtree.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var st drtree.StoreStats = reopened.Stats()
	if st.Records != 2 {
		t.Fatalf("reopened store has %d records, want 2", st.Records)
	}
	eng2, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := drtree.NewBroker(space, eng2, drtree.WithStore(reopened))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	var rs drtree.RecoverStats
	if rs, err = b2.Recover(); err != nil {
		t.Fatal(err)
	}
	if rs.Subscribers != 2 {
		t.Fatalf("recovered %d subscribers, want 2", rs.Subscribers)
	}
	ch, err := b2.AttachChan(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Publish(2, drtree.Event{"x": 7, "y": 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.Event["x"] != 7 {
			t.Fatalf("delivered %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("re-attached subscriber never received the event")
	}

	// The in-memory store satisfies the same seam.
	var mem drtree.Store = drtree.NewMemStore()
	if err := mem.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
}
