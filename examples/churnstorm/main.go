// Churnstorm: stress the overlay's self-stabilization (Lemmas 3.4-3.7)
// under sustained Poisson churn. Subscribers crash without notice in
// windows of length Δ; the stabilization protocol repairs between
// windows; the program verifies a legitimate configuration and zero false
// negatives after every repair, and compares the observed survival with
// the Lemma 3.7 analytic bound.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"drtree"
	"drtree/internal/churn"
	"drtree/internal/geom"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churnstorm:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n       = 120
		windows = 12
		lambda  = 12.0 // expected departures per window (10% of N)
	)
	rng := rand.New(rand.NewPCG(7, 7))
	tree, err := drtree.NewTree(drtree.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		return err
	}
	next := 1
	join := func() error {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		err := tree.Join(drtree.ProcID(next), drtree.R2(x, y, x+25, y+25))
		next++
		return err
	}
	for i := 0; i < n; i++ {
		if err := join(); err != nil {
			return err
		}
	}
	fmt.Printf("built overlay: N=%d height=%d\n\n", tree.Len(), tree.Height())

	for w := 1; w <= windows; w++ {
		// One window of uncontrolled departures.
		kills := 0
		ids := tree.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			if rng.Float64() < lambda/float64(n) && tree.Len() > 2 {
				if err := tree.Crash(id); err != nil {
					return err
				}
				kills++
			}
		}
		st := tree.Stabilize()
		if err := tree.CheckLegal(); err != nil {
			return fmt.Errorf("window %d: overlay not legal after repair: %w", w, err)
		}
		// Replenish with fresh arrivals.
		for tree.Len() < n {
			if err := join(); err != nil {
				return err
			}
		}
		// Verify delivery still has no false negatives.
		probes, fn := 20, 0
		live := tree.ProcIDs()
		for k := 0; k < probes; k++ {
			ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			d, err := tree.Publish(live[rng.IntN(len(live))], ev)
			if err != nil {
				return err
			}
			got := map[drtree.ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range live {
				f, _ := tree.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					fn++
				}
			}
		}
		fmt.Printf("window %2d: %2d crashes, repaired in %d passes (%d rejoins), height=%d, false negatives=%d\n",
			w, kills, st.Passes, st.Rejoins, tree.Height(), fn)
		if fn != 0 {
			return fmt.Errorf("window %d: %d false negatives", w, fn)
		}
	}

	m := churn.Model{N: n, Delta: 1, Lambda: lambda}
	bound, err := m.ExpectedDisconnectTime()
	if err != nil {
		return err
	}
	sim, err := m.SimulateWindows(rng, 100, 1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("\nLemma 3.7 at N=%d, Δ=1, λ=%.0f: analytic E[T]=%.3g, Monte-Carlo E[T]>=%.3g (capped)\n",
		n, lambda, bound, sim.MeanTime)
	fmt.Println("the overlay survived every window and stayed legitimate")
	return nil
}
