// Quickstart: build the paper's Figure 1 scenario with the public API and
// reproduce the §3 worked example — S2 publishes event a, which reaches
// exactly S2, S3 and S4 using 2 inter-process messages and no false
// positives.
package main

import (
	"fmt"
	"os"

	"drtree"
	"drtree/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := workload.NewFigure1()

	// The worked example uses the paper's Figure 2 branching (groups of
	// 2-3 children).
	tree, err := drtree.NewTree(drtree.Params{MinFanout: 1, MaxFanout: 3})
	if err != nil {
		return err
	}
	labels := map[drtree.ProcID]string{}
	for i, rect := range fig.Subs {
		id := drtree.ProcID(i + 1)
		labels[id] = fig.Labels[i]
		if err := tree.Join(id, rect); err != nil {
			return fmt.Errorf("join %s: %w", fig.Labels[i], err)
		}
	}
	if err := tree.CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal: %w", err)
	}

	fmt.Println("DR-tree over the Figure 1 subscriptions:")
	fmt.Println(tree.Describe(labels))

	for _, name := range []string{"a", "b", "c", "d"} {
		ev := fig.Events[name]
		d, err := tree.Publish(2, ev) // S2 publishes, as in the paper
		if err != nil {
			return err
		}
		received := make([]string, len(d.Received))
		for i, id := range d.Received {
			received[i] = labels[id]
		}
		fmt.Printf("event %s %v: received by %v, %d messages, %d false positives\n",
			name, ev, received, d.Messages, len(d.FalsePositives))
	}
	return nil
}
