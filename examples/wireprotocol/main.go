// Wireprotocol: run the DR-tree maintenance protocol as real
// message-passing actors (internal/proto) on the simulated network:
// joins route through the overlay, an interior process and then the root
// crash, and the periodic CHECK_* timers repair the structure. The
// program reports rounds and messages — the protocol-level costs behind
// Lemmas 3.2-3.6.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/geom"
	"drtree/internal/proto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wireprotocol:", err)
		os.Exit(1)
	}
}

func run() error {
	cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(11, 11))

	// Grow the overlay one join at a time, measuring protocol cost.
	const n = 30
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		f := geom.R2(x, y, x+20+rng.Float64()*40, y+20+rng.Float64()*40)
		before := cl.NetStats().Delivered
		if err := cl.Join(core.ProcID(i), f); err != nil {
			return err
		}
		rounds, ok := cl.RunUntilStable(500)
		if !ok {
			return fmt.Errorf("join %d did not stabilize: %v", i, cl.CheckLegal())
		}
		if i%10 == 0 {
			fmt.Printf("after %2d joins: %2d rounds, %3d messages for the last join\n",
				i, rounds, cl.NetStats().Delivered-before)
		}
	}
	fmt.Printf("\noverlay over the wire protocol:\n%s\n", cl.Describe())

	// Publish an event end to end.
	ids := cl.IDs()
	ev := geom.Point{250, 250}
	res, err := cl.Publish(ids[0], ev)
	if err != nil {
		return err
	}
	fn := engine.FalseNegatives(cl, res, ev)
	fmt.Printf("publish: %d receivers, %d messages, %d rounds, false negatives=%d\n\n",
		len(res.Received), res.Messages, res.Rounds, len(fn))
	if len(fn) != 0 {
		return fmt.Errorf("protocol dissemination lost subscribers %v", fn)
	}

	// Crash an interior process, then the root; the CHECK_* timers repair.
	var interior core.ProcID
	for _, id := range cl.IDs() {
		if top := cl.Node(id).Top(); top >= 1 && top < 3 {
			interior = id
			break
		}
	}
	if interior != core.NoProc {
		if err := cl.Crash(interior); err != nil {
			return err
		}
		rounds, ok := cl.RunUntilStable(1500)
		if !ok {
			return fmt.Errorf("interior crash not repaired: %v", cl.CheckLegal())
		}
		fmt.Printf("interior process P%d crashed: repaired in %d rounds\n", interior, rounds)
	}

	root := cl.Oracle()
	if err := cl.Crash(root); err != nil {
		return err
	}
	rounds, ok := cl.RunUntilStable(1500)
	if !ok {
		return fmt.Errorf("root crash not repaired: %v", cl.CheckLegal())
	}
	fmt.Printf("root P%d crashed: repaired in %d rounds; new root P%d\n", root, rounds, cl.Oracle())
	fmt.Printf("final population %d, configuration legal: %v\n", cl.Len(), cl.CheckLegal() == nil)
	return nil
}
