// Consumers: the subscriber delivery layer in action. Three consumer
// styles share one broker — a slow callback behind a small drop-oldest
// queue, a coalescing dashboard that only wants the freshest reading,
// and a channel consumer — while a fast feed publishes hundreds of
// events. The publisher never waits on any of them; the per-subscriber
// DeliveryStats show what each queue delivered, shed or coalesced.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync/atomic"
	"time"

	"drtree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consumers:", err)
		os.Exit(1)
	}
}

func run() error {
	space, err := drtree.NewSpace("temp")
	if err != nil {
		return err
	}
	eng, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		return err
	}
	broker, err := drtree.NewBroker(space, eng, drtree.WithGateways(4))
	if err != nil {
		return err
	}
	defer broker.Close()

	// 1: a slow analytics job — 1ms per event against a feed publishing
	// far faster. Its 16-slot drop-oldest queue sheds the excess; the
	// publisher never notices.
	var analyzed atomic.Uint64
	err = broker.SubscribeFunc(1, drtree.Range("temp", 0, 100),
		func(e drtree.Envelope) error {
			time.Sleep(time.Millisecond)
			analyzed.Add(1)
			return nil
		},
		drtree.WithQueueDepth(16))
	if err != nil {
		return err
	}

	// 2: a dashboard that only cares about the latest hot readings —
	// coalescing keeps the newest events when it lags.
	var latest atomic.Uint64 // temperature, rounded
	err = broker.SubscribeFunc(2, drtree.Range("temp", 75, 100),
		func(e drtree.Envelope) error {
			time.Sleep(500 * time.Microsecond)
			latest.Store(uint64(e.Event["temp"]))
			return nil
		},
		drtree.WithQueueDepth(4), drtree.WithOverflowPolicy(drtree.CoalesceByFilter))
	if err != nil {
		return err
	}

	// 3: a channel consumer counting freezer alarms, range-style.
	alarms, err := broker.SubscribeChan(3, drtree.Range("temp", 0, 5), drtree.WithQueueDepth(64))
	if err != nil {
		return err
	}
	alarmCount := make(chan int)
	go func() {
		n := 0
		for range alarms {
			n++
		}
		alarmCount <- n
	}()

	// The feed: 400 readings published in batches from producer 1.
	rng := rand.New(rand.NewPCG(2026, 8))
	const batches, batchLen = 50, 8
	start := time.Now()
	for k := 0; k < batches; k++ {
		evs := make([]drtree.Event, batchLen)
		for i := range evs {
			evs[i] = drtree.Event{"temp": rng.Float64() * 100}
		}
		if _, err := broker.PublishBatch(1, evs); err != nil {
			return err
		}
	}
	fmt.Printf("published %d events in %v (publisher unaffected by slow consumers)\n",
		batches*batchLen, time.Since(start).Round(time.Millisecond))

	// Let the queues drain what they kept, then inspect the counters.
	time.Sleep(150 * time.Millisecond)
	for _, st := range broker.DeliveryStats() {
		fmt.Printf("subscriber %d [%v]: enqueued=%d delivered=%d dropped=%d coalesced=%d depth=%d\n",
			st.ID, st.Policy, st.Enqueued, st.Delivered, st.Dropped, st.Coalesced, st.Depth)
	}
	fmt.Printf("analytics processed %d readings; dashboard shows %d°\n", analyzed.Load(), latest.Load())

	if err := broker.Unsubscribe(3); err != nil { // closes the alarm channel
		return err
	}
	fmt.Printf("freezer alarms received: %d\n", <-alarmCount)
	return nil
}
