// Stockticker: a content-based publish/subscribe scenario over the
// Broker API. Traders subscribe with range filters over (price, volume)
// written in the textual predicate language; a market feed publishes
// quotes and each trader receives exactly the quotes matching its filter
// — the paper's motivating use of complex spatial filters.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"drtree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stockticker:", err)
		os.Exit(1)
	}
}

func run() error {
	space, err := drtree.NewSpace("price", "volume")
	if err != nil {
		return err
	}
	eng, err := drtree.Open(drtree.WithFanout(2, 4))
	if err != nil {
		return err
	}
	broker, err := drtree.NewBroker(space, eng)
	if err != nil {
		return err
	}

	subscriptions := map[drtree.ProcID]string{
		1: "price in [0, 1000] && volume in [0, 100000]", // market maker: everything
		2: "price in [90, 110] && volume in [0, 100000]", // band watcher
		3: "price in [95, 105] && volume in [5000, 100000]",
		4: "price >= 200 && volume >= 10000",             // large-cap whale
		5: "price in [90, 100] && volume in [0, 1000]",   // small lots
		6: "price in [100, 300] && volume in [0, 50000]", // momentum desk
	}
	for id, expr := range subscriptions {
		if err := broker.SubscribeExpr(id, expr); err != nil {
			return fmt.Errorf("subscriber %d: %w", id, err)
		}
		fmt.Printf("trader %d subscribed: %s\n", id, expr)
	}

	rng := rand.New(rand.NewPCG(2026, 6))
	quotes := make([]drtree.Event, 0, 8)
	for i := 0; i < 8; i++ {
		quotes = append(quotes, drtree.Event{
			"price":  80 + rng.Float64()*170,
			"volume": rng.Float64() * 60000,
		})
	}

	fmt.Println("\nmarket feed (published by trader 1):")
	totalMsgs, totalFP := 0, 0
	for i, q := range quotes {
		n, err := broker.Publish(1, q)
		if err != nil {
			return err
		}
		if len(n.FalseNegatives) != 0 {
			return fmt.Errorf("quote %d lost subscribers %v", i, n.FalseNegatives)
		}
		totalMsgs += n.Messages
		totalFP += len(n.FalsePositives)
		fmt.Printf("quote %d %v -> interested %v (messages: %d)\n",
			i, q, n.Interested, n.Messages)
	}
	fmt.Printf("\n%d quotes, %d messages total, %d false-positive deliveries, 0 false negatives\n",
		len(quotes), totalMsgs, totalFP)

	// A trader drops out mid-session; the overlay repairs itself.
	if err := broker.Fail(3); err != nil {
		return err
	}
	st := broker.Repair()
	fmt.Printf("trader 3 crashed; overlay repaired in %d passes\n", st.Passes)
	if err := broker.Engine().CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal after repair: %w", err)
	}
	n, err := broker.Publish(1, drtree.Event{"price": 100, "volume": 20000})
	if err != nil {
		return err
	}
	fmt.Printf("post-repair quote -> interested %v, false negatives: %d\n",
		n.Interested, len(n.FalseNegatives))
	return nil
}
