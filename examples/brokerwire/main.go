// Brokerwire: the stockticker scenario running the content-based
// publish/subscribe Broker end to end on either of two transports.
//
// With -transport=sim (the default) the Broker runs over the
// wire-protocol engine's simulated network: traders subscribe while the
// substrate drops and delays messages, a trader crashes mid-session,
// and once the transient faults cease the periodic CHECK_* timers
// repair the overlay (the self-stabilization contract) and the market
// feed flows with zero false negatives.
//
// With -transport=tcp the same scenario runs over real sockets: three
// drtreed daemons share one overlay on loopback TCP, traders attach to
// different daemons through binary RPC sessions, one trader's
// connection drops abruptly mid-session, and every quote reaches every
// live matching trader across daemon boundaries.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"drtree"
)

// subscriptions is the stockticker cast, shared by both transports.
var subscriptions = []struct {
	id   drtree.ProcID
	expr string
}{
	{1, "price in [0, 1000] && volume in [0, 100000]"}, // market maker: everything
	{2, "price in [90, 110] && volume in [0, 100000]"}, // band watcher
	{3, "price in [95, 105] && volume in [5000, 100000]"},
	{4, "price >= 200 && volume >= 10000"},             // large-cap whale
	{5, "price in [90, 100] && volume in [0, 1000]"},   // small lots
	{6, "price in [100, 300] && volume in [0, 50000]"}, // momentum desk
	{7, "price in [50, 150] && volume in [20000, 100000]"},
	{8, "price <= 95 && volume in [0, 30000]"},
}

func main() {
	transport := flag.String("transport", "sim", "overlay transport: sim (simulated network) or tcp (three drtreed daemons on loopback)")
	flag.Parse()
	var err error
	switch *transport {
	case "sim":
		err = runSim()
	case "tcp":
		err = runTCP()
	default:
		err = fmt.Errorf("unknown -transport %q (want sim or tcp)", *transport)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerwire:", err)
		os.Exit(1)
	}
}

func runSim() error {
	space, err := drtree.NewSpace("price", "volume")
	if err != nil {
		return err
	}
	eng, err := drtree.Open(
		drtree.WithEngine(drtree.EngineProto),
		drtree.WithFanout(2, 4),
		drtree.WithSeed(2026),
	)
	if err != nil {
		return err
	}
	defer eng.Close()

	// The engine is networked: make the substrate lossy while the
	// overlay is under construction — 15% message drops plus up to 3
	// rounds of per-hop delay jitter.
	netEng, ok := eng.(drtree.NetworkedEngine)
	if !ok {
		return fmt.Errorf("proto engine must expose the simulated network")
	}
	netEng.Net().DropRate = 0.15
	netEng.Net().DelayMax = 3
	fmt.Println("network faults on: 15% drops, <=3 rounds delay jitter")

	broker, err := drtree.NewBroker(space, eng)
	if err != nil {
		return err
	}

	for _, sub := range subscriptions {
		if err := broker.SubscribeExpr(sub.id, sub.expr); err != nil {
			return fmt.Errorf("subscriber %d: %w", sub.id, err)
		}
		fmt.Printf("trader %d subscribed over the lossy wire: %s\n", sub.id, sub.expr)
	}

	// Drive the overlay while the network is still lossy: joins route,
	// messages drop, the periodic checks retry. Convergence is best
	// effort here — the paper only promises it once faults cease.
	lossy := broker.Repair()
	fmt.Printf("lossy construction: %d rounds, converged=%v, %d messages dropped so far\n",
		lossy.Rounds, lossy.Converged, netEng.NetStats().Dropped)

	// A trader drops out abruptly while the network is still lossy.
	if err := broker.Fail(3); err != nil {
		return err
	}
	fmt.Println("trader 3 crashed mid-churn")

	// Transient faults cease (the paper's self-stabilization contract is
	// convergence from then on); the delay jitter may stay.
	netEng.Net().DropRate = 0
	st := broker.Repair()
	if !st.Converged {
		return fmt.Errorf("overlay did not stabilize after faults ceased: %v", eng.CheckLegal())
	}
	if err := eng.CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal after repair: %w", err)
	}
	stats := netEng.NetStats()
	fmt.Printf("faults ceased; overlay legal after %d rounds (so far: %d messages delivered, %d dropped)\n\n",
		st.Rounds, stats.Delivered, stats.Dropped)

	// The market feed flows through the repaired overlay.
	rng := rand.New(rand.NewPCG(2026, 8))
	totalMsgs, totalFP, totalRounds := 0, 0, 0
	quotes := 10
	for i := 0; i < quotes; i++ {
		q := drtree.Event{
			"price":  80 + rng.Float64()*170,
			"volume": rng.Float64() * 60000,
		}
		n, err := broker.Publish(1, q)
		if err != nil {
			return err
		}
		if len(n.FalseNegatives) != 0 {
			return fmt.Errorf("quote %d lost subscribers %v", i, n.FalseNegatives)
		}
		totalMsgs += n.Messages
		totalFP += len(n.FalsePositives)
		totalRounds += n.Rounds
		fmt.Printf("quote %d (price %6.2f, volume %7.0f) -> interested %v (%d msgs, %d rounds)\n",
			i, q["price"], q["volume"], n.Interested, n.Messages, n.Rounds)
	}
	fmt.Printf("\n%d quotes over the wire: %d messages, %.1f rounds/quote, %d false-positive deliveries, 0 false negatives\n",
		quotes, totalMsgs, float64(totalRounds)/float64(quotes), totalFP)
	return nil
}
