package main

import "testing"

// The example is its own oracle — both transports compute the expected
// interested set per quote from local filter copies and return an error
// on any false negative — so running it to completion IS the assertion.
// These smokes keep the README's showcase scenario honest on every CI
// run, over both the in-process simnet and real loopback sockets.

func TestRunSim(t *testing.T) {
	if err := runSim(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("three real daemons; skipped in -short mode")
	}
	if err := runTCP(); err != nil {
		t.Fatal(err)
	}
}
