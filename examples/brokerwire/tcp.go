package main

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"drtree"
	"drtree/internal/drtreed"
)

// runTCP runs the stockticker over three drtreed daemons sharing one
// overlay on loopback TCP. Traders attach to different daemons; quotes
// published on one daemon reach matching traders on all of them.
// Delivery over real sockets is asynchronous — a quote is republished
// under a fresh event ID until every live matching trader has it, which
// doubles as the overlay-convergence wait.
func runTCP() error {
	const daemons = 3

	lns := make([]net.Listener, daemons)
	peers := make([]string, daemons)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ds := make([]*drtreed.Daemon, daemons)
	for i := range ds {
		d, err := drtreed.New(
			drtreed.WithNode(i),
			drtreed.WithPeers(peers...),
			drtreed.WithListener(lns[i]),
			drtreed.WithSpace("price", "volume"),
			drtreed.WithGateways(2),
		)
		if err != nil {
			return err
		}
		defer d.Close()
		ds[i] = d
		fmt.Printf("daemon %d up on %s\n", i, d.Addr())
	}

	// Every trader dials a daemon round-robin and subscribes; the local
	// copies of the filters decide which traders a quote must reach.
	clients := make(map[drtree.ProcID]*drtreed.Client)
	filters := make(map[drtree.ProcID]drtree.Filter)
	for _, sub := range subscriptions {
		home := int(sub.id) % daemons
		cl, err := drtreed.Dial(ds[home].Addr(), 5*time.Second)
		if err != nil {
			return fmt.Errorf("trader %d: %w", sub.id, err)
		}
		defer cl.Close()
		if err := cl.Subscribe(int64(sub.id), sub.expr); err != nil {
			return fmt.Errorf("trader %d: %w", sub.id, err)
		}
		f, err := drtree.ParseFilter(sub.expr)
		if err != nil {
			return err
		}
		clients[sub.id], filters[sub.id] = cl, f
		fmt.Printf("trader %d subscribed on daemon %d: %s\n", sub.id, home, sub.expr)
	}

	// Deliveries funnel into one set keyed by (trader, quote price);
	// republished copies of a quote dedupe on its unique price.
	var (
		mu  sync.Mutex
		got = make(map[drtree.ProcID]map[float64]bool)
	)
	collect := func(id drtree.ProcID, cl *drtreed.Client) {
		for e := range cl.Events() {
			mu.Lock()
			if got[id] == nil {
				got[id] = make(map[float64]bool)
			}
			got[id][e.Event["price"]] = true
			mu.Unlock()
		}
	}
	for id, cl := range clients {
		go collect(id, cl)
	}

	// Trader 3's connection drops abruptly mid-session: its daemon reaps
	// the session and unsubscribes it, exactly like the crash in the
	// simulated variant.
	clients[3].Close()
	delete(clients, 3)
	delete(filters, 3)
	fmt.Println("trader 3's connection dropped mid-session")

	rng := rand.New(rand.NewPCG(2026, 8))
	publisher := clients[1]
	const quotes = 10
	for i := 0; i < quotes; i++ {
		q := drtree.Event{
			"price":  80 + rng.Float64()*170,
			"volume": rng.Float64() * 60000,
		}
		var want []drtree.ProcID
		for id, f := range filters {
			if f.Match(q) {
				want = append(want, id)
			}
		}
		start := time.Now()
		if err := publishUntil(publisher, q, want, &mu, got); err != nil {
			return fmt.Errorf("quote %d: %w", i, err)
		}
		fmt.Printf("quote %d (price %6.2f, volume %7.0f) -> interested %v in %v\n",
			i, q["price"], q["volume"], sorted(want), time.Since(start).Round(time.Millisecond))
	}

	for i, d := range ds {
		st := d.TransportStats()
		fmt.Printf("daemon %d wire traffic: %d frames sent, %d delivered, %d reconnects\n",
			i, st.Sent, st.Delivered, st.Reconnects)
	}
	fmt.Printf("\n%d quotes over loopback TCP, 0 false negatives across 3 daemons\n", quotes)
	return nil
}

// publishUntil republishes q from trader 1 until every trader in want
// has received it (or a deadline passes).
func publishUntil(pub *drtreed.Client, q drtree.Event, want []drtree.ProcID, mu *sync.Mutex, got map[drtree.ProcID]map[float64]bool) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		if err := pub.Publish(1, q); err != nil {
			return err
		}
		settle := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(settle) {
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			missing := 0
			for _, id := range want {
				if !got[id][q["price"]] {
					missing++
				}
			}
			mu.Unlock()
			if missing == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			mu.Lock()
			var missing []drtree.ProcID
			for _, id := range want {
				if !got[id][q["price"]] {
					missing = append(missing, id)
				}
			}
			mu.Unlock()
			return fmt.Errorf("traders %v never received %v", missing, q)
		}
	}
}

func sorted(ids []drtree.ProcID) []drtree.ProcID {
	out := append([]drtree.ProcID(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
