module drtree

go 1.24
