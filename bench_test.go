// Benchmarks regenerating every quantitative artifact of the paper, one
// per experiment (see DESIGN.md §3 and EXPERIMENTS.md). Each benchmark
// runs the corresponding experiment from internal/experiments and reports
// its headline metrics via b.ReportMetric, so `go test -bench=.` prints
// the reproduction numbers alongside timing.
package drtree_test

import (
	"sort"
	"testing"

	"drtree/internal/experiments"
)

func report(b *testing.B, run func() experiments.Result) {
	b.Helper()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = run()
	}
	if res.Err != nil {
		b.Fatalf("%s reproduction failed: %v\n%s", res.ID, res.Err, res.Table)
	}
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(res.Metrics[k], k)
	}
	if b.N == 1 {
		b.Logf("\n%s", res)
	}
}

// BenchmarkE1_WorkedExample — Figures 1-5: the canonical S1..S8 scenario;
// event a from S2 reaches {S2,S3,S4} with 2 messages and 0 false
// positives.
func BenchmarkE1_WorkedExample(b *testing.B) {
	report(b, experiments.RunE1)
}

// BenchmarkE2_HeightMemory — Lemma 3.1: height O(log_m N), memory
// O(M log^2 N / log m).
func BenchmarkE2_HeightMemory(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE2(1, []int{100, 400, 1600})
	})
}

// BenchmarkE3_JoinCost — Lemma 3.2: join routing cost vs N.
func BenchmarkE3_JoinCost(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE3(1, []int{100, 400, 1600})
	})
}

// BenchmarkE4_LeaveRecovery — Lemmas 3.4-3.5: repair cost after
// controlled and uncontrolled departures.
func BenchmarkE4_LeaveRecovery(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE4(1, []int{100, 400})
	})
}

// BenchmarkE5_Corruption — Lemma 3.6: stabilization from arbitrary
// corrupted configurations (sequential passes + protocol rounds).
func BenchmarkE5_Corruption(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE5(1, 60, 10)
	})
}

// BenchmarkE6_FalsePositives — the TR claim: DR-tree false positives
// around 2-3% per subscriber, zero false negatives, vs the three
// baselines.
func BenchmarkE6_FalsePositives(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE6(1, 150, 300)
	})
}

// BenchmarkE7_Churn — Lemma 3.7: analytic churn bound vs Monte-Carlo vs
// live overlay.
func BenchmarkE7_Churn(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE7(1, 30, []float64{5, 15, 30, 60})
	})
}

// BenchmarkE8_SplitPolicies — §3.2 ablation: linear vs quadratic vs R*.
func BenchmarkE8_SplitPolicies(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE8(1, 200, 300)
	})
}

// BenchmarkE9_RootElection — Figure 6 ablation: largest-MBR election vs
// random/first-child, with and without the cover rule.
func BenchmarkE9_RootElection(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE9(1, 120, 300)
	})
}

// BenchmarkE10_Reorg — §3.2 dynamic reorganization under hot-spot events.
func BenchmarkE10_Reorg(b *testing.B) {
	report(b, func() experiments.Result {
		return experiments.RunE10(1, 100, 400)
	})
}
