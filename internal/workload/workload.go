// Package workload generates the synthetic subscription and event
// workloads used by the reproduction experiments. The paper's companion
// TR evaluates "most workloads" without publishing them; these generators
// span the same qualitative space: uniform rectangles, spatially
// clustered communities, containment-heavy (nested) subscription
// populations, and uniform or hot-spot event streams (see DESIGN.md §4).
//
// All generators draw from caller-provided seeded sources, so every
// experiment is reproducible.
package workload

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"

	"drtree/internal/geom"
)

// World is the square universe all workloads live in: [0, Size]^2.
type World struct {
	Size float64
}

// DefaultWorld is the 1000x1000 universe used by the benchmarks.
func DefaultWorld() World { return World{Size: 1000} }

// SubscriptionKind selects a subscription-population shape.
type SubscriptionKind int

// Supported subscription populations.
const (
	// Uniform scatters fixed-scale rectangles uniformly.
	Uniform SubscriptionKind = iota + 1
	// Clustered concentrates subscriptions around a few community
	// centers (semantic communities, paper §1).
	Clustered
	// Contained produces nested subscription chains (rich containment
	// structure, the regime Properties 3.1/3.2 target).
	Contained
	// Mixed combines the three in equal parts.
	Mixed
)

// String names the kind.
func (k SubscriptionKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Contained:
		return "contained"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("SubscriptionKind(%d)", int(k))
	}
}

// KindByName resolves a kind from its name.
func KindByName(name string) (SubscriptionKind, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "clustered":
		return Clustered, nil
	case "contained":
		return Contained, nil
	case "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("workload: unknown subscription kind %q", name)
	}
}

// Subscriptions generates n subscription rectangles of the given kind.
func Subscriptions(rng *rand.Rand, w World, kind SubscriptionKind, n int) []geom.Rect {
	switch kind {
	case Uniform:
		return uniformRects(rng, w, n)
	case Clustered:
		return clusteredRects(rng, w, n)
	case Contained:
		return containedRects(rng, w, n)
	case Mixed:
		out := make([]geom.Rect, 0, n)
		out = append(out, uniformRects(rng, w, n/3)...)
		out = append(out, clusteredRects(rng, w, n/3)...)
		out = append(out, containedRects(rng, w, n-2*(n/3))...)
		return out
	default:
		return nil
	}
}

func uniformRects(rng *rand.Rand, w World, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		// Sides between 1% and 8% of the world.
		sx := w.Size * (0.01 + 0.07*rng.Float64())
		sy := w.Size * (0.01 + 0.07*rng.Float64())
		x := rng.Float64() * (w.Size - sx)
		y := rng.Float64() * (w.Size - sy)
		out[i] = geom.R2(x, y, x+sx, y+sy)
	}
	return out
}

func clusteredRects(rng *rand.Rand, w World, n int) []geom.Rect {
	// A handful of community centers; subscriptions huddle around them.
	centers := 3 + rng.IntN(4)
	cx := make([]float64, centers)
	cy := make([]float64, centers)
	for i := 0; i < centers; i++ {
		cx[i] = w.Size * (0.15 + 0.7*rng.Float64())
		cy[i] = w.Size * (0.15 + 0.7*rng.Float64())
	}
	out := make([]geom.Rect, n)
	for i := range out {
		c := rng.IntN(centers)
		sx := w.Size * (0.01 + 0.05*rng.Float64())
		sy := w.Size * (0.01 + 0.05*rng.Float64())
		x := clamp(cx[c]+rng.NormFloat64()*w.Size*0.05-sx/2, 0, w.Size-sx)
		y := clamp(cy[c]+rng.NormFloat64()*w.Size*0.05-sy/2, 0, w.Size-sy)
		out[i] = geom.R2(x, y, x+sx, y+sy)
	}
	return out
}

func containedRects(rng *rand.Rand, w World, n int) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	// Seed a few top-level containers, then nest.
	tops := 1 + n/12
	for i := 0; i < tops && len(out) < n; i++ {
		sx := w.Size * (0.2 + 0.3*rng.Float64())
		sy := w.Size * (0.2 + 0.3*rng.Float64())
		x := rng.Float64() * (w.Size - sx)
		y := rng.Float64() * (w.Size - sy)
		out = append(out, geom.R2(x, y, x+sx, y+sy))
	}
	for len(out) < n {
		parent := out[rng.IntN(len(out))]
		x1 := parent.Lo(0) + rng.Float64()*parent.Side(0)/3
		y1 := parent.Lo(1) + rng.Float64()*parent.Side(1)/3
		x2 := parent.Hi(0) - rng.Float64()*parent.Side(0)/3
		y2 := parent.Hi(1) - rng.Float64()*parent.Side(1)/3
		out = append(out, geom.R2(x1, y1, x2, y2))
	}
	return out
}

// EventKind selects an event-stream shape.
type EventKind int

// Supported event streams.
const (
	// UniformEvents scatter points uniformly over the world.
	UniformEvents EventKind = iota + 1
	// HotSpotEvents concentrate most points in a small hot region (the
	// biased workload motivating the paper's dynamic reorganization).
	HotSpotEvents
	// MatchingEvents draw points inside randomly chosen subscription
	// rectangles, so most events have at least one interested consumer.
	MatchingEvents
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case UniformEvents:
		return "uniform"
	case HotSpotEvents:
		return "hotspot"
	case MatchingEvents:
		return "matching"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Events generates n event points of the given kind. subs is consulted
// only by MatchingEvents (it may be nil otherwise).
func Events(rng *rand.Rand, w World, kind EventKind, n int, subs []geom.Rect) []geom.Point {
	out := make([]geom.Point, n)
	switch kind {
	case UniformEvents:
		for i := range out {
			out[i] = geom.Point{rng.Float64() * w.Size, rng.Float64() * w.Size}
		}
	case HotSpotEvents:
		// 90% of events in a 5%-wide hot square, the rest uniform.
		hx := rng.Float64() * w.Size * 0.95
		hy := rng.Float64() * w.Size * 0.95
		side := w.Size * 0.05
		for i := range out {
			if rng.Float64() < 0.9 {
				out[i] = geom.Point{hx + rng.Float64()*side, hy + rng.Float64()*side}
			} else {
				out[i] = geom.Point{rng.Float64() * w.Size, rng.Float64() * w.Size}
			}
		}
	case MatchingEvents:
		if len(subs) == 0 {
			return Events(rng, w, UniformEvents, n, nil)
		}
		for i := range out {
			r := subs[rng.IntN(len(subs))]
			out[i] = geom.Point{
				r.Lo(0) + rng.Float64()*r.Side(0),
				r.Lo(1) + rng.Float64()*r.Side(1),
			}
		}
	}
	return out
}

// DriftRects advances every rectangle one random-walk tick: each is
// translated by an independent N(0, (frac*w.Size)²) step per axis and
// clamped back into the world, sides preserved. It models continuous
// motion (vehicles, players) whose interest region follows the mover —
// the workload UpdateFilter churn exists for. Small frac values keep
// most moves inside the gateway unions they started in, so the broker's
// incremental re-union should almost never recompute. The input slice
// is not modified.
func DriftRects(rng *rand.Rand, w World, rects []geom.Rect, frac float64) []geom.Rect {
	out := make([]geom.Rect, len(rects))
	for i, r := range rects {
		dx := rng.NormFloat64() * frac * w.Size
		dy := rng.NormFloat64() * frac * w.Size
		sx, sy := r.Side(0), r.Side(1)
		x := clamp(r.Lo(0)+dx, 0, w.Size-sx)
		y := clamp(r.Lo(1)+dy, 0, w.Size-sy)
		out[i] = geom.R2(x, y, x+sx, y+sy)
	}
	return out
}

// ZipfEvents draws n event points whose spatial density follows a Zipf
// law over a grid of hotspot cells: the world is cut into cells² equal
// squares, cell ranks are assigned by a seeded shuffle (so the hot
// cells scatter instead of huddling in a corner), and each event picks
// a rank-r cell with probability ∝ 1/(1+r)^s, then lands uniformly
// inside it. s must be > 1 (the rand.Zipf constraint); cells must be
// >= 1. This is the skewed-popularity regime (a few topics absorb most
// traffic) that stresses the gateways owning the hot region.
func ZipfEvents(rng *rand.Rand, w World, n, cells int, s float64) []geom.Point {
	if cells < 1 {
		cells = 1
	}
	if s <= 1 {
		s = 1.2
	}
	side := w.Size / float64(cells)
	order := rng.Perm(cells * cells) // rank -> cell index
	z := rand.NewZipf(rng, s, 1, uint64(cells*cells-1))
	out := make([]geom.Point, n)
	for i := range out {
		c := order[z.Uint64()]
		cx := float64(c%cells) * side
		cy := float64(c/cells) * side
		out[i] = geom.Point{cx + rng.Float64()*side, cy + rng.Float64()*side}
	}
	return out
}

// FlashCrowdRects generates n small subscription rectangles piled
// around one crowd center — the burst of near-identical interests a
// live venue or breaking story produces. Sides are 0.5%–2% of the
// world and centers are normally scattered (σ = 2% of the world)
// around the crowd point, so the rectangles overlap heavily and the
// owning gateways' unions barely grow while their load spikes: the
// subscribe-burst regime an adaptive gateway pool must absorb.
func FlashCrowdRects(rng *rand.Rand, w World, n int) []geom.Rect {
	cx := w.Size * (0.1 + 0.8*rng.Float64())
	cy := w.Size * (0.1 + 0.8*rng.Float64())
	out := make([]geom.Rect, n)
	for i := range out {
		sx := w.Size * (0.005 + 0.015*rng.Float64())
		sy := w.Size * (0.005 + 0.015*rng.Float64())
		x := clamp(cx+rng.NormFloat64()*w.Size*0.02-sx/2, 0, w.Size-sx)
		y := clamp(cy+rng.NormFloat64()*w.Size*0.02-sy/2, 0, w.Size-sy)
		out[i] = geom.R2(x, y, x+sx, y+sy)
	}
	return out
}

// ChurnOp is one membership event in a churn trace.
type ChurnOp struct {
	// Time is the virtual instant of the operation.
	Time float64
	// Join is true for an arrival, false for a departure.
	Join bool
}

// ChurnTrace draws a Poisson arrival/departure trace over the given
// duration: inter-event times are exponential with rate lambda each for
// arrivals and departures (the paper's Lemma 3.7 model).
func ChurnTrace(rng *rand.Rand, lambda, duration float64) []ChurnOp {
	var out []ChurnOp
	for _, join := range []bool{true, false} {
		t := 0.0
		for {
			t += rng.ExpFloat64() / lambda
			if t >= duration {
				break
			}
			out = append(out, ChurnOp{Time: t, Join: join})
		}
	}
	slices.SortFunc(out, func(a, b ChurnOp) int { return cmp.Compare(a.Time, b.Time) })
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
