package workload

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

func TestKindNames(t *testing.T) {
	for _, k := range []SubscriptionKind{Uniform, Clustered, Contained, Mixed} {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("unknown kind must error")
	}
	if SubscriptionKind(99).String() == "" || EventKind(99).String() == "" {
		t.Error("unknown kinds must still render")
	}
	for _, k := range []EventKind{UniformEvents, HotSpotEvents, MatchingEvents} {
		if k.String() == "" {
			t.Errorf("EventKind %d has empty name", k)
		}
	}
}

func TestSubscriptionsInsideWorld(t *testing.T) {
	w := DefaultWorld()
	world := geom.R2(0, 0, w.Size, w.Size)
	rng := rand.New(rand.NewPCG(1, 1))
	for _, kind := range []SubscriptionKind{Uniform, Clustered, Contained, Mixed} {
		subs := Subscriptions(rng, w, kind, 100)
		if len(subs) != 100 {
			t.Fatalf("%v: got %d subs", kind, len(subs))
		}
		for i, s := range subs {
			if s.IsEmpty() {
				t.Fatalf("%v: sub %d empty", kind, i)
			}
			if !world.Contains(s) {
				t.Fatalf("%v: sub %d %v outside world", kind, i, s)
			}
		}
	}
	if Subscriptions(rng, w, SubscriptionKind(99), 5) != nil {
		t.Error("unknown kind must yield nil")
	}
}

func TestContainedWorkloadHasNesting(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	subs := Subscriptions(rng, DefaultWorld(), Contained, 60)
	nested := 0
	for i, a := range subs {
		for j, b := range subs {
			if i != j && a.StrictlyContains(b) {
				nested++
			}
		}
	}
	if nested < 30 {
		t.Fatalf("contained workload has only %d nesting pairs", nested)
	}
}

func TestEventsKinds(t *testing.T) {
	w := DefaultWorld()
	rng := rand.New(rand.NewPCG(3, 3))
	subs := Subscriptions(rng, w, Uniform, 30)

	evs := Events(rng, w, UniformEvents, 200, nil)
	if len(evs) != 200 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, e := range evs {
		if e[0] < 0 || e[0] > w.Size || e[1] < 0 || e[1] > w.Size {
			t.Fatalf("event %v outside world", e)
		}
	}

	// Hot-spot events concentrate: the bounding box of the densest 80%
	// must be far smaller than the world.
	hot := Events(rng, w, HotSpotEvents, 500, nil)
	inSmallBox := 0
	var acc geom.Rect
	for _, e := range hot {
		acc = acc.UnionPoint(e)
	}
	// Find a 10%-side box with many points (crude density check).
	for _, e := range hot {
		box := geom.R2(hot[0][0]-w.Size*0.06, hot[0][1]-w.Size*0.06,
			hot[0][0]+w.Size*0.06, hot[0][1]+w.Size*0.06)
		if box.ContainsPoint(e) {
			inSmallBox++
		}
	}
	if inSmallBox < 250 {
		t.Fatalf("hot-spot events not concentrated: %d/500 near first point", inSmallBox)
	}

	// Matching events always land inside some subscription.
	match := Events(rng, w, MatchingEvents, 300, subs)
	for _, e := range match {
		found := false
		for _, s := range subs {
			if s.ContainsPoint(e) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matching event %v hits no subscription", e)
		}
	}
	// MatchingEvents without subs degrades to uniform.
	if got := Events(rng, w, MatchingEvents, 10, nil); len(got) != 10 {
		t.Fatal("matching without subs must fall back to uniform")
	}
}

func TestDriftRects(t *testing.T) {
	w := DefaultWorld()
	world := geom.R2(0, 0, w.Size, w.Size)
	rng := rand.New(rand.NewPCG(11, 5))
	subs := Subscriptions(rng, w, Uniform, 200)
	moved := DriftRects(rng, w, subs, 0.01)
	if len(moved) != len(subs) {
		t.Fatalf("drift changed cardinality: %d -> %d", len(subs), len(moved))
	}
	changed := 0
	for i := range moved {
		if !world.Contains(moved[i]) {
			t.Fatalf("drifted rect %d %v escaped the world", i, moved[i])
		}
		const eps = 1e-9
		if d := moved[i].Side(0) - subs[i].Side(0); d > eps || d < -eps {
			t.Fatalf("drift changed rect %d x-side: %v -> %v", i, subs[i], moved[i])
		}
		if d := moved[i].Side(1) - subs[i].Side(1); d > eps || d < -eps {
			t.Fatalf("drift changed rect %d y-side: %v -> %v", i, subs[i], moved[i])
		}
		if !moved[i].Equal(subs[i]) {
			changed++
		}
		// A 1% step keeps the move local: centers shift far less than the
		// world size.
		if dx := moved[i].Lo(0) - subs[i].Lo(0); dx > w.Size*0.2 || dx < -w.Size*0.2 {
			t.Fatalf("rect %d jumped %v, want a local random-walk step", i, dx)
		}
	}
	if changed < 150 {
		t.Fatalf("only %d/200 rects moved", changed)
	}
	// The input must be untouched.
	again := DriftRects(rand.New(rand.NewPCG(11, 6)), w, subs, 0.01)
	_ = again
	for i := range subs {
		if subs[i].IsEmpty() {
			t.Fatal("drift mutated its input")
		}
	}
	// Determinism: same seed, same walk.
	a := DriftRects(rand.New(rand.NewPCG(7, 7)), w, subs, 0.02)
	b := DriftRects(rand.New(rand.NewPCG(7, 7)), w, subs, 0.02)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("drift is not deterministic under a fixed seed")
		}
	}
}

func TestZipfEvents(t *testing.T) {
	w := DefaultWorld()
	rng := rand.New(rand.NewPCG(12, 5))
	const n, cells = 2000, 8
	evs := ZipfEvents(rng, w, n, cells, 1.3)
	if len(evs) != n {
		t.Fatalf("got %d events", len(evs))
	}
	counts := map[int]int{}
	for _, e := range evs {
		if e[0] < 0 || e[0] > w.Size || e[1] < 0 || e[1] > w.Size {
			t.Fatalf("event %v outside world", e)
		}
		side := w.Size / cells
		cx, cy := int(e[0]/side), int(e[1]/side)
		if cx == cells {
			cx--
		}
		if cy == cells {
			cy--
		}
		counts[cy*cells+cx]++
	}
	// Zipf skew: the hottest cell must hold far more than the uniform
	// share (n/cells² ≈ 31) and a majority of cells must be near-cold.
	maxCount, cold := 0, 0
	for c := 0; c < cells*cells; c++ {
		if counts[c] > maxCount {
			maxCount = counts[c]
		}
		if counts[c] < n/(cells*cells) {
			cold++
		}
	}
	if maxCount < 5*n/(cells*cells) {
		t.Fatalf("hottest cell has %d events, not Zipf-skewed", maxCount)
	}
	if cold < cells*cells/2 {
		t.Fatalf("only %d cold cells, distribution not skewed", cold)
	}
	// Degenerate parameters clamp instead of panicking.
	if got := ZipfEvents(rng, w, 10, 0, 0.5); len(got) != 10 {
		t.Fatal("degenerate parameters must still generate")
	}
}

func TestFlashCrowdRects(t *testing.T) {
	w := DefaultWorld()
	world := geom.R2(0, 0, w.Size, w.Size)
	rng := rand.New(rand.NewPCG(13, 5))
	crowd := FlashCrowdRects(rng, w, 300)
	if len(crowd) != 300 {
		t.Fatalf("got %d rects", len(crowd))
	}
	var acc geom.Rect
	for i, r := range crowd {
		if !world.Contains(r) {
			t.Fatalf("crowd rect %d %v outside world", i, r)
		}
		acc = acc.Union(r)
	}
	// The whole crowd huddles: its bounding box is a small fraction of
	// the world (centers σ=2%, sides <= 2%).
	if acc.Side(0) > w.Size*0.4 || acc.Side(1) > w.Size*0.4 {
		t.Fatalf("flash crowd spread over %v, want a tight pile", acc)
	}
	// Different seeds pick different venues.
	other := FlashCrowdRects(rand.New(rand.NewPCG(99, 5)), w, 300)
	var acc2 geom.Rect
	for _, r := range other {
		acc2 = acc2.Union(r)
	}
	if acc.Intersects(acc2) && acc.Union(acc2).Area() < 1.5*acc.Area() {
		t.Fatal("two seeds produced the same crowd center")
	}
}

func TestChurnTrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	ops := ChurnTrace(rng, 5, 100)
	if len(ops) == 0 {
		t.Fatal("empty trace")
	}
	joins, leaves := 0, 0
	last := 0.0
	for _, op := range ops {
		if op.Time < last {
			t.Fatal("trace not sorted by time")
		}
		last = op.Time
		if op.Time < 0 || op.Time >= 100 {
			t.Fatalf("op at %.2f outside duration", op.Time)
		}
		if op.Join {
			joins++
		} else {
			leaves++
		}
	}
	// Poisson(5 * 100) = ~500 each; allow wide tolerance.
	if joins < 350 || joins > 650 || leaves < 350 || leaves > 650 {
		t.Fatalf("joins=%d leaves=%d, want ~500 each", joins, leaves)
	}
}

func TestPropertyChurnTraceRateScales(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		low := len(ChurnTrace(rng, 1, 200))
		high := len(ChurnTrace(rng, 10, 200))
		return high > low
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1GroundTruth(t *testing.T) {
	f := NewFigure1()
	if len(f.Labels) != 8 || len(f.Subs) != 8 {
		t.Fatal("figure 1 must have 8 subscriptions")
	}
	// Paper-stated containments.
	idx := func(l string) geom.Rect {
		for i, x := range f.Labels {
			if x == l {
				return f.Subs[i]
			}
		}
		t.Fatalf("label %s missing", l)
		return geom.Rect{}
	}
	if !idx("S2").StrictlyContains(idx("S4")) || !idx("S3").StrictlyContains(idx("S4")) {
		t.Fatal("S4 must be contained in S2 and S3")
	}
	if idx("S2").Contains(idx("S3")) || idx("S3").Contains(idx("S2")) {
		t.Fatal("S2 and S3 must be incomparable")
	}
	tests := map[string][]string{
		"a": {"S2", "S3", "S4"},
		"b": {"S3", "S7", "S8"},
		"c": {"S3", "S5", "S6"},
		"d": nil,
	}
	for ev, want := range tests {
		if got := f.Matching(ev); !reflect.DeepEqual(got, want) {
			t.Errorf("Matching(%s) = %v, want %v", ev, got, want)
		}
	}
	if f.Matching("z") != nil {
		t.Error("unknown event must match nothing")
	}
}
