package workload

import (
	"drtree/internal/geom"
)

// Figure1 is the canonical scenario of the paper's Figure 1: eight
// two-dimensional subscriptions S1..S8 and four events a..d, modeled so
// that every containment fact the paper states holds:
//
//   - S4 ⊂ S2 and S4 ⊂ S3, with S2 and S3 incomparable (§3.1);
//   - S7 ⊂ S3, S8 ⊂ S3, S6 ⊂ S5;
//   - event a matches exactly S2, S3 and S4 (the worked example: S2
//     publishes a, only S2, S3, S4 receive it, 2 messages);
//   - event d matches no subscription.
type Figure1 struct {
	// Labels are "S1".."S8" in order.
	Labels []string
	// Subs are the subscription rectangles, parallel to Labels.
	Subs []geom.Rect
	// Events maps the paper's event names a..d to points.
	Events map[string]geom.Point
}

// NewFigure1 builds the canonical scenario.
func NewFigure1() Figure1 {
	return Figure1{
		Labels: []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"},
		Subs: []geom.Rect{
			geom.R2(5, 5, 28, 45),   // S1
			geom.R2(10, 50, 45, 90), // S2
			geom.R2(30, 5, 95, 75),  // S3
			geom.R2(32, 52, 43, 73), // S4 ⊂ S2 ∩ S3
			geom.R2(55, 55, 90, 95), // S5
			geom.R2(60, 60, 75, 85), // S6 ⊂ S5
			geom.R2(60, 10, 85, 40), // S7 ⊂ S3
			geom.R2(40, 15, 70, 35), // S8 ⊂ S3
		},
		Events: map[string]geom.Point{
			"a": {35, 60}, // in S2, S3, S4
			"b": {65, 20}, // in S3, S7, S8
			"c": {70, 70}, // in S3, S5, S6
			"d": {3, 97},  // in nothing
		},
	}
}

// Matching returns the labels of subscriptions containing the named
// event, in S1..S8 order (the scenario's ground truth).
func (f Figure1) Matching(event string) []string {
	p, ok := f.Events[event]
	if !ok {
		return nil
	}
	var out []string
	for i, r := range f.Subs {
		if r.ContainsPoint(p) {
			out = append(out, f.Labels[i])
		}
	}
	return out
}
