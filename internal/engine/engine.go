// Package engine defines the unified DR-tree engine interface: the
// operations the paper specifies once and implements twice — as a
// sequential specification (internal/core) and as a self-stabilizing
// message-passing protocol (internal/proto). Everything above the
// engines (the pub/sub broker, the adversarial harness, the CLI tools)
// programs against Engine, so a new backend (sharded, remote, ...) plugs
// in by implementing this interface and registering with the layers
// above — no engine-specific branches.
//
// The public facade re-exports Engine as drtree.Engine; this package
// exists so internal consumers (which the facade itself imports) can
// share the type without an import cycle.
package engine

import (
	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/simnet"
)

// Engine is one DR-tree overlay backend. All engines speak the same
// result vocabulary (core.Delivery, core.StabReport) and the same
// process/geometry types; they differ only in how the paper's rules
// execute (direct state transitions, deterministic message rounds, or
// free-running goroutine actors).
//
// Engines are not required to be safe for concurrent use by multiple
// callers; the goroutine-backed runtimes synchronize internally.
type Engine interface {
	// Join inserts subscriber id with the given filter, routing from the
	// root / connection oracle. Message-passing engines may complete the
	// insertion asynchronously; Stabilize drives it to quiescence.
	Join(id core.ProcID, f geom.Rect) error
	// JoinFrom is Join routing through an explicit contact process.
	JoinFrom(contact, id core.ProcID, f geom.Rect) error
	// Leave removes a subscriber via a controlled departure (Figure 9).
	Leave(id core.ProcID) error
	// Crash removes a subscriber without notification; the stabilization
	// checks repair the structure afterwards.
	Crash(id core.ProcID) error
	// Publish disseminates an event from producer and reports the
	// unified delivery accounting.
	Publish(producer core.ProcID, ev geom.Point) (core.Delivery, error)
	// PublishBatch disseminates a batch of events with multiple
	// publications in flight at once, returning one Delivery per entry,
	// index-aligned with the batch. On a quiescent overlay it is
	// delivery-equivalent to len(batch) sequential Publish calls
	// (certified by internal/enginetest); engines exploit the batch for
	// amortization — shared dissemination scratch and result arenas
	// (core), multiple in-flight events per round under one shared round
	// budget (proto), pipelined event injection with in-flight tracking
	// (live). Message counts are attributed per event.
	PublishBatch(batch []core.Publication) ([]core.Delivery, error)
	// Stabilize runs the paper's periodic CHECK_* verifications until
	// the configuration stops changing (or an engine budget runs out,
	// reported via Converged=false).
	Stabilize() core.StabReport

	// Len returns the live population.
	Len() int
	// Root returns the root process and root height, or (NoProc, -1)
	// when the overlay is empty or root-less.
	Root() (core.ProcID, int)
	// RootMBR returns the MBR of the root instance (the empty rectangle
	// when there is none). In a legal state it equals the union of every
	// live filter.
	RootMBR() geom.Rect
	// ProcIDs returns all live process IDs, ascending.
	ProcIDs() []core.ProcID
	// Filter returns the subscription rectangle of process id.
	Filter(id core.ProcID) (geom.Rect, bool)
	// CheckLegal verifies Definition 3.1 on the current configuration.
	CheckLegal() error

	// The four transient-fault injectors of the paper's fault model
	// (§3.2): every per-instance variable is corruptible.
	CorruptParent(id core.ProcID, h int, parent core.ProcID) error
	CorruptChildren(id core.ProcID, h int, children []core.ProcID) error
	CorruptMBR(id core.ProcID, h int, mbr geom.Rect) error
	CorruptUnderloaded(id core.ProcID, h int) error

	// Close releases engine resources (actor goroutines, network state).
	// Engines without background resources return nil immediately.
	Close() error
}

// NetworkedEngine is the optional capability of engines backed by an
// inspectable simulated network: message-level fault injection (drops,
// per-link delays, partitions) and traffic counters.
type NetworkedEngine interface {
	Engine
	// Net exposes the simulated network for fault injection.
	Net() *simnet.Network
	// NetStats returns the network traffic counters.
	NetStats() simnet.Stats
}

// SteppedEngine is the optional capability of deterministic round-based
// engines: advancing the overlay one message round at a time.
type SteppedEngine interface {
	Engine
	// Step runs one round — deliver in-flight messages, process inboxes,
	// optionally fire the CHECK_* timers — and reports whether any
	// message was delivered.
	Step(fireChecks bool) bool
}

// FilterUpdater is the capability of engines that can change a live
// subscriber's filter in place, without a leave/re-join cycle. The
// gateway layer of the pub/sub Broker depends on it: a gateway process
// represents the MBR-union of many local subscriptions, and that union
// moves every time a subscription is added or dropped.
//
// UpdateFilter replaces the filter of process id with f. The sequential
// engine adjusts the leaf MBR and repropagates it along the parent chain
// eagerly (the CHECK_MBR/adjust path); the message-passing engines apply
// the new filter at the owning node and let the periodic CHECK_MBR
// probes carry the change upward — Stabilize drives the configuration
// back to legality, after which the root MBR again equals the union of
// all live filters and dissemination has zero false negatives
// (certified by internal/enginetest on every engine).
type FilterUpdater interface {
	Engine
	UpdateFilter(id core.ProcID, f geom.Rect) error
}

// AsyncPublisher is the capability of engines that can start a
// dissemination without waiting for it to quiesce. Publish and
// PublishBatch return a receipt census, which forces the caller to
// block until every copy of the event has settled; a network daemon
// cannot afford that (and on a multi-daemon overlay no single engine
// can even observe the full census), so it fire-and-forgets through
// InjectEvent and observes local deliveries through the live runtime's
// event hook instead. Satisfied by the goroutine-per-node live cluster.
type AsyncPublisher interface {
	Engine
	// InjectEvent starts disseminating ev from producer and returns as
	// soon as the event is in flight.
	InjectEvent(producer core.ProcID, ev geom.Point) error
}

// Compile-time conformance: the sequential specification, the
// deterministic round cluster, and the goroutine-per-node live cluster
// all satisfy the unified interface (and all three can update filters
// in place).
var (
	_ Engine          = (*core.Tree)(nil)
	_ Engine          = (*proto.Cluster)(nil)
	_ Engine          = (*proto.LiveCluster)(nil)
	_ NetworkedEngine = (*proto.Cluster)(nil)
	_ SteppedEngine   = (*proto.Cluster)(nil)
	_ FilterUpdater   = (*core.Tree)(nil)
	_ FilterUpdater   = (*proto.Cluster)(nil)
	_ FilterUpdater   = (*proto.LiveCluster)(nil)
	_ AsyncPublisher  = (*proto.LiveCluster)(nil)
)

// FalseNegatives lists live subscribers whose filter matches ev but that
// are absent from d.Received. The unified Delivery deliberately leaves
// the ground-truth comparison to the caller (the sequential engine's hot
// path cannot afford an O(N) scan per publish); this helper is that
// comparison, shared by the tools, examples and tests.
func FalseNegatives(e Engine, d core.Delivery, ev geom.Point) []core.ProcID {
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	var out []core.ProcID
	for _, id := range e.ProcIDs() {
		if f, ok := e.Filter(id); ok && f.ContainsPoint(ev) && !got[id] {
			out = append(out, id)
		}
	}
	return out
}
