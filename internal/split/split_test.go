package split

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

func rects(rs ...geom.Rect) []geom.Rect { return rs }

func TestByName(t *testing.T) {
	for _, name := range []string{"linear", "quadratic", "rstar"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) must error")
	}
	if got := len(All()); got != 3 {
		t.Fatalf("All() returned %d policies, want 3", got)
	}
}

func TestValidation(t *testing.T) {
	two := rects(geom.R2(0, 0, 1, 1), geom.R2(2, 2, 3, 3))
	for _, p := range All() {
		if _, _, err := p.Split(two, 0); err == nil {
			t.Errorf("%s: m=0 must error", p.Name())
		}
		if _, _, err := p.Split(two, 2); err == nil {
			t.Errorf("%s: n < 2m must error", p.Name())
		}
		if _, _, err := p.Split(rects(geom.R2(0, 0, 1, 1), geom.Rect{}), 1); err == nil {
			t.Errorf("%s: empty rect must error", p.Name())
		}
	}
}

// checkPartition verifies the structural contract of any split: disjoint
// groups covering all indexes, each of size >= m.
func checkPartition(t *testing.T, name string, n, m int, left, right []int) {
	t.Helper()
	if len(left) < m || len(right) < m {
		t.Fatalf("%s: group sizes %d/%d below m=%d", name, len(left), len(right), m)
	}
	if len(left)+len(right) != n {
		t.Fatalf("%s: partition covers %d of %d", name, len(left)+len(right), n)
	}
	seen := make(map[int]bool, n)
	for _, i := range append(append([]int(nil), left...), right...) {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("%s: invalid or duplicate index %d", name, i)
		}
		seen[i] = true
	}
}

func TestSplitSeparatesObviousClusters(t *testing.T) {
	// Two well-separated clusters of 3; every policy must cut between them.
	cluster := rects(
		geom.R2(0, 0, 1, 1), geom.R2(1, 0, 2, 1), geom.R2(0, 1, 1, 2),
		geom.R2(100, 100, 101, 101), geom.R2(101, 100, 102, 101), geom.R2(100, 101, 101, 102),
	)
	inLow := func(i int) bool { return i < 3 }
	for _, p := range All() {
		left, right, err := p.Split(cluster, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		checkPartition(t, p.Name(), len(cluster), 2, left, right)
		// All of one cluster must land in the same group.
		leftLow := 0
		for _, i := range left {
			if inLow(i) {
				leftLow++
			}
		}
		if leftLow != 0 && leftLow != 3 {
			t.Errorf("%s: split mixes separated clusters: left=%v right=%v", p.Name(), left, right)
		}
	}
}

func TestSplitRespectsMinFill(t *testing.T) {
	// 4 rects in a line, m=2: both groups must get exactly 2 even though
	// greedy assignment would prefer 3-1.
	line := rects(
		geom.R2(0, 0, 1, 1),
		geom.R2(2, 0, 3, 1),
		geom.R2(4, 0, 5, 1),
		geom.R2(100, 0, 101, 1),
	)
	for _, p := range All() {
		left, right, err := p.Split(line, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		checkPartition(t, p.Name(), len(line), 2, left, right)
	}
}

func TestSplitIdenticalRects(t *testing.T) {
	// Degenerate input: all rectangles equal. Splits must still produce a
	// legal partition.
	same := make([]geom.Rect, 6)
	for i := range same {
		same[i] = geom.R2(5, 5, 10, 10)
	}
	for _, p := range All() {
		left, right, err := p.Split(same, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		checkPartition(t, p.Name(), len(same), 2, left, right)
	}
}

func TestRStarPrefersLowOverlap(t *testing.T) {
	// Four rects: two tall on the left, two tall on the right. The x-axis
	// split yields zero overlap; a y split would overlap heavily.
	rs := rects(
		geom.R2(0, 0, 1, 10),
		geom.R2(1.5, 0, 2.5, 10),
		geom.R2(10, 0, 11, 10),
		geom.R2(11.5, 0, 12.5, 10),
	)
	left, right, err := (RStar{}).Split(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := mbrOf(rs, left)
	r := mbrOf(rs, right)
	if l.OverlapArea(r) != 0 {
		t.Fatalf("rstar split has overlap: left=%v right=%v", l, r)
	}
}

func TestQuadraticSeedsMaxWaste(t *testing.T) {
	// The far-apart pair (0, 3) wastes the most area and must be separated.
	rs := rects(
		geom.R2(0, 0, 1, 1),
		geom.R2(1, 1, 2, 2),
		geom.R2(2, 2, 3, 3),
		geom.R2(50, 50, 51, 51),
	)
	left, right, err := (Quadratic{}).Split(rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameGroup := func(a, b int) bool {
		in := func(xs []int, v int) bool {
			for _, x := range xs {
				if x == v {
					return true
				}
			}
			return false
		}
		return in(left, a) == in(left, b)
	}
	if sameGroup(0, 3) {
		t.Fatalf("quadratic kept max-waste pair together: left=%v right=%v", left, right)
	}
	checkPartition(t, "quadratic", len(rs), 1, left, right)
}

func TestPropertyAllPoliciesProduceLegalPartitions(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			prop := func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, 21))
				n := 4 + rng.IntN(20)
				m := 1 + rng.IntN(n/2) // 1 <= m <= n/2
				rs := make([]geom.Rect, n)
				for i := range rs {
					x, y := rng.Float64()*100, rng.Float64()*100
					rs[i] = geom.R2(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
				}
				left, right, err := p.Split(rs, m)
				if err != nil {
					return false
				}
				if len(left) < m || len(right) < m || len(left)+len(right) != n {
					return false
				}
				seen := make(map[int]bool, n)
				for _, i := range append(append([]int(nil), left...), right...) {
					if i < 0 || i >= n || seen[i] {
						return false
					}
					seen[i] = true
				}
				// The two group MBRs must jointly cover the original MBR.
				total := mbrOf(rs, allIdx(n))
				joint := mbrOf(rs, left).Union(mbrOf(rs, right))
				return joint.Equal(total)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPropertySplitIsDeterministic(t *testing.T) {
	for _, p := range All() {
		p := p
		prop := func(seed uint64) bool {
			rng := rand.New(rand.NewPCG(seed, 22))
			n := 4 + rng.IntN(12)
			rs := make([]geom.Rect, n)
			for i := range rs {
				x, y := rng.Float64()*50, rng.Float64()*50
				rs[i] = geom.R2(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
			}
			l1, r1, err1 := p.Split(rs, 2)
			l2, r2, err2 := p.Split(rs, 2)
			if err1 != nil || err2 != nil {
				return err1 != nil && err2 != nil
			}
			return equalInts(l1, l2) && equalInts(r1, r2)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
