// Package split implements the three node-splitting methods the paper
// supports for its DR-tree structure (Section 3.2, "There are three
// classical methods for splitting a children set"):
//
//   - Linear   — Guttman's linear-time pick-seeds + least-enlargement
//     assignment [18].
//   - Quadratic — Guttman's quadratic method: seeds are the pair wasting
//     the most area, remaining entries are placed by maximum preference
//     difference [18].
//   - RStar    — the R*-tree split of Beckmann et al. [5]: choose the
//     split axis by minimum margin sum, then the distribution with
//     minimum overlap (ties by area).
//
// A Policy partitions a set of rectangles into two groups, each with at
// least m members. The same engines back both the classical R-tree
// baseline (internal/rtree) and the distributed DR-tree (internal/core).
package split

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"drtree/internal/geom"
)

// Policy partitions rectangles into two groups.
type Policy interface {
	// Name identifies the policy ("linear", "quadratic", "rstar").
	Name() string
	// Split partitions rects into two index groups, each of size >= m.
	// It returns an error if len(rects) < 2*m or m < 1.
	Split(rects []geom.Rect, m int) (left, right []int, err error)
}

// ByName returns the policy with the given name.
func ByName(name string) (Policy, error) {
	switch name {
	case "linear":
		return Linear{}, nil
	case "quadratic":
		return Quadratic{}, nil
	case "rstar":
		return RStar{}, nil
	default:
		return nil, fmt.Errorf("split: unknown policy %q", name)
	}
}

// All returns every available policy, in a stable order.
func All() []Policy {
	return []Policy{Linear{}, Quadratic{}, RStar{}}
}

func validate(rects []geom.Rect, m int) error {
	if m < 1 {
		return fmt.Errorf("split: m must be >= 1, got %d", m)
	}
	if len(rects) < 2*m {
		return fmt.Errorf("split: need at least 2m=%d rects, got %d", 2*m, len(rects))
	}
	for i, r := range rects {
		if r.IsEmpty() {
			return fmt.Errorf("split: rect %d is empty", i)
		}
	}
	return nil
}

// groupState tracks one side of a split in progress.
type groupState struct {
	idx []int
	mbr geom.Rect
}

func (g *groupState) add(i int, r geom.Rect) {
	g.idx = append(g.idx, i)
	g.mbr = g.mbr.Union(r)
}

// Linear is Guttman's linear split.
type Linear struct{}

// Name implements Policy.
func (Linear) Name() string { return "linear" }

// Split implements Policy using linear pick-seeds: in each dimension find
// the rectangle with the highest low side and the one with the lowest
// high side, normalize their separation by the total extent, and seed the
// groups with the pair of greatest normalized separation. Remaining
// entries go to the group whose MBR is enlarged least.
func (Linear) Split(rects []geom.Rect, m int) ([]int, []int, error) {
	if err := validate(rects, m); err != nil {
		return nil, nil, err
	}
	dims := rects[0].Dims()
	bestSep := math.Inf(-1)
	s1, s2 := 0, 1
	for d := 0; d < dims; d++ {
		highestLo, lowestHi := 0, 0
		minLo, maxHi := math.Inf(1), math.Inf(-1)
		for i, r := range rects {
			if r.Lo(d) > rects[highestLo].Lo(d) {
				highestLo = i
			}
			if r.Hi(d) < rects[lowestHi].Hi(d) {
				lowestHi = i
			}
			minLo = math.Min(minLo, r.Lo(d))
			maxHi = math.Max(maxHi, r.Hi(d))
		}
		if highestLo == lowestHi {
			continue
		}
		width := maxHi - minLo
		if width <= 0 {
			width = 1
		}
		sep := (rects[highestLo].Lo(d) - rects[lowestHi].Hi(d)) / width
		if sep > bestSep {
			bestSep = sep
			s1, s2 = lowestHi, highestLo
		}
	}
	left, right := distribute(rects, m, s1, s2, false)
	return left, right, nil
}

// Quadratic is Guttman's quadratic split.
type Quadratic struct{}

// Name implements Policy.
func (Quadratic) Name() string { return "quadratic" }

// Split implements Policy: seeds are the pair whose union wastes the most
// area; each remaining rectangle is examined and the one maximizing the
// difference in coverage between the groups is placed next, into the group
// whose coverage grows least (paper §3.2, quadratic method).
func (Quadratic) Split(rects []geom.Rect, m int) ([]int, []int, error) {
	if err := validate(rects, m); err != nil {
		return nil, nil, err
	}
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if waste := rects[i].WasteArea(rects[j]); waste > worst {
				worst = waste
				s1, s2 = i, j
			}
		}
	}
	left, right := distribute(rects, m, s1, s2, true)
	return left, right, nil
}

// distribute seeds two groups with s1 and s2 and assigns the remaining
// rectangles. With preferenceOrder set (quadratic method) the next entry
// is the one with maximum enlargement difference between the groups; else
// (linear method) entries are taken in index order. Both honor the
// min-fill m.
func distribute(rects []geom.Rect, m, s1, s2 int, preferenceOrder bool) ([]int, []int) {
	left := &groupState{}
	right := &groupState{}
	left.add(s1, rects[s1])
	right.add(s2, rects[s2])
	remaining := otherIndexes(len(rects), s1, s2)

	for len(remaining) > 0 {
		// Min-fill guarantee: if one group needs everything left to reach
		// m, give it the rest.
		if len(left.idx)+len(remaining) == m {
			for _, i := range remaining {
				left.add(i, rects[i])
			}
			break
		}
		if len(right.idx)+len(remaining) == m {
			for _, i := range remaining {
				right.add(i, rects[i])
			}
			break
		}
		at := 0
		if preferenceOrder {
			bestDiff := math.Inf(-1)
			for k, i := range remaining {
				d1 := left.mbr.Enlargement(rects[i])
				d2 := right.mbr.Enlargement(rects[i])
				if diff := math.Abs(d1 - d2); diff > bestDiff {
					bestDiff = diff
					at = k
				}
			}
		}
		i := remaining[at]
		remaining = append(remaining[:at], remaining[at+1:]...)
		assignPreferred(left, right, i, rects[i])
	}
	return left.idx, right.idx
}

// RStar is the R*-tree-style split.
type RStar struct{}

// Name implements Policy.
func (RStar) Name() string { return "rstar" }

// Split implements Policy: for every axis, sort entries by lower then by
// upper bound and consider all (m .. n-m) prefix distributions; pick the
// axis with minimum total margin, then the distribution on that axis with
// minimum overlap between the two MBRs (ties broken by total area).
func (RStar) Split(rects []geom.Rect, m int) ([]int, []int, error) {
	if err := validate(rects, m); err != nil {
		return nil, nil, err
	}
	dims := rects[0].Dims()
	n := len(rects)

	type distribution struct {
		order []int
		k     int // left gets order[:k]
	}
	var (
		bestAxisMargin = math.Inf(1)
		bestAxisDists  []distribution
	)
	for d := 0; d < dims; d++ {
		for _, byHi := range []bool{false, true} {
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			slices.SortStableFunc(order, func(a, b int) int {
				ra, rb := rects[a], rects[b]
				if byHi {
					if c := cmp.Compare(ra.Hi(d), rb.Hi(d)); c != 0 {
						return c
					}
					return cmp.Compare(ra.Lo(d), rb.Lo(d))
				}
				if c := cmp.Compare(ra.Lo(d), rb.Lo(d)); c != 0 {
					return c
				}
				return cmp.Compare(ra.Hi(d), rb.Hi(d))
			})
			marginSum := 0.0
			var dists []distribution
			for k := m; k <= n-m; k++ {
				l := mbrOf(rects, order[:k])
				r := mbrOf(rects, order[k:])
				marginSum += l.Margin() + r.Margin()
				dists = append(dists, distribution{order: order, k: k})
			}
			if marginSum < bestAxisMargin {
				bestAxisMargin = marginSum
				bestAxisDists = dists
			}
		}
	}
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	var chosen distribution
	for _, dist := range bestAxisDists {
		l := mbrOf(rects, dist.order[:dist.k])
		r := mbrOf(rects, dist.order[dist.k:])
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea = overlap, area
			chosen = dist
		}
	}
	left := append([]int(nil), chosen.order[:chosen.k]...)
	right := append([]int(nil), chosen.order[chosen.k:]...)
	return left, right, nil
}

func otherIndexes(n int, skip ...int) []int {
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	out := make([]int, 0, n-len(skip))
	for i := 0; i < n; i++ {
		if !skipSet[i] {
			out = append(out, i)
		}
	}
	return out
}

// assignPreferred puts rect i into the group with the smaller enlargement,
// breaking ties by smaller area, then by fewer entries, then left.
func assignPreferred(left, right *groupState, i int, r geom.Rect) {
	d1 := left.mbr.Enlargement(r)
	d2 := right.mbr.Enlargement(r)
	switch {
	case d1 < d2:
		left.add(i, r)
	case d2 < d1:
		right.add(i, r)
	case left.mbr.Area() < right.mbr.Area():
		left.add(i, r)
	case right.mbr.Area() < left.mbr.Area():
		right.add(i, r)
	case len(left.idx) <= len(right.idx):
		left.add(i, r)
	default:
		right.add(i, r)
	}
}

func mbrOf(rects []geom.Rect, idx []int) geom.Rect {
	var out geom.Rect
	for _, i := range idx {
		out = out.Union(rects[i])
	}
	return out
}
