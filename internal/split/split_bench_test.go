package split

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

func BenchmarkSplit(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	// An overflowing node of M+1 = 9 children, the common split size.
	rects := make([]geom.Rect, 9)
	for i := range rects {
		x, y := rng.Float64()*100, rng.Float64()*100
		rects[i] = geom.R2(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
	}
	for _, pol := range All() {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := pol.Split(rects, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
