package churn

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{N: 0, Delta: 1, Lambda: 1},
		{N: 10, Delta: 0, Lambda: 1},
		{N: 10, Delta: 1, Lambda: 0},
	}
	for _, m := range bad {
		if _, err := m.ExpectedDisconnectTime(); err == nil {
			t.Errorf("model %+v must be rejected", m)
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := (Model{N: 10, Delta: 1, Lambda: 1}).SimulateWindows(rng, 0, 10); err == nil {
		t.Error("trials=0 must be rejected")
	}
}

func TestExpectedDisconnectTimeFormula(t *testing.T) {
	// At Δλ = N the exponent vanishes: E[T] = Δ·N.
	m := Model{N: 10, Delta: 2, Lambda: 5}
	got, err := m.ExpectedDisconnectTime()
	if err != nil {
		t.Fatal(err)
	}
	if want := 20.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("E[T] = %g, want %g at Δλ=N", got, want)
	}
	// Below the critical rate, the bound grows rapidly as λ decreases.
	low, _ := Model{N: 10, Delta: 2, Lambda: 1}.ExpectedDisconnectTime()
	lower, _ := Model{N: 10, Delta: 2, Lambda: 0.5}.ExpectedDisconnectTime()
	if !(lower > low && low > got) {
		t.Fatalf("bound not decreasing in λ below critical point: %g, %g, %g", lower, low, got)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, mu := range []float64{0.5, 4, 30, 200} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mu))
		}
		mean := sum / float64(n)
		if math.Abs(mean-mu) > 0.05*mu+0.1 {
			t.Errorf("poisson(%g): mean %g", mu, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("nonpositive mu must yield 0")
	}
}

func TestSimulateWindowsMatchesRegime(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	// Heavy churn (Δλ >> N): disconnect almost immediately.
	heavy := Model{N: 5, Delta: 1, Lambda: 50}
	res, err := heavy.SimulateWindows(rng, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows > 2.5 {
		t.Fatalf("heavy churn should disconnect quickly: %+v", res)
	}
	// Light churn (Δλ << N): survives until the cap.
	light := Model{N: 40, Delta: 1, Lambda: 2}
	res, err = light.SimulateWindows(rng, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 400 {
		t.Fatalf("light churn should survive: %+v", res)
	}
	if res.MeanTime != res.Windows*light.Delta {
		t.Fatal("MeanTime must equal Windows*Delta")
	}
}

func TestSimulateWindowsMonotonicInLambda(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	n := 12
	var prev float64 = math.Inf(1)
	for _, lambda := range []float64{6, 12, 24} {
		m := Model{N: n, Delta: 1, Lambda: lambda}
		res, err := m.SimulateWindows(rng, 300, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Windows > prev*1.5 {
			t.Fatalf("survival did not decrease with churn rate: λ=%g windows=%g prev=%g",
				lambda, res.Windows, prev)
		}
		prev = res.Windows
	}
}

func TestSimulateOverlay(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	m := Model{N: 30, Delta: 1, Lambda: 3}
	res, err := m.SimulateOverlay(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalLegal {
		t.Fatalf("overlay must stabilize to a legal state: %+v", res)
	}
	if res.FinalSize != m.N {
		t.Fatalf("population must be replenished to N: %+v", res)
	}
	if res.Repairs != 10 {
		t.Fatalf("Repairs = %d, want 10", res.Repairs)
	}
	if res.Departures == 0 {
		t.Fatal("no departures applied")
	}
	if _, err := (Model{N: -1, Delta: 1, Lambda: 1}).SimulateOverlay(rng, 1); err == nil {
		t.Error("invalid model must be rejected")
	}
}

func TestSimulateOverlayHighChurnStillRepairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	m := Model{N: 25, Delta: 1, Lambda: 10} // ~40% of population per window
	res, err := m.SimulateOverlay(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalLegal {
		t.Fatalf("stabilization must repair even under heavy churn: %+v", res)
	}
}
