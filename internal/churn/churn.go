// Package churn analyzes the DR-tree's resistance to churn (Lemma 3.7):
// with departures arriving as a Poisson process of rate λ and the
// stabilization protocol running every Δ time units, the expected time
// before the overlay disconnects is
//
//	E[T] = Δ · N · e^((N-Δλ)² / (4Δλ))
//
// The exponent is a Chernoff-style tail bound on the probability that a
// Poisson(Δλ) batch of departures overwhelms all N processes inside one
// repair window. This package provides the analytic bound, a Monte-Carlo
// window simulation of that disconnection model, and an overlay-level
// simulation that runs real departures against a core.Tree.
package churn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"drtree/internal/core"
	"drtree/internal/geom"
)

// Model holds the Lemma 3.7 parameters.
type Model struct {
	// N is the overlay population.
	N int
	// Delta is the stabilization period Δ (no repairs happen inside a
	// window).
	Delta float64
	// Lambda is the Poisson departure rate λ.
	Lambda float64
}

func (m Model) validate() error {
	if m.N <= 0 {
		return fmt.Errorf("churn: N must be positive, got %d", m.N)
	}
	if m.Delta <= 0 {
		return fmt.Errorf("churn: Delta must be positive, got %g", m.Delta)
	}
	if m.Lambda <= 0 {
		return fmt.Errorf("churn: Lambda must be positive, got %g", m.Lambda)
	}
	return nil
}

// ExpectedDisconnectTime evaluates the lemma's bound Δ·N·e^((N-Δλ)²/(4Δλ)).
func (m Model) ExpectedDisconnectTime() (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	n := float64(m.N)
	dl := m.Delta * m.Lambda
	exp := (n - dl) * (n - dl) / (4 * dl)
	return m.Delta * n * math.Exp(exp), nil
}

// WindowResult reports a Monte-Carlo estimate of the disconnection time
// under the lemma's window model.
type WindowResult struct {
	// MeanTime is the average time until a disconnecting window occurred.
	MeanTime float64
	// Windows is the average number of windows survived.
	Windows float64
	// Trials is the number of Monte-Carlo trials run.
	Trials int
}

// SimulateWindows estimates the disconnection time by the lemma's model:
// each window of length Δ draws D ~ Poisson(Δλ) departures (with
// arrivals replenishing the population between windows); the overlay
// disconnects when D >= N, i.e. the whole population churns away before
// stabilization can repair. maxWindows caps each trial.
func (m Model) SimulateWindows(rng *rand.Rand, trials, maxWindows int) (WindowResult, error) {
	if err := m.validate(); err != nil {
		return WindowResult{}, err
	}
	if trials <= 0 || maxWindows <= 0 {
		return WindowResult{}, fmt.Errorf("churn: trials and maxWindows must be positive")
	}
	var res WindowResult
	res.Trials = trials
	totalWindows := 0.0
	for tr := 0; tr < trials; tr++ {
		w := 0
		for ; w < maxWindows; w++ {
			if poisson(rng, m.Delta*m.Lambda) >= m.N {
				break
			}
		}
		totalWindows += float64(w + 1)
	}
	res.Windows = totalWindows / float64(trials)
	res.MeanTime = res.Windows * m.Delta
	return res, nil
}

// poisson draws a Poisson(mu) sample. Knuth's product method for small
// mu, normal approximation above.
func poisson(rng *rand.Rand, mu float64) int {
	if mu <= 0 {
		return 0
	}
	if mu > 60 {
		// Normal approximation with continuity correction.
		v := rng.NormFloat64()*math.Sqrt(mu) + mu + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mu)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// OverlayResult reports the overlay-level churn simulation.
type OverlayResult struct {
	// Departures is the number of uncontrolled departures applied.
	Departures int
	// Repairs is the number of stabilization rounds run.
	Repairs int
	// RepairPasses is the total number of stabilization passes used.
	RepairPasses int
	// Disconnected reports whether the overlay was ever observed
	// disconnected at a repair boundary before repair ran.
	Disconnected int
	// FinalLegal reports whether the final configuration is legal.
	FinalLegal bool
	// FinalSize is the live population at the end.
	FinalSize int
}

// SimulateOverlay drives real uncontrolled departures (and replacement
// joins) against a live DR-tree: departures are applied in batches of one
// stabilization window, the overlay's connectivity is inspected, then
// stabilization repairs. It measures how the protocol behaves under the
// lemma's regime rather than the closed-form model.
func (m Model) SimulateOverlay(rng *rand.Rand, windows int) (OverlayResult, error) {
	if err := m.validate(); err != nil {
		return OverlayResult{}, err
	}
	tr, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		return OverlayResult{}, err
	}
	nextID := 1
	join := func() error {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		err := tr.Join(core.ProcID(nextID), geom.R2(x, y, x+20, y+20))
		nextID++
		return err
	}
	for i := 0; i < m.N; i++ {
		if err := join(); err != nil {
			return OverlayResult{}, err
		}
	}
	var res OverlayResult
	for w := 0; w < windows; w++ {
		// One window of Poisson departures without repair.
		d := poisson(rng, m.Delta*m.Lambda)
		if d > tr.Len()-1 {
			d = tr.Len() - 1
		}
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:d] {
			if err := tr.Crash(id); err != nil {
				return res, err
			}
			res.Departures++
		}
		if !tr.IsConnected() {
			res.Disconnected++
		}
		st := tr.Stabilize()
		res.Repairs++
		res.RepairPasses += st.Passes
		// Arrivals replenish the population to N (paper: arrivals and
		// departures are both Poisson; we keep the population stationary).
		for tr.Len() < m.N {
			if err := join(); err != nil {
				return res, err
			}
		}
	}
	res.FinalLegal = tr.CheckLegal() == nil
	res.FinalSize = tr.Len()
	return res, nil
}
