package core

import (
	"math/rand/v2"

	"drtree/internal/geom"
)

// Election chooses which group member is promoted as parent when a split
// or root creation needs a leader. The paper's rule (Figure 6) elects the
// node whose MBR is largest, which preserves the containment awareness
// properties and minimizes false-positive area; alternative policies are
// provided for the ablation of experiment E9.
type Election interface {
	// Name identifies the policy.
	Name() string
	// ChooseLeader returns the index of the member to promote, given the
	// members' MBRs (parallel slices, len >= 1).
	ChooseLeader(ids []ProcID, mbrs []geom.Rect) int
}

// LargestMBR is the paper's election rule: promote the member whose MBR
// has the largest area (ties broken by lowest process ID so elections are
// deterministic).
type LargestMBR struct{}

// Name implements Election.
func (LargestMBR) Name() string { return "largest-mbr" }

// ChooseLeader implements Election.
func (LargestMBR) ChooseLeader(ids []ProcID, mbrs []geom.Rect) int {
	best := 0
	for i := 1; i < len(mbrs); i++ {
		ai, ab := mbrs[i].Area(), mbrs[best].Area()
		if ai > ab || (ai == ab && ids[i] < ids[best]) {
			best = i
		}
	}
	return best
}

// FirstChild is an ablation policy: promote the member with the lowest
// process ID, ignoring geometry.
type FirstChild struct{}

// Name implements Election.
func (FirstChild) Name() string { return "first-child" }

// ChooseLeader implements Election.
func (FirstChild) ChooseLeader(ids []ProcID, mbrs []geom.Rect) int {
	best := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[best] {
			best = i
		}
	}
	return best
}

// RandomElection is an ablation policy: promote a uniformly random
// member. The random source is injected so simulations stay reproducible.
type RandomElection struct {
	Rand *rand.Rand
}

// Name implements Election.
func (RandomElection) Name() string { return "random" }

// ChooseLeader implements Election.
func (e RandomElection) ChooseLeader(ids []ProcID, mbrs []geom.Rect) int {
	if e.Rand == nil || len(ids) == 1 {
		return 0
	}
	return e.Rand.IntN(len(ids))
}

// betterCover is the paper's Is_Better_MBR_Cover predicate: candidate
// covers better than the incumbent when its MBR area is strictly larger.
func betterCover(candidate, incumbent geom.Rect) bool {
	return candidate.Area() > incumbent.Area()
}
