package core

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Dot renders the logical DR-tree (the per-level node diagram of the
// paper's Figure 4) in Graphviz DOT format. Each box is one instance,
// labeled "P<id>@h"; edges connect parent instances to child instances.
func (t *Tree) Dot(labels map[ProcID]string) string {
	var b strings.Builder
	b.WriteString("digraph drtree {\n  rankdir=TB;\n  node [shape=box];\n")
	name := func(id ProcID) string {
		if l, ok := labels[id]; ok {
			return l
		}
		return fmt.Sprintf("P%d", id)
	}
	// Group instances per height so levels render as ranks.
	for h := t.rootH; h >= 0; h-- {
		var nodes []string
		for _, id := range t.ProcIDs() {
			if t.at(id, h) != nilH {
				nodes = append(nodes, fmt.Sprintf("%q", fmt.Sprintf("%s@%d", name(id), h)))
			}
		}
		if len(nodes) > 0 {
			fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(nodes, "; "))
		}
	}
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		for h := 1; h <= p.Top; h++ {
			x := p.at(h)
			if x == nilH {
				continue
			}
			for _, c := range t.ar.kids[x] {
				fmt.Fprintf(&b, "  %q -> %q;\n",
					fmt.Sprintf("%s@%d", name(id), h),
					fmt.Sprintf("%s@%d", name(c), h-1))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CommunicationEdges returns the physical neighbor relation of the
// overlay (the paper's Figure 5): unordered process pairs connected by at
// least one parent/child link, sorted.
func (t *Tree) CommunicationEdges() [][2]ProcID {
	set := make(map[[2]ProcID]bool)
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		for h := 1; h <= p.Top; h++ {
			x := p.at(h)
			if x == nilH {
				continue
			}
			for _, c := range t.ar.kids[x] {
				if c == id {
					continue
				}
				e := [2]ProcID{id, c}
				if e[0] > e[1] {
					e[0], e[1] = e[1], e[0]
				}
				set[e] = true
			}
		}
	}
	out := make([][2]ProcID, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b [2]ProcID) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out
}

// CommunicationDot renders the communication graph (Figure 5) in DOT.
func (t *Tree) CommunicationDot(labels map[ProcID]string) string {
	name := func(id ProcID) string {
		if l, ok := labels[id]; ok {
			return l
		}
		return fmt.Sprintf("P%d", id)
	}
	var b strings.Builder
	b.WriteString("graph comm {\n  node [shape=circle];\n")
	for _, e := range t.CommunicationEdges() {
		fmt.Fprintf(&b, "  %q -- %q;\n", name(e[0]), name(e[1]))
	}
	b.WriteString("}\n")
	return b.String()
}

// IsConnected reports whether the overlay's communication graph is
// connected over the live processes (used by the churn experiment E7).
func (t *Tree) IsConnected() bool {
	if len(t.procs) <= 1 {
		return true
	}
	adj := make(map[ProcID][]ProcID)
	for _, e := range t.CommunicationEdges() {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	start := t.ProcIDs()[0]
	seen := map[ProcID]bool{start: true}
	queue := []ProcID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(t.procs)
}

// Describe returns a compact textual rendering of the tree levels, one
// line per instance, for debugging and golden tests.
func (t *Tree) Describe(labels map[ProcID]string) string {
	name := func(id ProcID) string {
		if l, ok := labels[id]; ok {
			return l
		}
		return fmt.Sprintf("P%d", id)
	}
	var b strings.Builder
	for h := t.rootH; h >= 0; h-- {
		fmt.Fprintf(&b, "height %d:", h)
		for _, id := range t.ProcIDs() {
			x := t.at(id, h)
			if x == nilH {
				continue
			}
			if h == 0 {
				fmt.Fprintf(&b, " %s", name(id))
				continue
			}
			children := t.ar.kids[x]
			kids := make([]string, len(children))
			for i, c := range children {
				kids[i] = name(c)
			}
			fmt.Fprintf(&b, " %s[%s]", name(id), strings.Join(kids, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
