// Package core implements the DR-tree, the paper's primary contribution:
// a decentralized, self-stabilizing R-tree overlay for peer-to-peer
// content-based publish/subscribe (Bianchi, Datta, Felber, Gradinariu,
// ICDCS 2007, Section 3).
//
// Every tree node is owned by a physical process (a subscriber). A
// process is recursively its own child (paper §3): if p owns an interior
// node, p also owns one node on every level beneath it down to the
// leaves. We call each per-level node an Instance, identified by its
// height above the leaf level (leaves are height 0), so that a root split
// never renumbers existing instances.
//
// Instances are stored in a per-tree arena with a structure-of-arrays
// layout (see arena.go): a process's instance table maps heights to dense
// int32 handles, and every per-instance field — parents, children sets,
// MBRs — lives in its own parallel slice. The routing loops in publish.go
// scan those slices cache-linearly instead of dereferencing per-node heap
// objects, and Leave/Crash recycle handles through a free list.
//
// The package provides the sequential DR-tree engine: every protocol rule
// of the paper's Figures 7-14 (join, add-child with splitting and root
// election, controlled leave, the five stabilization checks, compaction,
// cover and false-positive-driven exchanges) is a directly callable and
// individually testable state transition. The message-passing runtime in
// internal/proto drives the same rules through an asynchronous network.
package core

import (
	"fmt"
	"slices"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// ProcID identifies a process (subscriber). IDs are assigned by the
// caller and must be positive.
type ProcID int

// NoProc is the zero ProcID, used as "no process".
const NoProc ProcID = 0

// Params configures a DR-tree.
type Params struct {
	// MinFanout is m: the minimum number of children of every non-root
	// interior node. Must be >= 1.
	MinFanout int
	// MaxFanout is M: the maximum number of children of any node. The
	// paper requires M >= 2m so splits can produce two legal groups.
	MaxFanout int
	// Split selects the node-splitting method (linear, quadratic, rstar).
	// Defaults to quadratic, the paper's primary method.
	Split split.Policy
	// Election selects the parent/root election policy. Defaults to
	// LargestMBR, the paper's rule (Figure 6).
	Election Election
	// TrackReorgStats enables the per-instance false-positive counters
	// that drive the dynamic reorganization of §3.2. Tracking forces
	// PublishBatch onto the sequential path (the counters are not
	// mergeable across workers).
	TrackReorgStats bool
	// DisableCoverRule turns off the Is_Better_MBR_Cover exchanges (the
	// CHECK_COVER module and its eager equivalents in the join path).
	// Only for the root-election ablation (experiment E9); the paper's
	// protocol always runs the cover rule.
	DisableCoverRule bool
	// PublishWorkers bounds the worker pool PublishBatch disseminates
	// with: 0 picks min(GOMAXPROCS, 8), 1 forces the sequential path,
	// and any other value is clamped to [1, 8]. Deliveries are identical
	// either way; only wall-clock changes.
	PublishWorkers int
}

func (p Params) withDefaults() Params {
	if p.Split == nil {
		p.Split = split.Quadratic{}
	}
	if p.Election == nil {
		p.Election = LargestMBR{}
	}
	return p
}

func (p Params) validate() error {
	if p.MinFanout < 1 {
		return fmt.Errorf("core: MinFanout must be >= 1, got %d", p.MinFanout)
	}
	if p.MaxFanout < 2*p.MinFanout {
		return fmt.Errorf("core: MaxFanout must be >= 2*MinFanout (got m=%d, M=%d)",
			p.MinFanout, p.MaxFanout)
	}
	if p.PublishWorkers < 0 {
		return fmt.Errorf("core: PublishWorkers must be >= 0, got %d", p.PublishWorkers)
	}
	return nil
}

// Instance is a materialized view of one tree node: the state a process
// maintains for one level where it is active (paper §3.2 "Data
// Structures"). Heights count up from the leaves: height 0 instances are
// leaves whose MBR equals the process filter; an instance at height h>0
// has children at height h-1.
//
// The engine stores instances in the tree's arena (arena.go); an
// Instance value is a read-only snapshot assembled on demand for
// inspection and tests. Mutating it does not change the tree.
type Instance struct {
	// Parent is the process owning this instance's parent node (at
	// height+1). The root instance's parent is the owning process itself.
	Parent ProcID
	// Children are the processes owning the child nodes at height-1.
	// Empty for leaves.
	Children []ProcID
	// MBR is the minimum bounding rectangle of the children's MBRs (for
	// leaves, the process filter).
	MBR geom.Rect
	// Underloaded mirrors the paper's underloaded flag: the children set
	// has fewer than m members.
	Underloaded bool
}

func (in *Instance) hasChild(id ProcID) bool {
	return hasID(in.Children, id)
}

func replaceID(ids []ProcID, old, new ProcID) {
	for i, c := range ids {
		if c == old {
			ids[i] = new
		}
	}
}

func hasID(ids []ProcID, id ProcID) bool {
	return indexOf(ids, id) >= 0
}

// Process is a subscriber: a physical peer owning a constant filter and
// one instance per level where it is active.
type Process struct {
	ID     ProcID
	Filter geom.Rect
	// inst is the instance table, indexed by height, holding arena
	// handles. A live process owns the contiguous range of heights 0..Top
	// (paper §3.2), so a slice is the natural layout; nilH entries mark
	// gaps left by corruption, and entries above Top can exist only
	// transiently mid-repair. Use at for reads so out-of-range heights
	// resolve to nilH.
	inst []Handle
	// Top is the height of the process's topmost instance.
	Top int
	// slot is the process's dense delivery slot, indexing the
	// generation-stamp tables of the publish path (recycled on leave).
	slot int32

	// Delivery accounting (pub/sub layer).
	Delivered int // events received
	FalsePos  int // events received but not matching Filter
}

// at returns the process's instance handle at height h, or nilH when h
// is out of range or vacant.
func (p *Process) at(h int) Handle {
	if h < 0 || h >= len(p.inst) {
		return nilH
	}
	return p.inst[h]
}

// instCount returns the number of instances the process currently owns.
func (p *Process) instCount() int {
	n := 0
	for _, x := range p.inst {
		if x != nilH {
			n++
		}
	}
	return n
}

// setInst stores handle x at height h, growing the table as needed.
func (p *Process) setInst(h int, x Handle) {
	for len(p.inst) <= h {
		p.inst = append(p.inst, nilH)
	}
	p.inst[h] = x
}

// clearInst vacates height h and trims trailing vacancies so the table
// length tracks the owned range. The handle is not released; callers
// that retire the instance for good must release it to the arena.
func (p *Process) clearInst(h int) {
	if h < 0 || h >= len(p.inst) {
		return
	}
	p.inst[h] = nilH
	n := len(p.inst)
	for n > 0 && p.inst[n-1] == nilH {
		n--
	}
	p.inst = p.inst[:n]
}

// Tree is the sequential DR-tree engine. It is not safe for concurrent
// use.
type Tree struct {
	params Params
	procs  map[ProcID]*Process
	rootID ProcID
	rootH  int
	nextID ProcID

	// ar is the arena every instance of this tree lives in.
	ar instArena

	// Dense delivery-slot allocator: every live process holds one slot
	// indexing the publish stamp tables; slots recycle on leave/crash.
	slotFree []int32
	nslots   int32

	// pendingFragments queues detached subtrees awaiting re-attachment
	// (drained by repair and stabilization passes).
	pendingFragments []fragment

	// pub is the sequential publish scratch state, reused across events
	// so dissemination stays allocation-free (see pubCtx).
	pub pubCtx
}

// fragment is a detached subtree: process id's instance chain topped at
// height h, waiting to be re-attached to the tree.
type fragment struct {
	id ProcID
	h  int
}

// New creates an empty DR-tree.
func New(p Params) (*Tree, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		params: p,
		procs:  make(map[ProcID]*Process),
		nextID: 1,
	}, nil
}

// MustNew is New that panics on invalid parameters; for tests.
func MustNew(p Params) *Tree {
	t, err := New(p)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// Close releases engine resources. The sequential engine holds none; the
// method exists so Tree satisfies the unified Engine interface alongside
// the goroutine-backed runtimes.
func (t *Tree) Close() error { return nil }

// Len returns the number of live processes.
func (t *Tree) Len() int { return len(t.procs) }

// Root returns the root process ID and the root height. For an empty
// tree it returns (NoProc, -1).
func (t *Tree) Root() (ProcID, int) {
	if len(t.procs) == 0 {
		return NoProc, -1
	}
	return t.rootID, t.rootH
}

// Height returns the number of levels of the tree: rootH+1 for nonempty
// trees, 0 for the empty tree.
func (t *Tree) Height() int {
	if len(t.procs) == 0 {
		return 0
	}
	return t.rootH + 1
}

// Proc returns the process with the given id, or nil.
func (t *Tree) Proc(id ProcID) *Process { return t.procs[id] }

// RootMBR returns the MBR of the root instance, or the empty rectangle
// for an empty tree. In a legal state this equals the union of every
// live filter.
func (t *Tree) RootMBR() geom.Rect {
	if x := t.at(t.rootID, t.rootH); x != nilH {
		return t.ar.mbr[x]
	}
	return geom.Rect{}
}

// ProcIDs returns all live process IDs in ascending order.
func (t *Tree) ProcIDs() []ProcID {
	out := make([]ProcID, 0, len(t.procs))
	for id := range t.procs {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Filter returns the subscription rectangle of process id.
func (t *Tree) Filter(id ProcID) (geom.Rect, bool) {
	p, ok := t.procs[id]
	if !ok {
		return geom.Rect{}, false
	}
	return p.Filter, true
}

// at returns the handle of process id's instance at height h, or nilH.
func (t *Tree) at(id ProcID, h int) Handle {
	p := t.procs[id]
	if p == nil {
		return nilH
	}
	return p.at(h)
}

// liveH reports whether handle x currently backs the live instance
// (owner, h). This is the cache-verification predicate: a recycled slot
// has owner NoProc or a different (owner, height) pair, and a process
// owns at most one instance per height, so a positive answer identifies
// the instance uniquely.
func (t *Tree) liveH(x Handle, owner ProcID, h int) bool {
	return x >= 0 && t.ar.owner[x] == owner && t.ar.height[x] == int32(h)
}

// kidHandle resolves the i-th child of instance x (child process c at
// height h), going through the kidH cache and writing back on miss.
func (t *Tree) kidHandle(x Handle, i int, c ProcID, h int) Handle {
	ch := t.ar.kidH[x][i]
	if t.liveH(ch, c, h) {
		return ch
	}
	ch = t.at(c, h)
	t.ar.kidH[x][i] = ch
	return ch
}

// kidHandleRO is kidHandle without the write-back, for the read-only
// traversals of the parallel disseminator.
func (t *Tree) kidHandleRO(x Handle, i int, c ProcID, h int) Handle {
	ch := t.ar.kidH[x][i]
	if t.liveH(ch, c, h) {
		return ch
	}
	return t.at(c, h)
}

// instance returns a read-only snapshot of process id's instance at
// height h, or nil. For inspection and tests; the engine itself works on
// handles.
func (t *Tree) instance(id ProcID, h int) *Instance {
	x := t.at(id, h)
	if x == nilH {
		return nil
	}
	return &Instance{
		Parent:      t.ar.parent[x],
		Children:    slices.Clone(t.ar.kids[x]),
		MBR:         t.ar.mbr[x],
		Underloaded: t.ar.under[x],
	}
}

// childMBR returns the MBR of child c's instance at height h (empty if
// missing). Interior nodes consult the children's MBRs to route and
// filter; this helper is the sequential stand-in for that lookup.
func (t *Tree) childMBR(c ProcID, h int) geom.Rect {
	x := t.at(c, h)
	if x == nilH {
		return geom.Rect{}
	}
	return t.ar.mbr[x]
}

// computeMBR recomputes the MBR of instance (id, h) from its children
// (paper's Compute_MBR) or from the filter for leaves.
func (t *Tree) computeMBR(id ProcID, h int) {
	p := t.procs[id]
	x := p.at(h)
	if h == 0 {
		t.ar.mbr[x] = p.Filter
		return
	}
	var mbr geom.Rect
	for i, c := range t.ar.kids[x] {
		if ch := t.kidHandle(x, i, c, h-1); ch != nilH && !mbr.Contains(t.ar.mbr[ch]) {
			mbr = mbr.Union(t.ar.mbr[ch])
		}
	}
	t.ar.mbr[x] = mbr
}

// refreshUnderloaded recomputes the underloaded flag of (id, h).
func (t *Tree) refreshUnderloaded(id ProcID, h int) {
	x := t.at(id, h)
	if x == nilH || h == 0 {
		return
	}
	t.ar.under[x] = len(t.ar.kids[x]) < t.params.MinFanout
}

// newInstance installs a fresh instance for p at height h and returns
// its handle. Any instance already stored at that height is discarded
// (its handle returns to the free list), matching the pointer-era
// semantics where the overwritten *Instance became garbage.
func (t *Tree) newInstance(p *Process, h int) Handle {
	if old := p.at(h); old != nilH {
		t.ar.release(old)
	}
	x := t.ar.alloc(p.ID, h, p.slot)
	if t.params.TrackReorgStats {
		t.ar.childFP[x] = make(map[ProcID]int)
	}
	p.setInst(h, x)
	if h > p.Top {
		p.Top = h
	}
	return x
}

// releaseInst retires the instance at (p, h) for good: the height is
// vacated and the handle goes back to the arena's free list.
func (t *Tree) releaseInst(p *Process, h int) {
	x := p.at(h)
	p.clearInst(h)
	if x != nilH {
		t.ar.release(x)
	}
}

// allocSlot assigns a dense delivery slot to a joining process.
func (t *Tree) allocSlot() int32 {
	if n := len(t.slotFree); n > 0 {
		s := t.slotFree[n-1]
		t.slotFree = t.slotFree[:n-1]
		return s
	}
	s := t.nslots
	t.nslots++
	return s
}

// dropProc removes a departing process: its remaining instances go back
// to the arena and its delivery slot is recycled.
func (t *Tree) dropProc(p *Process) {
	for h := len(p.inst) - 1; h >= 0; h-- {
		if p.inst[h] != nilH {
			t.ar.release(p.inst[h])
		}
	}
	p.inst = p.inst[:0]
	t.slotFree = append(t.slotFree, p.slot)
	delete(t.procs, p.ID)
}

// dims returns the dimensionality of the tree's filters (0 if empty).
func (t *Tree) dims() int {
	for _, p := range t.procs {
		return p.Filter.Dims()
	}
	return 0
}
