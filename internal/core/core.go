// Package core implements the DR-tree, the paper's primary contribution:
// a decentralized, self-stabilizing R-tree overlay for peer-to-peer
// content-based publish/subscribe (Bianchi, Datta, Felber, Gradinariu,
// ICDCS 2007, Section 3).
//
// Every tree node is owned by a physical process (a subscriber). A
// process is recursively its own child (paper §3): if p owns an interior
// node, p also owns one node on every level beneath it down to the
// leaves. We call each per-level node an Instance, identified by its
// height above the leaf level (leaves are height 0), so that a root split
// never renumbers existing instances.
//
// The package provides the sequential DR-tree engine: every protocol rule
// of the paper's Figures 7-14 (join, add-child with splitting and root
// election, controlled leave, the five stabilization checks, compaction,
// cover and false-positive-driven exchanges) is a directly callable and
// individually testable state transition. The message-passing runtime in
// internal/proto drives the same rules through an asynchronous network.
package core

import (
	"fmt"
	"slices"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// ProcID identifies a process (subscriber). IDs are assigned by the
// caller and must be positive.
type ProcID int

// NoProc is the zero ProcID, used as "no process".
const NoProc ProcID = 0

// Params configures a DR-tree.
type Params struct {
	// MinFanout is m: the minimum number of children of every non-root
	// interior node. Must be >= 1.
	MinFanout int
	// MaxFanout is M: the maximum number of children of any node. The
	// paper requires M >= 2m so splits can produce two legal groups.
	MaxFanout int
	// Split selects the node-splitting method (linear, quadratic, rstar).
	// Defaults to quadratic, the paper's primary method.
	Split split.Policy
	// Election selects the parent/root election policy. Defaults to
	// LargestMBR, the paper's rule (Figure 6).
	Election Election
	// TrackReorgStats enables the per-instance false-positive counters
	// that drive the dynamic reorganization of §3.2.
	TrackReorgStats bool
	// DisableCoverRule turns off the Is_Better_MBR_Cover exchanges (the
	// CHECK_COVER module and its eager equivalents in the join path).
	// Only for the root-election ablation (experiment E9); the paper's
	// protocol always runs the cover rule.
	DisableCoverRule bool
}

func (p Params) withDefaults() Params {
	if p.Split == nil {
		p.Split = split.Quadratic{}
	}
	if p.Election == nil {
		p.Election = LargestMBR{}
	}
	return p
}

func (p Params) validate() error {
	if p.MinFanout < 1 {
		return fmt.Errorf("core: MinFanout must be >= 1, got %d", p.MinFanout)
	}
	if p.MaxFanout < 2*p.MinFanout {
		return fmt.Errorf("core: MaxFanout must be >= 2*MinFanout (got m=%d, M=%d)",
			p.MinFanout, p.MaxFanout)
	}
	return nil
}

// Instance is one tree node: the state a process maintains for one level
// where it is active (paper §3.2 "Data Structures"). Heights count up
// from the leaves: height 0 instances are leaves whose MBR equals the
// process filter; an instance at height h>0 has children at height h-1.
type Instance struct {
	// Parent is the process owning this instance's parent node (at
	// height+1). The root instance's parent is the owning process itself.
	Parent ProcID
	// Children are the processes owning the child nodes at height-1.
	// Empty for leaves.
	Children []ProcID
	// MBR is the minimum bounding rectangle of the children's MBRs (for
	// leaves, the process filter).
	MBR geom.Rect
	// Underloaded mirrors the paper's underloaded flag: the children set
	// has fewer than m members.
	Underloaded bool

	// Dissemination statistics for the false-positive-driven
	// reorganization (§3.2 "Dynamic Reorganizations").
	seen    int
	selfFP  int
	childFP map[ProcID]int
}

func (in *Instance) hasChild(id ProcID) bool {
	for _, c := range in.Children {
		if c == id {
			return true
		}
	}
	return false
}

func (in *Instance) removeChild(id ProcID) bool {
	for i, c := range in.Children {
		if c == id {
			in.Children = append(in.Children[:i], in.Children[i+1:]...)
			return true
		}
	}
	return false
}

func replaceID(ids []ProcID, old, new ProcID) {
	for i, c := range ids {
		if c == old {
			ids[i] = new
		}
	}
}

func hasID(ids []ProcID, id ProcID) bool {
	return indexOf(ids, id) >= 0
}

// Process is a subscriber: a physical peer owning a constant filter and
// one instance per level where it is active.
type Process struct {
	ID     ProcID
	Filter geom.Rect
	// Inst is the instance table, indexed by height. A live process owns
	// the contiguous range of heights 0..Top (paper §3.2), so a slice is
	// the natural layout; nil entries mark gaps left by corruption, and
	// entries above Top can exist only transiently mid-repair. Use At for
	// reads so out-of-range heights resolve to nil.
	Inst []*Instance
	// Top is the height of the process's topmost instance.
	Top int

	// Delivery accounting (pub/sub layer).
	Delivered int // events received
	FalsePos  int // events received but not matching Filter
}

// At returns the process's instance at height h, or nil when h is out of
// range or vacant.
func (p *Process) At(h int) *Instance {
	if h < 0 || h >= len(p.Inst) {
		return nil
	}
	return p.Inst[h]
}

// InstCount returns the number of instances the process currently owns.
func (p *Process) InstCount() int {
	n := 0
	for _, in := range p.Inst {
		if in != nil {
			n++
		}
	}
	return n
}

// setInst stores in at height h, growing the table as needed.
func (p *Process) setInst(h int, in *Instance) {
	for len(p.Inst) <= h {
		p.Inst = append(p.Inst, nil)
	}
	p.Inst[h] = in
}

// clearInst vacates height h and trims trailing vacancies so the table
// length tracks the owned range.
func (p *Process) clearInst(h int) {
	if h < 0 || h >= len(p.Inst) {
		return
	}
	p.Inst[h] = nil
	n := len(p.Inst)
	for n > 0 && p.Inst[n-1] == nil {
		n--
	}
	p.Inst = p.Inst[:n]
}

// Tree is the sequential DR-tree engine. It is not safe for concurrent
// use.
type Tree struct {
	params Params
	procs  map[ProcID]*Process
	rootID ProcID
	rootH  int
	nextID ProcID

	// pendingFragments queues detached subtrees awaiting re-attachment
	// (drained by repair and stabilization passes).
	pendingFragments []fragment

	// Publish scratch state, reused across events so dissemination stays
	// allocation-light. pubSeen is generation-stamped: an entry marks its
	// process as having received the event of generation pubGen, which
	// makes per-event clearing O(1).
	pubSeen map[ProcID]int
	pubGen  int
	pubIDs  []ProcID
}

// fragment is a detached subtree: process id's instance chain topped at
// height h, waiting to be re-attached to the tree.
type fragment struct {
	id ProcID
	h  int
}

// New creates an empty DR-tree.
func New(p Params) (*Tree, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		params: p,
		procs:  make(map[ProcID]*Process),
		nextID: 1,
	}, nil
}

// MustNew is New that panics on invalid parameters; for tests.
func MustNew(p Params) *Tree {
	t, err := New(p)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// Close releases engine resources. The sequential engine holds none; the
// method exists so Tree satisfies the unified Engine interface alongside
// the goroutine-backed runtimes.
func (t *Tree) Close() error { return nil }

// Len returns the number of live processes.
func (t *Tree) Len() int { return len(t.procs) }

// Root returns the root process ID and the root height. For an empty
// tree it returns (NoProc, -1).
func (t *Tree) Root() (ProcID, int) {
	if len(t.procs) == 0 {
		return NoProc, -1
	}
	return t.rootID, t.rootH
}

// Height returns the number of levels of the tree: rootH+1 for nonempty
// trees, 0 for the empty tree.
func (t *Tree) Height() int {
	if len(t.procs) == 0 {
		return 0
	}
	return t.rootH + 1
}

// Proc returns the process with the given id, or nil.
func (t *Tree) Proc(id ProcID) *Process { return t.procs[id] }

// RootMBR returns the MBR of the root instance, or the empty rectangle
// for an empty tree. In a legal state this equals the union of every
// live filter.
func (t *Tree) RootMBR() geom.Rect {
	if in := t.instance(t.rootID, t.rootH); in != nil {
		return in.MBR
	}
	return geom.Rect{}
}

// ProcIDs returns all live process IDs in ascending order.
func (t *Tree) ProcIDs() []ProcID {
	out := make([]ProcID, 0, len(t.procs))
	for id := range t.procs {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Filter returns the subscription rectangle of process id.
func (t *Tree) Filter(id ProcID) (geom.Rect, bool) {
	p, ok := t.procs[id]
	if !ok {
		return geom.Rect{}, false
	}
	return p.Filter, true
}

// instance returns process id's instance at height h, or nil.
func (t *Tree) instance(id ProcID, h int) *Instance {
	p := t.procs[id]
	if p == nil {
		return nil
	}
	return p.At(h)
}

// childMBR returns the MBR of child c's instance at height h (empty if
// missing). Interior nodes consult the children's MBRs to route and
// filter; this helper is the sequential stand-in for that lookup.
func (t *Tree) childMBR(c ProcID, h int) geom.Rect {
	in := t.instance(c, h)
	if in == nil {
		return geom.Rect{}
	}
	return in.MBR
}

// computeMBR recomputes the MBR of instance (id, h) from its children
// (paper's Compute_MBR) or from the filter for leaves.
func (t *Tree) computeMBR(id ProcID, h int) {
	p := t.procs[id]
	in := p.At(h)
	if h == 0 {
		in.MBR = p.Filter
		return
	}
	var mbr geom.Rect
	for _, c := range in.Children {
		mbr = mbr.Union(t.childMBR(c, h-1))
	}
	in.MBR = mbr
}

// refreshUnderloaded recomputes the underloaded flag of (id, h).
func (t *Tree) refreshUnderloaded(id ProcID, h int) {
	in := t.instance(id, h)
	if in == nil || h == 0 {
		return
	}
	in.Underloaded = len(in.Children) < t.params.MinFanout
}

// newInstance installs a fresh instance for p at height h.
func (t *Tree) newInstance(p *Process, h int) *Instance {
	in := &Instance{}
	if t.params.TrackReorgStats {
		in.childFP = make(map[ProcID]int)
	}
	p.setInst(h, in)
	if h > p.Top {
		p.Top = h
	}
	return in
}

// dims returns the dimensionality of the tree's filters (0 if empty).
func (t *Tree) dims() int {
	for _, p := range t.procs {
		return p.Filter.Dims()
	}
	return 0
}
