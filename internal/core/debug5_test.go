package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestChurnCorruptionSeedSweep deterministically sweeps the
// churn+corruption+publish property over many seeds.
func TestChurnCorruptionSeedSweep(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewPCG(seed, 62))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
		n := 20 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			if _, err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*25, y+rng.Float64()*25)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:3] {
			if rng.Float64() < 0.5 {
				if _, err := tr.Leave(id); err != nil {
					t.Fatalf("seed %d leave %d: %v", seed, id, err)
				}
			} else if err := tr.Crash(id); err != nil {
				t.Fatalf("seed %d crash %d: %v", seed, id, err)
			}
		}
		tr.CorruptRandom(rng, 3)
		st := tr.Stabilize()
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("seed %d (stab %+v): %v\n%s", seed, st, err, tr.Describe(nil))
		}
		live := tr.ProcIDs()
		for k := 0; k < 10; k++ {
			ev := geom.Point{rng.Float64() * 120, rng.Float64() * 120}
			d, err := tr.Publish(live[rng.IntN(len(live))], ev)
			if err != nil {
				t.Fatalf("seed %d publish: %v", seed, err)
			}
			got := map[ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range live {
				f, _ := tr.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					t.Fatalf("seed %d: false negative for %d on %v\n%s", seed, id, ev, tr.Describe(nil))
				}
			}
		}
	}
}
