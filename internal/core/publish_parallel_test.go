package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"drtree/internal/geom"
)

// buildWorkerTree grows a seeded tree with an explicit worker setting.
func buildWorkerTree(t *testing.T, n int, seed uint64, workers int) *Tree {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: workers})
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+20, y+20)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestPublishBatchParallelEquivalence is the certification behind the
// parallel disseminator: for every worker count the same seeded batch
// must produce byte-identical Deliveries and identical per-process
// Delivered / FalsePos counters. Worker counts are forced explicitly so
// the test exercises the parallel path even on GOMAXPROCS=1 machines
// (where the auto setting would stay sequential).
func TestPublishBatchParallelEquivalence(t *testing.T) {
	const n, events = 160, 96
	rng := rand.New(rand.NewPCG(7, 77))
	batch := make([]Publication, events)
	for k := range batch {
		batch[k] = Publication{
			Producer: ProcID(1 + rng.IntN(n)),
			Event:    geom.Point{rng.Float64() * 220, rng.Float64() * 220},
		}
	}

	type snapshot struct {
		ds        []Delivery
		delivered map[ProcID]int
		falsePos  map[ProcID]int
	}
	run := func(workers int) snapshot {
		tr := buildWorkerTree(t, n, 11, workers)
		ds, err := tr.PublishBatch(batch)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		s := snapshot{ds: ds, delivered: map[ProcID]int{}, falsePos: map[ProcID]int{}}
		for _, id := range tr.ProcIDs() {
			p := tr.Proc(id)
			s.delivered[id] = p.Delivered
			s.falsePos[id] = p.FalsePos
		}
		return s
	}

	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for k := range want.ds {
			if !reflect.DeepEqual(got.ds[k], want.ds[k]) {
				t.Fatalf("workers=%d event %d:\n got %+v\nwant %+v", workers, k, got.ds[k], want.ds[k])
			}
		}
		if !reflect.DeepEqual(got.delivered, want.delivered) {
			t.Errorf("workers=%d: Delivered counters diverge", workers)
		}
		if !reflect.DeepEqual(got.falsePos, want.falsePos) {
			t.Errorf("workers=%d: FalsePos counters diverge", workers)
		}
	}
}

// TestPublishBatchParallelThenSequential interleaves parallel batches
// with single-event publishes on the same tree: the shared scratch state
// (generation stamps, delivery slots) must stay coherent across the two
// entry points.
func TestPublishBatchParallelThenSequential(t *testing.T) {
	const n = 120
	tr := buildWorkerTree(t, n, 13, 4)
	ref := buildWorkerTree(t, n, 13, 1)
	rng := rand.New(rand.NewPCG(5, 55))
	for round := 0; round < 6; round++ {
		batch := make([]Publication, 24)
		for k := range batch {
			batch[k] = Publication{
				Producer: ProcID(1 + rng.IntN(n)),
				Event:    geom.Point{rng.Float64() * 220, rng.Float64() * 220},
			}
		}
		got, err := tr.PublishBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PublishBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: batch deliveries diverge", round)
		}
		ev := geom.Point{rng.Float64() * 220, rng.Float64() * 220}
		producer := ProcID(1 + rng.IntN(n))
		gd, err := tr.Publish(producer, ev)
		if err != nil {
			t.Fatal(err)
		}
		wd, err := ref.Publish(producer, ev)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gd, wd) {
			t.Fatalf("round %d: single publish diverges after parallel batch", round)
		}
	}
}

// TestPublishBatchParallelReorgStatsGate verifies the parallel path is
// declined while reorganization statistics are on (the seen/selfFP
// counters are per-instance mutable state workers would race on), and
// the sequential fallback still tracks them.
func TestPublishBatchParallelReorgStatsGate(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 8, TrackReorgStats: true})
	for i := 1; i <= 60; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+20, y+20)); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]Publication, 32)
	for k := range batch {
		batch[k] = Publication{Producer: 1, Event: geom.Point{rng.Float64() * 220, rng.Float64() * 220}}
	}
	if _, err := tr.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	var seen int64
	for _, id := range tr.ProcIDs() {
		p := tr.Proc(id)
		for h := 1; h <= p.Top; h++ {
			if x := tr.at(id, h); x != nilH {
				seen += int64(tr.ar.seen[x])
			}
		}
	}
	if seen == 0 {
		t.Error("reorg counters untouched after batch publish; parallel path must fall back to sequential when TrackReorgStats is on")
	}
}

// TestPublishWorkersValidation pins the Params contract.
func TestPublishWorkersValidation(t *testing.T) {
	if _, err := New(Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: -1}); err == nil {
		t.Error("negative PublishWorkers must be rejected")
	}
	if _, err := New(Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 64}); err != nil {
		t.Errorf("large PublishWorkers should clamp, not error: %v", err)
	}
}
