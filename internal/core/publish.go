package core

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"drtree/internal/geom"
)

// Delivery reports the outcome of disseminating one event (paper §2.3 and
// the worked example of §3): which subscribers received it, how many
// inter-process messages it took, and the routing accuracy.
type Delivery struct {
	// Received lists every process that physically received the event
	// (via any of its instances), ascending.
	Received []ProcID
	// TruePositives are receivers whose filter matches the event.
	TruePositives []ProcID
	// FalsePositives are receivers whose filter does not match.
	FalsePositives []ProcID
	// Messages is the number of inter-process messages used. Traffic
	// between two instances of the same process is free (it stays inside
	// one peer).
	Messages int
	// InstanceVisits counts tree-node visits (instances entered),
	// including same-process hops; the protocol-step metric.
	InstanceVisits int
	// Rounds is the number of network rounds the dissemination took.
	// Message-passing engines report it; the sequential engine delivers
	// synchronously and always reports 0.
	Rounds int
}

// pubCtx is the per-disseminator scratch state: a slot-indexed
// generation-stamp table for O(1) per-event dedup and the receiver
// accumulator. The sequential engine owns one (Tree.pub); the parallel
// batch disseminator gives each worker its own, so traversals never
// share mutable state.
//
// Stamps are monotonic int64 generations and are never cleared: a slot
// recycled to a new process still holds a stamp strictly below every
// future generation, so it reads as "not seen" without zeroing.
type pubCtx struct {
	stamp []int64
	gen   int64
	ids   []ProcID
}

// receive records the physical delivery of the current event to process
// id (idempotent within the context's generation).
func (st *pubCtx) receive(id ProcID, sl int32) {
	if st.stamp[sl] == st.gen {
		return
	}
	st.stamp[sl] = st.gen
	st.ids = append(st.ids, id)
}

// grow makes the stamp table cover n slots.
func (st *pubCtx) grow(n int32) {
	if int32(len(st.stamp)) < n {
		st.stamp = append(st.stamp, make([]int64, int(n)-len(st.stamp))...)
	}
}

// Publish disseminates an event produced by process producer: the event
// climbs from the producer's topmost instance to the root and, at every
// step, descends into each sibling subtree whose MBR contains it
// (paper §3, dissemination example).
func (t *Tree) Publish(producer ProcID, ev geom.Point) (Delivery, error) {
	if t.procs[producer] == nil {
		return Delivery{}, fmt.Errorf("core: producer %d not in the tree", producer)
	}
	if d := t.dims(); len(ev) != d {
		return Delivery{}, fmt.Errorf("core: event has %d dims, tree uses %d", len(ev), d)
	}
	var d Delivery
	t.pub.grow(t.nslots)
	t.pub.gen++
	t.pub.ids = t.pub.ids[:0]
	t.disseminate(producer, ev, &d, &t.pub, true)

	// Exactly three result allocations: receivers, then true and false
	// positives at their exact sizes (counted up front).
	ids := t.pub.ids
	d.Received = make([]ProcID, len(ids))
	copy(d.Received, ids)
	slices.Sort(d.Received)
	ntp := 0
	for _, id := range ids {
		if t.procs[id].Filter.ContainsPoint(ev) {
			ntp++
		}
	}
	if ntp > 0 {
		d.TruePositives = make([]ProcID, 0, ntp)
	}
	if nfp := len(ids) - ntp; nfp > 0 {
		d.FalsePositives = make([]ProcID, 0, nfp)
	}
	for _, id := range d.Received {
		p := t.procs[id]
		p.Delivered++
		if p.Filter.ContainsPoint(ev) {
			d.TruePositives = append(d.TruePositives, id)
		} else {
			p.FalsePos++
			d.FalsePositives = append(d.FalsePositives, id)
		}
	}
	return d, nil
}

// disseminate runs one event through the overlay, recording receivers in
// st.ids (unsorted) and the message/visit counters in d. Callers
// materialize the Delivery slices from st.ids afterwards and account the
// per-process delivery counters while classifying.
//
// rw selects the cache discipline: true lets the traversal write back
// resolved parentH/kidH handles (the sequential path); false keeps the
// tree strictly read-only so concurrent workers can traverse it
// simultaneously (caches are pre-warmed by prepareRoutingCaches, misses
// fall back to the process map without writing).
func (t *Tree) disseminate(producer ProcID, ev geom.Point, d *Delivery, st *pubCtx, rw bool) {
	p := t.procs[producer]

	// The producer trivially receives its own event.
	st.receive(producer, p.slot)

	// Descend into the producer's own subtree from its topmost instance.
	t.descendEv(p.at(p.Top), producer, p.Top, ev, d, st, rw)

	// Climb to the root; at each parent, fan out into sibling subtrees
	// whose MBR contains the event.
	cur, h := producer, p.Top
	x := p.at(p.Top)
	for !(cur == t.rootID && h == t.rootH) {
		if x == nilH {
			break
		}
		parent := t.ar.parent[x]
		pp := t.procs[parent]
		if parent == NoProc || pp == nil {
			break
		}
		if parent != cur {
			d.Messages++
		}
		d.InstanceVisits++
		st.receive(parent, pp.slot)
		px := t.ar.parentH[x]
		if !t.liveH(px, parent, h+1) {
			px = pp.at(h + 1)
			if rw {
				t.ar.parentH[x] = px
			}
		}
		if t.params.TrackReorgStats {
			t.noteSeen(px, parent, ev)
		}
		if px == nilH {
			break
		}
		kids := t.ar.kids[px]
		for i, c := range kids {
			if c == cur {
				continue
			}
			var ch Handle
			if rw {
				ch = t.kidHandle(px, i, c, h)
			} else {
				ch = t.kidHandleRO(px, i, c, h)
			}
			if ch == nilH || !t.ar.mbr[ch].ContainsPoint(ev) {
				continue
			}
			if c != parent {
				d.Messages++
			}
			d.InstanceVisits++
			st.receive(c, t.ar.slot[ch])
			t.descendEv(ch, c, h, ev, d, st, rw)
		}
		cur, h, x = parent, h+1, px
	}
}

// Publication is one entry of a publish batch: an event and the process
// that produces it.
type Publication struct {
	Producer ProcID
	Event    geom.Point
}

// PublishBatch disseminates a batch of events and returns one Delivery
// per entry, index-aligned with the batch. Deliveries are identical to
// len(batch) sequential Publish calls (the routing is the same state
// transition, certified by internal/enginetest); the batch amortizes the
// per-event costs — input validation and the dimensionality check happen
// once, the per-tree dissemination scratch stays hot, and the result
// slices of the whole batch share three backing arrays instead of
// allocating three per event.
//
// With Params.PublishWorkers > 1 and a batch large enough to feed the
// pool, dissemination runs on a bounded worker pool: the tree is
// traversed strictly read-only, each worker owns its stamp table and
// receiver arena, events are assigned round-robin (deterministically),
// and the per-worker arenas are merged and classified sequentially —
// so the results are byte-identical to the sequential path.
func (t *Tree) PublishBatch(batch []Publication) ([]Delivery, error) {
	out := make([]Delivery, len(batch))
	if len(batch) == 0 {
		return out, nil
	}
	dims := t.dims()
	for i := range batch {
		if t.procs[batch[i].Producer] == nil {
			return nil, fmt.Errorf("core: producer %d not in the tree", batch[i].Producer)
		}
		if len(batch[i].Event) != dims {
			return nil, fmt.Errorf("core: event has %d dims, tree uses %d", len(batch[i].Event), dims)
		}
	}

	if w := t.publishWorkers(); w > 1 && len(batch) >= 2*w && !t.params.TrackReorgStats {
		t.publishBatchParallel(batch, out, w)
		return out, nil
	}

	// One receiver arena for the whole batch: segments are cut after the
	// dissemination loop because append may move the backing array.
	t.pub.grow(t.nslots)
	offs := make([]int, len(batch)+1)
	var arena []ProcID
	for i := range batch {
		t.pub.gen++
		t.pub.ids = t.pub.ids[:0]
		t.disseminate(batch[i].Producer, batch[i].Event, &out[i], &t.pub, true)
		arena = append(arena, t.pub.ids...)
		offs[i+1] = len(arena)
	}
	t.classifySegments(batch, out, arena, offs)
	return out, nil
}

// publishWorkers resolves Params.PublishWorkers: 0 is min(GOMAXPROCS, 8)
// and every value is clamped to [1, 8].
func (t *Tree) publishWorkers() int {
	w := t.params.PublishWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return min(max(w, 1), 8)
}

// publishBatchParallel fans the batch out over w workers. Worker k
// disseminates events k, k+w, k+2w, ... with its own pubCtx against the
// read-only tree, accumulating receivers in a per-worker arena with one
// offset per event; generations are allocated disjointly per event
// (base+index+1), so a worker's stamp table distinguishes its events
// without clearing. The merge phase stitches the per-worker arenas back
// into batch order and runs the same classification as the sequential
// path, which also applies the per-process delivery counters — workers
// never mutate shared state.
func (t *Tree) publishBatchParallel(batch []Publication, out []Delivery, w int) {
	t.prepareRoutingCaches()
	base := t.pub.gen
	n := len(batch)
	type wres struct {
		ids  []ProcID
		offs []int32
	}
	res := make([]wres, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st := pubCtx{stamp: make([]int64, t.nslots)}
			r := &res[k]
			r.offs = make([]int32, 0, (n-k+w-1)/w)
			for i := k; i < n; i += w {
				st.gen = base + int64(i) + 1
				t.disseminate(batch[i].Producer, batch[i].Event, &out[i], &st, false)
				r.offs = append(r.offs, int32(len(st.ids)))
			}
			r.ids = st.ids
		}(k)
	}
	wg.Wait()
	t.pub.gen = base + int64(n)

	offs := make([]int, n+1)
	total := 0
	for k := range res {
		total += len(res[k].ids)
	}
	arena := make([]ProcID, 0, total)
	for i := 0; i < n; i++ {
		r := &res[i%w]
		ord := i / w
		lo := int32(0)
		if ord > 0 {
			lo = r.offs[ord-1]
		}
		arena = append(arena, r.ids[lo:r.offs[ord]]...)
		offs[i+1] = len(arena)
	}
	t.classifySegments(batch, out, arena, offs)
}

// classifySegments sorts each event's receiver segment, classifies the
// receivers into true/false positives (two further shared arenas), and
// applies the per-process delivery counters.
func (t *Tree) classifySegments(batch []Publication, out []Delivery, arena []ProcID, offs []int) {
	// Every receiver is exactly one of true/false positive, so two more
	// arenas of the same total capacity hold every classification without
	// reallocating (the three-index sub-slices keep segments independent).
	tp := make([]ProcID, 0, len(arena))
	fp := make([]ProcID, 0, len(arena))
	for i := range batch {
		seg := arena[offs[i]:offs[i+1]:offs[i+1]]
		slices.Sort(seg)
		out[i].Received = seg
		t0, f0 := len(tp), len(fp)
		for _, id := range seg {
			p := t.procs[id]
			p.Delivered++
			if p.Filter.ContainsPoint(batch[i].Event) {
				tp = append(tp, id)
			} else {
				p.FalsePos++
				fp = append(fp, id)
			}
		}
		if len(tp) > t0 {
			out[i].TruePositives = tp[t0:len(tp):len(tp)]
		}
		if len(fp) > f0 {
			out[i].FalsePositives = fp[f0:len(fp):len(fp)]
		}
	}
}

// prepareRoutingCaches resolves every parentH and kidH cache entry so the
// read-only traversals of the parallel disseminator run without cache
// writes (and almost never fall back to the process map).
func (t *Tree) prepareRoutingCaches() {
	for _, p := range t.procs {
		for h, x := range p.inst {
			if x == nilH {
				continue
			}
			if par := t.ar.parent[x]; !t.liveH(t.ar.parentH[x], par, h+1) {
				t.ar.parentH[x] = t.at(par, h+1)
			}
			kids := t.ar.kids[x]
			kidH := t.ar.kidH[x]
			for i, c := range kids {
				if !t.liveH(kidH[i], c, h-1) {
					kidH[i] = t.at(c, h-1)
				}
			}
		}
	}
}

// descendEv forwards the event down from instance x = (id, h) into every
// child whose MBR contains it.
func (t *Tree) descendEv(x Handle, id ProcID, h int, ev geom.Point, d *Delivery, st *pubCtx, rw bool) {
	if h == 0 || x == nilH {
		return
	}
	if t.params.TrackReorgStats {
		t.noteSeen(x, id, ev)
	}
	kids := t.ar.kids[x]
	for i, c := range kids {
		var ch Handle
		if rw {
			ch = t.kidHandle(x, i, c, h-1)
		} else {
			ch = t.kidHandleRO(x, i, c, h-1)
		}
		if ch == nilH || !t.ar.mbr[ch].ContainsPoint(ev) {
			continue
		}
		if c != id {
			d.Messages++
		}
		d.InstanceVisits++
		st.receive(c, t.ar.slot[ch])
		t.descendEv(ch, c, h-1, ev, d, st, rw)
	}
}

// noteSeen updates the per-instance statistics used by the dynamic
// reorganization of §3.2: the instance's own would-be false positive and,
// for each child, the false positives the child would have experienced in
// the parent's place. x is the instance of process id; leaves and missing
// instances are skipped.
func (t *Tree) noteSeen(x Handle, id ProcID, ev geom.Point) {
	if x == nilH || t.ar.height[x] == 0 {
		return
	}
	t.ar.seen[x]++
	if !t.procs[id].Filter.ContainsPoint(ev) {
		t.ar.selfFP[x]++
	}
	for _, c := range t.ar.kids[x] {
		if c == id {
			continue
		}
		cp := t.procs[c]
		if cp != nil && !cp.Filter.ContainsPoint(ev) {
			t.ar.childFP[x][c]++
		}
	}
}

// ReorgStats summarizes a CheckReorg sweep.
type ReorgStats struct {
	Exchanges int
}

// CheckReorg performs the paper's false-positive-driven reorganization:
// each interior instance compares its own false-positive count with the
// count each child would have had in its place; when a child would do
// strictly better, parent and child exchange positions. Counters reset
// after each exchange. Requires Params.TrackReorgStats.
func (t *Tree) CheckReorg() ReorgStats {
	var st ReorgStats
	if !t.params.TrackReorgStats {
		return st
	}
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		for h := 1; h <= p.Top; h++ {
			x := p.at(h)
			if x == nilH || t.ar.seen[x] == 0 {
				continue
			}
			best := NoProc
			bestFP := t.ar.selfFP[x]
			for _, c := range t.ar.kids[x] {
				if c == id {
					continue
				}
				if fp, ok := t.ar.childFP[x][c]; ok && int32(fp) < bestFP {
					best, bestFP = c, int32(fp)
				}
			}
			if best != NoProc {
				t.resetReorgCounters(id)
				t.resetReorgCounters(best)
				t.exchangeRoles(id, best, h)
				st.Exchanges++
				break
			}
		}
	}
	return st
}

func (t *Tree) resetReorgCounters(id ProcID) {
	p := t.procs[id]
	if p == nil {
		return
	}
	for _, x := range p.inst {
		if x == nilH {
			continue
		}
		t.ar.seen[x], t.ar.selfFP[x] = 0, 0
		if t.ar.childFP[x] != nil {
			t.ar.childFP[x] = make(map[ProcID]int)
		}
	}
}

// ResetDeliveryStats clears the per-process delivery counters.
func (t *Tree) ResetDeliveryStats() {
	for _, p := range t.procs {
		p.Delivered, p.FalsePos = 0, 0
	}
}

// AccuracyReport aggregates delivery accuracy over a published workload
// for experiment E6.
type AccuracyReport struct {
	Events         int
	Deliveries     int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Messages       int
}

// FPRate returns false positives per delivery (0 if none).
func (r AccuracyReport) FPRate() float64 {
	if r.Deliveries == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(r.Deliveries)
}

// PublishAll publishes every event from the given producer (as one
// batch through the amortized pipeline) and verifies delivery against
// the ground truth (every matching subscriber must receive every event —
// no false negatives, §2.3).
func (t *Tree) PublishAll(producer ProcID, events []geom.Point) (AccuracyReport, error) {
	var rep AccuracyReport
	batch := make([]Publication, len(events))
	for i, ev := range events {
		batch[i] = Publication{Producer: producer, Event: ev}
	}
	ds, err := t.PublishBatch(batch)
	if err != nil {
		return rep, err
	}
	ids := t.ProcIDs()
	got := make(map[ProcID]bool, len(t.procs))
	for i, d := range ds {
		ev := events[i]
		rep.Events++
		rep.Deliveries += len(d.Received)
		rep.TruePositives += len(d.TruePositives)
		rep.FalsePositives += len(d.FalsePositives)
		rep.Messages += d.Messages
		clear(got)
		for _, id := range d.Received {
			got[id] = true
		}
		for _, id := range ids {
			if t.procs[id].Filter.ContainsPoint(ev) && !got[id] {
				rep.FalseNegatives++
			}
		}
	}
	return rep, nil
}
