package core

import (
	"fmt"
	"slices"

	"drtree/internal/geom"
)

// Delivery reports the outcome of disseminating one event (paper §2.3 and
// the worked example of §3): which subscribers received it, how many
// inter-process messages it took, and the routing accuracy.
type Delivery struct {
	// Received lists every process that physically received the event
	// (via any of its instances), ascending.
	Received []ProcID
	// TruePositives are receivers whose filter matches the event.
	TruePositives []ProcID
	// FalsePositives are receivers whose filter does not match.
	FalsePositives []ProcID
	// Messages is the number of inter-process messages used. Traffic
	// between two instances of the same process is free (it stays inside
	// one peer).
	Messages int
	// InstanceVisits counts tree-node visits (instances entered),
	// including same-process hops; the protocol-step metric.
	InstanceVisits int
	// Rounds is the number of network rounds the dissemination took.
	// Message-passing engines report it; the sequential engine delivers
	// synchronously and always reports 0.
	Rounds int
}

// Publish disseminates an event produced by process producer: the event
// climbs from the producer's topmost instance to the root and, at every
// step, descends into each sibling subtree whose MBR contains it
// (paper §3, dissemination example).
func (t *Tree) Publish(producer ProcID, ev geom.Point) (Delivery, error) {
	p := t.procs[producer]
	if p == nil {
		return Delivery{}, fmt.Errorf("core: producer %d not in the tree", producer)
	}
	if d := t.dims(); len(ev) != d {
		return Delivery{}, fmt.Errorf("core: event has %d dims, tree uses %d", len(ev), d)
	}
	var d Delivery
	t.disseminate(producer, ev, &d)

	d.Received = make([]ProcID, len(t.pubIDs))
	copy(d.Received, t.pubIDs)
	slices.Sort(d.Received)
	for _, id := range d.Received {
		if t.procs[id].Filter.ContainsPoint(ev) {
			d.TruePositives = append(d.TruePositives, id)
		} else {
			d.FalsePositives = append(d.FalsePositives, id)
		}
	}
	return d, nil
}

// disseminate runs one event through the overlay, recording receivers in
// t.pubIDs (unsorted) and the message/visit counters in d. Callers
// materialize the Delivery slices from t.pubIDs afterwards; the split
// lets Publish and PublishBatch share the routing while choosing their
// own result-memory strategy.
func (t *Tree) disseminate(producer ProcID, ev geom.Point, d *Delivery) {
	p := t.procs[producer]
	if t.pubSeen == nil {
		t.pubSeen = make(map[ProcID]int, len(t.procs))
	}
	t.pubGen++
	t.pubIDs = t.pubIDs[:0]

	// The producer trivially receives its own event.
	t.receive(producer, ev)

	// Descend into the producer's own subtree from its topmost instance.
	t.descend(producer, p.Top, producer, ev, d)

	// Climb to the root; at each parent, fan out into sibling subtrees
	// whose MBR contains the event.
	cur, h := producer, p.Top
	for !(cur == t.rootID && h == t.rootH) {
		in := t.instance(cur, h)
		if in == nil {
			break
		}
		parent := in.Parent
		if parent == NoProc || t.procs[parent] == nil {
			break
		}
		if parent != cur {
			d.Messages++
		}
		d.InstanceVisits++
		t.receive(parent, ev)
		t.noteSeen(parent, h+1, ev)
		pin := t.instance(parent, h+1)
		if pin == nil {
			break
		}
		for _, c := range pin.Children {
			if c == cur {
				continue
			}
			if t.childMBR(c, h).ContainsPoint(ev) {
				if c != parent {
					d.Messages++
				}
				d.InstanceVisits++
				t.receive(c, ev)
				t.descend(c, h, parent, ev, d)
			}
		}
		cur, h = parent, h+1
	}
}

// Publication is one entry of a publish batch: an event and the process
// that produces it.
type Publication struct {
	Producer ProcID
	Event    geom.Point
}

// PublishBatch disseminates a batch of events and returns one Delivery
// per entry, index-aligned with the batch. Deliveries are identical to
// len(batch) sequential Publish calls (the routing is the same state
// transition, certified by internal/enginetest); the batch amortizes the
// per-event costs — input validation and the dimensionality check happen
// once, the per-tree dissemination scratch stays hot, and the result
// slices of the whole batch share three backing arrays instead of
// allocating three per event.
func (t *Tree) PublishBatch(batch []Publication) ([]Delivery, error) {
	out := make([]Delivery, len(batch))
	if len(batch) == 0 {
		return out, nil
	}
	dims := t.dims()
	for i := range batch {
		if t.procs[batch[i].Producer] == nil {
			return nil, fmt.Errorf("core: producer %d not in the tree", batch[i].Producer)
		}
		if len(batch[i].Event) != dims {
			return nil, fmt.Errorf("core: event has %d dims, tree uses %d", len(batch[i].Event), dims)
		}
	}

	// One receiver arena for the whole batch: segments are cut after the
	// dissemination loop because append may move the backing array.
	offs := make([]int, len(batch)+1)
	var arena []ProcID
	for i := range batch {
		t.disseminate(batch[i].Producer, batch[i].Event, &out[i])
		arena = append(arena, t.pubIDs...)
		offs[i+1] = len(arena)
	}

	// Every receiver is exactly one of true/false positive, so two more
	// arenas of the same total capacity hold every classification without
	// reallocating (the three-index sub-slices keep segments independent).
	tp := make([]ProcID, 0, len(arena))
	fp := make([]ProcID, 0, len(arena))
	for i := range batch {
		seg := arena[offs[i]:offs[i+1]:offs[i+1]]
		slices.Sort(seg)
		out[i].Received = seg
		t0, f0 := len(tp), len(fp)
		for _, id := range seg {
			if t.procs[id].Filter.ContainsPoint(batch[i].Event) {
				tp = append(tp, id)
			} else {
				fp = append(fp, id)
			}
		}
		if len(tp) > t0 {
			out[i].TruePositives = tp[t0:len(tp):len(tp)]
		}
		if len(fp) > f0 {
			out[i].FalsePositives = fp[f0:len(fp):len(fp)]
		}
	}
	return out, nil
}

// descend forwards the event down from instance (id, h) into every child
// whose MBR contains it.
func (t *Tree) descend(id ProcID, h int, from ProcID, ev geom.Point, d *Delivery) {
	if h == 0 {
		return
	}
	in := t.instance(id, h)
	if in == nil {
		return
	}
	t.noteSeen(id, h, ev)
	for _, c := range in.Children {
		if !t.childMBR(c, h-1).ContainsPoint(ev) {
			continue
		}
		if c != id {
			d.Messages++
		}
		d.InstanceVisits++
		t.receive(c, ev)
		t.descend(c, h-1, id, ev, d)
	}
}

// receive records the physical delivery of ev to process id (idempotent
// within the current publish generation) and updates the process's
// accuracy counters.
func (t *Tree) receive(id ProcID, ev geom.Point) {
	if t.pubSeen[id] == t.pubGen {
		return
	}
	t.pubSeen[id] = t.pubGen
	t.pubIDs = append(t.pubIDs, id)
	p := t.procs[id]
	p.Delivered++
	if !p.Filter.ContainsPoint(ev) {
		p.FalsePos++
	}
}

// noteSeen updates the per-instance statistics used by the dynamic
// reorganization of §3.2: the instance's own would-be false positive and,
// for each child, the false positives the child would have experienced in
// the parent's place.
func (t *Tree) noteSeen(id ProcID, h int, ev geom.Point) {
	if !t.params.TrackReorgStats {
		return
	}
	in := t.instance(id, h)
	if in == nil || h == 0 {
		return
	}
	in.seen++
	if !t.procs[id].Filter.ContainsPoint(ev) {
		in.selfFP++
	}
	for _, c := range in.Children {
		if c == id {
			continue
		}
		cp := t.procs[c]
		if cp != nil && !cp.Filter.ContainsPoint(ev) {
			in.childFP[c]++
		}
	}
}

// ReorgStats summarizes a CheckReorg sweep.
type ReorgStats struct {
	Exchanges int
}

// CheckReorg performs the paper's false-positive-driven reorganization:
// each interior instance compares its own false-positive count with the
// count each child would have had in its place; when a child would do
// strictly better, parent and child exchange positions. Counters reset
// after each exchange. Requires Params.TrackReorgStats.
func (t *Tree) CheckReorg() ReorgStats {
	var st ReorgStats
	if !t.params.TrackReorgStats {
		return st
	}
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		for h := 1; h <= p.Top; h++ {
			in := p.At(h)
			if in == nil || in.seen == 0 {
				continue
			}
			best := NoProc
			bestFP := in.selfFP
			for _, c := range in.Children {
				if c == id {
					continue
				}
				if fp, ok := in.childFP[c]; ok && fp < bestFP {
					best, bestFP = c, fp
				}
			}
			if best != NoProc {
				t.resetReorgCounters(id)
				t.resetReorgCounters(best)
				t.exchangeRoles(id, best, h)
				st.Exchanges++
				break
			}
		}
	}
	return st
}

func (t *Tree) resetReorgCounters(id ProcID) {
	p := t.procs[id]
	if p == nil {
		return
	}
	for _, in := range p.Inst {
		if in == nil {
			continue
		}
		in.seen, in.selfFP = 0, 0
		if in.childFP != nil {
			in.childFP = make(map[ProcID]int)
		}
	}
}

// ResetDeliveryStats clears the per-process delivery counters.
func (t *Tree) ResetDeliveryStats() {
	for _, p := range t.procs {
		p.Delivered, p.FalsePos = 0, 0
	}
}

// AccuracyReport aggregates delivery accuracy over a published workload
// for experiment E6.
type AccuracyReport struct {
	Events         int
	Deliveries     int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Messages       int
}

// FPRate returns false positives per delivery (0 if none).
func (r AccuracyReport) FPRate() float64 {
	if r.Deliveries == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(r.Deliveries)
}

// PublishAll publishes every event from the given producer (as one
// batch through the amortized pipeline) and verifies delivery against
// the ground truth (every matching subscriber must receive every event —
// no false negatives, §2.3).
func (t *Tree) PublishAll(producer ProcID, events []geom.Point) (AccuracyReport, error) {
	var rep AccuracyReport
	batch := make([]Publication, len(events))
	for i, ev := range events {
		batch[i] = Publication{Producer: producer, Event: ev}
	}
	ds, err := t.PublishBatch(batch)
	if err != nil {
		return rep, err
	}
	ids := t.ProcIDs()
	got := make(map[ProcID]bool, len(t.procs))
	for i, d := range ds {
		ev := events[i]
		rep.Events++
		rep.Deliveries += len(d.Received)
		rep.TruePositives += len(d.TruePositives)
		rep.FalsePositives += len(d.FalsePositives)
		rep.Messages += d.Messages
		clear(got)
		for _, id := range d.Received {
			got[id] = true
		}
		for _, id := range ids {
			if t.procs[id].Filter.ContainsPoint(ev) && !got[id] {
				rep.FalseNegatives++
			}
		}
	}
	return rep, nil
}
