package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"drtree/internal/geom"
)

// buildBatchTree grows a seeded tree for the batch tests.
func buildBatchTree(t *testing.T, n int, seed uint64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+20, y+20)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestPublishBatchMatchesSequential runs the same seeded event stream
// through Publish and PublishBatch on twin trees and requires identical
// Deliveries — receivers, classification, message and visit counts.
func TestPublishBatchMatchesSequential(t *testing.T) {
	const n, events = 120, 64
	rng := rand.New(rand.NewPCG(3, 33))
	batch := make([]Publication, events)
	for k := range batch {
		batch[k] = Publication{
			Producer: ProcID(1 + rng.IntN(n)),
			Event:    geom.Point{rng.Float64() * 220, rng.Float64() * 220},
		}
	}

	seq := buildBatchTree(t, n, 9)
	var want []Delivery
	for _, pb := range batch {
		d, err := seq.Publish(pb.Producer, pb.Event)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}

	got, err := buildBatchTree(t, n, 9).PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != events {
		t.Fatalf("batch returned %d deliveries, want %d", len(got), events)
	}
	for k := range got {
		if !reflect.DeepEqual(got[k], want[k]) {
			t.Errorf("event %d: batch %+v, sequential %+v", k, got[k], want[k])
		}
	}
}

// TestPublishBatchValidation covers the batch entry's error paths: the
// whole batch is validated before any event disseminates.
func TestPublishBatchValidation(t *testing.T) {
	tr := buildBatchTree(t, 10, 4)
	if ds, err := tr.PublishBatch(nil); err != nil || len(ds) != 0 {
		t.Errorf("empty batch: %v, %v", ds, err)
	}
	before := tr.Proc(1).Delivered
	if _, err := tr.PublishBatch([]Publication{
		{Producer: 1, Event: geom.Point{1, 1}},
		{Producer: 999, Event: geom.Point{1, 1}},
	}); err == nil {
		t.Error("unknown producer must error")
	}
	if _, err := tr.PublishBatch([]Publication{
		{Producer: 1, Event: geom.Point{1, 1}},
		{Producer: 2, Event: geom.Point{1}},
	}); err == nil {
		t.Error("dimension mismatch must error")
	}
	if got := tr.Proc(1).Delivered; got != before {
		t.Errorf("failed validation must not deliver anything (Delivered %d -> %d)", before, got)
	}
}

// TestPublishBatchSharedArenas makes sure the per-event result slices
// cut from the shared arenas are independent: mutating one delivery's
// slices must not leak into another's.
func TestPublishBatchSharedArenas(t *testing.T) {
	tr := buildBatchTree(t, 40, 5)
	batch := []Publication{
		{Producer: 1, Event: geom.Point{50, 50}},
		{Producer: 2, Event: geom.Point{120, 120}},
		{Producer: 3, Event: geom.Point{80, 30}},
	}
	ds, err := tr.PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]ProcID, len(ds))
	for i := range ds {
		snapshot[i] = append([]ProcID(nil), ds[i].Received...)
	}
	// Appending through one segment must not clobber its neighbours.
	for i := range ds {
		ds[i].Received = append(ds[i].Received, 9999)
		ds[i].TruePositives = append(ds[i].TruePositives, 9999)
		ds[i].FalsePositives = append(ds[i].FalsePositives, 9999)
	}
	for i := range ds {
		if !reflect.DeepEqual(ds[i].Received[:len(snapshot[i])], snapshot[i]) {
			t.Errorf("event %d: appending to a sibling delivery corrupted Received", i)
		}
	}
}
