package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// Micro-benchmarks of the primitive DR-tree operations; the paper-level
// experiment benchmarks live at the repository root (bench_test.go).

func benchTree(b *testing.B, n int, pol split.Policy) (*Tree, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, uint64(n)))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, Split: pol})
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+15, y+15)); err != nil {
			b.Fatal(err)
		}
	}
	return tr, rng
}

func BenchmarkJoin1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(2, 2))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		for k := 1; k <= 1000; k++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Join(ProcID(k), geom.R2(x, y, x+15, y+15)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPublishN1000(b *testing.B) {
	tr, rng := benchTree(b, 1000, split.Quadratic{})
	ids := tr.ProcIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		if _, err := tr.Publish(ids[i%len(ids)], ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeaveJoinCycle(b *testing.B) {
	tr, rng := benchTree(b, 500, split.Quadratic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ProcID(10000 + i)
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Join(id, geom.R2(x, y, x+15, y+15)); err != nil {
			b.Fatal(err)
		}
		if err := tr.Leave(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStabilizeAfterCorruption(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr, _ := benchTree(b, 200, split.Quadratic{})
		tr.CorruptRandom(rng, 5)
		b.StartTimer()
		tr.Stabilize()
	}
}

func BenchmarkCheckLegalN1000(b *testing.B) {
	tr, _ := benchTree(b, 1000, split.Quadratic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.CheckLegal(); err != nil {
			b.Fatal(err)
		}
	}
}
