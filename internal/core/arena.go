package core

import "drtree/internal/geom"

// Handle addresses one instance inside a Tree's arena. Handles are dense
// int32 indexes into the arena's parallel slices; nilH marks "no
// instance". Freed handles are recycled through a free list, so a handle
// is only meaningful together with the (owner, height) pair it was
// resolved for — see instArena and (*Tree).liveH.
type Handle = int32

// nilH is the null handle.
const nilH Handle = -1

// instArena is the structure-of-arrays instance store of one Tree. Every
// per-instance field lives in its own slice, indexed by Handle, so the
// hot routing loops (publish.go) scan cache-linear arrays — in
// particular mbr, the minimum bounding rectangles — instead of chasing
// per-node heap objects.
//
// Free-list recycling: Leave/Crash/dissolve push handles onto free;
// alloc pops them first, reusing the kids/kidH slice capacity left
// behind. A freed slot keeps owner == NoProc, which makes every cached
// handle to it fail verification (process IDs are positive).
//
// Handle caches (parentH, kidH) are pure accelerators: the ProcID-based
// parent/kids fields remain the ground truth, and a cache entry is only
// trusted after verifying owner and height at the target slot. Because a
// process owns at most one instance per height, a verified (owner,
// height) pair identifies the live instance uniquely even after the slot
// was freed and recycled — a stale cache can therefore never alias a
// wrong instance, only miss.
type instArena struct {
	owner   []ProcID    // owning process; NoProc when the slot is free
	height  []int32     // instance height (leaves are 0)
	parent  []ProcID    // parent process (ground truth)
	parentH []Handle    // cached handle of the parent instance
	kids    [][]ProcID  // child processes (ground truth); empty for leaves
	kidH    [][]Handle  // cached handles of the children, parallel to kids
	mbr     []geom.Rect // minimum bounding rectangles (the hot SoA lane)
	under   []bool      // underloaded flag
	slot    []int32     // owner's dense delivery slot (see Tree.slots)

	// Reorganization statistics (§3.2), tracked only when
	// Params.TrackReorgStats is set.
	seen    []int32
	selfFP  []int32
	childFP []map[ProcID]int

	free []Handle // recycled handles
	live int      // number of live (allocated) handles
}

// alloc returns a fresh handle owned by (owner, h), recycling the free
// list first. The slot comes back with empty children and zeroed stats.
func (a *instArena) alloc(owner ProcID, h int, slot int32) Handle {
	if n := len(a.free); n > 0 {
		x := a.free[n-1]
		a.free = a.free[:n-1]
		a.owner[x] = owner
		a.height[x] = int32(h)
		a.parent[x] = NoProc
		a.parentH[x] = nilH
		a.kids[x] = a.kids[x][:0]
		a.kidH[x] = a.kidH[x][:0]
		a.mbr[x] = geom.Rect{}
		a.under[x] = false
		a.slot[x] = slot
		a.seen[x], a.selfFP[x] = 0, 0
		a.childFP[x] = nil
		a.live++
		return x
	}
	x := Handle(len(a.owner))
	a.owner = append(a.owner, owner)
	a.height = append(a.height, int32(h))
	a.parent = append(a.parent, NoProc)
	a.parentH = append(a.parentH, nilH)
	a.kids = append(a.kids, nil)
	a.kidH = append(a.kidH, nil)
	a.mbr = append(a.mbr, geom.Rect{})
	a.under = append(a.under, false)
	a.slot = append(a.slot, slot)
	a.seen = append(a.seen, 0)
	a.selfFP = append(a.selfFP, 0)
	a.childFP = append(a.childFP, nil)
	a.live++
	return x
}

// release frees handle x. The kids/kidH capacity stays with the slot for
// the next alloc; owner is cleared so stale cached handles to x can
// never verify.
func (a *instArena) release(x Handle) {
	a.owner[x] = NoProc
	a.parent[x] = NoProc
	a.parentH[x] = nilH
	a.kids[x] = a.kids[x][:0]
	a.kidH[x] = a.kidH[x][:0]
	a.childFP[x] = nil
	a.free = append(a.free, x)
	a.live--
}

// addKid appends child c to x. The first child of a slot gets capacity
// for a full node up front (M+1 so an overflowing node still fits before
// its split), so a node's whole lifetime costs at most one kids and one
// kidH allocation.
func (a *instArena) addKid(x Handle, c ProcID, maxFanout int) {
	if cap(a.kids[x]) == 0 {
		a.kids[x] = make([]ProcID, 0, maxFanout+1)
		a.kidH[x] = make([]Handle, 0, maxFanout+1)
	}
	a.kids[x] = append(a.kids[x], c)
	a.kidH[x] = append(a.kidH[x], nilH)
}

// setKids replaces the children of x, invalidating the handle cache. ids
// may alias a prefix of the current kids slice.
func (a *instArena) setKids(x Handle, ids []ProcID, maxFanout int) {
	if cap(a.kids[x]) < len(ids) {
		n := max(len(ids), maxFanout+1)
		a.kids[x] = append(make([]ProcID, 0, n), ids...)
		a.kidH[x] = make([]Handle, len(ids), n)
	} else {
		a.kids[x] = append(a.kids[x][:0], ids...)
		a.kidH[x] = a.kidH[x][:len(ids)]
	}
	for i := range a.kidH[x] {
		a.kidH[x][i] = nilH
	}
}

// removeKid deletes child c from x (first occurrence), keeping kids and
// kidH parallel. It reports whether c was present.
func (a *instArena) removeKid(x Handle, c ProcID) bool {
	kids := a.kids[x]
	for i, k := range kids {
		if k == c {
			a.kids[x] = append(kids[:i], kids[i+1:]...)
			kh := a.kidH[x]
			a.kidH[x] = append(kh[:i], kh[i+1:]...)
			return true
		}
	}
	return false
}

// replaceKid rewrites every occurrence of old to new in x's children,
// invalidating the affected cache entries.
func (a *instArena) replaceKid(x Handle, old, new ProcID) {
	for i, k := range a.kids[x] {
		if k == old {
			a.kids[x][i] = new
			a.kidH[x][i] = nilH
		}
	}
}

// ArenaStats describes the residency of the tree's instance arena: how
// many handle slots exist, how many are live, and how many sit on the
// free list awaiting recycling. Cap == Live + Free always holds; after
// churn, Free > 0 shows the free list absorbing Leave/Crash instead of
// growing the arena.
type ArenaStats struct {
	Cap  int // total handle slots ever allocated
	Live int // slots currently backing a live instance
	Free int // recycled slots available for reuse
}

// ArenaStats reports the instance-arena residency counters.
func (t *Tree) ArenaStats() ArenaStats {
	return ArenaStats{Cap: len(t.ar.owner), Live: t.ar.live, Free: len(t.ar.free)}
}
