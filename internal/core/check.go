package core

import (
	"fmt"
	"math"

	"drtree/internal/containment"
	"drtree/internal/geom"
)

// CheckLegal verifies Definition 3.1 (legal DR-tree state):
//
//   - every non-root, non-leaf node has between m and M children;
//   - parent and children variables are mutually coherent;
//   - no child offers a better cover than its parent's own child node;
//   - every non-leaf MBR is the union of its children's MBRs;
//
// plus the structural facts the definition presumes: a single root whose
// parent is itself, the "process is its own child" chain, all leaves at
// height 0, and every process reachable from the root.
func (t *Tree) CheckLegal() error {
	if len(t.procs) == 0 {
		return nil
	}
	rp := t.procs[t.rootID]
	if rp == nil {
		return fmt.Errorf("core: root %d is not a live process", t.rootID)
	}
	rx := rp.at(t.rootH)
	if rx == nilH {
		return fmt.Errorf("core: root %d has no instance at height %d", t.rootID, t.rootH)
	}
	if t.ar.parent[rx] != t.rootID {
		return fmt.Errorf("core: root instance parent is %d, want self", t.ar.parent[rx])
	}
	if t.rootH != rp.Top {
		return fmt.Errorf("core: root height %d != root process top %d", t.rootH, rp.Top)
	}
	if t.rootH > 0 && len(t.procs) > 1 && len(t.ar.kids[rx]) < 2 {
		return fmt.Errorf("core: interior root must have >= 2 children, has %d", len(t.ar.kids[rx]))
	}

	m, M := t.params.MinFanout, t.params.MaxFanout
	reached := make(map[ProcID]bool)

	var walk func(id ProcID, h int) error
	walk = func(id ProcID, h int) error {
		p := t.procs[id]
		if p == nil {
			return fmt.Errorf("core: dead process %d referenced at height %d", id, h)
		}
		x := p.at(h)
		if x == nilH {
			return fmt.Errorf("core: process %d missing instance at height %d", id, h)
		}
		kids := t.ar.kids[x]
		if h == 0 {
			reached[id] = true
			if len(kids) != 0 {
				return fmt.Errorf("core: leaf instance of %d has children", id)
			}
			if !t.ar.mbr[x].Equal(p.Filter) {
				return fmt.Errorf("core: leaf MBR of %d is %v, want filter %v", id, t.ar.mbr[x], p.Filter)
			}
			return nil
		}
		isRoot := id == t.rootID && h == t.rootH
		if !isRoot && len(kids) < m {
			return fmt.Errorf("core: node (%d,%d) underflows: %d < m=%d", id, h, len(kids), m)
		}
		if len(kids) > M {
			return fmt.Errorf("core: node (%d,%d) overflows: %d > M=%d", id, h, len(kids), M)
		}
		if !hasID(kids, id) {
			return fmt.Errorf("core: node (%d,%d) violates the own-child invariant", id, h)
		}
		ownMBR := t.childMBR(id, h-1)
		var union geom.Rect
		seen := make(map[ProcID]bool, len(kids))
		for _, c := range kids {
			if seen[c] {
				return fmt.Errorf("core: node (%d,%d) lists child %d twice", id, h, c)
			}
			seen[c] = true
			cx := t.at(c, h-1)
			if cx == nilH {
				return fmt.Errorf("core: child %d of (%d,%d) has no instance at %d", c, id, h, h-1)
			}
			if t.ar.parent[cx] != id {
				return fmt.Errorf("core: child %d of (%d,%d) names parent %d", c, id, h, t.ar.parent[cx])
			}
			if c != id && !t.params.DisableCoverRule && betterCover(t.ar.mbr[cx], ownMBR) {
				return fmt.Errorf("core: child %d (area %.2f) covers better than parent %d (area %.2f) at height %d",
					c, t.ar.mbr[cx].Area(), id, ownMBR.Area(), h)
			}
			union = union.Union(t.ar.mbr[cx])
			if err := walk(c, h-1); err != nil {
				return err
			}
		}
		if !t.ar.mbr[x].Equal(union) {
			return fmt.Errorf("core: MBR of (%d,%d) is %v, want %v", id, h, t.ar.mbr[x], union)
		}
		// Underloaded flag coherence.
		if want := len(kids) < m; t.ar.under[x] != want {
			return fmt.Errorf("core: underloaded flag of (%d,%d) is %v, want %v", id, h, t.ar.under[x], want)
		}
		return nil
	}
	if err := walk(t.rootID, t.rootH); err != nil {
		return err
	}
	if len(reached) != len(t.procs) {
		return fmt.Errorf("core: only %d of %d processes reachable from the root", len(reached), len(t.procs))
	}
	// Every process's instance chain must be contiguous 0..Top and every
	// instance accounted for.
	for id, p := range t.procs {
		for h := 0; h <= p.Top; h++ {
			if p.at(h) == nilH {
				return fmt.Errorf("core: process %d chain has a gap at height %d", id, h)
			}
		}
		if n := p.instCount(); n != p.Top+1 {
			return fmt.Errorf("core: process %d owns %d instances, top=%d", id, n, p.Top)
		}
	}
	// Arena residency coherence: live slots equal the instances reachable
	// through the process tables, and every live slot's owner/height pair
	// resolves back to itself (no aliasing between free list and live
	// handles).
	total := 0
	for _, p := range t.procs {
		total += p.instCount()
	}
	if total != t.ar.live {
		return fmt.Errorf("core: arena accounts %d live instances, process tables own %d", t.ar.live, total)
	}
	for id, p := range t.procs {
		for h, x := range p.inst {
			if x == nilH {
				continue
			}
			if t.ar.owner[x] != id || t.ar.height[x] != int32(h) {
				return fmt.Errorf("core: handle %d of process %d at height %d is owned by (%d,%d)",
					x, id, h, t.ar.owner[x], t.ar.height[x])
			}
		}
	}
	return nil
}

// CheckWeakContainment verifies Property 3.1: for filters S1 ⊏ S2
// (strictly contained), the topmost instance of S1 must not be an
// ancestor of the topmost instance of S2. It returns the number of
// ordered pairs violating the property.
func (t *Tree) CheckWeakContainment() int {
	violations := 0
	ids := t.ProcIDs()
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			// a strictly contained in b: a must not be an ancestor of b.
			if t.procs[b].Filter.StrictlyContains(t.procs[a].Filter) {
				if t.isAncestor(a, b) {
					violations++
				}
			}
		}
	}
	return violations
}

// CheckStrongContainment verifies Property 3.2: for S1 ⊏ S2, either the
// topmost instance of S2 is an ancestor or sibling of the topmost
// instance of S1, or some S3 containing S1 (and incomparable with S2) is.
// It returns the number of containee/container pairs violating the
// property.
func (t *Tree) CheckStrongContainment() int {
	violations := 0
	ids := t.ProcIDs()
	for _, s1 := range ids {
		for _, s2 := range ids {
			if s1 == s2 || !t.procs[s2].Filter.StrictlyContains(t.procs[s1].Filter) {
				continue
			}
			if t.isAncestor(s2, s1) || t.isSibling(s2, s1) {
				continue
			}
			ok := false
			for _, s3 := range ids {
				if s3 == s1 || s3 == s2 {
					continue
				}
				f3 := t.procs[s3].Filter
				if f3.StrictlyContains(t.procs[s1].Filter) &&
					!f3.Contains(t.procs[s2].Filter) && !t.procs[s2].Filter.Contains(f3) &&
					(t.isAncestor(s3, s1) || t.isSibling(s3, s1)) {
					ok = true
					break
				}
			}
			if !ok {
				violations++
			}
		}
	}
	return violations
}

// isAncestor reports whether a's topmost instance is a strict ancestor of
// b's topmost instance.
func (t *Tree) isAncestor(a, b ProcID) bool {
	pb := t.procs[b]
	if pb == nil || t.procs[a] == nil {
		return false
	}
	cur, h := b, pb.Top
	for !(cur == t.rootID && h == t.rootH) {
		x := t.at(cur, h)
		if x == nilH {
			return false
		}
		next := t.ar.parent[x]
		if next == cur && h >= t.procs[cur].Top {
			return false
		}
		cur, h = next, h+1
		if cur == a {
			return true
		}
		if h > t.rootH {
			return false
		}
	}
	return false
}

// isSibling reports whether the topmost instances of a and b share a
// parent instance.
func (t *Tree) isSibling(a, b ProcID) bool {
	pa, pb := t.procs[a], t.procs[b]
	if pa == nil || pb == nil {
		return false
	}
	xa, xb := pa.at(pa.Top), pb.at(pb.Top)
	if xa == nilH || xb == nilH {
		return false
	}
	return pa.Top == pb.Top && t.ar.parent[xa] == t.ar.parent[xb]
}

// ContainmentGraph builds the containment graph of the live filters,
// labeling items "P<id>".
func (t *Tree) ContainmentGraph() (*containment.Graph, error) {
	items := make([]containment.Item, 0, len(t.procs))
	for _, id := range t.ProcIDs() {
		items = append(items, containment.Item{
			Label: fmt.Sprintf("P%d", id),
			Rect:  t.procs[id].Filter,
		})
	}
	return containment.Build(items)
}

// TreeStats aggregates the structural metrics of Lemma 3.1 (experiment
// E2) and the coverage/overlap quality metrics of experiment E8.
type TreeStats struct {
	Procs     int
	Height    int     // number of levels
	HeightLog float64 // log_m(N), the paper's bound reference
	Nodes     int     // total instances
	// MaxLinks / AvgLinks measure per-process memory: stored parent and
	// children references across all of a process's instances. Lemma 3.1
	// bounds this by O(M log^2 N / log m).
	MaxLinks int
	AvgLinks float64
	// MemoryBound is the lemma's reference value M * log2(N)^2 / log2(m).
	MemoryBound   float64
	TotalCoverage float64 // sum of interior MBR areas
	TotalOverlap  float64 // sum of pairwise sibling MBR overlaps
}

// ComputeStats walks the overlay and gathers TreeStats.
func (t *Tree) ComputeStats() TreeStats {
	st := TreeStats{Procs: len(t.procs), Height: t.Height()}
	if st.Procs == 0 {
		return st
	}
	n := float64(st.Procs)
	m := float64(t.params.MinFanout)
	if m > 1 {
		st.HeightLog = math.Log(n) / math.Log(m)
	}
	if m > 1 {
		l2 := math.Log2(n)
		st.MemoryBound = float64(t.params.MaxFanout) * l2 * l2 / math.Log2(m)
	}
	totalLinks := 0
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		links := 0
		for h := 0; h <= p.Top; h++ {
			x := p.at(h)
			if x == nilH {
				continue
			}
			st.Nodes++
			kids := t.ar.kids[x]
			links += 1 + len(kids) // parent + children references
			if h >= 1 {
				for i, c := range kids {
					mbrC := t.childMBR(c, h-1)
					st.TotalCoverage += mbrC.Area()
					for _, c2 := range kids[i+1:] {
						st.TotalOverlap += mbrC.OverlapArea(t.childMBR(c2, h-1))
					}
				}
			}
		}
		totalLinks += links
		if links > st.MaxLinks {
			st.MaxLinks = links
		}
	}
	st.AvgLinks = float64(totalLinks) / n
	return st
}
