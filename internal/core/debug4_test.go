package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestCrashRepairSeedSweep deterministically sweeps seeds for the crash
// repair property to catch rare repair bugs.
func TestCrashRepairSeedSweep(t *testing.T) {
	for seed := uint64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewPCG(seed, 53))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		n := 12 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*400, rng.Float64()*400
			if _, err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				t.Fatalf("seed %d join: %v", seed, err)
			}
		}
		kills := 1 + rng.IntN(n/3)
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := tr.Crash(id); err != nil {
				t.Fatalf("seed %d crash: %v", seed, err)
			}
		}
		st := tr.RepairCrash()
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("seed %d (n=%d kills=%d, stats %+v): %v\n%s",
				seed, n, kills, st, err, tr.Describe(nil))
		}
		if tr.Len() != n-kills {
			t.Fatalf("seed %d: len %d want %d", seed, tr.Len(), n-kills)
		}
	}
}
