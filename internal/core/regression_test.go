package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// Regression tests distilled from past debugging sessions. Each test
// replays a scenario (or a deterministic seed sweep) that once exposed a
// bug, and guards the invariant that was broken at the time.

// TestRegressionChurnSeedLegalAfterEveryOp replays the churn trace of
// seed 0x264e2dec53bef8c7 (the failing seed of TestPropertyLegalUnderChurn):
// 120 mixed join/leave operations, asserting CheckLegal after every single
// operation. It once caught a cover-invariant violation left behind by a
// join that routed through instances P30/P31 mid-repair.
func TestRegressionChurnSeedLegalAfterEveryOp(t *testing.T) {
	seed := uint64(0x264e2dec53bef8c7)
	rng := rand.New(rand.NewPCG(seed, 52))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	var live []ProcID
	next := ProcID(1)
	for op := 0; op < 120; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64()*300, rng.Float64()*300
			if err := tr.Join(next, geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				t.Fatalf("op %d join %d: %v", op, next, err)
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after join %d: %v\n%s", op, next, err, tr.Describe(nil))
			}
			live = append(live, next)
			next++
		} else {
			k := rng.IntN(len(live))
			id := live[k]
			if err := tr.Leave(id); err != nil {
				t.Fatalf("op %d leave %d: %v", op, id, err)
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after leave %d: %v\n%s", op, id, err, tr.Describe(nil))
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
}

// TestRegressionCorruptionSeedConverges replays the random-corruption
// seed 0x9647d9bd18e8dad7: build a tree, apply a random burst of
// corruptions from the paper's fault model, and require Stabilize to
// converge back to a legal configuration. The seed once drove Stabilize
// into a non-converging repair loop.
func TestRegressionCorruptionSeedConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9647d9bd18e8dad7, 51))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
	n := 10 + rng.IntN(40)
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*40, y+rng.Float64()*40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("before corruption: %v", err)
	}
	tr.CorruptRandom(rng, 1+rng.IntN(8))
	st := tr.Stabilize()
	if !st.Converged {
		t.Fatalf("did not converge:\n%s", tr.Describe(nil))
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("after stabilize: %v\n%s", err, tr.Describe(nil))
	}
}

// TestRegressionCrashRepairSeedSweep sweeps 400 deterministic seeds of
// the crash-repair property: build, crash a random subset, RepairCrash,
// and require a legal configuration over exactly the survivors. The sweep
// once exposed rare repair bugs where orphaned fragments were lost or
// re-attached at the wrong height.
func TestRegressionCrashRepairSeedSweep(t *testing.T) {
	for seed := uint64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewPCG(seed, 53))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		n := 12 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*400, rng.Float64()*400
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				t.Fatalf("seed %d join: %v", seed, err)
			}
		}
		kills := 1 + rng.IntN(n/3)
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := tr.Crash(id); err != nil {
				t.Fatalf("seed %d crash: %v", seed, err)
			}
		}
		st := tr.RepairCrash()
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("seed %d (n=%d kills=%d, stats %+v): %v\n%s",
				seed, n, kills, st, err, tr.Describe(nil))
		}
		if tr.Len() != n-kills {
			t.Fatalf("seed %d: len %d want %d", seed, tr.Len(), n-kills)
		}
	}
}

// TestRegressionChurnCorruptionNoFalseNegatives sweeps 300 deterministic
// seeds of the full lifecycle: build, mixed leaves and crashes, random
// corruption, stabilization, then publishing — asserting the paper's
// zero-false-negative delivery guarantee (§2.3) holds on the repaired
// tree. It once caught events silently skipping subtrees whose MBR cache
// was left stale by the repair.
func TestRegressionChurnCorruptionNoFalseNegatives(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewPCG(seed, 62))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
		n := 20 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*25, y+rng.Float64()*25)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:3] {
			if rng.Float64() < 0.5 {
				if err := tr.Leave(id); err != nil {
					t.Fatalf("seed %d leave %d: %v", seed, id, err)
				}
			} else if err := tr.Crash(id); err != nil {
				t.Fatalf("seed %d crash %d: %v", seed, id, err)
			}
		}
		tr.CorruptRandom(rng, 3)
		st := tr.Stabilize()
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("seed %d (stab %+v): %v\n%s", seed, st, err, tr.Describe(nil))
		}
		live := tr.ProcIDs()
		for k := 0; k < 10; k++ {
			ev := geom.Point{rng.Float64() * 120, rng.Float64() * 120}
			d, err := tr.Publish(live[rng.IntN(len(live))], ev)
			if err != nil {
				t.Fatalf("seed %d publish: %v", seed, err)
			}
			got := map[ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range live {
				f, _ := tr.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					t.Fatalf("seed %d: false negative for %d on %v\n%s", seed, id, ev, tr.Describe(nil))
				}
			}
		}
	}
}

// TestRegressionJoinAfterCrashNoStabilize sweeps seeded join/leave/crash
// interleavings with no stabilization between operations. A Crash leaves
// the root reference dangling until the periodic checks fire, and Join
// once dereferenced that dead root (nil instance panic, found by the
// concurrent-broker hammer in internal/pubsub); joins must instead
// repair the reference eagerly, like the connection oracle naming a live
// root. After each churn burst, Stabilize must still restore legality.
func TestRegressionJoinAfterCrashNoStabilize(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewPCG(seed, 1))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		live := map[ProcID]bool{}
		for k := 0; k < 400; k++ {
			id := ProcID(1 + rng.IntN(25))
			switch rng.IntN(4) {
			case 0, 1:
				if !live[id] {
					x, y := rng.Float64()*80, rng.Float64()*80
					if err := tr.Join(id, geom.R2(x, y, x+15, y+15)); err != nil {
						t.Fatalf("seed %d: join %d: %v", seed, id, err)
					}
					live[id] = true
				}
			case 2:
				if live[id] {
					if err := tr.Leave(id); err != nil {
						t.Fatalf("seed %d: leave %d: %v", seed, id, err)
					}
					delete(live, id)
				}
			case 3:
				if live[id] {
					if err := tr.Crash(id); err != nil {
						t.Fatalf("seed %d: crash %d: %v", seed, id, err)
					}
					delete(live, id)
				}
			}
		}
		if st := tr.Stabilize(); !st.Converged {
			t.Fatalf("seed %d: stabilization did not converge", seed)
		}
		if len(live) > 0 {
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("seed %d: illegal after churn + stabilize: %v", seed, err)
			}
		}
	}
}
