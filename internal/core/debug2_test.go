package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestDebugChurnSeedVerbose narrows the op-55 failure: state before the
// join, the join target, and the state after.
func TestDebugChurnSeedVerbose(t *testing.T) {
	seed := uint64(0x264e2dec53bef8c7)
	rng := rand.New(rand.NewPCG(seed, 52))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	var live []ProcID
	next := ProcID(1)
	for op := 0; op < 120; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64()*300, rng.Float64()*300
			f := geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)
			if op == 55 {
				t.Logf("before join %d (filter %v):\n%s", next, f, tr.Describe(nil))
				t.Logf("P31@1 mbr=%v P30@1 mbr=%v", tr.childMBR(31, 1), tr.childMBR(30, 1))
			}
			if _, err := tr.Join(next, f); err != nil {
				t.Fatalf("op %d join: %v", op, err)
			}
			if op == 55 {
				t.Logf("after join %d:\n%s", next, tr.Describe(nil))
				t.Logf("P31@1 mbr=%v P30@1 mbr=%v", tr.childMBR(31, 1), tr.childMBR(30, 1))
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after join %d: %v", op, next, err)
			}
			live = append(live, next)
			next++
		} else {
			k := rng.IntN(len(live))
			if _, err := tr.Leave(live[k]); err != nil {
				t.Fatalf("op %d leave: %v", op, live[k])
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after leave %d: %v", op, live[k], err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
}
