package core

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"testing"

	"drtree/internal/geom"
)

// TestDifferentialChurn500GoldenTranscript replays a seeded 500-node
// churn workload (500 joins, 250 mixed churn ops, 200 published events)
// and requires the tree shape and every delivery set to be byte-identical
// to testdata/churn500.golden, which was recorded with the pre-refactor
// map-backed instance storage. This pins down that the slice-backed
// storage (and the allocation-light Join/Publish paths) are pure layout
// changes with zero behavioral drift.
func TestDifferentialChurn500GoldenTranscript(t *testing.T) {
	var b strings.Builder
	rng := rand.New(rand.NewPCG(7, 500))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	next := ProcID(1)
	var live []ProcID

	join := func() {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		w, h := 5+rng.Float64()*40, 5+rng.Float64()*40
		if err := tr.Join(next, geom.R2(x, y, x+w, y+h)); err != nil {
			t.Fatalf("join %d: %v", next, err)
		}
		live = append(live, next)
		next++
	}

	for i := 0; i < 500; i++ {
		join()
	}
	for op := 0; op < 250; op++ {
		if rng.Float64() < 0.5 {
			join()
		} else {
			k := rng.IntN(len(live))
			if err := tr.Leave(live[k]); err != nil {
				t.Fatalf("op %d leave %d: %v", op, live[k], err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}

	fmt.Fprintf(&b, "procs=%d\n", tr.Len())
	b.WriteString(tr.Describe(nil))
	for e := 0; e < 200; e++ {
		ev := geom.Point{rng.Float64() * 1100, rng.Float64() * 1100}
		prod := live[rng.IntN(len(live))]
		d, err := tr.Publish(prod, ev)
		if err != nil {
			t.Fatalf("event %d: %v", e, err)
		}
		fmt.Fprintf(&b, "event %d from P%d at %v: msgs=%d visits=%d recv=%v tp=%v fp=%v\n",
			e, prod, ev, d.Messages, d.InstanceVisits, d.Received, d.TruePositives, d.FalsePositives)
	}

	want, err := os.ReadFile("testdata/churn500.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	got := b.String()
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("transcript diverges from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("transcript length differs: got %d lines, want %d", len(gl), len(wl))
	}
}
