package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestDebugChurnSeed replays the failing seed from TestPropertyLegalUnderChurn
// with verbose output. Kept as a regression test for that exact trace.
func TestDebugChurnSeed(t *testing.T) {
	seed := uint64(0x264e2dec53bef8c7)
	rng := rand.New(rand.NewPCG(seed, 52))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	var live []ProcID
	next := ProcID(1)
	for op := 0; op < 120; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64()*300, rng.Float64()*300
			if _, err := tr.Join(next, geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				t.Fatalf("op %d join %d: %v", op, next, err)
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after join %d: %v\n%s", op, next, err, tr.Describe(nil))
			}
			live = append(live, next)
			next++
		} else {
			k := rng.IntN(len(live))
			id := live[k]
			if _, err := tr.Leave(id); err != nil {
				t.Fatalf("op %d leave %d: %v", op, id, err)
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("op %d after leave %d: %v\n%s", op, id, err, tr.Describe(nil))
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
}
