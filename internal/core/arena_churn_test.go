package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestArenaChurnHandleRecycling is the free-list aliasing property test:
// under sustained Join / Leave / Crash / UpdateFilter churn with the
// parallel disseminator active, a recycled handle must never be reachable
// from two process tables at once, and the arena's live/free accounting
// must match the process tables exactly. The invariants are asserted both
// by direct sweeps here and by the arena-coherence section of CheckLegal.
// Run under -race this also certifies that publishing between churn
// operations never races the recycling.
func TestArenaChurnHandleRecycling(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewPCG(seed, seed*31))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 4})
		live := map[ProcID]bool{}
		next := ProcID(1)
		join := func() {
			x, y := rng.Float64()*120, rng.Float64()*120
			if err := tr.Join(next, geom.R2(x, y, x+18, y+18)); err != nil {
				t.Fatalf("seed %d: join %d: %v", seed, next, err)
			}
			live[next] = true
			next++
		}
		pick := func() ProcID {
			ids := tr.ProcIDs()
			return ids[rng.IntN(len(ids))]
		}
		for i := 0; i < 40; i++ {
			join()
		}
		for step := 0; step < 600; step++ {
			switch op := rng.IntN(10); {
			case op < 3:
				join()
			case op < 5 && len(live) > 5:
				id := pick()
				if err := tr.Leave(id); err != nil {
					t.Fatalf("seed %d step %d: leave %d: %v", seed, step, id, err)
				}
				delete(live, id)
			case op < 6 && len(live) > 5:
				id := pick()
				if err := tr.Crash(id); err != nil {
					t.Fatalf("seed %d step %d: crash %d: %v", seed, step, id, err)
				}
				delete(live, id)
				tr.Stabilize()
			case op < 8 && len(live) > 0:
				id := pick()
				x, y := rng.Float64()*120, rng.Float64()*120
				if err := tr.UpdateFilter(id, geom.R2(x, y, x+18, y+18)); err != nil {
					t.Fatalf("seed %d step %d: update %d: %v", seed, step, id, err)
				}
			default:
				if len(live) == 0 {
					continue
				}
				batch := make([]Publication, 16)
				for k := range batch {
					batch[k] = Publication{
						Producer: pick(),
						Event:    geom.Point{rng.Float64() * 140, rng.Float64() * 140},
					}
				}
				if _, err := tr.PublishBatch(batch); err != nil {
					t.Fatalf("seed %d step %d: publish batch: %v", seed, step, err)
				}
			}

			if step%50 == 0 {
				assertArenaCoherent(t, tr, seed, step)
			}
		}
		tr.Stabilize()
		assertArenaCoherent(t, tr, seed, -1)
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("seed %d: illegal after churn: %v", seed, err)
		}
	}
}

// assertArenaCoherent sweeps every process table and checks the aliasing
// property directly: each live handle is referenced exactly once, carries
// the owner/height/slot of the process that references it, and no handle
// is simultaneously on the free list.
func assertArenaCoherent(t *testing.T, tr *Tree, seed uint64, step int) {
	t.Helper()
	owner := map[Handle][2]int{} // handle -> (procID, height) of first reference
	total := 0
	for _, id := range tr.ProcIDs() {
		p := tr.Proc(id)
		for h := 0; h <= p.Top; h++ {
			x := tr.at(id, h)
			if x == nilH {
				t.Fatalf("seed %d step %d: process %d has a gap at height %d", seed, step, id, h)
			}
			if prev, dup := owner[x]; dup {
				t.Fatalf("seed %d step %d: handle %d aliased by (%d,%d) and (%d,%d)",
					seed, step, x, prev[0], prev[1], id, h)
			}
			owner[x] = [2]int{int(id), h}
			if tr.ar.owner[x] != id || tr.ar.height[x] != int32(h) {
				t.Fatalf("seed %d step %d: handle %d tagged (%d,%d), referenced by (%d,%d)",
					seed, step, x, tr.ar.owner[x], tr.ar.height[x], id, h)
			}
			if tr.ar.slot[x] != p.slot {
				t.Fatalf("seed %d step %d: handle %d carries slot %d, owner %d has slot %d",
					seed, step, x, tr.ar.slot[x], id, p.slot)
			}
			total++
		}
	}
	st := tr.ArenaStats()
	if total != st.Live {
		t.Fatalf("seed %d step %d: process tables own %d instances, arena says %d live", seed, step, total, st.Live)
	}
	if st.Live+st.Free != st.Cap {
		t.Fatalf("seed %d step %d: arena accounting broken: live %d + free %d != cap %d",
			seed, step, st.Live, st.Free, st.Cap)
	}
	for _, x := range tr.ar.free {
		if _, isLive := owner[x]; isLive {
			t.Fatalf("seed %d step %d: handle %d is on the free list while live", seed, step, x)
		}
	}
}
