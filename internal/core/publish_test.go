package core

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

// fig1Params reproduces the paper's worked example branching: groups of
// 2-3 children as in Figure 2 (m=1, M=3 satisfies M >= 2m).
func fig1Params() Params {
	return Params{MinFanout: 1, MaxFanout: 3}
}

// TestWorkedExample reproduces the paper's §3 dissemination example
// (experiment E1): S2 publishes event a; only S2, S3 and S4 receive it,
// with no false positives, "necessitating only 2 messages".
func TestWorkedExample(t *testing.T) {
	tr := buildFig1(t, fig1Params())
	a := geom.Point{35, 60} // inside S2, S3, S4 only

	d, err := tr.Publish(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if want := []ProcID{2, 3, 4}; !reflect.DeepEqual(d.Received, want) {
		t.Fatalf("received %v, want %v\ntree:\n%s", d.Received, want, tr.Describe(nil))
	}
	if len(d.FalsePositives) != 0 {
		t.Fatalf("false positives: %v", d.FalsePositives)
	}
	if !reflect.DeepEqual(d.TruePositives, []ProcID{2, 3, 4}) {
		t.Fatalf("true positives: %v", d.TruePositives)
	}
	if d.Messages != 2 {
		t.Fatalf("messages = %d, want 2 as in the paper's example\ntree:\n%s",
			d.Messages, tr.Describe(nil))
	}
	t.Logf("worked example: %d messages, %d instance visits\n%s",
		d.Messages, d.InstanceVisits, tr.Describe(nil))
}

func TestPublishEventsBCD(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	tests := []struct {
		name string
		ev   geom.Point
		want []ProcID // subscribers whose filters match
	}{
		{"b hits S3,S7,S8", geom.Point{65, 20}, []ProcID{3, 7, 8}},
		{"c hits S3,S5,S6", geom.Point{70, 70}, []ProcID{3, 5, 6}},
		{"d hits nobody", geom.Point{3, 97}, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tr.Publish(1, tc.ev)
			if err != nil {
				t.Fatal(err)
			}
			// No false negatives: every matching subscriber receives it.
			gotTP := d.TruePositives
			wantSet := map[ProcID]bool{}
			for _, id := range tc.want {
				wantSet[id] = true
			}
			// The producer always receives its own event; exclude it from
			// the match comparison unless it matches.
			for _, id := range tc.want {
				found := false
				for _, g := range gotTP {
					if g == id {
						found = true
					}
				}
				if !found {
					t.Fatalf("false negative: %d missing from %v", id, gotTP)
				}
			}
		})
	}
}

func TestPublishDimensionMismatch(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if _, err := tr.Publish(1, geom.Point{1}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestPublishAllAccountsAccuracy(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	events := []geom.Point{{35, 60}, {65, 20}, {70, 70}, {3, 97}, {50, 50}}
	rep, err := tr.PublishAll(1, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != len(events) {
		t.Fatalf("Events = %d", rep.Events)
	}
	if rep.FalseNegatives != 0 {
		t.Fatalf("false negatives: %d", rep.FalseNegatives)
	}
	if rep.Deliveries != rep.TruePositives+rep.FalsePositives {
		t.Fatalf("accounting mismatch: %+v", rep)
	}
	if rep.FPRate() < 0 || rep.FPRate() > 1 {
		t.Fatalf("FPRate out of range: %g", rep.FPRate())
	}
	if (AccuracyReport{}).FPRate() != 0 {
		t.Fatal("empty report FPRate must be 0")
	}
}

func TestDeliveryCounters(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if _, err := tr.Publish(2, geom.Point{35, 60}); err != nil {
		t.Fatal(err)
	}
	if p := tr.Proc(4); p.Delivered != 1 || p.FalsePos != 0 {
		t.Fatalf("proc 4 counters: %+v", p)
	}
	tr.ResetDeliveryStats()
	if p := tr.Proc(4); p.Delivered != 0 {
		t.Fatal("ResetDeliveryStats did not clear counters")
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	// The central guarantee (§2.3): the DR-tree never produces false
	// negatives, for any workload, any split policy and any tree size.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		n := 5 + rng.IntN(60)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				return false
			}
		}
		ids := tr.ProcIDs()
		for k := 0; k < 15; k++ {
			ev := geom.Point{rng.Float64() * 130, rng.Float64() * 130}
			producer := ids[rng.IntN(len(ids))]
			d, err := tr.Publish(producer, ev)
			if err != nil {
				return false
			}
			got := map[ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range ids {
				f, _ := tr.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					return false // false negative
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNoFalseNegativesAfterChurnAndCorruption(t *testing.T) {
	// Even after leaves, crashes and corruption repair, a stabilized tree
	// must deliver with zero false negatives.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 62))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
		n := 20 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*25, y+rng.Float64()*25)); err != nil {
				return false
			}
		}
		// Churn.
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:3] {
			if rng.Float64() < 0.5 {
				if err := tr.Leave(id); err != nil {
					return false
				}
			} else if err := tr.Crash(id); err != nil {
				return false
			}
		}
		tr.CorruptRandom(rng, 3)
		tr.Stabilize()
		if tr.CheckLegal() != nil {
			return false
		}
		live := tr.ProcIDs()
		for k := 0; k < 10; k++ {
			ev := geom.Point{rng.Float64() * 120, rng.Float64() * 120}
			d, err := tr.Publish(live[rng.IntN(len(live))], ev)
			if err != nil {
				return false
			}
			got := map[ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range live {
				f, _ := tr.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestContainmentAwarenessOnNestedWorkload(t *testing.T) {
	// Build a workload of nested filters; weak containment awareness
	// (Property 3.1) must hold after construction + stabilization.
	rng := rand.New(rand.NewPCG(77, 1))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	base := geom.R2(0, 0, 100, 100)
	rects := []geom.Rect{base}
	for i := 0; i < 40; i++ {
		parent := rects[rng.IntN(len(rects))]
		x1 := parent.Lo(0) + rng.Float64()*parent.Side(0)/3
		y1 := parent.Lo(1) + rng.Float64()*parent.Side(1)/3
		x2 := parent.Hi(0) - rng.Float64()*parent.Side(0)/3
		y2 := parent.Hi(1) - rng.Float64()*parent.Side(1)/3
		rects = append(rects, geom.R2(x1, y1, x2, y2))
	}
	for i, r := range rects {
		if err := tr.Join(ProcID(i+1), r); err != nil {
			t.Fatal(err)
		}
	}
	tr.Stabilize()
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if v := tr.CheckWeakContainment(); v != 0 {
		t.Fatalf("weak containment violations: %d", v)
	}
	// Strong containment may be "occasionally violated" (paper §3.1): the
	// height-balancing can force a containee to sit outside its
	// container's subtree. Record the rate; weak containment above is the
	// hard guarantee.
	pairs := 0
	for _, a := range tr.ProcIDs() {
		for _, b := range tr.ProcIDs() {
			fa, _ := tr.Filter(a)
			fb, _ := tr.Filter(b)
			if a != b && fb.StrictlyContains(fa) {
				pairs++
			}
		}
	}
	v := tr.CheckStrongContainment()
	t.Logf("strong containment: %d violations over %d containment pairs", v, pairs)
	if pairs > 0 && v == pairs {
		t.Fatal("strong containment violated for every pair; placement is not containment-aware at all")
	}
}

func TestContainmentGraphExport(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	g, err := tr.ContainmentGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains("P3", "P4") || !g.Contains("P2", "P4") {
		t.Fatal("containment graph missing paper's S4 ⊂ S2, S3 relation")
	}
}

func TestCheckReorgExchangesHotChild(t *testing.T) {
	// Hot-spot workload aimed at a child's filter: with reorg tracking,
	// CheckReorg should eventually promote the child that matches the
	// traffic, reducing parent false positives (§3.2 Dynamic
	// Reorganizations).
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, TrackReorgStats: true})
	mustJoin := func(id ProcID, r geom.Rect) {
		t.Helper()
		if err := tr.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	// Parent-sized filters far from the hot spot; one small filter on it.
	mustJoin(1, geom.R2(0, 0, 60, 60))
	mustJoin(2, geom.R2(0, 0, 50, 50))
	mustJoin(3, geom.R2(90, 90, 99, 99)) // hot-spot subscriber
	mustJoin(4, geom.R2(5, 5, 30, 30))
	mustJoin(5, geom.R2(92, 92, 97, 97))

	// All events hit the hot spot.
	for i := 0; i < 50; i++ {
		if _, err := tr.Publish(3, geom.Point{95, 95}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.CheckReorg()
	t.Logf("reorg exchanges: %d", st.Exchanges)
	// The structure must remain repairable and legal after reorg.
	tr.Stabilize()
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("after reorg: %v\n%s", err, tr.Describe(nil))
	}
}

func TestCheckReorgDisabledWithoutTracking(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if _, err := tr.Publish(2, geom.Point{35, 60}); err != nil {
		t.Fatal(err)
	}
	if st := tr.CheckReorg(); st.Exchanges != 0 {
		t.Fatal("CheckReorg must be a no-op without TrackReorgStats")
	}
}

func TestMessagesScaleLogarithmically(t *testing.T) {
	// Publication cost must stay near the height bound for point events
	// hitting few subscribers (logarithmic pub/sub guarantee).
	rng := rand.New(rand.NewPCG(13, 13))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	for i := 1; i <= 400; i++ {
		// Small disjoint-ish filters scattered over a large space.
		x, y := rng.Float64()*10000, rng.Float64()*10000
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+10, y+10)); err != nil {
			t.Fatal(err)
		}
	}
	ids := tr.ProcIDs()
	totalMsgs := 0
	for k := 0; k < 50; k++ {
		producer := ids[rng.IntN(len(ids))]
		f, _ := tr.Filter(producer)
		d, err := tr.Publish(producer, f.Center())
		if err != nil {
			t.Fatal(err)
		}
		totalMsgs += d.Messages
	}
	avg := float64(totalMsgs) / 50
	// Each event climbs O(height) and descends into few subtrees; with
	// 400 nodes and m=2 the height is ~9, so average messages should be
	// well under 80 (a broadcast would need 400).
	if avg > 80 {
		t.Fatalf("average publish messages %.1f too high (broadcast-like)", avg)
	}
	t.Logf("avg publish messages over 400 procs: %.1f (height %d)", avg, tr.Height())
}
