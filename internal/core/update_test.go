package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestUpdateFilterValidation covers the error paths.
func TestUpdateFilterValidation(t *testing.T) {
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	if err := tr.UpdateFilter(1, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("unknown process must error")
	}
	if err := tr.Join(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tr.UpdateFilter(1, geom.Rect{}); err == nil {
		t.Error("empty filter must error")
	}
	if err := tr.UpdateFilter(1, geom.MustRect([]float64{0}, []float64{1})); err == nil {
		t.Error("dimension mismatch must error")
	}
	if err := tr.UpdateFilter(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Errorf("no-op update must succeed: %v", err)
	}
}

// TestUpdateFilterKeepsLegality grows, shrinks and moves filters on a
// seeded population and requires, after every single update with NO
// stabilization pass in between: a legal configuration, root MBR equal
// to the union of the current filters, and zero false negatives on probe
// events inside the updated filters.
func TestUpdateFilterKeepsLegality(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 17))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	live := map[ProcID]geom.Rect{}
	for i := 1; i <= 120; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		f := geom.R2(x, y, x+10+rng.Float64()*30, y+10+rng.Float64()*30)
		if err := tr.Join(ProcID(i), f); err != nil {
			t.Fatal(err)
		}
		live[ProcID(i)] = f
	}

	check := func(step string) {
		t.Helper()
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("%s: illegal configuration: %v", step, err)
		}
		var union geom.Rect
		for _, f := range live {
			union = union.Union(f)
		}
		if got := tr.RootMBR(); !got.Equal(union) {
			t.Fatalf("%s: root MBR %v, want filter union %v", step, got, union)
		}
	}
	probe := func(step string, ev geom.Point) {
		t.Helper()
		d, err := tr.Publish(1, ev)
		if err != nil {
			t.Fatalf("%s: publish: %v", step, err)
		}
		got := make(map[ProcID]bool, len(d.Received))
		for _, id := range d.Received {
			got[id] = true
		}
		for id, f := range live {
			if f.ContainsPoint(ev) && !got[id] {
				t.Fatalf("%s: false negative %d for %v", step, id, ev)
			}
		}
	}

	for k := 0; k < 60; k++ {
		id := ProcID(1 + rng.IntN(120))
		old := live[id]
		var f geom.Rect
		switch k % 3 {
		case 0: // grow: union with a fresh random rectangle
			x, y := rng.Float64()*600, rng.Float64()*600
			f = old.Union(geom.R2(x, y, x+20, y+20))
		case 1: // shrink: keep the lower quarter
			f = geom.R2(old.Lo(0), old.Lo(1),
				(old.Lo(0)+old.Hi(0))/2, (old.Lo(1)+old.Hi(1))/2)
		default: // move: a disjoint region
			x, y := 700+rng.Float64()*200, 700+rng.Float64()*200
			f = geom.R2(x, y, x+15, y+15)
		}
		if err := tr.UpdateFilter(id, f); err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		live[id] = f
		check("after update")
		probe("after update", f.Center())
		probe("after update", geom.Point{rng.Float64() * 900, rng.Float64() * 900})
	}
}

// TestUpdateFilterSingleProcess covers the lone-leaf-root path.
func TestUpdateFilterSingleProcess(t *testing.T) {
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	if err := tr.Join(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	want := geom.R2(50, 50, 60, 60)
	if err := tr.UpdateFilter(1, want); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RootMBR(); !got.Equal(want) {
		t.Fatalf("root MBR %v, want %v", got, want)
	}
	if f, ok := tr.Filter(1); !ok || !f.Equal(want) {
		t.Fatalf("Filter = %v, %v", f, ok)
	}
}
