package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
)

// TestDebugCorruptSeed replays the failing random-corruption seed with
// detailed output.
func TestDebugCorruptSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9647d9bd18e8dad7, 51))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
	n := 10 + rng.IntN(40)
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		if _, err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*40, y+rng.Float64()*40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("before corruption: %v", err)
	}
	t.Logf("before corruption (n=%d):\n%s", n, tr.Describe(nil))
	k := tr.CorruptRandom(rng, 1+rng.IntN(8))
	t.Logf("applied %d corruptions:\n%s", k, tr.Describe(nil))
	st := tr.Stabilize()
	t.Logf("stabilize: %+v", st)
	if !st.Converged {
		t.Fatalf("did not converge:\n%s", tr.Describe(nil))
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("after stabilize: %v\n%s", err, tr.Describe(nil))
	}
}
