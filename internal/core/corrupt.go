package core

import (
	"fmt"
	"math/rand/v2"

	"drtree/internal/geom"
)

// The paper's fault model allows transient corruption of every mutable
// variable: parent, children sets, MBRs and the underloaded flag
// ("memory and counter program corruptions"). Filters are the only
// non-corruptible constants (§3.2). These helpers inject such faults for
// the stabilization experiments (E5, Lemma 3.6). They write the arena
// fields directly — including stale handle caches, which the verified
// resolution of the routing path must survive.

// CorruptParent overwrites the parent variable of instance (id, h).
func (t *Tree) CorruptParent(id ProcID, h int, parent ProcID) error {
	x := t.at(id, h)
	if x == nilH {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	t.ar.parent[x] = parent
	return nil
}

// CorruptChildren overwrites the children set of instance (id, h).
func (t *Tree) CorruptChildren(id ProcID, h int, children []ProcID) error {
	x := t.at(id, h)
	if x == nilH {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	t.ar.setKids(x, children, t.params.MaxFanout)
	return nil
}

// CorruptMBR overwrites the MBR of instance (id, h).
func (t *Tree) CorruptMBR(id ProcID, h int, mbr geom.Rect) error {
	x := t.at(id, h)
	if x == nilH {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	t.ar.mbr[x] = mbr
	return nil
}

// CorruptUnderloaded flips the underloaded flag of instance (id, h).
func (t *Tree) CorruptUnderloaded(id ProcID, h int) error {
	x := t.at(id, h)
	if x == nilH {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	t.ar.under[x] = !t.ar.under[x]
	return nil
}

// CorruptRandom applies k random corruptions drawn from the fault model
// (parent, children, MBR, underloaded) to random instances. It returns
// the number of corruptions applied.
func (t *Tree) CorruptRandom(rng *rand.Rand, k int) int {
	ids := t.ProcIDs()
	if len(ids) == 0 {
		return 0
	}
	applied := 0
	for i := 0; i < k; i++ {
		id := ids[rng.IntN(len(ids))]
		p := t.procs[id]
		h := rng.IntN(p.Top + 1)
		x := p.at(h)
		if x == nilH {
			continue
		}
		switch rng.IntN(4) {
		case 0:
			t.ar.parent[x] = ids[rng.IntN(len(ids))]
		case 1:
			if kids := t.ar.kids[x]; h >= 1 && len(kids) > 0 {
				switch rng.IntN(3) {
				case 0: // drop a child
					t.ar.setKids(x, kids[:len(kids)-1], t.params.MaxFanout)
				case 1: // duplicate / foreign child
					t.ar.addKid(x, ids[rng.IntN(len(ids))], t.params.MaxFanout)
				default: // scramble to a random subset
					t.ar.setKids(x, []ProcID{ids[rng.IntN(len(ids))]}, t.params.MaxFanout)
				}
			}
		case 2:
			dims := t.dims()
			lo := make([]float64, dims)
			hi := make([]float64, dims)
			for d := 0; d < dims; d++ {
				lo[d] = rng.Float64() * 100
				hi[d] = lo[d] + rng.Float64()*50
			}
			t.ar.mbr[x] = geom.MustRect(lo, hi)
		default:
			t.ar.under[x] = !t.ar.under[x]
		}
		applied++
	}
	return applied
}
