package core

import (
	"fmt"
	"math/rand/v2"

	"drtree/internal/geom"
)

// The paper's fault model allows transient corruption of every mutable
// variable: parent, children sets, MBRs and the underloaded flag
// ("memory and counter program corruptions"). Filters are the only
// non-corruptible constants (§3.2). These helpers inject such faults for
// the stabilization experiments (E5, Lemma 3.6).

// CorruptParent overwrites the parent variable of instance (id, h).
func (t *Tree) CorruptParent(id ProcID, h int, parent ProcID) error {
	in := t.instance(id, h)
	if in == nil {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	in.Parent = parent
	return nil
}

// CorruptChildren overwrites the children set of instance (id, h).
func (t *Tree) CorruptChildren(id ProcID, h int, children []ProcID) error {
	in := t.instance(id, h)
	if in == nil {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	in.Children = append([]ProcID(nil), children...)
	return nil
}

// CorruptMBR overwrites the MBR of instance (id, h).
func (t *Tree) CorruptMBR(id ProcID, h int, mbr geom.Rect) error {
	in := t.instance(id, h)
	if in == nil {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	in.MBR = mbr
	return nil
}

// CorruptUnderloaded flips the underloaded flag of instance (id, h).
func (t *Tree) CorruptUnderloaded(id ProcID, h int) error {
	in := t.instance(id, h)
	if in == nil {
		return fmt.Errorf("core: no instance (%d,%d)", id, h)
	}
	in.Underloaded = !in.Underloaded
	return nil
}

// CorruptRandom applies k random corruptions drawn from the fault model
// (parent, children, MBR, underloaded) to random instances. It returns
// the number of corruptions applied.
func (t *Tree) CorruptRandom(rng *rand.Rand, k int) int {
	ids := t.ProcIDs()
	if len(ids) == 0 {
		return 0
	}
	applied := 0
	for i := 0; i < k; i++ {
		id := ids[rng.IntN(len(ids))]
		p := t.procs[id]
		h := rng.IntN(p.Top + 1)
		in := p.At(h)
		if in == nil {
			continue
		}
		switch rng.IntN(4) {
		case 0:
			in.Parent = ids[rng.IntN(len(ids))]
		case 1:
			if h >= 1 && len(in.Children) > 0 {
				switch rng.IntN(3) {
				case 0: // drop a child
					in.Children = in.Children[:len(in.Children)-1]
				case 1: // duplicate / foreign child
					in.Children = append(in.Children, ids[rng.IntN(len(ids))])
				default: // scramble to a random subset
					in.Children = []ProcID{ids[rng.IntN(len(ids))]}
				}
			}
		case 2:
			dims := t.dims()
			lo := make([]float64, dims)
			hi := make([]float64, dims)
			for d := 0; d < dims; d++ {
				lo[d] = rng.Float64() * 100
				hi[d] = lo[d] + rng.Float64()*50
			}
			in.MBR = geom.MustRect(lo, hi)
		default:
			in.Underloaded = !in.Underloaded
		}
		applied++
	}
	return applied
}
