package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// fig1Rects is the canonical Figure 1 subscription set (see DESIGN.md):
// S4 ⊂ S2, S4 ⊂ S3 with S2, S3 incomparable; S7, S8 ⊂ S3; S6 ⊂ S5.
// IDs 1..8 map to S1..S8.
func fig1Rects() map[ProcID]geom.Rect {
	return map[ProcID]geom.Rect{
		1: geom.R2(5, 5, 28, 45),
		2: geom.R2(10, 50, 45, 90),
		3: geom.R2(30, 5, 95, 75),
		4: geom.R2(32, 52, 43, 73),
		5: geom.R2(55, 55, 90, 95),
		6: geom.R2(60, 60, 75, 85),
		7: geom.R2(60, 10, 85, 40),
		8: geom.R2(40, 15, 70, 35),
	}
}

func defaultParams() Params {
	return Params{MinFanout: 2, MaxFanout: 4}
}

func buildFig1(t *testing.T, p Params) *Tree {
	t.Helper()
	tr := MustNew(p)
	rects := fig1Rects()
	for id := ProcID(1); id <= 8; id++ {
		if err := tr.Join(id, rects[id]); err != nil {
			t.Fatalf("join %d: %v", id, err)
		}
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("after join %d: %v", id, err)
		}
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{MinFanout: 0, MaxFanout: 4}); err == nil {
		t.Error("m=0 must be rejected")
	}
	if _, err := New(Params{MinFanout: 3, MaxFanout: 5}); err == nil {
		t.Error("M < 2m must be rejected")
	}
	tr, err := New(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Params().Split == nil || tr.Params().Election == nil {
		t.Error("defaults must be filled in")
	}
	if tr.Params().Split.Name() != "quadratic" || tr.Params().Election.Name() != "largest-mbr" {
		t.Errorf("unexpected defaults: %s / %s", tr.Params().Split.Name(), tr.Params().Election.Name())
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(defaultParams())
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if id, h := tr.Root(); id != NoProc || h != -1 {
		t.Fatalf("Root = (%d,%d)", id, h)
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Leave(1); err == nil {
		t.Error("leaving an absent process must error")
	}
	if _, err := tr.Publish(1, geom.Point{0, 0}); err == nil {
		t.Error("publishing from an absent process must error")
	}
	st := tr.Stabilize()
	if !st.Converged {
		t.Error("stabilizing the empty tree must converge")
	}
}

func TestJoinValidation(t *testing.T) {
	tr := MustNew(defaultParams())
	if err := tr.Join(0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("id 0 must be rejected")
	}
	if err := tr.Join(-3, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("negative id must be rejected")
	}
	if err := tr.Join(1, geom.Rect{}); err == nil {
		t.Error("empty filter must be rejected")
	}
	if err := tr.Join(1, geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(1, geom.R2(2, 2, 3, 3)); err == nil {
		t.Error("duplicate id must be rejected")
	}
	if err := tr.Join(2, geom.MustRect([]float64{0}, []float64{1})); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
}

func TestSingleAndPair(t *testing.T) {
	tr := MustNew(defaultParams())
	if err := tr.Join(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if id, h := tr.Root(); id != 1 || h != 0 {
		t.Fatalf("single-proc root = (%d,%d)", id, h)
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	// Second join: the larger filter must be elected root (Figure 6).
	if err := tr.Join(2, geom.R2(0, 0, 50, 50)); err != nil {
		t.Fatal(err)
	}
	if id, h := tr.Root(); id != 2 || h != 1 {
		t.Fatalf("root after pair = (%d,%d), want (2,1): largest MBR is elected", id, h)
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	// The root is its own child.
	rin := tr.instance(2, 1)
	if !rin.hasChild(2) || !rin.hasChild(1) {
		t.Fatalf("root children = %v", rin.Children)
	}
}

func TestFigure1Construction(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if tr.Len() != 8 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, want >= 2 for 8 procs with M=4", tr.Height())
	}
	// S3 has the largest filter; with largest-MBR election it should own
	// the root (its MBR can only grow).
	rootID, _ := tr.Root()
	if rootID != 3 {
		t.Logf("tree:\n%s", tr.Describe(nil))
		t.Fatalf("root = %d, want 3 (largest cover)", rootID)
	}
	// Weak containment awareness must hold on this workload.
	if v := tr.CheckWeakContainment(); v != 0 {
		t.Fatalf("weak containment violations: %d\n%s", v, tr.Describe(nil))
	}
}

func TestJoinStatsLogarithmic(t *testing.T) {
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
	rng := rand.New(rand.NewPCG(42, 1))
	var maxHops int
	for i := 1; i <= 300; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		st, err := tr.JoinWithStats(ProcID(i), geom.R2(x, y, x+5+rng.Float64()*20, y+5+rng.Float64()*20))
		if err != nil {
			t.Fatal(err)
		}
		if st.DownHops > maxHops {
			maxHops = st.DownHops
		}
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	// Join routing is bounded by the height, which is O(log_m N).
	bound := int(math.Ceil(math.Log(300)/math.Log(2))) + 2
	if maxHops > bound {
		t.Fatalf("max down-hops %d exceeds log bound %d", maxHops, bound)
	}
}

func TestJoinFrom(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	st, err := tr.JoinFromWithStats(4, 9, geom.R2(1, 1, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.UpHops < 1 {
		t.Fatalf("joining from a leaf must climb: UpHops = %d", st.UpHops)
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if err := tr.JoinFrom(99, 10, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("unknown contact must error")
	}
}

func TestAddSubscriberAutoIDs(t *testing.T) {
	tr := MustNew(defaultParams())
	seen := map[ProcID]bool{}
	for i := 0; i < 10; i++ {
		id, _, err := tr.AddSubscriber(geom.R2(float64(i), 0, float64(i)+1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate auto id %d", id)
		}
		seen[id] = true
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightBoundLemma31(t *testing.T) {
	// Lemma 3.1: height O(log_m N); memory O(M log^2 N / log m).
	for _, n := range []int{64, 256, 512} {
		tr := MustNew(Params{MinFanout: 3, MaxFanout: 6})
		rng := rand.New(rand.NewPCG(uint64(n), 3))
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+10, y+10)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := tr.ComputeStats()
		if float64(st.Height) > st.HeightLog+3 {
			t.Errorf("n=%d: height %d exceeds log_m(N)+3 = %.1f", n, st.Height, st.HeightLog+3)
		}
		if float64(st.MaxLinks) > 4*st.MemoryBound {
			t.Errorf("n=%d: max links %d far exceeds memory bound %.1f", n, st.MaxLinks, st.MemoryBound)
		}
	}
}

func TestControlledLeave(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	for _, id := range []ProcID{4, 7, 1, 5} {
		st, err := tr.LeaveWithStats(id)
		if err != nil {
			t.Fatalf("leave %d: %v", id, err)
		}
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("after leave %d (stats %+v): %v\n%s", id, st, err, tr.Describe(nil))
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestLeaveRoot(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	rootID, _ := tr.Root()
	if err := tr.Leave(rootID); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("after root leave: %v\n%s", err, tr.Describe(nil))
	}
	newRoot, _ := tr.Root()
	if newRoot == rootID {
		t.Fatal("root did not change")
	}
}

func TestLeaveDownToEmpty(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	for _, id := range tr.ProcIDs() {
		if err := tr.Leave(id); err != nil {
			t.Fatalf("leave %d: %v", id, err)
		}
		if err := tr.CheckLegal(); err != nil {
			t.Fatalf("after leave %d: %v\n%s", id, err, tr.Describe(nil))
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d after full drain", tr.Len(), tr.Height())
	}
}

func TestCrashAndRepair(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if err := tr.Crash(3); err != nil { // crash the root process
		t.Fatal(err)
	}
	if err := tr.Crash(5); err != nil {
		t.Fatal(err)
	}
	st := tr.RepairCrash()
	if st.StabilizeSteps == 0 {
		t.Fatal("repair after crashes must take at least one pass")
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("after crash repair: %v\n%s", err, tr.Describe(nil))
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Crash(99); err == nil {
		t.Error("crashing an absent process must error")
	}
}

func TestStabilizeAfterEachCorruption(t *testing.T) {
	type inject func(tr *Tree) error
	cases := []struct {
		name string
		f    inject
	}{
		{"parent", func(tr *Tree) error { return tr.CorruptParent(4, 0, 7) }},
		{"parent-self", func(tr *Tree) error { return tr.CorruptParent(1, 0, 1) }},
		{"children-drop", func(tr *Tree) error {
			rootID, rootH := tr.Root()
			in := tr.instance(rootID, rootH)
			return tr.CorruptChildren(rootID, rootH, in.Children[:1])
		}},
		{"children-foreign", func(tr *Tree) error {
			rootID, rootH := tr.Root()
			in := tr.instance(rootID, rootH)
			return tr.CorruptChildren(rootID, rootH, append(append([]ProcID{}, in.Children...), 4))
		}},
		{"mbr", func(tr *Tree) error { return tr.CorruptMBR(3, 1, geom.R2(0, 0, 1, 1)) }},
		{"underloaded", func(tr *Tree) error {
			rootID, rootH := tr.Root()
			return tr.CorruptUnderloaded(rootID, rootH)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildFig1(t, defaultParams())
			if err := tc.f(tr); err != nil {
				t.Fatalf("inject: %v", err)
			}
			st := tr.Stabilize()
			if !st.Converged {
				t.Fatal("stabilization did not converge")
			}
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("after stabilize: %v\n%s", err, tr.Describe(nil))
			}
		})
	}
}

func TestCorruptionHelpersValidate(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	if err := tr.CorruptParent(99, 0, 1); err == nil {
		t.Error("corrupting absent instance must error")
	}
	if err := tr.CorruptChildren(1, 5, nil); err == nil {
		t.Error("corrupting absent height must error")
	}
	if err := tr.CorruptMBR(99, 0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("corrupting absent instance must error")
	}
	if err := tr.CorruptUnderloaded(99, 0); err == nil {
		t.Error("corrupting absent instance must error")
	}
}

func TestPropertyStabilizeFromRandomCorruption(t *testing.T) {
	// Lemma 3.6: starting from an arbitrary configuration, the system
	// reaches a legitimate configuration in a finite number of steps.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 5})
		n := 10 + rng.IntN(40)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*500, rng.Float64()*500
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*40, y+rng.Float64()*40)); err != nil {
				return false
			}
		}
		tr.CorruptRandom(rng, 1+rng.IntN(8))
		st := tr.Stabilize()
		if !st.Converged {
			return false
		}
		return tr.CheckLegal() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLegalUnderChurn(t *testing.T) {
	// Joins and controlled leaves in any interleaving keep the structure
	// legal (Lemmas 3.2 and 3.4).
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 52))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		var live []ProcID
		next := ProcID(1)
		for op := 0; op < 120; op++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				x, y := rng.Float64()*300, rng.Float64()*300
				if err := tr.Join(next, geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
					return false
				}
				live = append(live, next)
				next++
			} else {
				k := rng.IntN(len(live))
				if err := tr.Leave(live[k]); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
			if tr.CheckLegal() != nil {
				return false
			}
		}
		return tr.Len() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCrashRepair(t *testing.T) {
	// Lemma 3.5: uncontrolled departures are repaired by stabilization.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 53))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		n := 12 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*400, rng.Float64()*400
			if err := tr.Join(ProcID(i), geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)); err != nil {
				return false
			}
		}
		// Crash up to a third of the population, then repair once.
		kills := 1 + rng.IntN(n/3)
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := tr.Crash(id); err != nil {
				return false
			}
		}
		tr.RepairCrash()
		return tr.CheckLegal() == nil && tr.Len() == n-kills
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverExchangePromotesBigChild(t *testing.T) {
	// A child whose MBR grows past its parent's must be promoted by
	// CHECK_COVER (Figure 13).
	tr := MustNew(defaultParams())
	mustJoin := func(id ProcID, r geom.Rect) {
		t.Helper()
		if err := tr.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	mustJoin(1, geom.R2(0, 0, 30, 30))
	mustJoin(2, geom.R2(1, 1, 6, 6))
	mustJoin(3, geom.R2(2, 2, 7, 7))
	// Force a corrupt demotion: make the small proc 2 the root by hand.
	rootID, rootH := tr.Root()
	if rootID != 1 {
		t.Skipf("unexpected root %d", rootID)
	}
	// Swap roles via corruption: give 2 the root's children.
	in := tr.instance(1, rootH)
	if err := tr.CorruptChildren(1, rootH, in.Children[:1]); err != nil {
		t.Fatal(err)
	}
	st := tr.Stabilize()
	if !st.Converged {
		t.Fatal("no convergence")
	}
	if err := tr.CheckLegal(); err != nil {
		t.Fatalf("%v\n%s", err, tr.Describe(nil))
	}
}

func TestElectionPolicies(t *testing.T) {
	ids := []ProcID{5, 2, 9}
	mbrs := []geom.Rect{geom.R2(0, 0, 1, 1), geom.R2(0, 0, 10, 10), geom.R2(0, 0, 2, 2)}
	if got := (LargestMBR{}).ChooseLeader(ids, mbrs); got != 1 {
		t.Errorf("LargestMBR chose %d, want 1", got)
	}
	// Tie on area: lowest ID wins.
	tie := []geom.Rect{geom.R2(0, 0, 2, 2), geom.R2(5, 5, 7, 7)}
	if got := (LargestMBR{}).ChooseLeader([]ProcID{7, 3}, tie); got != 1 {
		t.Errorf("LargestMBR tie-break chose %d, want 1 (lower id)", got)
	}
	if got := (FirstChild{}).ChooseLeader(ids, mbrs); got != 1 {
		t.Errorf("FirstChild chose %d, want 1 (id 2)", got)
	}
	r := RandomElection{Rand: rand.New(rand.NewPCG(1, 1))}
	if got := r.ChooseLeader(ids, mbrs); got < 0 || got > 2 {
		t.Errorf("RandomElection out of range: %d", got)
	}
	if got := (RandomElection{}).ChooseLeader(ids, mbrs); got != 0 {
		t.Errorf("RandomElection without source must pick 0, got %d", got)
	}
	for _, e := range []Election{LargestMBR{}, FirstChild{}, RandomElection{}} {
		if e.Name() == "" {
			t.Error("election policy must have a name")
		}
	}
}

func TestBuildWithAllSplitPoliciesAndElections(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	elections := []Election{LargestMBR{}, FirstChild{}, RandomElection{Rand: rng}}
	for _, pol := range split.All() {
		for _, el := range elections {
			tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, Split: pol, Election: el})
			for i := 1; i <= 60; i++ {
				x, y := rng.Float64()*200, rng.Float64()*200
				if err := tr.Join(ProcID(i), geom.R2(x, y, x+10, y+10)); err != nil {
					t.Fatalf("%s/%s join %d: %v", pol.Name(), el.Name(), i, err)
				}
			}
			// Random/first elections may violate the cover ordering;
			// stabilization must restore legality.
			tr.Stabilize()
			if err := tr.CheckLegal(); err != nil {
				t.Fatalf("%s/%s: %v", pol.Name(), el.Name(), err)
			}
		}
	}
}

func TestDotAndDescribe(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	labels := map[ProcID]string{}
	for id := ProcID(1); id <= 8; id++ {
		labels[id] = "S" + string(rune('0'+id))
	}
	dot := tr.Dot(labels)
	if len(dot) == 0 || dot[0:7] != "digraph" {
		t.Fatalf("Dot output malformed: %.40q", dot)
	}
	comm := tr.CommunicationDot(labels)
	if len(comm) == 0 || comm[0:5] != "graph" {
		t.Fatalf("CommunicationDot malformed: %.40q", comm)
	}
	if !tr.IsConnected() {
		t.Fatal("legal tree must be connected")
	}
	if tr.Describe(nil) == "" {
		t.Fatal("Describe must render something")
	}
}

func TestCommunicationEdgesSymmetricSorted(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	edges := tr.CommunicationEdges()
	if len(edges) == 0 {
		t.Fatal("no communication edges")
	}
	for i, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev[0] > e[0] || (prev[0] == e[0] && prev[1] >= e[1]) {
				t.Fatalf("edges not sorted at %d: %v after %v", i, e, prev)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	tr := buildFig1(t, defaultParams())
	st := tr.ComputeStats()
	if st.Procs != 8 || st.Height != tr.Height() {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MaxLinks <= 0 || st.AvgLinks <= 0 || st.Nodes < 8 {
		t.Fatalf("Stats = %+v", st)
	}
	empty := MustNew(defaultParams()).ComputeStats()
	if empty.Procs != 0 || empty.Nodes != 0 {
		t.Fatalf("empty Stats = %+v", empty)
	}
}
