package core

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// Allocation budgets for the two hot paths. These lock in the wins of the
// arena/SoA instance storage: the seed's map-backed layout spent ~82.7
// allocs per join on a 1000-subscriber build-up and ~9 per publish; the
// pointer-per-instance slice layout brought that to ~28 and ~2; the
// arena (free-list recycling, covered-union skipping, generation-stamped
// delivery slots) holds joins under 25 and steady-state publishes to the
// caller-visible Delivery slices alone.

// TestAllocBudgetJoin caps the average allocations per Join across a
// 1000-subscriber build-up (the BenchmarkJoin1000 workload). Measured:
// ~19.1 allocs/op with the arena layout.
func TestAllocBudgetJoin(t *testing.T) {
	const perJoinBudget = 25.0
	allocs := testing.AllocsPerRun(5, func() {
		rng := rand.New(rand.NewPCG(2, 2))
		tr := MustNew(Params{MinFanout: 2, MaxFanout: 4})
		for k := 1; k <= 1000; k++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Join(ProcID(k), geom.R2(x, y, x+15, y+15)); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perJoin := allocs / 1000; perJoin > perJoinBudget {
		t.Errorf("Join allocates %.1f allocs/op on the 1000-subscriber build-up, budget is %.1f", perJoin, perJoinBudget)
	}
}

// TestAllocBudgetPublish caps the allocations of a single Publish on a
// settled 1000-subscriber tree. The per-tree scratch state (slot-indexed
// generation stamps) means steady-state publishing only allocates the
// caller-visible Delivery slices: Received plus the exactly-sized
// TruePositives/FalsePositives — measured 2.0 allocs/op, budget 4 for
// headroom.
func TestAllocBudgetPublish(t *testing.T) {
	const publishBudget = 4.0
	rng := rand.New(rand.NewPCG(1, 1000))
	tr := MustNew(Params{MinFanout: 2, MaxFanout: 4, Split: split.Quadratic{}})
	for i := 1; i <= 1000; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Join(ProcID(i), geom.R2(x, y, x+15, y+15)); err != nil {
			t.Fatal(err)
		}
	}
	ev := geom.Point{500, 500}
	// Warm the scratch state once so the lazily-created reusable buffers
	// don't count against the steady-state budget.
	if _, err := tr.Publish(1, ev); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tr.Publish(1, ev); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > publishBudget {
		t.Errorf("Publish allocates %.1f allocs/op on a 1000-subscriber tree, budget is %.1f", allocs, publishBudget)
	}
}
