package core

import (
	"fmt"
	"testing"

	"drtree/internal/geom"
)

// TestSearchWorkedExampleOrder brute-forces insertion orders of the
// Figure 1 subscriptions to find configurations reproducing the paper's
// worked example exactly: publishing event a from S2 reaches {S2, S3, S4}
// with 2 inter-process messages and no false positives. Run with -v to
// list candidate orders. Skipped in -short mode.
func TestSearchWorkedExampleOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("search helper")
	}
	rects := fig1Rects()
	ids := []ProcID{1, 2, 3, 4, 5, 6, 7, 8}
	a := geom.Point{35, 60}

	bestMsgs := 1 << 30
	var bestOrder []ProcID
	found := 0

	var permute func(order []ProcID, rest []ProcID)
	permute = func(order []ProcID, rest []ProcID) {
		if len(rest) == 0 {
			for _, mm := range [][2]int{{2, 4}, {1, 3}} {
				tr := MustNew(Params{MinFanout: mm[0], MaxFanout: mm[1]})
				ok := true
				for _, id := range order {
					if err := tr.Join(id, rects[id]); err != nil {
						ok = false
						break
					}
				}
				if !ok || tr.CheckLegal() != nil {
					continue
				}
				d, err := tr.Publish(2, a)
				if err != nil || len(d.Received) != 3 ||
					d.Received[0] != 2 || d.Received[1] != 3 || d.Received[2] != 4 {
					continue
				}
				found++
				if d.Messages < bestMsgs {
					bestMsgs = d.Messages
					bestOrder = append([]ProcID(nil), order...)
					t.Logf("m=%d M=%d order=%v messages=%d visits=%d",
						mm[0], mm[1], order, d.Messages, d.InstanceVisits)
				}
			}
			return
		}
		for i := range rest {
			next := append(order, rest[i])
			var remaining []ProcID
			remaining = append(remaining, rest[:i]...)
			remaining = append(remaining, rest[i+1:]...)
			permute(next, remaining)
		}
	}
	permute(nil, ids)
	if found == 0 {
		t.Fatal("no insertion order reproduces the worked example delivery set")
	}
	t.Logf("orders reproducing delivery set: %d; best=%v msgs=%d", found, bestOrder, bestMsgs)
	_ = fmt.Sprint()
}
