package core

import (
	"fmt"

	"drtree/internal/geom"
)

// JoinStats reports the cost of a join for experiment E3 (Lemma 3.2).
type JoinStats struct {
	// UpHops is the number of hops from the contact node to the root
	// (zero when joining at the root).
	UpHops int
	// DownHops is the number of routing steps from the root down to the
	// insertion node.
	DownHops int
	// Splits is the number of node splits the insertion triggered.
	Splits int
	// Messages approximates inter-process messages: hops plus split
	// traffic (each split costs one ADD_CHILD to the parent).
	Messages int
}

// Join inserts a new subscriber with the given filter, routing from the
// root (the best starting point per §3.2 "Joins"). The process ID must be
// positive and unused.
func (t *Tree) Join(id ProcID, f geom.Rect) error {
	_, err := t.join(id, f, 0)
	return err
}

// JoinWithStats is Join reporting the insertion cost (experiment E3,
// Lemma 3.2).
func (t *Tree) JoinWithStats(id ProcID, f geom.Rect) (JoinStats, error) {
	return t.join(id, f, 0)
}

// JoinFrom inserts a new subscriber starting from an arbitrary contact
// node (the paper's connection oracle): the request is first redirected
// upward until it reaches the root, then routed down.
func (t *Tree) JoinFrom(contact, id ProcID, f geom.Rect) error {
	_, err := t.JoinFromWithStats(contact, id, f)
	return err
}

// JoinFromWithStats is JoinFrom reporting the insertion cost.
func (t *Tree) JoinFromWithStats(contact, id ProcID, f geom.Rect) (JoinStats, error) {
	up, err := t.hopsToRoot(contact)
	if err != nil {
		return JoinStats{}, err
	}
	return t.join(id, f, up)
}

// AddSubscriber is Join with an auto-assigned process ID.
func (t *Tree) AddSubscriber(f geom.Rect) (ProcID, JoinStats, error) {
	for t.procs[t.nextID] != nil {
		t.nextID++
	}
	id := t.nextID
	t.nextID++
	st, err := t.JoinWithStats(id, f)
	if err != nil {
		return NoProc, JoinStats{}, err
	}
	return id, st, nil
}

func (t *Tree) join(id ProcID, f geom.Rect, upHops int) (JoinStats, error) {
	if id <= NoProc {
		return JoinStats{}, fmt.Errorf("core: process IDs must be positive, got %d", id)
	}
	if t.procs[id] != nil {
		return JoinStats{}, fmt.Errorf("core: process %d already joined", id)
	}
	if f.IsEmpty() {
		return JoinStats{}, fmt.Errorf("core: filter must be a non-empty rectangle")
	}
	if d := t.dims(); d != 0 && f.Dims() != d {
		return JoinStats{}, fmt.Errorf("core: filter has %d dims, tree uses %d", f.Dims(), d)
	}

	// A crash can leave the root reference dangling until the periodic
	// checks fire. A join routes from the root and the paper's connection
	// oracle always names a live one, so repair the reference eagerly
	// before routing.
	if len(t.procs) > 0 {
		if rp := t.procs[t.rootID]; rp == nil || rp.at(t.rootH) == nilH {
			var rst StabReport
			t.ensureRoot(&rst)
		}
	}

	p := &Process{ID: id, Filter: f, inst: make([]Handle, 0, 4), slot: t.allocSlot()}
	t.procs[id] = p
	leaf := t.newInstance(p, 0)
	t.ar.mbr[leaf] = f
	t.ar.parent[leaf] = id // provisional; set below

	st := JoinStats{UpHops: upHops}

	switch {
	case len(t.procs) == 1:
		// First subscriber: it is the root, a lone leaf.
		t.rootID, t.rootH = id, 0
	case t.rootH == 0:
		// Second subscriber: elect a root over the two leaves.
		other := t.rootID
		ids := []ProcID{other, id}
		mbrs := []geom.Rect{t.procs[other].Filter, f}
		w := ids[t.params.Election.ChooseLeader(ids, mbrs)]
		root := t.newInstance(t.procs[w], 1)
		t.ar.setKids(root, ids, t.params.MaxFanout)
		t.ar.parent[root] = w
		t.ar.parent[t.at(other, 0)] = w
		t.ar.parent[leaf] = w
		t.computeMBR(w, 1)
		t.refreshUnderloaded(w, 1)
		t.rootID, t.rootH = w, 1
		st.Messages = upHops + 1
	default:
		// Route down from the root to the last non-leaf level, adjusting
		// MBRs on the way (Figure 8), then ADD_CHILD.
		cur, h := t.rootID, t.rootH
		for h > 1 {
			x := t.at(cur, h)
			if !t.ar.mbr[x].Contains(f) { // Union is a no-op (and an alloc) when covered
				t.ar.mbr[x] = t.ar.mbr[x].Union(f)
			}
			next := t.chooseBestChild(x, h, f)
			if next == NoProc {
				// Every child reference at this level is stale (crashes the
				// checks have not repaired yet): park the new leaf as a
				// fragment for the next stabilization pass, like ADD_CHILD
				// does when its target vanishes mid-repair.
				t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: 0})
				return st, nil
			}
			cur = next
			h--
			st.DownHops++
		}
		splits := t.addChild(cur, 1, id)
		st.Splits = splits
		st.Messages = upHops + st.DownHops + 1 + splits
		// Restore the cover invariant along the insertion path so a join
		// leaves the configuration legitimate (Lemma 3.2). The paper
		// defers this to the periodic CHECK_COVER; doing it inline is the
		// eager equivalent.
		t.fixCoverUp(id, 0)
	}
	return st, nil
}

// fixCoverLocal applies the CHECK_COVER rule at instance (pid, h): while
// some child's MBR covers better than pid's own child node, the two
// processes exchange roles. It returns the process finally occupying
// height h.
func (t *Tree) fixCoverLocal(pid ProcID, h int) ProcID {
	if t.params.DisableCoverRule {
		return pid
	}
	for {
		x := t.at(pid, h)
		if x == nilH {
			return pid
		}
		own := t.childMBR(pid, h-1)
		best := NoProc
		bestArea := own.Area()
		for _, c := range t.ar.kids[x] {
			if c == pid {
				continue
			}
			if a := t.childMBR(c, h-1).Area(); a > bestArea {
				best, bestArea = c, a
			}
		}
		if best == NoProc {
			return pid
		}
		t.exchangeRoles(pid, best, h)
		pid = best
	}
}

// fixCoverUp climbs from instance (id, h) to the root and applies the
// CHECK_COVER rule at every ancestor: if some child's MBR covers better
// than the parent's own child node, the two processes exchange roles.
func (t *Tree) fixCoverUp(id ProcID, h int) {
	if t.params.DisableCoverRule {
		return
	}
	for {
		x := t.at(id, h)
		if x == nilH {
			return
		}
		if h >= 1 {
			own := t.childMBR(id, h-1)
			best := NoProc
			bestArea := own.Area()
			for _, c := range t.ar.kids[x] {
				if c == id {
					continue
				}
				if a := t.childMBR(c, h-1).Area(); a > bestArea {
					best, bestArea = c, a
				}
			}
			if best != NoProc {
				t.exchangeRoles(id, best, h)
				id = best
				x = t.at(id, h)
				if x == nilH {
					return
				}
			}
		}
		if id == t.rootID && h == t.rootH {
			return
		}
		next := t.ar.parent[x]
		if next == NoProc || t.procs[next] == nil || (next == id && h >= t.procs[id].Top) {
			return
		}
		id, h = next, h+1
		if h > t.rootH {
			return
		}
	}
}

// hopsToRoot counts the parent-chain hops from contact's topmost instance
// to the root (the upward redirection of join requests).
func (t *Tree) hopsToRoot(contact ProcID) (int, error) {
	p := t.procs[contact]
	if p == nil {
		return 0, fmt.Errorf("core: contact process %d not found", contact)
	}
	hops := 0
	cur, h := contact, p.Top
	for !(cur == t.rootID && h == t.rootH) {
		x := t.at(cur, h)
		if x == nilH {
			return 0, fmt.Errorf("core: broken parent chain at process %d height %d", cur, h)
		}
		next := t.ar.parent[x]
		if next != cur {
			hops++
		}
		cur = next
		h++
		if h > t.rootH+1 {
			return 0, fmt.Errorf("core: parent chain of %d does not reach the root", contact)
		}
		// Continue from the next process's instance at height h; its
		// topmost may be higher, which the loop handles one level at a
		// time.
	}
	return hops, nil
}

// chooseBestChild implements Choose_Best_Child: the child whose MBR needs
// the least enlargement to encompass the joining filter, ties broken by
// smaller area, then by lower ID. x is the instance routing at height h.
func (t *Tree) chooseBestChild(x Handle, h int, f geom.Rect) ProcID {
	best := NoProc
	var bestEnl, bestArea float64
	for i, c := range t.ar.kids[x] {
		ch := t.kidHandle(x, i, c, h-1)
		if ch == nilH {
			continue // stale reference mid-repair; skip
		}
		mbr := t.ar.mbr[ch]
		enl := mbr.Enlargement(f)
		area := mbr.Area()
		if best == NoProc ||
			enl < bestEnl ||
			(enl == bestEnl && area < bestArea) ||
			(enl == bestEnl && area == bestArea && c < best) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// addChild attaches subtree root q (whose topmost instance is at height
// h-1) as a child of p's instance at height h, splitting overflowing
// nodes recursively (Figure 8's ADD_CHILD). It returns the number of
// splits performed.
func (t *Tree) addChild(pid ProcID, h int, qid ProcID) int {
	x := t.at(pid, h)
	if x == nilH {
		// The target vanished mid-repair; requeue the subtree so a later
		// pass re-attaches it.
		t.pendingFragments = append(t.pendingFragments, fragment{id: qid, h: h - 1})
		return 0
	}
	t.ar.addKid(x, qid, t.params.MaxFanout)
	t.ar.parent[t.at(qid, h-1)] = pid
	if qm := t.childMBR(qid, h-1); !t.ar.mbr[x].Contains(qm) {
		t.ar.mbr[x] = t.ar.mbr[x].Union(qm)
	}
	t.refreshUnderloaded(pid, h)

	if len(t.ar.kids[x]) <= t.params.MaxFanout {
		// Is_Better_MBR_Cover: if a child covers better than the current
		// parent, they exchange roles (Adjust_Parent / CHECK_COVER).
		t.fixCoverLocal(pid, h)
		return 0
	}
	return t.splitInstance(pid, h)
}

// splitInstance splits the overflowing children set of (pid, h) into two
// groups (Split_Node), keeps the group containing pid's own child, elects
// a leader for the other group, and pushes the new node to the parent —
// creating a new root if pid's instance was the root (Create_Root).
func (t *Tree) splitInstance(pid ProcID, h int) int {
	x := t.at(pid, h)
	members := append([]ProcID(nil), t.ar.kids[x]...)
	rects := make([]geom.Rect, len(members))
	for i, c := range members {
		rects[i] = t.childMBR(c, h-1)
	}
	leftIdx, rightIdx, err := t.params.Split.Split(rects, t.params.MinFanout)
	if err != nil {
		// Cannot happen for a legal overflow (M+1 >= 2m+1 members); keep
		// the overflowing node rather than corrupting the structure.
		return 0
	}
	// pid's own child instance must stay in pid's group. If the own child
	// is missing entirely, the instance is corrupt: leave it for
	// CHECK_CHILDREN to dissolve rather than splitting garbage.
	own := indexOf(members, pid)
	if own == -1 {
		return 0
	}
	if containsIdx(rightIdx, own) {
		leftIdx, rightIdx = rightIdx, leftIdx
	}

	// pid keeps the left group.
	left := make([]ProcID, 0, len(leftIdx))
	for _, i := range leftIdx {
		left = append(left, members[i])
	}
	t.ar.setKids(x, left, t.params.MaxFanout)
	t.computeMBR(pid, h)
	t.refreshUnderloaded(pid, h)

	// Elect a leader for the right group (Figure 6) and promote it.
	rightIDs := make([]ProcID, len(rightIdx))
	rightMBRs := make([]geom.Rect, len(rightIdx))
	for i, idx := range rightIdx {
		rightIDs[i] = members[idx]
		rightMBRs[i] = rects[idx]
	}
	rid := rightIDs[t.params.Election.ChooseLeader(rightIDs, rightMBRs)]
	r := t.procs[rid]
	rx := t.newInstance(r, h)
	t.ar.setKids(rx, rightIDs, t.params.MaxFanout)
	for _, c := range rightIDs {
		t.ar.parent[t.at(c, h-1)] = rid
	}
	t.computeMBR(rid, h)
	t.refreshUnderloaded(rid, h)

	// Splitting shrank pid's MBR at h; its own child node may no longer
	// be the best cover of the kept group. Re-establish the cover
	// invariant locally before wiring the new sibling upward.
	leftID := t.fixCoverLocal(pid, h)
	lx := t.at(leftID, h)
	if lx == nilH {
		// Corrupt surroundings (possible only mid-stabilization): requeue
		// the new sibling so a later pass re-attaches it.
		t.pendingFragments = append(t.pendingFragments, fragment{id: rid, h: h})
		return 1
	}

	if leftID == t.rootID && h == t.rootH {
		// Root split: elect the new root among the two group leaders.
		ids := []ProcID{leftID, rid}
		mbrs := []geom.Rect{t.ar.mbr[lx], t.ar.mbr[rx]}
		w := ids[t.params.Election.ChooseLeader(ids, mbrs)]
		nr := t.newInstance(t.procs[w], h+1)
		t.ar.setKids(nr, ids, t.params.MaxFanout)
		t.ar.parent[nr] = w
		t.ar.parent[lx] = w
		t.ar.parent[rx] = w
		t.computeMBR(w, h+1)
		t.refreshUnderloaded(w, h+1)
		t.rootID, t.rootH = w, h+1
		return 1
	}
	g := t.ar.parent[lx]
	return 1 + t.addChild(g, h+1, rid)
}

// exchangeRoles makes q take over p's interior role from height h up to
// p's topmost instance (the paper's Adjust_Parent, extended to cascade so
// the "process is its own child" invariant is preserved at every level).
// q must currently be a child of p at height h-1. The instances
// themselves stay in place in the arena: only their owner (and the
// processes' handle tables) change.
func (t *Tree) exchangeRoles(pid, qid ProcID, h int) {
	p := t.procs[pid]
	q := t.procs[qid]
	top := p.Top
	wasRoot := t.rootID == pid

	for hh := h; hh <= top; hh++ {
		x := p.at(hh)
		p.clearInst(hh)
		if hh > h {
			// p's own child at hh-1 has become q's.
			t.ar.replaceKid(x, pid, qid)
		}
		t.ar.owner[x] = qid
		t.ar.slot[x] = q.slot
		if old := q.at(hh); old != nilH {
			t.ar.release(old) // mid-repair leftovers are discarded, as before
		}
		q.setInst(hh, x)
		for _, c := range t.ar.kids[x] {
			if ci := t.at(c, hh-1); ci != nilH {
				t.ar.parent[ci] = qid
				t.ar.parentH[ci] = x
			}
		}
	}
	p.Top = h - 1
	q.Top = top

	if wasRoot {
		t.rootID = qid
		t.ar.parent[q.at(top)] = qid
		return
	}
	// Fix the grandparent's children list: p@top was replaced by q@top.
	g := t.ar.parent[q.at(top)]
	if gx := t.at(g, top+1); gx != nilH {
		t.ar.replaceKid(gx, pid, qid)
	}
}

// insertSubtreeAt re-attaches a detached subtree whose root instance is
// (id, h): the tree is descended from the root to height h+1 by least
// enlargement and the subtree is added there. Subtrees at or above the
// current root height are merged by electing a common root. It returns
// the number of splits triggered.
func (t *Tree) insertSubtreeAt(id ProcID, h int) int {
	x := t.at(id, h)
	if x == nilH {
		return 0
	}
	if h >= t.rootH {
		// The fragment is as tall as the tree: elect a new common root
		// over the current root and the fragment.
		for h > t.rootH {
			// Dissolve the fragment's top level so heights align.
			h = t.dissolveTop(id, h)
			x = t.at(id, h)
			if x == nilH {
				return 0
			}
		}
		if id == t.rootID {
			return 0
		}
		rootX := t.at(t.rootID, t.rootH)
		if rootX == nilH {
			// The root reference is dangling mid-repair (a corruption or
			// crash dissolved it after this pass's ensureRoot ran); park
			// the fragment until the next pass re-elects a root.
			t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: h})
			return 0
		}
		ids := []ProcID{t.rootID, id}
		mbrs := []geom.Rect{t.ar.mbr[rootX], t.ar.mbr[x]}
		w := ids[t.params.Election.ChooseLeader(ids, mbrs)]
		oldRoot, oldH := t.rootID, t.rootH
		nr := t.newInstance(t.procs[w], oldH+1)
		t.ar.setKids(nr, []ProcID{oldRoot, id}, t.params.MaxFanout)
		t.ar.parent[nr] = w
		t.ar.parent[rootX] = w
		t.ar.parent[x] = w
		t.computeMBR(w, oldH+1)
		t.refreshUnderloaded(w, oldH+1)
		t.rootID, t.rootH = w, oldH+1
		return 0
	}
	cur, hh := t.rootID, t.rootH
	for hh > h+1 {
		cx := t.at(cur, hh)
		if cx == nilH {
			t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: h})
			return 0
		}
		if !t.ar.mbr[cx].Contains(t.ar.mbr[x]) {
			t.ar.mbr[cx] = t.ar.mbr[cx].Union(t.ar.mbr[x])
		}
		next := t.chooseBestChild(cx, hh, t.ar.mbr[x])
		if next == NoProc {
			t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: h})
			return 0
		}
		cur = next
		hh--
	}
	return t.addChild(cur, h+1, id)
}

// dissolveTop removes the instance (id, h), orphaning its children, and
// immediately re-attaches each child subtree one level lower via
// insertSubtreeAt once the caller realigns. It returns id's new top.
func (t *Tree) dissolveTop(id ProcID, h int) int {
	p := t.procs[id]
	x := p.at(h)
	p.clearInst(h)
	p.Top = h - 1
	for _, c := range t.ar.kids[x] {
		if c == id {
			continue
		}
		if ci := t.at(c, h-1); ci != nilH {
			t.ar.parent[ci] = c // mark as fragment root
			t.pendingFragments = append(t.pendingFragments, fragment{id: c, h: h - 1})
		}
	}
	if own := t.at(id, h-1); own != nilH {
		t.ar.parent[own] = id
	}
	t.ar.release(x)
	return h - 1
}

func indexOf(ids []ProcID, id ProcID) int {
	for i, c := range ids {
		if c == id {
			return i
		}
	}
	return -1
}

func containsIdx(idx []int, v int) bool {
	for _, i := range idx {
		if i == v {
			return true
		}
	}
	return false
}
