package core

import (
	"fmt"

	"drtree/internal/geom"
)

// UpdateFilter replaces the filter of live process id with f, in place:
// the leaf MBR becomes f and the change is repropagated along the parent
// chain to the root (the eager equivalent of the periodic CHECK_MBR,
// Figure 10), after which the cover invariant is restored along the same
// path (the CHECK_COVER rule, exactly as a join does). Starting from a
// legitimate configuration the result is again legitimate; starting
// mid-repair the update is applied best-effort and the next Stabilize
// finishes the job.
//
// This is the engine-level primitive behind the pub/sub gateway layer: a
// gateway's overlay filter is the union of many subscriptions and moves
// on every subscribe/unsubscribe without the process leaving the tree.
func (t *Tree) UpdateFilter(id ProcID, f geom.Rect) error {
	p := t.procs[id]
	if p == nil {
		return fmt.Errorf("core: process %d not in the tree", id)
	}
	if f.IsEmpty() {
		return fmt.Errorf("core: filter must be a non-empty rectangle")
	}
	if f.Dims() != p.Filter.Dims() {
		return fmt.Errorf("core: filter has %d dims, tree uses %d", f.Dims(), p.Filter.Dims())
	}
	if f.Equal(p.Filter) {
		return nil
	}
	p.Filter = f
	t.computeMBR(id, 0)

	// Repropagate the new leaf MBR bottom-up along the parent chain. The
	// walk recomputes from the actual children sets (not an incremental
	// union), so shrinking filters propagate exactly like growing ones.
	cur, h := id, 0
	for !(cur == t.rootID && h == t.rootH) {
		x := t.at(cur, h)
		if x == nilH {
			break
		}
		parent := t.ar.parent[x]
		if parent == NoProc || t.procs[parent] == nil {
			break // dangling mid-repair; stabilization reconciles
		}
		if parent == cur && h >= t.procs[cur].Top {
			break
		}
		if t.at(parent, h+1) == nilH {
			break
		}
		t.computeMBR(parent, h+1)
		cur, h = parent, h+1
		if h > t.rootH {
			break
		}
	}
	t.fixCoverUp(id, 0)
	return nil
}
