package core

import (
	"math"

	"drtree/internal/geom"
)

// StabReport is the unified stabilization result across engines (Lemmas
// 3.3-3.6). The sequential engine fills Passes/Fixes/Rejoins; the
// message-passing engines report the network Rounds their check periods
// consumed.
type StabReport struct {
	// Passes is the number of full check rounds executed (one round runs
	// every CHECK_* module once over the whole overlay).
	Passes int
	// Rounds is the number of network rounds consumed (message-passing
	// engines only; 0 for the sequential engine).
	Rounds int
	// Fixes counts individual repairs (discarded children, recomputed
	// MBRs, exchanges, compactions, ...).
	Fixes int
	// Rejoins counts subtree re-insertions triggered by CHECK_PARENT or
	// compaction fallback.
	Rejoins int
	// Converged is false only if the pass limit was hit before reaching a
	// fixpoint (which would indicate a bug, not expected behaviour).
	Converged bool
}

// Stabilize runs the paper's five periodic verification modules —
// CHECK_CHILDREN, CHECK_PARENT, CHECK_MBR, CHECK_COVER, CHECK_STRUCTURE
// (Figures 10-14) — repeatedly until the configuration stops changing.
// Starting from an arbitrary (corrupted) configuration it restores a
// legitimate one (Lemma 3.6).
func (t *Tree) Stabilize() StabReport {
	st := StabReport{Converged: true}
	if len(t.procs) == 0 {
		t.rootID, t.rootH = NoProc, 0
		t.pendingFragments = nil
		return st
	}
	maxPasses := 4*len(t.procs) + 16
	for {
		changed := false
		changed = t.ensureRoot(&st) || changed
		changed = t.checkChildrenAll(&st) || changed
		changed = t.checkParentsAll(&st) || changed
		changed = t.checkMBRsAll(&st) || changed
		changed = t.checkCoverAll(&st) || changed
		changed = t.checkStructureAll(&st) || changed
		if n := t.drainFragments(); n > 0 {
			st.Rejoins += n
			changed = true
		}
		st.Passes++
		if !changed {
			return st
		}
		if st.Passes >= maxPasses {
			st.Converged = false
			return st
		}
	}
}

// ensureRoot repairs a dead or dangling root reference by promoting the
// tallest live fragment.
func (t *Tree) ensureRoot(st *StabReport) bool {
	rp := t.procs[t.rootID]
	if rp != nil && rp.at(t.rootH) != nilH {
		if t.rootH != rp.Top && rp.at(rp.Top) != nilH {
			// The root process grew or shrank; track its topmost instance.
			t.rootH = rp.Top
			t.ar.parent[rp.at(rp.Top)] = rp.ID
			st.Fixes++
			return true
		}
		return false
	}
	// Root gone: every process whose topmost instance has no valid parent
	// is a fragment; promote the tallest.
	t.pendingFragments = t.pendingFragments[:0]
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		top := t.contiguousTop(p)
		x := p.at(top)
		if x == nilH {
			continue
		}
		par := t.ar.parent[x]
		g := t.at(par, top+1)
		if par == id || g == nilH || !hasID(t.ar.kids[g], id) {
			t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: top})
		}
	}
	t.electRootFromFragments()
	st.Fixes++
	return true
}

// contiguousTop returns the largest h such that p owns instances at every
// height 0..h (instances above a gap are corrupt and ignored).
func (t *Tree) contiguousTop(p *Process) int {
	h := 0
	for p.at(h+1) != nilH {
		h++
	}
	return h
}

// checkChildrenAll runs CHECK_CHILDREN (Figure 12) on every instance:
// children that are dead, have no instance at the child level, or whose
// parent variable names another process are discarded; the underloaded
// flag is refreshed; instances that lost their own child (corruption) or
// all children are dissolved.
func (t *Tree) checkChildrenAll(st *StabReport) bool {
	changed := false
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		// Dissolve instances above a gap in the chain first, scanning the
		// whole table top-down: Top itself may have been corrupted.
		top := t.contiguousTop(p)
		for h := len(p.inst) - 1; h > top; h-- {
			if p.at(h) != nilH {
				t.dissolveInstance(p, h)
				st.Fixes++
				changed = true
			}
		}
		p.Top = top
		for h := p.Top; h >= 1; h-- {
			x := p.at(h)
			if x == nilH {
				continue
			}
			// Filter the children in place; setKids afterwards restores
			// the kids/kidH pairing.
			kids := t.ar.kids[x]
			kept := kids[:0]
			for _, c := range kids {
				cx := t.at(c, h-1)
				switch {
				case hasID(kept, c):
					// Duplicate reference left by a corruption.
					st.Fixes++
					changed = true
				case t.procs[c] == nil, cx == nilH:
					st.Fixes++
					changed = true
				case t.ar.parent[cx] != id:
					// "If a node discovers that one of its children has
					// another parent, then it simply discards the child."
					st.Fixes++
					changed = true
				default:
					kept = append(kept, c)
				}
			}
			t.ar.setKids(x, kept, t.params.MaxFanout)
			if !hasID(kept, id) || len(kept) == 0 {
				// The own-child invariant is broken (or the node is
				// empty): the instance cannot stand; dissolve it and let
				// the orphans rejoin.
				t.dissolveInstance(p, h)
				st.Fixes++
				changed = true
				continue
			}
			was := t.ar.under[x]
			t.refreshUnderloaded(id, h)
			if was != t.ar.under[x] {
				st.Fixes++
				changed = true
			}
		}
	}
	return changed
}

// dissolveInstance removes p's instance at height h, marking its children
// (and p's own lower chain) as fragments to be re-attached. If the root
// instance dissolves, the root reference moves down to p's remaining top.
func (t *Tree) dissolveInstance(p *Process, h int) {
	x := p.at(h)
	if x == nilH {
		return
	}
	p.clearInst(h)
	if p.Top >= h {
		p.Top = h - 1
	}
	// Detach the dissolved node from its parent's children list so no
	// stale reference survives.
	if par := t.ar.parent[x]; par != p.ID {
		if g := t.at(par, h+1); g != nilH {
			t.ar.removeKid(g, p.ID)
			t.refreshUnderloaded(par, h+1)
		}
	}
	for _, c := range t.ar.kids[x] {
		if c == p.ID {
			continue
		}
		if cx := t.at(c, h-1); cx != nilH && t.ar.parent[cx] == p.ID {
			t.ar.parent[cx] = c
			t.pendingFragments = append(t.pendingFragments, fragment{id: c, h: h - 1})
		}
	}
	if own := p.at(h - 1); own != nilH {
		t.ar.parent[own] = p.ID
		if t.rootID == p.ID && t.rootH == h {
			t.rootH = h - 1
		} else if t.rootID != p.ID {
			t.pendingFragments = append(t.pendingFragments, fragment{id: p.ID, h: h - 1})
		}
	}
	t.ar.release(x)
}

// checkParentsAll runs CHECK_PARENT (Figure 11): an instance whose parent
// does not list it as a child re-initiates a join for its whole subtree.
func (t *Tree) checkParentsAll(st *StabReport) bool {
	changed := false
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		for h := p.Top; h >= 0; h-- {
			x := p.at(h)
			if x == nilH {
				continue
			}
			if h < p.Top {
				// Interior of the own chain: the parent must be p itself.
				if t.ar.parent[x] != id {
					t.ar.parent[x] = id
					st.Fixes++
					changed = true
				}
				continue
			}
			// Topmost instance.
			if id == t.rootID && h == t.rootH {
				if t.ar.parent[x] != id {
					t.ar.parent[x] = id
					st.Fixes++
					changed = true
				}
				continue
			}
			par := t.ar.parent[x]
			g := t.at(par, h+1)
			if par == id || g == nilH || !hasID(t.ar.kids[g], id) {
				t.ar.parent[x] = id
				t.pendingFragments = append(t.pendingFragments, fragment{id: id, h: h})
				st.Fixes++
				changed = true
			}
		}
	}
	return changed
}

// checkMBRsAll runs CHECK_MBR (Figure 10) bottom-up over all instances.
func (t *Tree) checkMBRsAll(st *StabReport) bool {
	changed := false
	for h := 0; h <= t.rootH; h++ {
		for _, id := range t.ProcIDs() {
			p := t.procs[id]
			if p == nil {
				continue
			}
			x := p.at(h)
			if x == nilH {
				continue
			}
			old := t.ar.mbr[x]
			t.computeMBR(id, h)
			if !old.Equal(t.ar.mbr[x]) {
				st.Fixes++
				changed = true
			}
		}
	}
	return changed
}

// checkCoverAll runs CHECK_COVER (Figure 13): whenever a child covers
// better than its parent (larger MBR area), the two processes exchange
// roles.
func (t *Tree) checkCoverAll(st *StabReport) bool {
	if t.params.DisableCoverRule {
		return false
	}
	changed := false
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		for h := 1; h <= p.Top; h++ {
			x := p.at(h)
			if x == nilH {
				continue
			}
			own := t.childMBR(id, h-1)
			best := NoProc
			bestArea := own.Area()
			for _, c := range t.ar.kids[x] {
				if c == id {
					continue
				}
				if a := t.childMBR(c, h-1).Area(); a > bestArea {
					best, bestArea = c, a
				}
			}
			if best != NoProc {
				t.exchangeRoles(id, best, h)
				st.Fixes++
				changed = true
				break // p's instances moved; re-examine on the next pass
			}
		}
	}
	return changed
}

// checkStructureAll runs CHECK_STRUCTURE (Figure 14): compaction of
// underloaded children, with join-based re-insertion as fallback, plus
// root collapse when the root loses all but one child.
func (t *Tree) checkStructureAll(st *StabReport) bool {
	changed := false
	for _, id := range t.ProcIDs() {
		p := t.procs[id]
		if p == nil {
			continue
		}
		for h := 2; h <= p.Top; h++ {
			if t.compactUnder(id, h, st) {
				changed = true
			}
		}
		// Overflow repair: a transient fault (or an aborted split during a
		// corrupted phase) can leave a node with more than M children;
		// split it like an overflowing ADD_CHILD would.
		for h := 1; h <= p.Top; h++ {
			x := p.at(h)
			if x != nilH && len(t.ar.kids[x]) > t.params.MaxFanout {
				t.splitInstance(id, h)
				st.Fixes++
				changed = true
				break // p's instances may have moved; rescan next pass
			}
		}
	}
	if t.collapseRoot(st) {
		changed = true
	}
	return changed
}

// compactUnder looks for underloaded children of (id, h) and compacts
// them with the sibling needing the least MBR growth; when no sibling can
// absorb the merge, the underloaded node is dissolved and its children
// rejoin (INITIATE_NEW_CONNECTION).
func (t *Tree) compactUnder(id ProcID, h int, st *StabReport) bool {
	p := t.procs[id]
	x := p.at(h)
	if x == nilH {
		return false
	}
	changed := false
	for {
		var uid ProcID
		for _, c := range t.ar.kids[x] {
			cx := t.at(c, h-1)
			if cx != nilH && t.ar.under[cx] && len(t.ar.kids[cx]) > 0 {
				uid = c
				break
			}
		}
		if uid == NoProc {
			return changed
		}
		u := t.at(uid, h-1)
		// Search_Compaction_Candidate: sibling with the smallest MBR
		// growth whose merged children set fits within M.
		cand := NoProc
		candCost := math.Inf(1)
		for _, s := range t.ar.kids[x] {
			if s == uid {
				continue
			}
			sx := t.at(s, h-1)
			if sx == nilH || len(t.ar.kids[sx])+len(t.ar.kids[u]) > t.params.MaxFanout {
				continue
			}
			cost := t.ar.mbr[sx].Union(t.ar.mbr[u]).Area() - t.ar.mbr[sx].Area()
			if cost < candCost || (cost == candCost && s < cand) {
				cand, candCost = s, cost
			}
		}
		if cand == NoProc {
			// Fallback: dissolve the underloaded node; its children
			// execute the join process again (INITIATE_NEW_CONNECTION).
			// If the underloaded node is the parent's own child, the
			// parent's node cannot survive either: dissolve the parent
			// instance instead and let the whole neighborhood rejoin.
			if uid == id {
				t.dissolveInstance(p, h)
				st.Rejoins++
				st.Fixes++
				return true
			}
			t.dissolveInstance(t.procs[uid], h-1)
			t.ar.removeKid(x, uid)
			t.refreshUnderloaded(id, h)
			st.Rejoins++
			st.Fixes++
			changed = true
			continue
		}
		t.compactPair(id, h, cand, uid)
		st.Fixes++
		changed = true
	}
}

// compactPair merges the children of underloaded uid into sibling cand
// (or vice versa — Elect_Leader keeps the better cover as the surviving
// parent), removing the loser's instance.
func (t *Tree) compactPair(gid ProcID, h int, cand, uid ProcID) {
	cx := t.at(cand, h-1)
	ux := t.at(uid, h-1)
	leaderID, loserID := cand, uid
	lx, lo := cx, ux
	switch {
	case cand == gid:
		// The parent's own child must survive a merge, or the parent's
		// node would lose its own-child invariant.
	case uid == gid:
		leaderID, loserID = uid, cand
		lx, lo = ux, cx
	default:
		ids := []ProcID{cand, uid}
		mbrs := []geom.Rect{t.ar.mbr[cx], t.ar.mbr[ux]}
		if ids[t.params.Election.ChooseLeader(ids, mbrs)] == uid {
			leaderID, loserID = uid, cand
			lx, lo = ux, cx
		}
	}
	// Merge_Children: the leader adopts the loser's children (the loser's
	// own chain child joins the leader's set like any other).
	for _, c := range t.ar.kids[lo] {
		if cc := t.at(c, h-2); cc != nilH {
			t.ar.parent[cc] = leaderID
		}
		t.ar.addKid(lx, c, t.params.MaxFanout)
	}
	// Remove the loser's instance; the loser stays in the tree at h-2 as
	// an ordinary child of the leader.
	loser := t.procs[loserID]
	t.releaseInst(loser, h-1)
	if loser.Top >= h-1 {
		loser.Top = h - 2
	}
	if g := t.at(gid, h); g != nilH {
		t.ar.removeKid(g, loserID)
	}
	t.computeMBR(leaderID, h-1)
	t.refreshUnderloaded(leaderID, h-1)
	t.computeMBR(gid, h)
	t.refreshUnderloaded(gid, h)
}

// collapseRoot removes degenerate roots: an interior root instance with a
// single child hands the root role to that child.
func (t *Tree) collapseRoot(st *StabReport) bool {
	changed := false
	for t.rootH >= 1 {
		rp := t.procs[t.rootID]
		if rp == nil {
			return changed
		}
		x := rp.at(t.rootH)
		if x == nilH || len(t.ar.kids[x]) != 1 {
			return changed
		}
		c := t.ar.kids[x][0]
		t.releaseInst(rp, t.rootH)
		if rp.Top >= t.rootH {
			rp.Top = t.rootH - 1
		}
		t.rootID = c
		t.rootH--
		if cx := t.at(c, t.rootH); cx != nilH {
			t.ar.parent[cx] = c
		}
		st.Fixes++
		changed = true
	}
	return changed
}
