package core

import (
	"cmp"
	"fmt"
	"slices"
)

// LeaveStats reports the cost of a departure repair for experiment E4
// (Lemmas 3.4 and 3.5).
type LeaveStats struct {
	// Orphans is the number of subtrees detached by the departure.
	Orphans int
	// Reinsertions is the number of subtree re-attachments performed.
	Reinsertions int
	// StabilizeSteps is the number of stabilization passes needed to
	// return to a legitimate configuration.
	StabilizeSteps int
}

// Leave removes a subscriber via a controlled departure (Figure 9): the
// parent of the topmost instance drops the leaver, orphaned subtrees are
// re-attached, and the stabilization checks run to a fixpoint.
func (t *Tree) Leave(id ProcID) error {
	_, err := t.LeaveWithStats(id)
	return err
}

// LeaveWithStats is Leave reporting the departure-repair cost
// (experiment E4, Lemmas 3.4 and 3.5).
func (t *Tree) LeaveWithStats(id ProcID) (LeaveStats, error) {
	p := t.procs[id]
	if p == nil {
		return LeaveStats{}, fmt.Errorf("core: process %d not in the tree", id)
	}
	var st LeaveStats

	if len(t.procs) == 1 {
		t.dropProc(p)
		t.rootID, t.rootH = NoProc, 0
		return st, nil
	}

	// Notify the parent of the topmost instance (LEAVE message).
	if t.rootID != id {
		if top := p.at(p.Top); top != nilH {
			par := t.ar.parent[top]
			if g := t.at(par, p.Top+1); g != nilH {
				t.ar.removeKid(g, id)
				t.refreshUnderloaded(par, p.Top+1)
			}
		}
	}

	// Every child of every instance of the leaver (other than the leaver
	// itself) roots an orphaned subtree.
	t.enqueueOrphansOf(p)
	t.dropProc(p)
	st.Orphans = len(t.pendingFragments)

	if t.rootID == id {
		t.electRootFromFragments()
	}
	st.Reinsertions = t.drainFragments()
	st.StabilizeSteps = t.Stabilize().Passes
	return st, nil
}

// Crash removes a subscriber without any notification (an uncontrolled
// departure / permanent failure). The structure is left dangling; call
// Stabilize (or RepairCrash) to restore a legitimate configuration, as
// the paper's periodic checks would.
func (t *Tree) Crash(id ProcID) error {
	p := t.procs[id]
	if p == nil {
		return fmt.Errorf("core: process %d not in the tree", id)
	}
	t.dropProc(p)
	if len(t.procs) == 0 {
		t.rootID, t.rootH = NoProc, 0
	}
	return nil
}

// RepairCrash runs the stabilization checks after one or more crashes and
// returns the repair cost (Lemma 3.5). It is equivalent to waiting for
// the periodic CHECK_* timers to fire until the structure is legal.
func (t *Tree) RepairCrash() LeaveStats {
	var st LeaveStats
	stab := t.Stabilize()
	st.StabilizeSteps = stab.Passes
	st.Reinsertions = stab.Rejoins
	return st
}

// enqueueOrphansOf queues every non-self child of every instance of p as
// a detached fragment, highest first.
func (t *Tree) enqueueOrphansOf(p *Process) {
	for hh := p.Top; hh >= 1; hh-- {
		x := p.at(hh)
		if x == nilH {
			continue
		}
		for _, c := range t.ar.kids[x] {
			if c == p.ID {
				continue
			}
			if ci := t.at(c, hh-1); ci != nilH {
				t.ar.parent[ci] = c
				t.pendingFragments = append(t.pendingFragments, fragment{id: c, h: hh - 1})
			}
		}
	}
}

// electRootFromFragments promotes the tallest pending fragment (ties:
// largest MBR, then lowest ID) as the new tree root after the previous
// root vanished.
func (t *Tree) electRootFromFragments() {
	if len(t.pendingFragments) == 0 {
		// Degenerate: no fragments (the root had only itself); pick any
		// live process as a fresh single-node tree root. Top can be stale
		// mid-repair (a corruption the checks have not reached yet), so
		// promote the top of the contiguous chain, never Top itself.
		for _, id := range t.ProcIDs() {
			p := t.procs[id]
			top := t.contiguousTop(p)
			x := p.at(top)
			if x == nilH {
				continue
			}
			t.rootID, t.rootH = id, top
			t.ar.parent[x] = id
			return
		}
		t.rootID, t.rootH = NoProc, 0
		return
	}
	slices.SortFunc(t.pendingFragments, func(fi, fj fragment) int {
		if fi.h != fj.h {
			return cmp.Compare(fj.h, fi.h) // tallest first
		}
		ai := t.childMBR(fi.id, fi.h).Area()
		aj := t.childMBR(fj.id, fj.h).Area()
		if ai != aj {
			return cmp.Compare(aj, ai) // largest MBR first
		}
		return cmp.Compare(fi.id, fj.id)
	})
	head := t.pendingFragments[0]
	t.pendingFragments = t.pendingFragments[1:]
	t.rootID, t.rootH = head.id, head.h
	if x := t.at(head.id, head.h); x != nilH {
		t.ar.parent[x] = head.id
	}
}

// drainFragments re-attaches every queued fragment (tallest first) and
// returns the number of re-insertions performed. Re-attachment can itself
// enqueue more fragments (height realignment), which are processed too.
func (t *Tree) drainFragments() int {
	n := 0
	// Bound the drain so a fragment that keeps getting requeued (mid-way
	// through a multi-pass repair) is retried on the next stabilization
	// pass instead of spinning here.
	budget := 4*len(t.pendingFragments) + 8
	for len(t.pendingFragments) > 0 && budget > 0 {
		budget--
		slices.SortStableFunc(t.pendingFragments, func(a, b fragment) int {
			return cmp.Compare(b.h, a.h) // tallest first
		})
		f := t.pendingFragments[0]
		t.pendingFragments = t.pendingFragments[1:]
		if t.procs[f.id] == nil || t.at(f.id, f.h) == nilH {
			continue
		}
		// Skip fragments that were re-attached transitively.
		if !t.isFragmentRoot(f.id, f.h) {
			continue
		}
		t.insertSubtreeAt(f.id, f.h)
		n++
	}
	return n
}

// isFragmentRoot reports whether (id, h) is still detached: its recorded
// parent either is itself (while not being the tree root) or does not
// list it as a child.
func (t *Tree) isFragmentRoot(id ProcID, h int) bool {
	if id == t.rootID && h == t.rootH {
		return false
	}
	x := t.at(id, h)
	if x == nilH {
		return false
	}
	par := t.ar.parent[x]
	if par == id && h == t.procs[id].Top {
		return true
	}
	g := t.at(par, h+1)
	return g == nilH || !hasID(t.ar.kids[g], id)
}
