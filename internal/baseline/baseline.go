// Package baseline implements the three alternative dissemination
// structures the paper argues against in §3.1, as comparison points for
// the DR-tree:
//
//   - ContainmentTree — the direct mapping of the containment graph to a
//     tree with a virtual root (Chand & Felber [11]): accurate but
//     unbalanced, with unbounded fan-out at the virtual root.
//   - DimensionTrees — one containment tree per dimension (Anceaume et
//     al. [3]): flat trees with high fan-out and significant false
//     positives.
//   - Flooding — broadcast every event to every subscriber: the
//     degenerate upper bound on false positives and message cost.
//
// Every structure exposes the same Disseminate interface so experiment E6
// can print one table across systems.
package baseline

import (
	"fmt"
	"slices"

	"drtree/internal/geom"
)

// Report is the outcome of disseminating one event through a baseline.
type Report struct {
	// Received lists subscriber indexes that physically received the
	// event.
	Received []int
	// FalsePositives counts receivers whose subscription does not match.
	FalsePositives int
	// FalseNegatives counts matching subscribers that did not receive.
	FalseNegatives int
	// Messages counts point-to-point messages used.
	Messages int
}

// System is a dissemination structure under comparison.
type System interface {
	// Name identifies the system.
	Name() string
	// Disseminate routes one event and reports the outcome.
	Disseminate(ev geom.Point) Report
	// MaxFanout returns the maximum node degree of the structure.
	MaxFanout() int
	// Depth returns the maximum root-to-leaf depth.
	Depth() int
}

// finish fills derived accuracy fields of a report.
func finish(subs []geom.Rect, received map[int]bool, messages int, ev geom.Point) Report {
	rep := Report{Messages: messages}
	for i := range subs {
		match := subs[i].ContainsPoint(ev)
		if received[i] {
			rep.Received = append(rep.Received, i)
			if !match {
				rep.FalsePositives++
			}
		} else if match {
			rep.FalseNegatives++
		}
	}
	slices.Sort(rep.Received)
	return rep
}

// ContainmentTree is the direct containment-graph tree of [11]: each
// subscription hangs under one of its direct containers (the smallest,
// for routing accuracy); subscriptions with no container hang under a
// virtual root.
type ContainmentTree struct {
	subs     []geom.Rect
	children [][]int // children[i] = subscriptions directly under i
	roots    []int   // children of the virtual root
}

// NewContainmentTree builds the structure.
func NewContainmentTree(subs []geom.Rect) (*ContainmentTree, error) {
	t := &ContainmentTree{
		subs:     append([]geom.Rect(nil), subs...),
		children: make([][]int, len(subs)),
	}
	for i, s := range subs {
		if s.IsEmpty() {
			return nil, fmt.Errorf("baseline: subscription %d is empty", i)
		}
		// Find the smallest strict container to hang under.
		parent := -1
		for j, c := range subs {
			if i == j || !c.StrictlyContains(s) {
				continue
			}
			if parent == -1 || subs[parent].Area() > c.Area() {
				parent = j
			}
		}
		if parent == -1 {
			t.roots = append(t.roots, i)
		} else {
			t.children[parent] = append(t.children[parent], i)
		}
	}
	return t, nil
}

// Name implements System.
func (t *ContainmentTree) Name() string { return "containment-tree" }

// Disseminate implements System: the event enters at the virtual root and
// descends into every child whose filter matches. Accuracy is perfect
// (filters are exact), but the virtual root contacts every top-level
// subscription.
func (t *ContainmentTree) Disseminate(ev geom.Point) Report {
	received := make(map[int]bool)
	messages := 0
	var down func(i int)
	down = func(i int) {
		messages++
		received[i] = true
		for _, c := range t.children[i] {
			if t.subs[c].ContainsPoint(ev) {
				down(c)
			}
		}
	}
	for _, r := range t.roots {
		// The virtual root must probe each top-level subscription: one
		// message each, delivery only on match.
		messages++
		if t.subs[r].ContainsPoint(ev) {
			messages-- // counted again inside down
			down(r)
		}
	}
	return finish(t.subs, received, messages, ev)
}

// MaxFanout implements System (the virtual root counts).
func (t *ContainmentTree) MaxFanout() int {
	max := len(t.roots)
	for _, c := range t.children {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Depth implements System.
func (t *ContainmentTree) Depth() int {
	var depth func(i int) int
	depth = func(i int) int {
		d := 1
		for _, c := range t.children[i] {
			if dd := 1 + depth(c); dd > d {
				d = dd
			}
		}
		return d
	}
	max := 0
	for _, r := range t.roots {
		if d := depth(r); d > max {
			max = d
		}
	}
	return max
}

// DimensionTrees keeps one interval-containment tree per dimension [3]: a
// subscription registers in the tree of every dimension it constrains,
// and receives an event whenever its interval matches in any tree it is
// registered in — producing false positives whenever the other dimensions
// do not match.
type DimensionTrees struct {
	subs []geom.Rect
	dims int
}

// NewDimensionTrees builds the structure.
func NewDimensionTrees(subs []geom.Rect) (*DimensionTrees, error) {
	if len(subs) == 0 {
		return &DimensionTrees{}, nil
	}
	for i, s := range subs {
		if s.IsEmpty() {
			return nil, fmt.Errorf("baseline: subscription %d is empty", i)
		}
	}
	return &DimensionTrees{subs: append([]geom.Rect(nil), subs...), dims: subs[0].Dims()}, nil
}

// Name implements System.
func (t *DimensionTrees) Name() string { return "dimension-trees" }

// Disseminate implements System: a subscriber receives the event if its
// interval in some dimension contains the event's coordinate there (one
// message per matching tree membership).
func (t *DimensionTrees) Disseminate(ev geom.Point) Report {
	received := make(map[int]bool)
	messages := 0
	for d := 0; d < t.dims && d < len(ev); d++ {
		for i, s := range t.subs {
			if ev[d] >= s.Lo(d) && ev[d] <= s.Hi(d) {
				messages++
				received[i] = true
			}
		}
	}
	return finish(t.subs, received, messages, ev)
}

// MaxFanout implements System: the per-dimension trees are flat, so the
// fan-out is the largest per-dimension membership.
func (t *DimensionTrees) MaxFanout() int { return len(t.subs) }

// Depth implements System.
func (t *DimensionTrees) Depth() int {
	if len(t.subs) == 0 {
		return 0
	}
	return 2 // root plus one flat level per dimension
}

// Flooding broadcasts every event to every subscriber.
type Flooding struct {
	subs []geom.Rect
}

// NewFlooding builds the structure.
func NewFlooding(subs []geom.Rect) *Flooding {
	return &Flooding{subs: append([]geom.Rect(nil), subs...)}
}

// Name implements System.
func (f *Flooding) Name() string { return "flooding" }

// Disseminate implements System.
func (f *Flooding) Disseminate(ev geom.Point) Report {
	received := make(map[int]bool)
	for i := range f.subs {
		received[i] = true
	}
	return finish(f.subs, received, len(f.subs), ev)
}

// MaxFanout implements System.
func (f *Flooding) MaxFanout() int { return len(f.subs) }

// Depth implements System.
func (f *Flooding) Depth() int {
	if len(f.subs) == 0 {
		return 0
	}
	return 1
}
