package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

func sampleSubs() []geom.Rect {
	return []geom.Rect{
		geom.R2(0, 0, 100, 100),     // 0: big container
		geom.R2(10, 10, 40, 40),     // 1: inside 0
		geom.R2(15, 15, 30, 30),     // 2: inside 1
		geom.R2(60, 60, 90, 90),     // 3: inside 0
		geom.R2(200, 200, 250, 250), // 4: separate root
	}
}

func TestContainmentTreeStructure(t *testing.T) {
	ct, err := NewContainmentTree(sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ct.roots); got != 2 {
		t.Fatalf("roots = %d, want 2 (indexes 0 and 4)", got)
	}
	if ct.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3 (0 -> 1 -> 2)", ct.Depth())
	}
	if ct.MaxFanout() < 2 {
		t.Fatalf("MaxFanout = %d", ct.MaxFanout())
	}
	if _, err := NewContainmentTree([]geom.Rect{{}}); err == nil {
		t.Fatal("empty subscription must be rejected")
	}
}

func TestContainmentTreeAccuracy(t *testing.T) {
	ct, err := NewContainmentTree(sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	// Event inside 0, 1, 2.
	rep := ct.Disseminate(geom.Point{20, 20})
	if rep.FalsePositives != 0 || rep.FalseNegatives != 0 {
		t.Fatalf("containment tree must be exact: %+v", rep)
	}
	if len(rep.Received) != 3 {
		t.Fatalf("received %v, want 3 nodes", rep.Received)
	}
	// A miss still costs root probes.
	miss := ct.Disseminate(geom.Point{500, 500})
	if len(miss.Received) != 0 || miss.Messages == 0 {
		t.Fatalf("miss: %+v", miss)
	}
}

func TestDimensionTreesFalsePositives(t *testing.T) {
	dt, err := NewDimensionTrees(sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	// Event x in [0,100] but y outside all: x-tree matches sub 0 ->
	// delivery without a full match = false positive.
	rep := dt.Disseminate(geom.Point{50, 150})
	if rep.FalsePositives == 0 {
		t.Fatalf("dimension trees should produce false positives: %+v", rep)
	}
	if rep.FalseNegatives != 0 {
		t.Fatalf("dimension trees must not lose matching subscribers: %+v", rep)
	}
	if _, err := NewDimensionTrees([]geom.Rect{{}}); err == nil {
		t.Fatal("empty subscription must be rejected")
	}
	empty, err := NewDimensionTrees(nil)
	if err != nil || empty.Depth() != 0 {
		t.Fatalf("empty structure: %v depth=%d", err, empty.Depth())
	}
}

func TestFloodingDegenerate(t *testing.T) {
	fl := NewFlooding(sampleSubs())
	rep := fl.Disseminate(geom.Point{20, 20})
	if len(rep.Received) != 5 {
		t.Fatalf("flooding must reach everyone: %v", rep.Received)
	}
	if rep.FalsePositives != 2 { // subs 3 and 4 don't match
		t.Fatalf("FalsePositives = %d, want 2", rep.FalsePositives)
	}
	if rep.Messages != 5 {
		t.Fatalf("Messages = %d", rep.Messages)
	}
	if fl.Depth() != 1 || fl.MaxFanout() != 5 {
		t.Fatalf("Depth=%d MaxFanout=%d", fl.Depth(), fl.MaxFanout())
	}
	if NewFlooding(nil).Depth() != 0 {
		t.Fatal("empty flooding depth must be 0")
	}
}

func TestSystemsInterface(t *testing.T) {
	subs := sampleSubs()
	ct, _ := NewContainmentTree(subs)
	dt, _ := NewDimensionTrees(subs)
	systems := []System{ct, dt, NewFlooding(subs)}
	names := map[string]bool{}
	for _, s := range systems {
		names[s.Name()] = true
	}
	if len(names) != 3 {
		t.Fatalf("duplicate system names: %v", names)
	}
}

func TestPropertyNoFalseNegativesAnySystem(t *testing.T) {
	// None of the baselines may lose a matching subscriber.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 81))
		n := 3 + rng.IntN(40)
		subs := make([]geom.Rect, n)
		for i := range subs {
			x, y := rng.Float64()*100, rng.Float64()*100
			subs[i] = geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)
		}
		ct, err := NewContainmentTree(subs)
		if err != nil {
			return false
		}
		dt, err := NewDimensionTrees(subs)
		if err != nil {
			return false
		}
		for _, sys := range []System{ct, dt, NewFlooding(subs)} {
			for k := 0; k < 10; k++ {
				ev := geom.Point{rng.Float64() * 120, rng.Float64() * 120}
				if sys.Disseminate(ev).FalseNegatives != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentTreeExact(t *testing.T) {
	// The containment tree must have zero false positives too.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 82))
		n := 3 + rng.IntN(30)
		subs := make([]geom.Rect, n)
		for i := range subs {
			x, y := rng.Float64()*100, rng.Float64()*100
			subs[i] = geom.R2(x, y, x+rng.Float64()*40, y+rng.Float64()*40)
		}
		ct, err := NewContainmentTree(subs)
		if err != nil {
			return false
		}
		for k := 0; k < 10; k++ {
			ev := geom.Point{rng.Float64() * 140, rng.Float64() * 140}
			rep := ct.Disseminate(ev)
			if rep.FalsePositives != 0 || rep.FalseNegatives != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
