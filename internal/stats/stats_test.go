package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %g", s.StdDev)
	}
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Fatalf("empty Summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.P99 != 7 {
		t.Fatalf("singleton Summary = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {-5, 10}, {105, 40}, {50, 25}, {25, 17.5},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, 2, 3})
	if len(got) != 3 || got[2] != 3.0 {
		t.Fatalf("Ints = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 1, 2, 3, 9.99, -5, 42}, 0, 10, 5)
	if len(h) != 5 {
		t.Fatalf("bins = %d", len(h))
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram lost values: %v", h)
	}
	if h[0] != 3 { // 0, 1, -5 (clamped)
		t.Fatalf("first bin = %d, want 3 (%v)", h[0], h)
	}
	if h[4] != 2 { // 9.99 and 42 (clamped)
		t.Fatalf("last bin = %d, want 2 (%v)", h[4], h)
	}
	if Histogram(nil, 0, 0, 5) != nil || Histogram(nil, 0, 10, 0) != nil {
		t.Error("degenerate ranges must yield nil")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("N", "height", "bound")
	tb.AddRow(100, 4, 6.64)
	tb.AddRow(10000, 7, 13.28)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "N") || !strings.Contains(lines[0], "height") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "6.640") {
		t.Fatalf("float formatting: %q", lines[2])
	}
	// Columns align: every line has the same separator positions.
	if len(lines[1]) < len("N") {
		t.Fatal("separator missing")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(1e9)
	tb.AddRow(1e-9)
	tb.AddRow(math.Inf(1))
	tb.AddRow(math.Inf(-1))
	tb.AddRow(0.0)
	out := tb.String()
	for _, want := range []string{"1.000e+09", "1.000e-09", "+inf", "-inf", "0.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		n := 1 + rng.IntN(200)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64() * 100
		}
		s := Summarize(sample)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
