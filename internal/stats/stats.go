// Package stats provides the descriptive statistics and fixed-width table
// rendering used by the benchmark harness to print paper-style result
// rows.
package stats

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of the sample (zero value for empty input).
func Summarize(sample []float64) Summary {
	var s Summary
	s.N = len(sample)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	slices.Sort(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample to float64 for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram builds a fixed-bin histogram over [lo, hi) and returns the
// counts; values outside the range clamp into the edge bins.
func Histogram(sample []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		return nil
	}
	out := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range sample {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}

// Table renders fixed-width result tables for the experiment harness.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: append([]string(nil), headers...)}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
