package state

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays s into a (snapshot, records) pair with copied data.
func collect(t *testing.T, s Store) (snap []byte, hasSnap bool, recs [][]byte) {
	t.Helper()
	err := s.Replay(func(e Entry) error {
		if e.Snapshot {
			if hasSnap || len(recs) > 0 {
				t.Fatalf("snapshot entry out of position")
			}
			hasSnap = true
			snap = append([]byte(nil), e.Data...)
			return nil
		}
		recs = append(recs, append([]byte(nil), e.Data...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return snap, hasSnap, recs
}

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%04d", i))
	}
	return recs
}

// storeVariants runs a subtest against both implementations. The reopen
// func models a process restart: for WAL it closes and reopens the
// directory, for Mem it returns the same store (Close is a no-op).
func storeVariants(t *testing.T, run func(t *testing.T, s Store, reopen func() Store)) {
	t.Run("mem", func(t *testing.T) {
		m := NewMem()
		run(t, m, func() Store { m.Close(); return m })
	})
	t.Run("wal", func(t *testing.T) {
		dir := t.TempDir()
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		var cur Store = w
		run(t, w, func() Store {
			cur.Close()
			nw, err := OpenWAL(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			cur = nw
			return nw
		})
	})
}

func TestAppendReplayRoundtrip(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, reopen func() Store) {
		want := testRecords(25)
		for _, r := range want {
			if err := s.Append(r); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		_, hasSnap, got := collect(t, s)
		if hasSnap {
			t.Fatalf("unexpected snapshot")
		}
		if len(got) != len(want) {
			t.Fatalf("got %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
			}
		}
		// Restart: the same history must replay.
		s2 := reopen()
		_, _, got2 := collect(t, s2)
		if len(got2) != len(want) {
			t.Fatalf("after reopen: %d records, want %d", len(got2), len(want))
		}
	})
}

func TestSnapshotCoversLog(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, reopen func() Store) {
		for _, r := range testRecords(10) {
			if err := s.Append(r); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := s.Snapshot([]byte("snap-state")); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		if err := s.Append([]byte("after-snap")); err != nil {
			t.Fatalf("Append: %v", err)
		}
		snap, hasSnap, recs := collect(t, s)
		if !hasSnap || string(snap) != "snap-state" {
			t.Fatalf("snapshot = %q (present %v)", snap, hasSnap)
		}
		if len(recs) != 1 || string(recs[0]) != "after-snap" {
			t.Fatalf("post-snapshot records = %q", recs)
		}
		// Compact drops the covered prefix but changes nothing visible.
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		snap, hasSnap, recs = collect(t, s)
		if !hasSnap || string(snap) != "snap-state" || len(recs) != 1 {
			t.Fatalf("after compact: snapshot %q (present %v), records %q", snap, hasSnap, recs)
		}
		// And the whole state survives a restart.
		s2 := reopen()
		snap, hasSnap, recs = collect(t, s2)
		if !hasSnap || string(snap) != "snap-state" || len(recs) != 1 || string(recs[0]) != "after-snap" {
			t.Fatalf("after reopen: snapshot %q (present %v), records %q", snap, hasSnap, recs)
		}
	})
}

func TestCompactWithoutSnapshotIsNoop(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, _ func() Store) {
		for _, r := range testRecords(5) {
			s.Append(r)
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		_, _, recs := collect(t, s)
		if len(recs) != 5 {
			t.Fatalf("compact without snapshot dropped records: %d left", len(recs))
		}
	})
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, _ func() Store) {
		for _, r := range testRecords(5) {
			s.Append(r)
		}
		boom := errors.New("boom")
		calls := 0
		err := s.Replay(func(Entry) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) || calls != 2 {
			t.Fatalf("err=%v calls=%d, want boom at call 2", err, calls)
		}
	})
}

func TestConcurrentAppends(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, reopen func() Store) {
		const writers, per = 8, 50
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					if err := s.Append([]byte(fmt.Sprintf("w%d-%d", id, j))); err != nil {
						t.Errorf("Append: %v", err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		_, _, recs := collect(t, reopen())
		if len(recs) != writers*per {
			t.Fatalf("replayed %d records, want %d", len(recs), writers*per)
		}
		// Per-writer order must be preserved even though writers interleave.
		next := make([]int, writers)
		for _, r := range recs {
			var id, j int
			if _, err := fmt.Sscanf(string(r), "w%d-%d", &id, &j); err != nil {
				t.Fatalf("bad record %q", r)
			}
			if j != next[id] {
				t.Fatalf("writer %d: got %d, want %d", id, j, next[id])
			}
			next[id]++
		}
	})
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	want := testRecords(10)
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	path := filepath.Join(dir, logName)
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, full []byte) []byte
	}{
		{"garbage-appended", func(_ *testing.T, full []byte) []byte {
			return append(append([]byte(nil), full...), 0xde, 0xad, 0xbe, 0xef)
		}},
		{"half-record", func(_ *testing.T, full []byte) []byte {
			// A record header claiming more bytes than exist: the
			// classic crash-mid-append shape.
			torn := append([]byte(nil), full...)
			torn = append(torn, 0, 0, 0, 40, recVersion, kindRecord)
			return torn
		}},
		{"bitflip-last-record", func(t *testing.T, full []byte) []byte {
			torn := append([]byte(nil), full...)
			torn[len(torn)-1] ^= 0x40 // corrupt the last record's body → CRC must catch it
			return torn
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read log: %v", err)
			}
			if err := os.WriteFile(path, tc.tear(t, full), 0o644); err != nil {
				t.Fatalf("write torn log: %v", err)
			}
			w2, err := OpenWAL(dir)
			if err != nil {
				t.Fatalf("OpenWAL on torn log: %v", err)
			}
			defer w2.Close()
			if w2.Stats().TornBytes == 0 {
				t.Fatalf("TornBytes = 0, want > 0")
			}
			_, _, recs := collect(t, w2)
			// Everything but (at most) the final record survives.
			if len(recs) < len(want)-1 {
				t.Fatalf("torn open kept %d records, want >= %d", len(recs), len(want)-1)
			}
			for i, r := range recs {
				if !bytes.Equal(r, want[i]) {
					t.Fatalf("record %d = %q, want %q", i, r, want[i])
				}
			}
			// The store must accept new appends after repair.
			if err := w2.Append([]byte("post-repair")); err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
			w2.Close()
			// Restore the intact log for the next case.
			if err := os.WriteFile(path, full, 0o644); err != nil {
				t.Fatalf("restore log: %v", err)
			}
		})
	}
}

func TestWALFutureFormatRefused(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Append([]byte("x"))
	w.Close()
	path := filepath.Join(dir, logName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	buf[len(walMagic)] = walFormat + 1
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenWAL(dir); !errors.Is(err, ErrFutureFormat) {
		t.Fatalf("OpenWAL on future format: %v, want ErrFutureFormat", err)
	}
}

func TestWALBadMagicRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenWAL(dir); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("OpenWAL on junk: %v, want ErrBadMagic", err)
	}
}

func TestWALClosedErrors(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Close()
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed: %v", err)
	}
	if err := w.Snapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot on closed: %v", err)
	}
	if err := w.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact on closed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestWALSnapshotSurvivesCrashMidInstall(t *testing.T) {
	// A leftover snapshot.tmp (crash between write and rename) must not
	// disturb the previous baseline.
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Append([]byte("r1"))
	if err := w.Snapshot([]byte("good")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, snapName+".tmp"), []byte("torn half-written snapsho"), 0o644); err != nil {
		t.Fatalf("write tmp: %v", err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	snap, hasSnap, _ := collect(t, w2)
	if !hasSnap || string(snap) != "good" {
		t.Fatalf("snapshot = %q (present %v), want %q", snap, hasSnap, "good")
	}
}

func TestWALCompactShrinksLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	for _, r := range testRecords(100) {
		w.Append(r)
	}
	before, _ := os.Stat(filepath.Join(dir, logName))
	if err := w.Snapshot([]byte("covered")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := w.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(filepath.Join(dir, logName))
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink log: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends after compaction land in the rewritten file.
	if err := w.Append([]byte("post-compact")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	snap, hasSnap, recs := collect(t, w)
	if !hasSnap || string(snap) != "covered" || len(recs) != 1 || string(recs[0]) != "post-compact" {
		t.Fatalf("after compact+append: snapshot %q (present %v), records %q", snap, hasSnap, recs)
	}
}

func TestWALEmptyDirThenReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Close()
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen empty: %v", err)
	}
	defer w2.Close()
	snap, hasSnap, recs := collect(t, w2)
	if hasSnap || len(snap) != 0 || len(recs) != 0 {
		t.Fatalf("empty store replayed something: snap=%q recs=%d", snap, len(recs))
	}
}

func TestStats(t *testing.T) {
	storeVariants(t, func(t *testing.T, s Store, _ func() Store) {
		st, ok := s.(Stater)
		if !ok {
			t.Fatalf("store does not implement Stater")
		}
		for i := 0; i < 4; i++ {
			s.Append([]byte{byte(i)})
		}
		if got := st.Stats(); got.Records != 4 || got.Appended != 4 || got.HasSnapshot {
			t.Fatalf("stats after appends: %+v", got)
		}
		s.Snapshot([]byte("s"))
		if got := st.Stats(); got.Records != 0 || !got.HasSnapshot || got.Snapshots != 1 {
			t.Fatalf("stats after snapshot: %+v", got)
		}
		s.Append([]byte("x"))
		s.Compact()
		if got := st.Stats(); got.Records != 1 || got.Compactions != 1 {
			t.Fatalf("stats after compact: %+v", got)
		}
	})
}

func TestRecordFrameRoundtrip(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)} {
		frame := appendRecordFrame(nil, kindRecord, 42, data)
		kind, seq, got, n, err := parseRecord(frame)
		if err != nil {
			t.Fatalf("parseRecord: %v", err)
		}
		if kind != kindRecord || seq != 42 || n != len(frame) || !bytes.Equal(got, data) {
			t.Fatalf("roundtrip kind=%#x seq=%d n=%d len=%d", kind, seq, n, len(frame))
		}
	}
}

func TestParseRecordRejectsOversizedLength(t *testing.T) {
	var hdr [lenSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxRecord+1024))
	if _, _, _, _, err := parseRecord(hdr[:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: %v, want ErrCorrupt", err)
	}
}
