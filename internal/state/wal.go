package state

// The file-backed Store: a directory holding an append-only log
// (wal.log) and at most one snapshot (snapshot.bin). Both files follow
// the internal/wire framing conventions — length-prefixed binary
// records, a version byte per record, bounds-checked decoding that
// never panics on corrupt input — plus a CRC-32C over each record so a
// torn or bit-flipped tail is detected and truncated on open rather
// than misparsed.
//
// File layout:
//
//	header  = magic "DRTSTATE" | format(1)
//	record  = len(4 BE) | version(1) | kind(1) | crc32c(4 BE) | seq(uvarint) | data
//
// where crc covers seq+data. wal.log is the header followed by data
// records with strictly increasing seq; snapshot.bin is the header
// followed by exactly one snapshot record whose seq is the highest log
// seq it covers and whose data is the state blob. Snapshots are
// written to a temp file, fsynced, and renamed into place, so a crash
// mid-snapshot leaves the previous baseline intact.
//
// Durability: Append returns only after the record is fsynced.
// Concurrent appenders share fsyncs through group commit — writers
// buffer their record into the file under the write lock, then join a
// sync cohort; one waiter issues the fsync that covers every record
// written before it started, and the rest observe the advanced
// synced-seq without touching the disk.
//
// Versioning: the header's format byte is the migration hook. Opening
// a directory written by an older format migrates it forward
// (migrate-on-open); a newer format is refused with a clear error so
// an old binary never scrambles a new log.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	walMagic  = "DRTSTATE"
	walFormat = byte(1) // current on-disk format; bump with a migration

	recVersion = byte(1)    // per-record version byte
	kindRecord = byte(0x01) // appended log record
	kindSnap   = byte(0x02) // snapshot baseline record

	logName  = "wal.log"
	snapName = "snapshot.bin"

	headerSize = len(walMagic) + 1
	lenSize    = 4

	// maxRecord bounds a single record's payload. Large enough for a
	// snapshot of millions of subscriptions, small enough that a
	// corrupt length prefix cannot trigger a giant allocation.
	maxRecord = 1 << 26
)

// WAL open/decode errors.
var (
	ErrBadMagic     = errors.New("state: not a DR-tree state directory")
	ErrFutureFormat = errors.New("state: log written by a newer format")
	ErrCorrupt      = errors.New("state: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is the file-backed Store. Open one with OpenWAL.
type WAL struct {
	dir string

	mu      sync.Mutex // guards log writes and all fields below
	log     *os.File   // wal.log, positioned at its end
	nextSeq uint64     // seq of the next appended record
	written uint64     // highest seq written to the OS (not yet durable)
	snapSeq uint64     // highest seq covered by snapshot.bin
	hasSnap bool
	live    int // records in wal.log with seq > snapSeq
	closed  bool
	stats   Stats

	syncMu   sync.Mutex // guards the group-commit cohort
	syncCond *sync.Cond
	syncing  bool
	synced   uint64 // highest seq known durable
}

// OpenWAL opens (creating if needed) the store rooted at dir. A torn
// final record — the signature of a crash mid-append — is truncated
// away; any other corruption is an error.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: open %s: %w", dir, err)
	}
	w := &WAL{dir: dir}
	w.syncCond = sync.NewCond(&w.syncMu)
	if err := w.openSnapshot(); err != nil {
		return nil, err
	}
	if err := w.openLog(); err != nil {
		return nil, err
	}
	return w, nil
}

// openSnapshot loads snapshot metadata (covered seq) if a snapshot
// exists. The blob itself is re-read lazily by Replay.
func (w *WAL) openSnapshot() error {
	seq, _, err := readSnapshotFile(filepath.Join(w.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	w.snapSeq = seq
	w.hasSnap = true
	w.nextSeq = seq + 1
	return nil
}

// openLog validates wal.log's header, scans the valid record prefix,
// truncates any torn tail, and leaves the file positioned for appends.
func (w *WAL) openLog() error {
	path := filepath.Join(w.dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("state: open log: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("state: stat log: %w", err)
	}
	if info.Size() == 0 {
		// Fresh log: write the header and fsync it so the directory is
		// recognizable from the first record on.
		hdr := append([]byte(walMagic), walFormat)
		if _, err := f.Write(hdr); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("state: init log: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
		w.log = f
		if w.nextSeq == 0 {
			w.nextSeq = 1
		}
		return nil
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("state: read log: %w", err)
	}
	if err := checkHeader(buf); err != nil {
		f.Close()
		return fmt.Errorf("%w (%s)", err, path)
	}
	// Scan the valid prefix. Every well-formed record advances validEnd;
	// the first torn/corrupt one ends the scan and is truncated away.
	// Seqs must be strictly increasing but may start below snapSeq: a
	// snapshot taken without a Compact leaves covered records in place.
	validEnd := headerSize
	lastSeq := uint64(0)
	live := 0
	for validEnd < len(buf) {
		kind, seq, _, n, err := parseRecord(buf[validEnd:])
		if err != nil || kind != kindRecord || seq <= lastSeq {
			break
		}
		lastSeq = seq
		if seq > w.snapSeq {
			live++
		}
		validEnd += n
	}
	if torn := int64(len(buf) - validEnd); torn > 0 {
		w.stats.TornBytes = torn
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return fmt.Errorf("state: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("state: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(int64(validEnd), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("state: seek log end: %w", err)
	}
	w.log = f
	w.live = live
	if lastSeq >= w.nextSeq {
		w.nextSeq = lastSeq + 1
	}
	if w.nextSeq == 0 {
		w.nextSeq = 1
	}
	w.synced = w.nextSeq - 1
	w.written = w.nextSeq - 1
	return nil
}

// Append durably adds one record: written under the lock, made durable
// by a (possibly shared) fsync before returning.
func (w *WAL) Append(rec []byte) error {
	if len(rec) > maxRecord {
		return fmt.Errorf("state: record %d bytes exceeds max %d", len(rec), maxRecord)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	seq := w.nextSeq
	frame := appendRecordFrame(nil, kindRecord, seq, rec)
	if _, err := w.log.Write(frame); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("state: append: %w", err)
	}
	w.nextSeq++
	w.written = seq
	w.live++
	w.stats.Appended++
	w.mu.Unlock()
	return w.syncTo(seq)
}

// syncTo blocks until every record up to seq is durable, issuing at
// most one fsync per cohort of concurrent appenders.
func (w *WAL) syncTo(seq uint64) error {
	w.syncMu.Lock()
	for {
		if w.synced >= seq {
			w.syncMu.Unlock()
			return nil
		}
		if !w.syncing {
			break
		}
		w.syncCond.Wait()
	}
	w.syncing = true
	w.syncMu.Unlock()

	w.mu.Lock()
	target := w.written
	f := w.log
	closed := w.closed
	w.mu.Unlock()
	var err error
	if closed {
		err = ErrClosed
	} else {
		err = f.Sync()
	}

	w.syncMu.Lock()
	w.syncing = false
	if err == nil && target > w.synced {
		w.synced = target
	}
	durable := w.synced >= seq
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	if err != nil {
		// A concurrent Compact may have swapped and closed the handle
		// under this Sync; its rewrite already made the record durable,
		// which the advanced frontier records.
		if durable {
			return nil
		}
		return fmt.Errorf("state: fsync: %w", err)
	}
	return nil
}

// Snapshot atomically replaces the recovery baseline: the blob is
// written to a temp file, fsynced, and renamed over snapshot.bin. A
// crash at any point leaves either the old or the new baseline, never
// a torn one.
func (w *WAL) Snapshot(stateBlob []byte) error {
	if len(stateBlob) > maxRecord {
		return fmt.Errorf("state: snapshot %d bytes exceeds max %d", len(stateBlob), maxRecord)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	covered := w.nextSeq - 1 // every record appended so far
	w.mu.Unlock()

	path := filepath.Join(w.dir, snapName)
	tmp := path + ".tmp"
	buf := append([]byte(walMagic), walFormat)
	buf = appendRecordFrame(buf, kindSnap, covered, stateBlob)
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("state: install snapshot: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}

	w.mu.Lock()
	if covered > w.snapSeq {
		w.snapSeq = covered
		// Records written between capturing `covered` and here stay live.
		w.live = int(w.written - covered)
	}
	w.hasSnap = true
	w.stats.Snapshots++
	w.mu.Unlock()
	return nil
}

// Replay streams the snapshot (if any) followed by every log record it
// does not cover, in append order. Must not run concurrently with
// Append/Snapshot/Compact.
func (w *WAL) Replay(fn func(Entry) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	snapSeq, hasSnap := w.snapSeq, w.hasSnap
	w.mu.Unlock()

	if hasSnap {
		_, blob, err := readSnapshotFile(filepath.Join(w.dir, snapName))
		if err != nil {
			return err
		}
		if err := fn(Entry{Snapshot: true, Data: blob}); err != nil {
			return err
		}
	}
	return scanLog(filepath.Join(w.dir, logName), snapSeq, func(_ uint64, data []byte) error {
		return fn(Entry{Data: data})
	})
}

// Compact rewrites wal.log keeping only records the snapshot does not
// cover. Must not run concurrently with Append.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if !w.hasSnap {
		return nil
	}
	path := filepath.Join(w.dir, logName)
	buf := append([]byte(walMagic), walFormat)
	keep := 0
	err := scanLog(path, w.snapSeq, func(seq uint64, data []byte) error {
		buf = appendRecordFrame(buf, kindRecord, seq, data)
		keep++
		return nil
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("state: install compacted log: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("state: reopen compacted log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("state: seek compacted log: %w", err)
	}
	w.log.Close()
	w.log = f
	w.live = keep
	w.stats.Compactions++
	// Everything in the rewritten file was fsynced by writeFileSync, so
	// every written record is durable: advance the group-commit frontier
	// and wake any appender whose fsync raced the handle swap (its Sync
	// on the closed old handle fails; the advanced frontier tells it the
	// record is durable anyway — see syncTo).
	w.syncMu.Lock()
	if w.written > w.synced {
		w.synced = w.written
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}

// Close fsyncs and closes the log. Further operations fail ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.log.Sync()
	if cerr := w.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats reports the store's current shape.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Records = w.live
	s.HasSnapshot = w.hasSnap
	return s
}

// Dir returns the directory backing this store.
func (w *WAL) Dir() string { return w.dir }

// --- record framing ---------------------------------------------------

// appendRecordFrame appends one framed record to dst:
// len(4 BE) | version | kind | crc32c(4 BE) | seq(uvarint) | data.
func appendRecordFrame(dst []byte, kind byte, seq uint64, data []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backfilled
	dst = append(dst, recVersion, kind, 0, 0, 0, 0)
	crcOff := start + lenSize + 2
	body := len(dst)
	dst = binary.AppendUvarint(dst, seq)
	dst = append(dst, data...)
	crc := crc32.Checksum(dst[body:], crcTable)
	binary.BigEndian.PutUint32(dst[crcOff:], crc)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-lenSize))
	return dst
}

// parseRecord decodes one framed record from the front of buf,
// returning the total bytes consumed. Any malformation — short prefix,
// oversized or truncated length, unknown version, CRC mismatch, bad
// seq varint — returns ErrCorrupt-wrapped errors and never panics.
func parseRecord(buf []byte) (kind byte, seq uint64, data []byte, n int, err error) {
	if len(buf) < lenSize {
		return 0, 0, nil, 0, fmt.Errorf("%w: short length prefix", ErrCorrupt)
	}
	plen := binary.BigEndian.Uint32(buf)
	if plen > maxRecord+16 {
		return 0, 0, nil, 0, fmt.Errorf("%w: declared %d bytes", ErrCorrupt, plen)
	}
	if uint64(len(buf)-lenSize) < uint64(plen) {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	p := buf[lenSize : lenSize+int(plen)]
	if len(p) < 6 {
		return 0, 0, nil, 0, fmt.Errorf("%w: record shorter than header", ErrCorrupt)
	}
	if p[0] != recVersion {
		return 0, 0, nil, 0, fmt.Errorf("%w: record version %#x", ErrCorrupt, p[0])
	}
	kind = p[1]
	if kind != kindRecord && kind != kindSnap {
		return 0, 0, nil, 0, fmt.Errorf("%w: record kind %#x", ErrCorrupt, kind)
	}
	crc := binary.BigEndian.Uint32(p[2:])
	body := p[6:]
	if crc32.Checksum(body, crcTable) != crc {
		return 0, 0, nil, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	seq, vn := binary.Uvarint(body)
	if vn <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: bad seq varint", ErrCorrupt)
	}
	if seq >= 1<<62 {
		// No legitimate store approaches seq 2^62; such a value is
		// corruption, and rejecting it keeps seq+1 arithmetic
		// overflow-free everywhere else. (Seq 0 stays valid: a snapshot
		// taken before any append covers nothing and records seq 0.)
		return 0, 0, nil, 0, fmt.Errorf("%w: seq %d out of range", ErrCorrupt, seq)
	}
	return kind, seq, body[vn:], lenSize + int(plen), nil
}

// checkHeader validates a file's magic and format byte, applying
// migrations for older formats (none exist yet at format 1).
func checkHeader(buf []byte) error {
	if len(buf) < headerSize || string(buf[:len(walMagic)]) != walMagic {
		return ErrBadMagic
	}
	format := buf[len(walMagic)]
	switch {
	case format == walFormat:
		return nil
	case format > walFormat:
		return fmt.Errorf("%w: format %d, this build reads up to %d", ErrFutureFormat, format, walFormat)
	default:
		// Migration hook: formats below the current one are upgraded
		// here as the on-disk layout evolves. Format 1 is the first.
		return fmt.Errorf("%w: unsupported historic format %d", ErrBadMagic, format)
	}
}

// scanLog streams every valid record with seq > after from the log at
// path. The scan stops silently at the first torn record (matching the
// open-time truncation rule) so a reader racing a crashed writer never
// misparses the tail.
func scanLog(path string, after uint64, fn func(seq uint64, data []byte) error) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("state: read log: %w", err)
	}
	if err := checkHeader(buf); err != nil {
		return fmt.Errorf("%w (%s)", err, path)
	}
	off := headerSize
	last := uint64(0)
	for off < len(buf) {
		kind, seq, data, n, err := parseRecord(buf[off:])
		if err != nil || kind != kindRecord || seq <= last {
			return nil // torn tail: everything beyond is discarded
		}
		last = seq
		off += n
		if seq <= after {
			continue
		}
		if err := fn(seq, data); err != nil {
			return err
		}
	}
	return nil
}

// readSnapshotFile reads and validates snapshot.bin, returning the
// covered seq and the state blob.
func readSnapshotFile(path string) (uint64, []byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if err := checkHeader(buf); err != nil {
		return 0, nil, fmt.Errorf("%w (%s)", err, path)
	}
	kind, seq, data, n, err := parseRecord(buf[headerSize:])
	if err != nil {
		return 0, nil, fmt.Errorf("state: snapshot: %w", err)
	}
	if kind != kindSnap {
		return 0, nil, fmt.Errorf("%w: snapshot holds kind %#x", ErrCorrupt, kind)
	}
	if headerSize+n != len(buf) {
		return 0, nil, fmt.Errorf("%w: trailing bytes after snapshot record", ErrCorrupt)
	}
	return seq, data, nil
}

// writeFileSync writes buf to path and fsyncs it before returning.
func writeFileSync(path string, buf []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("state: write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("state: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creations within it are
// durable. Sync refusals are tolerated — some filesystems reject
// directory fsync, and the renamed file's own fsync already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("state: open dir: %w", err)
	}
	d.Sync()
	return d.Close()
}
