package state

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the WAL open/replay path as the
// log file's contents. Whatever the bytes, opening must never panic;
// when the input is a valid log prefix (possibly with a torn tail) the
// replay must be deterministic: replaying twice — and replaying after a
// close/reopen cycle — yields byte-identical histories.
func FuzzReplay(f *testing.F) {
	// Seed with real log shapes: empty, header-only, a few records, a
	// record with a torn tail, and plain garbage.
	f.Add([]byte{})
	f.Add(append([]byte(walMagic), walFormat))
	valid := append([]byte(walMagic), walFormat)
	valid = appendRecordFrame(valid, kindRecord, 1, []byte("alpha"))
	valid = appendRecordFrame(valid, kindRecord, 2, []byte("beta"))
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), 0, 0, 0, 40, recVersion))
	f.Add([]byte("DRTSTATEgarbage that only starts like a log"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), raw, 0o644); err != nil {
			t.Skip()
		}
		w, err := OpenWAL(dir)
		if err != nil {
			return // rejected cleanly: bad magic / future format
		}
		var first [][]byte
		if err := w.Replay(func(e Entry) error {
			first = append(first, append([]byte(nil), e.Data...))
			return nil
		}); err != nil {
			t.Fatalf("Replay after successful open: %v", err)
		}
		var second [][]byte
		if err := w.Replay(func(e Entry) error {
			second = append(second, append([]byte(nil), e.Data...))
			return nil
		}); err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("replay not deterministic: %d vs %d records", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("replay not deterministic at record %d", i)
			}
		}
		// The opened store must be writable regardless of input shape.
		if err := w.Append([]byte("probe")); err != nil {
			t.Fatalf("Append after open: %v", err)
		}
		w.Close()
		// Reopen replays the same prefix plus the probe record.
		w2, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer w2.Close()
		var third [][]byte
		if err := w2.Replay(func(e Entry) error {
			third = append(third, append([]byte(nil), e.Data...))
			return nil
		}); err != nil {
			t.Fatalf("Replay after reopen: %v", err)
		}
		if len(third) != len(first)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(third), len(first)+1)
		}
		for i := range first {
			if !bytes.Equal(third[i], first[i]) {
				t.Fatalf("reopen diverged at record %d", i)
			}
		}
		if string(third[len(third)-1]) != "probe" {
			t.Fatalf("probe record lost: %q", third[len(third)-1])
		}
	})
}
