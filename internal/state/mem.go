package state

import "sync"

// Mem is the pure in-memory Store: engines and most tests journal into
// it without touching the filesystem. It models the disk, not the
// process — Close is deliberately a no-op, so a "restarted" component
// can keep using the same Mem and Replay what the previous incarnation
// wrote, exactly as a new process would reopen the same directory.
type Mem struct {
	mu      sync.Mutex
	snap    []byte
	hasSnap bool
	recs    [][]byte
	covered int // recs[:covered] are included in snap
	stats   Stats
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append adds one record. The slice is copied; the caller may reuse it.
func (m *Mem) Append(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, append([]byte(nil), rec...))
	m.stats.Appended++
	return nil
}

// Snapshot replaces the recovery baseline with a copy of state. All
// records appended so far become covered (dropped by the next Compact,
// skipped by Replay).
func (m *Mem) Snapshot(state []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = append([]byte(nil), state...)
	m.hasSnap = true
	m.covered = len(m.recs)
	m.stats.Snapshots++
	return nil
}

// Replay streams the snapshot (if any) and the uncovered records.
func (m *Mem) Replay(fn func(Entry) error) error {
	m.mu.Lock()
	snap, hasSnap := m.snap, m.hasSnap
	recs := m.recs[m.covered:]
	m.mu.Unlock()
	if hasSnap {
		if err := fn(Entry{Snapshot: true, Data: snap}); err != nil {
			return err
		}
	}
	for _, rec := range recs {
		if err := fn(Entry{Data: rec}); err != nil {
			return err
		}
	}
	return nil
}

// Compact drops records covered by the latest snapshot.
func (m *Mem) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.covered == 0 {
		return nil
	}
	m.recs = append([][]byte(nil), m.recs[m.covered:]...)
	m.covered = 0
	m.stats.Compactions++
	return nil
}

// Close is a no-op: Mem models the durable medium, which outlives the
// component that wrote it.
func (m *Mem) Close() error { return nil }

// Stats reports the store's current shape.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Records = len(m.recs) - m.covered
	s.HasSnapshot = m.hasSnap
	return s
}
