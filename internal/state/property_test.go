package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestSnapshotSuffixEquivalence is the store's core correctness
// property: for any interleaving of appends, snapshots, and compacts,
// replaying (snapshot + suffix) must reconstruct exactly the state that
// replaying the full uncompacted log would have. The reference model is
// a plain slice of every record ever appended plus the index at which
// the last snapshot was cut; the store under test is driven through a
// random op sequence and checked after every snapshot-affecting op and
// after a reopen.
func TestSnapshotSuffixEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			w, err := OpenWAL(dir)
			if err != nil {
				t.Fatalf("OpenWAL: %v", err)
			}
			var cur Store = w
			mem := NewMem()

			// Reference model: full append history + snapshot cut point.
			var all [][]byte
			cut := -1 // index of last record covered by the snapshot
			snapped := false
			var snapState []byte

			check := func(label string) {
				t.Helper()
				for name, s := range map[string]Store{"wal": cur, "mem": mem} {
					snap, hasSnap, recs := collect(t, s)
					if hasSnap != snapped {
						t.Fatalf("%s/%s: hasSnap=%v want %v", label, name, hasSnap, snapped)
					}
					if snapped && !bytes.Equal(snap, snapState) {
						t.Fatalf("%s/%s: snapshot %q want %q", label, name, snap, snapState)
					}
					want := all[cut+1:]
					if len(recs) != len(want) {
						t.Fatalf("%s/%s: %d suffix records, want %d", label, name, len(recs), len(want))
					}
					for i := range want {
						if !bytes.Equal(recs[i], want[i]) {
							t.Fatalf("%s/%s: suffix record %d = %q want %q", label, name, i, recs[i], want[i])
						}
					}
				}
			}

			for op := 0; op < 200; op++ {
				switch r := rng.Intn(10); {
				case r < 6: // append
					rec := []byte(fmt.Sprintf("r%03d-%x", len(all), rng.Uint32()))
					if err := cur.Append(rec); err != nil {
						t.Fatalf("wal Append: %v", err)
					}
					if err := mem.Append(rec); err != nil {
						t.Fatalf("mem Append: %v", err)
					}
					all = append(all, rec)
				case r < 8: // snapshot: state summarizes the full history so far
					snapState = []byte(fmt.Sprintf("state-after-%d", len(all)))
					if err := cur.Snapshot(snapState); err != nil {
						t.Fatalf("wal Snapshot: %v", err)
					}
					if err := mem.Snapshot(snapState); err != nil {
						t.Fatalf("mem Snapshot: %v", err)
					}
					cut = len(all) - 1
					snapped = true
					check("snapshot")
				case r < 9: // compact
					if err := cur.Compact(); err != nil {
						t.Fatalf("wal Compact: %v", err)
					}
					if err := mem.Compact(); err != nil {
						t.Fatalf("mem Compact: %v", err)
					}
					check("compact")
				default: // crash/restart the WAL
					cur.Close()
					nw, err := OpenWAL(dir)
					if err != nil {
						t.Fatalf("reopen: %v", err)
					}
					cur = nw
					check("reopen")
				}
			}
			check("final")
			cur.Close()
		})
	}
}
