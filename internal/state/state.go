// Package state is the durable control plane of the DR-tree system: an
// append-only write-ahead log with periodic snapshots, behind the
// deliberately narrow Store interface. The overlay itself self-repairs
// after crashes (the paper's whole point), but everything above it —
// which subscriber holds which filter, which gateway carries which
// MBR-union — was amnesiac: a daemon restart lost every subscription
// and triggered a resubscribe storm. Store fixes that layer.
//
// The interface deals in opaque byte records on purpose. The schema of
// what is logged (subscription ops, gateway unions) belongs to the
// layer that owns the state (internal/pubsub); the store owns only
// durability, ordering, and compaction. Keeping the seam this narrow —
// Append, Snapshot, Replay, Compact — means SQLite, a replicated log,
// or an object store can slot in later without the engines or the
// broker noticing.
//
// Two implementations ship: WAL (file-backed, internal/wire-style
// length-prefixed binary records with a version byte and a CRC each,
// group-commit fsync batching, torn-tail truncation on open, versioned
// migration-on-open) and Mem (pure in-memory, so engines and most
// tests never touch the filesystem).
package state

import "errors"

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("state: store closed")

// Entry is one element of the recovery stream: either the snapshot
// baseline (at most one, always first) or an appended record.
type Entry struct {
	// Snapshot marks the baseline entry: Data is the state blob passed
	// to Store.Snapshot, and every following entry is a record appended
	// after that snapshot was taken.
	Snapshot bool
	// Data is the record (or snapshot) payload, exactly as given to
	// Append (or Snapshot). Valid only for the duration of the Replay
	// callback; copy it to retain it.
	Data []byte
}

// Store is the narrow durability seam. Implementations must make
// Append/Snapshot atomic and ordered with respect to each other;
// Replay must observe a prefix-consistent history: the latest durable
// snapshot (if any) followed by every record appended after it, in
// append order, and nothing else.
//
// Append, Snapshot and Compact are safe for concurrent use. Replay
// must not run concurrently with writes (callers replay once, on
// startup, before accepting operations).
type Store interface {
	// Append durably adds one record to the log. When Append returns
	// nil the record survives a crash.
	Append(rec []byte) error
	// Snapshot durably replaces the recovery baseline: a subsequent
	// Replay yields state first, then only the records appended after
	// this call. The log itself is not trimmed — call Compact for that.
	Snapshot(state []byte) error
	// Replay streams the recovery sequence into fn, stopping early on
	// the first error, which it returns.
	Replay(fn func(Entry) error) error
	// Compact discards log records already covered by the latest
	// snapshot. A no-op when there is no snapshot.
	Compact() error
	// Close releases the store's resources. For the file-backed store
	// further writes fail with ErrClosed; Mem stays replayable (it
	// models the disk, which outlives the process).
	Close() error
}

// Stats describes a store's current shape (observability and tests).
type Stats struct {
	// Records is the number of log records a Replay would yield after
	// the snapshot baseline.
	Records int
	// HasSnapshot reports whether a durable snapshot baseline exists.
	HasSnapshot bool
	// Appended counts Append calls accepted over this store's lifetime
	// (this process only, for WAL).
	Appended uint64
	// Snapshots counts Snapshot calls accepted.
	Snapshots uint64
	// Compactions counts Compact calls that trimmed the log.
	Compactions uint64
	// TornBytes is the number of trailing bytes discarded on open
	// because the final record was torn by a crash (WAL only).
	TornBytes int64
}

// A Stater reports store statistics; both built-in stores implement it.
type Stater interface {
	Stats() Stats
}
