package containment

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

// naiveOracle recomputes every relation of the containment graph by the
// O(n²)/O(n³) definitions, with no sharing with the Graph implementation:
// strict containment straight off the rectangles, direct edges by the
// transitive-reduction definition, equivalence by rectangle equality,
// roots as items with no strict container.
type naiveOracle struct {
	items []Item
}

func (o naiveOracle) strict(i, j int) bool {
	return o.items[i].Rect.StrictlyContains(o.items[j].Rect) &&
		!o.items[i].Rect.Equal(o.items[j].Rect)
}

func (o naiveOracle) direct(i, j int) bool {
	if !o.strict(i, j) {
		return false
	}
	for k := range o.items {
		if k != i && k != j && o.strict(i, k) && o.strict(k, j) {
			return false
		}
	}
	return true
}

func (o naiveOracle) equivalents(i int) []string {
	var out []string
	for j := range o.items {
		if j != i && o.items[i].Rect.Equal(o.items[j].Rect) {
			out = append(out, o.items[j].Label)
		}
	}
	slices.Sort(out)
	return out
}

func (o naiveOracle) children(i int) []string {
	var out []string
	for j := range o.items {
		if o.direct(i, j) {
			out = append(out, o.items[j].Label)
		}
	}
	slices.Sort(out)
	return out
}

func (o naiveOracle) parents(i int) []string {
	var out []string
	for j := range o.items {
		if o.direct(j, i) {
			out = append(out, o.items[j].Label)
		}
	}
	slices.Sort(out)
	return out
}

func (o naiveOracle) roots() []string {
	var out []string
	for i := range o.items {
		top := true
		for j := range o.items {
			if j != i && o.strict(j, i) {
				top = false
				break
			}
		}
		if top {
			out = append(out, o.items[i].Label)
		}
	}
	slices.Sort(out)
	return out
}

func (o naiveOracle) ancestors(i int) []string {
	var out []string
	for j := range o.items {
		if o.strict(j, i) {
			out = append(out, o.items[j].Label)
		}
	}
	slices.Sort(out)
	return out
}

func (o naiveOracle) descendants(i int) []string {
	var out []string
	for j := range o.items {
		if o.strict(i, j) {
			out = append(out, o.items[j].Label)
		}
	}
	slices.Sort(out)
	return out
}

// randomItems generates a rectangle set biased toward interesting
// structure: nested rectangles, exact duplicates (equivalents), and
// degenerate (zero-extent) rectangles — the shapes the gateway layer
// feeds the graph from real subscription workloads.
func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("r%d", i)
		switch {
		case i > 0 && rng.IntN(5) == 0:
			// Exact duplicate of an earlier rectangle (equivalence class).
			items = append(items, Item{Label: label, Rect: items[rng.IntN(i)].Rect})
		case i > 0 && rng.IntN(3) == 0:
			// Strictly nested inside an earlier rectangle.
			base := items[rng.IntN(i)].Rect
			w, h := base.Side(0), base.Side(1)
			x := base.Lo(0) + rng.Float64()*w/2
			y := base.Lo(1) + rng.Float64()*h/2
			items = append(items, Item{Label: label,
				Rect: geom.R2(x, y, x+rng.Float64()*(base.Hi(0)-x), y+rng.Float64()*(base.Hi(1)-y))})
		case rng.IntN(8) == 0:
			// Degenerate: a point or a zero-height segment.
			x, y := rng.Float64()*100, rng.Float64()*100
			if rng.IntN(2) == 0 {
				items = append(items, Item{Label: label, Rect: geom.R2(x, y, x, y)})
			} else {
				items = append(items, Item{Label: label, Rect: geom.R2(x, y, x+rng.Float64()*20, y)})
			}
		default:
			x, y := rng.Float64()*100, rng.Float64()*100
			items = append(items, Item{Label: label,
				Rect: geom.R2(x, y, x+rng.Float64()*40, y+rng.Float64()*40)})
		}
	}
	return items
}

// TestPropertyGraphMatchesNaiveOracle checks every Graph relation —
// Contains, Children, Parents, Equivalents, Roots, Ancestors,
// Descendants, Edges — against the naive oracle on random rectangle
// sets including equivalents and degenerate rectangles. The final
// root-union check pins the identity the broker's gateway layer relies
// on when shrinking an aggregate filter: the union of the containment
// order's maximal elements equals the union of every rectangle.
func TestPropertyGraphMatchesNaiveOracle(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC0DE))
		items := randomItems(rng, 3+rng.IntN(28))
		g, err := Build(items)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		o := naiveOracle{items: items}
		for i, it := range items {
			if !slices.Equal(g.Children(it.Label), o.children(i)) {
				t.Logf("seed %d: children of %s: %v vs oracle %v", seed, it.Label, g.Children(it.Label), o.children(i))
				return false
			}
			if !slices.Equal(g.Parents(it.Label), o.parents(i)) {
				t.Logf("seed %d: parents of %s differ", seed, it.Label)
				return false
			}
			if !slices.Equal(g.Equivalents(it.Label), o.equivalents(i)) {
				t.Logf("seed %d: equivalents of %s differ", seed, it.Label)
				return false
			}
			if !slices.Equal(g.Ancestors(it.Label), o.ancestors(i)) {
				t.Logf("seed %d: ancestors of %s: %v vs oracle %v", seed, it.Label, g.Ancestors(it.Label), o.ancestors(i))
				return false
			}
			if !slices.Equal(g.Descendants(it.Label), o.descendants(i)) {
				t.Logf("seed %d: descendants of %s differ", seed, it.Label)
				return false
			}
			for j, jt := range items {
				if g.Contains(it.Label, jt.Label) != o.strict(i, j) {
					t.Logf("seed %d: Contains(%s,%s) disagrees with oracle", seed, it.Label, jt.Label)
					return false
				}
			}
		}
		if !slices.Equal(g.Roots(), o.roots()) {
			t.Logf("seed %d: roots %v vs oracle %v", seed, g.Roots(), o.roots())
			return false
		}
		// Edges must be exactly the direct pairs.
		var wantEdges [][2]string
		for i := range items {
			for j := range items {
				if o.direct(i, j) {
					wantEdges = append(wantEdges, [2]string{items[i].Label, items[j].Label})
				}
			}
		}
		slices.SortFunc(wantEdges, func(a, b [2]string) int {
			if a[0] != b[0] {
				if a[0] < b[0] {
					return -1
				}
				return 1
			}
			if a[1] < b[1] {
				return -1
			}
			if a[1] > b[1] {
				return 1
			}
			return 0
		})
		got := g.Edges()
		if len(got) != len(wantEdges) {
			t.Logf("seed %d: %d edges vs oracle %d", seed, len(got), len(wantEdges))
			return false
		}
		for k := range got {
			if got[k] != wantEdges[k] {
				t.Logf("seed %d: edge %d: %v vs %v", seed, k, got[k], wantEdges[k])
				return false
			}
		}
		// The gateway invariant: the union of the roots equals the union
		// of every rectangle.
		var all, roots geom.Rect
		for _, it := range items {
			all = all.Union(it.Rect)
		}
		for _, label := range g.Roots() {
			if i, ok := g.IndexOf(label); ok {
				roots = roots.Union(g.Item(i).Rect)
			}
		}
		if !all.Equal(roots) {
			t.Logf("seed %d: root union %v != full union %v", seed, roots, all)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
