// Package containment builds the subscription containment graph of the
// paper's Figure 1 (right): the partial order induced by spatial enclosure
// of subscription rectangles, reduced to direct (transitively irreducible)
// edges.
//
// The graph is used to evaluate the DR-tree's containment awareness
// properties (Properties 3.1 and 3.2) and as the substrate of the direct
// containment-tree baseline ([11] in the paper).
package containment

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"drtree/internal/geom"
)

// Item is one labeled subscription rectangle.
type Item struct {
	Label string
	Rect  geom.Rect
}

// Graph is the containment DAG over a fixed set of items. Edges point
// from container to directly-contained subscription (no transitive
// shortcuts). Items with equal rectangles are recorded as equivalent and
// share the same position in the order.
type Graph struct {
	items    []Item
	index    map[string]int
	children [][]int // direct containees, by item index
	parents  [][]int // direct containers, by item index
	equal    [][]int // items with identical rectangles (excluding self)
}

// Build constructs the containment graph. Labels must be unique and
// rectangles non-empty.
func Build(items []Item) (*Graph, error) {
	g := &Graph{
		items:    make([]Item, len(items)),
		index:    make(map[string]int, len(items)),
		children: make([][]int, len(items)),
		parents:  make([][]int, len(items)),
		equal:    make([][]int, len(items)),
	}
	copy(g.items, items)
	for i, it := range g.items {
		if it.Rect.IsEmpty() {
			return nil, fmt.Errorf("containment: item %q has an empty rectangle", it.Label)
		}
		if _, dup := g.index[it.Label]; dup {
			return nil, fmt.Errorf("containment: duplicate label %q", it.Label)
		}
		g.index[it.Label] = i
	}
	n := len(g.items)
	// strict[i][j] == true iff rect_i strictly contains rect_j.
	strict := make([][]bool, n)
	for i := range strict {
		strict[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ri, rj := g.items[i].Rect, g.items[j].Rect
			switch {
			case ri.Equal(rj):
				if i < j {
					g.equal[i] = append(g.equal[i], j)
					g.equal[j] = append(g.equal[j], i)
				}
			case ri.Contains(rj):
				strict[i][j] = true
			}
		}
	}
	// Transitive reduction: edge i->j is direct iff no k with
	// strict[i][k] && strict[k][j].
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !strict[i][j] {
				continue
			}
			direct := true
			for k := 0; k < n && direct; k++ {
				if k != i && k != j && strict[i][k] && strict[k][j] {
					direct = false
				}
			}
			if direct {
				g.children[i] = append(g.children[i], j)
				g.parents[j] = append(g.parents[j], i)
			}
		}
	}
	return g, nil
}

// Len returns the number of items.
func (g *Graph) Len() int { return len(g.items) }

// Item returns the item at index i.
func (g *Graph) Item(i int) Item { return g.items[i] }

// IndexOf returns the index of the item labeled label.
func (g *Graph) IndexOf(label string) (int, bool) {
	i, ok := g.index[label]
	return i, ok
}

// Contains reports whether the item labeled a strictly contains the item
// labeled b (possibly transitively).
func (g *Graph) Contains(a, b string) bool {
	ia, ok := g.index[a]
	if !ok {
		return false
	}
	ib, ok := g.index[b]
	if !ok {
		return false
	}
	if ia == ib {
		return false
	}
	return g.items[ia].Rect.StrictlyContains(g.items[ib].Rect)
}

// Children returns the labels of the direct containees of label, sorted.
func (g *Graph) Children(label string) []string {
	i, ok := g.index[label]
	if !ok {
		return nil
	}
	return g.labelsOf(g.children[i])
}

// Parents returns the labels of the direct containers of label, sorted.
func (g *Graph) Parents(label string) []string {
	i, ok := g.index[label]
	if !ok {
		return nil
	}
	return g.labelsOf(g.parents[i])
}

// Equivalents returns the labels of items whose rectangle equals label's.
func (g *Graph) Equivalents(label string) []string {
	i, ok := g.index[label]
	if !ok {
		return nil
	}
	return g.labelsOf(g.equal[i])
}

// Roots returns the labels of items not contained in any other item,
// sorted. These are the maximal elements of the partial order.
func (g *Graph) Roots() []string {
	var idx []int
	for i := range g.items {
		if len(g.parents[i]) == 0 {
			idx = append(idx, i)
		}
	}
	return g.labelsOf(idx)
}

// Ancestors returns every (transitive) container of label, sorted.
func (g *Graph) Ancestors(label string) []string {
	i, ok := g.index[label]
	if !ok {
		return nil
	}
	seen := make(map[int]bool)
	var walk func(int)
	walk = func(j int) {
		for _, p := range g.parents[j] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(i)
	return g.labelsOf(setToSlice(seen))
}

// Descendants returns every (transitive) containee of label, sorted.
func (g *Graph) Descendants(label string) []string {
	i, ok := g.index[label]
	if !ok {
		return nil
	}
	seen := make(map[int]bool)
	var walk func(int)
	walk = func(j int) {
		for _, c := range g.children[j] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(i)
	return g.labelsOf(setToSlice(seen))
}

// Edges returns every direct containment edge as [container, containee]
// label pairs, sorted lexicographically. Useful for asserting the exact
// shape of Figure 1's graph.
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for i, cs := range g.children {
		for _, c := range cs {
			out = append(out, [2]string{g.items[i].Label, g.items[c].Label})
		}
	}
	slices.SortFunc(out, func(a, b [2]string) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out
}

// Dot renders the containment graph in Graphviz DOT format.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph containment {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	labels := make([]string, len(g.items))
	for i, it := range g.items {
		labels[i] = it.Label
	}
	slices.Sort(labels)
	for _, l := range labels {
		i := g.index[l]
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s\"];\n", l, l, g.items[i].Rect)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

func (g *Graph) labelsOf(idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = g.items[j].Label
	}
	slices.Sort(out)
	return out
}

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}
