package containment

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

// fig1 is the canonical subscription set modeled on the paper's Figure 1:
// S4 ⊂ S2, S4 ⊂ S3 (S2 and S3 incomparable), S7 ⊂ S3, S8 ⊂ S3, S6 ⊂ S5,
// S1 standalone.
func fig1() []Item {
	return []Item{
		{Label: "S1", Rect: geom.R2(5, 5, 28, 45)},
		{Label: "S2", Rect: geom.R2(10, 50, 45, 90)},
		{Label: "S3", Rect: geom.R2(30, 5, 95, 75)},
		{Label: "S4", Rect: geom.R2(32, 52, 43, 73)},
		{Label: "S5", Rect: geom.R2(55, 55, 90, 95)},
		{Label: "S6", Rect: geom.R2(60, 60, 75, 85)},
		{Label: "S7", Rect: geom.R2(60, 10, 85, 40)},
		{Label: "S8", Rect: geom.R2(40, 15, 70, 35)},
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Item{{Label: "a", Rect: geom.Rect{}}}); err == nil {
		t.Error("empty rect must be rejected")
	}
	if _, err := Build([]Item{
		{Label: "a", Rect: geom.R2(0, 0, 1, 1)},
		{Label: "a", Rect: geom.R2(0, 0, 2, 2)},
	}); err == nil {
		t.Error("duplicate label must be rejected")
	}
	g, err := Build(nil)
	if err != nil {
		t.Fatalf("empty build: %v", err)
	}
	if g.Len() != 0 || len(g.Roots()) != 0 {
		t.Error("empty graph must have no items or roots")
	}
}

func TestFigure1Edges(t *testing.T) {
	g, err := Build(fig1())
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"S2", "S4"},
		{"S3", "S4"},
		{"S3", "S7"},
		{"S3", "S8"},
		{"S5", "S6"},
	}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
	wantRoots := []string{"S1", "S2", "S3", "S5"}
	if got := g.Roots(); !reflect.DeepEqual(got, wantRoots) {
		t.Fatalf("Roots = %v, want %v", got, wantRoots)
	}
}

func TestFigure1Relations(t *testing.T) {
	g, err := Build(fig1())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's key example: S4 is contained in both S2 and S3.
	if !g.Contains("S2", "S4") || !g.Contains("S3", "S4") {
		t.Fatal("S4 must be contained in both S2 and S3 (paper §3.1)")
	}
	if g.Contains("S2", "S3") || g.Contains("S3", "S2") {
		t.Fatal("S2 and S3 must be incomparable")
	}
	if got := g.Parents("S4"); !reflect.DeepEqual(got, []string{"S2", "S3"}) {
		t.Fatalf("Parents(S4) = %v", got)
	}
	if got := g.Children("S3"); !reflect.DeepEqual(got, []string{"S4", "S7", "S8"}) {
		t.Fatalf("Children(S3) = %v", got)
	}
	if got := g.Ancestors("S4"); !reflect.DeepEqual(got, []string{"S2", "S3"}) {
		t.Fatalf("Ancestors(S4) = %v", got)
	}
	if got := g.Descendants("S3"); !reflect.DeepEqual(got, []string{"S4", "S7", "S8"}) {
		t.Fatalf("Descendants(S3) = %v", got)
	}
	if got := g.Children("nonexistent"); got != nil {
		t.Fatalf("Children of unknown label = %v, want nil", got)
	}
	if g.Contains("S1", "nope") || g.Contains("nope", "S1") {
		t.Fatal("Contains with unknown labels must be false")
	}
}

func TestTransitiveReduction(t *testing.T) {
	// a ⊃ b ⊃ c: the edge a->c must be removed by transitive reduction.
	items := []Item{
		{Label: "a", Rect: geom.R2(0, 0, 100, 100)},
		{Label: "b", Rect: geom.R2(10, 10, 90, 90)},
		{Label: "c", Rect: geom.R2(20, 20, 80, 80)},
	}
	g, err := Build(items)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"a", "b"}, {"b", "c"}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v (transitive edge a->c must be absent)", got, want)
	}
	// But transitive Contains still holds.
	if !g.Contains("a", "c") {
		t.Fatal("Contains must remain transitive")
	}
	if got := g.Ancestors("c"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Ancestors(c) = %v", got)
	}
}

func TestEquivalentRectangles(t *testing.T) {
	items := []Item{
		{Label: "a", Rect: geom.R2(0, 0, 10, 10)},
		{Label: "b", Rect: geom.R2(0, 0, 10, 10)},
		{Label: "inner", Rect: geom.R2(1, 1, 2, 2)},
	}
	g, err := Build(items)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Equivalents("a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Equivalents(a) = %v", got)
	}
	if got := g.Equivalents("b"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Equivalents(b) = %v", got)
	}
	// Equal rects do not strictly contain each other.
	if g.Contains("a", "b") || g.Contains("b", "a") {
		t.Fatal("equal rects must not strictly contain each other")
	}
	// Both contain inner directly.
	if !g.Contains("a", "inner") || !g.Contains("b", "inner") {
		t.Fatal("both equivalents contain inner")
	}
}

func TestIndexOfAndItem(t *testing.T) {
	g, err := Build(fig1())
	if err != nil {
		t.Fatal(err)
	}
	i, ok := g.IndexOf("S3")
	if !ok {
		t.Fatal("IndexOf(S3) not found")
	}
	if g.Item(i).Label != "S3" {
		t.Fatalf("Item(%d).Label = %q", i, g.Item(i).Label)
	}
	if _, ok := g.IndexOf("missing"); ok {
		t.Fatal("IndexOf(missing) must report false")
	}
}

func TestDotOutput(t *testing.T) {
	g, err := Build(fig1())
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	for _, want := range []string{"digraph containment", `"S3" -> "S4"`, `"S5" -> "S6"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestPropertyNoTransitiveEdges(t *testing.T) {
	// For random nested rect sets, the reduced edge set must contain no
	// edge implied by two others.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		items := randomNested(rng, 12)
		g, err := Build(items)
		if err != nil {
			return false
		}
		edges := g.Edges()
		has := make(map[[2]string]bool, len(edges))
		for _, e := range edges {
			has[e] = true
		}
		for _, e1 := range edges {
			for _, e2 := range edges {
				if e1[1] == e2[0] && has[[2]string{e1[0], e2[1]}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAncestorsConsistentWithContains(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 12))
		items := randomNested(rng, 10)
		g, err := Build(items)
		if err != nil {
			return false
		}
		for _, it := range items {
			for _, anc := range g.Ancestors(it.Label) {
				if !g.Contains(anc, it.Label) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomNested builds a random forest of nested rectangles with unique
// labels; roughly half the items are shrunken copies of earlier ones.
func randomNested(rng *rand.Rand, n int) []Item {
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		var r geom.Rect
		if i > 0 && rng.Float64() < 0.5 {
			parent := items[rng.IntN(len(items))].Rect
			r = shrink(rng, parent)
		} else {
			x, y := rng.Float64()*80, rng.Float64()*80
			r = geom.R2(x, y, x+1+rng.Float64()*19, y+1+rng.Float64()*19)
		}
		items = append(items, Item{Label: label(i), Rect: r})
	}
	return items
}

func shrink(rng *rand.Rand, r geom.Rect) geom.Rect {
	x1 := r.Lo(0) + rng.Float64()*r.Side(0)/3
	y1 := r.Lo(1) + rng.Float64()*r.Side(1)/3
	x2 := r.Hi(0) - rng.Float64()*r.Side(0)/3
	y2 := r.Hi(1) - rng.Float64()*r.Side(1)/3
	return geom.R2(x1, y1, x2, y2)
}

func label(i int) string {
	return "r" + string(rune('A'+i))
}
