// Package geom implements the poly-space rectangle algebra underlying
// spatial filters: points, axis-aligned hyper-rectangles, minimum bounding
// rectangles (MBRs), containment, intersection, areas and enlargement
// metrics.
//
// Subscriptions in the DR-tree paper are conjunctions of range predicates;
// geometrically each subscription is a rectangle and each event is a point
// (paper, Section 2.1). A dimension left unconstrained by a filter is
// represented by an interval unbounded on the corresponding side
// (±infinity), exactly as the paper's "unbounded in the associated
// dimension".
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space. Events correspond to points.
type Point []float64

// Dims reports the dimensionality of the point.
func (p Point) Dims() int { return len(p) }

// Equal reports whether p and q are the same point.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// String renders the point as "(x, y, ...)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = trimFloat(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Rect is an axis-aligned hyper-rectangle, stored as the per-dimension
// minima and maxima. The zero value is the empty rectangle, which acts as
// the identity element of Union and contains nothing.
//
// Rect values are treated as immutable: operations return new rectangles
// and never modify their receivers.
type Rect struct {
	lo, hi []float64
}

// NewRect builds a rectangle from per-dimension bounds. It returns an
// error if the slices disagree in length, are empty, or if lo[i] > hi[i]
// in any dimension. NaN bounds are rejected; infinite bounds are allowed
// (they encode dimensions unconstrained by a filter).
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("geom: dimension mismatch: %d vs %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Rect{}, fmt.Errorf("geom: zero-dimensional rectangle")
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) {
			return Rect{}, fmt.Errorf("geom: NaN bound in dimension %d", i)
		}
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("geom: inverted bounds in dimension %d: [%g, %g]", i, lo[i], hi[i])
		}
	}
	r := Rect{lo: make([]float64, len(lo)), hi: make([]float64, len(hi))}
	copy(r.lo, lo)
	copy(r.hi, hi)
	return r, nil
}

// MustRect is NewRect that panics on invalid input. It is intended for
// tests and package-level literals with constant bounds.
func MustRect(lo, hi []float64) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// R2 builds a two-dimensional rectangle from (x1,y1)-(x2,y2), normalizing
// the corner order. It is the convenience constructor for the paper's
// two-dimensional illustrations.
func R2(x1, y1, x2, y2 float64) Rect {
	return MustRect(
		[]float64{math.Min(x1, x2), math.Min(y1, y2)},
		[]float64{math.Max(x1, x2), math.Max(y1, y2)},
	)
}

// IsEmpty reports whether r is the empty rectangle (the zero value).
func (r Rect) IsEmpty() bool { return len(r.lo) == 0 }

// Dims reports the dimensionality of r; the empty rectangle has zero
// dimensions.
func (r Rect) Dims() int { return len(r.lo) }

// Lo returns the lower bound in dimension i.
func (r Rect) Lo(i int) float64 { return r.lo[i] }

// Hi returns the upper bound in dimension i.
func (r Rect) Hi(i int) float64 { return r.hi[i] }

// Side returns the extent of r along dimension i.
func (r Rect) Side(i int) float64 { return r.hi[i] - r.lo[i] }

// Center returns the center point of r. Dimensions with infinite bounds
// yield 0 if doubly unbounded, else the finite bound.
func (r Rect) Center() Point {
	c := make(Point, len(r.lo))
	for i := range r.lo {
		switch {
		case math.IsInf(r.lo[i], -1) && math.IsInf(r.hi[i], 1):
			c[i] = 0
		case math.IsInf(r.lo[i], -1):
			c[i] = r.hi[i]
		case math.IsInf(r.hi[i], 1):
			c[i] = r.lo[i]
		default:
			c[i] = (r.lo[i] + r.hi[i]) / 2
		}
	}
	return c
}

// Equal reports whether r and s have identical bounds. Two empty
// rectangles are equal.
func (r Rect) Equal(s Rect) bool {
	if len(r.lo) != len(s.lo) {
		return false
	}
	for i := range r.lo {
		if r.lo[i] != s.lo[i] || r.hi[i] != s.hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether point p lies inside r (bounds inclusive).
// The paper's event matching "event corresponds geometrically to a point"
// reduces to this predicate.
func (r Rect) ContainsPoint(p Point) bool {
	if r.IsEmpty() || len(p) != len(r.lo) {
		return false
	}
	for i := range p {
		if p[i] < r.lo[i] || p[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r spatially contains s (subscription
// containment: every point of s is a point of r). The empty rectangle is
// contained in everything and contains nothing but itself.
func (r Rect) Contains(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() || len(r.lo) != len(s.lo) {
		return false
	}
	for i := range r.lo {
		if s.lo[i] < r.lo[i] || s.hi[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// StrictlyContains reports whether r contains s and r != s.
func (r Rect) StrictlyContains(s Rect) bool {
	return r.Contains(s) && !r.Equal(s)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() || len(r.lo) != len(s.lo) {
		return false
	}
	for i := range r.lo {
		if s.hi[i] < r.lo[i] || s.lo[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// Intersection returns the largest rectangle contained in both r and s,
// or the empty rectangle if they do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	if !r.Intersects(s) {
		return Rect{}
	}
	lo := make([]float64, len(r.lo))
	hi := make([]float64, len(r.hi))
	for i := range r.lo {
		lo[i] = math.Max(r.lo[i], s.lo[i])
		hi[i] = math.Min(r.hi[i], s.hi[i])
	}
	return Rect{lo: lo, hi: hi}
}

// Union returns the minimum bounding rectangle of r and s. The empty
// rectangle is the identity: Union(empty, s) == s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	lo := make([]float64, len(r.lo))
	hi := make([]float64, len(r.hi))
	for i := range r.lo {
		lo[i] = math.Min(r.lo[i], s.lo[i])
		hi[i] = math.Max(r.hi[i], s.hi[i])
	}
	return Rect{lo: lo, hi: hi}
}

// UnionPoint returns the minimum bounding rectangle of r and point p.
func (r Rect) UnionPoint(p Point) Rect {
	pt := Rect{lo: []float64(p), hi: []float64(p)}
	return r.Union(pt)
}

// MBR returns the minimum bounding rectangle of all given rectangles.
// With no arguments it returns the empty rectangle. This is the paper's
// Compute_MBR over a children set.
func MBR(rects ...Rect) Rect {
	var out Rect
	for _, r := range rects {
		out = out.Union(r)
	}
	return out
}

// Area returns the d-dimensional volume of r. Empty rectangles have zero
// area; rectangles unbounded in some dimension have infinite area unless a
// degenerate (zero-width) dimension collapses the product to zero.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	area := 1.0
	for i := range r.lo {
		side := r.hi[i] - r.lo[i]
		if side == 0 {
			return 0
		}
		area *= side
	}
	return area
}

// Margin returns the sum of the side lengths of r (the "margin" metric of
// the R*-tree split heuristic).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	m := 0.0
	for i := range r.lo {
		m += r.hi[i] - r.lo[i]
	}
	return m
}

// UnionArea returns Area(Union(r, s)) without materializing the union
// rectangle. Routing and splitting decisions only ever need the area of a
// hypothetical union, so this keeps those hot paths allocation-free.
func (r Rect) UnionArea(s Rect) float64 {
	if r.IsEmpty() {
		return s.Area()
	}
	if s.IsEmpty() {
		return r.Area()
	}
	area := 1.0
	for i := range r.lo {
		side := math.Max(r.hi[i], s.hi[i]) - math.Min(r.lo[i], s.lo[i])
		if side == 0 {
			return 0
		}
		area *= side
	}
	return area
}

// Enlargement returns how much r's area grows to also cover s:
// Area(Union(r,s)) − Area(r). Used by Choose_Best_Child ("the child whose
// MBR needs the less adjustment to encompass the filter of the joining
// subscriber").
func (r Rect) Enlargement(s Rect) float64 {
	return r.UnionArea(s) - r.Area()
}

// OverlapArea returns the area of the intersection of r and s, zero if
// disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() || len(r.lo) != len(s.lo) {
		return 0
	}
	area := 1.0
	for i := range r.lo {
		side := math.Min(r.hi[i], s.hi[i]) - math.Max(r.lo[i], s.lo[i])
		if side <= 0 {
			return 0
		}
		area *= side
	}
	return area
}

// WasteArea returns the dead space when r and s are combined:
// Area(Union) − Area(r) − Area(s). This is Guttman's pick-seeds metric
// ("the union of their MBRs wastes the most area").
func (r Rect) WasteArea(s Rect) float64 {
	return r.UnionArea(s) - r.Area() - s.Area()
}

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	if r.IsEmpty() {
		return Rect{}
	}
	lo := make([]float64, len(r.lo))
	hi := make([]float64, len(r.hi))
	copy(lo, r.lo)
	copy(hi, r.hi)
	return Rect{lo: lo, hi: hi}
}

// String renders the rectangle as "[lo1,hi1]x[lo2,hi2]...".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	var b strings.Builder
	for i := range r.lo {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%s,%s]", trimFloat(r.lo[i]), trimFloat(r.hi[i]))
	}
	return b.String()
}

func trimFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
}
