package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  []float64
		wantErr bool
	}{
		{"valid 2d", []float64{0, 0}, []float64{1, 1}, false},
		{"valid point-like", []float64{3, 4}, []float64{3, 4}, false},
		{"valid unbounded", []float64{math.Inf(-1), 0}, []float64{math.Inf(1), 5}, false},
		{"dimension mismatch", []float64{0}, []float64{1, 2}, true},
		{"zero dims", []float64{}, []float64{}, true},
		{"inverted", []float64{2, 0}, []float64{1, 1}, true},
		{"nan lo", []float64{math.NaN(), 0}, []float64{1, 1}, true},
		{"nan hi", []float64{0, 0}, []float64{math.NaN(), 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewRect(tt.lo, tt.hi)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewRect(%v, %v) error = %v, wantErr %v", tt.lo, tt.hi, err, tt.wantErr)
			}
		})
	}
}

func TestMustRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRect with inverted bounds did not panic")
		}
	}()
	MustRect([]float64{1}, []float64{0})
}

func TestR2NormalizesCorners(t *testing.T) {
	r := R2(5, 7, 1, 2)
	want := R2(1, 2, 5, 7)
	if !r.Equal(want) {
		t.Fatalf("R2 did not normalize corners: got %v want %v", r, want)
	}
}

func TestRectIsolationFromInputSlices(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	r := MustRect(lo, hi)
	lo[0] = 99
	hi[1] = -99
	if r.Lo(0) != 0 || r.Hi(1) != 1 {
		t.Fatal("Rect aliases caller-owned slices; bounds must be copied at the boundary")
	}
}

func TestContainsPoint(t *testing.T) {
	r := R2(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // inclusive lower corner
		{Point{10, 10}, true}, // inclusive upper corner
		{Point{10.0001, 5}, false},
		{Point{-0.1, 5}, false},
		{Point{5}, false},       // dimension mismatch
		{Point{5, 5, 5}, false}, // dimension mismatch
	}
	for _, tt := range tests {
		if got := r.ContainsPoint(tt.p); got != tt.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if (Rect{}).ContainsPoint(Point{1, 2}) {
		t.Error("empty rect must contain no point")
	}
}

func TestContainsRect(t *testing.T) {
	outer := R2(0, 0, 10, 10)
	tests := []struct {
		name  string
		inner Rect
		want  bool
	}{
		{"strict inside", R2(2, 2, 8, 8), true},
		{"equal", R2(0, 0, 10, 10), true},
		{"touching edge", R2(0, 0, 10, 5), true},
		{"poking out", R2(5, 5, 11, 8), false},
		{"disjoint", R2(20, 20, 30, 30), false},
		{"empty inner", Rect{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := outer.Contains(tt.inner); got != tt.want {
				t.Fatalf("Contains = %v, want %v", got, tt.want)
			}
		})
	}
	if (Rect{}).Contains(R2(0, 0, 1, 1)) {
		t.Error("empty rect contains nothing non-empty")
	}
	if !outer.StrictlyContains(R2(1, 1, 2, 2)) {
		t.Error("StrictlyContains should hold for proper subset")
	}
	if outer.StrictlyContains(outer) {
		t.Error("StrictlyContains must be false for equal rects")
	}
}

func TestIntersectsAndIntersection(t *testing.T) {
	a := R2(0, 0, 10, 10)
	b := R2(5, 5, 15, 15)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects must intersect (symmetric)")
	}
	got := a.Intersection(b)
	if want := R2(5, 5, 10, 10); !got.Equal(want) {
		t.Fatalf("Intersection = %v, want %v", got, want)
	}

	c := R2(20, 20, 30, 30)
	if a.Intersects(c) {
		t.Fatal("disjoint rects must not intersect")
	}
	if !a.Intersection(c).IsEmpty() {
		t.Fatal("Intersection of disjoint rects must be empty")
	}

	// Touching rectangles intersect on their shared boundary.
	d := R2(10, 0, 20, 10)
	if !a.Intersects(d) {
		t.Fatal("edge-touching rects intersect")
	}
	if area := a.Intersection(d).Area(); area != 0 {
		t.Fatalf("touching intersection area = %g, want 0", area)
	}
}

func TestUnionBasics(t *testing.T) {
	a := R2(0, 0, 1, 1)
	b := R2(5, 5, 6, 6)
	got := a.Union(b)
	if want := R2(0, 0, 6, 6); !got.Equal(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if !(Rect{}).Union(a).Equal(a) || !a.Union(Rect{}).Equal(a) {
		t.Fatal("empty rect must be the identity of Union")
	}
	if !MBR().IsEmpty() {
		t.Fatal("MBR() of nothing is empty")
	}
	if got := MBR(a, b, R2(-1, -1, 0, 0)); !got.Equal(R2(-1, -1, 6, 6)) {
		t.Fatalf("MBR of three rects = %v", got)
	}
}

func TestUnionPoint(t *testing.T) {
	a := R2(0, 0, 1, 1)
	got := a.UnionPoint(Point{3, -2})
	if want := R2(0, -2, 3, 1); !got.Equal(want) {
		t.Fatalf("UnionPoint = %v, want %v", got, want)
	}
}

func TestAreaMarginMetrics(t *testing.T) {
	r := R2(0, 0, 4, 5)
	if got := r.Area(); got != 20 {
		t.Errorf("Area = %g, want 20", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %g, want 9", got)
	}
	if got := (Rect{}).Area(); got != 0 {
		t.Errorf("empty Area = %g, want 0", got)
	}
	// Degenerate rect (zero width in one dim) has zero area but nonzero margin.
	line := R2(0, 0, 0, 7)
	if got := line.Area(); got != 0 {
		t.Errorf("degenerate Area = %g, want 0", got)
	}
	if got := line.Margin(); got != 7 {
		t.Errorf("degenerate Margin = %g, want 7", got)
	}
	// Unbounded dimension yields infinite area.
	unb := MustRect([]float64{0, math.Inf(-1)}, []float64{1, math.Inf(1)})
	if got := unb.Area(); !math.IsInf(got, 1) {
		t.Errorf("unbounded Area = %g, want +Inf", got)
	}
}

func TestEnlargementWasteOverlap(t *testing.T) {
	a := R2(0, 0, 2, 2) // area 4
	b := R2(3, 0, 4, 1) // area 1, union with a = (0,0)-(4,2) area 8
	if got := a.Enlargement(b); got != 4 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
	if got := a.WasteArea(b); got != 3 {
		t.Errorf("WasteArea = %g, want 3", got)
	}
	if got := a.Enlargement(R2(1, 1, 2, 2)); got != 0 {
		t.Errorf("Enlargement by contained rect = %g, want 0", got)
	}
	c := R2(1, 1, 3, 3)
	if got := a.OverlapArea(c); got != 1 {
		t.Errorf("OverlapArea = %g, want 1", got)
	}
	if got := a.OverlapArea(R2(10, 10, 11, 11)); got != 0 {
		t.Errorf("disjoint OverlapArea = %g, want 0", got)
	}
}

func TestCenter(t *testing.T) {
	if got := R2(0, 0, 4, 10).Center(); !got.Equal(Point{2, 5}) {
		t.Errorf("Center = %v, want (2,5)", got)
	}
	unb := MustRect([]float64{math.Inf(-1), 2}, []float64{4, math.Inf(1)})
	if got := unb.Center(); !got.Equal(Point{4, 2}) {
		t.Errorf("half-unbounded Center = %v, want (4,2)", got)
	}
	both := MustRect([]float64{math.Inf(-1)}, []float64{math.Inf(1)})
	if got := both.Center(); !got.Equal(Point{0}) {
		t.Errorf("doubly-unbounded Center = %v, want (0)", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := R2(0, 0, 1, 1)
	c := r.Clone()
	if !c.Equal(r) {
		t.Fatal("clone differs from original")
	}
	if !(Rect{}).Clone().IsEmpty() {
		t.Fatal("clone of empty must be empty")
	}
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("point clone aliases original")
	}
}

func TestString(t *testing.T) {
	if got := R2(0, 0, 1.5, 2).String(); got != "[0,1.5]x[0,2]" {
		t.Errorf("String = %q", got)
	}
	if got := (Rect{}).String(); got != "[empty]" {
		t.Errorf("empty String = %q", got)
	}
	unb := MustRect([]float64{math.Inf(-1)}, []float64{math.Inf(1)})
	if got := unb.String(); got != "[-inf,+inf]" {
		t.Errorf("unbounded String = %q", got)
	}
	if got := (Point{1, 2.25}).String(); got != "(1, 2.25)" {
		t.Errorf("point String = %q", got)
	}
}

// randRect generates a random 2-D rectangle inside [0,100]^2.
func randRect(rng *rand.Rand) Rect {
	x1, y1 := rng.Float64()*100, rng.Float64()*100
	x2, y2 := rng.Float64()*100, rng.Float64()*100
	return R2(x1, y1, x2, y2)
}

func TestPropertyUnionCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		a, b, c := randRect(r), randRect(r), randRect(r)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionContainsOperands(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		a, b := randRect(r), randRect(r)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b) && u.Area() >= math.Max(a.Area(), b.Area())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentTransitive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		// Build a ⊇ b ⊇ c by shrinking.
		a := randRect(r)
		b := shrink(r, a)
		c := shrink(r, b)
		return a.Contains(b) && b.Contains(c) && a.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// shrink returns a random sub-rectangle of r.
func shrink(rng *rand.Rand, r Rect) Rect {
	lo := make([]float64, r.Dims())
	hi := make([]float64, r.Dims())
	for i := 0; i < r.Dims(); i++ {
		span := r.Hi(i) - r.Lo(i)
		a := r.Lo(i) + rng.Float64()*span/2
		b := r.Hi(i) - rng.Float64()*span/2
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return MustRect(lo, hi)
}

func TestPropertyIntersectionContainedInBoth(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		a, b := randRect(r), randRect(r)
		in := a.Intersection(b)
		if in.IsEmpty() {
			return !a.Intersects(b) || a.Intersection(b).IsEmpty()
		}
		return a.Contains(in) && b.Contains(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnlargementNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 4))
		a, b := randRect(r), randRect(r)
		return a.Enlargement(b) >= 0 && a.WasteArea(b) >= -a.OverlapArea(b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentImpliesPointSubset(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		a := randRect(r)
		b := shrink(r, a)
		// Any random point of b must be in a.
		for i := 0; i < 10; i++ {
			p := Point{
				b.Lo(0) + r.Float64()*b.Side(0),
				b.Lo(1) + r.Float64()*b.Side(1),
			}
			if !b.ContainsPoint(p) || !a.ContainsPoint(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
