package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

// naiveUnionArea materializes the union rectangle and measures it — the
// reference implementation UnionArea avoids for allocation reasons.
func naiveUnionArea(r, s Rect) float64 { return r.Union(s).Area() }

// naiveOverlapArea materializes the intersection and measures it.
func naiveOverlapArea(r, s Rect) float64 { return r.Intersection(s).Area() }

// degenerateCases enumerates the awkward rectangle pairs: point rects,
// empty rects, identical rects, shared edges/corners, zero-width slabs,
// containment, and unbounded dimensions.
func degenerateCases() []struct {
	name string
	r, s Rect
} {
	point := MustRect([]float64{3, 4}, []float64{3, 4})
	point2 := MustRect([]float64{5, 6}, []float64{5, 6})
	box := R2(0, 0, 10, 10)
	slab := MustRect([]float64{2, 0}, []float64{2, 10}) // zero width
	unb := MustRect([]float64{0, math.Inf(-1)}, []float64{1, math.Inf(1)})
	unbSlab := MustRect([]float64{7, math.Inf(-1)}, []float64{7, math.Inf(1)})
	return []struct {
		name string
		r, s Rect
	}{
		{"empty-empty", Rect{}, Rect{}},
		{"empty-box", Rect{}, box},
		{"box-empty", box, Rect{}},
		{"empty-point", Rect{}, point},
		{"point-self", point, point},
		{"point-point", point, point2},
		{"point-in-box", box, point},
		{"point-on-corner", box, MustRect([]float64{10, 10}, []float64{10, 10})},
		{"identical", box, box.Clone()},
		{"contained", box, R2(2, 2, 5, 5)},
		{"shared-edge", box, R2(10, 0, 20, 10)},
		{"shared-corner", box, R2(10, 10, 20, 20)},
		{"disjoint", box, R2(20, 20, 30, 30)},
		{"overlapping", box, R2(5, 5, 15, 15)},
		{"slab-self", slab, slab},
		{"slab-box", slab, box},
		{"slab-beside-box", MustRect([]float64{-1, 0}, []float64{-1, 10}), box},
		{"unbounded-box", unb, box},
		{"unbounded-self", unb, unb},
		{"unbounded-slab", unbSlab, box},
		{"unbounded-vs-unbounded-slab", unb, unbSlab},
	}
}

// TestUnionAreaMatchesNaive cross-checks the allocation-free UnionArea
// against materialize-then-measure on every degenerate pair, both
// orders.
func TestUnionAreaMatchesNaive(t *testing.T) {
	for _, c := range degenerateCases() {
		for _, pair := range [][2]Rect{{c.r, c.s}, {c.s, c.r}} {
			got := pair[0].UnionArea(pair[1])
			want := naiveUnionArea(pair[0], pair[1])
			if !sameArea(got, want) {
				t.Errorf("%s: UnionArea(%v, %v) = %v, naive %v", c.name, pair[0], pair[1], got, want)
			}
		}
	}
}

// TestOverlapAreaMatchesNaive cross-checks OverlapArea the same way.
func TestOverlapAreaMatchesNaive(t *testing.T) {
	for _, c := range degenerateCases() {
		for _, pair := range [][2]Rect{{c.r, c.s}, {c.s, c.r}} {
			got := pair[0].OverlapArea(pair[1])
			want := naiveOverlapArea(pair[0], pair[1])
			if !sameArea(got, want) {
				t.Errorf("%s: OverlapArea(%v, %v) = %v, naive %v", c.name, pair[0], pair[1], got, want)
			}
		}
	}
}

// TestWasteAreaMatchesNaive: WasteArea is defined in terms of UnionArea;
// cross-check it on the finite degenerate pairs too (the infinite ones
// produce Inf-Inf which is NaN in both formulations only when both are
// materialized the same way, so they are skipped).
func TestWasteAreaMatchesNaive(t *testing.T) {
	for _, c := range degenerateCases() {
		if math.IsInf(c.r.Area(), 1) || math.IsInf(c.s.Area(), 1) {
			continue
		}
		got := c.r.WasteArea(c.s)
		want := naiveUnionArea(c.r, c.s) - c.r.Area() - c.s.Area()
		if !sameArea(got, want) {
			t.Errorf("%s: WasteArea = %v, naive %v", c.name, got, want)
		}
	}
}

// TestDegenerateRandomizedCrossCheck hammers the fast paths with random
// rectangle pairs biased toward degeneracy (snapped-to-grid bounds, so
// point rects, shared edges and zero-width dimensions occur constantly).
func TestDegenerateRandomizedCrossCheck(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewPCG(seed, 23))
		snap := func() float64 { return math.Floor(rng.Float64() * 6) }
		mk := func() Rect {
			x1, x2 := snap(), snap()
			y1, y2 := snap(), snap()
			return R2(x1, y1, x2, y2)
		}
		for i := 0; i < 20; i++ {
			r, s := mk(), mk()
			if got, want := r.UnionArea(s), naiveUnionArea(r, s); !sameArea(got, want) {
				t.Fatalf("seed %d: UnionArea(%v, %v) = %v, naive %v", seed, r, s, got, want)
			}
			if got, want := r.OverlapArea(s), naiveOverlapArea(r, s); !sameArea(got, want) {
				t.Fatalf("seed %d: OverlapArea(%v, %v) = %v, naive %v", seed, r, s, got, want)
			}
			if enl := r.Enlargement(s); enl < 0 {
				t.Fatalf("seed %d: negative enlargement %v for (%v, %v)", seed, enl, r, s)
			}
		}
	}
}

// sameArea treats NaN == NaN (possible with mixed infinite bounds) and
// requires exact equality otherwise: both implementations perform the
// same float operations and must agree bit-for-bit.
func sameArea(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}
