package harness

import "slices"

// Shrink minimizes a failing schedule: it greedily removes chunks of
// steps (halving chunk sizes down to single steps, delta-debugging
// style) while the schedule keeps producing an invariant violation, and
// returns the smallest failing schedule found. maxRuns bounds the total
// number of replays (0 = a generous default). Because steps whose
// targets no longer exist degrade to no-ops, every sub-schedule is
// well-formed and the search never produces an invalid artifact.
//
// Shrinking preserves step order, so a minimized schedule is a
// subsequence of the original and replays deterministically.
func Shrink(s *Schedule, maxRuns int) *Schedule {
	if maxRuns <= 0 {
		maxRuns = 400
	}
	fails := func(c *Schedule) bool {
		if maxRuns <= 0 {
			return false
		}
		maxRuns--
		_, err := Run(c)
		_, isViolation := AsViolation(err)
		return isViolation
	}
	cur := cloneSchedule(s)
	if !fails(cur) {
		return cur // not failing (or budget exhausted): nothing to shrink
	}
	for chunk := len(cur.Steps) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start+chunk <= len(cur.Steps); {
			cand := cloneSchedule(cur)
			cand.Steps = slices.Delete(cand.Steps, start, start+chunk)
			if fails(cand) {
				cur = cand
				removedAny = true
				// Same start now points at the next chunk; retry there.
				continue
			}
			start += chunk
		}
		if !removedAny || chunk == 1 {
			if chunk == 1 && !removedAny {
				break
			}
			chunk = max(chunk/2, 1)
			continue
		}
		// Progress at this granularity: try it again before refining.
	}
	return cur
}

func cloneSchedule(s *Schedule) *Schedule {
	out := *s
	out.Steps = make([]Step, len(s.Steps))
	for i, st := range s.Steps {
		st.Children = slices.Clone(st.Children)
		st.Rect = slices.Clone(st.Rect)
		st.Point = slices.Clone(st.Point)
		groups := make([][]int, len(st.Groups))
		for g, ids := range st.Groups {
			groups[g] = slices.Clone(ids)
		}
		if st.Groups == nil {
			groups = nil
		}
		st.Groups = groups
		out.Steps[i] = st
	}
	return &out
}
