package harness

import (
	"fmt"
	"testing"

	"drtree/internal/pubsub"
	"drtree/internal/state"
)

// recoveryOpeners builds the two store shapes CertifyRecovery is run
// against: the in-memory model disk, and a real WAL directory whose
// handle is closed and reopened across each simulated crash.
func recoveryOpeners(t *testing.T) map[string]StoreOpener {
	t.Helper()
	mem := state.NewMem()
	dir := t.TempDir()
	var w *state.WAL
	t.Cleanup(func() {
		if w != nil {
			w.Close()
		}
	})
	return map[string]StoreOpener{
		"mem": func() (state.Store, error) { return mem, nil },
		"wal": func() (state.Store, error) {
			if w != nil {
				w.Close()
			}
			var err error
			w, err = state.OpenWAL(dir)
			return w, err
		},
	}
}

// TestCertifyRecoveryHandWritten drives a deterministic schedule that
// touches every durable control-plane transition: subscribe, re-join
// (filter update), controlled unsubscribe, uncontrolled failure, and
// in-flight publishes, with overlay-only ops interleaved to pin the
// skip accounting.
func TestCertifyRecoveryHandWritten(t *testing.T) {
	sched := &Schedule{
		Seed: 9, MinFanout: 2, MaxFanout: 4, Probes: 6,
		Steps: []Step{
			{Op: OpJoin, ID: 1, Rect: []float64{0, 0, 100, 100}},
			{Op: OpJoin, ID: 2, Rect: []float64{50, 50, 150, 150}},
			{Op: OpJoin, ID: 3, Rect: []float64{200, 200, 260, 260}},
			{Op: OpJoin, ID: 4, Rect: []float64{10, 300, 90, 380}},
			{Op: OpJoin, ID: 5, Rect: []float64{400, 0, 500, 60}},
			{Op: OpLeave, ID: 2},
			{Op: OpCrash, ID: 3},
			{Op: OpCorruptParent, ID: 1, Parent: 4}, // overlay-only: skipped
			{Op: OpSettle},
			{Op: OpJoin, ID: 1, Rect: []float64{20, 20, 80, 80}}, // re-join: filter update
			{Op: OpJoin, ID: 6, Rect: []float64{60, 60, 70, 70}},
			{Op: OpPublish, ID: 5, Point: []float64{65, 65}},
			{Op: OpDropRate, Rate: 0.1}, // network-only: skipped
			{Op: OpSettle},
			{Op: OpLeave, ID: 5},
			{Op: OpLeave, ID: 4},
			{Op: OpSettle},
		},
	}
	for name, open := range recoveryOpeners(t) {
		t.Run(name, func(t *testing.T) {
			rep, err := CertifyRecovery(sched, open)
			if err != nil {
				t.Fatalf("CertifyRecovery: %v (report %v)", err, rep)
			}
			if rep.Crashes != 3 {
				t.Errorf("Crashes = %d, want 3", rep.Crashes)
			}
			// Settles 0 and 2 checkpoint before the kill, so at least
			// those two recoveries start from a snapshot baseline.
			if rep.Snapshots < 2 {
				t.Errorf("Snapshots = %d, want >= 2", rep.Snapshots)
			}
			if rep.Probes == 0 {
				t.Error("no certification probes ran")
			}
			if rep.Skipped[OpCorruptParent] != 1 || rep.Skipped[OpDropRate] != 1 {
				t.Errorf("Skipped = %v, want corrupt-parent and drop-rate counted", rep.Skipped)
			}
		})
	}
}

// TestCertifyRecoveryGenerated runs the certifier over randomized
// adversarial schedules on both store shapes.
func TestCertifyRecoveryGenerated(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		sched := Generate(seed, GenConfig{})
		settles := sched.Counts()[OpSettle]
		for name, open := range recoveryOpeners(t) {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				rep, err := CertifyRecovery(sched, open)
				if err != nil {
					t.Fatalf("CertifyRecovery: %v (report %v)", err, rep)
				}
				if rep.Crashes != settles {
					t.Errorf("Crashes = %d, want one per settle (%d)", rep.Crashes, settles)
				}
				if rep.Probes == 0 {
					t.Error("no certification probes ran")
				}
			})
		}
	}
}

// TestCertifyRecoveryAdaptivePool runs the certifier with the adaptive
// gateway tier: a low split target forces pool growth (and drains on
// departures) between crashes, so every settle window certifies that
// the recovered pool size and per-subscriber gateway assignment match
// the pre-crash broker exactly.
func TestCertifyRecoveryAdaptivePool(t *testing.T) {
	for _, seed := range []uint64{2, 13} {
		sched := Generate(seed, GenConfig{})
		for name, open := range recoveryOpeners(t) {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				rep, err := CertifyRecovery(sched, open, pubsub.WithGatewayPolicy(3, 1, 32))
				if err != nil {
					t.Fatalf("CertifyRecovery: %v (report %v)", err, rep)
				}
				if rep.Probes == 0 {
					t.Error("no certification probes ran")
				}
			})
		}
	}
}

// amnesiacStore wraps a Store and silently drops every write after the
// first `allow` appends — the lie a broken durability layer would tell.
// CertifyRecovery exists to catch exactly this.
type amnesiacStore struct {
	state.Store
	allow int
	seen  int
}

func (a *amnesiacStore) Append(rec []byte) error {
	a.seen++
	if a.seen > a.allow {
		return nil // claims durability, writes nothing
	}
	return a.Store.Append(rec)
}

func (a *amnesiacStore) Snapshot([]byte) error { return nil }

func TestCertifyRecoveryCatchesLostSubscriptions(t *testing.T) {
	sched := &Schedule{
		Seed: 3, MinFanout: 2, MaxFanout: 4,
		Steps: []Step{
			{Op: OpJoin, ID: 1, Rect: []float64{0, 0, 10, 10}},
			{Op: OpJoin, ID: 2, Rect: []float64{0, 0, 20, 20}},
			{Op: OpJoin, ID: 3, Rect: []float64{0, 0, 30, 30}},
			{Op: OpJoin, ID: 4, Rect: []float64{0, 0, 40, 40}},
			{Op: OpJoin, ID: 5, Rect: []float64{0, 0, 50, 50}},
			{Op: OpSettle},
		},
	}
	lossy := &amnesiacStore{Store: state.NewMem(), allow: 3}
	_, err := CertifyRecovery(sched, func() (state.Store, error) { return lossy, nil })
	v, ok := AsViolation(err)
	if !ok {
		t.Fatalf("CertifyRecovery over an amnesiac store returned %v, want a Violation", err)
	}
	if v.Kind != "recovery" || v.Engine != "durable" {
		t.Fatalf("violation %v, want kind=recovery engine=durable", v)
	}
}
