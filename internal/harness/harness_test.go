package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestAdversarialSchedulesCertifyBothEngines is the harness's core
// promise: across many seeded randomized schedules — joins, controlled
// leaves, crashes, publishes, every corruption kind, message drops,
// per-link delays and partitions — both engines converge to a legal
// state in every quiescent window, disseminate with zero false
// negatives versus the centralized R-tree baseline, and agree with each
// other structurally.
func TestAdversarialSchedulesCertifyBothEngines(t *testing.T) {
	const seeds = 60
	var agg Report
	for seed := uint64(1); seed <= seeds; seed++ {
		s := Generate(seed, GenConfig{})
		rep, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		agg.Settles += rep.Settles
		agg.ProbeEvents += rep.ProbeEvents
		agg.Joins += rep.Joins
		agg.Leaves += rep.Leaves
		agg.Crashes += rep.Crashes
		agg.Corruptions += rep.Corruptions
	}
	t.Logf("%d schedules: %v", seeds, agg)
	if agg.Corruptions == 0 || agg.Crashes == 0 || agg.ProbeEvents == 0 {
		t.Fatalf("degenerate schedule mix: %v", agg)
	}
}

// Larger populations and longer fault histories, same certification.
func TestLargerSchedulesCertify(t *testing.T) {
	for seed := uint64(100); seed < 110; seed++ {
		s := Generate(seed, GenConfig{MaxProcs: 48, Epochs: 6})
		if _, err := Run(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(42, GenConfig{}).Encode()
	b := Generate(42, GenConfig{}).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("Generate is not deterministic")
	}
	if bytes.Equal(a, Generate(43, GenConfig{}).Encode()) {
		t.Fatal("different seeds must differ")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	s := Generate(7, GenConfig{})
	r1, err1 := Run(s)
	r2, err2 := Run(s)
	if err1 != nil || err2 != nil {
		t.Fatalf("runs errored: %v / %v", err1, err2)
	}
	if *r1 != *r2 {
		t.Fatalf("reports differ:\n%v\n%v", r1, r2)
	}
}

func TestCodecRoundTripsByteIdentically(t *testing.T) {
	s := Generate(9, GenConfig{})
	b := s.Encode()
	dec, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), b) {
		t.Fatal("Encode(Decode(b)) != b")
	}
}

func TestDecodeRejectsMalformedArtifacts(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"seed":1,"min_fanout":2,"max_fanout":4,"bogus":1,"steps":[]}`,
		"bad op":        `{"seed":1,"min_fanout":2,"max_fanout":4,"steps":[{"op":"explode"}]}`,
		"bad fanout":    `{"seed":1,"min_fanout":3,"max_fanout":5,"steps":[]}`,
		"join no rect":  `{"seed":1,"min_fanout":2,"max_fanout":4,"steps":[{"op":"join","id":1}]}`,
		"bad rate":      `{"seed":1,"min_fanout":2,"max_fanout":4,"steps":[{"op":"drop-rate","rate":1.5}]}`,
		"not json":      `hello`,
	}
	for name, src := range cases {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("%s: decode must fail", name)
		}
	}
}

func TestSaveLoadVerifiesCanonicalForm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.json")
	s := Generate(3, GenConfig{})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), s.Encode()) {
		t.Fatal("loaded schedule differs")
	}
	// A semantically equal but re-formatted artifact is rejected: replay
	// must be byte-identical to the saved artifact.
	if err := os.WriteFile(filepath.Join(dir, "loose.json"),
		append([]byte(" \n"), s.Encode()...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "loose.json")); err == nil {
		t.Fatal("non-canonical artifact must be rejected")
	}
}

// TestShrinkMinimizesInjectedViolation injects a deliberate invariant
// violation (a convergence budget far below what the protocol needs
// under churn) and checks the shrinker reduces the failing schedule to a
// small replayable core that still reproduces a violation.
func TestShrinkMinimizesInjectedViolation(t *testing.T) {
	s := Generate(11, GenConfig{})
	s.SettleRounds = 6
	_, err := Run(s)
	v, ok := AsViolation(err)
	if !ok {
		t.Fatalf("tight budget must violate convergence, got %v", err)
	}
	if v.Kind != "convergence" {
		t.Fatalf("expected convergence violation, got %v", v)
	}

	min := Shrink(s, 0)
	if len(min.Steps) >= len(s.Steps) {
		t.Fatalf("shrink made no progress: %d -> %d steps", len(s.Steps), len(min.Steps))
	}
	if len(min.Steps) > 8 {
		t.Fatalf("shrunk schedule still has %d steps", len(min.Steps))
	}
	if _, err := Run(min); err == nil {
		t.Fatal("shrunk schedule must still fail")
	} else if _, ok := AsViolation(err); !ok {
		t.Fatalf("shrunk failure is not a violation: %v", err)
	}

	// The minimized artifact replays byte-identically.
	path := filepath.Join(t.TempDir(), "min.json")
	if err := min.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Encode(), min.Encode()) {
		t.Fatal("replayed artifact differs from the saved one")
	}
	_, errA := Run(min)
	_, errB := Run(loaded)
	if errA.Error() != errB.Error() {
		t.Fatalf("replay diverged:\n%v\n%v", errA, errB)
	}
}

// TestShrinkLeavesPassingScheduleAlone: shrinking a certifying schedule
// is a no-op.
func TestShrinkLeavesPassingScheduleAlone(t *testing.T) {
	s := Generate(5, GenConfig{})
	min := Shrink(s, 0)
	if len(min.Steps) != len(s.Steps) {
		t.Fatalf("passing schedule was shrunk: %d -> %d", len(s.Steps), len(min.Steps))
	}
}

func TestViolationFormatting(t *testing.T) {
	v := &Violation{StepIndex: 3, Engine: "proto", Kind: "legality", Detail: "boom"}
	if v.Error() != "step 3 [proto/legality]: boom" {
		t.Fatalf("violation format = %q", v.Error())
	}
	if got, ok := AsViolation(v); !ok || got != v {
		t.Fatal("AsViolation must unwrap")
	}
	if _, ok := AsViolation(nil); ok {
		t.Fatal("nil is not a violation")
	}
}
