package harness

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoGlobalRandomness audits the whole module for nondeterminism
// hazards: every non-test source file may only use math/rand/v2 through
// an explicitly constructed (and therefore seedable, injectable)
// *rand.Rand — calls to the package-level convenience functions
// (rand.IntN, rand.Float64, rand.Shuffle, ...) draw from the global,
// OS-seeded generator and would make simulations unreproducible. The
// v1 math/rand package (globally seedable, and historically seeded from
// wall-clock time) is banned outright.
func TestNoGlobalRandomness(t *testing.T) {
	// Constructors return a value the caller must thread explicitly;
	// everything else on the package is a global-generator draw.
	allowed := map[string]bool{
		"New": true, "NewPCG": true, "NewChaCha8": true,
		"NewSource": true, "NewZipf": true,
	}
	root := moduleRoot(t)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		randNames := map[string]bool{} // local names binding math/rand/v2
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand":
				t.Errorf("%s imports math/rand; only math/rand/v2 is allowed", rel)
			case "math/rand/v2":
				name := "rand"
				if imp.Name != nil {
					name = imp.Name.Name
				}
				randNames[name] = true
			}
		}
		if len(randNames) == 0 {
			return nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			// Only *calls* on the package identifier matter: type
			// references like *rand.Rand in signatures are exactly the
			// injected-generator idiom the audit wants.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[ident.Name] || ident.Obj != nil {
				return true
			}
			if !allowed[sel.Sel.Name] {
				t.Errorf("%s:%v: %s.%s draws from the global generator; inject a seeded *rand.Rand",
					rel, fset.Position(sel.Pos()).Line, ident.Name, sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}
