package harness

import (
	"math/rand/v2"
	"slices"
)

// GenConfig bounds the shape of generated schedules.
type GenConfig struct {
	// MaxProcs caps the live population (default 24).
	MaxProcs int
	// Epochs is the number of operation/fault/settle cycles (default
	// 2–4, seed-dependent).
	Epochs int
	// MinFanout / MaxFanout pin the tree parameters (defaults: m=2 and
	// a seed-dependent M in 4..6). An invalid combination (M < 2m)
	// surfaces as a validation error from Run, not here.
	MinFanout int
	MaxFanout int
}

func (g GenConfig) withDefaults(rng *rand.Rand) GenConfig {
	if g.MaxProcs == 0 {
		g.MaxProcs = 24
	}
	if g.Epochs == 0 {
		g.Epochs = 2 + rng.IntN(3)
	}
	return g
}

// Generate builds a randomized adversarial schedule from a seed. The
// schedule is structured as epochs, each of which applies overlay
// operations on a settled configuration, then publishes, then injects
// state corruption and message-level faults, and finally settles — the
// self-stabilization contract is that once faults cease (the settle
// window), the overlay converges back to a legal state. Within an epoch
// joins/leaves precede publishes, which precede crashes and corruptions,
// so removing arbitrary steps (shrinking) never makes a schedule
// meaningless.
func Generate(seed uint64, cfg GenConfig) *Schedule {
	rng := rand.New(rand.NewPCG(seed, 0xD127))
	cfg = cfg.withDefaults(rng)

	s := &Schedule{
		Seed:      seed,
		MinFanout: 2,
		MaxFanout: 4 + rng.IntN(3), // M in 4..6, m=2
		Probes:    4,
	}
	if cfg.MinFanout > 0 {
		s.MinFanout = cfg.MinFanout
	}
	if cfg.MaxFanout > 0 {
		s.MaxFanout = cfg.MaxFanout
	} else if s.MaxFanout < 2*s.MinFanout {
		// Only m was pinned: raise the seed-default M to stay valid.
		s.MaxFanout = 2 * s.MinFanout
	}

	const world = 500.0
	live := []int{}
	nextID := 1

	randRect := func() []float64 {
		x := rng.Float64() * world
		y := rng.Float64() * world
		w := 5 + rng.Float64()*80
		h := 5 + rng.Float64()*80
		return []float64{x, y, x + w, y + h}
	}
	pickLive := func() int {
		if len(live) == 0 {
			return 0
		}
		return live[rng.IntN(len(live))]
	}

	for e := 0; e < cfg.Epochs; e++ {
		// Joins (front-loaded in the first epoch).
		joins := 2 + rng.IntN(4)
		if e == 0 {
			joins = 8 + rng.IntN(8)
		}
		for j := 0; j < joins && len(live) < cfg.MaxProcs; j++ {
			s.Steps = append(s.Steps, Step{Op: OpJoin, ID: nextID, Rect: randRect()})
			live = append(live, nextID)
			nextID++
		}

		// Controlled leaves.
		for l := rng.IntN(3); l > 0 && len(live) > 3; l-- {
			id := pickLive()
			s.Steps = append(s.Steps, Step{Op: OpLeave, ID: id})
			live = slices.DeleteFunc(live, func(x int) bool { return x == id })
		}

		// Publishes on the (still legal) configuration.
		for p := 1 + rng.IntN(3); p > 0; p-- {
			s.Steps = append(s.Steps, Step{
				Op: OpPublish, ID: pickLive(),
				Point: []float64{rng.Float64() * world, rng.Float64() * world},
			})
		}

		// Crashes (uncontrolled, repaired only by stabilization).
		for c := rng.IntN(3); c > 0 && len(live) > 3; c-- {
			id := pickLive()
			s.Steps = append(s.Steps, Step{Op: OpCrash, ID: id})
			live = slices.DeleteFunc(live, func(x int) bool { return x == id })
		}

		// State corruption: every kind of the paper's fault model.
		for k := 1 + rng.IntN(4); k > 0; k-- {
			id, h := pickLive(), rng.IntN(3)
			switch rng.IntN(4) {
			case 0:
				s.Steps = append(s.Steps, Step{Op: OpCorruptParent, ID: id, H: h, Parent: pickLive()})
			case 1:
				kids := []int{pickLive()}
				if rng.IntN(2) == 0 {
					kids = append(kids, id) // keep the own child sometimes
				}
				slices.Sort(kids)
				s.Steps = append(s.Steps, Step{Op: OpCorruptChildren, ID: id, H: 1 + rng.IntN(2), Children: kids})
			case 2:
				s.Steps = append(s.Steps, Step{Op: OpCorruptMBR, ID: id, H: h, Rect: randRect()})
			default:
				s.Steps = append(s.Steps, Step{Op: OpCorruptUnderloaded, ID: id, H: h})
			}
		}

		// Message-level faults for the wire protocol.
		if rng.IntN(2) == 0 {
			s.Steps = append(s.Steps, Step{Op: OpDropRate, Rate: 0.05 + rng.Float64()*0.2})
		}
		if rng.IntN(3) == 0 {
			s.Steps = append(s.Steps, Step{Op: OpDelay, Delay: 1 + rng.IntN(3)})
		}
		if rng.IntN(3) == 0 && len(live) >= 4 {
			cut := 1 + rng.IntN(len(live)-1)
			shuffled := slices.Clone(live)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			a, b := slices.Clone(shuffled[:cut]), slices.Clone(shuffled[cut:])
			slices.Sort(a)
			slices.Sort(b)
			s.Steps = append(s.Steps, Step{Op: OpPartition, Groups: [][]int{a, b}})
		}

		// Faults cease: converge and certify.
		s.Steps = append(s.Steps, Step{Op: OpSettle})
	}
	return s
}
