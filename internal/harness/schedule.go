// Package harness is the adversarial simulation subsystem: it generates
// deterministic, seed-driven schedules mixing overlay operations (joins,
// controlled leaves, crashes, publishes) with the paper's full transient
// fault model (§3.2: parent / children / MBR / underloaded corruption)
// plus message-level network faults (drops, per-link delays, partitions),
// drives the *same* schedule through both engines — the sequential
// DR-tree (internal/core) and the wire protocol (internal/proto over
// internal/simnet) — and certifies three invariants at every quiescent
// window:
//
//  1. convergence: once faults cease, each engine reaches a legal
//     configuration (Definition 3.1, Lemma 3.6) within a bounded number
//     of stabilization passes / protocol rounds;
//  2. no false negatives: dissemination delivers every event to every
//     matching subscriber, cross-checked against the centralized
//     internal/rtree baseline;
//  3. cross-engine agreement: both engines converge to the same live
//     membership, the same filters, and the same root MBR (= the union
//     of all live filters).
//
// A failing schedule is shrunk (delta debugging) to a minimal replayable
// artifact; `drtree-sim -replay file` re-runs it byte-identically.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Step operation kinds. The set covers every corruption helper of
// internal/core/corrupt.go, the overlay operations, and the simnet
// fault surface.
const (
	OpJoin               = "join"                // ID joins with filter Rect
	OpLeave              = "leave"               // controlled departure of ID
	OpCrash              = "crash"               // uncontrolled departure of ID
	OpPublish            = "publish"             // ID publishes event Point
	OpCorruptParent      = "corrupt-parent"      // instance (ID, H) parent := Parent
	OpCorruptChildren    = "corrupt-children"    // instance (ID, H) children := Children
	OpCorruptMBR         = "corrupt-mbr"         // instance (ID, H) MBR := Rect
	OpCorruptUnderloaded = "corrupt-underloaded" // flip underloaded of (ID, H)
	OpDropRate           = "drop-rate"           // network loses fraction Rate of messages
	OpDelay              = "delay"               // per-link jitter of 0..Delay extra rounds
	OpPartition          = "partition"           // sever links between Groups
	OpHeal               = "heal"                // remove the partition
	OpSettle             = "settle"              // faults cease: converge + certify
)

// Step is one schedule entry. Fields are meaningful per Op (see the Op
// constants); unused fields stay zero and are omitted from the artifact.
// Steps whose target does not exist at runtime (for example after
// shrinking removed the join that created it) degrade to no-ops, which
// keeps every sub-schedule of a valid schedule valid.
type Step struct {
	Op       string    `json:"op"`
	ID       int       `json:"id,omitempty"`
	H        int       `json:"h,omitempty"`
	Parent   int       `json:"parent,omitempty"`
	Children []int     `json:"children,omitempty"`
	Rect     []float64 `json:"rect,omitempty"`  // x1, y1, x2, y2
	Point    []float64 `json:"point,omitempty"` // x, y
	Rate     float64   `json:"rate,omitempty"`
	Delay    int       `json:"delay,omitempty"`
	Groups   [][]int   `json:"groups,omitempty"`
}

// Schedule is a complete, self-contained adversarial scenario: the tree
// parameters, the certification budgets, and the step list. Replaying
// the same schedule always produces the same outcome.
type Schedule struct {
	// Seed drives every derived random stream (probe sweeps, network
	// drop/delay sampling). The step list itself is already concrete.
	Seed uint64 `json:"seed"`
	// MinFanout / MaxFanout are the paper's m and M (M >= 2m).
	MinFanout int `json:"min_fanout"`
	MaxFanout int `json:"max_fanout"`
	// SettleRounds is the protocol-round budget for each settle window
	// (0 = a generous default derived from the population). Schedules
	// with a deliberately tiny budget are how the shrinker and replay
	// machinery are exercised against a reproducible violation.
	SettleRounds int `json:"settle_rounds,omitempty"`
	// Probes is the number of certification events swept per settle
	// window (default 4).
	Probes int    `json:"probes,omitempty"`
	Steps  []Step `json:"steps"`
}

// Encode renders the schedule as its canonical artifact bytes. Encoding
// is deterministic: Encode(Decode(b)) == b for any b produced by Encode.
func (s *Schedule) Encode() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Schedule contains only plain data; marshal cannot fail.
		panic(fmt.Sprintf("harness: encode: %v", err))
	}
	return append(out, '\n')
}

// Decode parses artifact bytes strictly (unknown fields are rejected, so
// a typo'd hand-edited artifact fails loudly instead of silently
// changing meaning).
func Decode(b []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: decode schedule: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the canonical artifact to path.
func (s *Schedule) Save(path string) error {
	return os.WriteFile(path, s.Encode(), 0o644)
}

// Load reads an artifact, verifying that re-encoding reproduces the file
// byte-for-byte (so a replayed schedule is exactly the saved one).
func Load(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(s.Encode(), b) {
		return nil, fmt.Errorf("harness: %s is not in canonical form (re-encode differs)", path)
	}
	return s, nil
}

func (s *Schedule) validate() error {
	if s.MinFanout < 1 {
		return fmt.Errorf("harness: MinFanout must be >= 1, got %d", s.MinFanout)
	}
	if s.MaxFanout < 2*s.MinFanout {
		return fmt.Errorf("harness: MaxFanout must be >= 2*MinFanout (m=%d, M=%d)",
			s.MinFanout, s.MaxFanout)
	}
	for i, st := range s.Steps {
		switch st.Op {
		case OpJoin:
			if len(st.Rect) != 4 {
				return fmt.Errorf("harness: step %d: join needs rect [x1 y1 x2 y2]", i)
			}
		case OpPublish:
			if len(st.Point) != 2 {
				return fmt.Errorf("harness: step %d: publish needs point [x y]", i)
			}
		case OpCorruptMBR:
			if len(st.Rect) != 4 {
				return fmt.Errorf("harness: step %d: corrupt-mbr needs rect [x1 y1 x2 y2]", i)
			}
		case OpDropRate:
			if st.Rate < 0 || st.Rate >= 1 {
				return fmt.Errorf("harness: step %d: drop rate %g out of [0,1)", i, st.Rate)
			}
		case OpLeave, OpCrash, OpCorruptParent, OpCorruptChildren,
			OpCorruptUnderloaded, OpDelay, OpPartition, OpHeal, OpSettle:
		default:
			return fmt.Errorf("harness: step %d: unknown op %q", i, st.Op)
		}
	}
	return nil
}

// Counts summarizes a schedule's composition (for logs and reports).
func (s *Schedule) Counts() map[string]int {
	out := make(map[string]int)
	for _, st := range s.Steps {
		out[st.Op]++
	}
	return out
}
