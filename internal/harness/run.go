package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/rtree"
	"drtree/internal/simnet"
	"drtree/internal/split"
)

// Violation is a certified invariant failure: which step surfaced it, in
// which engine, and what broke. It is the error type Run returns for
// schedule outcomes (as opposed to malformed-schedule errors).
type Violation struct {
	StepIndex int    // index into Schedule.Steps (the settle or publish step)
	Engine    string // "core", "proto", "baseline" or "cross"
	Kind      string // "convergence", "legality", "false-negative", "membership", "root-mbr", "baseline"
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("step %d [%s/%s]: %s", v.StepIndex, v.Engine, v.Kind, v.Detail)
}

// AsViolation unwraps err into a *Violation if it is one.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Report summarizes a certified run.
type Report struct {
	Steps       int
	Settles     int
	ProbeEvents int
	Joins       int
	Leaves      int
	Crashes     int
	Corruptions int
	// CorePasses is the total number of sequential stabilization passes
	// consumed; ProtoRounds the total protocol rounds.
	CorePasses  int
	ProtoRounds int
}

func (r Report) String() string {
	return fmt.Sprintf("steps=%d settles=%d probes=%d joins=%d leaves=%d crashes=%d corruptions=%d core-passes=%d proto-rounds=%d",
		r.Steps, r.Settles, r.ProbeEvents, r.Joins, r.Leaves, r.Crashes, r.Corruptions, r.CorePasses, r.ProtoRounds)
}

// runner drives one schedule through both engines plus the centralized
// baseline.
type runner struct {
	s    *Schedule
	tr   *core.Tree
	cl   *proto.Cluster
	base *rtree.Tree
	live map[int]geom.Rect
	// coreDirty marks that crashes or corruptions have been applied to
	// the sequential engine since its last stabilization; the sequential
	// rules (join routing, publish climbing) are defined on legal-ish
	// states, so the runner lets the periodic checks run first — exactly
	// as the paper interleaves operations with the CHECK_* timers.
	coreDirty bool
	settles   int
	rep       *Report
}

// Run replays a schedule through the sequential engine and the wire
// protocol, certifying the three harness invariants at every settle
// window. It returns a *Violation error when an invariant fails, a plain
// error for malformed schedules, and the run report otherwise.
func Run(s *Schedule) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	tr, err := core.New(core.Params{MinFanout: s.MinFanout, MaxFanout: s.MaxFanout})
	if err != nil {
		return nil, err
	}
	cl, err := proto.NewCluster(proto.Config{MinFanout: s.MinFanout, MaxFanout: s.MaxFanout})
	if err != nil {
		return nil, err
	}
	base, err := rtree.New(s.MinFanout, s.MaxFanout, split.Quadratic{})
	if err != nil {
		return nil, err
	}
	cl.Net().Rand = rand.New(rand.NewPCG(s.Seed, 0x5EED))

	r := &runner{s: s, tr: tr, cl: cl, base: base, live: make(map[int]geom.Rect), rep: &Report{}}
	for i, st := range s.Steps {
		r.rep.Steps++
		if err := r.step(i, st); err != nil {
			return r.rep, err
		}
	}
	return r.rep, nil
}

func (r *runner) sortedLive() []int {
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// settleBudget is the protocol-round budget of one settle window.
func (r *runner) settleBudget() int {
	if r.s.SettleRounds > 0 {
		return r.s.SettleRounds
	}
	return 800 + 200*len(r.live)
}

func rectOf(xs []float64) geom.Rect { return geom.R2(xs[0], xs[1], xs[2], xs[3]) }

func procIDs(xs []int) []core.ProcID {
	out := make([]core.ProcID, len(xs))
	for i, x := range xs {
		out[i] = core.ProcID(x)
	}
	return out
}

func (r *runner) step(i int, st Step) error {
	switch st.Op {
	case OpJoin:
		if _, ok := r.live[st.ID]; ok || st.ID <= 0 {
			return nil
		}
		if err := r.stabilizeCore(i); err != nil {
			return err
		}
		f := rectOf(st.Rect)
		if _, err := r.tr.Join(core.ProcID(st.ID), f); err != nil {
			return fmt.Errorf("harness: step %d: core join: %w", i, err)
		}
		if err := r.cl.Join(core.ProcID(st.ID), f); err != nil {
			return fmt.Errorf("harness: step %d: proto join: %w", i, err)
		}
		if err := r.base.Insert(f, st.ID); err != nil {
			return fmt.Errorf("harness: step %d: baseline insert: %w", i, err)
		}
		r.live[st.ID] = f
		r.rep.Joins++
		r.cl.Step(false)

	case OpLeave:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		if err := r.stabilizeCore(i); err != nil {
			return err
		}
		if _, err := r.tr.Leave(core.ProcID(st.ID)); err != nil {
			return fmt.Errorf("harness: step %d: core leave: %w", i, err)
		}
		if err := r.cl.Leave(core.ProcID(st.ID)); err != nil {
			return fmt.Errorf("harness: step %d: proto leave: %w", i, err)
		}
		r.baselineDelete(st.ID)
		delete(r.live, st.ID)
		r.rep.Leaves++
		r.cl.Step(false)

	case OpCrash:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		if err := r.tr.Crash(core.ProcID(st.ID)); err != nil {
			return fmt.Errorf("harness: step %d: core crash: %w", i, err)
		}
		if err := r.cl.Crash(core.ProcID(st.ID)); err != nil {
			return fmt.Errorf("harness: step %d: proto crash: %w", i, err)
		}
		r.baselineDelete(st.ID)
		delete(r.live, st.ID)
		r.coreDirty = true
		r.rep.Crashes++

	case OpPublish:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		if err := r.stabilizeCore(i); err != nil {
			return err
		}
		if err := r.publishCore(i, st.ID, geom.Point(st.Point)); err != nil {
			return err
		}
		// The wire protocol may legitimately miss subscribers whose
		// (re-)join is still in flight mid-schedule; its zero-false-
		// negative obligation is certified on the settled configuration.
		if _, err := r.cl.Publish(core.ProcID(st.ID), geom.Point(st.Point), r.settleBudget()); err != nil {
			return fmt.Errorf("harness: step %d: proto publish: %w", i, err)
		}
		r.rep.ProbeEvents++

	case OpCorruptParent:
		_ = r.tr.CorruptParent(core.ProcID(st.ID), st.H, core.ProcID(st.Parent))
		_ = r.cl.CorruptParent(core.ProcID(st.ID), st.H, core.ProcID(st.Parent))
		r.coreDirty = true
		r.rep.Corruptions++
	case OpCorruptChildren:
		_ = r.tr.CorruptChildren(core.ProcID(st.ID), st.H, procIDs(st.Children))
		_ = r.cl.CorruptChildren(core.ProcID(st.ID), st.H, procIDs(st.Children))
		r.coreDirty = true
		r.rep.Corruptions++
	case OpCorruptMBR:
		_ = r.tr.CorruptMBR(core.ProcID(st.ID), st.H, rectOf(st.Rect))
		_ = r.cl.CorruptMBR(core.ProcID(st.ID), st.H, rectOf(st.Rect))
		r.coreDirty = true
		r.rep.Corruptions++
	case OpCorruptUnderloaded:
		_ = r.tr.CorruptUnderloaded(core.ProcID(st.ID), st.H)
		_ = r.cl.CorruptUnderloaded(core.ProcID(st.ID), st.H)
		r.coreDirty = true
		r.rep.Corruptions++

	case OpDropRate:
		r.cl.Net().DropRate = st.Rate
	case OpDelay:
		r.cl.Net().DelayMax = st.Delay
	case OpPartition:
		groups := make([][]simnet.NodeID, len(st.Groups))
		for g, ids := range st.Groups {
			for _, id := range ids {
				groups[g] = append(groups[g], simnet.NodeID(id))
			}
		}
		r.cl.Net().Partition(groups...)
	case OpHeal:
		r.cl.Net().Heal()

	case OpSettle:
		return r.settle(i)
	}
	return nil
}

// stabilizeCore runs the sequential periodic checks if faults were
// injected since the last run, certifying convergence and legality.
func (r *runner) stabilizeCore(i int) error {
	if !r.coreDirty {
		return nil
	}
	st := r.tr.Stabilize()
	r.rep.CorePasses += st.Passes
	r.coreDirty = false
	if !st.Converged {
		return &Violation{StepIndex: i, Engine: "core", Kind: "convergence",
			Detail: fmt.Sprintf("stabilization hit the pass limit after %d passes", st.Passes)}
	}
	if err := r.tr.CheckLegal(); err != nil {
		return &Violation{StepIndex: i, Engine: "core", Kind: "legality", Detail: err.Error()}
	}
	return nil
}

// publishCore disseminates one event through the sequential engine and
// certifies zero false negatives against the subscriber filters.
func (r *runner) publishCore(i, producer int, ev geom.Point) error {
	d, err := r.tr.Publish(core.ProcID(producer), ev)
	if err != nil {
		return fmt.Errorf("harness: step %d: core publish: %w", i, err)
	}
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	for _, id := range r.sortedLive() {
		if r.live[id].ContainsPoint(ev) && !got[core.ProcID(id)] {
			return &Violation{StepIndex: i, Engine: "core", Kind: "false-negative",
				Detail: fmt.Sprintf("event %v from %d missed matching subscriber %d", ev, producer, id)}
		}
	}
	return nil
}

// settle is the quiescent window: message-level faults cease, both
// engines converge, and the three invariants are certified.
func (r *runner) settle(i int) error {
	r.settles++
	r.rep.Settles++

	// Faults cease for the window (the self-stabilization contract is
	// convergence once transient faults stop).
	net := r.cl.Net()
	net.DropRate = 0
	net.DelayMax = 0
	net.Delay = nil
	net.Heal()

	// Invariant 1a: the sequential engine converges to a legal state.
	r.coreDirty = true
	if err := r.stabilizeCore(i); err != nil {
		return err
	}

	// Invariant 1b: the wire protocol converges within the round budget.
	rounds, ok := r.cl.RunUntilStable(r.settleBudget())
	r.rep.ProtoRounds += rounds
	if !ok {
		detail := "network never drained"
		if err := r.cl.CheckLegal(); err != nil {
			detail = err.Error()
		}
		return &Violation{StepIndex: i, Engine: "proto", Kind: "convergence",
			Detail: fmt.Sprintf("not stable after %d rounds (budget %d): %s", rounds, r.settleBudget(), detail)}
	}
	if err := r.cl.CheckLegal(); err != nil {
		return &Violation{StepIndex: i, Engine: "proto", Kind: "legality", Detail: err.Error()}
	}

	// Invariant 3: cross-engine agreement — membership, filters, root MBR.
	ids := r.sortedLive()
	coreIDs, protoIDs := r.tr.ProcIDs(), r.cl.IDs()
	if len(coreIDs) != len(ids) || len(protoIDs) != len(ids) {
		return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
			Detail: fmt.Sprintf("live=%d core=%d proto=%d", len(ids), len(coreIDs), len(protoIDs))}
	}
	var union geom.Rect
	for k, id := range ids {
		if int(coreIDs[k]) != id || int(protoIDs[k]) != id {
			return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
				Detail: fmt.Sprintf("member %d: core has %d, proto has %d", id, coreIDs[k], protoIDs[k])}
		}
		cf, _ := r.tr.Filter(core.ProcID(id))
		pf := r.cl.Node(core.ProcID(id)).Filter()
		if !cf.Equal(r.live[id]) || !pf.Equal(r.live[id]) {
			return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
				Detail: fmt.Sprintf("filter of %d diverged (core %v, proto %v, want %v)", id, cf, pf, r.live[id])}
		}
		union = union.Union(r.live[id])
	}
	if cm := r.tr.RootMBR(); !cm.Equal(union) {
		return &Violation{StepIndex: i, Engine: "cross", Kind: "root-mbr",
			Detail: fmt.Sprintf("core root MBR %v != filter union %v", cm, union)}
	}
	if pm := r.cl.RootMBR(); !pm.Equal(union) {
		return &Violation{StepIndex: i, Engine: "cross", Kind: "root-mbr",
			Detail: fmt.Sprintf("proto root MBR %v != filter union %v", pm, union)}
	}

	// Invariant 2: zero false negatives, certified against both the
	// incrementally maintained and a freshly rebuilt centralized R-tree.
	if err := r.base.CheckInvariants(); err != nil {
		return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline", Detail: err.Error()}
	}
	fresh, err := rtree.New(r.s.MinFanout, r.s.MaxFanout, split.Quadratic{})
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := fresh.Insert(r.live[id], id); err != nil {
			return err
		}
	}
	if len(ids) == 0 {
		return nil
	}
	producer := ids[0]
	probes := r.s.Probes
	if probes <= 0 {
		probes = 4
	}
	rng := rand.New(rand.NewPCG(r.s.Seed, 0xAB0^uint64(r.settles)))
	for p := 0; p < probes; p++ {
		ev := r.probePoint(rng, ids)
		truth := make(map[int]bool)
		for _, id := range ids {
			if r.live[id].ContainsPoint(ev) {
				truth[id] = true
			}
		}
		baselines := []struct {
			name string
			t    *rtree.Tree
		}{{"incremental", r.base}, {"rebuilt", fresh}}
		for _, b := range baselines {
			name, t := b.name, b.t
			found := make(map[int]bool)
			for _, v := range t.SearchPoint(ev) {
				found[v.(int)] = true
			}
			if len(found) != len(truth) {
				return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline",
					Detail: fmt.Sprintf("%s R-tree found %d matches for %v, filters say %d", name, len(found), ev, len(truth))}
			}
			for id := range truth {
				if !found[id] {
					return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline",
						Detail: fmt.Sprintf("%s R-tree missed subscriber %d for %v", name, id, ev)}
				}
			}
		}
		if err := r.publishCore(i, producer, ev); err != nil {
			return err
		}
		res, err := r.cl.Publish(core.ProcID(producer), ev, r.settleBudget())
		if err != nil {
			return fmt.Errorf("harness: step %d: proto probe publish: %w", i, err)
		}
		if res.FalseNegatives != 0 {
			return &Violation{StepIndex: i, Engine: "proto", Kind: "false-negative",
				Detail: fmt.Sprintf("event %v from %d missed %d matching subscribers", ev, producer, res.FalseNegatives)}
		}
		r.rep.ProbeEvents++
	}
	return nil
}

// probePoint draws a certification event: half uniform over the world,
// half targeted inside a random live filter (so probes exercise both
// empty and dense regions).
func (r *runner) probePoint(rng *rand.Rand, ids []int) geom.Point {
	if rng.IntN(2) == 0 || len(ids) == 0 {
		return geom.Point{rng.Float64() * 500, rng.Float64() * 500}
	}
	f := r.live[ids[rng.IntN(len(ids))]]
	x := f.Lo(0) + rng.Float64()*(f.Hi(0)-f.Lo(0))
	y := f.Lo(1) + rng.Float64()*(f.Hi(1)-f.Lo(1))
	return geom.Point{x, y}
}

func (r *runner) baselineDelete(id int) {
	ok, err := r.base.Delete(r.live[id], id)
	if err != nil || !ok {
		panic(fmt.Sprintf("harness: baseline lost track of subscriber %d (ok=%v err=%v)", id, ok, err))
	}
}
