package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/rtree"
	"drtree/internal/simnet"
	"drtree/internal/split"
)

// Violation is a certified invariant failure: which step surfaced it, in
// which engine, and what broke. It is the error type Run returns for
// schedule outcomes (as opposed to malformed-schedule errors).
type Violation struct {
	StepIndex int    // index into Schedule.Steps (the settle or publish step)
	Engine    string // engine name, "baseline", "cross", or "durable" (CertifyRecovery)
	Kind      string // "convergence", "legality", "false-negative", "membership", "root-mbr", "baseline", "recovery"
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("step %d [%s/%s]: %s", v.StepIndex, v.Engine, v.Kind, v.Detail)
}

// AsViolation unwraps err into a *Violation if it is one.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Report summarizes a certified run.
type Report struct {
	Steps       int
	Settles     int
	ProbeEvents int
	Joins       int
	Leaves      int
	Crashes     int
	Corruptions int
	// CorePasses is the total number of synchronous stabilization passes
	// consumed; ProtoRounds the total protocol rounds across the
	// asynchronous engines.
	CorePasses  int
	ProtoRounds int
}

func (r Report) String() string {
	return fmt.Sprintf("steps=%d settles=%d probes=%d joins=%d leaves=%d crashes=%d corruptions=%d core-passes=%d proto-rounds=%d",
		r.Steps, r.Settles, r.ProbeEvents, r.Joins, r.Leaves, r.Crashes, r.Corruptions, r.CorePasses, r.ProtoRounds)
}

// NamedEngine is one row of the conformance matrix: an overlay engine
// under certification.
type NamedEngine struct {
	// Name labels violations ("core", "proto", ...).
	Name string
	// E is the engine, consumed exclusively through the interface.
	E engine.Engine
	// Async marks message-passing engines whose operations complete in
	// the background: the runner certifies their zero-false-negative
	// obligation only on settled configurations (a mid-schedule join may
	// legitimately still be routing) and lets their own periodic checks
	// repair faults. Synchronous engines are instead lazily stabilized —
	// and certified — before each operation that assumes a legal-ish
	// state, exactly as the paper interleaves operations with the
	// CHECK_* timers.
	Async bool
}

// runner drives one schedule through the engine matrix plus the
// centralized baseline.
type runner struct {
	s       *Schedule
	engines []NamedEngine
	base    *rtree.Tree
	live    map[int]geom.Rect
	// dirty marks, per synchronous engine, that crashes or corruptions
	// were applied since its last stabilization.
	dirty   map[string]bool
	settles int
	rep     *Report
}

// Run replays a schedule through the default conformance matrix — the
// sequential engine and the wire protocol — certifying the three harness
// invariants at every settle window. It returns a *Violation error when
// an invariant fails, a plain error for malformed schedules, and the run
// report otherwise.
func Run(s *Schedule) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	tr, err := core.New(core.Params{MinFanout: s.MinFanout, MaxFanout: s.MaxFanout})
	if err != nil {
		return nil, err
	}
	cl, err := proto.NewCluster(proto.Config{
		MinFanout: s.MinFanout, MaxFanout: s.MaxFanout,
		PublishBudget: s.SettleRounds, StabilizeBudget: s.SettleRounds,
	})
	if err != nil {
		return nil, err
	}
	cl.Net().Rand = rand.New(rand.NewPCG(s.Seed, 0x5EED))
	return RunEngines(s, []NamedEngine{
		{Name: "core", E: tr},
		{Name: "proto", E: cl, Async: true},
	})
}

// RunEngines is Run over an arbitrary engine matrix: adding a new engine
// to the certification is one more NamedEngine row. Engine names must be
// unique and non-empty.
func RunEngines(s *Schedule, engines []NamedEngine) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("harness: empty engine matrix")
	}
	seen := make(map[string]bool, len(engines))
	for _, ne := range engines {
		if ne.Name == "" || ne.E == nil || seen[ne.Name] {
			return nil, fmt.Errorf("harness: engine matrix needs unique names and non-nil engines")
		}
		seen[ne.Name] = true
	}
	base, err := rtree.New(s.MinFanout, s.MaxFanout, split.Quadratic{})
	if err != nil {
		return nil, err
	}
	r := &runner{
		s: s, engines: engines, base: base,
		live:  make(map[int]geom.Rect),
		dirty: make(map[string]bool),
		rep:   &Report{},
	}
	for i, st := range s.Steps {
		r.rep.Steps++
		if err := r.step(i, st); err != nil {
			return r.rep, err
		}
	}
	return r.rep, nil
}

func (r *runner) sortedLive() []int {
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// settleBudget is the protocol-round budget of one settle window.
func (r *runner) settleBudget() int {
	if r.s.SettleRounds > 0 {
		return r.s.SettleRounds
	}
	return 800 + 200*len(r.live)
}

func rectOf(xs []float64) geom.Rect { return geom.R2(xs[0], xs[1], xs[2], xs[3]) }

func procIDs(xs []int) []core.ProcID {
	out := make([]core.ProcID, len(xs))
	for i, x := range xs {
		out[i] = core.ProcID(x)
	}
	return out
}

// eachNetworked applies fn to every engine exposing the simulated
// network (message-level fault injection).
func (r *runner) eachNetworked(fn func(*simnet.Network)) {
	for _, ne := range r.engines {
		if net, ok := ne.E.(engine.NetworkedEngine); ok {
			fn(net.Net())
		}
	}
}

// stabilizeSync runs a synchronous engine's periodic checks if faults
// were injected since its last run, certifying convergence and legality.
func (r *runner) stabilizeSync(i int, ne NamedEngine) error {
	if ne.Async || !r.dirty[ne.Name] {
		return nil
	}
	st := ne.E.Stabilize()
	r.rep.CorePasses += st.Passes
	r.dirty[ne.Name] = false
	if !st.Converged {
		return &Violation{StepIndex: i, Engine: ne.Name, Kind: "convergence",
			Detail: fmt.Sprintf("stabilization hit the pass limit after %d passes", st.Passes)}
	}
	if err := ne.E.CheckLegal(); err != nil {
		return &Violation{StepIndex: i, Engine: ne.Name, Kind: "legality", Detail: err.Error()}
	}
	return nil
}

// stabilizeAllSync lazily stabilizes every synchronous engine (before
// operations that assume a legal-ish state).
func (r *runner) stabilizeAllSync(i int) error {
	for _, ne := range r.engines {
		if err := r.stabilizeSync(i, ne); err != nil {
			return err
		}
	}
	return nil
}

// stepAfterOp advances round-based engines one round so a just-submitted
// operation starts routing (mirrors the paper's asynchronous rounds).
func (r *runner) stepAfterOp() {
	for _, ne := range r.engines {
		if st, ok := ne.E.(engine.SteppedEngine); ok {
			st.Step(false)
		}
	}
}

// certifyNoFalseNegatives checks d against the live filter map.
func (r *runner) certifyNoFalseNegatives(i int, name string, producer int, ev geom.Point, d core.Delivery) error {
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	for _, id := range r.sortedLive() {
		if r.live[id].ContainsPoint(ev) && !got[core.ProcID(id)] {
			return &Violation{StepIndex: i, Engine: name, Kind: "false-negative",
				Detail: fmt.Sprintf("event %v from %d missed matching subscriber %d", ev, producer, id)}
		}
	}
	return nil
}

// markDirty flags every synchronous engine for lazy stabilization.
func (r *runner) markDirty() {
	for _, ne := range r.engines {
		if !ne.Async {
			r.dirty[ne.Name] = true
		}
	}
}

func (r *runner) step(i int, st Step) error {
	switch st.Op {
	case OpJoin:
		if _, ok := r.live[st.ID]; ok || st.ID <= 0 {
			return nil
		}
		if err := r.stabilizeAllSync(i); err != nil {
			return err
		}
		f := rectOf(st.Rect)
		for _, ne := range r.engines {
			if err := ne.E.Join(core.ProcID(st.ID), f); err != nil {
				return fmt.Errorf("harness: step %d: %s join: %w", i, ne.Name, err)
			}
		}
		if err := r.base.Insert(f, st.ID); err != nil {
			return fmt.Errorf("harness: step %d: baseline insert: %w", i, err)
		}
		r.live[st.ID] = f
		r.rep.Joins++
		r.stepAfterOp()

	case OpLeave:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		if err := r.stabilizeAllSync(i); err != nil {
			return err
		}
		for _, ne := range r.engines {
			if err := ne.E.Leave(core.ProcID(st.ID)); err != nil {
				return fmt.Errorf("harness: step %d: %s leave: %w", i, ne.Name, err)
			}
		}
		r.baselineDelete(st.ID)
		delete(r.live, st.ID)
		r.rep.Leaves++
		r.stepAfterOp()

	case OpCrash:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		for _, ne := range r.engines {
			if err := ne.E.Crash(core.ProcID(st.ID)); err != nil {
				return fmt.Errorf("harness: step %d: %s crash: %w", i, ne.Name, err)
			}
		}
		r.baselineDelete(st.ID)
		delete(r.live, st.ID)
		r.markDirty()
		r.rep.Crashes++

	case OpPublish:
		if _, ok := r.live[st.ID]; !ok {
			return nil
		}
		if err := r.stabilizeAllSync(i); err != nil {
			return err
		}
		for _, ne := range r.engines {
			d, err := ne.E.Publish(core.ProcID(st.ID), geom.Point(st.Point))
			if err != nil {
				return fmt.Errorf("harness: step %d: %s publish: %w", i, ne.Name, err)
			}
			// Asynchronous engines may legitimately miss subscribers
			// whose (re-)join is still in flight mid-schedule; their
			// zero-false-negative obligation is certified on the settled
			// configuration.
			if ne.Async {
				continue
			}
			if err := r.certifyNoFalseNegatives(i, ne.Name, st.ID, geom.Point(st.Point), d); err != nil {
				return err
			}
		}
		r.rep.ProbeEvents++

	case OpCorruptParent:
		for _, ne := range r.engines {
			_ = ne.E.CorruptParent(core.ProcID(st.ID), st.H, core.ProcID(st.Parent))
		}
		r.markDirty()
		r.rep.Corruptions++
	case OpCorruptChildren:
		for _, ne := range r.engines {
			_ = ne.E.CorruptChildren(core.ProcID(st.ID), st.H, procIDs(st.Children))
		}
		r.markDirty()
		r.rep.Corruptions++
	case OpCorruptMBR:
		for _, ne := range r.engines {
			_ = ne.E.CorruptMBR(core.ProcID(st.ID), st.H, rectOf(st.Rect))
		}
		r.markDirty()
		r.rep.Corruptions++
	case OpCorruptUnderloaded:
		for _, ne := range r.engines {
			_ = ne.E.CorruptUnderloaded(core.ProcID(st.ID), st.H)
		}
		r.markDirty()
		r.rep.Corruptions++

	case OpDropRate:
		r.eachNetworked(func(net *simnet.Network) { net.DropRate = st.Rate })
	case OpDelay:
		r.eachNetworked(func(net *simnet.Network) { net.DelayMax = st.Delay })
	case OpPartition:
		groups := make([][]simnet.NodeID, len(st.Groups))
		for g, ids := range st.Groups {
			for _, id := range ids {
				groups[g] = append(groups[g], simnet.NodeID(id))
			}
		}
		r.eachNetworked(func(net *simnet.Network) { net.Partition(groups...) })
	case OpHeal:
		r.eachNetworked(func(net *simnet.Network) { net.Heal() })

	case OpSettle:
		return r.settle(i)
	}
	return nil
}

// settle is the quiescent window: message-level faults cease, every
// engine converges, and the three invariants are certified.
func (r *runner) settle(i int) error {
	r.settles++
	r.rep.Settles++

	// Faults cease for the window (the self-stabilization contract is
	// convergence once transient faults stop).
	r.eachNetworked(func(net *simnet.Network) {
		net.DropRate = 0
		net.DelayMax = 0
		net.Delay = nil
		net.Heal()
	})

	// Invariant 1: every engine converges to a legal state.
	for _, ne := range r.engines {
		if !ne.Async {
			r.dirty[ne.Name] = true
			if err := r.stabilizeSync(i, ne); err != nil {
				return err
			}
			continue
		}
		st := ne.E.Stabilize()
		r.rep.ProtoRounds += st.Rounds
		if !st.Converged {
			detail := "network never drained"
			if err := ne.E.CheckLegal(); err != nil {
				detail = err.Error()
			}
			return &Violation{StepIndex: i, Engine: ne.Name, Kind: "convergence",
				Detail: fmt.Sprintf("not stable after %d rounds (budget %d): %s", st.Rounds, r.settleBudget(), detail)}
		}
		if err := ne.E.CheckLegal(); err != nil {
			return &Violation{StepIndex: i, Engine: ne.Name, Kind: "legality", Detail: err.Error()}
		}
	}

	// Invariant 3: cross-engine agreement — membership, filters, root MBR.
	ids := r.sortedLive()
	var union geom.Rect
	for _, id := range ids {
		union = union.Union(r.live[id])
	}
	for _, ne := range r.engines {
		engIDs := ne.E.ProcIDs()
		if len(engIDs) != len(ids) {
			return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
				Detail: fmt.Sprintf("live=%d %s=%d", len(ids), ne.Name, len(engIDs))}
		}
		for k, id := range ids {
			if int(engIDs[k]) != id {
				return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
					Detail: fmt.Sprintf("member %d: %s has %d", id, ne.Name, engIDs[k])}
			}
			f, ok := ne.E.Filter(core.ProcID(id))
			if !ok || !f.Equal(r.live[id]) {
				return &Violation{StepIndex: i, Engine: "cross", Kind: "membership",
					Detail: fmt.Sprintf("filter of %d diverged (%s %v, want %v)", id, ne.Name, f, r.live[id])}
			}
		}
		if m := ne.E.RootMBR(); !m.Equal(union) {
			return &Violation{StepIndex: i, Engine: "cross", Kind: "root-mbr",
				Detail: fmt.Sprintf("%s root MBR %v != filter union %v", ne.Name, m, union)}
		}
	}

	// Invariant 2: zero false negatives, certified against both the
	// incrementally maintained and a freshly rebuilt centralized R-tree.
	if err := r.base.CheckInvariants(); err != nil {
		return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline", Detail: err.Error()}
	}
	fresh, err := rtree.New(r.s.MinFanout, r.s.MaxFanout, split.Quadratic{})
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := fresh.Insert(r.live[id], id); err != nil {
			return err
		}
	}
	if len(ids) == 0 {
		return nil
	}
	producer := ids[0]
	probes := r.s.Probes
	if probes <= 0 {
		probes = 4
	}
	rng := rand.New(rand.NewPCG(r.s.Seed, 0xAB0^uint64(r.settles)))
	for p := 0; p < probes; p++ {
		ev := r.probePoint(rng, ids)
		truth := make(map[int]bool)
		for _, id := range ids {
			if r.live[id].ContainsPoint(ev) {
				truth[id] = true
			}
		}
		baselines := []struct {
			name string
			t    *rtree.Tree
		}{{"incremental", r.base}, {"rebuilt", fresh}}
		for _, b := range baselines {
			name, t := b.name, b.t
			found := make(map[int]bool)
			for _, v := range t.SearchPoint(ev) {
				found[v.(int)] = true
			}
			if len(found) != len(truth) {
				return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline",
					Detail: fmt.Sprintf("%s R-tree found %d matches for %v, filters say %d", name, len(found), ev, len(truth))}
			}
			for id := range truth {
				if !found[id] {
					return &Violation{StepIndex: i, Engine: "baseline", Kind: "baseline",
						Detail: fmt.Sprintf("%s R-tree missed subscriber %d for %v", name, id, ev)}
				}
			}
		}
		for _, ne := range r.engines {
			d, err := ne.E.Publish(core.ProcID(producer), ev)
			if err != nil {
				return fmt.Errorf("harness: step %d: %s probe publish: %w", i, ne.Name, err)
			}
			if err := r.certifyNoFalseNegatives(i, ne.Name, producer, ev, d); err != nil {
				return err
			}
		}
		r.rep.ProbeEvents++
	}
	return nil
}

// probePoint draws a certification event: half uniform over the world,
// half targeted inside a random live filter (so probes exercise both
// empty and dense regions).
func (r *runner) probePoint(rng *rand.Rand, ids []int) geom.Point {
	if rng.IntN(2) == 0 || len(ids) == 0 {
		return geom.Point{rng.Float64() * 500, rng.Float64() * 500}
	}
	f := r.live[ids[rng.IntN(len(ids))]]
	x := f.Lo(0) + rng.Float64()*(f.Hi(0)-f.Lo(0))
	y := f.Lo(1) + rng.Float64()*(f.Hi(1)-f.Lo(1))
	return geom.Point{x, y}
}

func (r *runner) baselineDelete(id int) {
	ok, err := r.base.Delete(r.live[id], id)
	if err != nil || !ok {
		panic(fmt.Sprintf("harness: baseline lost track of subscriber %d (ok=%v err=%v)", id, ok, err))
	}
}
