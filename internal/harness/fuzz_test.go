package harness

import (
	"bytes"
	"testing"
)

// FuzzCertify is the go test -fuzz entry point for the adversarial
// harness: every fuzz input names a seeded schedule shape, and the
// certifier must accept it — any invariant violation is a finding.
// Without -fuzz the seed corpus below runs as a fast regression.
func FuzzCertify(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(12), uint8(2))
	f.Add(uint64(3), uint8(32), uint8(5))
	f.Add(uint64(99), uint8(48), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, maxProcs, epochs uint8) {
		cfg := GenConfig{
			MaxProcs: int(maxProcs%56) + 4,
			Epochs:   int(epochs%6) + 1,
		}
		s := Generate(seed, cfg)
		if _, err := Run(s); err != nil {
			if v, ok := AsViolation(err); ok {
				min := Shrink(s, 120)
				t.Fatalf("seed %d cfg %+v violates: %v\nminimized artifact:\n%s",
					seed, cfg, v, min.Encode())
			}
			t.Fatalf("seed %d cfg %+v: %v", seed, cfg, err)
		}
	})
}

// FuzzDecode hardens the artifact codec: arbitrary bytes must never
// panic, and anything that decodes must re-encode canonically
// (Decode∘Encode is the identity on its image).
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add(Generate(1, GenConfig{}).Encode())
	f.Add([]byte(`{"seed":7,"min_fanout":2,"max_fanout":4,"steps":[{"op":"settle"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		b := s.Encode()
		s2, err := Decode(b)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v", err)
		}
		if !bytes.Equal(s2.Encode(), b) {
			t.Fatal("Encode∘Decode is not idempotent")
		}
	})
}
