package harness

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/pubsub"
	"drtree/internal/state"
)

// StoreOpener produces the next incarnation of a durable store. It is
// called once before the first broker incarnation and once after every
// simulated crash; the implementation decides what "reopen" means — the
// same *state.Mem instance (the in-memory store survives Close, so it
// models a disk), or closing the previous *state.WAL handle and running
// state.OpenWAL on the directory again (which re-exercises the scan /
// torn-tail-truncate path on every restart).
type StoreOpener func() (state.Store, error)

// RecoveryReport summarizes one CertifyRecovery run.
type RecoveryReport struct {
	Steps     int
	Crashes   int            // broker incarnations killed (one per settle)
	Probes    int            // post-recovery certification events published
	Recovered int            // subscribers recovered, summed over restarts
	Snapshots int            // restarts whose baseline was a snapshot
	Skipped   map[string]int // ops outside the durable control plane
}

func (r RecoveryReport) String() string {
	return fmt.Sprintf("steps=%d crashes=%d probes=%d recovered=%d snapshots=%d",
		r.Steps, r.Crashes, r.Probes, r.Recovered, r.Snapshots)
}

// recoverRunner carries one CertifyRecovery run: the current broker
// incarnation plus the oracle — the subscription set that a crash must
// not lose.
type recoverRunner struct {
	s     *Schedule
	space *filter.Space
	open  StoreOpener
	opts  []pubsub.Option
	store state.Store
	b     *pubsub.Broker
	live  map[int]filter.Filter
	rep   *RecoveryReport
}

// CertifyRecovery replays a schedule's control-plane operations against
// a durable broker and certifies crash recovery at every settle window:
// the broker incarnation is abandoned where it stands (never shut down,
// so nothing is flushed on the way out), the store is reopened through
// the opener, a fresh broker recovers from it, and the recovered state
// must (a) contain exactly the subscriptions the oracle says are live
// and (b) route a deterministic probe sweep with zero false negatives
// against that oracle.
//
// The mapping from schedule to control plane: join is subscribe (a
// re-join is a filter update), leave is unsubscribe, crash is an
// uncontrolled subscriber failure (Broker.Fail), publish is an
// in-flight routing check. Corruption and network-fault ops target the
// overlay fault model, not the durable subscription state, and are
// counted in Skipped rather than applied — the overlay they would
// corrupt does not survive the crash anyway; recovery rebuilds it from
// the journal.
//
// Even-numbered settle windows checkpoint (snapshot + compact) before
// the kill, so one run certifies both recovery baselines: snapshot plus
// journal suffix, and cold journal replay.
//
// opts configure every broker incarnation (default a fixed 4-gateway
// pool). Passing pubsub.WithGatewayPolicy certifies the adaptive tier's
// durability too: on every restart the recovered pool size and the
// per-subscriber gateway assignment must match the pre-crash broker
// exactly, not just the subscription set.
func CertifyRecovery(s *Schedule, open StoreOpener, opts ...pubsub.Option) (*RecoveryReport, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(opts) == 0 {
		opts = []pubsub.Option{pubsub.WithGateways(4)}
	}
	r := &recoverRunner{
		s:     s,
		space: filter.MustSpace("x", "y"),
		open:  open,
		opts:  opts,
		live:  make(map[int]filter.Filter),
		rep:   &RecoveryReport{Skipped: make(map[string]int)},
	}
	if err := r.reopen(); err != nil {
		return nil, err
	}
	settles := 0
	for i, st := range s.Steps {
		r.rep.Steps++
		var err error
		switch st.Op {
		case OpJoin:
			err = r.join(st.ID, rectFilter(st.Rect))
		case OpLeave:
			if _, ok := r.live[st.ID]; ok {
				err = r.b.Unsubscribe(core.ProcID(st.ID))
				delete(r.live, st.ID)
			}
		case OpCrash:
			if _, ok := r.live[st.ID]; ok {
				err = r.b.Fail(core.ProcID(st.ID))
				delete(r.live, st.ID)
			}
		case OpPublish:
			err = r.probe(i, "publish", filter.Event{"x": st.Point[0], "y": st.Point[1]})
		case OpSettle:
			err = r.settleCrash(i, settles)
			settles++
		default:
			// Overlay corruption and network faults: see the doc comment.
			r.rep.Skipped[st.Op]++
		}
		if err != nil {
			return r.rep, err
		}
	}
	err := r.b.Close()
	if cerr := r.store.Close(); err == nil {
		err = cerr
	}
	return r.rep, err
}

// reopen advances to the next store incarnation and builds a fresh
// broker over it. The previous broker, if any, is abandoned on purpose.
func (r *recoverRunner) reopen() error {
	s, err := r.open()
	if err != nil {
		return fmt.Errorf("harness: reopen store: %w", err)
	}
	b, err := pubsub.NewCore(r.space,
		core.Params{MinFanout: r.s.MinFanout, MaxFanout: r.s.MaxFanout},
		append([]pubsub.Option{pubsub.WithStore(s)}, r.opts...)...)
	if err != nil {
		return fmt.Errorf("harness: rebuild broker: %w", err)
	}
	r.store, r.b = s, b
	return nil
}

func (r *recoverRunner) join(id int, f filter.Filter) error {
	if _, ok := r.live[id]; ok {
		if err := r.b.UpdateFilter(core.ProcID(id), f); err != nil {
			return err
		}
	} else if err := r.b.Subscribe(core.ProcID(id), f); err != nil {
		return err
	}
	r.live[id] = f
	return nil
}

// settleCrash is the certification window: kill, recover, verify.
func (r *recoverRunner) settleCrash(stepIdx, settles int) error {
	if settles%2 == 0 {
		if err := r.b.Checkpoint(); err != nil {
			return fmt.Errorf("harness: checkpoint before crash: %w", err)
		}
	}
	// The pre-crash pool oracle: the recovered broker must rebuild not
	// just the subscription set but the same gateway tier — pool size
	// and per-subscriber assignment (trivially true for a fixed pool,
	// the real certification under WithGatewayPolicy).
	wantPool := r.b.Gateways()
	wantAssign := make(map[int]core.ProcID, len(r.live))
	for id := range r.live {
		wantAssign[id] = r.b.GatewayOf(core.ProcID(id))
	}
	// The crash: the old incarnation is dropped mid-flight. Only what
	// the store already made durable may inform the new one.
	r.rep.Crashes++
	if err := r.reopen(); err != nil {
		return err
	}
	st, err := r.b.Recover()
	if err != nil {
		return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "recovery",
			Detail: fmt.Sprintf("recover after crash: %v", err)}
	}
	r.rep.Recovered += st.Subscribers
	if st.Snapshot {
		r.rep.Snapshots++
	}
	if st.Subscribers != len(r.live) {
		return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "recovery",
			Detail: fmt.Sprintf("recovered %d subscribers, oracle has %d live", st.Subscribers, len(r.live))}
	}
	if got := r.b.Gateways(); got != wantPool {
		return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "recovery",
			Detail: fmt.Sprintf("recovered a %d-gateway pool, pre-crash had %d", got, wantPool)}
	}
	for id, want := range wantAssign {
		if got := r.b.GatewayOf(core.ProcID(id)); got != want {
			return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "recovery",
				Detail: fmt.Sprintf("subscriber %d recovered onto gateway %d, was on %d", id, got, want)}
		}
	}
	r.b.Repair()
	// Deterministic probe sweep: points inside live filters (guaranteed
	// interest) interleaved with uniform points over the world.
	rng := rand.New(rand.NewPCG(r.s.Seed, uint64(stepIdx)))
	probes := r.s.Probes
	if probes <= 0 {
		probes = 4
	}
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for p := 0; p < probes && len(ids) > 0; p++ {
		var ev filter.Event
		if p%2 == 0 {
			f := r.live[ids[rng.IntN(len(ids))]]
			xlo, xhi, _ := f.Interval("x")
			ylo, yhi, _ := f.Interval("y")
			ev = filter.Event{
				"x": xlo + rng.Float64()*(xhi-xlo),
				"y": ylo + rng.Float64()*(yhi-ylo),
			}
		} else {
			ev = filter.Event{"x": rng.Float64() * 500, "y": rng.Float64() * 500}
		}
		if err := r.probe(stepIdx, "recovery", ev); err != nil {
			return err
		}
	}
	return nil
}

// probe publishes ev from a live producer and certifies the notified
// set against the oracle: exactly the live subscribers whose filters
// match. A missing subscriber after a crash is the false negative this
// phase exists to catch; an extra one means recovery resurrected a
// ghost.
func (r *recoverRunner) probe(stepIdx int, kind string, ev filter.Event) error {
	var producer core.ProcID
	found := false
	for id := range r.live {
		if !found || core.ProcID(id) < producer {
			producer, found = core.ProcID(id), true
		}
	}
	if !found {
		return nil // nobody live: nothing to certify
	}
	note, err := r.b.Publish(producer, ev)
	if err != nil {
		return fmt.Errorf("harness: publish %v: %w", ev, err)
	}
	if len(note.FalseNegatives) != 0 {
		return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "false-negative",
			Detail: fmt.Sprintf("%s event %v missed %v", kind, ev, note.FalseNegatives)}
	}
	var want []core.ProcID
	for id, f := range r.live {
		if f.Match(ev) {
			want = append(want, core.ProcID(id))
		}
	}
	slices.Sort(want)
	got := slices.Clone(note.Interested)
	slices.Sort(got)
	if !slices.Equal(got, want) {
		return &Violation{StepIndex: stepIdx, Engine: "durable", Kind: "false-negative",
			Detail: fmt.Sprintf("%s event %v notified %v, oracle wants %v", kind, ev, got, want)}
	}
	r.rep.Probes++
	return nil
}

// rectFilter maps a schedule rect [x1 y1 x2 y2] onto the harness filter
// space: the conjunction x in [x1, x2] && y in [y1, y2].
func rectFilter(xs []float64) filter.Filter {
	return filter.Range("x", xs[0], xs[2]).And(filter.Range("y", xs[1], xs[3]))
}
