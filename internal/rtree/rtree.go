// Package rtree implements a classical, in-memory R-tree (Guttman 1984),
// the index structure the DR-tree distributes (paper Section 2.2). It is
// the centralized baseline of the reproduction and also serves as the
// reference implementation for the height-balance and degree invariants
// the distributed overlay must preserve:
//
//   - every leaf holds between m and M entries (except the root);
//   - every non-leaf node has between m and M children, the root at least
//     two (unless it is a leaf);
//   - all leaves are at the same depth; height is O(log_m N);
//   - every non-leaf entry is tagged with the MBR of its child.
//
// The node-splitting strategy is pluggable (internal/split): linear,
// quadratic, or R*-style.
package rtree

import (
	"fmt"

	"drtree/internal/geom"
	"drtree/internal/split"
)

// Tree is an R-tree mapping rectangles to opaque values. It is not safe
// for concurrent use; wrap with a mutex if shared across goroutines.
type Tree struct {
	m, M   int
	policy split.Policy
	root   *node
	height int // number of levels; a lone leaf root has height 1
	size   int
}

// node is a tree node; leaves carry data entries, interior nodes carry
// child entries.
type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// entry is either a data record (leaf) or a child pointer (interior),
// always tagged with its minimum bounding rectangle.
type entry struct {
	rect  geom.Rect
	child *node // nil in leaves
	data  any   // nil in interior nodes
}

func (n *node) mbr() geom.Rect {
	var out geom.Rect
	for _, e := range n.entries {
		out = out.Union(e.rect)
	}
	return out
}

// New creates an R-tree with branching bounds [m, M] and the given split
// policy. The paper requires M >= 2m so a split can produce two groups of
// at least m entries.
func New(m, M int, policy split.Policy) (*Tree, error) {
	if m < 1 {
		return nil, fmt.Errorf("rtree: m must be >= 1, got %d", m)
	}
	if M < 2*m {
		return nil, fmt.Errorf("rtree: M must be >= 2m (got m=%d, M=%d)", m, M)
	}
	if policy == nil {
		return nil, fmt.Errorf("rtree: nil split policy")
	}
	return &Tree{
		m:      m,
		M:      M,
		policy: policy,
		root:   &node{leaf: true},
		height: 1,
	}, nil
}

// MustNew is New that panics on invalid parameters; for tests.
func MustNew(m, M int, policy split.Policy) *Tree {
	t, err := New(m, M, policy)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() int { return t.height }

// Params returns the branching bounds (m, M).
func (t *Tree) Params() (m, M int) { return t.m, t.M }

// Insert adds a rectangle/value pair to the tree.
func (t *Tree) Insert(r geom.Rect, data any) error {
	if r.IsEmpty() {
		return fmt.Errorf("rtree: cannot insert empty rectangle")
	}
	leaf := t.chooseNode(r, 1)
	leaf.entries = append(leaf.entries, entry{rect: r, data: data})
	t.size++
	return t.adjustAfterGrowth(leaf)
}

// chooseNode descends from the root to the node at the given level
// (leaves are level 1) choosing at each step the child needing the least
// MBR enlargement, ties broken by smaller area — Guttman's ChooseLeaf and
// the DR-tree's Choose_Best_Child.
func (t *Tree) chooseNode(r geom.Rect, level int) *node {
	n := t.root
	depth := t.height
	for depth > level {
		best := 0
		bestEnl := n.entries[0].rect.Enlargement(r)
		bestArea := n.entries[0].rect.Area()
		for i := 1; i < len(n.entries); i++ {
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
		depth--
	}
	return n
}

// adjustAfterGrowth splits overflowing nodes bottom-up and refreshes
// ancestor MBRs (Guttman's AdjustTree).
func (t *Tree) adjustAfterGrowth(n *node) error {
	for n != nil {
		if len(n.entries) > t.M {
			if err := t.splitNode(n); err != nil {
				return err
			}
		}
		if n.parent != nil {
			t.refreshEntryFor(n)
		}
		n = n.parent
	}
	return nil
}

// splitNode partitions an overflowing node into two using the configured
// policy, attaching the new sibling to the parent (creating a new root if
// n was the root).
func (t *Tree) splitNode(n *node) error {
	rects := make([]geom.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.rect
	}
	leftIdx, rightIdx, err := t.policy.Split(rects, t.m)
	if err != nil {
		return fmt.Errorf("rtree: split failed: %w", err)
	}
	old := n.entries
	n.entries = nil
	sibling := &node{leaf: n.leaf}
	for _, i := range leftIdx {
		n.entries = append(n.entries, old[i])
	}
	for _, i := range rightIdx {
		sibling.entries = append(sibling.entries, old[i])
	}
	if !n.leaf {
		for _, e := range n.entries {
			e.child.parent = n
		}
		for _, e := range sibling.entries {
			e.child.parent = sibling
		}
	}
	if n.parent == nil {
		newRoot := &node{leaf: false}
		newRoot.entries = []entry{
			{rect: n.mbr(), child: n},
			{rect: sibling.mbr(), child: sibling},
		}
		n.parent = newRoot
		sibling.parent = newRoot
		t.root = newRoot
		t.height++
		return nil
	}
	sibling.parent = n.parent
	n.parent.entries = append(n.parent.entries, entry{rect: sibling.mbr(), child: sibling})
	t.refreshEntryFor(n)
	return nil
}

// refreshEntryFor updates the MBR tag of n inside its parent.
func (t *Tree) refreshEntryFor(n *node) {
	p := n.parent
	for i := range p.entries {
		if p.entries[i].child == n {
			p.entries[i].rect = n.mbr()
			return
		}
	}
}

// Delete removes one entry whose rectangle equals r and whose data equals
// data (compared with ==). It reports whether an entry was removed.
func (t *Tree) Delete(r geom.Rect, data any) (bool, error) {
	leaf, idx := t.findLeaf(t.root, r, data)
	if leaf == nil {
		return false, nil
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	if err := t.condense(leaf); err != nil {
		return false, err
	}
	return true, nil
}

func (t *Tree) findLeaf(n *node, r geom.Rect, data any) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.rect.Equal(r) && e.data == data {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) {
			if leaf, i := t.findLeaf(e.child, r, data); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

// condense implements Guttman's CondenseTree: walk up from a shrunken
// leaf, dropping underflowing nodes and re-inserting their orphaned
// entries at the appropriate level.
func (t *Tree) condense(n *node) error {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	level := 1
	for n.parent != nil {
		p := n.parent
		if len(n.entries) < t.m {
			// Detach n from its parent and stash its entries.
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else {
			t.refreshEntryFor(n)
		}
		n = p
		level++
	}
	t.shrinkRoot()
	// Re-insert orphans, highest (closest-to-root) level first so subtree
	// heights stay aligned with the shrinking tree.
	for i := len(orphans) - 1; i >= 0; i-- {
		o := orphans[i]
		if o.e.child != nil {
			if err := t.insertSubtree(o.e, o.level); err != nil {
				return err
			}
		} else {
			target := t.chooseNode(o.e.rect, 1)
			target.entries = append(target.entries, o.e)
			if err := t.adjustAfterGrowth(target); err != nil {
				return err
			}
		}
		t.shrinkRoot()
	}
	return nil
}

// shrinkRoot collapses degenerate roots: an interior root with a single
// child is replaced by that child; an interior root with no children
// becomes an empty leaf.
func (t *Tree) shrinkRoot() {
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
		t.height--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
		t.height = 1
	}
}

// insertSubtree re-attaches an orphaned subtree entry whose detached
// parent node lived at the given level (leaves are level 1); the entry's
// child therefore roots a subtree of height level-1 and needs a new
// parent at exactly that level.
func (t *Tree) insertSubtree(e entry, level int) error {
	if level > t.height {
		// The tree shrank below the subtree's level; dissolve one layer
		// and insert the child's entries individually.
		for _, ce := range e.child.entries {
			if err := t.insertSubtree(ce, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if level == 1 {
		// Data entry at leaf level.
		target := t.chooseNode(e.rect, 1)
		target.entries = append(target.entries, e)
		return t.adjustAfterGrowth(target)
	}
	target := t.chooseNode(e.rect, level)
	e.child.parent = target
	target.entries = append(target.entries, e)
	return t.adjustAfterGrowth(target)
}

// Search returns the data of every entry whose rectangle intersects q.
func (t *Tree) Search(q geom.Rect) []any {
	var out []any
	t.search(t.root, func(r geom.Rect) bool { return r.Intersects(q) }, &out)
	return out
}

// SearchPoint returns the data of every entry whose rectangle contains
// point p — the spatial-filter matching primitive.
func (t *Tree) SearchPoint(p geom.Point) []any {
	var out []any
	t.search(t.root, func(r geom.Rect) bool { return r.ContainsPoint(p) }, &out)
	return out
}

// SearchContaining returns the data of entries whose rectangle contains q.
func (t *Tree) SearchContaining(q geom.Rect) []any {
	var out []any
	t.search(t.root, func(r geom.Rect) bool { return r.Contains(q) }, &out)
	return out
}

func (t *Tree) search(n *node, pred func(geom.Rect) bool, out *[]any) {
	for _, e := range n.entries {
		if !pred(e.rect) {
			continue
		}
		if n.leaf {
			*out = append(*out, e.data)
		} else {
			t.search(e.child, pred, out)
		}
	}
}

// VisitCount searches like SearchPoint but also reports the number of
// nodes visited, for cost accounting in benchmarks.
func (t *Tree) VisitCount(p geom.Point) (matches []any, visited int) {
	var walk func(n *node)
	walk = func(n *node) {
		visited++
		for _, e := range n.entries {
			if !e.rect.ContainsPoint(p) {
				continue
			}
			if n.leaf {
				matches = append(matches, e.data)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return matches, visited
}

// VisitFunc searches like VisitCount but hands each match to fn
// instead of accumulating a slice — the allocation-free variant for
// per-event hot paths that already have somewhere to put the results.
func (t *Tree) VisitFunc(p geom.Point, fn func(data any)) (visited int) {
	var walk func(n *node)
	walk = func(n *node) {
		visited++
		for _, e := range n.entries {
			if !e.rect.ContainsPoint(p) {
				continue
			}
			if n.leaf {
				fn(e.data)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return visited
}

// ChooseEntries returns the data of every entry in the leaf that
// ChooseLeaf (least enlargement, ties by area) would select for r —
// the spatially closest O(M) placement candidates without a full scan.
// The broker's adaptive gateway tier uses this to place a subscription
// among thousands of gateways in O(log G) instead of O(G). Returns nil
// on an empty tree.
func (t *Tree) ChooseEntries(r geom.Rect) []any {
	if t.size == 0 {
		return nil
	}
	leaf := t.chooseNode(r, 1)
	out := make([]any, len(leaf.entries))
	for i, e := range leaf.entries {
		out[i] = e.data
	}
	return out
}

// RootMBR returns the MBR of the whole tree (empty if no entries).
func (t *Tree) RootMBR() geom.Rect { return t.root.mbr() }

// CheckInvariants verifies the R-tree properties from Section 2.2 of the
// paper; it returns a descriptive error on the first violation. Intended
// for tests and property checks.
func (t *Tree) CheckInvariants() error {
	if t.size == 0 {
		if !t.root.leaf || len(t.root.entries) != 0 {
			return fmt.Errorf("rtree: empty tree must be a bare leaf root")
		}
		return nil
	}
	leafDepth := -1
	var walk func(n *node, depth int) (int, error)
	walk = func(n *node, depth int) (int, error) {
		if n != t.root {
			if len(n.entries) < t.m {
				return 0, fmt.Errorf("rtree: node at depth %d underflows: %d < m=%d", depth, len(n.entries), t.m)
			}
		} else if !n.leaf && len(n.entries) < 2 {
			return 0, fmt.Errorf("rtree: interior root must have >= 2 children, has %d", len(n.entries))
		}
		if len(n.entries) > t.M {
			return 0, fmt.Errorf("rtree: node at depth %d overflows: %d > M=%d", depth, len(n.entries), t.M)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("rtree: leaves at different depths %d and %d", leafDepth, depth)
			}
			return len(n.entries), nil
		}
		count := 0
		for _, e := range n.entries {
			if e.child == nil {
				return 0, fmt.Errorf("rtree: interior entry with nil child at depth %d", depth)
			}
			if e.child.parent != n {
				return 0, fmt.Errorf("rtree: broken parent pointer at depth %d", depth)
			}
			if !e.rect.Equal(e.child.mbr()) {
				return 0, fmt.Errorf("rtree: stale MBR at depth %d: tag %v vs child %v", depth, e.rect, e.child.mbr())
			}
			c, err := walk(e.child, depth+1)
			if err != nil {
				return 0, err
			}
			count += c
		}
		return count, nil
	}
	n, err := walk(t.root, 0)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("rtree: size mismatch: counted %d, recorded %d", n, t.size)
	}
	if leafDepth+1 != t.height {
		return fmt.Errorf("rtree: height mismatch: leaves at depth %d, height %d", leafDepth, t.height)
	}
	return nil
}

// Stats summarizes structural quality metrics used by the split-policy
// ablation (experiment E8).
type Stats struct {
	Height        int
	Nodes         int
	Entries       int
	TotalCoverage float64 // sum of interior MBR areas
	TotalOverlap  float64 // sum of pairwise overlap areas between siblings
}

// ComputeStats walks the tree and gathers Stats.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Height: t.height, Entries: t.size}
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		if n.leaf {
			return
		}
		for i, e := range n.entries {
			s.TotalCoverage += e.rect.Area()
			for j := i + 1; j < len(n.entries); j++ {
				s.TotalOverlap += e.rect.OverlapArea(n.entries[j].rect)
			}
			walk(e.child)
		}
	}
	walk(t.root)
	return s
}
