package rtree

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/geom"
	"drtree/internal/split"
)

func benchFill(b *testing.B, pol split.Policy, n int) (*Tree, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, uint64(n)))
	tr := MustNew(4, 8, pol)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Insert(geom.R2(x, y, x+5, y+5), i); err != nil {
			b.Fatal(err)
		}
	}
	return tr, rng
}

func BenchmarkInsert(b *testing.B) {
	for _, pol := range split.All() {
		b.Run(pol.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2, 2))
			tr := MustNew(4, 8, pol)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, y := rng.Float64()*1000, rng.Float64()*1000
				if err := tr.Insert(geom.R2(x, y, x+5, y+5), i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSearchPointN10000(b *testing.B) {
	tr, rng := benchFill(b, split.RStar{}, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchPoint(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
}

func BenchmarkDeleteInsertCycle(b *testing.B) {
	tr, rng := benchFill(b, split.Quadratic{}, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := geom.R2(x, y, x+5, y+5)
		if err := tr.Insert(r, -i-1); err != nil {
			b.Fatal(err)
		}
		if ok, err := tr.Delete(r, -i-1); err != nil || !ok {
			b.Fatalf("delete: %v %v", ok, err)
		}
	}
}
