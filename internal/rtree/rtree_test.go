package rtree

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
	"drtree/internal/split"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, split.Quadratic{}); err == nil {
		t.Error("m=0 must be rejected")
	}
	if _, err := New(3, 5, split.Quadratic{}); err == nil {
		t.Error("M < 2m must be rejected")
	}
	if _, err := New(2, 4, nil); err == nil {
		t.Error("nil policy must be rejected")
	}
	tr, err := New(2, 4, split.Quadratic{})
	if err != nil {
		t.Fatal(err)
	}
	if m, M := tr.Params(); m != 2 || M != 4 {
		t.Fatalf("Params = (%d,%d)", m, M)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("fresh tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(geom.R2(0, 0, 100, 100)); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if !tr.RootMBR().IsEmpty() {
		t.Fatal("empty tree RootMBR must be empty")
	}
	if ok, err := tr.Delete(geom.R2(0, 0, 1, 1), "x"); err != nil || ok {
		t.Fatalf("delete on empty tree = %v, %v", ok, err)
	}
}

func TestInsertRejectsEmptyRect(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	if err := tr.Insert(geom.Rect{}, "x"); err == nil {
		t.Fatal("inserting empty rect must error")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	boxes := map[string]geom.Rect{
		"a": geom.R2(0, 0, 10, 10),
		"b": geom.R2(20, 20, 30, 30),
		"c": geom.R2(5, 5, 15, 15),
		"d": geom.R2(40, 0, 50, 10),
	}
	for k, r := range boxes {
		if err := tr.Insert(r, k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchPoint(geom.Point{7, 7})
	if !sameSet(got, "a", "c") {
		t.Fatalf("SearchPoint(7,7) = %v, want {a,c}", got)
	}
	got = tr.Search(geom.R2(25, 25, 45, 45))
	if !sameSet(got, "b") {
		t.Fatalf("Search = %v, want {b}", got)
	}
	got = tr.SearchContaining(geom.R2(6, 6, 9, 9))
	if !sameSet(got, "a", "c") {
		t.Fatalf("SearchContaining = %v, want {a,c}", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthAndHeight(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	n := 200
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Insert(geom.R2(x, y, x+5, y+5), i); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	// Height bound: at least ceil(log_M n), at most ~log_m(n)+1.
	maxH := int(math.Ceil(math.Log(float64(n))/math.Log(float64(2)))) + 1
	if tr.Height() > maxH {
		t.Fatalf("height %d exceeds bound %d for n=%d", tr.Height(), maxH, n)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	r := geom.R2(1, 1, 2, 2)
	if err := tr.Insert(r, "x"); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr.Delete(r, "y"); err != nil || ok {
		t.Fatal("deleting wrong data must be a no-op")
	}
	ok, err := tr.Delete(r, "x")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteManyKeepsInvariants(t *testing.T) {
	for _, pol := range split.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			tr := MustNew(2, 5, pol)
			rng := rand.New(rand.NewPCG(11, uint64(len(pol.Name()))))
			type rec struct {
				r geom.Rect
				d int
			}
			var recs []rec
			for i := 0; i < 150; i++ {
				x, y := rng.Float64()*500, rng.Float64()*500
				r := geom.R2(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
				recs = append(recs, rec{r, i})
				if err := tr.Insert(r, i); err != nil {
					t.Fatal(err)
				}
			}
			// Delete in random order, checking invariants as we go.
			rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
			for i, rc := range recs {
				ok, err := tr.Delete(rc.r, rc.d)
				if err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
				if !ok {
					t.Fatalf("delete %d: entry not found", i)
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("after delete %d: %v", i, err)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", tr.Len())
			}
		})
	}
}

func TestSearchNoFalseNegatives(t *testing.T) {
	// Exhaustive oracle check: every stored rect containing the probe
	// point must be returned (the R-tree "no false negatives" property,
	// paper §2.3).
	tr := MustNew(2, 4, split.Linear{})
	rng := rand.New(rand.NewPCG(3, 9))
	var all []geom.Rect
	for i := 0; i < 120; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		r := geom.R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)
		all = append(all, r)
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	for probe := 0; probe < 200; probe++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		got := tr.SearchPoint(p)
		want := map[int]bool{}
		for i, r := range all {
			if r.ContainsPoint(p) {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %v: got %d matches, want %d", p, len(got), len(want))
		}
		for _, d := range got {
			if !want[d.(int)] {
				t.Fatalf("probe %v: unexpected match %v", p, d)
			}
		}
	}
}

func TestVisitCount(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if err := tr.Insert(geom.R2(x, y, x+2, y+2), i); err != nil {
			t.Fatal(err)
		}
	}
	matches, visited := tr.VisitCount(geom.Point{50, 50})
	if visited < 1 {
		t.Fatal("VisitCount must visit at least the root")
	}
	if visited > 1+tr.ComputeStats().Nodes {
		t.Fatalf("visited %d exceeds node count", visited)
	}
	want := tr.SearchPoint(geom.Point{50, 50})
	if len(matches) != len(want) {
		t.Fatalf("VisitCount matches %d, SearchPoint %d", len(matches), len(want))
	}
}

// TestVisitFuncMatchesVisitCount certifies the allocation-free visitor
// against the slice-returning walk: same matches, same node count.
func TestVisitFuncMatchesVisitCount(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if err := tr.Insert(geom.R2(x, y, x+3, y+3), i); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 20; k++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		matches, visited := tr.VisitCount(p)
		got := map[int]bool{}
		n := tr.VisitFunc(p, func(d any) { got[d.(int)] = true })
		if n != visited {
			t.Fatalf("probe %d: VisitFunc visited %d nodes, VisitCount %d", k, n, visited)
		}
		if len(got) != len(matches) {
			t.Fatalf("probe %d: VisitFunc matched %d, VisitCount %d", k, len(got), len(matches))
		}
		for _, m := range matches {
			if !got[m.(int)] {
				t.Fatalf("probe %d: VisitCount match %v missing from VisitFunc", k, m)
			}
		}
	}
}

// TestChooseEntries certifies the placement-candidate query: nil on an
// empty tree, the whole entry set while the root is a leaf, and on a
// multi-level tree exactly the leaf ChooseLeaf would descend to (every
// candidate a real entry, count bounded by M).
func TestChooseEntries(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	if got := tr.ChooseEntries(geom.R2(0, 0, 1, 1)); got != nil {
		t.Fatalf("empty tree: ChooseEntries = %v", got)
	}
	for i := 0; i < 3; i++ {
		x := float64(i * 10)
		if err := tr.Insert(geom.R2(x, 0, x+5, 5), i); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.ChooseEntries(geom.R2(0, 0, 1, 1)); len(got) != 3 {
		t.Fatalf("leaf root: %d candidates, want all 3", len(got))
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 3; i < 200; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if err := tr.Insert(geom.R2(x, y, x+2, y+2), i); err != nil {
			t.Fatal(err)
		}
	}
	all := map[any]bool{}
	for _, d := range tr.Search(geom.R2(-10, -10, 120, 120)) {
		all[d] = true
	}
	_, M := tr.Params()
	for k := 0; k < 20; k++ {
		q := geom.R2(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100+100, rng.Float64()*100+100)
		got := tr.ChooseEntries(q)
		if len(got) == 0 || len(got) > M {
			t.Fatalf("probe %d: %d candidates, want 1..%d", k, len(got), M)
		}
		for _, d := range got {
			if !all[d] {
				t.Fatalf("probe %d: candidate %v is not a tree entry", k, d)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	tr := MustNew(2, 4, split.Quadratic{})
	for i := 0; i < 30; i++ {
		x := float64(i * 10)
		if err := tr.Insert(geom.R2(x, 0, x+5, 5), i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.ComputeStats()
	if s.Entries != 30 || s.Height != tr.Height() || s.Nodes < 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.TotalCoverage <= 0 {
		t.Fatal("coverage must be positive for a multi-level tree")
	}
}

func TestPropertyInvariantsUnderMixedWorkload(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		pol := split.All()[rng.IntN(3)]
		m := 2 + rng.IntN(2)
		tr := MustNew(m, 2*m+rng.IntN(3), pol)
		type rec struct {
			r geom.Rect
			d int
		}
		var live []rec
		next := 0
		for op := 0; op < 200; op++ {
			if len(live) == 0 || rng.Float64() < 0.65 {
				x, y := rng.Float64()*200, rng.Float64()*200
				r := geom.R2(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
				if err := tr.Insert(r, next); err != nil {
					return false
				}
				live = append(live, rec{r, next})
				next++
			} else {
				k := rng.IntN(len(live))
				ok, err := tr.Delete(live[k].r, live[k].d)
				if err != nil || !ok {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
			if tr.Len() != len(live) {
				return false
			}
			if err := tr.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	// Lemma 3.1 shape on the centralized structure: height stays within
	// log_m(N) + 2 across sizes.
	for _, n := range []int{50, 200, 800} {
		tr := MustNew(4, 8, split.RStar{})
		rng := rand.New(rand.NewPCG(uint64(n), 1))
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Insert(geom.R2(x, y, x+3, y+3), i); err != nil {
				t.Fatal(err)
			}
		}
		bound := math.Log(float64(n))/math.Log(4) + 2
		if float64(tr.Height()) > bound {
			t.Errorf("n=%d: height %d > bound %.1f", n, tr.Height(), bound)
		}
	}
}

func sameSet(got []any, want ...string) bool {
	if len(got) != len(want) {
		return false
	}
	set := map[string]bool{}
	for _, g := range got {
		set[fmt.Sprint(g)] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}
