package drtreed

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"drtree/internal/ws"
)

// TestWSProtocolVersioning pins the JSON front end's version handshake:
// the current major is accepted and echoed, an omitted "v" reads as the
// current protocol (pre-versioning clients), and an unknown major is
// refused with an error instead of half-understood.
func TestWSProtocolVersioning(t *testing.T) {
	ds := startCluster(t, 1)
	wsc, err := ws.Dial("ws://"+ds[0].HTTPAddr()+"/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wsc.Close() })

	roundtrip := func(req wsRequest) wsReply {
		t.Helper()
		buf, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := wsc.WriteText(buf); err != nil {
			t.Fatal(err)
		}
		_, payload, err := wsc.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		var rep wsReply
		if err := json.Unmarshal(payload, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// A future major version must be refused before the op is acted on.
	rep := roundtrip(wsRequest{V: WSProtoVersion + 1, Op: "subscribe", ID: 1, Filter: "price in [0, 10]"})
	if rep.Op != "error" || !strings.Contains(rep.Error, "unsupported protocol version") {
		t.Fatalf("future version: %+v", rep)
	}
	if got := ds[0].Broker().Len(); got != 0 {
		t.Fatalf("refused subscribe still registered (%d subscribers)", got)
	}

	// The current major works, and every reply carries it.
	rep = roundtrip(wsRequest{V: WSProtoVersion, Op: "subscribe", ID: 1, Filter: "price in [0, 10] && volume in [0, 10]"})
	if rep.Op != "ok" || rep.V != WSProtoVersion {
		t.Fatalf("current version: %+v", rep)
	}

	// Version omitted (0): a pre-versioning client speaks the current
	// protocol.
	rep = roundtrip(wsRequest{Op: "unsubscribe", ID: 1})
	if rep.Op != "ok" || rep.V != WSProtoVersion {
		t.Fatalf("legacy request: %+v", rep)
	}

	// Garbage major versions are also refused.
	rep = roundtrip(wsRequest{V: 99, Op: "publish", Producer: 1})
	if rep.Op != "error" {
		t.Fatalf("v99: %+v", rep)
	}
}
