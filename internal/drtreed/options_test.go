package drtreed

import (
	"net"
	"reflect"
	"slices"
	"testing"
)

// TestWithDefaults pins the zero-value resolution: every default a bare
// Config receives, and that explicit values survive it untouched.
func TestWithDefaults(t *testing.T) {
	d := Config{}.withDefaults()
	if d.Gateways != 4 {
		t.Errorf("default Gateways = %d, want 4", d.Gateways)
	}
	if d.MinFanout != 2 || d.MaxFanout != 4 {
		t.Errorf("default fanout = (%d, %d), want (2, 4)", d.MinFanout, d.MaxFanout)
	}
	if d.Logf == nil {
		t.Error("default Logf must be a discard sink, not nil")
	}
	if d.DataDir != "" || d.SnapshotEvery != 0 {
		t.Errorf("durability must default off, got dir=%q cadence=%d", d.DataDir, d.SnapshotEvery)
	}

	set := Config{Gateways: 7, MinFanout: 3, MaxFanout: 8, SnapshotEvery: 9}.withDefaults()
	if set.Gateways != 7 || set.MinFanout != 3 || set.MaxFanout != 8 || set.SnapshotEvery != 9 {
		t.Errorf("withDefaults clobbered explicit values: %+v", set)
	}
}

// TestConfigFieldAudit fails when Config grows (or renames) a field, so
// whoever adds one is forced here — and from here to the option list
// and the defaults test above. Every field must stay reachable through
// exactly the documented surface: a validated option, a withDefaults
// default, or both.
func TestConfigFieldAudit(t *testing.T) {
	want := []string{
		"Node", "Peers", "Listener", "HTTPAddr", "HTTPListener",
		"Space", "Gateways", "MinFanout", "MaxFanout",
		"DataDir", "SnapshotEvery", "Logf",
	}
	typ := reflect.TypeOf(Config{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("Config fields changed:\n got %v\nwant %v\nextend the Option list, withDefaults, and this audit together", got, want)
	}
}

// TestOptionsCoverConfig proves every Config field is settable through
// the functional-option surface — construction never needs the bare
// struct.
func TestOptionsCoverConfig(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()

	var c Config
	logf := func(string, ...any) {}
	opts := []Option{
		WithNode(3),
		WithPeers("a:1", "b:2", "c:3", "d:4"),
		WithListener(lnA),
		WithHTTPAddr("127.0.0.1:9999"),
		WithHTTPListener(lnB),
		WithSpace("x", "y"),
		WithGateways(5),
		WithFanout(3, 6),
		WithDataDir("/nonexistent/never-opened"),
		WithSnapshotEvery(11),
		WithLogf(logf),
	}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			t.Fatal(err)
		}
	}
	if c.Node != 3 || !slices.Equal(c.Peers, []string{"a:1", "b:2", "c:3", "d:4"}) ||
		c.Listener != lnA || c.HTTPAddr != "127.0.0.1:9999" || c.HTTPListener != lnB ||
		!slices.Equal(c.Space, []string{"x", "y"}) || c.Gateways != 5 ||
		c.MinFanout != 3 || c.MaxFanout != 6 ||
		c.DataDir != "/nonexistent/never-opened" || c.SnapshotEvery != 11 || c.Logf == nil {
		t.Fatalf("options did not reproduce the Config: %+v", c)
	}

	// WithConfig is the bulk bridge; later options still layer on top.
	var c2 Config
	if err := WithConfig(c)(&c2); err != nil {
		t.Fatal(err)
	}
	if err := WithGateways(9)(&c2); err != nil {
		t.Fatal(err)
	}
	if c2.Node != 3 || c2.Gateways != 9 {
		t.Fatalf("WithConfig + override: %+v", c2)
	}
}
