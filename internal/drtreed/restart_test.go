package drtreed

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"drtree/internal/filter"
	"drtree/internal/ws"
)

// TestThreeDaemonRestart is the durable variant of the stockticker
// acceptance scenario: traders spread over a 3-daemon cluster whose
// daemons journal to per-daemon data directories, the whole cluster
// shuts down with every client session still open (so no unsubscribe
// runs), restarts from disk on the same addresses — and the full
// subscription set resumes, with fresh client sessions re-attaching by
// subscription ID and receiving post-restart quotes with zero false
// negatives.
func TestThreeDaemonRestart(t *testing.T) {
	const n = 3
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}

	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	boot := func(i int, ln net.Listener) *Daemon {
		t.Helper()
		hln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(
			WithNode(i),
			WithPeers(peers...),
			WithListener(ln),
			WithHTTPListener(hln),
			WithSpace("price", "volume"),
			WithGateways(2),
			WithDataDir(dirs[i]),
			WithLogf(t.Logf),
		)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		return d
	}
	ds := make([]*Daemon, n)
	for i := range ds {
		ds[i] = boot(i, lns[i])
	}
	closeAll := func() {
		for _, d := range ds {
			if d != nil {
				d.Close()
			}
		}
	}
	defer closeAll()

	traders := map[int64]string{
		1: "price in [0, 1000] && volume in [0, 100000]",
		2: "price in [90, 110] && volume in [0, 100000]",
		3: "price in [95, 105] && volume in [5000, 100000]",
		4: "price >= 200 && volume >= 10000",
		5: "price in [90, 100] && volume in [0, 1000]",
		6: "price in [100, 300] && volume in [0, 50000]",
	}
	preds := make(map[int64]filter.Filter, len(traders))
	for id, expr := range traders {
		preds[id] = filter.MustParse(expr)
	}

	col := newCollector()
	clients := make(map[int64]*Client)
	dial := func(id int64) *Client {
		t.Helper()
		cl, err := Dial(ds[int(id)%n].Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("trader %d: %v", id, err)
		}
		clients[id] = cl
		go col.drain(cl.Events())
		return cl
	}
	for id, expr := range traders {
		if err := dial(id).Subscribe(id, expr); err != nil {
			t.Fatalf("trader %d subscribe: %v", id, err)
		}
	}

	// publishUntilDelivered drives one quote to zero false negatives,
	// republishing while the overlay converges.
	publishUntilDelivered := func(pub *Client, producer int64, quote filter.Event) {
		t.Helper()
		var expect []int64
		for id, f := range preds {
			if f.Match(quote) {
				expect = append(expect, id)
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if err := pub.Publish(producer, quote); err != nil {
				t.Fatalf("publish %v: %v", quote, err)
			}
			settle := time.Now().Add(500 * time.Millisecond)
			missing := expect
			for len(missing) > 0 && time.Now().Before(settle) {
				var still []int64
				for _, id := range missing {
					if !col.has(id, quote["price"]) {
						still = append(still, id)
					}
				}
				missing = still
				if len(missing) > 0 {
					time.Sleep(5 * time.Millisecond)
				}
			}
			if len(missing) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("false negatives for quote %v: traders %v never received it", quote, missing)
			}
		}
	}

	// Pre-crash sanity: the cluster routes.
	publishUntilDelivered(clients[1], 1, filter.Event{"price": 99.001, "volume": 500})
	publishUntilDelivered(clients[1], 1, filter.Event{"price": 240.002, "volume": 20000})

	// The whole cluster goes down with every session still open: no
	// teardown unsubscribes run, the journals keep all six traders.
	closeAll()
	for _, cl := range clients {
		cl.Close()
	}
	clients = map[int64]*Client{}

	// Restart from disk on the same addresses, anchor daemon first.
	for i := range ds {
		ln, err := net.Listen("tcp", peers[i])
		if err != nil {
			t.Fatalf("rebinding %s: %v", peers[i], err)
		}
		ds[i] = boot(i, ln)
	}
	total := 0
	for i, d := range ds {
		got := d.Broker().Len()
		total += got
		t.Logf("daemon %d recovered %d subscribers", i, got)
	}
	if total != len(traders) {
		t.Fatalf("cluster recovered %d subscribers, want %d", total, len(traders))
	}

	// Fresh sessions re-attach by subscription ID — no resubscribe.
	// Trader 6 re-attaches over the WebSocket front end instead; the
	// binary clients use the Attach RPC.
	for id := range traders {
		if id == 6 {
			continue
		}
		if err := dial(id).Attach(id); err != nil {
			t.Fatalf("trader %d attach: %v", id, err)
		}
	}
	if err := clients[1].Attach(999); err == nil {
		t.Fatal("attach to an unknown subscription must be refused")
	}

	wsc, err := ws.Dial("ws://"+ds[0].HTTPAddr()+"/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer wsc.Close()
	wsReplies := make(chan wsReply, 16)
	go func() {
		for {
			_, payload, err := wsc.ReadMessage()
			if err != nil {
				close(wsReplies)
				return
			}
			var rep wsReply
			if json.Unmarshal(payload, &rep) != nil {
				continue
			}
			if rep.Op == "event" {
				col.add(rep.ID, filter.Event(rep.Event))
				continue
			}
			wsReplies <- rep
		}
	}()
	req, _ := json.Marshal(wsRequest{V: WSProtoVersion, Op: "attach", ID: 6})
	if err := wsc.WriteText(req); err != nil {
		t.Fatal(err)
	}
	if rep := <-wsReplies; rep.Op != "ok" || rep.V != WSProtoVersion {
		t.Fatalf("ws attach: %+v", rep)
	}

	// Post-restart quotes reach every matching trader: zero false
	// negatives from the recovered subscription set.
	publishUntilDelivered(clients[2], 2, filter.Event{"price": 101.003, "volume": 700})
	publishUntilDelivered(clients[4], 4, filter.Event{"price": 205.004, "volume": 40000})
	publishUntilDelivered(clients[2], 2, filter.Event{"price": 93.005, "volume": 950})
}
