package drtreed

// Functional options over Config. The bare-struct constructor grew the
// usual failure mode: zero values silently meaning "default" made it
// impossible to distinguish "unset" from "deliberately zero", and
// invalid combinations (negative fanouts, empty peer lists) surfaced
// deep inside New instead of at the call site. Options validate
// eagerly — each returns an error the moment it is applied — and
// withDefaults stays the single place zero values are resolved (the
// audit test in options_test.go pins that every Config field has
// exactly one of: a validated option, a documented default, or both).

import (
	"fmt"
	"net"
)

// Option configures a daemon at construction.
type Option func(*Config) error

// WithNode sets this daemon's index into the peer list.
func WithNode(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("drtreed: node index must be >= 0, got %d", n)
		}
		c.Node = n
		return nil
	}
}

// WithPeers sets every daemon's overlay TCP address, index-aligned with
// the node index. A single-entry list is a standalone daemon.
func WithPeers(addrs ...string) Option {
	return func(c *Config) error {
		if len(addrs) == 0 {
			return fmt.Errorf("drtreed: empty peer list")
		}
		c.Peers = append([]string(nil), addrs...)
		return nil
	}
}

// WithListener supplies the pre-bound overlay listener (port-0 test
// rigs); without it the daemon listens on its own peer address.
func WithListener(ln net.Listener) Option {
	return func(c *Config) error {
		c.Listener = ln
		return nil
	}
}

// WithHTTPAddr sets the WebSocket/health endpoint address; empty (the
// default) disables the HTTP front end.
func WithHTTPAddr(addr string) Option {
	return func(c *Config) error {
		c.HTTPAddr = addr
		return nil
	}
}

// WithHTTPListener supplies the pre-bound HTTP listener.
func WithHTTPListener(ln net.Listener) Option {
	return func(c *Config) error {
		c.HTTPListener = ln
		return nil
	}
}

// WithSpace sets the attribute space, in dimension order. Every daemon
// of a deployment must use the identical space.
func WithSpace(attrs ...string) Option {
	return func(c *Config) error {
		if len(attrs) == 0 {
			return fmt.Errorf("drtreed: empty attribute space")
		}
		c.Space = append([]string(nil), attrs...)
		return nil
	}
}

// WithGateways sets the local broker's gateway-pool size (default 4).
func WithGateways(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("drtreed: gateway count must be >= 1, got %d", n)
		}
		c.Gateways = n
		return nil
	}
}

// WithFanout sets the DR-tree fanout bounds (default 2/4; the paper
// requires M >= 2m).
func WithFanout(min, max int) Option {
	return func(c *Config) error {
		if min < 2 || max < 2*min {
			return fmt.Errorf("drtreed: fanout bounds (%d, %d) violate M >= 2m >= 4", min, max)
		}
		c.MinFanout, c.MaxFanout = min, max
		return nil
	}
}

// WithLogf sinks daemon logs (default: discard).
func WithLogf(f func(format string, args ...any)) Option {
	return func(c *Config) error {
		c.Logf = f
		return nil
	}
}

// WithDataDir makes the daemon durable: subscription operations are
// journaled to a write-ahead log under dir (created if absent), and a
// daemon restarted over the same directory resumes serving its
// pre-crash subscription set — clients re-attach to their subscription
// IDs instead of resubscribing. Empty (the default) keeps the daemon
// memory-only.
func WithDataDir(dir string) Option {
	return func(c *Config) error {
		c.DataDir = dir
		return nil
	}
}

// WithSnapshotEvery sets the durable daemon's checkpoint cadence: a
// snapshot+compact of the subscription journal after every n journaled
// operations (default: the broker's own default cadence). Meaningless
// without WithDataDir.
func WithSnapshotEvery(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("drtreed: snapshot cadence must be >= 1, got %d", n)
		}
		c.SnapshotEvery = n
		return nil
	}
}

// WithConfig imports a whole Config at once — the bridge for callers
// holding a pre-built Config (flag parsing, config files). Later
// options still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *Config) error {
		*c = cfg
		return nil
	}
}
