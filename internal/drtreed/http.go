package drtreed

// The HTTP front end: /ws upgrades to a JSON-over-WebSocket subscriber
// session, /healthz and /statsz expose liveness and counters. The
// WebSocket protocol mirrors the binary RPC one op for op:
//
//	-> {"v":1,"op":"subscribe","id":7,"filter":"price in [10, 20]"}
//	<- {"v":1,"op":"ok"}
//	-> {"v":1,"op":"publish","producer":7,"event":{"price":15,"qty":2}}
//	<- {"v":1,"op":"ok"}
//	<- {"v":1,"op":"event","id":7,"seq":1,"event":{"price":15,"qty":2}}
//	-> {"v":1,"op":"unsubscribe","id":7}
//	<- {"v":1,"op":"ok"}
//
// Every frame carries the protocol's major version in "v". Requests may
// omit it (0 reads as "speak the current protocol" for pre-versioning
// clients); a request with a major version this build does not know is
// refused with an "error" reply rather than half-understood. "attach"
// re-binds a session to a subscription ID that survived a daemon
// restart (durable daemons; see Config.DataDir) without re-registering
// it.
//
// Requests are answered in order; "event" frames interleave as the
// subscriber's queue drains. A session's subscriptions die with it,
// unless the daemon itself is shutting down (they then persist for the
// restart).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/proto"
	"drtree/internal/pubsub"
	"drtree/internal/ws"
)

// wsWriteTimeout bounds every WebSocket frame write: a subscriber that
// stops reading loses its session (close-on-overflow at the socket),
// never stalls the daemon.
const wsWriteTimeout = 5 * time.Second

// WSProtoVersion is the JSON WebSocket protocol's current major
// version, carried in every frame's "v" field. Version 0 (the field
// omitted) is read as the current protocol for pre-versioning clients;
// any higher unknown major is refused.
const WSProtoVersion = 1

// wsRequest is one client -> daemon operation.
type wsRequest struct {
	V        int                `json:"v,omitempty"`
	Op       string             `json:"op"` // subscribe | unsubscribe | publish | attach
	ID       int64              `json:"id,omitempty"`
	Filter   string             `json:"filter,omitempty"`
	Producer int64              `json:"producer,omitempty"`
	Event    map[string]float64 `json:"event,omitempty"`
}

// wsReply is one daemon -> client frame.
type wsReply struct {
	V     int                `json:"v"`
	Op    string             `json:"op"` // ok | error | event
	Error string             `json:"error,omitempty"`
	ID    int64              `json:"id,omitempty"`
	Seq   uint64             `json:"seq,omitempty"`
	Event map[string]float64 `json:"event,omitempty"`
}

func (d *Daemon) startHTTP() error {
	ln := d.cfg.HTTPListener
	if ln == nil {
		if d.cfg.HTTPAddr == "" {
			return nil
		}
		var err error
		if ln, err = net.Listen("tcp", d.cfg.HTTPAddr); err != nil {
			return fmt.Errorf("drtreed: http listen: %w", err)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", d.serveStats)
	mux.HandleFunc("/ws", d.serveWS)
	d.httpLn = ln
	d.httpSrv = &http.Server{Handler: mux}
	go d.httpSrv.Serve(ln)
	return nil
}

// serveStats dumps a JSON snapshot of the daemon's counters.
func (d *Daemon) serveStats(w http.ResponseWriter, _ *http.Request) {
	stats := struct {
		Node        int                  `json:"node"`
		Subscribers int                  `json:"subscribers"`
		Transport   any                  `json:"transport"`
		Gateways    []pubsub.GatewayStat `json:"gateways"`
		Actors      []proto.ActorState   `json:"actors"`
	}{
		Node:        d.cfg.Node,
		Subscribers: d.broker.Len(),
		Transport:   d.tp.Stats(),
		Gateways:    d.broker.GatewayStats(),
		Actors:      d.lc.ActorStates(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// serveWS runs one JSON WebSocket session.
func (d *Daemon) serveWS(w http.ResponseWriter, r *http.Request) {
	c, err := ws.Accept(w, r)
	if err != nil {
		return
	}
	if !d.addSession(c) {
		c.Close()
		return
	}
	defer d.dropSession(c)
	defer c.Close()
	c.SetWriteTimeout(wsWriteTimeout)

	owned := make(map[core.ProcID]bool)
	defer func() {
		if d.closing() {
			return
		}
		for id := range owned {
			d.broker.Unsubscribe(id)
		}
	}()
	reply := func(rep wsReply) bool {
		rep.V = WSProtoVersion
		buf, err := json.Marshal(rep)
		if err != nil {
			return false
		}
		return c.WriteText(buf) == nil
	}
	fail := func(err error) bool { return reply(wsReply{Op: "error", Error: err.Error()}) }
	for {
		_, payload, err := c.ReadMessage()
		if err != nil {
			return
		}
		var req wsRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			if !fail(fmt.Errorf("bad request: %w", err)) {
				return
			}
			continue
		}
		if req.V != 0 && req.V != WSProtoVersion {
			if !fail(fmt.Errorf("unsupported protocol version %d (this daemon speaks %d)", req.V, WSProtoVersion)) {
				return
			}
			continue
		}
		switch req.Op {
		case "subscribe":
			id := core.ProcID(req.ID)
			var ch <-chan pubsub.Envelope
			f, err := filter.Parse(req.Filter)
			if err == nil {
				ch, err = d.broker.SubscribeChan(id, f)
			}
			if err != nil {
				if !fail(err) {
					return
				}
				continue
			}
			owned[id] = true
			d.closeWG.Add(1)
			go d.pumpWS(c, id, ch)
			if !reply(wsReply{Op: "ok"}) {
				return
			}
		case "attach":
			id := core.ProcID(req.ID)
			ch, err := d.broker.AttachChan(id)
			if err != nil {
				if !fail(err) {
					return
				}
				continue
			}
			owned[id] = true
			d.closeWG.Add(1)
			go d.pumpWS(c, id, ch)
			if !reply(wsReply{Op: "ok"}) {
				return
			}
		case "unsubscribe":
			id := core.ProcID(req.ID)
			if err := d.broker.Unsubscribe(id); err != nil {
				if !fail(err) {
					return
				}
				continue
			}
			delete(owned, id)
			if !reply(wsReply{Op: "ok"}) {
				return
			}
		case "publish":
			err := d.broker.PublishAsync(core.ProcID(req.Producer), filter.Event(req.Event))
			if err != nil {
				if !fail(err) {
					return
				}
				continue
			}
			if !reply(wsReply{Op: "ok"}) {
				return
			}
		default:
			if !fail(fmt.Errorf("unknown op %q", req.Op)) {
				return
			}
		}
	}
}

// pumpWS drains one subscriber's delivery channel into event frames. A
// write failure (the slow-subscriber deadline included) closes the
// session; teardown unsubscribes, which closes ch and ends the pump.
func (d *Daemon) pumpWS(c *ws.Conn, id core.ProcID, ch <-chan pubsub.Envelope) {
	defer d.closeWG.Done()
	for e := range ch {
		rep := wsReply{V: WSProtoVersion, Op: "event", ID: int64(id), Seq: e.Seq, Event: e.Event}
		buf, err := json.Marshal(rep)
		if err != nil {
			continue
		}
		if err := c.WriteText(buf); err != nil {
			c.Close()
			for range ch {
			}
			return
		}
	}
}
