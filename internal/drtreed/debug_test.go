package drtreed

import (
	"testing"
	"time"

	"drtree/internal/filter"
)

// TestTwoDaemonDebug is a scaffolding test used while bringing the
// cross-daemon path up; it stays as a minimal smoke of one remote
// subscription receiving one remote publish.
func TestTwoDaemonDebug(t *testing.T) {
	ds := startCluster(t, 2)

	// Subscriber on daemon 1 (remote from the anchor).
	sub := dialDaemon(t, ds[1])
	if err := sub.Subscribe(1, "price in [0, 100] && volume in [0, 100]"); err != nil {
		t.Fatal(err)
	}
	// Publisher on daemon 0.
	pub := dialDaemon(t, ds[0])
	if err := pub.Subscribe(2, "price in [200, 300] && volume in [0, 100]"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := pub.Publish(2, filter.Event{"price": 50, "volume": 50}); err != nil {
			t.Fatal(err)
		}
		select {
		case e := <-sub.Events():
			t.Logf("delivered: %+v", e)
			return
		case <-time.After(300 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Logf("daemon0: lc.Len=%d root=%v tp=%+v", ds[0].lc.Len(), fmtRoot(ds[0]), ds[0].tp.Stats())
			t.Logf("daemon1: lc.Len=%d root=%v tp=%+v", ds[1].lc.Len(), fmtRoot(ds[1]), ds[1].tp.Stats())
			for i, d := range ds {
				for _, g := range d.broker.GatewayStats() {
					t.Logf("daemon%d gw %d joined=%v subs=%d filter=%v", i, g.ProcID, g.Joined, g.Subscribers, g.Filter)
				}
			}
			t.Fatal("cross-daemon publish never delivered")
		}
	}
}

func fmtRoot(d *Daemon) [2]int {
	r, h := d.lc.Root()
	return [2]int{int(r), h}
}
