package drtreed

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/ws"
)

// startCluster boots n daemons on loopback port-0 listeners and returns
// them, overlay-listener first so peers know each other's real ports.
func startCluster(t *testing.T, n int) []*Daemon {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ds := make([]*Daemon, n)
	for i := range ds {
		hln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(
			WithNode(i),
			WithPeers(peers...),
			WithListener(lns[i]),
			WithHTTPListener(hln),
			WithSpace("price", "volume"),
			WithGateways(2),
			WithLogf(t.Logf),
		)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		t.Cleanup(func() { d.Close() })
		ds[i] = d
	}
	return ds
}

func dialDaemon(t *testing.T, d *Daemon) *Client {
	t.Helper()
	cl, err := Dial(d.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// collector accumulates the quotes each subscriber received, keyed by
// the quote's unique price.
type collector struct {
	mu  sync.Mutex
	got map[int64]map[float64]bool // subscriber -> price set
}

func newCollector() *collector { return &collector{got: make(map[int64]map[float64]bool)} }

func (c *collector) add(sub int64, ev filter.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.got[sub] == nil {
		c.got[sub] = make(map[float64]bool)
	}
	c.got[sub][ev["price"]] = true
}

func (c *collector) has(sub int64, price float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[sub][price]
}

func (c *collector) drain(ch <-chan ClientEvent) {
	for e := range ch {
		c.add(e.Subscriber, e.Event)
	}
}

// TestThreeDaemonStockticker is the end-to-end acceptance scenario: the
// stockticker traders spread over a 3-daemon loopback cluster (binary
// RPC sessions on all three daemons plus one JSON WebSocket session),
// quotes published from two different daemons, a trader crashing
// mid-session — and zero false negatives among the live traders after
// the churn.
func TestThreeDaemonStockticker(t *testing.T) {
	ds := startCluster(t, 3)
	col := newCollector()

	// The stockticker subscriptions (examples/brokerwire), trader i
	// attached to daemon i%3 — except trader 8, who attaches over
	// WebSocket to daemon 2's HTTP front end.
	subs := []struct {
		id   int64
		expr string
	}{
		{1, "price in [0, 1000] && volume in [0, 100000]"},
		{2, "price in [90, 110] && volume in [0, 100000]"},
		{3, "price in [95, 105] && volume in [5000, 100000]"},
		{4, "price >= 200 && volume >= 10000"},
		{5, "price in [90, 100] && volume in [0, 1000]"},
		{6, "price in [100, 300] && volume in [0, 50000]"},
		{7, "price in [50, 150] && volume in [20000, 100000]"},
	}
	preds := make(map[int64]filter.Filter)
	clients := make(map[int64]*Client)
	for _, s := range subs {
		preds[s.id] = filter.MustParse(s.expr)
		cl := dialDaemon(t, ds[int(s.id)%3])
		if err := cl.Subscribe(s.id, s.expr); err != nil {
			t.Fatalf("trader %d: %v", s.id, err)
		}
		clients[s.id] = cl
		go col.drain(cl.Events())
	}

	// Trader 8 over WebSocket JSON.
	const wsTrader, wsExpr = 8, "price <= 95 && volume in [0, 30000]"
	preds[wsTrader] = filter.MustParse(wsExpr)
	wsc, err := ws.Dial("ws://"+ds[2].HTTPAddr()+"/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wsc.Close() })
	wsReplies := make(chan wsReply, 16)
	go func() {
		for {
			_, payload, err := wsc.ReadMessage()
			if err != nil {
				close(wsReplies)
				return
			}
			var rep wsReply
			if json.Unmarshal(payload, &rep) != nil {
				continue
			}
			if rep.Op == "event" {
				col.add(rep.ID, filter.Event(rep.Event))
				continue
			}
			wsReplies <- rep
		}
	}()
	req, _ := json.Marshal(wsRequest{Op: "subscribe", ID: wsTrader, Filter: wsExpr})
	if err := wsc.WriteText(req); err != nil {
		t.Fatal(err)
	}
	if rep := <-wsReplies; rep.Op != "ok" {
		t.Fatalf("ws subscribe: %+v", rep)
	}

	live := func(exclude ...int64) map[int64]filter.Filter {
		out := make(map[int64]filter.Filter, len(preds))
		for id, f := range preds {
			out[id] = f
		}
		for _, id := range exclude {
			delete(out, id)
		}
		return out
	}

	// publishUntilDelivered drives one quote to zero false negatives:
	// republish (the overlay may still be converging — MBR updates ride
	// the periodic checks) until every matching live trader has it.
	publishUntilDelivered := func(pub *Client, producer int64, quote filter.Event, traders map[int64]filter.Filter) {
		t.Helper()
		var expect []int64
		for id, f := range traders {
			if f.Match(quote) {
				expect = append(expect, id)
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if err := pub.Publish(producer, quote); err != nil {
				t.Fatalf("publish %v: %v", quote, err)
			}
			settle := time.Now().Add(500 * time.Millisecond)
			missing := expect
			for len(missing) > 0 && time.Now().Before(settle) {
				var still []int64
				for _, id := range missing {
					if !col.has(id, quote["price"]) {
						still = append(still, id)
					}
				}
				missing = still
				if len(missing) > 0 {
					time.Sleep(5 * time.Millisecond)
				}
			}
			if len(missing) == 0 {
				return
			}
			if time.Now().After(deadline) {
				for i, d := range ds {
					r, h := d.lc.Root()
					t.Logf("daemon %d: root=(%d,%d) actors=%v tp=%+v", i, r, h, d.lc.ProcIDs(), d.tp.Stats())
					for _, a := range d.lc.ActorStates() {
						t.Logf("daemon %d actor %d: top=%d parent=%d pending=%v children=%v", i, a.ID, a.Top, a.Parent, a.RejoinPending, a.Children)
					}
					for _, g := range d.Broker().GatewayStats() {
						t.Logf("daemon %d gw %d: joined=%v subs=%d filter=%v", i, g.ProcID, g.Joined, g.Subscribers, g.Filter)
					}
				}
				t.Fatalf("false negatives for quote %v: traders %v never received it", quote, missing)
			}
		}
	}

	// Phase 1: quotes from trader 1's daemon (daemon 1). Every quote
	// has a unique price so deliveries are attributable.
	quotes := []filter.Event{
		{"price": 100.001, "volume": 500},
		{"price": 92.002, "volume": 25000},
		{"price": 250.003, "volume": 40000},
		{"price": 97.004, "volume": 800},
		{"price": 130.005, "volume": 30000},
	}
	for _, q := range quotes {
		publishUntilDelivered(clients[1], 1, q, live())
	}

	// Churn: trader 3 dies abruptly (socket cut, no unsubscribe) and
	// trader 5 leaves cleanly.
	clients[3].Close()
	if err := clients[5].Unsubscribe(5); err != nil {
		t.Fatalf("trader 5 unsubscribe: %v", err)
	}
	// The daemon tears trader 3's subscriptions down asynchronously
	// with the socket close; wait until its broker (daemon 0, which
	// also hosts trader 6) agrees.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if ds[0].Broker().Len() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trader 3's subscription survived its session (daemon 0 holds %d)", ds[0].Broker().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: quotes from trader 2 on daemon 2 — a different producer
	// on a different daemon — with zero false negatives among the
	// survivors.
	after := []filter.Event{
		{"price": 101.006, "volume": 6000},
		{"price": 94.007, "volume": 900},
		{"price": 220.008, "volume": 15000},
		{"price": 88.009, "volume": 100},
	}
	for _, q := range after {
		publishUntilDelivered(clients[2], 2, q, live(3, 5))
	}

	// The WebSocket trader unsubscribes cleanly and is acked.
	req, _ = json.Marshal(wsRequest{Op: "unsubscribe", ID: wsTrader})
	if err := wsc.WriteText(req); err != nil {
		t.Fatal(err)
	}
	if rep := <-wsReplies; rep.Op != "ok" {
		t.Fatalf("ws unsubscribe: %+v", rep)
	}
}

func TestSingleDaemonRPCLifecycle(t *testing.T) {
	ds := startCluster(t, 1)
	cl := dialDaemon(t, ds[0])

	if err := cl.Subscribe(1, "price in [10, 20] && volume in [0, 100]"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe(1, "price in [10, 20]"); err == nil {
		t.Fatal("duplicate subscriber id must be refused")
	}
	if err := cl.Subscribe(2, "price ?? garbage"); err == nil {
		t.Fatal("malformed filter must be refused")
	}
	if err := cl.Publish(99, filter.Event{"price": 15, "volume": 5}); err == nil {
		t.Fatal("publish from an unregistered producer must be refused")
	}

	if err := cl.Publish(1, filter.Event{"price": 15, "volume": 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-cl.Events():
		if e.Subscriber != 1 || e.Event["price"] != 15 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber never received its own publish")
	}

	if err := cl.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(1); err == nil {
		t.Fatal("double unsubscribe must be refused")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	ds := startCluster(t, 1)
	base := "http://" + ds[0].HTTPAddr()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Node     int `json:"node"`
		Gateways []struct {
			ProcID int `json:"ProcID"`
		} `json:"gateways"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Gateways) != 2 {
		t.Fatalf("statsz gateways = %d, want 2", len(stats.Gateways))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewFromConfig(Config{Node: 2, Peers: []string{"a"}, Space: []string{"x"}}); err == nil {
		t.Error("node outside peer list must be refused")
	}
	if _, err := NewFromConfig(Config{Node: 0, Peers: []string{"127.0.0.1:0"}}); err == nil {
		t.Error("empty space must be refused")
	}
	if _, err := NewFromConfig(Config{Node: 0, Peers: []string{"256.0.0.1:http"}, Space: []string{"x"}}); err == nil {
		t.Error("unusable listen address must surface")
	}
	// Options validate at application time, before any construction.
	if _, err := New(WithNode(-1)); err == nil {
		t.Error("negative node index must be refused")
	}
	if _, err := New(WithPeers()); err == nil {
		t.Error("empty peer list must be refused")
	}
	if _, err := New(WithSpace()); err == nil {
		t.Error("empty space option must be refused")
	}
	if _, err := New(WithGateways(0)); err == nil {
		t.Error("zero gateways must be refused")
	}
	if _, err := New(WithFanout(2, 3)); err == nil {
		t.Error("fanout violating M >= 2m must be refused")
	}
	if _, err := New(WithSnapshotEvery(0)); err == nil {
		t.Error("zero snapshot cadence must be refused")
	}
}

// TestOwnerMapping pins the process-ID partitioning arithmetic the
// whole deployment hangs on.
func TestOwnerMapping(t *testing.T) {
	cases := []struct {
		p    int
		want int
	}{
		{1, 0}, {2, 0}, {Stride, 0}, {Stride + 1, 1}, {2 * Stride, 1}, {2*Stride + 2, 2},
	}
	for _, c := range cases {
		if got := ownerOf(core.ProcID(c.p)); got != c.want {
			t.Errorf("ownerOf(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if gatewayBase(1) != core.ProcID(Stride+2) {
		t.Errorf("gatewayBase(1) = %d", gatewayBase(1))
	}
	if ownerOf(gatewayBase(2)) != 2 {
		t.Errorf("gateway base of daemon 2 not owned by daemon 2")
	}
}
