package drtreed

// Client is the Go-native counterpart of the daemon's binary RPC front
// end: a framed wire-codec session on the daemon's overlay port,
// multiplexing synchronous Subscribe/Unsubscribe/Publish acks with the
// asynchronous Notify stream.

import (
	"fmt"
	"sync"
	"time"

	"drtree/internal/filter"
	"drtree/internal/simnet"
	"drtree/internal/transport"
	"drtree/internal/wire"
)

// ClientEvent is one delivery received by a Client's subscriber.
type ClientEvent struct {
	// Subscriber is the subscription the event matched.
	Subscriber int64
	// Seq is the subscription's delivery sequence number.
	Seq uint64
	// Event is the delivered event.
	Event filter.Event
}

// Client is one binary RPC session against a daemon.
type Client struct {
	c      *transport.Conn
	events chan ClientEvent

	mu      sync.Mutex
	nextRef uint64
	acks    map[uint64]chan wire.Ack
	readErr error
	closed  bool
}

// Dial opens a client session against a daemon's overlay address.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := transport.DialClient(addr, timeout)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c: conn,
		// Deep buffer: a reader that only cares about acks must not
		// deadlock the session on unconsumed notifies.
		events: make(chan ClientEvent, 4096),
		acks:   make(map[uint64]chan wire.Ack),
	}
	go cl.readLoop()
	return cl, nil
}

// Events streams the deliveries for every subscription of this session.
// The channel closes when the session ends. Slow consumers shed: a full
// buffer drops the oldest pending event.
func (cl *Client) Events() <-chan ClientEvent { return cl.events }

func (cl *Client) readLoop() {
	var err error
	for {
		var m simnet.Message
		if m, err = cl.c.ReadMessage(); err != nil {
			break
		}
		switch p := m.Payload.(type) {
		case wire.Ack:
			cl.mu.Lock()
			ch := cl.acks[p.Ref]
			delete(cl.acks, p.Ref)
			cl.mu.Unlock()
			if ch != nil {
				ch <- p
			}
		case wire.Notify:
			ev, verr := eventFromVectors(p.Attrs, p.Values)
			if verr != nil {
				continue
			}
			e := ClientEvent{Subscriber: p.Subscriber, Seq: p.Seq, Event: ev}
			for {
				select {
				case cl.events <- e:
				default:
					select {
					case <-cl.events: // shed the oldest, retry
						continue
					default:
					}
				}
				break
			}
		}
	}
	cl.mu.Lock()
	cl.readErr = err
	waiting := cl.acks
	cl.acks = make(map[uint64]chan wire.Ack)
	cl.mu.Unlock()
	for _, ch := range waiting {
		close(ch)
	}
	close(cl.events)
}

// call sends one request frame and waits for its ack.
func (cl *Client) call(mk func(ref uint64) any) error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return fmt.Errorf("drtreed: client closed")
	}
	cl.nextRef++
	ref := cl.nextRef
	ch := make(chan wire.Ack, 1)
	cl.acks[ref] = ch
	cl.mu.Unlock()
	if err := cl.c.WriteMessage(simnet.Message{Payload: mk(ref)}); err != nil {
		cl.mu.Lock()
		delete(cl.acks, ref)
		cl.mu.Unlock()
		return err
	}
	select {
	case a, ok := <-ch:
		if !ok {
			return fmt.Errorf("drtreed: session ended awaiting ack: %v", cl.readErr)
		}
		if a.Err != "" {
			return fmt.Errorf("drtreed: %s", a.Err)
		}
		return nil
	case <-time.After(30 * time.Second):
		cl.mu.Lock()
		delete(cl.acks, ref)
		cl.mu.Unlock()
		return fmt.Errorf("drtreed: ack %d timed out", ref)
	}
}

// Subscribe registers subscriber id with a textual filter
// (filter.Parse syntax); its deliveries arrive on Events.
func (cl *Client) Subscribe(id int64, expr string) error {
	return cl.call(func(ref uint64) any { return wire.Subscribe{Ref: ref, ID: id, Expr: expr} })
}

// Attach re-binds this session to an existing subscription — typically
// one that survived a daemon restart from its data directory — without
// re-registering it. Deliveries arrive on Events from the ack on.
func (cl *Client) Attach(id int64) error {
	return cl.call(func(ref uint64) any { return wire.Attach{Ref: ref, ID: id} })
}

// Unsubscribe drops subscriber id.
func (cl *Client) Unsubscribe(id int64) error {
	return cl.call(func(ref uint64) any { return wire.Unsubscribe{Ref: ref, ID: id} })
}

// Publish fires an event from the given producer, which must be a
// subscriber of the same daemon. The ack confirms the event is in
// flight, not delivered (the daemon publishes asynchronously).
func (cl *Client) Publish(producer int64, ev filter.Event) error {
	attrs := make([]string, 0, len(ev))
	values := make([]float64, 0, len(ev))
	for a, v := range ev {
		attrs = append(attrs, a)
		values = append(values, v)
	}
	return cl.call(func(ref uint64) any {
		return wire.Publish{Ref: ref, Producer: producer, Attrs: attrs, Values: values}
	})
}

// Close ends the session; the daemon drops its subscriptions.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
	return cl.c.Close()
}
