// Package drtreed hosts one daemon of a real-network DR-tree pub/sub
// deployment: a slice of the overlay's process-ID space running on a
// live cluster (internal/proto), stitched to its peers over TCP
// (internal/transport + internal/wire), with a local gateway-pool
// broker (internal/pubsub) fronting subscribers over two substrates —
// framed binary RPC sessions on the overlay port and a JSON WebSocket
// endpoint (internal/ws) on the HTTP port.
//
// Topology: daemon i of n owns overlay processes (i*Stride, (i+1)*Stride].
// Process 1 — owned by daemon 0 — is the anchor: a filterless overlay
// member joined at startup that every cluster's bootstrap contact
// points at, so the first gateway join of any daemon routes over the
// wire into one shared tree instead of rooting n disjoint ones. Event
// IDs are drawn from disjoint per-daemon ranges (daemon i publishes
// IDs above (i+1)<<40) because receipt dedup keys on the ID.
//
// Publishing is fire-and-forget (pubsub.PublishAsync): no daemon can
// take a cluster-wide receipt census, so deliveries surface through the
// live runtime's event hook, which hands each gateway receipt to the
// local broker's NotifyGateway for subscriber fan-out.
package drtreed

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/pubsub"
	"drtree/internal/simnet"
	"drtree/internal/state"
	"drtree/internal/transport"
	"drtree/internal/wire"
)

// Stride is the size of each daemon's process-ID slice. One million
// processes per daemon keeps the arithmetic trivial and the slices far
// apart; IDs stay well inside the varint-friendly range for thousands
// of daemons.
const Stride = 1 << 20

// AnchorProc is the bootstrap anchor process, owned by daemon 0.
const AnchorProc core.ProcID = 1

// Config describes one daemon.
type Config struct {
	// Node is this daemon's index into Peers.
	Node int
	// Peers lists every daemon's overlay TCP address, index-aligned with
	// Node. A single-entry list is a standalone daemon.
	Peers []string
	// Listener optionally supplies the pre-bound overlay listener
	// (port-0 test rigs); when nil the daemon listens on Peers[Node].
	Listener net.Listener
	// HTTPAddr is the WebSocket/health endpoint address; empty disables
	// the HTTP front end.
	HTTPAddr string
	// HTTPListener optionally supplies the pre-bound HTTP listener.
	HTTPListener net.Listener
	// Space is the attribute space, in dimension order. Every daemon of
	// a deployment must use the identical space.
	Space []string
	// Gateways is the local broker's gateway-pool size (default 4: a
	// daemon amortizes overlay membership across its subscribers, and a
	// networked overlay prefers fewer, fatter gateways).
	Gateways int
	// MinFanout and MaxFanout are the DR-tree fanout bounds (default 2/4).
	MinFanout, MaxFanout int
	// DataDir, when non-empty, backs the daemon's subscription table
	// with a write-ahead log + snapshot store in that directory; a
	// restart over the same directory resumes the pre-crash subscription
	// set (clients re-attach by subscription ID).
	DataDir string
	// SnapshotEvery is the durable daemon's checkpoint cadence in
	// journaled operations (default: the broker's own default).
	SnapshotEvery int
	// Logf sinks daemon logs (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Gateways == 0 {
		c.Gateways = 4
	}
	if c.MinFanout == 0 && c.MaxFanout == 0 {
		c.MinFanout, c.MaxFanout = 2, 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Daemon is one running drtreed instance.
type Daemon struct {
	cfg    Config
	space  *filter.Space
	lc     *proto.LiveCluster
	tp     *transport.TCP
	broker *pubsub.Broker
	store  state.Store // nil on a memory-only daemon

	httpSrv *http.Server
	httpLn  net.Listener

	mu       sync.Mutex
	closed   bool
	sessions map[io.Closer]struct{}
	closeWG  sync.WaitGroup
}

// addSession registers a front-end session for shutdown teardown.
// False means the daemon is closing and the session must not start.
func (d *Daemon) addSession(c io.Closer) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.sessions[c] = struct{}{}
	d.closeWG.Add(1)
	return true
}

func (d *Daemon) dropSession(c io.Closer) {
	d.mu.Lock()
	delete(d.sessions, c)
	d.mu.Unlock()
	d.closeWG.Done()
}

// gatewayBase returns the first gateway procID of daemon node.
func gatewayBase(node int) core.ProcID { return core.ProcID(node*Stride + 2) }

// ownerOf maps an overlay process to the daemon index owning it.
func ownerOf(p core.ProcID) int { return (int(p) - 1) / Stride }

// New builds and starts a daemon from its option list: the overlay
// transport is listening, the anchor (on daemon 0) has joined, any
// durable subscription state (WithDataDir) has been recovered, and
// both front ends accept sessions when it returns.
func New(opts ...Option) (*Daemon, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return newDaemon(cfg)
}

// NewFromConfig builds a daemon from a bare Config.
//
// Deprecated: use New with functional options (or New(WithConfig(cfg))
// for a pre-built Config) — options validate at the call site instead
// of deep inside construction.
func NewFromConfig(cfg Config) (*Daemon, error) { return newDaemon(cfg) }

func newDaemon(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Node < 0 || cfg.Node >= len(cfg.Peers) {
		return nil, fmt.Errorf("drtreed: node %d outside peer list of %d", cfg.Node, len(cfg.Peers))
	}
	if len(cfg.Space) == 0 {
		return nil, fmt.Errorf("drtreed: empty attribute space")
	}
	space, err := filter.NewSpace(cfg.Space...)
	if err != nil {
		return nil, fmt.Errorf("drtreed: %w", err)
	}
	lc, err := proto.NewLiveCluster(proto.Config{MinFanout: cfg.MinFanout, MaxFanout: cfg.MaxFanout})
	if err != nil {
		return nil, fmt.Errorf("drtreed: %w", err)
	}
	d := &Daemon{cfg: cfg, space: space, lc: lc, sessions: make(map[io.Closer]struct{})}

	lc.SetEventSpace(int64(cfg.Node+1) << 40)
	lc.SetContact(func() core.ProcID { return AnchorProc })

	brokerOpts := []pubsub.Option{
		pubsub.WithGateways(cfg.Gateways),
		pubsub.WithGatewayBase(gatewayBase(cfg.Node)),
	}
	if cfg.DataDir != "" {
		d.store, err = state.OpenWAL(cfg.DataDir)
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("drtreed: opening data dir: %w", err)
		}
		brokerOpts = append(brokerOpts, pubsub.WithStore(d.store))
		if cfg.SnapshotEvery > 0 {
			brokerOpts = append(brokerOpts, pubsub.WithSnapshotEvery(cfg.SnapshotEvery))
		}
	}
	d.broker, err = pubsub.New(space, lc, brokerOpts...)
	if err != nil {
		d.closeStore()
		lc.Close()
		return nil, fmt.Errorf("drtreed: %w", err)
	}
	lc.SetEventHook(d.onOverlayDeliver)

	d.tp, err = transport.New(transport.Config{
		Self:     cfg.Node,
		Peers:    cfg.Peers,
		Listener: cfg.Listener,
		Deliver:  lc.Deliver,
		Owner:    ownerOf,
		OnClient: d.serveRPC,
		Logf:     cfg.Logf,
	})
	if err != nil {
		d.closeStore()
		lc.Close()
		return nil, fmt.Errorf("drtreed: %w", err)
	}
	if err := lc.AttachSubstrate(d.tp, func(p core.ProcID) bool { return ownerOf(p) == cfg.Node }); err != nil {
		d.tp.Close()
		d.closeStore()
		lc.Close()
		return nil, fmt.Errorf("drtreed: %w", err)
	}

	// Daemon 0 seeds the shared tree with the anchor: a degenerate
	// subscription at the space's origin whose only job is existing, so
	// every later join — local or remote — has a stable contact to
	// route through.
	if ownerOf(AnchorProc) == cfg.Node {
		origin := make(geom.Point, space.Dims())
		anchor, err := geom.NewRect(origin, origin)
		if err == nil {
			err = lc.Join(AnchorProc, anchor)
		}
		if err != nil {
			d.tp.Close()
			d.closeStore()
			lc.Close()
			return nil, fmt.Errorf("drtreed: joining anchor: %w", err)
		}
	}

	// Durable restart: rebuild the pre-crash subscription set from the
	// store before the front ends open, so a re-attaching client never
	// races its own recovery. The gateways re-join the overlay through
	// the normal subscribe path as the set replays.
	if d.store != nil {
		rs, err := d.broker.Recover()
		if err != nil {
			d.tp.Close()
			d.broker.Close()
			d.closeStore()
			return nil, fmt.Errorf("drtreed: recovering %s: %w", cfg.DataDir, err)
		}
		if rs.Subscribers > 0 || rs.Records > 0 || rs.Snapshot {
			cfg.Logf("drtreed: node %d recovered %d subscribers from %s (snapshot=%v, %d journal records)",
				cfg.Node, rs.Subscribers, cfg.DataDir, rs.Snapshot, rs.Records)
		}
	}

	if err := d.startHTTP(); err != nil {
		d.tp.Close()
		d.broker.Close()
		d.closeStore()
		return nil, err
	}
	cfg.Logf("drtreed: node %d up, overlay %s http %s", cfg.Node, d.Addr(), d.HTTPAddr())
	return d, nil
}

// closeStore closes the durable store if the daemon owns one.
func (d *Daemon) closeStore() {
	if d.store != nil {
		d.store.Close()
	}
}

// Addr returns the overlay listener address.
func (d *Daemon) Addr() string { return d.tp.Addr() }

// HTTPAddr returns the HTTP listener address ("" when disabled).
func (d *Daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Broker exposes the local broker (tests, stats).
func (d *Daemon) Broker() *pubsub.Broker { return d.broker }

// TransportStats snapshots the overlay transport counters.
func (d *Daemon) TransportStats() transport.Stats { return d.tp.Stats() }

// onOverlayDeliver is the live runtime's event hook: every first
// receipt of an event by a local process lands here, outside the
// cluster lock. Receipts at local gateway processes whose filter
// matched fan out to that gateway's subscribers.
func (d *Daemon) onOverlayDeliver(p core.ProcID, _ int64, ev geom.Point, matched bool) {
	if !matched {
		return
	}
	e, err := d.space.Event(ev)
	if err != nil {
		return
	}
	d.broker.NotifyGateway(p, e)
}

// closing reports whether Close has begun. Session teardown consults it
// to keep subscriptions registered (and journaled) through a daemon
// shutdown: a durable daemon must restart with its subscription set, so
// only a session ending while the daemon lives unsubscribes its IDs.
func (d *Daemon) closing() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Close stops the daemon: front ends first (no new sessions), then the
// broker and its overlay runtime, then the transport. A durable daemon
// checkpoints its subscription table on the way down so the next boot
// replays a snapshot instead of the whole journal.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	open := make([]io.Closer, 0, len(d.sessions))
	for c := range d.sessions {
		open = append(open, c)
	}
	d.mu.Unlock()
	if d.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		d.httpSrv.Shutdown(ctx)
		cancel()
	}
	// Closing the session sockets unblocks their reader goroutines;
	// closing the broker then ends the notify pumps (queues close).
	for _, c := range open {
		c.Close()
	}
	if d.store != nil {
		// Best-effort: a failed checkpoint only means a longer replay.
		if err := d.broker.Checkpoint(); err != nil {
			d.cfg.Logf("drtreed: shutdown checkpoint: %v", err)
		}
	}
	err := d.broker.Close()
	d.tp.Close()
	d.closeWG.Wait()
	d.closeStore()
	return err
}

// eventVectors flattens a pub/sub event into the space's dimension
// order for the wire (Notify frames, JSON replies use the map form).
func (d *Daemon) eventVectors(e filter.Event) (attrs []string, values []float64) {
	attrs = d.space.Attrs()
	values = make([]float64, len(attrs))
	for i, a := range attrs {
		values[i] = e[a]
	}
	return attrs, values
}

// eventFromVectors rebuilds a pub/sub event from parallel vectors.
func eventFromVectors(attrs []string, values []float64) (filter.Event, error) {
	if len(attrs) != len(values) {
		return nil, fmt.Errorf("drtreed: %d attrs vs %d values", len(attrs), len(values))
	}
	e := make(filter.Event, len(attrs))
	for i, a := range attrs {
		e[a] = values[i]
	}
	return e, nil
}

// serveRPC runs one framed binary client session (transport.OnClient):
// Subscribe/Unsubscribe/Publish/Attach requests each answered with an
// Ack bearing the request's Ref, and Notify frames pushed as the
// subscriber's queue drains. Subscriptions die with the session —
// unless the daemon itself is shutting down, in which case they stay
// registered (and, on a durable daemon, journaled) so a restart
// resumes them and clients re-attach by subscription ID.
func (d *Daemon) serveRPC(c *transport.Conn) {
	if !d.addSession(c) {
		c.Close()
		return
	}
	defer d.dropSession(c)
	defer c.Close()
	var (
		mu    sync.Mutex
		owned = make(map[core.ProcID]bool)
	)
	defer func() {
		if d.closing() {
			return
		}
		mu.Lock()
		ids := make([]core.ProcID, 0, len(owned))
		for id := range owned {
			ids = append(ids, id)
		}
		mu.Unlock()
		for _, id := range ids {
			d.broker.Unsubscribe(id)
		}
	}()
	ack := func(ref uint64, err error) bool {
		a := wire.Ack{Ref: ref}
		if err != nil {
			a.Err = err.Error()
		}
		return c.WriteMessage(simnet.Message{Payload: a}) == nil
	}
	for {
		m, err := c.ReadMessage()
		if err != nil {
			return
		}
		switch p := m.Payload.(type) {
		case wire.Subscribe:
			id := core.ProcID(p.ID)
			var ch <-chan pubsub.Envelope
			f, err := filter.Parse(p.Expr)
			if err == nil {
				ch, err = d.broker.SubscribeChan(id, f)
			}
			if err == nil {
				mu.Lock()
				owned[id] = true
				mu.Unlock()
				d.closeWG.Add(1)
				go d.pumpNotifies(c, id, ch)
			}
			if !ack(p.Ref, err) {
				return
			}
		case wire.Attach:
			id := core.ProcID(p.ID)
			ch, err := d.broker.AttachChan(id)
			if err == nil {
				mu.Lock()
				owned[id] = true
				mu.Unlock()
				d.closeWG.Add(1)
				go d.pumpNotifies(c, id, ch)
			}
			if !ack(p.Ref, err) {
				return
			}
		case wire.Unsubscribe:
			id := core.ProcID(p.ID)
			err := d.broker.Unsubscribe(id)
			if err == nil {
				mu.Lock()
				delete(owned, id)
				mu.Unlock()
			}
			if !ack(p.Ref, err) {
				return
			}
		case wire.Publish:
			ev, err := eventFromVectors(p.Attrs, p.Values)
			if err == nil {
				err = d.broker.PublishAsync(core.ProcID(p.Producer), ev)
			}
			if !ack(p.Ref, err) {
				return
			}
		default:
			d.cfg.Logf("drtreed: client %s sent unexpected %T, dropping session", c.RemoteAddr(), m.Payload)
			return
		}
	}
}

// pumpNotifies drains one subscriber's delivery channel onto the
// session socket. A write failure (deadline expiry included — the slow
// consumer case) closes the whole session; the session teardown then
// unsubscribes, which closes this channel and ends the pump.
func (d *Daemon) pumpNotifies(c *transport.Conn, id core.ProcID, ch <-chan pubsub.Envelope) {
	defer d.closeWG.Done()
	for e := range ch {
		attrs, values := d.eventVectors(e.Event)
		n := wire.Notify{Subscriber: int64(id), Seq: e.Seq, Attrs: attrs, Values: values}
		if err := c.WriteMessage(simnet.Message{Payload: n}); err != nil {
			c.Close()
			// Keep draining so the queue's drainer is never blocked on a
			// dead session; envelopes are discarded.
			for range ch {
			}
			return
		}
	}
}
