package wire

// Broker-level RPCs. These payloads prove the framing is
// engine-agnostic — the same codec that moves overlay maintenance
// messages between daemons also carries the subscriber-facing
// subscribe/publish protocol — and they are what drtreed's binary
// client speaks on a raw TCP connection. Frames carrying RPCs use
// From = To = 0: RPCs address a connection, not an overlay process.
//
// Every request carries a client-chosen Ref echoed by the Ack that
// answers it, so a client can pipeline requests on one connection.
// Events are encoded as parallel attribute/value slices (the schema's
// map form is rebuilt at the edges) to keep frames deterministic.

// ProtoVersion is the current major version of the RPC protocol,
// negotiated by the Hello that opens every connection. Version 0 (a
// Hello encoded before the field existed) is read as "speak the
// current protocol"; a peer announcing a major this build does not
// know is refused at accept time rather than misparsed mid-stream.
const ProtoVersion = 1

// Hello opens a connection: a negative Node introduces a subscriber
// client session, a non-negative Node introduces daemon Node's overlay
// peer link. Proto announces the sender's protocol major version.
type Hello struct {
	Node  int
	Proto int
}

// Subscribe asks the daemon to register subscriber ID with the filter
// expression Expr (internal/filter syntax). Matching events flow back
// as Notify frames on the same connection.
type Subscribe struct {
	Ref  uint64
	ID   int64
	Expr string
}

// Unsubscribe removes subscriber ID.
type Unsubscribe struct {
	Ref uint64
	ID  int64
}

// Publish injects one event from Producer (which must be a subscriber
// on this connection's daemon).
type Publish struct {
	Ref      uint64
	Producer int64
	Attrs    []string
	Values   []float64
}

// Notify delivers one matched event to Subscriber. Seq is the
// subscriber's delivery sequence number (Envelope.Seq).
type Notify struct {
	Subscriber int64
	Seq        uint64
	Attrs      []string
	Values     []float64
}

// Attach re-binds this session to subscriber ID's delivery stream
// without re-registering it: the subscription already exists —
// typically recovered from a durable daemon's journal after a restart —
// and its Notify frames flow on this connection from the ack on.
type Attach struct {
	Ref uint64
	ID  int64
}

// Ack answers the request with the same Ref; Err is empty on success.
type Ack struct {
	Ref uint64
	Err string
}

// encAttrs writes parallel attribute/value slices; lengths must match
// (enforced at decode by construction: one count prefixes both).
func encAttrs(w *Writer, attrs []string, values []float64) {
	n := len(attrs)
	if len(values) < n {
		n = len(values)
	}
	w.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		w.String(attrs[i])
		w.F64(values[i])
	}
}

func decAttrs(r *Reader) ([]string, []float64) {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil, nil
	}
	// Each pair costs at least 1 (empty-string length) + 8 bytes.
	if n > uint64(r.Remaining())/9 {
		r.Fail(ErrTruncated)
		return nil, nil
	}
	attrs := make([]string, n)
	values := make([]float64, n)
	for i := range attrs {
		attrs[i] = r.String()
		values[i] = r.F64()
	}
	return attrs, values
}

func init() {
	Register(KindHello, Hello{},
		func(w *Writer, p any) error {
			m := p.(Hello)
			w.Varint(int64(m.Node))
			w.Varint(int64(m.Proto))
			return nil
		},
		func(r *Reader) any {
			m := Hello{Node: int(r.Varint())}
			// Pre-versioning Hellos end after Node; their Proto reads 0.
			if r.Remaining() > 0 {
				m.Proto = int(r.Varint())
			}
			return m
		})
	Register(KindSubscribe, Subscribe{},
		func(w *Writer, p any) error {
			m := p.(Subscribe)
			w.Uvarint(m.Ref)
			w.Varint(m.ID)
			w.String(m.Expr)
			return nil
		},
		func(r *Reader) any {
			return Subscribe{Ref: r.Uvarint(), ID: r.Varint(), Expr: r.String()}
		})
	Register(KindUnsubscribe, Unsubscribe{},
		func(w *Writer, p any) error {
			m := p.(Unsubscribe)
			w.Uvarint(m.Ref)
			w.Varint(m.ID)
			return nil
		},
		func(r *Reader) any {
			return Unsubscribe{Ref: r.Uvarint(), ID: r.Varint()}
		})
	Register(KindPublish, Publish{},
		func(w *Writer, p any) error {
			m := p.(Publish)
			w.Uvarint(m.Ref)
			w.Varint(m.Producer)
			encAttrs(w, m.Attrs, m.Values)
			return nil
		},
		func(r *Reader) any {
			m := Publish{Ref: r.Uvarint(), Producer: r.Varint()}
			m.Attrs, m.Values = decAttrs(r)
			return m
		})
	Register(KindNotify, Notify{},
		func(w *Writer, p any) error {
			m := p.(Notify)
			w.Varint(m.Subscriber)
			w.Uvarint(m.Seq)
			encAttrs(w, m.Attrs, m.Values)
			return nil
		},
		func(r *Reader) any {
			m := Notify{Subscriber: r.Varint(), Seq: r.Uvarint()}
			m.Attrs, m.Values = decAttrs(r)
			return m
		})
	Register(KindAttach, Attach{},
		func(w *Writer, p any) error {
			m := p.(Attach)
			w.Uvarint(m.Ref)
			w.Varint(m.ID)
			return nil
		},
		func(r *Reader) any {
			return Attach{Ref: r.Uvarint(), ID: r.Varint()}
		})
	Register(KindAck, Ack{},
		func(w *Writer, p any) error {
			m := p.(Ack)
			w.Uvarint(m.Ref)
			w.String(m.Err)
			return nil
		},
		func(r *Reader) any {
			return Ack{Ref: r.Uvarint(), Err: r.String()}
		})
}
