// Package wire is the binary codec for DR-tree messages on real
// networks. A frame is a 4-byte big-endian length prefix followed by a
// payload of
//
//	version(1) kind(1) varint(from) varint(to) body
//
// where body is the kind-specific encoding of the message payload. The
// codec is engine-agnostic: any payload type registered through Register
// can ride a frame, which is how the same framing carries both the
// overlay maintenance protocol (internal/proto registers its message
// set) and the Broker-level subscribe/publish RPCs defined in this
// package. internal/transport moves frames over TCP; internal/simnet
// stays the deterministic in-process twin, so a frame's logical content
// is exactly one simnet.Message.
//
// Decoding is hardened against adversarial input: every primitive is
// bounds-checked against the remaining frame bytes before allocating,
// unknown versions and kinds are errors, and a decoder must consume its
// body exactly (trailing bytes are an error). Malformed input can make
// Decode fail; it must never make it panic or over-allocate — see
// FuzzDecodeFrame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"drtree/internal/geom"
	"drtree/internal/simnet"
)

// Version is the codec version carried in every frame's first payload
// byte. Decoders reject frames with any other value.
const Version byte = 1

// MaxFrame is the largest accepted frame payload (excluding the 4-byte
// length prefix). Larger frames are rejected before any allocation.
const MaxFrame = 1 << 20

// lenSize is the byte width of the frame length prefix.
const lenSize = 4

// Decode errors. Errors returned by DecodeFrame and ReadMessage wrap
// one of these sentinels.
var (
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadVersion    = errors.New("wire: unknown codec version")
	ErrUnknownKind   = errors.New("wire: unknown payload kind")
	ErrTrailingBytes = errors.New("wire: trailing bytes after payload body")
	ErrBadValue      = errors.New("wire: malformed value")
)

// Writer appends primitive encodings to a byte slice. Used by payload
// codecs registered through Register; encoding never fails.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer appending to buf (which may be nil). Other
// packages (the state journal codec) use it to build records with the
// same primitives frames use.
func NewWriter(buf []byte) *Writer { return &Writer{buf: buf} }

// Bytes returns everything written so far.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// Varint appends a zig-zag signed varint.
func (w *Writer) Varint(i int64) { w.buf = binary.AppendVarint(w.buf, i) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// F64 appends a float64 as 8 big-endian bytes of its IEEE-754 bits.
func (w *Writer) F64(f float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Rect appends a rectangle as dims followed by per-dimension (lo, hi)
// pairs. The empty rectangle encodes as dims = 0.
func (w *Writer) Rect(r geom.Rect) {
	d := r.Dims()
	w.Uvarint(uint64(d))
	for i := 0; i < d; i++ {
		w.F64(r.Lo(i))
		w.F64(r.Hi(i))
	}
}

// Point appends a point as dims followed by coordinates.
func (w *Writer) Point(p geom.Point) {
	w.Uvarint(uint64(len(p)))
	for _, v := range p {
		w.F64(v)
	}
}

// Reader decodes primitives from a byte slice with a sticky error:
// after the first failure every subsequent read returns a zero value,
// so payload codecs can decode straight-line and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader decoding buf from the start.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err reports the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records the first decode error (no-op if one is already set);
// payload decoders use it to report kind-specific validation failures.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining reports the undecoded byte count (decoders use it to
// validate declared lengths before allocating).
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.Fail(fmt.Errorf("%w: bad uvarint", ErrTruncated))
		return 0
	}
	r.off += n
	return u
}

// Varint decodes a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	i, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.Fail(fmt.Errorf("%w: bad varint", ErrTruncated))
		return 0
	}
	r.off += n
	return i
}

// Bool decodes one byte as a boolean; any value other than 0 or 1 is an
// error, so a frame has exactly one encoding.
func (r *Reader) Bool() bool {
	b := r.Byte()
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("%w: bool byte %#x", ErrBadValue, b))
		return false
	}
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.Fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// F64 decodes 8 big-endian bytes as a float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.Fail(ErrTruncated)
		return 0
	}
	u := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(u)
}

// String decodes a length-prefixed string. The length is validated
// against the remaining frame bytes before allocating.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.Fail(fmt.Errorf("%w: string length %d exceeds frame", ErrTruncated, n))
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Rect decodes a rectangle. dims is validated against the remaining
// bytes (16 per dimension) before allocating, and the bounds are
// re-validated through geom.NewRect so a corrupted frame cannot smuggle
// NaNs or inverted intervals into the overlay.
func (r *Reader) Rect() geom.Rect {
	d := r.Uvarint()
	if r.err != nil {
		return geom.Rect{}
	}
	if d == 0 {
		return geom.Rect{}
	}
	if d > uint64(r.Remaining())/16 {
		r.Fail(fmt.Errorf("%w: rect dims %d exceed frame", ErrTruncated, d))
		return geom.Rect{}
	}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		lo[i] = r.F64()
		hi[i] = r.F64()
	}
	if r.err != nil {
		return geom.Rect{}
	}
	rect, err := geom.NewRect(lo, hi)
	if err != nil {
		r.Fail(fmt.Errorf("%w: %v", ErrBadValue, err))
		return geom.Rect{}
	}
	return rect
}

// Point decodes a point; dims validated against remaining bytes (8 per
// coordinate) before allocating.
func (r *Reader) Point() geom.Point {
	d := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if d == 0 {
		return nil
	}
	if d > uint64(r.Remaining())/8 {
		r.Fail(fmt.Errorf("%w: point dims %d exceed frame", ErrTruncated, d))
		return nil
	}
	p := make(geom.Point, d)
	for i := range p {
		p[i] = r.F64()
	}
	return p
}

// AppendFrame appends the complete frame (length prefix + payload) for
// one message to dst and returns the extended slice. The payload type
// must be registered.
func AppendFrame(dst []byte, m simnet.Message) ([]byte, error) {
	kind, ent, err := lookupPayload(m.Payload)
	if err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix backfilled below
	w := Writer{buf: dst}
	w.Byte(Version)
	w.Byte(kind)
	w.Varint(int64(m.From))
	w.Varint(int64(m.To))
	if err := ent.enc(&w, m.Payload); err != nil {
		return dst[:start], err
	}
	dst = w.buf
	n := len(dst) - start - lenSize
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// EncodeFrame is AppendFrame into a fresh slice.
func EncodeFrame(m simnet.Message) ([]byte, error) { return AppendFrame(nil, m) }

// DecodeFrame decodes one complete frame (length prefix + payload) from
// the front of data, returning the message and the number of bytes
// consumed. It never panics on malformed input and never allocates more
// than the declared (validated) payload length.
func DecodeFrame(data []byte) (simnet.Message, int, error) {
	if len(data) < lenSize {
		return simnet.Message{}, 0, fmt.Errorf("%w: short length prefix", ErrTruncated)
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFrame {
		return simnet.Message{}, 0, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(len(data)-lenSize) < n {
		return simnet.Message{}, 0, fmt.Errorf("%w: declared %d bytes, have %d", ErrTruncated, n, len(data)-lenSize)
	}
	m, err := decodePayload(data[lenSize : lenSize+int(n)])
	if err != nil {
		return simnet.Message{}, 0, err
	}
	return m, lenSize + int(n), nil
}

// decodePayload decodes a frame payload (everything after the length
// prefix). The body must be consumed exactly.
func decodePayload(payload []byte) (simnet.Message, error) {
	if len(payload) < 2 {
		return simnet.Message{}, fmt.Errorf("%w: payload shorter than header", ErrTruncated)
	}
	if payload[0] != Version {
		return simnet.Message{}, fmt.Errorf("%w: %#x", ErrBadVersion, payload[0])
	}
	kind := payload[1]
	ent, ok := kindTable[kind]
	if !ok {
		return simnet.Message{}, fmt.Errorf("%w: %#x", ErrUnknownKind, kind)
	}
	r := &Reader{buf: payload, off: 2}
	from := r.Varint()
	to := r.Varint()
	body := ent.dec(r)
	if r.err != nil {
		return simnet.Message{}, fmt.Errorf("wire: decode %s: %w", ent.name, r.err)
	}
	if r.Remaining() != 0 {
		return simnet.Message{}, fmt.Errorf("%w: %d after %s body", ErrTrailingBytes, r.Remaining(), ent.name)
	}
	return simnet.Message{
		From:    simnet.NodeID(from),
		To:      simnet.NodeID(to),
		Payload: body,
	}, nil
}

// WriteMessage encodes m and writes the frame to w.
func WriteMessage(w io.Writer, m simnet.Message) error {
	buf, err := EncodeFrame(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// StreamReader decodes a sequence of frames from an io.Reader, reusing
// one internal buffer across messages.
type StreamReader struct {
	r   io.Reader
	hdr [lenSize]byte
	buf []byte
}

// NewStreamReader wraps r for frame-at-a-time decoding.
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// ReadMessage reads and decodes the next frame. It returns io.EOF on a
// clean end of stream and io.ErrUnexpectedEOF when the stream dies
// mid-frame.
func (s *StreamReader) ReadMessage() (simnet.Message, error) {
	if _, err := io.ReadFull(s.r, s.hdr[:]); err != nil {
		return simnet.Message{}, err
	}
	n := binary.BigEndian.Uint32(s.hdr[:])
	if n > MaxFrame {
		return simnet.Message{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(s.buf)) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return simnet.Message{}, err
	}
	return decodePayload(s.buf)
}
