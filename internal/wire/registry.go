package wire

import (
	"fmt"
	"reflect"
	"sort"

	"drtree/internal/simnet"
)

// Kind numbers are the stable wire contract: never renumber a shipped
// kind, only append. The space is partitioned so each layer owns a
// block and new layers cannot collide.
const (
	// KindBounce is the substrate's failure-detector notice (0x01).
	KindBounce byte = 0x01

	// Overlay maintenance protocol, 0x10–0x2f. The codecs live in
	// internal/proto (the payload types are unexported there); the kind
	// numbers live here so the space has a single owner.
	KindJoin         byte = 0x10
	KindAdd          byte = 0x11
	KindWelcome      byte = 0x12
	KindNewParent    byte = 0x13
	KindPromote      byte = 0x14
	KindLeave        byte = 0x15
	KindRemoveChild  byte = 0x16
	KindDissolved    byte = 0x17
	KindBecomeRoot   byte = 0x18
	KindShrink       byte = 0x19
	KindParentQuery  byte = 0x1a
	KindParentAck    byte = 0x1b
	KindChildQuery   byte = 0x1c
	KindChildReport  byte = 0x1d
	KindFilterUpdate byte = 0x1e
	KindEvent        byte = 0x1f

	// Broker-level RPCs, 0x40–0x5f (see rpc.go).
	KindHello       byte = 0x40
	KindSubscribe   byte = 0x41
	KindUnsubscribe byte = 0x42
	KindPublish     byte = 0x43
	KindNotify      byte = 0x44
	KindAck         byte = 0x45
	KindAttach      byte = 0x46
)

// EncodeFunc encodes a payload of the registered type into w. It may
// return an error only for values that have no encoding (e.g. a nested
// payload of an unregistered type); plain field encoding cannot fail.
type EncodeFunc func(w *Writer, payload any) error

// DecodeFunc decodes a payload body from r. Failures are reported
// through r's sticky error; the body must be consumed exactly.
type DecodeFunc func(r *Reader) any

type entry struct {
	name string
	typ  reflect.Type
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	kindTable = map[byte]*entry{}
	typeTable = map[reflect.Type]byte{}
)

// Register binds a payload kind number to a concrete payload type and
// its codec, in the spirit of gob.Register: call it from an init
// function of the package that owns the type. Registering a duplicate
// kind or type panics — that is a programming error, not input.
// Registration is not safe for use concurrently with encoding or
// decoding; do it at init time.
func Register(kind byte, prototype any, enc EncodeFunc, dec DecodeFunc) {
	typ := reflect.TypeOf(prototype)
	if typ == nil {
		panic("wire: Register with nil prototype")
	}
	if _, dup := kindTable[kind]; dup {
		panic(fmt.Sprintf("wire: duplicate kind %#x", kind))
	}
	if _, dup := typeTable[typ]; dup {
		panic(fmt.Sprintf("wire: duplicate type %v", typ))
	}
	kindTable[kind] = &entry{name: typ.String(), typ: typ, enc: enc, dec: dec}
	typeTable[typ] = kind
}

// KindOf reports the registered kind for a payload value.
func KindOf(payload any) (byte, bool) {
	k, ok := typeTable[reflect.TypeOf(payload)]
	return k, ok
}

// RegisteredKinds returns every registered kind number in ascending
// order (tests use it to prove codec coverage is exhaustive).
func RegisteredKinds() []byte {
	ks := make([]byte, 0, len(kindTable))
	for k := range kindTable {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func lookupPayload(payload any) (byte, *entry, error) {
	kind, ok := typeTable[reflect.TypeOf(payload)]
	if !ok {
		return 0, nil, fmt.Errorf("wire: unregistered payload type %T", payload)
	}
	return kind, kindTable[kind], nil
}

// Bounce frames nest the undeliverable original payload (kind byte +
// body) inside the bounce body. One level only: a bounce is never
// bounced, so a nested bounce is malformed input.
func init() {
	Register(KindBounce, simnet.Bounce{},
		func(w *Writer, payload any) error {
			b := payload.(simnet.Bounce)
			w.Varint(int64(b.To))
			kind, ent, err := lookupPayload(b.Original)
			if err != nil {
				return err
			}
			if kind == KindBounce {
				return fmt.Errorf("wire: refusing to encode nested bounce")
			}
			w.Byte(kind)
			return ent.enc(w, b.Original)
		},
		func(r *Reader) any {
			var b simnet.Bounce
			b.To = simnet.NodeID(r.Varint())
			kind := r.Byte()
			if r.err != nil {
				return b
			}
			ent, ok := kindTable[kind]
			if !ok || kind == KindBounce {
				r.Fail(fmt.Errorf("%w: nested kind %#x", ErrUnknownKind, kind))
				return b
			}
			b.Original = ent.dec(r)
			return b
		})
}
