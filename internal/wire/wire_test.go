package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"drtree/internal/simnet"
)

// rpcMessages is one message per RPC kind plus a bounce, with
// non-trivial field values (negative IDs, empty and non-empty slices,
// unicode) so a lazy codec cannot pass by accident.
func rpcMessages() []simnet.Message {
	return []simnet.Message{
		{From: 1, To: 2, Payload: Hello{Node: 3, Proto: ProtoVersion}},
		{From: -1, To: 0, Payload: Hello{Node: -7, Proto: 2}},
		{From: 0, To: 0, Payload: Attach{Ref: 11, ID: 42}},
		{From: 0, To: 0, Payload: Attach{Ref: 0, ID: -3}},
		{From: 0, To: 0, Payload: Subscribe{Ref: 1, ID: 42, Expr: "price in [10, 20] && volume in [0, 1e6]"}},
		{From: 0, To: 0, Payload: Subscribe{Ref: 0, ID: -9, Expr: ""}},
		{From: 0, To: 0, Payload: Unsubscribe{Ref: 1 << 40, ID: 7}},
		{From: 0, To: 0, Payload: Publish{Ref: 2, Producer: 5, Attrs: []string{"price", "vølume"}, Values: []float64{99.5, -3}}},
		{From: 0, To: 0, Payload: Publish{Ref: 3, Producer: 1}},
		{From: 0, To: 0, Payload: Notify{Subscriber: 8, Seq: 12, Attrs: []string{"p"}, Values: []float64{0.25}}},
		{From: 0, To: 0, Payload: Ack{Ref: 9, Err: "no such subscriber"}},
		{From: 0, To: 0, Payload: Ack{Ref: 10}},
		{From: 4, To: 9, Payload: simnet.Bounce{To: 9, Original: Publish{Ref: 1, Producer: 2, Attrs: []string{"x"}, Values: []float64{1}}}},
	}
}

func TestRoundTripRPC(t *testing.T) {
	for _, m := range rpcMessages() {
		buf, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m.Payload, err)
		}
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", m.Payload, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %T consumed %d of %d bytes", m.Payload, n, len(buf))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", m.Payload, got, m)
		}
	}
}

func TestAppendFrameConcatenates(t *testing.T) {
	msgs := rpcMessages()
	var buf []byte
	for _, m := range msgs {
		var err error
		buf, err = AppendFrame(buf, m)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	for i, want := range msgs {
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %#v want %#v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

func TestStreamReader(t *testing.T) {
	msgs := rpcMessages()
	var stream bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&stream, m); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	sr := NewStreamReader(&stream)
	for i, want := range msgs {
		got, err := sr.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("read %d: got %#v want %#v", i, got, want)
		}
	}
	if _, err := sr.ReadMessage(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestStreamReaderMidFrameCut(t *testing.T) {
	full, err := EncodeFrame(simnet.Message{From: 1, To: 2, Payload: Subscribe{Ref: 1, ID: 2, Expr: "x in [0, 1]"}})
	if err != nil {
		t.Fatal(err)
	}
	// Cut the stream at every byte boundary inside the frame: a peer
	// dying mid-frame must surface as ErrUnexpectedEOF (or EOF when
	// nothing at all arrived), never a hang or panic.
	for cut := 0; cut < len(full); cut++ {
		sr := NewStreamReader(bytes.NewReader(full[:cut]))
		_, err := sr.ReadMessage()
		switch {
		case cut == 0 && err != io.EOF:
			t.Fatalf("cut 0: got %v, want io.EOF", err)
		case cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrTruncated):
			t.Fatalf("cut %d: got %v", cut, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := EncodeFrame(simnet.Message{From: 1, To: 2, Payload: Ack{Ref: 3, Err: "x"}})
	if err != nil {
		t.Fatal(err)
	}

	badVersion := bytes.Clone(valid)
	badVersion[4] = 99
	badKind := bytes.Clone(valid)
	badKind[5] = 0xff
	trailing := bytes.Clone(valid)
	trailing = append(trailing[:len(trailing)-0], 0xaa)
	binary.BigEndian.PutUint32(trailing, uint32(len(trailing)-4))
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short prefix", []byte{0, 0}, ErrTruncated},
		{"declared beyond data", valid[:len(valid)-1], ErrTruncated},
		{"bad version", badVersion, ErrBadVersion},
		{"unknown kind", badKind, ErrUnknownKind},
		{"trailing bytes", trailing, ErrTrailingBytes},
		{"over MaxFrame", huge, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Truncate inside the payload at every boundary: always an error,
	// never a panic.
	for cut := 4; cut < len(valid); cut++ {
		data := bytes.Clone(valid[:cut])
		binary.BigEndian.PutUint32(data, uint32(cut-4))
		if _, _, err := DecodeFrame(data); err == nil {
			t.Errorf("cut %d: decode accepted a truncated body", cut)
		}
	}
}

func TestNestedBounceRejected(t *testing.T) {
	m := simnet.Message{Payload: simnet.Bounce{To: 1, Original: simnet.Bounce{To: 2, Original: Ack{}}}}
	if _, err := EncodeFrame(m); err == nil {
		t.Fatal("encoding a nested bounce succeeded")
	}
	if _, err := EncodeFrame(simnet.Message{Payload: struct{ X int }{1}}); err == nil {
		t.Fatal("encoding an unregistered payload succeeded")
	}
}

func TestBoolRejectsNonCanonical(t *testing.T) {
	// A Subscribe frame is bool-free; craft a Hello-sized check via the
	// Reader directly: bool bytes other than 0/1 are malformed.
	r := &Reader{buf: []byte{2}}
	r.Bool()
	if !errors.Is(r.Err(), ErrBadValue) {
		t.Fatalf("bool 2: got %v", r.Err())
	}
}

func TestKindRegistry(t *testing.T) {
	if k, ok := KindOf(Hello{}); !ok || k != KindHello {
		t.Fatalf("KindOf(Hello) = %#x, %v", k, ok)
	}
	if _, ok := KindOf(struct{}{}); ok {
		t.Fatal("KindOf accepted an unregistered type")
	}
	kinds := RegisteredKinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("RegisteredKinds not strictly ascending: %v", kinds)
		}
	}
	// The wire package itself registers the bounce and the seven RPCs;
	// overlay kinds are registered by internal/proto (tested there).
	want := []byte{KindBounce, KindHello, KindSubscribe, KindUnsubscribe, KindPublish, KindNotify, KindAck, KindAttach}
	for _, k := range want {
		if _, ok := kindTable[k]; !ok {
			t.Fatalf("kind %#x not registered", k)
		}
	}
}

// TestHelloLegacyDecode pins the negotiation's backward edge: a Hello
// encoded before the Proto field existed (body ends after Node) still
// decodes, reading Proto 0 — "speak the current protocol".
func TestHelloLegacyDecode(t *testing.T) {
	buf, err := EncodeFrame(simnet.Message{Payload: Hello{Node: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Proto 0 encodes as a single trailing zero byte; dropping it (and
	// shrinking the length prefix) reconstructs the pre-versioning frame.
	legacy := bytes.Clone(buf[:len(buf)-1])
	binary.BigEndian.PutUint32(legacy, uint32(len(legacy)-4))
	got, n, err := DecodeFrame(legacy)
	if err != nil {
		t.Fatalf("legacy hello: %v", err)
	}
	if n != len(legacy) {
		t.Fatalf("legacy hello consumed %d of %d bytes", n, len(legacy))
	}
	h, ok := got.Payload.(Hello)
	if !ok || h.Node != 5 || h.Proto != 0 {
		t.Fatalf("legacy hello decoded as %#v", got.Payload)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := &Reader{buf: []byte{}}
	_ = r.Byte()
	first := r.Err()
	if first == nil {
		t.Fatal("read past end did not fail")
	}
	_ = r.Uvarint()
	_ = r.F64()
	_ = r.Rect()
	_ = r.Point()
	_ = r.String()
	if r.Err() != first {
		t.Fatalf("sticky error replaced: %v -> %v", first, r.Err())
	}
}
