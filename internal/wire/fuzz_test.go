package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"drtree/internal/simnet"
)

// FuzzDecodeFrame hardens the codec against hostile bytes: malformed
// length prefixes, truncated frames, unknown version bytes and kinds,
// overlong varints, and bit-flipped valid frames must all either decode
// or error — never panic, hang, or allocate beyond the validated
// declared lengths. Anything that does decode must re-encode to a
// frame that decodes to the same message (the codec is canonical even
// when the input was not).
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range rpcMessages() {
		buf, err := EncodeFrame(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])
	}
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 2, Version, KindBounce})
	f.Add([]byte{0, 0, 0, 3, 99, KindHello, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < lenSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		m2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Compare via a third encode rather than DeepEqual: float
		// payloads may hold NaN bit patterns, which compare unequal as
		// values but identically as bytes.
		re2, err := EncodeFrame(m2)
		if err != nil {
			t.Fatalf("third encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("codec not stable:\n first %x\nsecond %x", re, re2)
		}
		// The stream reader must agree with the slice decoder.
		sm, serr := NewStreamReader(bytes.NewReader(data)).ReadMessage()
		if serr != nil {
			t.Fatalf("stream decode disagreed: %v", serr)
		}
		sre, err := EncodeFrame(sm)
		if err != nil || !bytes.Equal(sre, re) {
			t.Fatalf("stream decode produced a different message (err %v)", err)
		}
	})
}

// FuzzDecodeFrame above only sees the kinds registered inside this
// package; the overlay message codecs registered by internal/proto get
// the same treatment through that package's round-trip tests plus this
// bounce-nesting check, which exercises the recursive payload path.
func TestBounceRoundTripEveryRPCKind(t *testing.T) {
	for _, m := range rpcMessages() {
		if _, isBounce := m.Payload.(simnet.Bounce); isBounce {
			continue
		}
		b := simnet.Message{From: m.To, To: m.From, Payload: simnet.Bounce{To: m.To, Original: m.Payload}}
		buf, err := EncodeFrame(b)
		if err != nil {
			t.Fatalf("encode bounce(%T): %v", m.Payload, err)
		}
		got, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode bounce(%T): %v", m.Payload, err)
		}
		re, err := EncodeFrame(got)
		if err != nil || !bytes.Equal(re, buf) {
			t.Fatalf("bounce(%T) not stable (err %v)", m.Payload, err)
		}
	}
}
