package simnet

import (
	"math/rand/v2"
	"testing"
)

func TestDeliverRoundBasic(t *testing.T) {
	n := New()
	n.Send(Message{From: 1, To: 2, Payload: "hello"})
	n.Send(Message{From: 2, To: 1, Payload: "hi"})
	if n.Quiescent() || n.InFlight() != 2 {
		t.Fatal("messages must be pending")
	}
	inboxes := n.DeliverRound()
	if len(inboxes[2]) != 1 || inboxes[2][0].Payload != "hello" {
		t.Fatalf("inbox 2 = %v", inboxes[2])
	}
	if len(inboxes[1]) != 1 {
		t.Fatalf("inbox 1 = %v", inboxes[1])
	}
	if !n.Quiescent() {
		t.Fatal("network must be quiescent after delivery")
	}
	st := n.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 || st.Bounced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("stats must render")
	}
}

func TestFIFOPerSender(t *testing.T) {
	n := New()
	n.Send(Message{From: 1, To: 2, Payload: 1})
	n.Send(Message{From: 1, To: 2, Payload: 2})
	n.Send(Message{From: 1, To: 2, Payload: 3})
	inbox := n.DeliverRound()[2]
	for i, m := range inbox {
		if m.Payload != i+1 {
			t.Fatalf("out of order: %v", inbox)
		}
	}
}

func TestDeadBounce(t *testing.T) {
	n := New()
	n.Kill(9)
	if !n.Dead(9) {
		t.Fatal("Kill must mark dead")
	}
	n.Send(Message{From: 1, To: 9, Payload: "ping"})
	inboxes := n.DeliverRound()
	if len(inboxes) != 0 {
		t.Fatal("dead endpoint must receive nothing")
	}
	// The bounce is in flight for the next round.
	inboxes = n.DeliverRound()
	b, ok := inboxes[1][0].Payload.(Bounce)
	if !ok || b.To != 9 || b.Original != "ping" {
		t.Fatalf("bounce = %v", inboxes[1])
	}
	if n.Stats().Bounced != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	// Revive clears the mark.
	n.Revive(9)
	n.Send(Message{From: 1, To: 9, Payload: "again"})
	if got := n.DeliverRound()[9]; len(got) != 1 {
		t.Fatalf("revived endpoint inbox = %v", got)
	}
}

func TestDeadToDeadDrops(t *testing.T) {
	n := New()
	n.Kill(1)
	n.Kill(2)
	n.Send(Message{From: 1, To: 2, Payload: "x"})
	n.DeliverRound()
	if n.Stats().Dropped != 1 || n.Stats().Bounced != 0 {
		t.Fatalf("dead-to-dead must drop: %+v", n.Stats())
	}
}

func TestNoBounceMode(t *testing.T) {
	n := New()
	n.BounceDead = false
	n.Kill(9)
	n.Send(Message{From: 1, To: 9, Payload: "ping"})
	n.DeliverRound()
	if !n.Quiescent() {
		t.Fatal("drop mode must not generate traffic")
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestRandomDrops(t *testing.T) {
	n := New()
	n.DropRate = 0.5
	n.Rand = rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 1000; i++ {
		n.Send(Message{From: 1, To: 2, Payload: i})
	}
	inbox := n.DeliverRound()[2]
	if len(inbox) < 350 || len(inbox) > 650 {
		t.Fatalf("drop rate 0.5 delivered %d of 1000", len(inbox))
	}
	if n.Stats().Dropped+n.Stats().Delivered != 1000 {
		t.Fatalf("accounting: %+v", n.Stats())
	}
}

func TestSortedIDs(t *testing.T) {
	inboxes := map[NodeID][]Message{5: nil, 1: nil, 3: nil}
	ids := SortedIDs(inboxes)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("SortedIDs = %v", ids)
	}
}
