package simnet

import (
	"math/rand/v2"
	"testing"
)

func TestDeliverRoundBasic(t *testing.T) {
	n := New()
	n.Send(Message{From: 1, To: 2, Payload: "hello"})
	n.Send(Message{From: 2, To: 1, Payload: "hi"})
	if n.Quiescent() || n.InFlight() != 2 {
		t.Fatal("messages must be pending")
	}
	inboxes := n.DeliverRound()
	if len(inboxes[2]) != 1 || inboxes[2][0].Payload != "hello" {
		t.Fatalf("inbox 2 = %v", inboxes[2])
	}
	if len(inboxes[1]) != 1 {
		t.Fatalf("inbox 1 = %v", inboxes[1])
	}
	if !n.Quiescent() {
		t.Fatal("network must be quiescent after delivery")
	}
	st := n.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 || st.Bounced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("stats must render")
	}
}

func TestFIFOPerSender(t *testing.T) {
	n := New()
	n.Send(Message{From: 1, To: 2, Payload: 1})
	n.Send(Message{From: 1, To: 2, Payload: 2})
	n.Send(Message{From: 1, To: 2, Payload: 3})
	inbox := n.DeliverRound()[2]
	for i, m := range inbox {
		if m.Payload != i+1 {
			t.Fatalf("out of order: %v", inbox)
		}
	}
}

func TestDeadBounce(t *testing.T) {
	n := New()
	n.Kill(9)
	if !n.Dead(9) {
		t.Fatal("Kill must mark dead")
	}
	n.Send(Message{From: 1, To: 9, Payload: "ping"})
	inboxes := n.DeliverRound()
	if len(inboxes) != 0 {
		t.Fatal("dead endpoint must receive nothing")
	}
	// The bounce is in flight for the next round.
	inboxes = n.DeliverRound()
	b, ok := inboxes[1][0].Payload.(Bounce)
	if !ok || b.To != 9 || b.Original != "ping" {
		t.Fatalf("bounce = %v", inboxes[1])
	}
	if n.Stats().Bounced != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	// Revive clears the mark.
	n.Revive(9)
	n.Send(Message{From: 1, To: 9, Payload: "again"})
	if got := n.DeliverRound()[9]; len(got) != 1 {
		t.Fatalf("revived endpoint inbox = %v", got)
	}
}

func TestDeadToDeadDrops(t *testing.T) {
	n := New()
	n.Kill(1)
	n.Kill(2)
	n.Send(Message{From: 1, To: 2, Payload: "x"})
	n.DeliverRound()
	if n.Stats().Dropped != 1 || n.Stats().Bounced != 0 {
		t.Fatalf("dead-to-dead must drop: %+v", n.Stats())
	}
}

func TestNoBounceMode(t *testing.T) {
	n := New()
	n.BounceDead = false
	n.Kill(9)
	n.Send(Message{From: 1, To: 9, Payload: "ping"})
	n.DeliverRound()
	if !n.Quiescent() {
		t.Fatal("drop mode must not generate traffic")
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestRandomDrops(t *testing.T) {
	n := New()
	n.DropRate = 0.5
	n.Rand = rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 1000; i++ {
		n.Send(Message{From: 1, To: 2, Payload: i})
	}
	inbox := n.DeliverRound()[2]
	if len(inbox) < 350 || len(inbox) > 650 {
		t.Fatalf("drop rate 0.5 delivered %d of 1000", len(inbox))
	}
	if n.Stats().Dropped+n.Stats().Delivered != 1000 {
		t.Fatalf("accounting: %+v", n.Stats())
	}
}

func TestPartitionBlocksCrossGroupOnly(t *testing.T) {
	n := New()
	n.Partition([]NodeID{1, 2}, []NodeID{3, 4})
	if !n.Partitioned(1, 3) || n.Partitioned(1, 2) || n.Partitioned(3, 4) {
		t.Fatal("partition membership wrong")
	}
	// Unlisted nodes communicate freely with everyone.
	if n.Partitioned(1, 9) || n.Partitioned(9, 3) {
		t.Fatal("unlisted nodes must be unrestricted")
	}
	n.Send(Message{From: 1, To: 3, Payload: "cross"})
	n.Send(Message{From: 1, To: 2, Payload: "intra"})
	inboxes := n.DeliverRound()
	if len(inboxes[3]) != 0 {
		t.Fatal("cross-partition message must be dropped")
	}
	if len(inboxes[2]) != 1 {
		t.Fatal("intra-partition message must be delivered")
	}
	if st := n.Stats(); st.Partitioned != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Heal restores connectivity, including for messages still in flight.
	n.Send(Message{From: 1, To: 3, Payload: "after"})
	n.Heal()
	if got := n.DeliverRound()[3]; len(got) != 1 || got[0].Payload != "after" {
		t.Fatalf("healed inbox = %v", got)
	}
}

func TestSingleGroupPartitionIsNoop(t *testing.T) {
	n := New()
	n.Partition([]NodeID{1, 2, 3})
	if n.Partitioned(1, 2) {
		t.Fatal("single group must not partition anything")
	}
}

func TestDeterministicLinkDelay(t *testing.T) {
	n := New()
	n.Delay = func(from, to NodeID) int {
		if from == 1 && to == 2 {
			return 2
		}
		return 0
	}
	n.Send(Message{From: 1, To: 2, Payload: "slow"})
	n.Send(Message{From: 3, To: 2, Payload: "fast"})
	inbox := n.DeliverRound()[2]
	if len(inbox) != 1 || inbox[0].Payload != "fast" {
		t.Fatalf("round 1 inbox = %v", inbox)
	}
	if n.Quiescent() {
		t.Fatal("delayed message must stay pending")
	}
	if got := n.DeliverRound()[2]; len(got) != 0 {
		t.Fatalf("round 2 inbox = %v", got)
	}
	if got := n.DeliverRound()[2]; len(got) != 1 || got[0].Payload != "slow" {
		t.Fatalf("round 3 inbox = %v", got)
	}
	if !n.Quiescent() {
		t.Fatal("all messages delivered")
	}
	if st := n.Stats(); st.Delayed != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRandomLinkDelayBounded(t *testing.T) {
	n := New()
	n.DelayMax = 3
	n.Rand = rand.New(rand.NewPCG(5, 5))
	const total = 200
	for i := 0; i < total; i++ {
		n.Send(Message{From: 1, To: 2, Payload: i})
	}
	delivered := 0
	for r := 0; r < n.DelayMax+1; r++ {
		delivered += len(n.DeliverRound()[2])
	}
	if delivered != total || !n.Quiescent() {
		t.Fatalf("delivered %d of %d, quiescent=%v", delivered, total, n.Quiescent())
	}
	if n.Stats().Delayed == 0 {
		t.Fatal("some messages must have been delayed")
	}
}

func TestSortedIDs(t *testing.T) {
	inboxes := map[NodeID][]Message{5: nil, 1: nil, 3: nil}
	ids := SortedIDs(inboxes)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("SortedIDs = %v", ids)
	}
}
