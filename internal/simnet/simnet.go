// Package simnet is the simulated network substrate for the protocol
// actors: a deterministic, round-based message bus. Messages sent during
// round r are delivered at the start of round r+1 (FIFO per sender);
// messages to crashed endpoints optionally bounce back to the sender as
// failure notices (the simulation stand-in for a timeout-based failure
// detector).
//
// The substrate replaces the paper's physical peer-to-peer network (see
// DESIGN.md §4): the protocol's step and message counts are measured in
// rounds and deliveries, both independent of wall-clock hardware.
package simnet

import (
	"fmt"
	"math/rand/v2"
	"slices"
)

// NodeID identifies a network endpoint.
type NodeID int

// Message is one payload in flight.
type Message struct {
	From, To NodeID
	Payload  any
}

// Bounce notifies a sender that its message could not be delivered
// because the destination is dead (failure-detector surrogate).
type Bounce struct {
	// To is the dead destination.
	To NodeID
	// Original is the undeliverable payload.
	Original any
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent        int
	Delivered   int
	Dropped     int
	Bounced     int
	Partitioned int // dropped because sender and receiver were in different partition groups
	Delayed     int // messages that were held for at least one extra round
}

// scheduled is a message with its earliest delivery round.
type scheduled struct {
	msg Message
	due int
}

// Network is the round-based bus. Not safe for concurrent use; the
// goroutine runtime (proto.LiveCluster) provides a concurrent driver.
type Network struct {
	pending []scheduled
	round   int
	dead    map[NodeID]bool
	groups  map[NodeID]int
	stats   Stats

	// DropRate randomly drops this fraction of messages (transient loss).
	DropRate float64
	// Rand drives random drops and random link delays; required when
	// DropRate > 0 or DelayMax > 0.
	Rand *rand.Rand
	// BounceDead controls whether sends to dead endpoints generate
	// Bounce notices (true = failure detector available).
	BounceDead bool
	// DelayMax, when positive, holds each message for an extra uniform
	// 0..DelayMax rounds beyond the usual one-round latency (adversarial
	// per-link jitter; FIFO per sender no longer holds across different
	// delays).
	DelayMax int
	// Delay, when non-nil, overrides DelayMax with a deterministic
	// per-link extra delay in rounds.
	Delay func(from, to NodeID) int
}

// New creates an empty network with dead-endpoint bounces enabled.
func New() *Network {
	return &Network{dead: make(map[NodeID]bool), BounceDead: true}
}

// Send enqueues messages for delivery at the next round (plus any
// configured per-link delay).
func (n *Network) Send(msgs ...Message) {
	for _, m := range msgs {
		n.stats.Sent++
		extra := 0
		switch {
		case n.Delay != nil:
			extra = n.Delay(m.From, m.To)
		case n.DelayMax > 0 && n.Rand != nil:
			extra = n.Rand.IntN(n.DelayMax + 1)
		}
		if extra < 0 {
			extra = 0
		}
		if extra > 0 {
			n.stats.Delayed++
		}
		n.pending = append(n.pending, scheduled{msg: m, due: n.round + 1 + extra})
	}
}

// Partition installs a partition: every listed node belongs to one group,
// and messages between nodes of *different* groups are dropped at
// delivery time. Nodes not listed in any group communicate freely with
// everyone. A nil or single-group call is equivalent to Heal.
func (n *Network) Partition(groups ...[]NodeID) {
	if len(groups) < 2 {
		n.groups = nil
		return
	}
	n.groups = make(map[NodeID]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.groups[id] = g
		}
	}
}

// Heal removes any installed partition.
func (n *Network) Heal() { n.groups = nil }

// Partitioned reports whether the link from → to is currently severed by
// a partition.
func (n *Network) Partitioned(from, to NodeID) bool {
	if n.groups == nil {
		return false
	}
	gf, okf := n.groups[from]
	gt, okt := n.groups[to]
	return okf && okt && gf != gt
}

// Kill marks an endpoint as dead: future (and already pending) messages
// to it are undeliverable.
func (n *Network) Kill(id NodeID) { n.dead[id] = true }

// Revive clears the dead mark (a fresh process reusing the address).
func (n *Network) Revive(id NodeID) { delete(n.dead, id) }

// Dead reports whether the endpoint is marked dead.
func (n *Network) Dead(id NodeID) bool { return n.dead[id] }

// Quiescent reports whether no messages are in flight.
func (n *Network) Quiescent() bool { return len(n.pending) == 0 }

// Stats returns the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// InFlight returns the number of pending messages.
func (n *Network) InFlight() int { return len(n.pending) }

// DeliverRound advances one round and delivers every due message,
// returning the per-node inboxes (keys sorted for deterministic iteration
// by callers). Sends to dead endpoints are dropped or bounced back to the
// (live) sender; messages across an active partition are dropped; delayed
// messages stay pending until their round comes.
func (n *Network) DeliverRound() map[NodeID][]Message {
	n.round++
	batch := n.pending
	n.pending = n.pending[:0:0]
	inboxes := make(map[NodeID][]Message)
	for _, sm := range batch {
		m := sm.msg
		if sm.due > n.round {
			n.pending = append(n.pending, sm)
			continue
		}
		if n.DropRate > 0 && n.Rand != nil && n.Rand.Float64() < n.DropRate {
			n.stats.Dropped++
			continue
		}
		if n.Partitioned(m.From, m.To) {
			n.stats.Partitioned++
			continue
		}
		if n.dead[m.To] {
			if n.BounceDead && !n.dead[m.From] {
				n.stats.Bounced++
				n.pending = append(n.pending, scheduled{
					due: n.round + 1,
					msg: Message{
						From:    m.To,
						To:      m.From,
						Payload: Bounce{To: m.To, Original: m.Payload},
					},
				})
			} else {
				n.stats.Dropped++
			}
			continue
		}
		n.stats.Delivered++
		inboxes[m.To] = append(inboxes[m.To], m)
	}
	return inboxes
}

// SortedIDs returns the inbox keys in ascending order (deterministic
// scheduling helper).
func SortedIDs(inboxes map[NodeID][]Message) []NodeID {
	out := make([]NodeID, 0, len(inboxes))
	for id := range inboxes {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// String renders traffic counters.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d bounced=%d partitioned=%d delayed=%d",
		s.Sent, s.Delivered, s.Dropped, s.Bounced, s.Partitioned, s.Delayed)
}
