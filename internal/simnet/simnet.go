// Package simnet is the simulated network substrate for the protocol
// actors: a deterministic, round-based message bus. Messages sent during
// round r are delivered at the start of round r+1 (FIFO per sender);
// messages to crashed endpoints optionally bounce back to the sender as
// failure notices (the simulation stand-in for a timeout-based failure
// detector).
//
// The substrate replaces the paper's physical peer-to-peer network (see
// DESIGN.md §4): the protocol's step and message counts are measured in
// rounds and deliveries, both independent of wall-clock hardware.
package simnet

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// NodeID identifies a network endpoint.
type NodeID int

// Message is one payload in flight.
type Message struct {
	From, To NodeID
	Payload  any
}

// Bounce notifies a sender that its message could not be delivered
// because the destination is dead (failure-detector surrogate).
type Bounce struct {
	// To is the dead destination.
	To NodeID
	// Original is the undeliverable payload.
	Original any
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	Bounced   int
}

// Network is the round-based bus. Not safe for concurrent use; the
// goroutine runtime (proto.LiveCluster) provides a concurrent driver.
type Network struct {
	pending []Message
	dead    map[NodeID]bool
	stats   Stats

	// DropRate randomly drops this fraction of messages (transient loss).
	DropRate float64
	// Rand drives random drops; required when DropRate > 0.
	Rand *rand.Rand
	// BounceDead controls whether sends to dead endpoints generate
	// Bounce notices (true = failure detector available).
	BounceDead bool
}

// New creates an empty network with dead-endpoint bounces enabled.
func New() *Network {
	return &Network{dead: make(map[NodeID]bool), BounceDead: true}
}

// Send enqueues messages for delivery at the next round.
func (n *Network) Send(msgs ...Message) {
	for _, m := range msgs {
		n.stats.Sent++
		n.pending = append(n.pending, m)
	}
}

// Kill marks an endpoint as dead: future (and already pending) messages
// to it are undeliverable.
func (n *Network) Kill(id NodeID) { n.dead[id] = true }

// Revive clears the dead mark (a fresh process reusing the address).
func (n *Network) Revive(id NodeID) { delete(n.dead, id) }

// Dead reports whether the endpoint is marked dead.
func (n *Network) Dead(id NodeID) bool { return n.dead[id] }

// Quiescent reports whether no messages are in flight.
func (n *Network) Quiescent() bool { return len(n.pending) == 0 }

// Stats returns the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// InFlight returns the number of pending messages.
func (n *Network) InFlight() int { return len(n.pending) }

// DeliverRound delivers every pending message, returning the per-node
// inboxes (keys sorted for deterministic iteration by callers). Sends to
// dead endpoints are dropped or bounced back to the (live) sender.
func (n *Network) DeliverRound() map[NodeID][]Message {
	batch := n.pending
	n.pending = nil
	inboxes := make(map[NodeID][]Message)
	for _, m := range batch {
		if n.DropRate > 0 && n.Rand != nil && n.Rand.Float64() < n.DropRate {
			n.stats.Dropped++
			continue
		}
		if n.dead[m.To] {
			if n.BounceDead && !n.dead[m.From] {
				n.stats.Bounced++
				n.pending = append(n.pending, Message{
					From:    m.To,
					To:      m.From,
					Payload: Bounce{To: m.To, Original: m.Payload},
				})
			} else {
				n.stats.Dropped++
			}
			continue
		}
		n.stats.Delivered++
		inboxes[m.To] = append(inboxes[m.To], m)
	}
	return inboxes
}

// SortedIDs returns the inbox keys in ascending order (deterministic
// scheduling helper).
func SortedIDs(inboxes map[NodeID][]Message) []NodeID {
	out := make([]NodeID, 0, len(inboxes))
	for id := range inboxes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders traffic counters.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d bounced=%d",
		s.Sent, s.Delivered, s.Dropped, s.Bounced)
}
