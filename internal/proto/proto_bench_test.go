package proto

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/geom"
)

// BenchmarkProtocolJoin measures wire-protocol join cost (rounds are
// bounded by the tree height, Lemma 3.2).
func BenchmarkProtocolJoin(b *testing.B) {
	cl, err := NewCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 1; i <= 40; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			b.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(400); !ok {
			b.Fatalf("build did not stabilize: %v", cl.CheckLegal())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := core.ProcID(1000 + i)
		x, y := rng.Float64()*500, rng.Float64()*500
		if err := cl.Join(id, geom.R2(x, y, x+30, y+30)); err != nil {
			b.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(400); !ok {
			b.Fatalf("join did not stabilize: %v", cl.CheckLegal())
		}
		b.StopTimer()
		if err := cl.Leave(id); err != nil {
			b.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(600); !ok {
			b.Fatalf("leave did not stabilize: %v", cl.CheckLegal())
		}
		b.StartTimer()
	}
}

// BenchmarkProtocolPublish measures end-to-end dissemination cost over
// the message substrate.
func BenchmarkProtocolPublish(b *testing.B) {
	cl, err := NewCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 1; i <= 40; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			b.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(400); !ok {
			b.Fatalf("build did not stabilize: %v", cl.CheckLegal())
		}
	}
	ids := cl.IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		if _, err := cl.Publish(ids[i%len(ids)], ev); err != nil {
			b.Fatal(err)
		}
	}
}
