package proto

import (
	"fmt"

	"drtree/internal/core"
	"drtree/internal/geom"
)

// CheckLegal verifies Definition 3.1 on the distributed configuration,
// reading only the nodes' local states (as an omniscient observer):
// unique root, mutual parent/children coherence, degree bounds, own-child
// chains, contiguous instance chains, MBR coherence against the actual
// child MBRs, and reachability of every live process. The cover condition
// is repaired by the sequential engine's CHECK_COVER and is not part of
// the wire protocol's legality (see DESIGN.md).
func (c *Cluster) CheckLegal() error {
	if len(c.nodes) == 0 {
		return nil
	}
	// Exactly one root: a topmost, self-parented instance.
	rootID := core.NoProc
	rootH := -1
	for _, id := range c.IDs() {
		n := c.nodes[id]
		in := n.at(n.top)
		if in == nil {
			return fmt.Errorf("proto: node %d missing its topmost instance", id)
		}
		if in.parent == id {
			if rootID != core.NoProc {
				return fmt.Errorf("proto: two roots: %d@%d and %d@%d", rootID, rootH, id, n.top)
			}
			rootID, rootH = id, n.top
		}
	}
	if rootID == core.NoProc {
		return fmt.Errorf("proto: no root instance")
	}

	m, M := c.cfg.MinFanout, c.cfg.MaxFanout
	reached := make(map[core.ProcID]bool)
	var walk func(id core.ProcID, h int) (geom.Rect, error)
	walk = func(id core.ProcID, h int) (geom.Rect, error) {
		n := c.nodes[id]
		if n == nil {
			return geom.Rect{}, fmt.Errorf("proto: dead process %d referenced at height %d", id, h)
		}
		in := n.at(h)
		if in == nil {
			return geom.Rect{}, fmt.Errorf("proto: process %d missing instance at %d", id, h)
		}
		if h == 0 {
			reached[id] = true
			if !in.mbr.Equal(n.filter) {
				return geom.Rect{}, fmt.Errorf("proto: leaf MBR of %d is %v, want filter", id, in.mbr)
			}
			return in.mbr, nil
		}
		isRoot := id == rootID && h == rootH
		if !isRoot && in.numChildren() < m {
			return geom.Rect{}, fmt.Errorf("proto: node (%d,%d) underflows: %d < m=%d", id, h, in.numChildren(), m)
		}
		if isRoot && len(c.nodes) > 1 && in.numChildren() < 2 {
			return geom.Rect{}, fmt.Errorf("proto: root (%d,%d) has %d children, want >= 2", id, h, in.numChildren())
		}
		if in.numChildren() > M {
			return geom.Rect{}, fmt.Errorf("proto: node (%d,%d) overflows: %d > M=%d", id, h, in.numChildren(), M)
		}
		if !in.hasChild(id) {
			return geom.Rect{}, fmt.Errorf("proto: node (%d,%d) violates the own-child invariant", id, h)
		}
		var union geom.Rect
		for _, ch := range in.childID {
			cn := c.nodes[ch]
			if cn == nil {
				return geom.Rect{}, fmt.Errorf("proto: node (%d,%d) lists dead child %d", id, h, ch)
			}
			ci := cn.at(h - 1)
			if ci == nil {
				return geom.Rect{}, fmt.Errorf("proto: child %d of (%d,%d) missing instance", ch, id, h)
			}
			if ci.parent != id {
				return geom.Rect{}, fmt.Errorf("proto: child %d of (%d,%d) names parent %d", ch, id, h, ci.parent)
			}
			// The parent's cached view of the child MBR routes both joins
			// and events; a configuration is only legitimate once the
			// cache agrees with the child's actual state (a stale, too
			// small cache causes dissemination false negatives even when
			// every node-local MBR is coherent).
			if cached := in.childMBR[in.childIndex(ch)]; !cached.Equal(ci.mbr) {
				return geom.Rect{}, fmt.Errorf("proto: node (%d,%d) caches child %d MBR %v, child has %v",
					id, h, ch, cached, ci.mbr)
			}
			sub, err := walk(ch, h-1)
			if err != nil {
				return geom.Rect{}, err
			}
			union = union.Union(sub)
		}
		if !in.mbr.Equal(union) {
			return geom.Rect{}, fmt.Errorf("proto: MBR of (%d,%d) is %v, want %v", id, h, in.mbr, union)
		}
		if want := in.numChildren() < m; in.underloaded != want {
			return geom.Rect{}, fmt.Errorf("proto: underloaded flag of (%d,%d) wrong", id, h)
		}
		return union, nil
	}
	if _, err := walk(rootID, rootH); err != nil {
		return err
	}
	if len(reached) != len(c.nodes) {
		return fmt.Errorf("proto: only %d of %d processes reachable from the root", len(reached), len(c.nodes))
	}
	for id, n := range c.nodes {
		for h := 0; h <= n.top; h++ {
			if n.at(h) == nil {
				return fmt.Errorf("proto: node %d chain gap at %d", id, h)
			}
		}
		if c := n.instCount(); c != n.top+1 {
			return fmt.Errorf("proto: node %d owns %d instances, top=%d", id, c, n.top)
		}
	}
	return nil
}

// Describe renders the distributed configuration level by level.
func (c *Cluster) Describe() string {
	maxTop := 0
	for _, n := range c.nodes {
		if n.top > maxTop {
			maxTop = n.top
		}
	}
	out := ""
	for h := maxTop; h >= 0; h-- {
		out += fmt.Sprintf("height %d:", h)
		for _, id := range c.IDs() {
			n := c.nodes[id]
			in := n.at(h)
			if in == nil {
				continue
			}
			if h == 0 {
				out += fmt.Sprintf(" P%d", id)
				continue
			}
			out += fmt.Sprintf(" P%d%v", id, in.childID)
		}
		out += "\n"
	}
	return out
}
