package proto

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/geom"
)

// TestClusterUpdateFilter drives FILTER_UPDATEs (grow, shrink, move)
// through the round-based cluster and certifies that the periodic checks
// restabilize the overlay: legal configuration, root MBR = union of the
// updated filters, zero false negatives on probes.
func TestClusterUpdateFilter(t *testing.T) {
	cl, err := NewCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 55))
	live := map[core.ProcID]geom.Rect{}
	for i := 1; i <= 40; i++ {
		x, y := rng.Float64()*400, rng.Float64()*400
		f := geom.R2(x, y, x+10+rng.Float64()*25, y+10+rng.Float64()*25)
		if err := cl.Join(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
		cl.Step(false)
		live[core.ProcID(i)] = f
	}
	if st := cl.Stabilize(); !st.Converged {
		t.Fatalf("initial overlay did not stabilize: %v", cl.CheckLegal())
	}

	for k := 0; k < 12; k++ {
		id := core.ProcID(1 + rng.IntN(40))
		old := live[id]
		var f geom.Rect
		switch k % 3 {
		case 0:
			x, y := rng.Float64()*500, rng.Float64()*500
			f = old.Union(geom.R2(x, y, x+20, y+20))
		case 1:
			f = geom.R2(old.Lo(0), old.Lo(1),
				(old.Lo(0)+old.Hi(0))/2, (old.Lo(1)+old.Hi(1))/2)
		default:
			x, y := 600+rng.Float64()*100, 600+rng.Float64()*100
			f = geom.R2(x, y, x+15, y+15)
		}
		if err := cl.UpdateFilter(id, f); err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		live[id] = f
	}

	if st := cl.Stabilize(); !st.Converged {
		t.Fatalf("overlay did not restabilize after filter updates: %v", cl.CheckLegal())
	}
	if err := cl.CheckLegal(); err != nil {
		t.Fatalf("illegal after filter updates: %v", err)
	}
	var union geom.Rect
	for _, f := range live {
		union = union.Union(f)
	}
	if got := cl.RootMBR(); !got.Equal(union) {
		t.Fatalf("root MBR %v, want filter union %v", got, union)
	}
	for id, f := range live {
		got, ok := cl.Filter(id)
		if !ok || !got.Equal(f) {
			t.Fatalf("Filter(%d) = %v, %v, want %v", id, got, ok, f)
		}
	}
	for k := 0; k < 10; k++ {
		ev := geom.Point{rng.Float64() * 700, rng.Float64() * 700}
		d, err := cl.Publish(1, ev)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[core.ProcID]bool, len(d.Received))
		for _, id := range d.Received {
			got[id] = true
		}
		for id, f := range live {
			if f.ContainsPoint(ev) && !got[id] {
				t.Fatalf("probe %d: false negative %d for %v", k, id, ev)
			}
		}
	}
}

// TestClusterUpdateFilterValidation covers the error paths.
func TestClusterUpdateFilterValidation(t *testing.T) {
	cl, err := NewCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.UpdateFilter(1, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("unknown process must error")
	}
	if err := cl.Join(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := cl.UpdateFilter(1, geom.Rect{}); err == nil {
		t.Error("empty filter must error")
	}
	if err := cl.UpdateFilter(1, geom.MustRect([]float64{0}, []float64{1})); err == nil {
		t.Error("dimension mismatch must error")
	}
}

// TestLiveUpdateFilter exercises the FilterUpdater capability on the
// goroutine-backed runtime: update a filter, await legality, publish.
func TestLiveUpdateFilter(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(9, 99))
	live := map[core.ProcID]geom.Rect{}
	for i := 1; i <= 12; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		f := geom.R2(x, y, x+20, y+20)
		if err := lc.Join(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
		live[core.ProcID(i)] = f
	}
	if st := lc.Stabilize(); !st.Converged {
		t.Fatalf("initial overlay did not stabilize: %v", lc.CheckLegal())
	}

	moved := geom.R2(300, 300, 340, 340)
	if err := lc.UpdateFilter(3, moved); err != nil {
		t.Fatal(err)
	}
	live[3] = moved
	grown := live[5].Union(geom.R2(250, 0, 280, 30))
	if err := lc.UpdateFilter(5, grown); err != nil {
		t.Fatal(err)
	}
	live[5] = grown

	if st := lc.Stabilize(); !st.Converged {
		t.Fatalf("overlay did not restabilize after filter updates: %v", lc.CheckLegal())
	}
	var union geom.Rect
	for _, f := range live {
		union = union.Union(f)
	}
	if got := lc.RootMBR(); !got.Equal(union) {
		t.Fatalf("root MBR %v, want filter union %v", got, union)
	}
	ev := geom.Point{320, 320}
	d, err := lc.Publish(1, ev)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	for id, f := range live {
		if f.ContainsPoint(ev) && !got[id] {
			t.Fatalf("false negative %d for %v", id, ev)
		}
	}

	if err := lc.UpdateFilter(99, moved); err == nil {
		t.Error("unknown process must error")
	}
	if err := lc.UpdateFilter(1, geom.Rect{}); err == nil {
		t.Error("empty filter must error")
	}
	if err := lc.UpdateFilter(1, geom.MustRect([]float64{0}, []float64{1})); err == nil {
		t.Error("dimension mismatch must error")
	}
}
