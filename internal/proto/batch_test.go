package proto

import (
	"math/rand/v2"
	"slices"
	"testing"

	"drtree/internal/core"
	"drtree/internal/geom"
)

// buildStableCluster grows and stabilizes a seeded round-based cluster.
func buildStableCluster(t *testing.T, n int, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 17))
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+20, y+20)); err != nil {
			t.Fatal(err)
		}
		cl.Step(false)
	}
	if st := cl.Stabilize(); !st.Converged {
		t.Fatalf("cluster did not stabilize: %v", cl.CheckLegal())
	}
	return cl
}

// TestClusterPublishBatchMatchesSequential publishes the same seeded
// event stream sequentially on one cluster and as one batch on a twin,
// requiring identical receiver sets, classification and per-event
// message counts — the shared round budget may only change Rounds.
func TestClusterPublishBatchMatchesSequential(t *testing.T) {
	const n, events = 60, 24
	rng := rand.New(rand.NewPCG(6, 66))
	batch := make([]core.Publication, events)
	for k := range batch {
		batch[k] = core.Publication{
			Producer: core.ProcID(1 + rng.IntN(n)),
			Event:    geom.Point{rng.Float64() * 220, rng.Float64() * 220},
		}
	}

	seq := buildStableCluster(t, n, 3)
	var want []core.Delivery
	var seqRounds int
	for _, pb := range batch {
		d, err := seq.Publish(pb.Producer, pb.Event)
		if err != nil {
			t.Fatal(err)
		}
		seqRounds += d.Rounds
		want = append(want, d)
	}

	cl := buildStableCluster(t, n, 3)
	got, err := cl.PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != events {
		t.Fatalf("batch returned %d deliveries, want %d", len(got), events)
	}
	batchRounds := got[0].Rounds
	for k := range got {
		if !slices.Equal(got[k].Received, want[k].Received) {
			t.Errorf("event %d: received %v, sequential %v", k, got[k].Received, want[k].Received)
		}
		if !slices.Equal(got[k].TruePositives, want[k].TruePositives) {
			t.Errorf("event %d: true positives %v, sequential %v", k, got[k].TruePositives, want[k].TruePositives)
		}
		if !slices.Equal(got[k].FalsePositives, want[k].FalsePositives) {
			t.Errorf("event %d: false positives %v, sequential %v", k, got[k].FalsePositives, want[k].FalsePositives)
		}
		if got[k].Messages != want[k].Messages {
			t.Errorf("event %d: %d messages, sequential %d", k, got[k].Messages, want[k].Messages)
		}
		if got[k].Rounds != batchRounds {
			t.Errorf("event %d: Rounds %d, want the shared batch drain %d", k, got[k].Rounds, batchRounds)
		}
	}
	// The point of the batch: the disseminations overlap, so the whole
	// batch drains in far fewer rounds than the sequential sum.
	if batchRounds >= seqRounds {
		t.Errorf("batch drained in %d rounds, sequential publishes took %d — no pipelining", batchRounds, seqRounds)
	}
}

// TestClusterPublishBatchValidation covers the batch entry's error paths.
func TestClusterPublishBatchValidation(t *testing.T) {
	cl := buildStableCluster(t, 8, 9)
	if ds, err := cl.PublishBatch(nil); err != nil || len(ds) != 0 {
		t.Errorf("empty batch: %v, %v", ds, err)
	}
	if _, err := cl.PublishBatch([]core.Publication{
		{Producer: 1, Event: geom.Point{1, 1}},
		{Producer: 404, Event: geom.Point{1, 1}},
	}); err == nil {
		t.Error("unknown producer must error")
	}
}

// TestLivePublishBatch runs a batch through the goroutine runtime and
// checks exact ground-truth delivery per event plus per-event message
// attribution (messages must be positive for any multi-process
// delivery and the tracking map must not leak).
func TestLivePublishBatch(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(11, 7))
	const n = 20
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if err := lc.Join(core.ProcID(i), geom.R2(x, y, x+25, y+25)); err != nil {
			t.Fatal(err)
		}
	}
	if st := lc.Stabilize(); !st.Converged {
		t.Fatalf("live cluster did not stabilize: %v", lc.CheckLegal())
	}
	batch := make([]core.Publication, 8)
	for k := range batch {
		batch[k] = core.Publication{
			Producer: core.ProcID(1 + rng.IntN(n)),
			Event:    geom.Point{rng.Float64() * 120, rng.Float64() * 120},
		}
	}
	ds, err := lc.PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range ds {
		var truth []core.ProcID
		for _, id := range lc.ProcIDs() {
			if f, ok := lc.Filter(id); ok && f.ContainsPoint(batch[k].Event) {
				truth = append(truth, id)
			}
		}
		if !slices.Equal(d.TruePositives, truth) {
			t.Errorf("event %d: true positives %v, want %v", k, d.TruePositives, truth)
		}
	}
	lc.mu.Lock()
	leaked := len(lc.msgsByEvent)
	lc.mu.Unlock()
	if leaked != 0 {
		t.Errorf("msgsByEvent leaked %d entries after the batch", leaked)
	}
}
