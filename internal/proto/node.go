package proto

import (
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
	"drtree/internal/split"
)

// Config parameterizes a protocol cluster.
type Config struct {
	// MinFanout and MaxFanout are the paper's m and M (M >= 2m).
	MinFanout, MaxFanout int
	// Split is the node-splitting policy (default quadratic).
	Split split.Policy
	// CheckEvery is the period, in rounds, of the CHECK_* timers.
	CheckEvery int
	// UnderloadPatience is how many consecutive check periods a non-root
	// node tolerates being underloaded before dissolving and re-inserting
	// its children (the Figure 14 fallback).
	UnderloadPatience int
	// PublishBudget bounds, in rounds, how long one Publish may run
	// before giving up on draining the network. 0 means adaptive
	// (800 + 200 per live process). The goroutine-backed LiveCluster
	// maps rounds onto its 2ms actor tick.
	PublishBudget int
	// StabilizeBudget bounds, in rounds, one Stabilize call. 0 means
	// adaptive (800 + 200 per live process); the LiveCluster tick
	// mapping applies here too.
	StabilizeBudget int
}

func (c Config) withDefaults() Config {
	if c.Split == nil {
		c.Split = split.Quadratic{}
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 2
	}
	if c.UnderloadPatience == 0 {
		c.UnderloadPatience = 2
	}
	return c
}

// childState is the cached view a parent keeps of one child.
type childState struct {
	mbr         geom.Rect
	underloaded bool
}

// instance is one per-level node of a process (paper §3.2 data
// structures), kept strictly local to its owner.
type instance struct {
	parent      core.ProcID
	children    map[core.ProcID]*childState
	mbr         geom.Rect
	underloaded bool

	underRounds int // consecutive check periods spent underloaded
}

// Node is one process actor.
type Node struct {
	id     core.ProcID
	filter geom.Rect
	cfg    Config

	// inst is the instance table indexed by height; a node owns the
	// contiguous range 0..top (nil entries are gaps left by faults). Use
	// at() for reads so out-of-range heights resolve to nil.
	inst []*instance
	top  int

	// rejoinPending marks an orphaned topmost instance awaiting re-join.
	rejoinPending bool

	// Delivery accounting.
	seen      map[int64]bool
	Delivered int
	FalsePos  int

	out []simnet.Message
}

func newNode(id core.ProcID, filter geom.Rect, cfg Config) *Node {
	n := &Node{
		id:     id,
		filter: filter,
		cfg:    cfg,
		inst:   make([]*instance, 0, 4),
		seen:   make(map[int64]bool),
	}
	n.setInst(0, &instance{parent: id, mbr: filter})
	return n
}

// at returns the node's instance at height h, or nil when h is out of
// range or vacant.
func (n *Node) at(h int) *instance {
	if h < 0 || h >= len(n.inst) {
		return nil
	}
	return n.inst[h]
}

// setInst stores in at height h, growing the table as needed.
func (n *Node) setInst(h int, in *instance) {
	for len(n.inst) <= h {
		n.inst = append(n.inst, nil)
	}
	n.inst[h] = in
}

// clearInst vacates height h and trims trailing vacancies.
func (n *Node) clearInst(h int) {
	if h < 0 || h >= len(n.inst) {
		return
	}
	n.inst[h] = nil
	l := len(n.inst)
	for l > 0 && n.inst[l-1] == nil {
		l--
	}
	n.inst = n.inst[:l]
}

// instCount returns the number of instances the node currently owns.
func (n *Node) instCount() int {
	c := 0
	for _, in := range n.inst {
		if in != nil {
			c++
		}
	}
	return c
}

// ID returns the node's process ID.
func (n *Node) ID() core.ProcID { return n.id }

// Filter returns the node's subscription rectangle.
func (n *Node) Filter() geom.Rect { return n.filter }

// Top returns the height of the node's topmost instance.
func (n *Node) Top() int { return n.top }

// Instance returns a read-only view of the node's instance at height h
// (parent, sorted children, MBR) for checkers and visualization.
func (n *Node) Instance(h int) (parent core.ProcID, children []core.ProcID, mbr geom.Rect, ok bool) {
	in := n.at(h)
	if in == nil {
		return core.NoProc, nil, geom.Rect{}, false
	}
	for c := range in.children {
		children = append(children, c)
	}
	slices.Sort(children)
	return in.parent, children, in.mbr, true
}

// send enqueues an outgoing message.
func (n *Node) send(to core.ProcID, payload any) {
	n.out = append(n.out, simnet.Message{
		From:    simnet.NodeID(n.id),
		To:      simnet.NodeID(to),
		Payload: payload,
	})
}

// drainOut returns and clears the outbox.
func (n *Node) drainOut() []simnet.Message {
	out := n.out
	n.out = nil
	return out
}

// isRootInstance reports whether instance h is the tree root from this
// node's local view: topmost and self-parented.
func (n *Node) isRootInstance(h int) bool {
	in := n.at(h)
	return in != nil && h == n.top && in.parent == n.id && !n.rejoinPending
}

// process handles one inbound message.
func (n *Node) process(m simnet.Message) {
	switch p := m.Payload.(type) {
	case mJoin:
		n.onJoin(p)
	case mAdd:
		n.onAdd(p.Child, p.MBR, p.Height)
	case mWelcome:
		n.onNewParent(p.Height, p.Parent)
		n.rejoinPending = false
	case mNewParent:
		n.onNewParent(p.Height, p.Parent)
	case mPromote:
		n.onPromote(p)
	case mLeave:
		n.removeChild(p.Height, p.Child)
	case mRemoveChild:
		n.removeChild(p.Height, p.Child)
	case mDissolved:
		n.markOrphan(p.Height)
	case mBecomeRoot:
		n.onBecomeRoot(p.Height)
	case mShrink:
		n.dissolve(p.Height)
	case mParentQuery:
		n.onParentQuery(core.ProcID(m.From), p)
	case mParentAck:
		n.onParentAck(p)
	case mChildQuery:
		n.onChildQuery(core.ProcID(m.From), p)
	case mChildReport:
		n.onChildReport(core.ProcID(m.From), p)
	case mFilterUpdate:
		n.onFilterUpdate(p)
	case mEvent:
		n.onEvent(p)
	case simnet.Bounce:
		n.onBounce(core.ProcID(p.To), p.Original)
	}
}

// onFilterUpdate replaces this node's subscription filter (FILTER_UPDATE,
// the FilterUpdater capability): the leaf MBR follows the filter, the
// parent's cached view is refreshed eagerly one level up, and the
// periodic CHECK_MBR probes propagate the change to the root over the
// following check periods.
func (n *Node) onFilterUpdate(p mFilterUpdate) {
	n.filter = p.Filter
	n.recomputeMBR(0)
	in := n.at(0)
	if in == nil {
		return
	}
	if n.top > 0 {
		// The node owns interior instances: its own-child cache at height 1
		// is read locally; refresh it and recompute upward along the own
		// chain so the local view is coherent immediately.
		for h := 1; h <= n.top; h++ {
			hi := n.at(h)
			if hi == nil {
				break
			}
			if cs := hi.children[n.id]; cs != nil && n.at(h-1) != nil {
				cs.mbr = n.at(h - 1).mbr
			}
			n.recomputeMBR(h)
		}
	}
	// Tell the parent of the topmost instance about the new MBR without
	// waiting for its next CHECK_CHILDREN probe.
	top := n.at(n.top)
	if top != nil && top.parent != n.id && top.parent != core.NoProc {
		n.send(top.parent, mChildReport{
			Height:      n.top + 1,
			MBR:         top.mbr,
			Underloaded: top.underloaded,
			ParentIs:    top.parent,
			Exists:      true,
		})
	}
}

// onJoin routes a join request (Figure 8): climb to the root, then
// descend by least enlargement, then ADD_CHILD at AtHeight+1.
func (n *Node) onJoin(p mJoin) {
	h := p.Height
	if n.at(h) == nil {
		h = n.top
	}
	in := n.at(h)
	// Climb until this instance is the root, then descend.
	if !p.Descend && !n.isRootInstance(h) {
		parent := in.parent
		if parent == n.id || parent == core.NoProc || n.at(n.top) == nil {
			// Orphaned contact: best effort, insert here if possible.
			if n.top > p.AtHeight {
				n.descendJoin(p, n.top)
			}
			return
		}
		n.send(parent, mJoin{
			Joiner: p.Joiner, MBR: p.MBR, AtHeight: p.AtHeight,
			Height: n.top + 1,
		})
		return
	}
	n.descendJoin(p, h)
}

func (n *Node) descendJoin(p mJoin, h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	if h <= p.AtHeight {
		// The joiner's subtree is as tall as (or taller than) this tree.
		if !n.isRootInstance(h) {
			return
		}
		if h == p.AtHeight {
			n.mergeRoot(p, h)
		} else {
			// Taller fragment: it must shed a level and retry.
			n.send(p.Joiner, mShrink{Height: p.AtHeight})
		}
		return
	}
	in.mbr = in.mbr.Union(p.MBR)
	if h == p.AtHeight+1 {
		n.onAdd(p.Joiner, p.MBR, h)
		return
	}
	best := n.chooseBestChild(in, p.MBR)
	if best == core.NoProc || best == n.id {
		if n.at(h-1) != nil {
			// Continue down our own chain locally.
			n.descendJoin(p, h-1)
			return
		}
		return
	}
	n.send(best, mJoin{
		Joiner: p.Joiner, MBR: p.MBR, AtHeight: p.AtHeight,
		Height: h - 1, Descend: true,
	})
}

// mergeRoot handles a join whose subtree is exactly as tall as the whole
// tree (including the second-subscriber case over a lone leaf root): a
// new common root is elected over the two by largest MBR (Figure 6).
func (n *Node) mergeRoot(p mJoin, h int) {
	in := n.at(h)
	if in.mbr.Area() >= p.MBR.Area() {
		// We host the new root.
		n.setInst(h+1, &instance{
			parent: n.id,
			children: map[core.ProcID]*childState{
				n.id:     {mbr: in.mbr},
				p.Joiner: {mbr: p.MBR},
			},
			mbr: in.mbr.Union(p.MBR),
		})
		n.top = h + 1
		in.parent = n.id
		n.refreshUnderloaded(h + 1)
		n.send(p.Joiner, mWelcome{Height: p.AtHeight, Parent: n.id})
		return
	}
	// The joiner hosts the new root.
	in.parent = p.Joiner
	n.send(p.Joiner, mPromote{
		Height:  h + 1,
		Members: []member{{ID: n.id, MBR: in.mbr}, {ID: p.Joiner, MBR: p.MBR}},
		Root:    true,
	})
}

func (n *Node) chooseBestChild(in *instance, f geom.Rect) core.ProcID {
	best := core.NoProc
	var bestEnl, bestArea float64
	ids := make([]core.ProcID, 0, len(in.children))
	for c := range in.children {
		ids = append(ids, c)
	}
	slices.Sort(ids)
	for _, c := range ids {
		cs := in.children[c]
		enl := cs.mbr.Enlargement(f)
		area := cs.mbr.Area()
		if best == core.NoProc || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// onAdd is ADD_CHILD at instance Height (Figure 8): adopt the child,
// split on overflow.
func (n *Node) onAdd(child core.ProcID, mbr geom.Rect, h int) {
	in := n.at(h)
	if in == nil {
		// The target instance vanished; redirect the child to rejoin via
		// our topmost instance.
		n.send(child, mDissolved{Height: h - 1})
		return
	}
	if in.children == nil {
		in.children = make(map[core.ProcID]*childState)
	}
	in.children[child] = &childState{mbr: mbr}
	in.mbr = in.mbr.Union(mbr)
	n.send(child, mWelcome{Height: h - 1, Parent: n.id})
	n.refreshUnderloaded(h)
	if len(in.children) <= n.cfg.MaxFanout {
		return
	}
	n.splitInstance(h)
}

// splitInstance splits the overflowing instance at h, keeps the group
// containing the own child, and promotes an elected leader (largest MBR,
// Figure 6) for the other group.
func (n *Node) splitInstance(h int) {
	in := n.at(h)
	ids := make([]core.ProcID, 0, len(in.children))
	for c := range in.children {
		ids = append(ids, c)
	}
	slices.Sort(ids)
	rects := make([]geom.Rect, len(ids))
	for i, c := range ids {
		if c == n.id && n.at(h-1) != nil {
			rects[i] = n.at(h - 1).mbr
		} else {
			rects[i] = in.children[c].mbr
		}
	}
	leftIdx, rightIdx, err := n.cfg.Split.Split(rects, n.cfg.MinFanout)
	if err != nil {
		return // keep the overflow; a later check retries
	}
	own := -1
	for i, c := range ids {
		if c == n.id {
			own = i
		}
	}
	if own >= 0 && containsInt(rightIdx, own) {
		leftIdx, rightIdx = rightIdx, leftIdx
	}

	// Keep the left group.
	left := make(map[core.ProcID]*childState, len(leftIdx))
	var leftMBR geom.Rect
	for _, i := range leftIdx {
		left[ids[i]] = in.children[ids[i]]
		leftMBR = leftMBR.Union(rects[i])
	}
	// Elect the right leader: largest MBR, ties by lowest ID.
	bestAt := rightIdx[0]
	for _, i := range rightIdx {
		if rects[i].Area() > rects[bestAt].Area() ||
			(rects[i].Area() == rects[bestAt].Area() && ids[i] < ids[bestAt]) {
			bestAt = i
		}
	}
	leader := ids[bestAt]
	members := make([]member, 0, len(rightIdx))
	var rightMBR geom.Rect
	for _, i := range rightIdx {
		members = append(members, member{ID: ids[i], MBR: rects[i]})
		rightMBR = rightMBR.Union(rects[i])
	}

	wasRoot := n.isRootInstance(h)
	in.children = left
	in.mbr = leftMBR
	n.refreshUnderloaded(h)

	if wasRoot {
		// Create_Root: elect the new root among the two leaders.
		if leftMBR.Area() >= rightMBR.Area() {
			// We stay root: host a new root instance at h+1.
			nr := &instance{
				parent: n.id,
				children: map[core.ProcID]*childState{
					n.id:   {mbr: leftMBR},
					leader: {mbr: rightMBR},
				},
				mbr: leftMBR.Union(rightMBR),
			}
			n.setInst(h+1, nr)
			n.top = h + 1
			in.parent = n.id
			n.send(leader, mPromote{Height: h, Members: members, Parent: n.id})
		} else {
			in.parent = leader
			n.send(leader, mPromote{
				Height: h, Members: members, Root: true,
				Sibling: &member{ID: n.id, MBR: leftMBR},
			})
		}
		return
	}
	n.send(leader, mPromote{Height: h, Members: members, Parent: in.parent})
	// The leader will announce itself to the parent via mAdd.
}

// onPromote creates the instance a split elected this node to lead.
func (n *Node) onPromote(p mPromote) {
	in := &instance{children: make(map[core.ProcID]*childState, len(p.Members))}
	for _, m := range p.Members {
		in.children[m.ID] = &childState{mbr: m.MBR}
		in.mbr = in.mbr.Union(m.MBR)
		if m.ID != n.id {
			n.send(m.ID, mNewParent{Height: p.Height - 1, Parent: n.id})
		}
	}
	n.setInst(p.Height, in)
	if p.Height > n.top {
		n.top = p.Height
	}
	if own := n.at(p.Height - 1); own != nil && in.children[n.id] != nil {
		own.parent = n.id
	}
	n.refreshUnderloaded(p.Height)
	switch {
	case p.Root && p.Sibling != nil:
		// Become the tree root over {sibling, self}.
		root := &instance{
			parent: n.id,
			children: map[core.ProcID]*childState{
				p.Sibling.ID: {mbr: p.Sibling.MBR},
				n.id:         {mbr: in.mbr},
			},
			mbr: in.mbr.Union(p.Sibling.MBR),
		}
		n.setInst(p.Height+1, root)
		n.top = p.Height + 1
		in.parent = n.id
		n.rejoinPending = false
		n.send(p.Sibling.ID, mNewParent{Height: p.Height, Parent: n.id})
	case p.Root:
		in.parent = n.id
		n.rejoinPending = false
	default:
		in.parent = p.Parent
		n.send(p.Parent, mAdd{Child: n.id, MBR: in.mbr, Height: p.Height + 1})
	}
}

// onNewParent records a parent change for the instance at Height.
func (n *Node) onNewParent(h int, parent core.ProcID) {
	in := n.at(h)
	if in == nil {
		return
	}
	in.parent = parent
	if h == n.top {
		n.rejoinPending = false
	}
}

// onBecomeRoot promotes this node's instance at Height to tree root after
// a root collapse.
func (n *Node) onBecomeRoot(h int) {
	in := n.at(h)
	if in == nil || h != n.top {
		return
	}
	in.parent = n.id
	n.rejoinPending = false
}

// removeChild drops a child from the instance at Height.
func (n *Node) removeChild(h int, child core.ProcID) {
	in := n.at(h)
	if in == nil {
		return
	}
	delete(in.children, child)
	n.recomputeMBR(h)
	n.refreshUnderloaded(h)
}

// markOrphan flags the instance at Height as detached; the periodic check
// re-joins it through the oracle.
func (n *Node) markOrphan(h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	in.parent = n.id
	if h == n.top {
		n.rejoinPending = true
	}
}

// onParentQuery answers CHECK_PARENT.
func (n *Node) onParentQuery(from core.ProcID, p mParentQuery) {
	in := n.at(p.Height + 1)
	is := in != nil && in.children[p.Child] != nil
	n.send(from, mParentAck{Height: p.Height, IsChild: is})
}

// onParentAck reacts to a CHECK_PARENT answer: a negative answer orphans
// the instance (Figure 11: set yourself as parent and re-join).
func (n *Node) onParentAck(p mParentAck) {
	if !p.IsChild {
		n.markOrphan(p.Height)
	}
}

// onChildQuery reports this node's instance at Height-1 to the parent.
func (n *Node) onChildQuery(from core.ProcID, p mChildQuery) {
	in := n.at(p.Height - 1)
	rep := mChildReport{Height: p.Height}
	if in != nil {
		rep.Exists = true
		rep.MBR = in.mbr
		rep.Underloaded = in.underloaded
		rep.ParentIs = in.parent
	}
	n.send(from, rep)
}

// onChildReport integrates a CHECK_CHILDREN answer: discard children with
// another parent (Figure 12), refresh the MBR cache (Figure 10).
func (n *Node) onChildReport(from core.ProcID, p mChildReport) {
	in := n.at(p.Height)
	if in == nil {
		return
	}
	cs := in.children[from]
	if cs == nil {
		return
	}
	if !p.Exists || p.ParentIs != n.id {
		delete(in.children, from)
	} else {
		cs.mbr = p.MBR
		cs.underloaded = p.Underloaded
	}
	n.recomputeMBR(p.Height)
	n.refreshUnderloaded(p.Height)
}

// onBounce reacts to an undeliverable message: the peer is dead.
func (n *Node) onBounce(dead core.ProcID, original any) {
	switch orig := original.(type) {
	case mChildQuery:
		n.removeChild(orig.Height, dead)
	case mParentQuery:
		n.markOrphan(orig.Height)
	case mJoin:
		// Routing hop died; retry through our own top next check.
		if orig.Joiner == n.id {
			n.rejoinPending = true
		}
	case mAdd:
		// Our new parent died before adopting us.
		n.markOrphan(orig.Height - 1)
	case mEvent, mChildReport, mParentAck, mWelcome, mNewParent:
		// Stale traffic to a dead peer; the periodic checks handle it.
	default:
		// Conservative: if we were talking to our parent, re-check soon.
	}
}

// recomputeMBR refreshes the instance MBR from the children cache
// (CHECK_MBR, Figure 10).
func (n *Node) recomputeMBR(h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	if h == 0 {
		in.mbr = n.filter
		return
	}
	var mbr geom.Rect
	for c, cs := range in.children {
		if c == n.id && n.at(h-1) != nil {
			mbr = mbr.Union(n.at(h - 1).mbr)
			continue
		}
		mbr = mbr.Union(cs.mbr)
	}
	in.mbr = mbr
}

func (n *Node) refreshUnderloaded(h int) {
	in := n.at(h)
	if in == nil || h == 0 {
		return
	}
	in.underloaded = len(in.children) < n.cfg.MinFanout
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
