package proto

import (
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
	"drtree/internal/split"
)

// Config parameterizes a protocol cluster.
type Config struct {
	// MinFanout and MaxFanout are the paper's m and M (M >= 2m).
	MinFanout, MaxFanout int
	// Split is the node-splitting policy (default quadratic).
	Split split.Policy
	// CheckEvery is the period, in rounds, of the CHECK_* timers.
	CheckEvery int
	// UnderloadPatience is how many consecutive check periods a non-root
	// node tolerates being underloaded before dissolving and re-inserting
	// its children (the Figure 14 fallback).
	UnderloadPatience int
	// PublishBudget bounds, in rounds, how long one Publish may run
	// before giving up on draining the network. 0 means adaptive
	// (800 + 200 per live process). The goroutine-backed LiveCluster
	// maps rounds onto its 2ms actor tick.
	PublishBudget int
	// StabilizeBudget bounds, in rounds, one Stabilize call. 0 means
	// adaptive (800 + 200 per live process); the LiveCluster tick
	// mapping applies here too.
	StabilizeBudget int
}

func (c Config) withDefaults() Config {
	if c.Split == nil {
		c.Split = split.Quadratic{}
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 2
	}
	if c.UnderloadPatience == 0 {
		c.UnderloadPatience = 2
	}
	return c
}

// instance is one per-level node of a process (paper §3.2 data
// structures), kept strictly local to its owner. Instances are stored by
// value in the node's height-indexed table; the cached view of the
// children lives in parallel slices sorted by ascending ProcID, so the
// hot paths (event routing, best-child descent, MBR recomputation) scan
// contiguous memory without map iteration or per-visit sort allocations.
type instance struct {
	live   bool // false marks a vacant table slot (a gap left by faults)
	parent core.ProcID

	// Children, ascending by ID. childMBR and childUnder are the cached
	// parent-side view of each child (the paper's MBR and underloaded
	// variables), index-parallel with childID.
	childID    []core.ProcID
	childMBR   []geom.Rect
	childUnder []bool

	mbr         geom.Rect
	underloaded bool

	underRounds int // consecutive check periods spent underloaded
}

// numChildren returns the size of the children set.
func (in *instance) numChildren() int { return len(in.childID) }

// childIndex returns the position of child c, or -1 if absent.
func (in *instance) childIndex(c core.ProcID) int {
	if i, ok := slices.BinarySearch(in.childID, c); ok {
		return i
	}
	return -1
}

// hasChild reports whether c is in the children set.
func (in *instance) hasChild(c core.ProcID) bool { return in.childIndex(c) >= 0 }

// putChild inserts (or updates) child c with the given cached view,
// keeping the parallel slices sorted by ID.
func (in *instance) putChild(c core.ProcID, mbr geom.Rect, under bool) {
	i, ok := slices.BinarySearch(in.childID, c)
	if ok {
		in.childMBR[i] = mbr
		in.childUnder[i] = under
		return
	}
	in.childID = slices.Insert(in.childID, i, c)
	in.childMBR = slices.Insert(in.childMBR, i, mbr)
	in.childUnder = slices.Insert(in.childUnder, i, under)
}

// delChild removes child c, preserving order.
func (in *instance) delChild(c core.ProcID) {
	i := in.childIndex(c)
	if i < 0 {
		return
	}
	in.childID = slices.Delete(in.childID, i, i+1)
	in.childMBR = slices.Delete(in.childMBR, i, i+1)
	in.childUnder = slices.Delete(in.childUnder, i, i+1)
}

// setChildren replaces the whole children set. The ids need not arrive
// sorted; cached views default to the zero rectangle unless provided.
func (in *instance) setChildren(ids []core.ProcID, mbrs map[core.ProcID]geom.Rect) {
	in.childID = append(in.childID[:0], ids...)
	slices.Sort(in.childID)
	in.childID = slices.Compact(in.childID)
	in.childMBR = make([]geom.Rect, len(in.childID))
	in.childUnder = make([]bool, len(in.childID))
	for i, c := range in.childID {
		if mbrs != nil {
			in.childMBR[i] = mbrs[c]
		}
	}
}

// Node is one process actor.
type Node struct {
	id     core.ProcID
	filter geom.Rect
	cfg    Config

	// inst is the instance table indexed by height, stored by value so a
	// node's whole chain lives in one allocation; a node owns the
	// contiguous range 0..top (non-live entries are gaps left by faults).
	// Use at() for reads so out-of-range heights resolve to nil. Pointers
	// returned by at() are invalidated by setInst (the table may grow);
	// re-fetch after any call that can add an instance.
	inst []instance
	top  int

	// rejoinPending marks an orphaned topmost instance awaiting re-join.
	rejoinPending bool

	// Delivery accounting.
	seen      map[int64]bool
	Delivered int
	FalsePos  int

	// deliverCB, when set, observes each first receipt of an event (the
	// LiveCluster event hook plumbing; nil everywhere else). It runs
	// inside the owning runtime's actor turn — implementations must not
	// re-enter the cluster.
	deliverCB func(id int64, ev geom.Point, matched bool)

	out []simnet.Message
}

func newNode(id core.ProcID, filter geom.Rect, cfg Config) *Node {
	n := &Node{
		id:     id,
		filter: filter,
		cfg:    cfg,
		inst:   make([]instance, 0, 4),
		seen:   make(map[int64]bool),
	}
	n.setInst(0, instance{parent: id, mbr: filter})
	return n
}

// at returns the node's instance at height h, or nil when h is out of
// range or vacant. The pointer aims into the node's instance table: it is
// valid until the next setInst.
func (n *Node) at(h int) *instance {
	if h < 0 || h >= len(n.inst) || !n.inst[h].live {
		return nil
	}
	return &n.inst[h]
}

// setInst stores in at height h, growing the table as needed. Existing
// *instance pointers into the table are invalidated.
func (n *Node) setInst(h int, in instance) {
	for len(n.inst) <= h {
		n.inst = append(n.inst, instance{})
	}
	in.live = true
	n.inst[h] = in
}

// clearInst vacates height h and trims trailing vacancies.
func (n *Node) clearInst(h int) {
	if h < 0 || h >= len(n.inst) {
		return
	}
	n.inst[h] = instance{}
	l := len(n.inst)
	for l > 0 && !n.inst[l-1].live {
		l--
	}
	n.inst = n.inst[:l]
}

// instCount returns the number of instances the node currently owns.
func (n *Node) instCount() int {
	c := 0
	for i := range n.inst {
		if n.inst[i].live {
			c++
		}
	}
	return c
}

// ID returns the node's process ID.
func (n *Node) ID() core.ProcID { return n.id }

// Filter returns the node's subscription rectangle.
func (n *Node) Filter() geom.Rect { return n.filter }

// Top returns the height of the node's topmost instance.
func (n *Node) Top() int { return n.top }

// Instance returns a read-only view of the node's instance at height h
// (parent, sorted children, MBR) for checkers and visualization.
func (n *Node) Instance(h int) (parent core.ProcID, children []core.ProcID, mbr geom.Rect, ok bool) {
	in := n.at(h)
	if in == nil {
		return core.NoProc, nil, geom.Rect{}, false
	}
	children = append([]core.ProcID(nil), in.childID...)
	return in.parent, children, in.mbr, true
}

// send enqueues an outgoing message.
func (n *Node) send(to core.ProcID, payload any) {
	n.out = append(n.out, simnet.Message{
		From:    simnet.NodeID(n.id),
		To:      simnet.NodeID(to),
		Payload: payload,
	})
}

// drainOut returns and clears the outbox.
func (n *Node) drainOut() []simnet.Message {
	out := n.out
	n.out = nil
	return out
}

// isRootInstance reports whether instance h is the tree root from this
// node's local view: topmost and self-parented.
func (n *Node) isRootInstance(h int) bool {
	in := n.at(h)
	return in != nil && h == n.top && in.parent == n.id && !n.rejoinPending
}

// process handles one inbound message.
func (n *Node) process(m simnet.Message) {
	switch p := m.Payload.(type) {
	case mJoin:
		n.onJoin(p)
	case mAdd:
		n.onAdd(p.Child, p.MBR, p.Height)
	case mWelcome:
		n.onNewParent(p.Height, p.Parent)
		n.rejoinPending = false
	case mNewParent:
		n.onNewParent(p.Height, p.Parent)
	case mPromote:
		n.onPromote(p)
	case mLeave:
		n.removeChild(p.Height, p.Child)
	case mRemoveChild:
		n.removeChild(p.Height, p.Child)
	case mDissolved:
		n.markOrphan(p.Height)
	case mBecomeRoot:
		n.onBecomeRoot(p.Height)
	case mShrink:
		n.dissolve(p.Height)
	case mParentQuery:
		n.onParentQuery(core.ProcID(m.From), p)
	case mParentAck:
		n.onParentAck(p)
	case mChildQuery:
		n.onChildQuery(core.ProcID(m.From), p)
	case mChildReport:
		n.onChildReport(core.ProcID(m.From), p)
	case mFilterUpdate:
		n.onFilterUpdate(p)
	case mEvent:
		n.onEvent(p)
	case simnet.Bounce:
		n.onBounce(core.ProcID(p.To), p.Original)
	}
}

// onFilterUpdate replaces this node's subscription filter (FILTER_UPDATE,
// the FilterUpdater capability): the leaf MBR follows the filter, the
// parent's cached view is refreshed eagerly one level up, and the
// periodic CHECK_MBR probes propagate the change to the root over the
// following check periods.
func (n *Node) onFilterUpdate(p mFilterUpdate) {
	n.filter = p.Filter
	n.recomputeMBR(0)
	if n.at(0) == nil {
		return
	}
	if n.top > 0 {
		// The node owns interior instances: its own-child cache at height 1
		// is read locally; refresh it and recompute upward along the own
		// chain so the local view is coherent immediately.
		for h := 1; h <= n.top; h++ {
			hi := n.at(h)
			if hi == nil {
				break
			}
			if low := n.at(h - 1); low != nil {
				if i := hi.childIndex(n.id); i >= 0 {
					hi.childMBR[i] = low.mbr
				}
			}
			n.recomputeMBR(h)
		}
	}
	// Tell the parent of the topmost instance about the new MBR without
	// waiting for its next CHECK_CHILDREN probe.
	top := n.at(n.top)
	if top != nil && top.parent != n.id && top.parent != core.NoProc {
		n.send(top.parent, mChildReport{
			Height:      n.top + 1,
			MBR:         top.mbr,
			Underloaded: top.underloaded,
			ParentIs:    top.parent,
			Exists:      true,
		})
	}
}

// onJoin routes a join request (Figure 8): climb to the root, then
// descend by least enlargement, then ADD_CHILD at AtHeight+1.
func (n *Node) onJoin(p mJoin) {
	if p.Joiner == n.id {
		// Our own join routed back to us: the climb terminated at this
		// node, so the contact's tree already names us root. Acting on
		// it would make the root its own child; for a root-audit probe
		// (auditRoot) the drop IS the confirmation. For a pending
		// rejoin the loop-back is the resolution itself: no one will
		// welcome a node into a tree it already tops, so waiting for
		// mWelcome would leave it pending forever — spamming rejoins,
		// invisible to the oracle, and dropping foreign joins (a
		// pending node is not a root to descend from). Accept the root
		// role instead.
		if n.rejoinPending {
			if in := n.at(n.top); in != nil && in.parent == n.id {
				n.rejoinPending = false
			}
		}
		return
	}
	h := p.Height
	if n.at(h) == nil {
		h = n.top
	}
	in := n.at(h)
	// Climb until this instance is the root, then descend.
	if !p.Descend && !n.isRootInstance(h) {
		parent := in.parent
		if parent == n.id || parent == core.NoProc || n.at(n.top) == nil {
			// Orphaned contact: best effort, insert here if possible.
			if n.top > p.AtHeight {
				n.descendJoin(p, n.top)
			}
			return
		}
		n.send(parent, mJoin{
			Joiner: p.Joiner, MBR: p.MBR, AtHeight: p.AtHeight,
			Height: n.top + 1,
		})
		return
	}
	n.descendJoin(p, h)
}

func (n *Node) descendJoin(p mJoin, h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	if h <= p.AtHeight {
		// The joiner's subtree is as tall as (or taller than) this tree.
		if !n.isRootInstance(h) {
			return
		}
		if h == p.AtHeight {
			n.mergeRoot(p, h)
		} else {
			// Taller fragment: it must shed a level and retry.
			n.send(p.Joiner, mShrink{Height: p.AtHeight})
		}
		return
	}
	in.mbr = in.mbr.Union(p.MBR)
	if h == p.AtHeight+1 {
		n.onAdd(p.Joiner, p.MBR, h)
		return
	}
	best := n.chooseBestChild(in, p.MBR)
	if best == core.NoProc || best == n.id {
		if n.at(h-1) != nil {
			// Continue down our own chain locally.
			n.descendJoin(p, h-1)
			return
		}
		return
	}
	n.send(best, mJoin{
		Joiner: p.Joiner, MBR: p.MBR, AtHeight: p.AtHeight,
		Height: h - 1, Descend: true,
	})
}

// mergeRoot handles a join whose subtree is exactly as tall as the whole
// tree (including the second-subscriber case over a lone leaf root): a
// new common root is elected over the two by largest MBR (Figure 6).
func (n *Node) mergeRoot(p mJoin, h int) {
	in := n.at(h)
	if in.mbr.Area() >= p.MBR.Area() {
		// We host the new root.
		ownMBR := in.mbr
		nr := instance{parent: n.id, mbr: ownMBR.Union(p.MBR)}
		nr.putChild(n.id, ownMBR, false)
		nr.putChild(p.Joiner, p.MBR, false)
		n.setInst(h+1, nr) // invalidates in
		n.top = h + 1
		n.at(h).parent = n.id
		n.refreshUnderloaded(h + 1)
		n.send(p.Joiner, mWelcome{Height: p.AtHeight, Parent: n.id})
		return
	}
	// The joiner hosts the new root.
	in.parent = p.Joiner
	n.send(p.Joiner, mPromote{
		Height:  h + 1,
		Members: []member{{ID: n.id, MBR: in.mbr}, {ID: p.Joiner, MBR: p.MBR}},
		Root:    true,
	})
}

// chooseBestChild scans the sorted children slices directly: ascending ID
// order gives the deterministic tie-break without per-call sorting.
func (n *Node) chooseBestChild(in *instance, f geom.Rect) core.ProcID {
	best := core.NoProc
	var bestEnl, bestArea float64
	for i, c := range in.childID {
		enl := in.childMBR[i].Enlargement(f)
		area := in.childMBR[i].Area()
		if best == core.NoProc || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// onAdd is ADD_CHILD at instance Height (Figure 8): adopt the child,
// split on overflow.
func (n *Node) onAdd(child core.ProcID, mbr geom.Rect, h int) {
	in := n.at(h)
	if in == nil {
		// The target instance vanished; redirect the child to rejoin via
		// our topmost instance.
		n.send(child, mDissolved{Height: h - 1})
		return
	}
	in.putChild(child, mbr, false)
	in.mbr = in.mbr.Union(mbr)
	n.send(child, mWelcome{Height: h - 1, Parent: n.id})
	n.refreshUnderloaded(h)
	if in.numChildren() <= n.cfg.MaxFanout {
		return
	}
	n.splitInstance(h)
}

// splitInstance splits the overflowing instance at h, keeps the group
// containing the own child, and promotes an elected leader (largest MBR,
// Figure 6) for the other group.
func (n *Node) splitInstance(h int) {
	in := n.at(h)
	ids := append([]core.ProcID(nil), in.childID...) // already ascending
	rects := make([]geom.Rect, len(ids))
	for i, c := range ids {
		if c == n.id && n.at(h-1) != nil {
			rects[i] = n.at(h - 1).mbr
		} else {
			rects[i] = in.childMBR[i]
		}
	}
	leftIdx, rightIdx, err := n.cfg.Split.Split(rects, n.cfg.MinFanout)
	if err != nil {
		return // keep the overflow; a later check retries
	}
	own := -1
	for i, c := range ids {
		if c == n.id {
			own = i
		}
	}
	if own >= 0 && containsInt(rightIdx, own) {
		leftIdx, rightIdx = rightIdx, leftIdx
	}

	// Keep the left group.
	slices.Sort(leftIdx)
	leftIDs := make([]core.ProcID, 0, len(leftIdx))
	leftMBRs := make(map[core.ProcID]geom.Rect, len(leftIdx))
	leftUnder := make(map[core.ProcID]bool, len(leftIdx))
	var leftMBR geom.Rect
	for _, i := range leftIdx {
		leftIDs = append(leftIDs, ids[i])
		leftMBRs[ids[i]] = in.childMBR[i]
		leftUnder[ids[i]] = in.childUnder[i]
		leftMBR = leftMBR.Union(rects[i])
	}
	// Elect the right leader: largest MBR, ties by lowest ID.
	bestAt := rightIdx[0]
	for _, i := range rightIdx {
		if rects[i].Area() > rects[bestAt].Area() ||
			(rects[i].Area() == rects[bestAt].Area() && ids[i] < ids[bestAt]) {
			bestAt = i
		}
	}
	leader := ids[bestAt]
	members := make([]member, 0, len(rightIdx))
	var rightMBR geom.Rect
	for _, i := range rightIdx {
		members = append(members, member{ID: ids[i], MBR: rects[i]})
		rightMBR = rightMBR.Union(rects[i])
	}

	wasRoot := n.isRootInstance(h)
	in.setChildren(leftIDs, leftMBRs)
	for i, c := range in.childID {
		in.childUnder[i] = leftUnder[c]
	}
	in.mbr = leftMBR
	n.refreshUnderloaded(h)

	if wasRoot {
		// Create_Root: elect the new root among the two leaders.
		if leftMBR.Area() >= rightMBR.Area() {
			// We stay root: host a new root instance at h+1.
			nr := instance{parent: n.id, mbr: leftMBR.Union(rightMBR)}
			nr.putChild(n.id, leftMBR, false)
			nr.putChild(leader, rightMBR, false)
			n.setInst(h+1, nr) // invalidates in
			n.top = h + 1
			n.at(h).parent = n.id
			n.send(leader, mPromote{Height: h, Members: members, Parent: n.id})
		} else {
			in.parent = leader
			n.send(leader, mPromote{
				Height: h, Members: members, Root: true,
				Sibling: &member{ID: n.id, MBR: leftMBR},
			})
		}
		return
	}
	n.send(leader, mPromote{Height: h, Members: members, Parent: in.parent})
	// The leader will announce itself to the parent via mAdd.
}

// onPromote creates the instance a split elected this node to lead.
func (n *Node) onPromote(p mPromote) {
	in := instance{}
	for _, m := range p.Members {
		in.putChild(m.ID, m.MBR, false)
		in.mbr = in.mbr.Union(m.MBR)
		if m.ID != n.id {
			n.send(m.ID, mNewParent{Height: p.Height - 1, Parent: n.id})
		}
	}
	ownChild := in.hasChild(n.id)
	inMBR := in.mbr
	n.setInst(p.Height, in)
	if p.Height > n.top {
		n.top = p.Height
	}
	if own := n.at(p.Height - 1); own != nil && ownChild {
		own.parent = n.id
	}
	n.refreshUnderloaded(p.Height)
	switch {
	case p.Root && p.Sibling != nil:
		// Become the tree root over {sibling, self}.
		root := instance{parent: n.id, mbr: inMBR.Union(p.Sibling.MBR)}
		root.putChild(p.Sibling.ID, p.Sibling.MBR, false)
		root.putChild(n.id, inMBR, false)
		n.setInst(p.Height+1, root)
		n.top = p.Height + 1
		n.at(p.Height).parent = n.id
		n.rejoinPending = false
		n.send(p.Sibling.ID, mNewParent{Height: p.Height, Parent: n.id})
	case p.Root:
		n.at(p.Height).parent = n.id
		n.rejoinPending = false
	default:
		n.at(p.Height).parent = p.Parent
		n.send(p.Parent, mAdd{Child: n.id, MBR: inMBR, Height: p.Height + 1})
	}
}

// onNewParent records a parent change for the instance at Height.
func (n *Node) onNewParent(h int, parent core.ProcID) {
	in := n.at(h)
	if in == nil {
		return
	}
	in.parent = parent
	if h == n.top {
		n.rejoinPending = false
	}
}

// onBecomeRoot promotes this node's instance at Height to tree root after
// a root collapse.
func (n *Node) onBecomeRoot(h int) {
	in := n.at(h)
	if in == nil || h != n.top {
		return
	}
	in.parent = n.id
	n.rejoinPending = false
}

// removeChild drops a child from the instance at Height.
func (n *Node) removeChild(h int, child core.ProcID) {
	in := n.at(h)
	if in == nil {
		return
	}
	in.delChild(child)
	n.recomputeMBR(h)
	n.refreshUnderloaded(h)
}

// markOrphan flags the instance at Height as detached; the periodic check
// re-joins it through the oracle.
func (n *Node) markOrphan(h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	in.parent = n.id
	if h == n.top {
		n.rejoinPending = true
	}
}

// onParentQuery answers CHECK_PARENT.
func (n *Node) onParentQuery(from core.ProcID, p mParentQuery) {
	in := n.at(p.Height + 1)
	is := in != nil && in.hasChild(p.Child)
	n.send(from, mParentAck{Height: p.Height, IsChild: is})
}

// onParentAck reacts to a CHECK_PARENT answer: a negative answer orphans
// the instance (Figure 11: set yourself as parent and re-join).
func (n *Node) onParentAck(p mParentAck) {
	if !p.IsChild {
		n.markOrphan(p.Height)
	}
}

// onChildQuery reports this node's instance at Height-1 to the parent.
func (n *Node) onChildQuery(from core.ProcID, p mChildQuery) {
	in := n.at(p.Height - 1)
	rep := mChildReport{Height: p.Height}
	if in != nil {
		rep.Exists = true
		rep.MBR = in.mbr
		rep.Underloaded = in.underloaded
		rep.ParentIs = in.parent
	}
	n.send(from, rep)
}

// onChildReport integrates a CHECK_CHILDREN answer: discard children with
// another parent (Figure 12), refresh the MBR cache (Figure 10).
func (n *Node) onChildReport(from core.ProcID, p mChildReport) {
	in := n.at(p.Height)
	if in == nil {
		return
	}
	i := in.childIndex(from)
	if i < 0 {
		return
	}
	if !p.Exists || p.ParentIs != n.id {
		in.delChild(from)
	} else {
		in.childMBR[i] = p.MBR
		in.childUnder[i] = p.Underloaded
	}
	n.recomputeMBR(p.Height)
	n.refreshUnderloaded(p.Height)
}

// onBounce reacts to an undeliverable message: the peer is dead.
func (n *Node) onBounce(dead core.ProcID, original any) {
	switch orig := original.(type) {
	case mChildQuery:
		n.removeChild(orig.Height, dead)
	case mParentQuery:
		n.markOrphan(orig.Height)
	case mJoin:
		// Routing hop died; retry through our own top next check.
		if orig.Joiner == n.id {
			n.rejoinPending = true
		}
	case mAdd:
		// Our new parent died before adopting us.
		n.markOrphan(orig.Height - 1)
	case mEvent, mChildReport, mParentAck, mWelcome, mNewParent:
		// Stale traffic to a dead peer; the periodic checks handle it.
	default:
		// Conservative: if we were talking to our parent, re-check soon.
	}
}

// recomputeMBR refreshes the instance MBR from the children cache
// (CHECK_MBR, Figure 10).
func (n *Node) recomputeMBR(h int) {
	in := n.at(h)
	if in == nil {
		return
	}
	if h == 0 {
		in.mbr = n.filter
		return
	}
	var mbr geom.Rect
	for i, c := range in.childID {
		cm := in.childMBR[i]
		if c == n.id {
			if low := n.at(h - 1); low != nil {
				cm = low.mbr
			}
		}
		if !mbr.Contains(cm) {
			mbr = mbr.Union(cm)
		}
	}
	in.mbr = mbr
}

func (n *Node) refreshUnderloaded(h int) {
	in := n.at(h)
	if in == nil || h == 0 {
		return
	}
	in.underloaded = in.numChildren() < n.cfg.MinFanout
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
