package proto

import (
	"fmt"
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
)

// This file is the LiveCluster's networking surface: everything a real
// transport (internal/transport) needs to run the unmodified protocol
// actors across daemons. A purely local LiveCluster never touches any
// of it.
//
// The flow is symmetric: outbound messages whose destination is not
// local leave through the attached Substrate instead of bouncing
// (dispatchLocked), and inbound frames from peers enter through
// Deliver, which enqueues to the owning actor's mailbox exactly like a
// local dispatch — the actors cannot tell the difference. An inbound
// message for a process this daemon no longer hosts is answered with a
// bounce over the substrate, which is the same failure-detector notice
// simnet synthesizes for a dead mailbox.

// Substrate is the outbound half of a message substrate: fire-and-forget
// delivery of simnet messages. *simnet.Network satisfies it natively;
// internal/transport's TCP implementation satisfies it over sockets.
// Send must not block and must not call back into the cluster
// synchronously (it runs under the cluster lock).
type Substrate interface {
	Send(msgs ...simnet.Message)
}

var _ Substrate = (*simnet.Network)(nil)

// EventHook observes the first receipt of an event by a local process:
// proc delivered event eventID at point ev, and matched reports whether
// the process's own filter contains it. Hooks run outside the cluster
// lock, after the actor turn that delivered the event, so they may call
// back into the cluster or the broker; they must not block for long, as
// the delivering actor's goroutine carries them.
type EventHook func(proc core.ProcID, eventID int64, ev geom.Point, matched bool)

// hookFire is one pending EventHook invocation, collected under the
// cluster lock during an actor turn and fired after it unlocks.
type hookFire struct {
	proc    core.ProcID
	event   int64
	ev      geom.Point
	matched bool
}

// AttachSubstrate connects the cluster to a remote substrate. local
// reports whether a process ID is owned by this cluster; destinations
// for which it returns false route through s instead of bouncing.
// Attach before the first Join.
func (lc *LiveCluster) AttachSubstrate(s Substrate, local func(core.ProcID) bool) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if len(lc.actors) > 0 {
		return fmt.Errorf("proto: attach substrate before the first join")
	}
	if s == nil || local == nil {
		return fmt.Errorf("proto: nil substrate or locality predicate")
	}
	lc.remote = s
	lc.isLocal = local
	return nil
}

// SetContact installs the bootstrap contact function: the overlay
// process (usually on another daemon) through which joins and rejoins
// route when this cluster has no local stable root. The process whose
// ID the function returns is the cluster-wide bootstrap: on its own
// daemon it roots itself; everywhere else the first join already
// travels the wire. Set before the first Join.
func (lc *LiveCluster) SetContact(fn func() core.ProcID) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.contactFn = fn
}

// SetEventHook installs the delivery observer (see EventHook). A
// daemon's broker bridges it to the gateways' subscriber queues. Set
// before the first Join.
func (lc *LiveCluster) SetEventHook(fn EventHook) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.hook = fn
}

// SetEventSpace moves the cluster's event-ID counter to base so that
// concurrently publishing daemons draw from disjoint ID ranges (receipt
// sets are keyed by event ID; a collision would suppress a delivery).
// Forward-only: a base at or below the current counter is a no-op.
func (lc *LiveCluster) SetEventSpace(base int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.nextE < base {
		lc.nextE = base
	}
}

// Contact returns the best join/rejoin contact: the local oracle when a
// local stable root exists, else the configured bootstrap contact.
func (lc *LiveCluster) Contact() core.ProcID {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.contactLocked()
}

func (lc *LiveCluster) contactLocked() core.ProcID {
	if c := lc.oracleLocked(); c != core.NoProc {
		return c
	}
	if lc.contactFn != nil {
		return lc.contactFn()
	}
	return core.NoProc
}

// remoteJoinNeededLocked reports whether a joining process must route
// its JOIN remotely even though it is this cluster's first actor: true
// on a networked cluster whenever the joiner is not itself the
// designated bootstrap contact.
func (lc *LiveCluster) remoteJoinNeededLocked(id core.ProcID) bool {
	return lc.remote != nil && lc.contactFn != nil && lc.contactFn() != id
}

// Deliver injects one inbound message from the substrate, as the
// transport's receive loop calls it: enqueue to the owning actor's
// mailbox, or answer with a bounce when no such actor exists here. A
// bounce is never bounced.
func (lc *LiveCluster) Deliver(m simnet.Message) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		return
	}
	dst := lc.actors[core.ProcID(m.To)]
	if dst == nil {
		_, isBounce := m.Payload.(simnet.Bounce)
		if !isBounce && lc.remote != nil && lc.isLocal != nil && !lc.isLocal(core.ProcID(m.From)) {
			lc.remote.Send(simnet.Message{
				From: m.To, To: m.From,
				Payload: simnet.Bounce{To: m.To, Original: m.Payload},
			})
		}
		return
	}
	select {
	case dst.box <- m:
		if _, ok := m.Payload.(mEvent); ok {
			lc.pendingEvents++
		}
	default:
		// Saturated mailbox: transient loss, same policy as a local
		// dispatch — the periodic checks repair protocol traffic.
	}
}

// InjectEvent starts an asynchronous dissemination from producer and
// returns without waiting for quiescence (the engine.AsyncPublisher
// capability). Deliveries surface through the event hook; there is no
// receipt census — on a multi-daemon overlay no single cluster can see
// one.
func (lc *LiveCluster) InjectEvent(producer core.ProcID, ev geom.Point) error {
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		return fmt.Errorf("proto: live cluster closed")
	}
	a := lc.actors[producer]
	if a == nil {
		lc.mu.Unlock()
		return fmt.Errorf("proto: producer %d not in the cluster", producer)
	}
	lc.nextE++
	id := lc.nextE
	a.node.onEvent(mEvent{ID: id, Ev: ev, Height: a.node.top, Up: true, From: core.NoProc})
	lc.dispatchLocked(a.node.drainOut())
	fires := lc.takeHooksLocked()
	lc.mu.Unlock()
	lc.fireHooks(fires)
	return nil
}

// ActorState is a diagnostic snapshot of one live actor's protocol
// state (ActorStates): the topmost instance's height, parent, and
// children, plus whether the actor is awaiting a re-join. Daemon
// operators read it through /statsz; integration tests print it when a
// cluster wedges.
type ActorState struct {
	ID            core.ProcID   `json:"id"`
	Top           int           `json:"top"`
	Parent        core.ProcID   `json:"parent"`
	RejoinPending bool          `json:"rejoin_pending"`
	Children      []core.ProcID `json:"children,omitempty"`
}

// ActorStates snapshots every local actor, ordered by process ID.
func (lc *LiveCluster) ActorStates() []ActorState {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]ActorState, 0, len(lc.actors))
	for id, a := range lc.actors {
		n := a.node
		st := ActorState{ID: id, Top: n.top, RejoinPending: n.rejoinPending}
		if in := n.at(n.top); in != nil {
			st.Parent = in.parent
			st.Children = append([]core.ProcID(nil), in.childID...)
		}
		out = append(out, st)
	}
	slices.SortFunc(out, func(a, b ActorState) int { return int(a.ID - b.ID) })
	return out
}

// takeHooksLocked detaches the pending hook invocations collected
// during the current locked turn.
func (lc *LiveCluster) takeHooksLocked() []hookFire {
	fires := lc.hookQ
	lc.hookQ = nil
	return fires
}

// fireHooks runs detached hook invocations outside the cluster lock.
func (lc *LiveCluster) fireHooks(fires []hookFire) {
	if lc.hook == nil {
		return
	}
	for _, f := range fires {
		lc.hook(f.proc, f.event, f.ev, f.matched)
	}
}
