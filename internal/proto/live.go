package proto

import (
	"fmt"
	"sync"
	"time"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
)

// LiveCluster drives the same protocol actors with one goroutine per
// process and real channels instead of the deterministic round scheduler:
// the concurrent runtime the repro hint calls for ("goroutines fit node
// simulation naturally"). Each actor goroutine drains its mailbox and
// fires its CHECK_* timers on a real ticker; an undeliverable send (dead
// mailbox) bounces back to the sender like the round-based substrate's
// failure notices.
//
// LiveCluster trades determinism for real concurrency; the experiments
// use the deterministic Cluster, and the live runtime demonstrates that
// the actor logic is schedule-independent.
type LiveCluster struct {
	cfg Config

	mu     sync.Mutex
	actors map[core.ProcID]*liveActor
	wg     sync.WaitGroup
	closed bool
}

type liveActor struct {
	node *Node
	box  chan simnet.Message
	stop chan struct{}
}

// NewLiveCluster creates an empty concurrent cluster.
func NewLiveCluster(cfg Config) (*LiveCluster, error) {
	cfg = cfg.withDefaults()
	if cfg.MinFanout < 1 || cfg.MaxFanout < 2*cfg.MinFanout {
		return nil, fmt.Errorf("proto: invalid fanout bounds m=%d M=%d", cfg.MinFanout, cfg.MaxFanout)
	}
	return &LiveCluster{cfg: cfg, actors: make(map[core.ProcID]*liveActor)}, nil
}

// Join spawns a new subscriber actor and routes its JOIN request through
// the current root.
func (lc *LiveCluster) Join(id core.ProcID, filter geom.Rect) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		return fmt.Errorf("proto: live cluster closed")
	}
	if id <= core.NoProc || filter.IsEmpty() {
		return fmt.Errorf("proto: invalid id or filter")
	}
	if lc.actors[id] != nil {
		return fmt.Errorf("proto: process %d already joined", id)
	}
	a := &liveActor{
		node: newNode(id, filter, lc.cfg),
		box:  make(chan simnet.Message, 256),
		stop: make(chan struct{}),
	}
	lc.actors[id] = a
	if len(lc.actors) > 1 {
		a.node.rejoinPending = true
		a.node.rejoin(lc.oracleLocked(), 0)
		lc.dispatchLocked(a.node.drainOut())
	}
	lc.wg.Add(1)
	go lc.run(a)
	return nil
}

// Crash kills an actor without notification.
func (lc *LiveCluster) Crash(id core.ProcID) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a := lc.actors[id]
	if a == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	delete(lc.actors, id)
	close(a.stop)
	return nil
}

// run is one actor goroutine: drain the mailbox, fire periodic checks.
func (lc *LiveCluster) run(a *liveActor) {
	defer lc.wg.Done()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case m := <-a.box:
			lc.withActor(a, func() { a.node.process(m) })
		case <-ticker.C:
			contact := lc.Oracle()
			lc.withActor(a, func() { a.node.periodic(contact) })
		}
	}
}

// withActor runs fn and the resulting dispatch under the cluster lock:
// actor turns are serialized, which keeps the legality snapshot (and the
// race detector) happy while preserving the message-driven semantics.
func (lc *LiveCluster) withActor(a *liveActor, fn func()) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	fn()
	lc.dispatchLocked(a.node.drainOut())
}

// dispatchLocked delivers outgoing messages to mailboxes; sends to dead
// or saturated mailboxes bounce back to the sender.
func (lc *LiveCluster) dispatchLocked(msgs []simnet.Message) {
	for _, m := range msgs {
		dst := lc.actors[core.ProcID(m.To)]
		if dst == nil {
			if src := lc.actors[core.ProcID(m.From)]; src != nil {
				select {
				case src.box <- simnet.Message{
					From: m.To, To: m.From,
					Payload: simnet.Bounce{To: simnet.NodeID(m.To), Original: m.Payload},
				}:
				default:
				}
			}
			continue
		}
		select {
		case dst.box <- m:
		default: // saturated mailbox: drop (transient loss; checks repair)
		}
	}
}

// Oracle returns the current best contact (tallest self-parented actor).
func (lc *LiveCluster) Oracle() core.ProcID {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.oracleLocked()
}

func (lc *LiveCluster) oracleLocked() core.ProcID {
	best := core.NoProc
	bestH := -1
	for id, a := range lc.actors {
		n := a.node
		in := n.at(n.top)
		if in == nil || in.parent != id || n.rejoinPending {
			continue
		}
		if n.top > bestH || (n.top == bestH && (best == core.NoProc || id < best)) {
			best, bestH = id, n.top
		}
	}
	return best
}

// AwaitLegal polls until the configuration is legal and no re-join is
// pending, or the timeout expires.
func (lc *LiveCluster) AwaitLegal(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = lc.checkLegalSnapshot(); last == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("proto: live cluster did not become legal: %w", last)
}

// checkLegalSnapshot freezes the membership and reuses the round-based
// checker on a snapshot cluster.
func (lc *LiveCluster) checkLegalSnapshot() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	snap := &Cluster{cfg: lc.cfg, nodes: make(map[core.ProcID]*Node, len(lc.actors))}
	for id, a := range lc.actors {
		if a.node.rejoinPending {
			return fmt.Errorf("proto: process %d awaiting re-join", id)
		}
		snap.nodes[id] = a.node
	}
	return snap.CheckLegal()
}

// Len returns the live population.
func (lc *LiveCluster) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.actors)
}

// Close stops every actor goroutine and waits for them to exit.
func (lc *LiveCluster) Close() {
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		return
	}
	lc.closed = true
	for id, a := range lc.actors {
		close(a.stop)
		delete(lc.actors, id)
	}
	lc.mu.Unlock()
	lc.wg.Wait()
}
