package proto

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
)

// LiveCluster drives the same protocol actors with one goroutine per
// process and real channels instead of the deterministic round scheduler:
// the concurrent runtime the repro hint calls for ("goroutines fit node
// simulation naturally"). Each actor goroutine drains its mailbox and
// fires its CHECK_* timers on a real ticker; an undeliverable send (dead
// mailbox) bounces back to the sender like the round-based substrate's
// failure notices.
//
// LiveCluster trades determinism for real concurrency; the experiments
// use the deterministic Cluster, and the live runtime demonstrates that
// the actor logic is schedule-independent.
type LiveCluster struct {
	cfg Config

	mu     sync.Mutex
	actors map[core.ProcID]*liveActor
	wg     sync.WaitGroup
	closed bool
	nextE  int64
	// sent counts dispatched messages; eventMsgs counts only event
	// dissemination messages (the Delivery.Messages metric), with
	// msgsByEvent attributing them to the event ID they carry;
	// pendingEvents counts event messages enqueued in mailboxes but not
	// yet processed (Publish waits for it to reach zero).
	sent          int
	eventMsgs     int
	msgsByEvent   map[int64]int
	pendingEvents int

	// Remote substrate plumbing (see liveremote.go); all nil/zero for a
	// purely local cluster, which keeps the historical behaviour intact.
	remote    Substrate
	isLocal   func(core.ProcID) bool
	contactFn func() core.ProcID
	hook      EventHook
	hookQ     []hookFire
}

type liveActor struct {
	node *Node
	box  chan simnet.Message
	stop chan struct{}
}

// NewLiveCluster creates an empty concurrent cluster.
func NewLiveCluster(cfg Config) (*LiveCluster, error) {
	cfg = cfg.withDefaults()
	if cfg.MinFanout < 1 || cfg.MaxFanout < 2*cfg.MinFanout {
		return nil, fmt.Errorf("proto: invalid fanout bounds m=%d M=%d", cfg.MinFanout, cfg.MaxFanout)
	}
	return &LiveCluster{
		cfg:         cfg,
		actors:      make(map[core.ProcID]*liveActor),
		msgsByEvent: make(map[int64]int),
	}, nil
}

// Join spawns a new subscriber actor and routes its JOIN request through
// the current root.
func (lc *LiveCluster) Join(id core.ProcID, filter geom.Rect) error {
	return lc.join(id, filter, core.NoProc)
}

// JoinFrom spawns a new subscriber actor whose JOIN request routes
// through an explicit contact rather than the connection oracle.
func (lc *LiveCluster) JoinFrom(contact, id core.ProcID, filter geom.Rect) error {
	lc.mu.Lock()
	known := lc.actors[contact] != nil
	lc.mu.Unlock()
	if !known {
		return fmt.Errorf("proto: contact %d not in the cluster", contact)
	}
	return lc.join(id, filter, contact)
}

func (lc *LiveCluster) join(id core.ProcID, filter geom.Rect, contact core.ProcID) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		return fmt.Errorf("proto: live cluster closed")
	}
	if id <= core.NoProc || filter.IsEmpty() {
		return fmt.Errorf("proto: invalid id or filter")
	}
	if lc.actors[id] != nil {
		return fmt.Errorf("proto: process %d already joined", id)
	}
	a := &liveActor{
		node: newNode(id, filter, lc.cfg),
		box:  make(chan simnet.Message, 256),
		stop: make(chan struct{}),
	}
	lc.actors[id] = a
	a.node.deliverCB = func(eventID int64, ev geom.Point, matched bool) {
		if lc.hook != nil {
			lc.hookQ = append(lc.hookQ, hookFire{proc: id, event: eventID, ev: ev, matched: matched})
		}
	}
	// A process roots itself only when it is genuinely first: the first
	// actor of a purely local cluster, or the designated bootstrap
	// contact of a networked one. Everything else routes a JOIN through
	// the best known contact — the local oracle when a local stable root
	// exists, else the configured remote contact.
	if len(lc.actors) > 1 || lc.remoteJoinNeededLocked(id) {
		// Mark the joiner pending before consulting the oracle: a freshly
		// created actor is self-parented and would otherwise be chosen as
		// its own contact on a networked cluster's first join.
		a.node.rejoinPending = true
		if contact == core.NoProc {
			contact = lc.contactLocked()
		}
		if contact != core.NoProc && contact != id {
			a.node.rejoin(contact, 0)
			lc.dispatchLocked(a.node.drainOut())
		} else {
			a.node.rejoinPending = false
		}
	}
	lc.wg.Add(1)
	go lc.run(a)
	return nil
}

// UpdateFilter replaces the subscription filter of live process id (the
// FilterUpdater capability): the FILTER_UPDATE is applied in the owning
// actor's next locked turn, and the periodic CHECK_MBR probes carry the
// MBR change to the root; Stabilize (AwaitLegal) confirms convergence.
func (lc *LiveCluster) UpdateFilter(id core.ProcID, f geom.Rect) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		return fmt.Errorf("proto: live cluster closed")
	}
	a := lc.actors[id]
	if a == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	if f.IsEmpty() {
		return fmt.Errorf("proto: filter must be non-empty")
	}
	if f.Dims() != a.node.filter.Dims() {
		return fmt.Errorf("proto: filter has %d dims, cluster uses %d", f.Dims(), a.node.filter.Dims())
	}
	a.node.process(simnet.Message{
		From:    simnet.NodeID(id),
		To:      simnet.NodeID(id),
		Payload: mFilterUpdate{Filter: f},
	})
	lc.dispatchLocked(a.node.drainOut())
	return nil
}

// Leave performs a controlled departure: the leaver notifies the parent
// of its topmost instance and its actor stops; the periodic checks of
// the survivors repair the rest.
func (lc *LiveCluster) Leave(id core.ProcID) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a := lc.actors[id]
	if a == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	n := a.node
	if in := n.at(n.top); in != nil && in.parent != id {
		lc.dispatchLocked([]simnet.Message{{
			From:    simnet.NodeID(id),
			To:      simnet.NodeID(in.parent),
			Payload: mLeave{Height: n.top + 1, Child: id},
		}})
	}
	delete(lc.actors, id)
	close(a.stop)
	return nil
}

// Crash kills an actor without notification.
func (lc *LiveCluster) Crash(id core.ProcID) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a := lc.actors[id]
	if a == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	delete(lc.actors, id)
	close(a.stop)
	return nil
}

// rootAuditTicks gates auditRoot on networked clusters: a node must
// have been a stable self-proclaimed root for this many consecutive
// periodic ticks (2ms each) before it re-verifies the claim through the
// cluster's global contact function. Auditing only from quiescent trees
// matters: an audit answered mid-churn can shed levels off a tree that
// was about to repair itself, and concurrent merges from several
// half-formed roots feed the very churn the audit is meant to end.
const rootAuditTicks = 50

// run is one actor goroutine: drain the mailbox, fire periodic checks.
func (lc *LiveCluster) run(a *liveActor) {
	defer lc.wg.Done()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	rootStreak := 0
	for {
		select {
		case <-a.stop:
			return
		case m := <-a.box:
			lc.withActor(a, func() {
				if _, ok := m.Payload.(mEvent); ok {
					lc.pendingEvents--
				}
				a.node.process(m)
			})
		case <-ticker.C:
			contact := lc.Contact()
			lc.withActor(a, func() {
				a.node.periodic(contact)
				if lc.contactFn == nil {
					return
				}
				// Networked cluster: the local oracle cannot rule on root
				// claims it cannot see, so a root that has stayed stable
				// for a full streak re-verifies through the global
				// bootstrap contact and disjoint trees on different
				// daemons reconcile.
				if !a.node.isRootInstance(a.node.top) {
					rootStreak = 0
					return
				}
				if rootStreak++; rootStreak >= rootAuditTicks {
					rootStreak = 0
					a.node.auditRoot(lc.contactFn())
				}
			})
		}
	}
}

// withActor runs fn and the resulting dispatch under the cluster lock:
// actor turns are serialized, which keeps the legality snapshot (and the
// race detector) happy while preserving the message-driven semantics.
func (lc *LiveCluster) withActor(a *liveActor, fn func()) {
	lc.mu.Lock()
	fn()
	lc.dispatchLocked(a.node.drainOut())
	fires := lc.takeHooksLocked()
	lc.mu.Unlock()
	lc.fireHooks(fires)
}

// dispatchLocked delivers outgoing messages to mailboxes; sends to dead
// or saturated mailboxes bounce back to the sender.
func (lc *LiveCluster) dispatchLocked(msgs []simnet.Message) {
	for _, m := range msgs {
		lc.sent++
		if ev, ok := m.Payload.(mEvent); ok {
			lc.eventMsgs++
			// Attribute to the owning publish only while it is being
			// tracked, so stragglers past a budget expiry cannot grow the
			// map without bound.
			if _, tracked := lc.msgsByEvent[ev.ID]; tracked {
				lc.msgsByEvent[ev.ID]++
			}
		}
		dst := lc.actors[core.ProcID(m.To)]
		if dst == nil {
			// A destination owned by another daemon rides the attached
			// substrate; only a vanished local process bounces here.
			if lc.remote != nil && lc.isLocal != nil && !lc.isLocal(core.ProcID(m.To)) {
				lc.remote.Send(m)
				continue
			}
			if src := lc.actors[core.ProcID(m.From)]; src != nil {
				select {
				case src.box <- simnet.Message{
					From: m.To, To: m.From,
					Payload: simnet.Bounce{To: simnet.NodeID(m.To), Original: m.Payload},
				}:
				default:
				}
			}
			continue
		}
		select {
		case dst.box <- m:
			if _, ok := m.Payload.(mEvent); ok {
				lc.pendingEvents++
			}
		default:
			// Saturated mailbox: drop. For protocol traffic this is
			// transient loss the periodic checks repair; a dropped event
			// message is a lost delivery, which the 256-slot mailboxes
			// make practically unreachable for test workloads.
		}
	}
}

// Oracle returns the current best contact (tallest self-parented actor).
func (lc *LiveCluster) Oracle() core.ProcID {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.oracleLocked()
}

func (lc *LiveCluster) oracleLocked() core.ProcID {
	best := core.NoProc
	bestH := -1
	for id, a := range lc.actors {
		n := a.node
		in := n.at(n.top)
		if in == nil || in.parent != id || n.rejoinPending {
			continue
		}
		if n.top > bestH || (n.top == bestH && (best == core.NoProc || id < best)) {
			best, bestH = id, n.top
		}
	}
	return best
}

// Publish injects an event at the producer and waits for the
// dissemination to quiesce. It is PublishBatch with a batch of one.
func (lc *LiveCluster) Publish(producer core.ProcID, ev geom.Point) (core.Delivery, error) {
	ds, err := lc.PublishBatch([]core.Publication{{Producer: producer, Event: ev}})
	if err != nil {
		return core.Delivery{}, err
	}
	return ds[0], nil
}

// PublishBatch injects every event of the batch at its producer in one
// locked turn — the whole batch is in flight through the actor mailboxes
// at once — and waits for the pipelined dissemination to quiesce: no
// event message may be sitting in a mailbox and the receiver sets and
// per-event message counts must stop changing for a few consecutive
// polls (the in-flight counter makes a descheduled actor with a queued
// event hold the poll open rather than cause a spurious miss). One
// quiescence wait covers the whole batch, so a batch costs one
// settle-time rather than len(batch) of them. Messages counts only the
// event messages carrying each entry's event ID (periodic check traffic
// keeps flowing in the background); Rounds is always 0 — the live
// runtime has no round clock.
func (lc *LiveCluster) PublishBatch(batch []core.Publication) ([]core.Delivery, error) {
	out := make([]core.Delivery, len(batch))
	if len(batch) == 0 {
		return out, nil
	}
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		return nil, fmt.Errorf("proto: live cluster closed")
	}
	for i := range batch {
		if lc.actors[batch[i].Producer] == nil {
			lc.mu.Unlock()
			return nil, fmt.Errorf("proto: producer %d not in the cluster", batch[i].Producer)
		}
	}
	ids := make([]int64, len(batch))
	for i := range batch {
		lc.nextE++
		ids[i] = lc.nextE
		for _, b := range lc.actors {
			delete(b.node.seen, ids[i])
		}
		lc.msgsByEvent[ids[i]] = 0
		a := lc.actors[batch[i].Producer]
		a.node.onEvent(mEvent{ID: ids[i], Ev: batch[i].Event, Height: a.node.top, Up: true, From: core.NoProc})
		lc.dispatchLocked(a.node.drainOut())
	}
	fires := lc.takeHooksLocked()
	lc.mu.Unlock()
	lc.fireHooks(fires)

	poll := func() (int, int, int) {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		seen, msgs := 0, 0
		for _, b := range lc.actors {
			for _, id := range ids {
				if b.node.seen[id] {
					seen++
				}
			}
		}
		for _, id := range ids {
			msgs += lc.msgsByEvent[id]
		}
		return seen, msgs, lc.pendingEvents
	}
	deadline := time.Now().Add(lc.budgetDuration(lc.cfg.PublishBudget))
	stable, lastSeen, lastMsgs := 0, -1, -1
	for stable < 8 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		seen, msgs, pending := poll()
		if pending == 0 && seen == lastSeen && msgs == lastMsgs {
			stable++
		} else {
			stable, lastSeen, lastMsgs = 0, seen, msgs
		}
	}

	lc.mu.Lock()
	defer lc.mu.Unlock()
	pids := lc.procIDsLocked()
	for i := range batch {
		d := &out[i]
		d.Messages = lc.msgsByEvent[ids[i]]
		delete(lc.msgsByEvent, ids[i])
		for _, pid := range pids {
			n := lc.actors[pid].node
			if !n.seen[ids[i]] {
				continue
			}
			d.Received = append(d.Received, pid)
			if n.filter.ContainsPoint(batch[i].Event) {
				d.TruePositives = append(d.TruePositives, pid)
			} else {
				d.FalsePositives = append(d.FalsePositives, pid)
			}
		}
	}
	return out, nil
}

// budgetDuration maps a round budget onto the live runtime's 2ms actor
// tick (one tick ≈ one round of repair opportunity), so a configured
// budget means the same thing on both message-passing runtimes. 0 uses
// the same adaptive default as the round scheduler.
func (lc *LiveCluster) budgetDuration(configured int) time.Duration {
	rounds := configured
	if rounds <= 0 {
		lc.mu.Lock()
		rounds = 800 + 200*len(lc.actors)
		lc.mu.Unlock()
	}
	return time.Duration(rounds) * 2 * time.Millisecond
}

// Stabilize waits for the actors' periodic checks to restore a legal
// configuration (the live runtime's RunUntilStable equivalent), within
// the Config.StabilizeBudget round budget mapped onto the actor tick.
func (lc *LiveCluster) Stabilize() core.StabReport {
	return core.StabReport{Converged: lc.AwaitLegal(lc.budgetDuration(lc.cfg.StabilizeBudget)) == nil}
}

// CheckLegal verifies Definition 3.1 on a frozen membership snapshot.
func (lc *LiveCluster) CheckLegal() error { return lc.checkLegalSnapshot() }

// Root returns the root process and height from the omniscient view
// (tallest self-parented topmost instance), or (NoProc, -1).
func (lc *LiveCluster) Root() (core.ProcID, int) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	id := lc.oracleLocked()
	if id == core.NoProc {
		return core.NoProc, -1
	}
	return id, lc.actors[id].node.top
}

// RootMBR returns the MBR of the root instance, or the empty rectangle.
func (lc *LiveCluster) RootMBR() geom.Rect {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	id := lc.oracleLocked()
	if id == core.NoProc {
		return geom.Rect{}
	}
	n := lc.actors[id].node
	return n.at(n.top).mbr
}

// ProcIDs returns live process IDs, ascending.
func (lc *LiveCluster) ProcIDs() []core.ProcID {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.procIDsLocked()
}

func (lc *LiveCluster) procIDsLocked() []core.ProcID {
	out := make([]core.ProcID, 0, len(lc.actors))
	for id := range lc.actors {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Filter returns the subscription rectangle of process id.
func (lc *LiveCluster) Filter(id core.ProcID) (geom.Rect, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a := lc.actors[id]
	if a == nil {
		return geom.Rect{}, false
	}
	return a.node.filter, true
}

// corrupt locks the cluster and applies fn to the instance (id, h),
// mirroring the round-based cluster's transient-fault injectors.
func (lc *LiveCluster) corrupt(id core.ProcID, h int, fn func(*instance)) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a := lc.actors[id]
	if a == nil || a.node.at(h) == nil {
		return fmt.Errorf("proto: no instance (%d,%d)", id, h)
	}
	fn(a.node.at(h))
	return nil
}

// CorruptParent overwrites the local parent variable of (id, h).
func (lc *LiveCluster) CorruptParent(id core.ProcID, h int, parent core.ProcID) error {
	return lc.corrupt(id, h, func(in *instance) { in.parent = parent })
}

// CorruptChildren replaces the local children set of (id, h).
func (lc *LiveCluster) CorruptChildren(id core.ProcID, h int, children []core.ProcID) error {
	return lc.corrupt(id, h, func(in *instance) {
		in.setChildren(children, nil)
	})
}

// CorruptMBR overwrites the local MBR of (id, h).
func (lc *LiveCluster) CorruptMBR(id core.ProcID, h int, mbr geom.Rect) error {
	return lc.corrupt(id, h, func(in *instance) { in.mbr = mbr })
}

// CorruptUnderloaded flips the local underloaded flag of (id, h).
func (lc *LiveCluster) CorruptUnderloaded(id core.ProcID, h int) error {
	return lc.corrupt(id, h, func(in *instance) { in.underloaded = !in.underloaded })
}

// AwaitLegal polls until the configuration is legal and no re-join is
// pending, or the timeout expires.
func (lc *LiveCluster) AwaitLegal(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = lc.checkLegalSnapshot(); last == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("proto: live cluster did not become legal: %w", last)
}

// checkLegalSnapshot freezes the membership and reuses the round-based
// checker on a snapshot cluster.
func (lc *LiveCluster) checkLegalSnapshot() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	snap := &Cluster{cfg: lc.cfg, nodes: make(map[core.ProcID]*Node, len(lc.actors))}
	for id, a := range lc.actors {
		if a.node.rejoinPending {
			return fmt.Errorf("proto: process %d awaiting re-join", id)
		}
		snap.nodes[id] = a.node
	}
	return snap.CheckLegal()
}

// Len returns the live population.
func (lc *LiveCluster) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.actors)
}

// Close stops every actor goroutine and waits for them to exit.
func (lc *LiveCluster) Close() error {
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		return nil
	}
	lc.closed = true
	for id, a := range lc.actors {
		close(a.stop)
		delete(lc.actors, id)
	}
	lc.mu.Unlock()
	lc.wg.Wait()
	return nil
}
