// Package proto is the message-passing implementation of the DR-tree
// maintenance protocol (the paper's Figures 8-14) on top of the simulated
// network substrate internal/simnet.
//
// Every process is a Node actor owning only its local state: its filter,
// its per-level instances (parent pointer, children set with cached child
// MBRs, own MBR, underloaded flag). All coordination — join routing,
// ADD_CHILD with splitting and leader election, controlled leaves, the
// periodic CHECK_PARENT / CHECK_CHILDREN / CHECK_MBR verifications, the
// underload repair, and event dissemination — happens through messages.
// Crash detection uses the substrate's bounce notices (the stand-in for a
// timeout-based failure detector).
//
// The deterministic round scheduler (Cluster) measures convergence in
// rounds and messages, which is how experiments E3-E5 quantify the
// stabilization lemmas. The sequential engine in internal/core implements
// the same rules as directly-callable transitions; see DESIGN.md.
package proto

import (
	"drtree/internal/core"
	"drtree/internal/geom"
)

// member describes one child in promotion and split messages.
type member struct {
	ID  core.ProcID
	MBR geom.Rect
}

// mJoin routes a (re-)connection request: insert the subtree rooted at
// Joiner (topmost instance at AtHeight) below the receiver. Height names
// the receiver instance that should process the message.
type mJoin struct {
	Joiner   core.ProcID
	MBR      geom.Rect
	AtHeight int
	Height   int
	// Descend marks requests already redirected through the root: they
	// route downward only (the paper's two join phases).
	Descend bool
}

// mAdd is ADD_CHILD: attach Child (topmost instance at Height-1) to the
// receiver's instance at Height.
type mAdd struct {
	Child  core.ProcID
	MBR    geom.Rect
	Height int
}

// mWelcome tells a joiner its new parent for the instance at Height.
type mWelcome struct {
	Height int
	Parent core.ProcID
}

// mNewParent tells a process its instance at Height has a new parent.
type mNewParent struct {
	Height int
	Parent core.ProcID
}

// mPromote tells the elected leader of a split group to create an
// instance at Height adopting Members. If Root is set, the leader also
// becomes the new tree root: it either hosts the new root instance at
// Height+1 over {Sibling, itself} (when Sibling is set), or simply roots
// itself. Parent is the leader's parent when not a root promotion.
type mPromote struct {
	Height  int
	Members []member
	Parent  core.ProcID
	Root    bool
	Sibling *member
}

// mLeave is the controlled departure notice sent to the parent of the
// leaver's topmost instance (Figure 9).
type mLeave struct {
	Height int // the parent's instance height
	Child  core.ProcID
}

// mRemoveChild tells a parent to drop Child from its children at Height
// (used by self-dissolving underloaded nodes).
type mRemoveChild struct {
	Height int
	Child  core.ProcID
}

// mDissolved tells a child that its parent's node dissolved; the child
// must re-execute the join process for its subtree
// (INITIATE_NEW_CONNECTION, Figure 14).
type mDissolved struct {
	Height int // the child's instance height
}

// mBecomeRoot tells the last child of a collapsing root to take over as
// tree root at Height.
type mBecomeRoot struct {
	Height int
}

// mShrink tells a fragment taller than the current tree to dissolve its
// instance at Height (its children re-join individually) before retrying.
type mShrink struct {
	Height int
}

// mParentQuery implements CHECK_PARENT (Figure 11): "is my instance at
// Height still one of your children at Height+1?".
type mParentQuery struct {
	Height int
	Child  core.ProcID
}

// mParentAck answers mParentQuery.
type mParentAck struct {
	Height  int
	IsChild bool
}

// mChildQuery implements CHECK_CHILDREN / CHECK_MBR probing (Figures 10,
// 12): the parent asks a child to report its instance at Height-1.
type mChildQuery struct {
	Height int // parent instance height
}

// mChildReport answers mChildQuery.
type mChildReport struct {
	Height      int // parent instance height the report belongs to
	MBR         geom.Rect
	Underloaded bool
	ParentIs    core.ProcID
	Exists      bool
}

// mFilterUpdate replaces the receiver's own subscription filter (the
// FilterUpdater capability). It is handed to the owning node by its
// local application layer — the cluster applies it directly rather than
// routing it over the lossy substrate, so an update can never be lost —
// and the resulting MBR change rides the normal repair machinery: an
// eager child report one level up, then the periodic CHECK_MBR probes
// the rest of the way.
type mFilterUpdate struct {
	Filter geom.Rect
}

// mEvent carries a published event through the overlay (§2.3): upward to
// the root, downward into every subtree whose MBR contains it.
type mEvent struct {
	ID     int64
	Ev     geom.Point
	Height int // receiver instance height
	Up     bool
	From   core.ProcID
}
