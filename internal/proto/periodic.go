package proto

import (
	"drtree/internal/core"
	"drtree/internal/geom"
)

// periodic fires the node's CHECK_* timers (paper §3.3): probe children
// and parent, fix the local chain, re-join orphaned fragments through the
// oracle-provided contact, dissolve persistently underloaded nodes, and
// collapse degenerate roots.
func (n *Node) periodic(contact core.ProcID) {
	n.fixChain()

	for h := n.top; h >= 0; h-- {
		in := n.at(h)
		if in == nil {
			continue
		}
		if h > 0 {
			// CHECK_CHILDREN + CHECK_MBR: probe every remote child. The
			// children slices are kept in ascending ID order, so the scan
			// is the deterministic probe order with no per-round sort.
			for _, c := range in.childID {
				if c == n.id {
					continue
				}
				n.send(c, mChildQuery{Height: h})
			}
			// Own child is read locally.
			if low := n.at(h - 1); low != nil {
				if i := in.childIndex(n.id); i >= 0 {
					in.childMBR[i] = low.mbr
					in.childUnder[i] = low.underloaded
				}
			}
			n.recomputeMBR(h)
			n.refreshUnderloaded(h)
			// The own-child invariant: without it this node cannot stand.
			if !in.hasChild(n.id) || n.at(h-1) == nil {
				n.dissolve(h)
				continue
			}
		} else {
			n.recomputeMBR(0)
		}

		// CHECK_PARENT for the topmost instance.
		if h == n.top {
			if n.isRootInstance(h) {
				// A node that believes it is the root verifies the claim
				// against the connection oracle: a corruption or healed
				// partition can leave two self-proclaimed roots, and the
				// one the oracle does not name must re-join under the
				// other (the distributed twin of the sequential engine's
				// ensureRoot election).
				if contact != n.id && contact != core.NoProc {
					n.rejoin(contact, h)
				} else {
					n.maybeCollapseRoot(h)
				}
				continue
			}
			if n.rejoinPending || in.parent == n.id || in.parent == core.NoProc {
				n.rejoin(contact, h)
				continue
			}
			n.send(in.parent, mParentQuery{Height: h, Child: n.id})
		} else if in.parent != n.id {
			// Interior of the own chain must be self-parented.
			in.parent = n.id
		}
	}

	// CHECK_STRUCTURE: persistently underloaded non-root nodes dissolve
	// and their children re-execute the join process (Figure 14's
	// INITIATE_NEW_CONNECTION fallback).
	for h := n.top; h >= 1; h-- {
		in := n.at(h)
		if in == nil {
			continue
		}
		if in.underloaded && !n.isRootInstance(h) {
			in.underRounds++
			if in.underRounds > n.cfg.UnderloadPatience {
				n.dissolve(h)
			}
		} else {
			in.underRounds = 0
		}
	}
}

// fixChain dissolves instances above a gap in the 0..top chain.
func (n *Node) fixChain() {
	top := 0
	for n.at(top+1) != nil {
		top++
	}
	for h := len(n.inst) - 1; h > top; h-- {
		if n.at(h) != nil {
			n.dissolve(h)
		}
	}
	n.top = top
}

// dissolve removes the instance at h: remote children are told to re-join
// (mDissolved), the parent is told to drop us, and our own chain below
// becomes the new topmost fragment.
func (n *Node) dissolve(h int) {
	ptr := n.at(h)
	if ptr == nil {
		return
	}
	in := *ptr // value copy: clearInst zeroes the table slot
	n.clearInst(h)
	for _, c := range in.childID {
		if c != n.id {
			n.send(c, mDissolved{Height: h - 1})
		}
	}
	if in.parent != n.id && in.parent != core.NoProc {
		n.send(in.parent, mRemoveChild{Height: h + 1, Child: n.id})
	}
	if n.top >= h {
		n.top = h - 1
		if low := n.at(n.top); low != nil {
			low.parent = n.id
			n.rejoinPending = true
		}
	}
}

// rejoin re-executes the join process for the subtree topped at h,
// starting from the oracle-provided contact (Figure 11).
func (n *Node) rejoin(contact core.ProcID, h int) {
	if contact == core.NoProc || contact == n.id {
		// We are the contact (likely the new root); stay put.
		n.rejoinPending = false
		if in := n.at(h); in != nil {
			in.parent = n.id
		}
		return
	}
	in := n.at(h)
	if in == nil {
		return
	}
	n.rejoinPending = true
	n.send(contact, mJoin{Joiner: n.id, MBR: in.mbr, AtHeight: h, Height: -1})
}

// auditRoot probes this node's root claim through a globally-designated
// contact (a networked cluster's bootstrap anchor). The local connection
// oracle cannot see actors hosted by other daemons, so two daemons can
// each stabilise a self-proclaimed root whose periodic CHECK_PARENT
// never fires (each root IS its own local oracle). The probe is an
// ordinary join of the whole subtree: it either routes back to this
// node — which really is the root of the contact's tree, and onJoin's
// self-join guard drops it — or reaches the root of a disjoint tree,
// which adopts this subtree through the standard merge machinery.
// Unlike rejoin, the node keeps operating as root while the probe is in
// flight (rejoinPending stays false), so a legitimate root's
// steady-state audits cause no churn.
func (n *Node) auditRoot(contact core.ProcID) {
	if contact == core.NoProc || contact == n.id || !n.isRootInstance(n.top) {
		return
	}
	in := n.at(n.top)
	if in == nil {
		return
	}
	n.send(contact, mJoin{Joiner: n.id, MBR: in.mbr, AtHeight: n.top, Height: -1})
}

// maybeCollapseRoot removes a degenerate root (single child).
func (n *Node) maybeCollapseRoot(h int) {
	in := n.at(h)
	if in == nil || h == 0 || in.numChildren() != 1 {
		return
	}
	only := in.childID[0]
	n.clearInst(h)
	n.top = h - 1
	if only == n.id {
		if low := n.at(h - 1); low != nil {
			low.parent = n.id
		}
		return
	}
	n.send(only, mBecomeRoot{Height: h - 1})
}

// onEvent routes a published event (paper §2.3): deliver locally, descend
// into children whose cached MBR contains it, and keep climbing when
// traveling upward.
func (n *Node) onEvent(p mEvent) {
	n.deliver(p.ID, p.Ev)
	h := p.Height
	in := n.at(h)
	if in == nil {
		return
	}
	if h > 0 {
		// Hot path: one cache-linear sweep over the sorted parallel
		// slices, no allocation per visit.
		for i, c := range in.childID {
			if c == p.From {
				continue
			}
			if !in.childMBR[i].ContainsPoint(p.Ev) {
				continue
			}
			if c == n.id {
				// Descend the own chain locally. From must not name this
				// node: the next level down would skip its own child and
				// strand the whole own-chain subtree (a false negative).
				n.onEvent(mEvent{ID: p.ID, Ev: p.Ev, Height: h - 1, From: core.NoProc})
				continue
			}
			n.send(c, mEvent{ID: p.ID, Ev: p.Ev, Height: h - 1, From: n.id})
		}
	}
	if p.Up && !n.isRootInstance(h) && in.parent != n.id && in.parent != core.NoProc {
		n.send(in.parent, mEvent{ID: p.ID, Ev: p.Ev, Height: h + 1, Up: true, From: n.id})
	} else if p.Up && h < n.top {
		// Climb our own chain locally.
		n.onEvent(mEvent{ID: p.ID, Ev: p.Ev, Height: h + 1, Up: true, From: n.id})
	}
}

// seenCap / seenWindow bound the per-node receipt set for long-running
// processes: once the set reaches seenCap entries, receipts more than
// seenWindow event IDs behind the newest are pruned. Event IDs are
// monotone per publisher, so pruning only forgets long-settled events;
// a duplicate arriving later than that is re-delivered (at-most-once
// becomes best-effort beyond the window), which a daemon tolerates and
// the bounded-batch test workloads never reach.
const (
	seenCap    = 8192
	seenWindow = 4096
)

// deliver records the physical receipt of an event (idempotent within
// the retention window).
func (n *Node) deliver(id int64, ev geom.Point) {
	if n.seen[id] {
		return
	}
	if len(n.seen) >= seenCap {
		for old := range n.seen {
			if old <= id-seenWindow {
				delete(n.seen, old)
			}
		}
	}
	n.seen[id] = true
	n.Delivered++
	matched := n.filter.ContainsPoint(ev)
	if !matched {
		n.FalsePos++
	}
	if n.deliverCB != nil {
		n.deliverCB(id, ev, matched)
	}
}
