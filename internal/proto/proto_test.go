package proto

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/geom"
)

func cfg() Config {
	return Config{MinFanout: 2, MaxFanout: 4}
}

func mustCluster(t *testing.T, c Config) *Cluster {
	t.Helper()
	cl, err := NewCluster(c)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// grow joins n subscribers with random filters, letting the cluster
// stabilize between arrivals, and asserts legality.
func grow(t *testing.T, cl *Cluster, rng *rand.Rand, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		f := geom.R2(x, y, x+10+rng.Float64()*40, y+10+rng.Float64()*40)
		if err := cl.Join(core.ProcID(i), f); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if _, ok := cl.RunUntilStable(300); !ok {
			t.Fatalf("no stabilization after join %d: %v\n%s", i, cl.CheckLegal(), cl.Describe())
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{MinFanout: 0, MaxFanout: 4}); err == nil {
		t.Error("m=0 must be rejected")
	}
	if _, err := NewCluster(Config{MinFanout: 3, MaxFanout: 5}); err == nil {
		t.Error("M < 2m must be rejected")
	}
}

func TestJoinValidation(t *testing.T) {
	cl := mustCluster(t, cfg())
	if err := cl.Join(0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("id 0 must be rejected")
	}
	if err := cl.Join(1, geom.Rect{}); err == nil {
		t.Error("empty filter must be rejected")
	}
	if err := cl.Join(1, geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Join(1, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("duplicate must be rejected")
	}
	if err := cl.Leave(42); err == nil {
		t.Error("leaving unknown node must error")
	}
	if err := cl.Crash(42); err == nil {
		t.Error("crashing unknown node must error")
	}
}

func TestSingleNodeIsLegalRoot(t *testing.T) {
	cl := mustCluster(t, cfg())
	if err := cl.Join(1, geom.R2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if cl.Oracle() != 1 {
		t.Fatalf("oracle = %d", cl.Oracle())
	}
}

func TestProtocolGrowth(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(1, 1))
	grow(t, cl, rng, 40)
	if cl.Len() != 40 {
		t.Fatalf("Len = %d", cl.Len())
	}
	if err := cl.CheckLegal(); err != nil {
		t.Fatalf("%v\n%s", err, cl.Describe())
	}
}

func TestProtocolJoinCostLogarithmic(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(2, 2))
	grow(t, cl, rng, 60)
	// A single further join must stabilize within a handful of check
	// periods (join routing is O(height) rounds, Lemma 3.2).
	before := cl.NetStats().Delivered
	if err := cl.Join(61, geom.R2(10, 10, 30, 30)); err != nil {
		t.Fatal(err)
	}
	rounds, ok := cl.RunUntilStable(300)
	if !ok {
		t.Fatalf("join did not stabilize: %v", cl.CheckLegal())
	}
	msgs := cl.NetStats().Delivered - before
	t.Logf("join of node 61: %d rounds to stable, %d messages", rounds, msgs)
	if msgs > 1200 {
		t.Fatalf("join cost %d messages is broadcast-like", msgs)
	}
}

func TestControlledLeave(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(3, 3))
	grow(t, cl, rng, 25)
	ids := cl.IDs()
	for _, id := range []core.ProcID{ids[3], ids[10], ids[17]} {
		if err := cl.Leave(id); err != nil {
			t.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(600); !ok {
			t.Fatalf("no stabilization after leave %d: %v\n%s", id, cl.CheckLegal(), cl.Describe())
		}
	}
	if cl.Len() != 22 {
		t.Fatalf("Len = %d", cl.Len())
	}
}

func TestCrashRepair(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(4, 4))
	grow(t, cl, rng, 30)
	// Crash an interior node (one with top >= 1) plus a leaf.
	var interior core.ProcID
	for _, id := range cl.IDs() {
		if cl.Node(id).Top() >= 1 && cl.Node(id).Top() < 3 {
			interior = id
			break
		}
	}
	if interior == core.NoProc {
		t.Skip("no interior node found")
	}
	if err := cl.Crash(interior); err != nil {
		t.Fatal(err)
	}
	rounds, ok := cl.RunUntilStable(800)
	if !ok {
		t.Fatalf("no repair after interior crash: %v\n%s", cl.CheckLegal(), cl.Describe())
	}
	t.Logf("interior crash repaired in %d rounds", rounds)
}

func TestRootCrashRepair(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(5, 5))
	grow(t, cl, rng, 25)
	root := cl.Oracle()
	if err := cl.Crash(root); err != nil {
		t.Fatal(err)
	}
	rounds, ok := cl.RunUntilStable(800)
	if !ok {
		t.Fatalf("no repair after root crash: %v\n%s", cl.CheckLegal(), cl.Describe())
	}
	t.Logf("root crash repaired in %d rounds", rounds)
	if cl.Len() != 24 {
		t.Fatalf("Len = %d", cl.Len())
	}
}

func TestCorruptionRepair(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(6, 6))
	grow(t, cl, rng, 20)
	ids := cl.IDs()

	if err := cl.CorruptParent(ids[4], 0, ids[7]); err != nil {
		t.Fatal(err)
	}
	if err := cl.CorruptMBR(ids[2], 0, geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	root := cl.Oracle()
	rn := cl.Node(root)
	if err := cl.CorruptMBR(root, rn.Top(), geom.R2(0, 0, 2, 2)); err != nil {
		t.Fatal(err)
	}
	rounds, ok := cl.RunUntilStable(800)
	if !ok {
		t.Fatalf("no repair after corruption: %v\n%s", cl.CheckLegal(), cl.Describe())
	}
	t.Logf("corruption repaired in %d rounds", rounds)

	if err := cl.CorruptParent(99, 0, 1); err == nil {
		t.Error("corrupting unknown instance must error")
	}
	if err := cl.CorruptChildren(99, 1, nil); err == nil {
		t.Error("corrupting unknown instance must error")
	}
	if err := cl.CorruptMBR(99, 0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("corrupting unknown instance must error")
	}
}

func TestChildrenCorruptionRepair(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(7, 7))
	grow(t, cl, rng, 20)
	root := cl.Oracle()
	rn := cl.Node(root)
	_, children, _, ok := rn.Instance(rn.Top())
	if !ok || len(children) < 2 {
		t.Fatal("root must have children")
	}
	// Drop all but one child from the root's local view.
	if err := cl.CorruptChildren(root, rn.Top(), children[:1]); err != nil {
		t.Fatal(err)
	}
	rounds, okk := cl.RunUntilStable(1000)
	if !okk {
		t.Fatalf("no repair after children corruption: %v\n%s", cl.CheckLegal(), cl.Describe())
	}
	t.Logf("children corruption repaired in %d rounds", rounds)
}

func TestProtocolPublishNoFalseNegatives(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(8, 8))
	grow(t, cl, rng, 30)
	ids := cl.IDs()
	for k := 0; k < 20; k++ {
		ev := geom.Point{rng.Float64() * 550, rng.Float64() * 550}
		res, err := cl.Publish(ids[rng.IntN(len(ids))], ev)
		if err != nil {
			t.Fatal(err)
		}
		if fn := falseNegatives(cl, res, ev); len(fn) != 0 {
			t.Fatalf("event %v: false negatives %v\n%s", ev, fn, cl.Describe())
		}
	}
}

func TestProtocolPublishWorkedExample(t *testing.T) {
	// The Figure 1 scenario over the wire protocol: publishing event a
	// from S2 must reach S2, S3, S4 (and nobody who does not match).
	cl := mustCluster(t, Config{MinFanout: 1, MaxFanout: 3})
	rects := []geom.Rect{
		geom.R2(5, 5, 28, 45),
		geom.R2(10, 50, 45, 90),
		geom.R2(30, 5, 95, 75),
		geom.R2(32, 52, 43, 73),
		geom.R2(55, 55, 90, 95),
		geom.R2(60, 60, 75, 85),
		geom.R2(60, 10, 85, 40),
		geom.R2(40, 15, 70, 35),
	}
	for i, r := range rects {
		if err := cl.Join(core.ProcID(i+1), r); err != nil {
			t.Fatal(err)
		}
		if _, ok := cl.RunUntilStable(300); !ok {
			t.Fatalf("no stabilization after join %d: %v\n%s", i+1, cl.CheckLegal(), cl.Describe())
		}
	}
	res, err := cl.Publish(2, geom.Point{35, 60})
	if err != nil {
		t.Fatal(err)
	}
	if fn := falseNegatives(cl, res, geom.Point{35, 60}); len(fn) != 0 {
		t.Fatalf("false negatives %v: %+v\n%s", fn, res, cl.Describe())
	}
	for _, id := range res.Received {
		if id != 2 && id != 3 && id != 4 {
			t.Logf("note: extra receiver P%d (tree shape differs from sequential engine)", id)
		}
	}
	if len(res.FalsePositives) > 2 {
		t.Fatalf("too many false positives: %+v", res)
	}
}

func TestPublishUnknownProducer(t *testing.T) {
	cl := mustCluster(t, cfg())
	if _, err := cl.Publish(9, geom.Point{1, 2}); err == nil {
		t.Fatal("unknown producer must error")
	}
}

func TestMassiveChurnConvergence(t *testing.T) {
	cl := mustCluster(t, cfg())
	rng := rand.New(rand.NewPCG(9, 9))
	grow(t, cl, rng, 30)
	// Kill a third of the population at once, then let the protocol
	// stabilize (Lemma 3.5 regime).
	ids := cl.IDs()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:10] {
		if err := cl.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	rounds, ok := cl.RunUntilStable(2000)
	if !ok {
		t.Fatalf("no convergence after mass crash: %v\n%s", cl.CheckLegal(), cl.Describe())
	}
	t.Logf("mass crash (10/30) repaired in %d rounds", rounds)
	if cl.Len() != 20 {
		t.Fatalf("Len = %d", cl.Len())
	}
}

func TestNodeAccessors(t *testing.T) {
	cl := mustCluster(t, cfg())
	f := geom.R2(0, 0, 10, 10)
	if err := cl.Join(1, f); err != nil {
		t.Fatal(err)
	}
	n := cl.Node(1)
	if n.ID() != 1 || !n.Filter().Equal(f) || n.Top() != 0 {
		t.Fatalf("accessors: id=%d top=%d", n.ID(), n.Top())
	}
	parent, children, mbr, ok := n.Instance(0)
	if !ok || parent != 1 || len(children) != 0 || !mbr.Equal(f) {
		t.Fatalf("Instance(0) = %v %v %v %v", parent, children, mbr, ok)
	}
	if _, _, _, ok := n.Instance(5); ok {
		t.Fatal("missing instance must report !ok")
	}
}

// falseNegatives lists live subscribers whose filter matches ev but that
// did not receive it — the unified Delivery leaves the ground-truth
// comparison to the caller.
func falseNegatives(cl *Cluster, d core.Delivery, ev geom.Point) []core.ProcID {
	seen := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		seen[id] = true
	}
	var out []core.ProcID
	for _, id := range cl.IDs() {
		if f, _ := cl.Filter(id); f.ContainsPoint(ev) && !seen[id] {
			out = append(out, id)
		}
	}
	return out
}
