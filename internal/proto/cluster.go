package proto

import (
	"fmt"
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
)

// Cluster is the deterministic round scheduler driving the protocol
// actors over a simnet.Network. Each round: deliver all in-flight
// messages, let every node process its inbox, fire the periodic CHECK_*
// timers every Config.CheckEvery rounds, and collect outboxes.
type Cluster struct {
	cfg   Config
	net   *simnet.Network
	nodes map[core.ProcID]*Node
	round int
	nextE int64
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.MinFanout < 1 {
		return nil, fmt.Errorf("proto: MinFanout must be >= 1, got %d", cfg.MinFanout)
	}
	if cfg.MaxFanout < 2*cfg.MinFanout {
		return nil, fmt.Errorf("proto: MaxFanout must be >= 2*MinFanout")
	}
	return &Cluster{
		cfg:   cfg,
		net:   simnet.New(),
		nodes: make(map[core.ProcID]*Node),
	}, nil
}

// Len returns the live population.
func (c *Cluster) Len() int { return len(c.nodes) }

// Close releases engine resources. The round-based cluster holds none
// (no goroutines); the method exists for the unified Engine lifecycle.
func (c *Cluster) Close() error { return nil }

// Round returns the current round number.
func (c *Cluster) Round() int { return c.round }

// budget resolves a configured round budget, falling back to an adaptive
// default that scales with the population.
func (c *Cluster) budget(configured int) int {
	if configured > 0 {
		return configured
	}
	return 800 + 200*len(c.nodes)
}

// NetStats returns the network traffic counters.
func (c *Cluster) NetStats() simnet.Stats { return c.net.Stats() }

// Net exposes the underlying simulated network so drivers can inject
// message-level faults (drops, partitions, per-link delays).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Root returns the root process and root height from the omniscient
// view: the tallest self-parented topmost instance. For an empty or
// root-less configuration it returns (NoProc, -1).
func (c *Cluster) Root() (core.ProcID, int) {
	best := core.NoProc
	bestH := -1
	for _, id := range c.IDs() {
		n := c.nodes[id]
		in := n.at(n.top)
		if in != nil && in.parent == id && !n.rejoinPending && n.top > bestH {
			best, bestH = id, n.top
		}
	}
	return best, bestH
}

// RootMBR returns the MBR of the root instance, or the empty rectangle
// for an empty or root-less configuration. In a legal state this equals
// the union of every live filter.
func (c *Cluster) RootMBR() geom.Rect {
	id, h := c.Root()
	if id == core.NoProc {
		return geom.Rect{}
	}
	return c.nodes[id].at(h).mbr
}

// Filter returns the subscription rectangle of process id.
func (c *Cluster) Filter(id core.ProcID) (geom.Rect, bool) {
	n := c.nodes[id]
	if n == nil {
		return geom.Rect{}, false
	}
	return n.filter, true
}

// Node returns the actor with the given ID, or nil.
func (c *Cluster) Node(id core.ProcID) *Node { return c.nodes[id] }

// IDs returns live process IDs, ascending.
func (c *Cluster) IDs() []core.ProcID {
	out := make([]core.ProcID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ProcIDs returns live process IDs, ascending (the Engine-interface name
// for IDs).
func (c *Cluster) ProcIDs() []core.ProcID { return c.IDs() }

// Join introduces a new subscriber: the node is created locally and its
// JOIN request is sent to the oracle-provided contact (the paper's
// connection oracle). Run the cluster to let the request route.
func (c *Cluster) Join(id core.ProcID, filter geom.Rect) error {
	return c.join(id, filter, core.NoProc)
}

// JoinFrom introduces a new subscriber whose JOIN request routes through
// an explicit contact node rather than the connection oracle.
func (c *Cluster) JoinFrom(contact, id core.ProcID, filter geom.Rect) error {
	if c.nodes[contact] == nil {
		return fmt.Errorf("proto: contact %d not in the cluster", contact)
	}
	return c.join(id, filter, contact)
}

func (c *Cluster) join(id core.ProcID, filter geom.Rect, contact core.ProcID) error {
	if id <= core.NoProc {
		return fmt.Errorf("proto: process IDs must be positive, got %d", id)
	}
	if c.nodes[id] != nil {
		return fmt.Errorf("proto: process %d already joined", id)
	}
	if filter.IsEmpty() {
		return fmt.Errorf("proto: filter must be non-empty")
	}
	n := newNode(id, filter, c.cfg)
	c.nodes[id] = n
	c.net.Revive(simnet.NodeID(id))
	if len(c.nodes) == 1 {
		return nil // first node is the root
	}
	if contact == core.NoProc {
		contact = c.Oracle()
	}
	n.rejoinPending = true
	n.rejoin(contact, 0)
	c.net.Send(n.drainOut()...)
	return nil
}

// UpdateFilter replaces the subscription filter of live process id (the
// FilterUpdater capability). The FILTER_UPDATE is applied at the owning
// node directly — it is application-to-local-process traffic, so it
// cannot be lost to the simulated network's faults — and the resulting
// MBR change propagates through the node's eager child report plus the
// periodic CHECK_MBR probes; Stabilize drives the configuration back to
// a legal state whose root MBR is the union of the updated filters.
func (c *Cluster) UpdateFilter(id core.ProcID, f geom.Rect) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	if f.IsEmpty() {
		return fmt.Errorf("proto: filter must be non-empty")
	}
	if f.Dims() != n.filter.Dims() {
		return fmt.Errorf("proto: filter has %d dims, cluster uses %d", f.Dims(), n.filter.Dims())
	}
	n.process(simnet.Message{
		From:    simnet.NodeID(id),
		To:      simnet.NodeID(id),
		Payload: mFilterUpdate{Filter: f},
	})
	c.net.Send(n.drainOut()...)
	return nil
}

// Leave performs a controlled departure (Figure 9): the leaver notifies
// the parent of its topmost instance and disappears; stabilization
// repairs the rest.
func (c *Cluster) Leave(id core.ProcID) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	if in := n.at(n.top); in != nil && in.parent != id {
		c.net.Send(simnet.Message{
			From:    simnet.NodeID(id),
			To:      simnet.NodeID(in.parent),
			Payload: mLeave{Height: n.top + 1, Child: id},
		})
	}
	delete(c.nodes, id)
	c.net.Kill(simnet.NodeID(id))
	return nil
}

// Crash removes a node without notification; bounces and periodic checks
// reveal the failure.
func (c *Cluster) Crash(id core.ProcID) error {
	if c.nodes[id] == nil {
		return fmt.Errorf("proto: process %d not in the cluster", id)
	}
	delete(c.nodes, id)
	c.net.Kill(simnet.NodeID(id))
	return nil
}

// Oracle returns the current best contact: the root from a global view
// (the tallest self-parented topmost instance; ties by largest MBR, then
// lowest ID). The paper assumes an accurate connection-time oracle (§3.2
// Joins). When every candidate is itself awaiting a re-join (no stable
// root anywhere — e.g. after the root crashed or two corrupted roots
// orphaned each other), the oracle names the tallest fragment instead:
// rejoin() lets the named node elect itself root, exactly like the
// sequential engine promotes the tallest fragment in ensureRoot.
func (c *Cluster) Oracle() core.ProcID {
	best := core.NoProc
	bestH := -1
	bestArea := -1.0
	fallback := core.NoProc
	fbH := -1
	fbArea := -1.0
	for _, id := range c.IDs() {
		n := c.nodes[id]
		in := n.at(n.top)
		if in == nil {
			continue
		}
		area := in.mbr.Area()
		if n.top > fbH || (n.top == fbH && area > fbArea) {
			fallback, fbH, fbArea = id, n.top, area
		}
		if in.parent != id || n.rejoinPending {
			continue
		}
		if n.top > bestH || (n.top == bestH && area > bestArea) {
			best, bestH, bestArea = id, n.top, area
		}
	}
	if best == core.NoProc {
		return fallback
	}
	return best
}

// Step runs one round: deliver in-flight messages, let nodes process
// them, and fire the CHECK_* timers when fireChecks is set. It reports
// whether any message was delivered.
func (c *Cluster) Step(fireChecks bool) bool {
	c.round++
	inboxes := c.net.DeliverRound()
	busy := len(inboxes) > 0
	for _, id := range c.IDs() {
		n := c.nodes[id]
		for _, m := range inboxes[simnet.NodeID(id)] {
			n.process(m)
		}
		if fireChecks {
			n.periodic(c.Oracle())
		}
		c.net.Send(n.drainOut()...)
	}
	return busy || fireChecks
}

// settle runs rounds without firing timers until the network drains.
func (c *Cluster) settle(maxRounds int) bool {
	for r := 0; r < maxRounds; r++ {
		if c.net.Quiescent() {
			return true
		}
		c.Step(false)
	}
	return c.net.Quiescent()
}

// RunUntilStable alternates check periods (one CHECK_* timer firing per
// period, then draining the resulting traffic) until the configuration is
// legal, no node awaits a re-join, and one extra period confirms the
// fixpoint — or maxRounds elapse. It returns rounds consumed and whether
// the stable point was reached. The number of check periods consumed is
// the protocol-level stabilization-time metric of experiments E3-E5.
func (c *Cluster) RunUntilStable(maxRounds int) (int, bool) {
	start := c.round
	confirmed := 0
	for c.round-start < maxRounds {
		if !c.settle(maxRounds - (c.round - start)) {
			return c.round - start, false
		}
		if !c.anyRejoinPending() && c.CheckLegal() == nil {
			confirmed++
			if confirmed >= 2 {
				return c.round - start, true
			}
		} else {
			confirmed = 0
		}
		c.Step(true) // fire one check period
	}
	return c.round - start, false
}

func (c *Cluster) anyRejoinPending() bool {
	for _, n := range c.nodes {
		if n.rejoinPending {
			return true
		}
	}
	return false
}

// Publish injects an event at the producer, runs the cluster until the
// network drains (bounded by Config.PublishBudget rounds), and collects
// the unified delivery accounting. Received/TruePositives/FalsePositives
// are ascending; Rounds is the dissemination latency in network rounds.
// It is PublishBatch with a batch of one.
func (c *Cluster) Publish(producer core.ProcID, ev geom.Point) (core.Delivery, error) {
	ds, err := c.PublishBatch([]core.Publication{{Producer: producer, Event: ev}})
	if err != nil {
		return core.Delivery{}, err
	}
	return ds[0], nil
}

// PublishBatch injects every event of the batch at its producer in the
// same round — multiple publications in flight at once — then runs the
// cluster until the network drains under one shared round budget
// (Config.PublishBudget covers the whole batch, not each event), and
// collects one Delivery per entry. Because disseminations overlap, the
// per-event Rounds all report the rounds the batch took to drain; a
// batch therefore costs roughly one tree traversal's worth of rounds
// rather than len(batch) of them. Messages are attributed per event by
// the event ID its messages carry.
func (c *Cluster) PublishBatch(batch []core.Publication) ([]core.Delivery, error) {
	out := make([]core.Delivery, len(batch))
	if len(batch) == 0 {
		return out, nil
	}
	for i := range batch {
		if c.nodes[batch[i].Producer] == nil {
			return nil, fmt.Errorf("proto: producer %d not in the cluster", batch[i].Producer)
		}
	}
	maxRounds := c.budget(c.cfg.PublishBudget)
	ids := make([]int64, len(batch))
	idx := make(map[int64]int, len(batch))
	msgs := make([]int, len(batch))
	for i := range batch {
		c.nextE++
		ids[i] = c.nextE
		idx[ids[i]] = i
		for _, node := range c.nodes {
			delete(node.seen, ids[i])
		}
		// From must be NoProc at the injection point: a producer owning
		// interior instances (for example the root) must still descend
		// into its own subtree, and onEvent skips the From child.
		n := c.nodes[batch[i].Producer]
		n.onEvent(mEvent{ID: ids[i], Ev: batch[i].Event, Height: n.top, Up: true, From: core.NoProc})
		c.net.Send(n.drainOut()...)
	}

	start := c.round
	for !c.net.Quiescent() && c.round-start < maxRounds {
		// Run without periodic timers so message counts isolate the
		// dissemination itself.
		c.round++
		inboxes := c.net.DeliverRound()
		for _, nid := range simnet.SortedIDs(inboxes) {
			node := c.nodes[core.ProcID(nid)]
			for _, m := range inboxes[nid] {
				if k, ok := idx[eventIDOf(m.Payload)]; ok {
					msgs[k]++
				}
				if node != nil {
					node.process(m)
				}
			}
			if node != nil {
				c.net.Send(node.drainOut()...)
			}
		}
	}
	rounds := c.round - start
	idList := c.IDs()
	for i := range batch {
		d := &out[i]
		d.Rounds = rounds
		d.Messages = msgs[i]
		for _, pid := range idList {
			node := c.nodes[pid]
			if !node.seen[ids[i]] {
				continue
			}
			d.Received = append(d.Received, pid)
			if node.filter.ContainsPoint(batch[i].Event) {
				d.TruePositives = append(d.TruePositives, pid)
			} else {
				d.FalsePositives = append(d.FalsePositives, pid)
			}
		}
	}
	return out, nil
}

// eventIDOf extracts the event ID a delivered message is accounted to:
// the ID of an event message, or of the event inside a dead-endpoint
// bounce. Non-event traffic returns 0, which is never a live event ID.
func eventIDOf(payload any) int64 {
	switch m := payload.(type) {
	case mEvent:
		return m.ID
	case simnet.Bounce:
		if e, ok := m.Original.(mEvent); ok {
			return e.ID
		}
	}
	return 0
}

// Stabilize runs the periodic checks until the configuration is legal
// and confirmed stable (RunUntilStable) under the configured or adaptive
// round budget, reporting the unified stabilization result.
func (c *Cluster) Stabilize() core.StabReport {
	rounds, ok := c.RunUntilStable(c.budget(c.cfg.StabilizeBudget))
	return core.StabReport{Rounds: rounds, Converged: ok}
}

// Corruption helpers for experiment E5 (the paper's transient fault
// model: parent, children, MBR, underloaded are all corruptible).

// CorruptParent overwrites the local parent variable of (id, h).
func (c *Cluster) CorruptParent(id core.ProcID, h int, parent core.ProcID) error {
	n := c.nodes[id]
	if n == nil || n.at(h) == nil {
		return fmt.Errorf("proto: no instance (%d,%d)", id, h)
	}
	n.at(h).parent = parent
	return nil
}

// CorruptChildren replaces the local children set of (id, h).
func (c *Cluster) CorruptChildren(id core.ProcID, h int, children []core.ProcID) error {
	n := c.nodes[id]
	if n == nil || n.at(h) == nil {
		return fmt.Errorf("proto: no instance (%d,%d)", id, h)
	}
	n.at(h).setChildren(children, nil)
	return nil
}

// CorruptMBR overwrites the local MBR of (id, h).
func (c *Cluster) CorruptMBR(id core.ProcID, h int, mbr geom.Rect) error {
	n := c.nodes[id]
	if n == nil || n.at(h) == nil {
		return fmt.Errorf("proto: no instance (%d,%d)", id, h)
	}
	n.at(h).mbr = mbr
	return nil
}

// CorruptUnderloaded flips the local underloaded flag of (id, h).
func (c *Cluster) CorruptUnderloaded(id core.ProcID, h int) error {
	n := c.nodes[id]
	if n == nil || n.at(h) == nil {
		return fmt.Errorf("proto: no instance (%d,%d)", id, h)
	}
	n.at(h).underloaded = !n.at(h).underloaded
	return nil
}
