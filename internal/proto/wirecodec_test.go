package proto

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/simnet"
	"drtree/internal/wire"
)

// protoPayloads returns at least one instance of every overlay message
// type, with adversarially chosen field values: negative process IDs,
// empty and multi-dimensional rectangles, infinities, zero and negative
// heights, nil and present optional members.
func protoPayloads() []any {
	r2 := geom.R2(-3, 1, 7.5, 2)
	r4 := geom.MustRect([]float64{0, -1, math.Inf(-1), 3}, []float64{1, 0, 4, math.Inf(1)})
	return []any{
		mJoin{Joiner: 12, MBR: r2, AtHeight: 0, Height: 3, Descend: true},
		mJoin{Joiner: -1, MBR: geom.Rect{}, AtHeight: -1, Height: 0},
		mAdd{Child: 9, MBR: r4, Height: 2},
		mWelcome{Height: 1, Parent: 88},
		mNewParent{Height: 0, Parent: -5},
		mPromote{
			Height:  2,
			Members: []member{{ID: 1, MBR: r2}, {ID: 2, MBR: geom.Rect{}}, {ID: 3, MBR: r4}},
			Parent:  7,
			Root:    true,
			Sibling: &member{ID: 4, MBR: r2},
		},
		mPromote{Height: 0, Parent: 0},
		mLeave{Height: 4, Child: 11},
		mRemoveChild{Height: 1, Child: 2},
		mDissolved{Height: 3},
		mBecomeRoot{Height: 0},
		mShrink{Height: 9},
		mParentQuery{Height: 2, Child: 6},
		mParentAck{Height: 2, IsChild: true},
		mChildQuery{Height: 5},
		mChildReport{Height: 1, MBR: r2, Underloaded: true, ParentIs: 3, Exists: true},
		mChildReport{Height: 0, MBR: geom.Rect{}, ParentIs: 0, Exists: false},
		mFilterUpdate{Filter: r4},
		mEvent{ID: 1 << 40, Ev: geom.Point{0.5, -2}, Height: 1, Up: true, From: 9},
		mEvent{ID: -3, Ev: nil, Height: 0, From: core.NoProc},
	}
}

// TestWireRoundTripEveryProtoMessage is the codec coverage proof the
// networking layer rests on: every message type the Node actor can send
// survives encode → decode bit-exactly, both bare and nested inside a
// bounce (the failure-detector notice a transport synthesizes for a
// dead peer).
func TestWireRoundTripEveryProtoMessage(t *testing.T) {
	for _, p := range protoPayloads() {
		msgs := []simnet.Message{
			{From: 3, To: 14, Payload: p},
			{From: 14, To: 3, Payload: simnet.Bounce{To: 14, Original: p}},
		}
		for _, m := range msgs {
			buf, err := wire.EncodeFrame(m)
			if err != nil {
				t.Fatalf("encode %T: %v", m.Payload, err)
			}
			got, n, err := wire.DecodeFrame(buf)
			if err != nil {
				t.Fatalf("decode %T: %v", m.Payload, err)
			}
			if n != len(buf) {
				t.Fatalf("%T: consumed %d of %d", m.Payload, n, len(buf))
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip %T:\n got %#v\nwant %#v", m.Payload, got, m)
			}
		}
	}
}

// TestWireRoundTripRandomized drives the codec with generated messages:
// random rectangles, points, member sets and IDs across every type.
func TestWireRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() geom.Rect {
		d := rng.Intn(4)
		if d == 0 {
			return geom.Rect{}
		}
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := range lo {
			lo[i] = rng.NormFloat64() * 100
			hi[i] = lo[i] + rng.Float64()*50
		}
		return geom.MustRect(lo, hi)
	}
	randPoint := func() geom.Point {
		d := rng.Intn(4)
		if d == 0 {
			return nil
		}
		p := make(geom.Point, d)
		for i := range p {
			p[i] = rng.NormFloat64() * 100
		}
		return p
	}
	randID := func() core.ProcID { return core.ProcID(rng.Intn(2000) - 10) }
	for i := 0; i < 2000; i++ {
		var p any
		switch rng.Intn(8) {
		case 0:
			p = mJoin{Joiner: randID(), MBR: randRect(), AtHeight: rng.Intn(8), Height: rng.Intn(8) - 1, Descend: rng.Intn(2) == 0}
		case 1:
			p = mAdd{Child: randID(), MBR: randRect(), Height: rng.Intn(8)}
		case 2:
			// The codec canonically decodes an empty member list as nil.
			var members []member
			if n := rng.Intn(5); n > 0 {
				members = make([]member, n)
				for j := range members {
					members[j] = member{ID: randID(), MBR: randRect()}
				}
			}
			var sib *member
			if rng.Intn(2) == 0 {
				sib = &member{ID: randID(), MBR: randRect()}
			}
			p = mPromote{Height: rng.Intn(8), Members: members, Parent: randID(), Root: rng.Intn(2) == 0, Sibling: sib}
		case 3:
			p = mChildReport{Height: rng.Intn(8), MBR: randRect(), Underloaded: rng.Intn(2) == 0, ParentIs: randID(), Exists: rng.Intn(2) == 0}
		case 4:
			p = mEvent{ID: rng.Int63() - rng.Int63(), Ev: randPoint(), Height: rng.Intn(8), Up: rng.Intn(2) == 0, From: randID()}
		case 5:
			p = mFilterUpdate{Filter: randRect()}
		case 6:
			p = mWelcome{Height: rng.Intn(8), Parent: randID()}
		default:
			p = mParentQuery{Height: rng.Intn(8), Child: randID()}
		}
		m := simnet.Message{From: simnet.NodeID(randID()), To: simnet.NodeID(randID()), Payload: p}
		buf, err := wire.EncodeFrame(m)
		if err != nil {
			t.Fatalf("encode %#v: %v", m, err)
		}
		got, _, err := wire.DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %#v: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, m)
		}
	}
}

// TestWireCoversEveryMessage pins the registered overlay-kind count to
// the message set in messages.go: adding a message type without a wire
// codec (or a codec without a message) fails here.
func TestWireCoversEveryMessage(t *testing.T) {
	var overlay int
	for _, k := range wire.RegisteredKinds() {
		if k >= wire.KindJoin && k <= wire.KindEvent {
			overlay++
		}
	}
	if overlay != 16 {
		t.Fatalf("registered %d overlay kinds, want 16 (one per message type in messages.go)", overlay)
	}
	for _, p := range protoPayloads() {
		if _, ok := wire.KindOf(p); !ok {
			t.Fatalf("%T has no registered wire kind", p)
		}
	}
}
