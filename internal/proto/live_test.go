package proto

import (
	"math/rand/v2"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/geom"
)

func TestLiveClusterValidation(t *testing.T) {
	if _, err := NewLiveCluster(Config{MinFanout: 0, MaxFanout: 4}); err == nil {
		t.Error("bad config must be rejected")
	}
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.Join(0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("id 0 must be rejected")
	}
	if err := lc.Join(1, geom.Rect{}); err == nil {
		t.Error("empty filter must be rejected")
	}
	if err := lc.Crash(9); err == nil {
		t.Error("unknown crash must error")
	}
}

func TestLiveClusterGrowsAndStabilizes(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(31, 31))
	for i := 1; i <= 20; i++ {
		x, y := rng.Float64()*400, rng.Float64()*400
		if err := lc.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lc.Len() != 20 {
		t.Fatalf("Len = %d", lc.Len())
	}
}

func TestLiveClusterRepairsCrash(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(32, 32))
	for i := 1; i <= 15; i++ {
		x, y := rng.Float64()*400, rng.Float64()*400
		if err := lc.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Crash the current root; the live actors must elect and repair.
	root := lc.Oracle()
	if err := lc.Crash(root); err != nil {
		t.Fatal(err)
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lc.Len() != 14 {
		t.Fatalf("Len = %d", lc.Len())
	}
	// Idempotent close.
	lc.Close()
	lc.Close()
	if err := lc.Join(99, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("join after close must error")
	}
}
