package proto

import (
	"math/rand/v2"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/geom"
)

func TestLiveClusterValidation(t *testing.T) {
	if _, err := NewLiveCluster(Config{MinFanout: 0, MaxFanout: 4}); err == nil {
		t.Error("bad config must be rejected")
	}
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.Join(0, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("id 0 must be rejected")
	}
	if err := lc.Join(1, geom.Rect{}); err == nil {
		t.Error("empty filter must be rejected")
	}
	if err := lc.Crash(9); err == nil {
		t.Error("unknown crash must error")
	}
}

func TestLiveClusterGrowsAndStabilizes(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(31, 31))
	for i := 1; i <= 20; i++ {
		x, y := rng.Float64()*400, rng.Float64()*400
		if err := lc.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lc.Len() != 20 {
		t.Fatalf("Len = %d", lc.Len())
	}
}

func TestLiveClusterRepairsCrash(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rng := rand.New(rand.NewPCG(32, 32))
	for i := 1; i <= 15; i++ {
		x, y := rng.Float64()*400, rng.Float64()*400
		if err := lc.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Crash the current root; the live actors must elect and repair.
	root := lc.Oracle()
	if err := lc.Crash(root); err != nil {
		t.Fatal(err)
	}
	if err := lc.AwaitLegal(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lc.Len() != 14 {
		t.Fatalf("Len = %d", lc.Len())
	}
	// Idempotent close.
	lc.Close()
	lc.Close()
	if err := lc.Join(99, geom.R2(0, 0, 1, 1)); err == nil {
		t.Error("join after close must error")
	}
}

// TestLiveEngineSurface exercises the Engine-interface additions of the
// live runtime: observers, controlled departure, JoinFrom, the four
// fault injectors, and Stabilize-driven repair.
func TestLiveEngineSurface(t *testing.T) {
	lc, err := NewLiveCluster(Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	var union geom.Rect
	for i := 1; i <= 6; i++ {
		f := geom.R2(float64(i*10), 0, float64(i*10)+15, 20)
		if err := lc.Join(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
		union = union.Union(f)
	}
	if err := lc.AwaitLegal(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := lc.ProcIDs(); len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Fatalf("ProcIDs = %v", got)
	}
	if f, ok := lc.Filter(3); !ok || !f.Equal(geom.R2(30, 0, 45, 20)) {
		t.Fatalf("Filter(3) = %v, %v", f, ok)
	}
	if _, ok := lc.Filter(99); ok {
		t.Fatal("Filter of unknown process must report !ok")
	}
	if root, h := lc.Root(); root == core.NoProc || h < 0 {
		t.Fatalf("Root = (%d, %d)", root, h)
	}
	if !lc.RootMBR().Equal(union) {
		t.Fatalf("RootMBR %v, want %v", lc.RootMBR(), union)
	}

	// JoinFrom routes through an explicit contact.
	if err := lc.JoinFrom(99, 7, geom.R2(0, 0, 5, 5)); err == nil {
		t.Fatal("JoinFrom with unknown contact must error")
	}
	if err := lc.JoinFrom(1, 7, geom.R2(0, 0, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := lc.Leave(2); err != nil {
		t.Fatal(err)
	}
	if st := lc.Stabilize(); !st.Converged {
		t.Fatalf("no convergence after join/leave: %v", lc.CheckLegal())
	}

	// The paper's four transient corruptions, then self-repair.
	if err := lc.CorruptParent(3, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := lc.CorruptMBR(4, 0, geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := lc.CorruptChildren(5, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := lc.CorruptUnderloaded(6, 0); err != nil {
		t.Fatal(err)
	}
	if err := lc.CorruptParent(99, 0, 1); err == nil {
		t.Fatal("corrupting a dead process must error")
	}
	if st := lc.Stabilize(); !st.Converged {
		t.Fatalf("no convergence after corruption: %v", lc.CheckLegal())
	}

	// Publish on the repaired overlay: zero false negatives.
	ev := geom.Point{35, 10}
	d, err := lc.Publish(3, ev)
	if err != nil {
		t.Fatal(err)
	}
	got := map[core.ProcID]bool{}
	for _, id := range d.Received {
		got[id] = true
	}
	for _, id := range lc.ProcIDs() {
		if f, _ := lc.Filter(id); f.ContainsPoint(ev) && !got[id] {
			t.Fatalf("matching subscriber %d missed event: %+v", id, d)
		}
	}
	if _, err := lc.Publish(99, ev); err == nil {
		t.Fatal("publish from unknown producer must error")
	}
}
