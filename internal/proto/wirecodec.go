package proto

import (
	"drtree/internal/core"
	"drtree/internal/wire"
)

// Wire codecs for the overlay maintenance protocol. The payload types
// are unexported, so their codecs must live here; the kind numbers live
// in internal/wire, which owns the frame format. Registration happens
// at init, gob.Register-style, which is what lets internal/transport
// move any proto message over TCP without this package knowing about
// sockets — the transport sees only simnet.Message values whose payload
// types are registered.
//
// Every message type handled by Node.process has a codec below;
// TestWireCoversEveryMessage pins the count so adding a message without
// a codec fails loudly.

// encMember / decMember encode the split-group member tuple reused by
// mPromote.
func encMember(w *wire.Writer, m member) {
	w.Varint(int64(m.ID))
	w.Rect(m.MBR)
}

func decMember(r *wire.Reader) member {
	return member{ID: core.ProcID(r.Varint()), MBR: r.Rect()}
}

func init() {
	wire.Register(wire.KindJoin, mJoin{},
		func(w *wire.Writer, p any) error {
			m := p.(mJoin)
			w.Varint(int64(m.Joiner))
			w.Rect(m.MBR)
			w.Varint(int64(m.AtHeight))
			w.Varint(int64(m.Height))
			w.Bool(m.Descend)
			return nil
		},
		func(r *wire.Reader) any {
			return mJoin{
				Joiner:   core.ProcID(r.Varint()),
				MBR:      r.Rect(),
				AtHeight: int(r.Varint()),
				Height:   int(r.Varint()),
				Descend:  r.Bool(),
			}
		})
	wire.Register(wire.KindAdd, mAdd{},
		func(w *wire.Writer, p any) error {
			m := p.(mAdd)
			w.Varint(int64(m.Child))
			w.Rect(m.MBR)
			w.Varint(int64(m.Height))
			return nil
		},
		func(r *wire.Reader) any {
			return mAdd{
				Child:  core.ProcID(r.Varint()),
				MBR:    r.Rect(),
				Height: int(r.Varint()),
			}
		})
	wire.Register(wire.KindWelcome, mWelcome{},
		func(w *wire.Writer, p any) error {
			m := p.(mWelcome)
			w.Varint(int64(m.Height))
			w.Varint(int64(m.Parent))
			return nil
		},
		func(r *wire.Reader) any {
			return mWelcome{Height: int(r.Varint()), Parent: core.ProcID(r.Varint())}
		})
	wire.Register(wire.KindNewParent, mNewParent{},
		func(w *wire.Writer, p any) error {
			m := p.(mNewParent)
			w.Varint(int64(m.Height))
			w.Varint(int64(m.Parent))
			return nil
		},
		func(r *wire.Reader) any {
			return mNewParent{Height: int(r.Varint()), Parent: core.ProcID(r.Varint())}
		})
	wire.Register(wire.KindPromote, mPromote{},
		func(w *wire.Writer, p any) error {
			m := p.(mPromote)
			w.Varint(int64(m.Height))
			w.Uvarint(uint64(len(m.Members)))
			for _, mb := range m.Members {
				encMember(w, mb)
			}
			w.Varint(int64(m.Parent))
			w.Bool(m.Root)
			w.Bool(m.Sibling != nil)
			if m.Sibling != nil {
				encMember(w, *m.Sibling)
			}
			return nil
		},
		func(r *wire.Reader) any {
			m := mPromote{Height: int(r.Varint())}
			n := r.Uvarint()
			// A member costs at least two bytes (id varint + empty MBR).
			if n > uint64(r.Remaining())/2 {
				r.Fail(wire.ErrTruncated)
				return m
			}
			if n > 0 {
				m.Members = make([]member, n)
				for i := range m.Members {
					m.Members[i] = decMember(r)
				}
			}
			m.Parent = core.ProcID(r.Varint())
			m.Root = r.Bool()
			if r.Bool() {
				s := decMember(r)
				if r.Err() == nil {
					m.Sibling = &s
				}
			}
			return m
		})
	wire.Register(wire.KindLeave, mLeave{},
		func(w *wire.Writer, p any) error {
			m := p.(mLeave)
			w.Varint(int64(m.Height))
			w.Varint(int64(m.Child))
			return nil
		},
		func(r *wire.Reader) any {
			return mLeave{Height: int(r.Varint()), Child: core.ProcID(r.Varint())}
		})
	wire.Register(wire.KindRemoveChild, mRemoveChild{},
		func(w *wire.Writer, p any) error {
			m := p.(mRemoveChild)
			w.Varint(int64(m.Height))
			w.Varint(int64(m.Child))
			return nil
		},
		func(r *wire.Reader) any {
			return mRemoveChild{Height: int(r.Varint()), Child: core.ProcID(r.Varint())}
		})
	wire.Register(wire.KindDissolved, mDissolved{},
		func(w *wire.Writer, p any) error { w.Varint(int64(p.(mDissolved).Height)); return nil },
		func(r *wire.Reader) any { return mDissolved{Height: int(r.Varint())} })
	wire.Register(wire.KindBecomeRoot, mBecomeRoot{},
		func(w *wire.Writer, p any) error { w.Varint(int64(p.(mBecomeRoot).Height)); return nil },
		func(r *wire.Reader) any { return mBecomeRoot{Height: int(r.Varint())} })
	wire.Register(wire.KindShrink, mShrink{},
		func(w *wire.Writer, p any) error { w.Varint(int64(p.(mShrink).Height)); return nil },
		func(r *wire.Reader) any { return mShrink{Height: int(r.Varint())} })
	wire.Register(wire.KindParentQuery, mParentQuery{},
		func(w *wire.Writer, p any) error {
			m := p.(mParentQuery)
			w.Varint(int64(m.Height))
			w.Varint(int64(m.Child))
			return nil
		},
		func(r *wire.Reader) any {
			return mParentQuery{Height: int(r.Varint()), Child: core.ProcID(r.Varint())}
		})
	wire.Register(wire.KindParentAck, mParentAck{},
		func(w *wire.Writer, p any) error {
			m := p.(mParentAck)
			w.Varint(int64(m.Height))
			w.Bool(m.IsChild)
			return nil
		},
		func(r *wire.Reader) any {
			return mParentAck{Height: int(r.Varint()), IsChild: r.Bool()}
		})
	wire.Register(wire.KindChildQuery, mChildQuery{},
		func(w *wire.Writer, p any) error { w.Varint(int64(p.(mChildQuery).Height)); return nil },
		func(r *wire.Reader) any { return mChildQuery{Height: int(r.Varint())} })
	wire.Register(wire.KindChildReport, mChildReport{},
		func(w *wire.Writer, p any) error {
			m := p.(mChildReport)
			w.Varint(int64(m.Height))
			w.Rect(m.MBR)
			w.Bool(m.Underloaded)
			w.Varint(int64(m.ParentIs))
			w.Bool(m.Exists)
			return nil
		},
		func(r *wire.Reader) any {
			return mChildReport{
				Height:      int(r.Varint()),
				MBR:         r.Rect(),
				Underloaded: r.Bool(),
				ParentIs:    core.ProcID(r.Varint()),
				Exists:      r.Bool(),
			}
		})
	wire.Register(wire.KindFilterUpdate, mFilterUpdate{},
		func(w *wire.Writer, p any) error { w.Rect(p.(mFilterUpdate).Filter); return nil },
		func(r *wire.Reader) any { return mFilterUpdate{Filter: r.Rect()} })
	wire.Register(wire.KindEvent, mEvent{},
		func(w *wire.Writer, p any) error {
			m := p.(mEvent)
			w.Varint(m.ID)
			w.Point(m.Ev)
			w.Varint(int64(m.Height))
			w.Bool(m.Up)
			w.Varint(int64(m.From))
			return nil
		},
		func(r *wire.Reader) any {
			return mEvent{
				ID:     r.Varint(),
				Ev:     r.Point(),
				Height: int(r.Varint()),
				Up:     r.Bool(),
				From:   core.ProcID(r.Varint()),
			}
		})
}
