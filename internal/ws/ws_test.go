package ws

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer upgrades every request and echoes data messages back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			op, p, err := c.ReadMessage()
			if err != nil {
				return
			}
			if err := c.WriteMessage(op, p); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func dial(t *testing.T, srv *httptest.Server) *Conn {
	t.Helper()
	c, err := Dial(wsURL(srv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEchoRoundTrip(t *testing.T) {
	srv := echoServer(t)
	c := dial(t, srv)

	// Three sizes cross the three length encodings: 7-bit, 16-bit
	// extended, 64-bit extended.
	for _, n := range []int{5, 300, 70_000} {
		msg := bytes.Repeat([]byte{byte(n)}, n)
		op := byte(OpText)
		if n > 5 {
			op = OpBinary
		}
		if err := c.WriteMessage(op, msg); err != nil {
			t.Fatal(err)
		}
		gotOp, got, err := c.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if gotOp != op || !bytes.Equal(got, msg) {
			t.Fatalf("size %d: echoed op=%d len=%d, want op=%d len=%d", n, gotOp, len(got), op, n)
		}
	}
}

func TestPingIsPonged(t *testing.T) {
	srv := echoServer(t)
	c := dial(t, srv)

	if err := c.WriteMessage(OpPing, []byte("hb")); err != nil {
		t.Fatal(err)
	}
	// White-box: read the raw frame so the auto-pong is observable.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, fin, p, err := c.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpPong || !fin || string(p) != "hb" {
		t.Fatalf("got frame op=%d fin=%v payload=%q, want a pong echoing the ping payload", op, fin, p)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		if _, _, err := c.ReadMessage(); !errors.Is(err, ErrClosed) {
			t.Errorf("server read after client close: err = %v, want ErrClosed", err)
		}
	}))
	t.Cleanup(srv.Close)

	c, err := Dial(wsURL(srv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestFragmentedMessageAssembles(t *testing.T) {
	srv := echoServer(t)
	c := dial(t, srv)

	// Hand-build text fragments: "hel" (FIN=0) + "lo" (continuation,
	// FIN=1), masked as a client must.
	writeRaw := func(fin bool, op byte, p []byte) {
		t.Helper()
		hdr := []byte{op, 0x80 | byte(len(p)), 1, 2, 3, 4}
		if fin {
			hdr[0] |= 0x80
		}
		masked := make([]byte, len(p))
		for i := range p {
			masked[i] = p[i] ^ hdr[2+i%4]
		}
		if _, err := c.c.Write(append(hdr, masked...)); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw(false, OpText, []byte("hel"))
	writeRaw(true, OpContinuation, []byte("lo"))

	op, p, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(p) != "hello" {
		t.Fatalf("echoed op=%d %q, want the assembled text", op, p)
	}
}

// rawHandshake performs the HTTP upgrade by hand, for protocol-error
// tests that need byte-level control of what goes on the wire.
func rawHandshake(t *testing.T, srv *httptest.Server) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	req := "GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: AAAAAAAAAAAAAAAAAAAAAA==\r\nSec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(nc, req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(nc), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("handshake: %s", resp.Status)
	}
	return nc
}

func TestServerRejectsUnmaskedClientFrame(t *testing.T) {
	done := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		_, _, err = c.ReadMessage()
		done <- err
	}))
	t.Cleanup(srv.Close)

	nc := rawHandshake(t, srv)
	// FIN text frame, MASK bit clear: a protocol error from a client.
	if _, err := nc.Write([]byte{0x81, 0x02, 'h', 'i'}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "unmasked") {
			t.Fatalf("server read err = %v, want unmasked-frame rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never rejected the unmasked frame")
	}
}

func TestServerRejectsOversizeFrame(t *testing.T) {
	done := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		_, _, err = c.ReadMessage()
		done <- err
	}))
	t.Cleanup(srv.Close)

	nc := rawHandshake(t, srv)
	// Masked binary frame whose 64-bit length claims 1 GiB: must be
	// refused on the header alone, no allocation, no read of the body.
	hdr := []byte{0x82, 0x80 | 127, 0, 0, 0, 0, 0x40, 0, 0, 0, 1, 2, 3, 4}
	if _, err := nc.Write(hdr); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
			t.Fatalf("server read err = %v, want frame-cap rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never rejected the oversize frame")
	}
}

func TestHandshakeRejectsPlainGET(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Accept(w, r); err == nil {
			t.Error("plain GET must not upgrade")
		}
	}))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestSlowReaderHitsWriteDeadline is the WebSocket half of the slow-
// subscriber story: a client that stops reading fills the socket
// buffers, the server's next write expires its deadline, and only that
// connection dies — a second client keeps echoing throughout.
func TestSlowReaderHitsWriteDeadline(t *testing.T) {
	srv := echoServer(t)

	failed := make(chan error, 1)
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		if tc, ok := c.c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(4 << 10)
		}
		c.SetWriteTimeout(150 * time.Millisecond)
		payload := make([]byte, 64<<10)
		for {
			if err := c.WriteMessage(OpBinary, payload); err != nil {
				failed <- err
				return
			}
		}
	}))
	t.Cleanup(blocked.Close)

	slow, err := Dial(wsURL(blocked), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })
	if tc, ok := slow.c.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	// The slow client never reads. While the server is jamming against
	// it, an independent connection stays live.
	c2 := dial(t, srv)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c2.WriteText([]byte("still alive")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c2.ReadMessage(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-failed:
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				t.Fatalf("slow writer failed with %v, want a deadline timeout", err)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server writer never hit its deadline against the non-reading client")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
