// Package ws is a minimal RFC 6455 WebSocket implementation — just the
// subset the drtreed subscriber front end needs: the server-side
// upgrade handshake over net/http's Hijacker, a client dialer for tests
// and tools, single- and multi-frame text/binary messages, and the
// control frames (close, ping/pong). No extensions, no compression, no
// subprotocols. The standard library has no WebSocket package and the
// repo takes no external dependencies, so the daemon carries its own.
//
// Concurrency contract: one goroutine owns the read side (ReadMessage),
// writes are serialized under an internal mutex with an optional
// per-frame deadline — the same discipline as transport.Conn, so a slow
// or dead peer fails its own connection without stalling others.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Opcodes of the frames this package speaks (RFC 6455 §5.2).
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xA
)

// MaxPayload caps one message's assembled payload, mirroring
// wire.MaxFrame: a length prefix must never make the reader allocate
// unbounded memory.
const MaxPayload = 1 << 20

// ErrClosed reports an orderly close: the peer sent a close frame (the
// echo has already been written best-effort).
var ErrClosed = errors.New("ws: connection closed by peer")

// magic is the fixed GUID of the accept-key computation (RFC 6455 §4.1).
const magic = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// AcceptKey computes the Sec-WebSocket-Accept value for a client key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + magic))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Conn is one WebSocket connection after the handshake.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	// client marks the dialing side: it masks outbound frames and
	// requires unmasked inbound ones; the server side is the inverse.
	client bool

	wmu          sync.Mutex
	writeTimeout time.Duration
	closeSent    bool

	rbuf []byte // frame scratch, reused across reads
}

// Accept upgrades an HTTP request to a WebSocket connection (server
// side). On error the handshake failure has already been written to w.
func Accept(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	fail := func(code int, format string, args ...any) (*Conn, error) {
		err := fmt.Errorf("ws: "+format, args...)
		http.Error(w, err.Error(), code)
		return nil, err
	}
	if r.Method != http.MethodGet {
		return fail(http.StatusMethodNotAllowed, "handshake requires GET, got %s", r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") || !headerHasToken(r.Header, "Upgrade", "websocket") {
		return fail(http.StatusBadRequest, "not a websocket upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return fail(http.StatusBadRequest, "unsupported websocket version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return fail(http.StatusBadRequest, "missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return fail(http.StatusInternalServerError, "response writer cannot hijack")
	}
	nc, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake response: %w", err)
	}
	if err := brw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake flush: %w", err)
	}
	return &Conn{c: nc, br: brw.Reader}, nil
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive), as the Connection header requires.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a client connection to a ws:// URL.
func Dial(rawURL string, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("ws: unsupported scheme %q (only ws)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", host, err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(nonce)
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := io.WriteString(nc, req); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake request: %w", err)
	}
	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake refused: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != AcceptKey(key) {
		nc.Close()
		return nil, fmt.Errorf("ws: bad accept key %q", got)
	}
	nc.SetDeadline(time.Time{})
	return &Conn{c: nc, br: br, client: true}, nil
}

// SetWriteTimeout bounds every subsequent frame write; zero disables.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.writeTimeout = d
	c.wmu.Unlock()
}

// SetReadDeadline bounds the next read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// ReadMessage blocks for the next text or binary message, assembling
// continuation frames and answering control frames internally (ping is
// ponged, pong ignored). A peer close returns ErrClosed after echoing
// the close frame. Not safe for concurrent use; one goroutine owns the
// read side.
func (c *Conn) ReadMessage() (op byte, payload []byte, err error) {
	var msg []byte
	msgOp := byte(0)
	for {
		fop, fin, p, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch fop {
		case OpPing:
			c.writeFrame(OpPong, p) // best-effort; the read side reports errors
			continue
		case OpPong:
			continue
		case OpClose:
			c.writeClose()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if msgOp != 0 {
				return 0, nil, fmt.Errorf("ws: new data frame inside a fragmented message")
			}
			if fin {
				return fop, p, nil
			}
			msgOp = fop
			msg = append(msg, p...)
		case OpContinuation:
			if msgOp == 0 {
				return 0, nil, fmt.Errorf("ws: continuation frame outside a fragmented message")
			}
			if len(msg)+len(p) > MaxPayload {
				return 0, nil, fmt.Errorf("ws: fragmented message exceeds %d bytes", MaxPayload)
			}
			msg = append(msg, p...)
			if fin {
				return msgOp, msg, nil
			}
		default:
			return 0, nil, fmt.Errorf("ws: unknown opcode %#x", fop)
		}
	}
}

// readFrame reads one raw frame, unmasking as needed.
func (c *Conn) readFrame() (op byte, fin bool, payload []byte, err error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	if hdr[0]&0x70 != 0 {
		return 0, false, nil, fmt.Errorf("ws: nonzero RSV bits (no extensions negotiated)")
	}
	fin = hdr[0]&0x80 != 0
	op = hdr[0] & 0x0f
	masked := hdr[1]&0x80 != 0
	// The server requires masked client frames; the client requires
	// unmasked server frames (RFC 6455 §5.1 — both are protocol errors).
	if c.client == masked {
		if c.client {
			return 0, false, nil, fmt.Errorf("ws: server sent a masked frame")
		}
		return 0, false, nil, fmt.Errorf("ws: client sent an unmasked frame")
	}
	n := uint64(hdr[1] & 0x7f)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if op >= OpClose { // control frames: FIN, <= 125 bytes (§5.5)
		if !fin || n > 125 {
			return 0, false, nil, fmt.Errorf("ws: malformed control frame (fin=%v len=%d)", fin, n)
		}
	}
	if n > MaxPayload {
		return 0, false, nil, fmt.Errorf("ws: frame of %d bytes exceeds cap %d", n, MaxPayload)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return 0, false, nil, err
		}
	}
	if uint64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	payload = c.rbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, false, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	// Control frames can interleave with a fragmented message while the
	// caller still holds the assembled prefix; hand out a copy so the
	// scratch buffer can be reused for the next frame.
	out := make([]byte, n)
	copy(out, payload)
	return op, fin, out, nil
}

// WriteText sends one text message.
func (c *Conn) WriteText(p []byte) error { return c.WriteMessage(OpText, p) }

// WriteMessage sends one unfragmented message (or control frame). Safe
// for concurrent use; each call writes under the configured deadline.
func (c *Conn) WriteMessage(op byte, p []byte) error {
	if len(p) > MaxPayload {
		return fmt.Errorf("ws: message of %d bytes exceeds cap %d", len(p), MaxPayload)
	}
	return c.writeFrame(op, p)
}

func (c *Conn) writeFrame(op byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeFrameLocked(op, p)
}

func (c *Conn) writeFrameLocked(op byte, p []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | op
	i := 2
	switch {
	case len(p) <= 125:
		hdr[1] = byte(len(p))
	case len(p) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(p)))
		i = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(p)))
		i = 10
	}
	buf := make([]byte, 0, i+4+len(p))
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return fmt.Errorf("ws: mask: %w", err)
		}
		buf = append(buf, hdr[:i]...)
		buf = append(buf, mask[:]...)
		off := len(buf)
		buf = append(buf, p...)
		for j := range p {
			buf[off+j] ^= mask[j%4]
		}
	} else {
		buf = append(buf, hdr[:i]...)
		buf = append(buf, p...)
	}
	if c.writeTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	_, err := c.c.Write(buf)
	return err
}

// writeClose sends the close frame once (idempotent, best-effort).
func (c *Conn) writeClose() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closeSent {
		return
	}
	c.closeSent = true
	// 1000: normal closure.
	c.writeFrameLocked(OpClose, []byte{0x03, 0xe8})
}

// Close performs a best-effort closing handshake (close frame, then the
// TCP close). Safe to call from any goroutine, including to unblock a
// reader.
func (c *Conn) Close() error {
	c.writeClose()
	return c.c.Close()
}
