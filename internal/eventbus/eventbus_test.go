package eventbus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config[int]{Capacity: 0}); err == nil {
		t.Error("zero capacity must be rejected")
	}
	if _, err := New(Config[int]{Capacity: 4, Policy: CoalesceByFilter}); err == nil {
		t.Error("CoalesceByFilter without KeyOf must be rejected")
	}
	if _, err := New(Config[int]{Capacity: 4, Policy: Policy(99)}); err == nil {
		t.Error("unknown policy must be rejected")
	}
	if _, err := New(Config[int]{Capacity: 4, MaxRedeliver: -1}); err == nil {
		t.Error("negative MaxRedeliver must be rejected")
	}
	for _, p := range []Policy{DropOldest, CoalesceByFilter, Block, Policy(42)} {
		if p.String() == "" {
			t.Errorf("empty String for policy %d", int(p))
		}
	}
}

// TestDropOldestKeepsNewest: overflowing a DropOldest ring sheds from
// the front, so the consumer sees the newest messages in order.
func TestDropOldestKeepsNewest(t *testing.T) {
	q, err := New(Config[int]{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.Enqueued != 6 || st.Dropped != 2 || st.Depth != 4 || st.HighWater != 4 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	var mu sync.Mutex
	var got []int
	q.Run(func(v, attempt int) error {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
		if attempt != 1 {
			t.Errorf("attempt = %d in at-most-once mode", attempt)
		}
		return nil
	})
	waitFor(t, "4 deliveries", func() bool { return q.Stats().Delivered == 4 })
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(got) != "[3 4 5 6]" {
		t.Fatalf("delivered %v, want the newest four in order", got)
	}
}

// TestBlockPolicyBackpressure: a full Block queue makes Enqueue wait
// until the consumer frees a slot, and Close releases waiters.
func TestBlockPolicyBackpressure(t *testing.T) {
	q, err := New(Config[int]{Capacity: 2, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var delivered atomic.Int64
	q.Run(func(v, attempt int) error {
		<-release
		delivered.Add(1)
		return nil
	})
	// Fill the ring plus the in-flight handoff.
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "ring full", func() bool { return q.Stats().Depth == 2 })
	unblocked := make(chan error, 1)
	go func() { unblocked <- q.Enqueue(99) }()
	select {
	case <-unblocked:
		t.Fatal("Enqueue returned while the ring was full under Block")
	case <-time.After(50 * time.Millisecond):
	}
	release <- struct{}{} // consumer frees a slot
	if err := <-unblocked; err != nil {
		t.Fatalf("unblocked Enqueue: %v", err)
	}
	if st := q.Stats(); st.Blocked == 0 {
		t.Fatalf("no blocked enqueue recorded: %+v", st)
	}
	// A waiter present at Close gets ErrClosed instead of hanging.
	go func() { unblocked <- q.Enqueue(100) }()
	waitFor(t, "second waiter", func() bool { return q.Stats().Blocked >= 2 })
	q.Close()
	if err := <-unblocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	close(release)
}

// TestCoalesceSameKey: all-same-key overflow conflates to the newest
// messages and counts Coalesced, not Dropped.
func TestCoalesceSameKey(t *testing.T) {
	q, err := New(Config[int]{
		Capacity: 2,
		Policy:   CoalesceByFilter,
		KeyOf:    func(int) string { return "k" },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.Coalesced != 3 || st.Dropped != 0 || st.Depth != 2 {
		t.Fatalf("stats: %+v, want 3 coalesced, 0 dropped, depth 2", st)
	}
	var got []int
	doneCollect := make(chan struct{})
	q.Run(func(v, attempt int) error {
		got = append(got, v)
		if len(got) == 2 {
			close(doneCollect)
		}
		return nil
	})
	<-doneCollect
	if fmt.Sprint(got) != "[4 5]" {
		t.Fatalf("delivered %v, want the newest two", got)
	}
}

// TestCoalesceFallsBackToDropOldest: with no same-key message pending,
// CoalesceByFilter sheds the oldest message of any key.
func TestCoalesceFallsBackToDropOldest(t *testing.T) {
	q, err := New(Config[string]{
		Capacity: 2,
		Policy:   CoalesceByFilter,
		KeyOf:    func(s string) string { return s[:1] },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a1", "b1", "a2"} {
		if err := q.Enqueue(s); err != nil {
			t.Fatal(err)
		}
	}
	if st := q.Stats(); st.Coalesced != 1 || st.Dropped != 0 {
		t.Fatalf("same-key overflow: %+v", st)
	}
	if err := q.Enqueue("c1"); err != nil { // no "c" pending: falls back
		t.Fatal(err)
	}
	if st := q.Stats(); st.Coalesced != 1 || st.Dropped != 1 || st.Depth != 2 {
		t.Fatalf("fallback overflow: %+v", st)
	}
}

// TestAtLeastOnceRedelivery: a failing delivery is retried with an
// incremented attempt counter until the consumer acknowledges.
func TestAtLeastOnceRedelivery(t *testing.T) {
	q, err := New(Config[string]{Capacity: 4, AtLeastOnce: true, MaxRedeliver: 5})
	if err != nil {
		t.Fatal(err)
	}
	var attempts []int
	acked := make(chan struct{})
	q.Run(func(v string, attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 3 {
			return errors.New("nack")
		}
		close(acked)
		return nil
	})
	if err := q.Enqueue("m"); err != nil {
		t.Fatal(err)
	}
	<-acked
	waitFor(t, "ack accounted", func() bool { return q.Stats().Delivered == 1 })
	if fmt.Sprint(attempts) != "[1 2 3]" {
		t.Fatalf("attempts %v, want [1 2 3]", attempts)
	}
	st := q.Stats()
	if st.Redelivered != 2 || st.Failed != 2 || st.Dropped != 0 {
		t.Fatalf("stats: %+v, want 2 redeliveries, 2 failures, 0 drops", st)
	}
}

// TestAtLeastOnceExhaustion: after 1+MaxRedeliver failed attempts the
// message is dropped and the queue moves on.
func TestAtLeastOnceExhaustion(t *testing.T) {
	q, err := New(Config[string]{Capacity: 4, AtLeastOnce: true, MaxRedeliver: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string][]int{}
	q.Run(func(v string, attempt int) error {
		mu.Lock()
		seen[v] = append(seen[v], attempt)
		mu.Unlock()
		if v == "bad" {
			return errors.New("nack")
		}
		return nil
	})
	if err := q.Enqueue("bad"); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("good"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "good delivered", func() bool { return q.Stats().Delivered == 1 })
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(seen["bad"]) != "[1 2]" {
		t.Fatalf("bad attempts %v, want [1 2] (1 + MaxRedeliver)", seen["bad"])
	}
	st := q.Stats()
	if st.Dropped != 1 || st.Redelivered != 1 || st.Failed != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAtLeastOnceInflightNotEvicted: the in-flight slot of a capacity-1
// queue is never evicted; the incoming message is shed instead.
func TestAtLeastOnceInflightNotEvicted(t *testing.T) {
	q, err := New(Config[int]{Capacity: 1, AtLeastOnce: true})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	q.Run(func(v, attempt int) error {
		close(entered)
		<-release
		return nil
	})
	if err := q.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := q.Enqueue(2); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Dropped != 1 || st.Depth != 1 {
		t.Fatalf("stats with in-flight head: %+v", st)
	}
	close(release)
	waitFor(t, "in-flight ack", func() bool { return q.Stats().Delivered == 1 })
}

// TestErrClosedFromCallback: a callback returning ErrClosed (a consumer
// torn down mid-delivery) is not redelivered.
func TestErrClosedFromCallback(t *testing.T) {
	q, err := New(Config[int]{Capacity: 4, AtLeastOnce: true, MaxRedeliver: 10})
	if err != nil {
		t.Fatal(err)
	}
	q.Run(func(v, attempt int) error { return ErrClosed })
	if err := q.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drop", func() bool { return q.Stats().Dropped == 1 })
	if st := q.Stats(); st.Redelivered != 0 {
		t.Fatalf("ErrClosed must not redeliver: %+v", st)
	}
}

// TestCloseShedsBacklogAndStopsEnqueue covers close-before-Run,
// idempotent Close, and Enqueue-after-Close.
func TestCloseShedsBacklogAndStopsEnqueue(t *testing.T) {
	q, err := New(Config[int]{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	q.Close()
	select {
	case <-q.Done():
	default:
		t.Fatal("Done must be closed immediately when Run never started")
	}
	if err := q.Enqueue(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	if st := q.Stats(); st.Dropped != 3 || st.Depth != 0 {
		t.Fatalf("backlog not shed at close: %+v", st)
	}
	q.Run(func(v, attempt int) error { return nil }) // no-op on closed queue
}

// TestCloseReleasesDrainer: a running drainer exits promptly at Close
// and sheds whatever is still queued.
func TestCloseReleasesDrainer(t *testing.T) {
	q, err := New(Config[int]{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	q.Run(func(v, attempt int) error { return nil })
	q.Close()
	select {
	case <-q.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drainer did not exit after Close")
	}
}

// TestConcurrentProducers hammers one queue from many producers under
// the race detector: every message is either delivered or accounted as
// dropped, never lost silently.
func TestConcurrentProducers(t *testing.T) {
	q, err := New(Config[int]{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	q.Run(func(v, attempt int) error {
		delivered.Add(1)
		return nil
	})
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	const total = uint64(producers * perProducer)
	// Dropped is final once the producers are done; Delivered settles
	// when the drainer finishes the backlog.
	waitFor(t, "quiesce", func() bool {
		st := q.Stats()
		return st.Delivered+st.Dropped == total
	})
	st := q.Stats()
	if st.Enqueued != total || uint64(delivered.Load()) != st.Delivered {
		t.Fatalf("accounting broken: delivered=%d stats=%+v total=%d", delivered.Load(), st, total)
	}
	q.Close()
}
