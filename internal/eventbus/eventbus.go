// Package eventbus gives each subscriber of a broker its own bounded
// delivery queue, drained by a dedicated goroutine, so a slow or dead
// consumer can never stall producers or its sibling consumers.
//
// A Queue is a fixed-capacity ring buffer with a pluggable overflow
// Policy applied at enqueue time:
//
//   - DropOldest (the default): the oldest pending message is discarded
//     to make room — Enqueue never blocks.
//   - CoalesceByFilter: the oldest pending message with the same
//     coalescing key (Config.KeyOf) as the incoming one is replaced by
//     it — under pressure a single-filter subscriber degrades to
//     "newest events win", again without blocking.
//   - Block: Enqueue waits for space — opt-in lossless backpressure
//     that intentionally slows the producer down instead of shedding.
//
// Messages are handed to the consumer callback on the queue's own
// drainer goroutine (Run). In the default at-most-once mode a message
// is done the moment it is handed over; with Config.AtLeastOnce the
// ring slot stays occupied until the callback acknowledges by returning
// nil, and a failed delivery is retried up to Config.MaxRedeliver times
// before the message is counted as dropped.
//
// A callback that never returns pins its drainer goroutine (goroutines
// cannot be killed), but it cannot block anyone else: Close stops the
// queue immediately, Enqueue keeps returning without waiting (except
// under Block), and the drainer exits as soon as the callback returns.
package eventbus

import (
	"errors"
	"fmt"
	"sync"
)

// Policy selects what Enqueue does when the ring is full.
type Policy int

const (
	// DropOldest discards the oldest pending message to make room.
	DropOldest Policy = iota
	// CoalesceByFilter replaces the oldest pending message carrying the
	// same coalescing key as the incoming one (falling back to
	// DropOldest when no key matches). Requires Config.KeyOf.
	CoalesceByFilter
	// Block makes Enqueue wait until the consumer frees a slot (or the
	// queue closes). The only policy under which a producer can be
	// slowed by a consumer — strictly opt-in.
	Block
)

// String names the policy for stats and error messages.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case CoalesceByFilter:
		return "coalesce-by-filter"
	case Block:
		return "block"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ErrClosed is returned by Enqueue after Close, and may be returned by
// a delivery callback to tell the drainer the consumer is gone.
var ErrClosed = errors.New("eventbus: queue closed")

// Config configures a Queue.
type Config[T any] struct {
	// Capacity is the ring size (required, >= 1).
	Capacity int
	// Policy is the overflow policy (default DropOldest).
	Policy Policy
	// KeyOf derives the coalescing key of a message. Required for
	// CoalesceByFilter, ignored otherwise.
	KeyOf func(T) string
	// AtLeastOnce keeps a message's ring slot occupied until the
	// delivery callback returns nil; a non-nil return triggers
	// redelivery. Off, a message is consumed when handed over.
	AtLeastOnce bool
	// MaxRedeliver bounds the redeliveries after the first failed
	// attempt (AtLeastOnce only): a message is dropped after
	// 1+MaxRedeliver failed attempts.
	MaxRedeliver int
}

// Stats is a point-in-time snapshot of a queue's counters.
type Stats struct {
	// Capacity is the fixed ring size.
	Capacity int
	// Depth is the number of messages currently held (including one
	// in-flight message in at-least-once mode).
	Depth int
	// HighWater is the maximum Depth ever observed.
	HighWater int
	// Enqueued counts messages accepted into the ring.
	Enqueued uint64
	// Delivered counts messages successfully handed to the consumer
	// (acknowledged, in at-least-once mode).
	Delivered uint64
	// Dropped counts messages lost: overflow evictions, redelivery
	// exhaustion, and backlog discarded at Close.
	Dropped uint64
	// Coalesced counts overflow evictions that replaced a same-key
	// message under CoalesceByFilter (not included in Dropped).
	Coalesced uint64
	// Redelivered counts delivery retries (at-least-once mode).
	Redelivered uint64
	// Failed counts delivery attempts whose callback returned an error.
	Failed uint64
	// Blocked counts Enqueue calls that had to wait (Block policy).
	Blocked uint64
}

// slot is one ring entry.
type slot[T any] struct {
	v        T
	attempts int // delivery attempts performed so far
}

// Queue is a bounded single-consumer delivery queue. Enqueue is safe
// for concurrent use; Run may be called at most once.
type Queue[T any] struct {
	cfg Config[T]

	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []slot[T]
	head, n  int
	inflight bool // head slot handed to the callback (AtLeastOnce)
	closed   bool
	running  bool
	st       Stats

	stop chan struct{} // closed by Close: releases blocked callbacks
	done chan struct{} // closed when the drainer has exited
}

// New builds a queue. The drainer is not started until Run.
func New[T any](cfg Config[T]) (*Queue[T], error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("eventbus: capacity must be >= 1, got %d", cfg.Capacity)
	}
	switch cfg.Policy {
	case DropOldest, Block:
	case CoalesceByFilter:
		if cfg.KeyOf == nil {
			return nil, fmt.Errorf("eventbus: CoalesceByFilter requires a KeyOf function")
		}
	default:
		return nil, fmt.Errorf("eventbus: unknown overflow policy %v", cfg.Policy)
	}
	if cfg.MaxRedeliver < 0 {
		return nil, fmt.Errorf("eventbus: MaxRedeliver must be >= 0, got %d", cfg.MaxRedeliver)
	}
	q := &Queue[T]{
		cfg:  cfg,
		buf:  make([]slot[T], cfg.Capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	q.st.Capacity = cfg.Capacity
	return q, nil
}

// Stopping is closed when Close is called. Delivery callbacks that can
// block indefinitely (e.g. a channel send to an absent consumer) should
// select on it and return ErrClosed so the drainer can exit.
func (q *Queue[T]) Stopping() <-chan struct{} { return q.stop }

// Done is closed once the drainer goroutine has exited (immediately at
// Close when Run was never called). A callback that never returns keeps
// Done open until it does.
func (q *Queue[T]) Done() <-chan struct{} { return q.done }

// Stats returns a snapshot of the queue's counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.st
	st.Depth = q.n
	return st
}

// Enqueue offers a message to the queue, applying the overflow policy
// when the ring is full. It never waits on the consumer except under
// the Block policy, and returns ErrClosed after Close. A message shed
// by DropOldest/CoalesceByFilter is accounted in Stats, never an error:
// shedding is the policy working as configured.
func (q *Queue[T]) Enqueue(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n == len(q.buf) {
		switch q.cfg.Policy {
		case Block:
			q.st.Blocked++
			for q.n == len(q.buf) && !q.closed {
				q.notFull.Wait()
			}
			if q.closed {
				return ErrClosed
			}
		case CoalesceByFilter:
			key := q.cfg.KeyOf(v)
			if q.evictOldest(&key) {
				q.st.Coalesced++
				break
			}
			fallthrough
		default: // DropOldest
			q.st.Dropped++
			if !q.evictOldest(nil) {
				// Every slot is in flight (capacity-1 queue mid-delivery):
				// the incoming message is the one shed.
				return nil
			}
		}
	}
	q.buf[(q.head+q.n)%len(q.buf)] = slot[T]{v: v}
	q.n++
	q.st.Enqueued++
	if q.n > q.st.HighWater {
		q.st.HighWater = q.n
	}
	q.notEmpty.Signal()
	return nil
}

// evictOldest removes the oldest pending message — restricted to those
// carrying the given coalescing key when key is non-nil — skipping an
// in-flight head slot. It reports whether a message was evicted. The
// caller holds q.mu.
func (q *Queue[T]) evictOldest(key *string) bool {
	start := 0
	if q.inflight {
		start = 1
	}
	for i := start; i < q.n; i++ {
		if key != nil && q.cfg.KeyOf(q.buf[(q.head+i)%len(q.buf)].v) != *key {
			continue
		}
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
		}
		q.buf[(q.head+q.n-1)%len(q.buf)] = slot[T]{}
		q.n--
		return true
	}
	return false
}

// popHead releases the head slot. The caller holds q.mu.
func (q *Queue[T]) popHead() {
	q.buf[q.head] = slot[T]{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
}

// Run starts the drainer goroutine: messages are handed to deliver in
// FIFO order (attempt starts at 1 and counts redeliveries). Run may be
// called at most once; it is a no-op on a closed queue.
func (q *Queue[T]) Run(deliver func(v T, attempt int) error) {
	q.mu.Lock()
	if q.running {
		q.mu.Unlock()
		panic("eventbus: Run called twice")
	}
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.running = true
	q.mu.Unlock()
	go q.drain(deliver)
}

// drain is the consumer loop. The callback always runs unlocked, so a
// frozen consumer holds no queue state hostage: enqueues keep being
// accepted (and shed per policy) while it sits in the callback.
func (q *Queue[T]) drain(deliver func(v T, attempt int) error) {
	defer close(q.done)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.n == 0 && !q.closed {
			q.notEmpty.Wait()
		}
		if q.closed {
			// The backlog is shed on close: nobody is left to consume it.
			q.st.Dropped += uint64(q.n)
			q.n = 0
			clear(q.buf)
			return
		}
		s := q.buf[q.head]
		attempt := s.attempts + 1
		if q.cfg.AtLeastOnce {
			q.inflight = true
		} else {
			q.popHead()
		}
		q.mu.Unlock()
		err := deliver(s.v, attempt)
		q.mu.Lock()
		if !q.cfg.AtLeastOnce {
			if err != nil {
				q.st.Failed++
			} else {
				q.st.Delivered++
			}
			continue
		}
		q.inflight = false
		switch {
		case err == nil:
			q.popHead()
			q.st.Delivered++
		case errors.Is(err, ErrClosed):
			// The consumer is gone for good: no point redelivering.
			q.popHead()
			q.st.Failed++
			q.st.Dropped++
		case attempt <= q.cfg.MaxRedeliver:
			q.buf[q.head].attempts = attempt
			q.st.Failed++
			q.st.Redelivered++
		default:
			q.popHead()
			q.st.Failed++
			q.st.Dropped++
		}
	}
}

// Close stops the queue: pending and future messages are shed, blocked
// Enqueue calls return ErrClosed, and the drainer exits as soon as any
// in-flight callback returns. Close is idempotent and never waits on
// the consumer.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.stop)
	if !q.running {
		// No drainer will ever run to shed the backlog: account for it
		// here and release Done immediately.
		q.st.Dropped += uint64(q.n)
		q.n = 0
		clear(q.buf)
		close(q.done)
	}
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
