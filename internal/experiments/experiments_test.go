package experiments

import (
	"strings"
	"testing"
)

func checkResult(t *testing.T, r Result) {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("%s failed: %v\n%s", r.ID, r.Err, r.Table)
	}
	if r.Table == "" {
		t.Fatalf("%s produced no table", r.ID)
	}
	if len(r.Metrics) == 0 {
		t.Fatalf("%s produced no metrics", r.ID)
	}
	if !strings.Contains(r.String(), r.ID) {
		t.Fatalf("%s String() missing ID", r.ID)
	}
	t.Logf("\n%s", r)
}

func TestE1WorkedExample(t *testing.T) {
	r := RunE1()
	checkResult(t, r)
	if r.Metrics["a_messages"] != 2 || r.Metrics["a_falsepos"] != 0 {
		t.Fatalf("event a metrics: %v", r.Metrics)
	}
}

func TestE2HeightMemory(t *testing.T) {
	r := RunE2(1, []int{60, 240})
	checkResult(t, r)
	if r.Metrics["height_n240"] < r.Metrics["height_n60"] {
		t.Fatal("height must not decrease with N")
	}
}

func TestE3JoinCost(t *testing.T) {
	r := RunE3(1, []int{60, 480})
	checkResult(t, r)
	// Logarithmic shape: 8x the nodes must cost far less than 8x hops.
	if r.Metrics["hops_n480"] > 4*r.Metrics["hops_n60"]+4 {
		t.Fatalf("join hops not logarithmic: %v", r.Metrics)
	}
}

func TestE4LeaveRecovery(t *testing.T) {
	checkResult(t, RunE4(1, []int{60, 150}))
}

func TestE5Corruption(t *testing.T) {
	r := RunE5(1, 40, 8)
	checkResult(t, r)
	if r.Metrics["mean_passes"] < 1 {
		t.Fatal("stabilization must take at least one pass")
	}
}

func TestE6FalsePositives(t *testing.T) {
	r := RunE6(1, 80, 120)
	checkResult(t, r)
	// The paper claims FP rates around 2-3% for most workloads; allow a
	// generous envelope (our workloads differ) but catch broadcast-like
	// degradation.
	for _, k := range []string{"fp_uniform", "fp_clustered", "fp_contained"} {
		if r.Metrics[k] > 0.35 {
			t.Fatalf("%s = %.3f: broadcast-like false positive rate\n%s", k, r.Metrics[k], r.Table)
		}
	}
}

func TestE7Churn(t *testing.T) {
	r := RunE7(1, 20, []float64{4, 20, 40})
	checkResult(t, r)
	// Survival time must not increase with churn rate (below critical).
	if r.Metrics["simT_l40"] > r.Metrics["simT_l4"] {
		t.Fatalf("survival grew with churn: %v", r.Metrics)
	}
}

func TestE8SplitAblation(t *testing.T) {
	r := RunE8(1, 100, 150)
	checkResult(t, r)
	for _, k := range []string{"fp_linear", "fp_quadratic", "fp_rstar"} {
		if _, ok := r.Metrics[k]; !ok {
			t.Fatalf("missing metric %s", k)
		}
	}
}

func TestE9ElectionAblation(t *testing.T) {
	r := RunE9(1, 80, 150)
	checkResult(t, r)
}

func TestE10Reorg(t *testing.T) {
	checkResult(t, RunE10(1, 70, 200))
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, r := range RunAll(2) {
		if r.Err != nil {
			t.Errorf("%s: %v\n%s", r.ID, r.Err, r.Table)
		}
	}
}
