// Package experiments regenerates every quantitative artifact of the
// paper (see DESIGN.md §3 for the experiment index E1-E10). Each RunE*
// function executes one experiment deterministically from a seed and
// returns both a paper-style table and the headline numbers the
// benchmarks assert on. cmd/drtree-bench prints the tables;
// bench_test.go reports the headline metrics.
package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"drtree/internal/baseline"
	"drtree/internal/churn"
	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/rtree"
	"drtree/internal/split"
	"drtree/internal/stats"
	"drtree/internal/workload"
)

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Table is the rendered result table.
	Table string
	// Metrics carries headline numbers for benchmark reporting.
	Metrics map[string]float64
	// Err reports a reproduction failure (a property that must hold did
	// not).
	Err error
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	if r.Err != nil {
		fmt.Fprintf(&b, "REPRODUCTION FAILURE: %v\n", r.Err)
	}
	return b.String()
}

// buildUniform joins n subscribers from the given workload kind into a
// fresh tree.
func buildTree(rng *rand.Rand, p core.Params, kind workload.SubscriptionKind, n int) (*core.Tree, error) {
	tr, err := core.New(p)
	if err != nil {
		return nil, err
	}
	subs := workload.Subscriptions(rng, workload.DefaultWorld(), kind, n)
	for i, s := range subs {
		if err := tr.Join(core.ProcID(i+1), s); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// RunE1 regenerates the worked example of §3 / Figures 1-5: the canonical
// S1..S8 scenario, the containment graph, and the dissemination of events
// a..d. The paper's claim: event a published by S2 reaches exactly
// {S2, S3, S4} with 2 messages and no false positives.
func RunE1() Result {
	res := Result{
		ID:      "E1",
		Title:   "worked example (Figures 1-5): S1..S8, events a..d",
		Metrics: map[string]float64{},
	}
	fig := workload.NewFigure1()
	tr, err := core.New(core.Params{MinFanout: 1, MaxFanout: 3})
	if err != nil {
		res.Err = err
		return res
	}
	for i, r := range fig.Subs {
		if err := tr.Join(core.ProcID(i+1), r); err != nil {
			res.Err = err
			return res
		}
	}
	tb := stats.NewTable("event", "matching subs", "received", "messages", "falsepos")
	for _, name := range []string{"a", "b", "c", "d"} {
		ev := fig.Events[name]
		producer := core.ProcID(2) // S2 publishes, as in the paper
		d, err := tr.Publish(producer, ev)
		if err != nil {
			res.Err = err
			return res
		}
		tb.AddRow(name, strings.Join(fig.Matching(name), "+"), fmt.Sprint(d.Received),
			d.Messages, len(d.FalsePositives))
		if name == "a" {
			res.Metrics["a_messages"] = float64(d.Messages)
			res.Metrics["a_falsepos"] = float64(len(d.FalsePositives))
			if len(d.Received) != 3 || d.Messages != 2 || len(d.FalsePositives) != 0 {
				res.Err = fmt.Errorf("event a: received=%v messages=%d fp=%d, paper says {S2,S3,S4}, 2 messages, 0 FP",
					d.Received, d.Messages, len(d.FalsePositives))
			}
		}
	}
	res.Table = tb.String()
	return res
}

// RunE2 regenerates Lemma 3.1: height vs log_m(N) and per-process memory
// vs the O(M log^2 N / log m) bound, across population sizes.
func RunE2(seed uint64, sizes []int) Result {
	res := Result{
		ID:      "E2",
		Title:   "Lemma 3.1: height and memory vs N (m=4, M=8)",
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("N", "height", "log_m(N)", "maxlinks", "avglinks", "bound M*log2(N)^2/log2(m)")
	for _, n := range sizes {
		rng := rand.New(rand.NewPCG(seed, uint64(n)))
		tr, err := buildTree(rng, core.Params{MinFanout: 4, MaxFanout: 8}, workload.Uniform, n)
		if err != nil {
			res.Err = err
			return res
		}
		if err := tr.CheckLegal(); err != nil {
			res.Err = fmt.Errorf("n=%d: %w", n, err)
			return res
		}
		st := tr.ComputeStats()
		tb.AddRow(n, st.Height, st.HeightLog, st.MaxLinks, st.AvgLinks, st.MemoryBound)
		if float64(st.Height) > st.HeightLog+3 {
			res.Err = fmt.Errorf("n=%d: height %d exceeds log bound %.1f", n, st.Height, st.HeightLog)
		}
		if float64(st.MaxLinks) > 4*st.MemoryBound {
			res.Err = fmt.Errorf("n=%d: memory %d exceeds 4x bound %.1f", n, st.MaxLinks, st.MemoryBound)
		}
		res.Metrics[fmt.Sprintf("height_n%d", n)] = float64(st.Height)
	}
	res.Table = tb.String()
	return res
}

// RunE3 regenerates Lemma 3.2: join cost (routing hops and messages) as a
// function of N, on both the sequential engine and the wire protocol.
func RunE3(seed uint64, sizes []int) Result {
	res := Result{
		ID:      "E3",
		Title:   "Lemma 3.2: join cost vs N (hops are O(log_m N))",
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("N", "mean hops", "p95 hops", "mean msgs", "height")
	for _, n := range sizes {
		rng := rand.New(rand.NewPCG(seed, uint64(n)))
		tr, err := buildTree(rng, core.Params{MinFanout: 2, MaxFanout: 4}, workload.Uniform, n)
		if err != nil {
			res.Err = err
			return res
		}
		var hops, msgs []float64
		for k := 0; k < 50; k++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			id := core.ProcID(n + k + 1)
			st, err := tr.JoinWithStats(id, geom.R2(x, y, x+20, y+20))
			if err != nil {
				res.Err = err
				return res
			}
			hops = append(hops, float64(st.DownHops))
			msgs = append(msgs, float64(st.Messages))
			if err := tr.Leave(id); err != nil {
				res.Err = err
				return res
			}
		}
		hs := stats.Summarize(hops)
		ms := stats.Summarize(msgs)
		tb.AddRow(n, hs.Mean, hs.P95, ms.Mean, tr.Height())
		res.Metrics[fmt.Sprintf("hops_n%d", n)] = hs.Mean
	}
	res.Table = tb.String()
	return res
}

// RunE4 regenerates Lemmas 3.4/3.5: repair cost after controlled and
// uncontrolled departures vs N.
func RunE4(seed uint64, sizes []int) Result {
	res := Result{
		ID:      "E4",
		Title:   "Lemmas 3.4-3.5: departure repair cost vs N",
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("N", "leave passes", "leave reinserts", "crash passes", "crash reinserts")
	for _, n := range sizes {
		rng := rand.New(rand.NewPCG(seed, uint64(n)))
		tr, err := buildTree(rng, core.Params{MinFanout: 2, MaxFanout: 4}, workload.Uniform, n)
		if err != nil {
			res.Err = err
			return res
		}
		var lp, lr, cp, cr []float64
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for k := 0; k < 10; k++ {
			st, err := tr.LeaveWithStats(ids[k])
			if err != nil {
				res.Err = err
				return res
			}
			lp = append(lp, float64(st.StabilizeSteps))
			lr = append(lr, float64(st.Reinsertions))
		}
		for k := 10; k < 20; k++ {
			if err := tr.Crash(ids[k]); err != nil {
				res.Err = err
				return res
			}
			st := tr.RepairCrash()
			cp = append(cp, float64(st.StabilizeSteps))
			cr = append(cr, float64(st.Reinsertions))
			if err := tr.CheckLegal(); err != nil {
				res.Err = fmt.Errorf("n=%d after crash repair: %w", n, err)
				return res
			}
		}
		tb.AddRow(n, stats.Summarize(lp).Mean, stats.Summarize(lr).Mean,
			stats.Summarize(cp).Mean, stats.Summarize(cr).Mean)
		res.Metrics[fmt.Sprintf("crash_passes_n%d", n)] = stats.Summarize(cp).Mean
	}
	res.Table = tb.String()
	return res
}

// RunE5 regenerates Lemma 3.6: stabilization from arbitrarily corrupted
// configurations — on the sequential engine (passes) and on the wire
// protocol (rounds).
func RunE5(seed uint64, n, trials int) Result {
	res := Result{
		ID:      "E5",
		Title:   fmt.Sprintf("Lemma 3.6: recovery from memory corruption (N=%d)", n),
		Metrics: map[string]float64{},
	}
	var passes, fixes []float64
	for k := 0; k < trials; k++ {
		rng := rand.New(rand.NewPCG(seed, uint64(k)))
		tr, err := buildTree(rng, core.Params{MinFanout: 2, MaxFanout: 5}, workload.Uniform, n)
		if err != nil {
			res.Err = err
			return res
		}
		tr.CorruptRandom(rng, 1+rng.IntN(10))
		st := tr.Stabilize()
		if !st.Converged {
			res.Err = fmt.Errorf("trial %d: stabilization did not converge", k)
			return res
		}
		if err := tr.CheckLegal(); err != nil {
			res.Err = fmt.Errorf("trial %d: %w", k, err)
			return res
		}
		passes = append(passes, float64(st.Passes))
		fixes = append(fixes, float64(st.Fixes))
	}
	// Protocol-level: one corrupted cluster, measure rounds to stable.
	cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		res.Err = err
		return res
	}
	rng := rand.New(rand.NewPCG(seed, 999))
	for i := 1; i <= 20; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+30, y+30)); err != nil {
			res.Err = err
			return res
		}
		if _, ok := cl.RunUntilStable(400); !ok {
			res.Err = fmt.Errorf("protocol cluster never stabilized during build")
			return res
		}
	}
	ids := cl.IDs()
	_ = cl.CorruptParent(ids[3], 0, ids[5])
	_ = cl.CorruptMBR(ids[1], 0, geom.R2(0, 0, 1, 1))
	rounds, ok := cl.RunUntilStable(2000)
	if !ok {
		res.Err = fmt.Errorf("protocol cluster did not re-stabilize: %v", cl.CheckLegal())
	}
	ps := stats.Summarize(passes)
	fs := stats.Summarize(fixes)
	tb := stats.NewTable("metric", "mean", "p95", "max")
	tb.AddRow("sequential passes", ps.Mean, ps.P95, ps.Max)
	tb.AddRow("repairs applied", fs.Mean, fs.P95, fs.Max)
	tb.AddRow("protocol rounds (1 trial)", float64(rounds), float64(rounds), float64(rounds))
	res.Table = tb.String()
	res.Metrics["mean_passes"] = ps.Mean
	res.Metrics["proto_rounds"] = float64(rounds)
	return res
}

// RunE6 regenerates the TR's false-positive claim ("2-3% with most
// workloads"): FP rate of the DR-tree vs the three baselines across
// workload kinds. The DR-tree must report zero false negatives.
func RunE6(seed uint64, n, events int) Result {
	res := Result{
		ID:      "E6",
		Title:   fmt.Sprintf("false positives: DR-tree vs baselines (N=%d, %d events)", n, events),
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("workload", "system", "FP/delivery", "FP/(N*ev)", "FN", "msgs/event", "max fanout")
	world := workload.DefaultWorld()
	for _, kind := range []workload.SubscriptionKind{workload.Uniform, workload.Clustered, workload.Contained} {
		rng := rand.New(rand.NewPCG(seed, uint64(kind)))
		subs := workload.Subscriptions(rng, world, kind, n)
		evs := workload.Events(rng, world, workload.MatchingEvents, events, subs)

		// DR-tree.
		tr, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			res.Err = err
			return res
		}
		for i, s := range subs {
			if err := tr.Join(core.ProcID(i+1), s); err != nil {
				res.Err = err
				return res
			}
		}
		ids := tr.ProcIDs()
		var fp, deliveries, msgs, fn int
		for _, ev := range evs {
			d, err := tr.Publish(ids[rng.IntN(len(ids))], ev)
			if err != nil {
				res.Err = err
				return res
			}
			fp += len(d.FalsePositives)
			deliveries += len(d.Received)
			msgs += d.Messages
			got := map[core.ProcID]bool{}
			for _, id := range d.Received {
				got[id] = true
			}
			for _, id := range ids {
				f, _ := tr.Filter(id)
				if f.ContainsPoint(ev) && !got[id] {
					fn++
				}
			}
		}
		fpRate := float64(fp) / float64(max(deliveries, 1))
		perSub := float64(fp) / float64(n*events)
		tb.AddRow(kind.String(), "drtree", fpRate, perSub, fn, float64(msgs)/float64(events), tr.Params().MaxFanout)
		res.Metrics["fp_"+kind.String()] = perSub
		if fn != 0 {
			res.Err = fmt.Errorf("%s: DR-tree produced %d false negatives", kind, fn)
		}

		// Baselines.
		ct, err := baseline.NewContainmentTree(subs)
		if err != nil {
			res.Err = err
			return res
		}
		dt, err := baseline.NewDimensionTrees(subs)
		if err != nil {
			res.Err = err
			return res
		}
		for _, sys := range []baseline.System{ct, dt, baseline.NewFlooding(subs)} {
			var bfp, bdel, bmsg, bfn int
			for _, ev := range evs {
				rep := sys.Disseminate(ev)
				bfp += rep.FalsePositives
				bdel += len(rep.Received)
				bmsg += rep.Messages
				bfn += rep.FalseNegatives
			}
			tb.AddRow(kind.String(), sys.Name(), float64(bfp)/float64(max(bdel, 1)),
				float64(bfp)/float64(n*events), bfn,
				float64(bmsg)/float64(events), sys.MaxFanout())
		}
	}
	res.Table = tb.String()
	return res
}

// RunE7 regenerates Lemma 3.7: the analytic churn bound vs Monte-Carlo
// window simulation vs the live-overlay churn behaviour, across λ.
func RunE7(seed uint64, n int, lambdas []float64) Result {
	res := Result{
		ID:      "E7",
		Title:   fmt.Sprintf("Lemma 3.7: churn resistance (N=%d, Δ=1)", n),
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("λ", "Δλ/N", "analytic E[T]", "simulated E[T]", "overlay disconnects/10", "overlay legal")
	for _, lambda := range lambdas {
		m := churn.Model{N: n, Delta: 1, Lambda: lambda}
		analytic, err := m.ExpectedDisconnectTime()
		if err != nil {
			res.Err = err
			return res
		}
		rng := rand.New(rand.NewPCG(seed, uint64(lambda*100)))
		sim, err := m.SimulateWindows(rng, 200, 100000)
		if err != nil {
			res.Err = err
			return res
		}
		ov, err := m.SimulateOverlay(rng, 10)
		if err != nil {
			res.Err = err
			return res
		}
		if !ov.FinalLegal {
			res.Err = fmt.Errorf("lambda=%g: overlay not legal after churn", lambda)
		}
		tb.AddRow(lambda, lambda*1/float64(n), analytic, sim.MeanTime, ov.Disconnected, ov.FinalLegal)
		res.Metrics[fmt.Sprintf("simT_l%g", lambda)] = sim.MeanTime
	}
	res.Table = tb.String()
	return res
}

// RunE8 is the split-policy ablation (§3.2): coverage, overlap, FP rate
// and build cost under linear, quadratic, and R* splits — on both the
// centralized R-tree substrate and the DR-tree overlay.
func RunE8(seed uint64, n, events int) Result {
	res := Result{
		ID:      "E8",
		Title:   fmt.Sprintf("split-policy ablation (N=%d)", n),
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("policy", "overlay FP rate", "overlay coverage", "overlay overlap", "rtree coverage", "rtree overlap")
	world := workload.DefaultWorld()
	for _, pol := range split.All() {
		rng := rand.New(rand.NewPCG(seed, 7))
		subs := workload.Subscriptions(rng, world, workload.Uniform, n)
		evs := workload.Events(rng, world, workload.MatchingEvents, events, subs)

		tr, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, Split: pol})
		if err != nil {
			res.Err = err
			return res
		}
		rt := rtree.MustNew(2, 4, pol)
		for i, s := range subs {
			if err := tr.Join(core.ProcID(i+1), s); err != nil {
				res.Err = err
				return res
			}
			if err := rt.Insert(s, i); err != nil {
				res.Err = err
				return res
			}
		}
		ids := tr.ProcIDs()
		var fp, del int
		for _, ev := range evs {
			d, err := tr.Publish(ids[rng.IntN(len(ids))], ev)
			if err != nil {
				res.Err = err
				return res
			}
			fp += len(d.FalsePositives)
			del += len(d.Received)
		}
		ost := tr.ComputeStats()
		rst := rt.ComputeStats()
		fpRate := float64(fp) / float64(max(del, 1))
		tb.AddRow(pol.Name(), fpRate, ost.TotalCoverage, ost.TotalOverlap, rst.TotalCoverage, rst.TotalOverlap)
		res.Metrics["fp_"+pol.Name()] = fpRate
	}
	res.Table = tb.String()
	return res
}

// RunE9 is the root-election ablation (Figure 6): the paper's largest-MBR
// election vs random and first-child, with and without the cover rule.
func RunE9(seed uint64, n, events int) Result {
	res := Result{
		ID:      "E9",
		Title:   fmt.Sprintf("root-election ablation (N=%d)", n),
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("election", "cover rule", "FP rate", "weak violations", "height")
	world := workload.DefaultWorld()
	type variant struct {
		name     string
		election core.Election
		noCover  bool
	}
	rng := rand.New(rand.NewPCG(seed, 11))
	variants := []variant{
		{"largest-mbr", core.LargestMBR{}, false},
		{"random", core.RandomElection{Rand: rng}, false},
		{"random", core.RandomElection{Rand: rng}, true},
		{"first-child", core.FirstChild{}, true},
	}
	for _, v := range variants {
		wrng := rand.New(rand.NewPCG(seed, 13))
		subs := workload.Subscriptions(wrng, world, workload.Contained, n)
		evs := workload.Events(wrng, world, workload.MatchingEvents, events, subs)
		tr, err := core.New(core.Params{
			MinFanout: 2, MaxFanout: 4,
			Election: v.election, DisableCoverRule: v.noCover,
		})
		if err != nil {
			res.Err = err
			return res
		}
		for i, s := range subs {
			if err := tr.Join(core.ProcID(i+1), s); err != nil {
				res.Err = err
				return res
			}
		}
		ids := tr.ProcIDs()
		var fp, del int
		for _, ev := range evs {
			d, err := tr.Publish(ids[wrng.IntN(len(ids))], ev)
			if err != nil {
				res.Err = err
				return res
			}
			fp += len(d.FalsePositives)
			del += len(d.Received)
		}
		fpRate := float64(fp) / float64(max(del, 1))
		cover := "on"
		if v.noCover {
			cover = "off"
		}
		tb.AddRow(v.name, cover, fpRate, tr.CheckWeakContainment(), tr.Height())
		res.Metrics[fmt.Sprintf("fp_%s_cover_%s", v.name, cover)] = fpRate
	}
	res.Table = tb.String()
	return res
}

// RunE10 regenerates the dynamic reorganization experiment (§3.2): a
// hot-spot event workload with the false-positive-driven position
// exchange on vs off.
func RunE10(seed uint64, n, events int) Result {
	res := Result{
		ID:      "E10",
		Title:   fmt.Sprintf("FP-driven reorganization under hot-spot events (N=%d)", n),
		Metrics: map[string]float64{},
	}
	tb := stats.NewTable("reorg", "phase", "FP rate", "exchanges")
	world := workload.DefaultWorld()
	for _, reorg := range []bool{false, true} {
		rng := rand.New(rand.NewPCG(seed, 17))
		subs := workload.Subscriptions(rng, world, workload.Clustered, n)
		// Biased workload (§3.2): all events hit the region of a handful
		// of "hot" subscriptions, so a small false-positive region is hit
		// by many events.
		evs := workload.Events(rng, world, workload.MatchingEvents, events, subs[:3])
		tr, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, TrackReorgStats: reorg})
		if err != nil {
			res.Err = err
			return res
		}
		for i, s := range subs {
			if err := tr.Join(core.ProcID(i+1), s); err != nil {
				res.Err = err
				return res
			}
		}
		ids := tr.ProcIDs()
		phase := func(name string, evs []geom.Point) (float64, error) {
			var fp, del int
			for _, ev := range evs {
				d, err := tr.Publish(ids[rng.IntN(len(ids))], ev)
				if err != nil {
					return 0, err
				}
				fp += len(d.FalsePositives)
				del += len(d.Received)
			}
			return float64(fp) / float64(max(del, 1)), nil
		}
		warm, err := phase("warmup", evs[:events/2])
		if err != nil {
			res.Err = err
			return res
		}
		exchanges := 0
		if reorg {
			st := tr.CheckReorg()
			exchanges = st.Exchanges
			tr.Stabilize()
			if err := tr.CheckLegal(); err != nil {
				res.Err = fmt.Errorf("after reorg: %w", err)
				return res
			}
		}
		after, err := phase("after", evs[events/2:])
		if err != nil {
			res.Err = err
			return res
		}
		label := "off"
		if reorg {
			label = "on"
		}
		tb.AddRow(label, "warmup", warm, 0)
		tb.AddRow(label, "steady", after, exchanges)
		res.Metrics[fmt.Sprintf("fp_after_reorg_%s", label)] = after
	}
	res.Table = tb.String()
	return res
}

// RunAll executes every experiment with default parameters.
func RunAll(seed uint64) []Result {
	return []Result{
		RunE1(),
		RunE2(seed, []int{100, 400, 1600}),
		RunE3(seed, []int{100, 400, 1600}),
		RunE4(seed, []int{100, 400}),
		RunE5(seed, 60, 20),
		RunE6(seed, 150, 300),
		RunE7(seed, 30, []float64{5, 15, 30, 60}),
		RunE8(seed, 200, 300),
		RunE9(seed, 120, 300),
		RunE10(seed, 100, 400),
	}
}
