package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"drtree/internal/simnet"
	"drtree/internal/wire"
)

// Conn is one framed connection: reads are single-consumer, writes are
// serialized under an internal mutex with a per-frame deadline. The
// transport hands a Conn to OnClient for adopted client sessions, and
// DialClient returns one for the client side.
type Conn struct {
	c  net.Conn
	sr *wire.StreamReader

	wmu          sync.Mutex
	writeTimeout time.Duration
}

func newConn(c net.Conn, sr *wire.StreamReader, writeTimeout time.Duration) *Conn {
	if sr == nil {
		sr = wire.NewStreamReader(c)
	}
	return &Conn{c: c, sr: sr, writeTimeout: writeTimeout}
}

// ReadMessage blocks for the next frame. Not safe for concurrent use;
// one goroutine owns the read side.
func (c *Conn) ReadMessage() (simnet.Message, error) { return c.sr.ReadMessage() }

// WriteMessage frames and writes one message under the write deadline.
// Safe for concurrent use.
func (c *Conn) WriteMessage(m simnet.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	return wire.WriteMessage(c.c, m)
}

// SetReadDeadline bounds the next read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// Close closes the underlying connection (unblocking any reader).
func (c *Conn) Close() error { return c.c.Close() }

// DialClient opens a client session against a daemon's transport
// listener: it dials, introduces itself with a negative Hello node, and
// returns the framed connection, which the daemon routes to its RPC
// front end.
func DialClient(addr string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := newConn(nc, nil, 5*time.Second)
	if err := c.WriteMessage(simnet.Message{Payload: wire.Hello{Node: -1, Proto: wire.ProtoVersion}}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: client hello: %w", err)
	}
	return c, nil
}
