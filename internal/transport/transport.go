// Package transport moves DR-tree protocol messages over real TCP
// sockets. It implements the same substrate contract simnet satisfies —
// fire-and-forget Send of simnet.Message values, undeliverable messages
// answered with a Bounce (the failure-detector surrogate), and a Stats
// census mirroring simnet's counters — so proto.LiveCluster runs
// unmodified over sockets while simnet remains the deterministic
// conformance twin.
//
// Topology is a static peer table: daemon i listens on Peers[i] and
// keeps one outbound link per remote peer. Each link is a goroutine
// owning a bounded queue and one TCP connection, lazily dialed and
// re-dialed with jittered exponential backoff; writes carry a deadline
// so a wedged peer cannot stall the link forever. Connections are
// unidirectional: i→j traffic flows on the connection i dialed, j→i on
// the one j dialed, which keeps reconnect logic trivially symmetric.
//
// Inbound connections open with a wire.Hello frame. A non-negative
// Hello.Node introduces a peer link (frames stream to Deliver); a
// negative one introduces a client session (subscriber RPCs), which is
// handed to the OnClient callback as a Conn.
package transport

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"drtree/internal/core"
	"drtree/internal/simnet"
	"drtree/internal/wire"
)

// Config wires a TCP transport to its daemon.
type Config struct {
	// Self is this daemon's index into Peers.
	Self int
	// Peers is the static address table, one entry per daemon.
	Peers []string
	// Listener optionally supplies a pre-bound listener for Peers[Self]
	// (tests bind port 0 first to learn addresses). When nil, the
	// transport listens on Peers[Self].
	Listener net.Listener
	// Deliver is the inbound sink (proto.LiveCluster.Deliver). Called
	// from transport goroutines, never from inside Send.
	Deliver func(simnet.Message)
	// Owner maps an overlay process to the daemon index hosting it.
	Owner func(core.ProcID) int
	// OnClient adopts an inbound client session (a connection whose
	// Hello carries a negative node). It runs on the connection's
	// goroutine and owns the Conn. Nil rejects client sessions.
	OnClient func(*Conn)

	// WriteTimeout bounds each frame write (default 5s).
	WriteTimeout time.Duration
	// DialTimeout bounds each dial attempt (default 2s).
	DialTimeout time.Duration
	// BackoffBase and BackoffMax shape the jittered exponential redial
	// backoff (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueDepth is the per-link outbound queue capacity (default 1024).
	QueueDepth int
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats mirrors simnet.Stats for the socket substrate. Sent counts
// messages accepted by Send; Delivered counts inbound frames handed to
// Deliver; Dropped counts queue-overflow and shutdown losses;
// Bounced counts undeliverable messages answered with a Bounce;
// Partitioned counts messages suppressed by an induced partition;
// Delayed counts messages that waited out at least one failed dial
// before being delivered; Reconnects counts re-established outbound
// connections.
type Stats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64
	Bounced     uint64
	Partitioned uint64
	Delayed     uint64
	Reconnects  uint64
}

// TCP is the socket substrate. It satisfies the same Send contract as
// *simnet.Network (compile-asserted in internal/proto's tests via the
// Substrate interface).
type TCP struct {
	cfg   Config
	ln    net.Listener
	links []*link
	stop  chan struct{}
	wg    sync.WaitGroup

	closed atomic.Bool

	sent        atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	bounced     atomic.Uint64
	partitioned atomic.Uint64
	delayed     atomic.Uint64
	reconnects  atomic.Uint64
}

// link is one outbound peer connection with its bounded queue.
type link struct {
	peer        int
	addr        string
	q           chan simnet.Message
	partitioned atomic.Bool
}

// New starts the transport: listener up, accept loop and per-peer link
// goroutines running.
func New(cfg Config) (*TCP, error) {
	cfg = cfg.withDefaults()
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("transport: self index %d outside peer table of %d", cfg.Self, len(cfg.Peers))
	}
	if cfg.Deliver == nil || cfg.Owner == nil {
		return nil, fmt.Errorf("transport: Deliver and Owner are required")
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Self])
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
	}
	t := &TCP{
		cfg:   cfg,
		ln:    ln,
		links: make([]*link, len(cfg.Peers)),
		stop:  make(chan struct{}),
	}
	for i, addr := range cfg.Peers {
		if i == cfg.Self {
			continue
		}
		l := &link{peer: i, addr: addr, q: make(chan simnet.Message, cfg.QueueDepth)}
		t.links[i] = l
		t.wg.Add(1)
		go t.runLink(l)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr is the bound listener address (use after port-0 binds).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send queues messages toward the daemons owning their destinations.
// It never blocks and never calls Deliver synchronously, so it is safe
// to call while holding the cluster lock: overflow drops, partitions
// drop, and undeliverable-peer bounces are synthesized by the link
// goroutines.
func (t *TCP) Send(msgs ...simnet.Message) {
	for _, m := range msgs {
		t.sent.Add(1)
		if t.closed.Load() {
			t.dropped.Add(1)
			continue
		}
		owner := t.cfg.Owner(core.ProcID(m.To))
		if owner < 0 || owner >= len(t.links) || t.links[owner] == nil {
			t.dropped.Add(1)
			continue
		}
		l := t.links[owner]
		if l.partitioned.Load() {
			t.partitioned.Add(1)
			continue
		}
		select {
		case l.q <- m:
		default:
			t.dropped.Add(1)
		}
	}
}

// Partition severs (or heals) traffic to and from peer — the test hook
// mirroring simnet.Network.Partition. Outbound messages drop at Send;
// inbound frames from the peer drop at the receive loop.
func (t *TCP) Partition(peer int, severed bool) {
	if peer >= 0 && peer < len(t.links) && t.links[peer] != nil {
		t.links[peer].partitioned.Store(severed)
	}
}

// Stats snapshots the traffic counters.
func (t *TCP) Stats() Stats {
	return Stats{
		Sent:        t.sent.Load(),
		Delivered:   t.delivered.Load(),
		Dropped:     t.dropped.Load(),
		Bounced:     t.bounced.Load(),
		Partitioned: t.partitioned.Load(),
		Delayed:     t.delayed.Load(),
		Reconnects:  t.reconnects.Load(),
	}
}

// Close shuts the listener and every link down and waits for the
// goroutines to exit. Queued messages are dropped.
func (t *TCP) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stop)
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// runLink owns one outbound connection: dial lazily, write each queued
// frame under a deadline, bounce what cannot be delivered, redial with
// jittered exponential backoff.
func (t *TCP) runLink(l *link) {
	defer t.wg.Done()
	rng := rand.New(rand.NewPCG(uint64(l.peer)*7919, uint64(time.Now().UnixNano())))
	var conn net.Conn
	var failedDials int
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-t.stop:
			return
		case m := <-l.q:
			if l.partitioned.Load() {
				t.partitioned.Add(1)
				continue
			}
			if conn == nil {
				c, ok := t.dialPeer(l, rng, &failedDials)
				if !ok {
					// The peer is unreachable right now: this message (and
					// everything queued behind it) bounces so the protocol's
					// failure handling sees a dead peer, exactly like a
					// simnet bounce.
					t.bounce(m)
					for drained := true; drained; {
						select {
						case q := <-l.q:
							t.bounce(q)
						default:
							drained = false
						}
					}
					continue
				}
				conn = c
				if failedDials > 0 {
					// Messages enqueued during the outage were held, not
					// lost: mirror simnet's Delayed counter.
					t.delayed.Add(uint64(len(l.q) + 1))
					failedDials = 0
				}
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err := wire.WriteMessage(conn, m); err != nil {
				t.cfg.Logf("transport[%d]: write to peer %d: %v", t.cfg.Self, l.peer, err)
				conn.Close()
				conn = nil
				t.reconnects.Add(1)
				t.bounce(m)
				continue
			}
		}
	}
}

// dialPeer makes one connection attempt (with handshake) per call,
// sleeping the jittered backoff for the current failure streak first so
// a dead peer cannot trigger a reconnect storm.
func (t *TCP) dialPeer(l *link, rng *rand.Rand, failedDials *int) (net.Conn, bool) {
	if *failedDials > 0 {
		backoff := t.cfg.BackoffBase << min(*failedDials-1, 12)
		if backoff > t.cfg.BackoffMax {
			backoff = t.cfg.BackoffMax
		}
		// Full jitter in [backoff/2, backoff).
		backoff = backoff/2 + time.Duration(rng.Int64N(int64(backoff/2)+1))
		select {
		case <-t.stop:
			return nil, false
		case <-time.After(backoff):
		}
	}
	conn, err := net.DialTimeout("tcp", l.addr, t.cfg.DialTimeout)
	if err != nil {
		*failedDials++
		t.cfg.Logf("transport[%d]: dial peer %d (%s): %v", t.cfg.Self, l.peer, l.addr, err)
		return nil, false
	}
	conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	if err := wire.WriteMessage(conn, simnet.Message{Payload: wire.Hello{Node: t.cfg.Self, Proto: wire.ProtoVersion}}); err != nil {
		conn.Close()
		*failedDials++
		return nil, false
	}
	if *failedDials > 0 {
		t.reconnects.Add(1)
	}
	return conn, true
}

// bounce answers one undeliverable message with the substrate's failure
// notice. Runs only on link goroutines (never under a caller's lock);
// a bounce is never bounced.
func (t *TCP) bounce(m simnet.Message) {
	if _, isBounce := m.Payload.(simnet.Bounce); isBounce {
		t.dropped.Add(1)
		return
	}
	t.bounced.Add(1)
	t.cfg.Deliver(simnet.Message{
		From: m.To, To: m.From,
		Payload: simnet.Bounce{To: m.To, Original: m.Payload},
	})
}

// acceptLoop admits inbound connections and classifies them by their
// Hello frame.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			t.cfg.Logf("transport[%d]: accept: %v", t.cfg.Self, err)
			select {
			case <-t.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve reads one connection until it dies: peer links stream frames to
// Deliver, client sessions are adopted by OnClient.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// Kill the read when the transport closes: Close must not wait on a
	// blocked Read.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-t.stop:
			conn.Close()
		case <-done:
		}
	}()

	sr := wire.NewStreamReader(conn)
	conn.SetReadDeadline(time.Now().Add(t.cfg.WriteTimeout))
	first, err := sr.ReadMessage()
	if err != nil {
		return
	}
	hello, ok := first.Payload.(wire.Hello)
	if !ok {
		t.cfg.Logf("transport[%d]: inbound connection opened with %T, want Hello", t.cfg.Self, first.Payload)
		return
	}
	// Proto 0 is a pre-versioning peer speaking the current protocol; a
	// major this build does not know is refused before any frame of it
	// could be misparsed.
	if hello.Proto > wire.ProtoVersion {
		t.cfg.Logf("transport[%d]: peer %d announced protocol %d, this build speaks %d — refusing",
			t.cfg.Self, hello.Node, hello.Proto, wire.ProtoVersion)
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Node < 0 {
		if t.cfg.OnClient == nil {
			return
		}
		t.cfg.OnClient(newConn(conn, sr, t.cfg.WriteTimeout))
		return
	}
	peer := hello.Node
	for {
		m, err := sr.ReadMessage()
		if err != nil {
			if !t.closed.Load() {
				t.cfg.Logf("transport[%d]: peer %d link closed: %v", t.cfg.Self, peer, err)
			}
			return
		}
		if peer < len(t.links) && t.links[peer] != nil && t.links[peer].partitioned.Load() {
			t.partitioned.Add(1)
			continue
		}
		t.delivered.Add(1)
		t.cfg.Deliver(m)
	}
}
