package transport

import (
	"net"
	"reflect"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/proto"
	"drtree/internal/simnet"
	"drtree/internal/wire"
)

// The TCP transport must satisfy the same substrate contract the
// deterministic simulator does.
var _ proto.Substrate = (*TCP)(nil)

// ownerByHundreds maps processes 100–199 to daemon 0, 200–299 to
// daemon 1, and so on.
func ownerByHundreds(p core.ProcID) int { return int(p)/100 - 1 }

// pair starts two connected transports on loopback and returns them
// with their inbound channels.
func pair(t *testing.T) (*TCP, *TCP, chan simnet.Message, chan simnet.Message) {
	t.Helper()
	ln0 := listen(t)
	ln1 := listen(t)
	peers := []string{ln0.Addr().String(), ln1.Addr().String()}
	in0 := make(chan simnet.Message, 256)
	in1 := make(chan simnet.Message, 256)
	t0 := start(t, Config{Self: 0, Peers: peers, Listener: ln0, Deliver: func(m simnet.Message) { in0 <- m }, Owner: ownerByHundreds})
	t1 := start(t, Config{Self: 1, Peers: peers, Listener: ln1, Deliver: func(m simnet.Message) { in1 <- m }, Owner: ownerByHundreds})
	return t0, t1, in0, in1
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func start(t *testing.T, cfg Config) *TCP {
	t.Helper()
	cfg.Logf = t.Logf
	tp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tp.Close() })
	return tp
}

func recvMsg(t *testing.T, ch chan simnet.Message) simnet.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a message")
		return simnet.Message{}
	}
}

func TestSendDeliverBothDirections(t *testing.T) {
	t0, t1, in0, in1 := pair(t)

	want := simnet.Message{From: 101, To: 201, Payload: wire.Subscribe{Ref: 1, ID: 42, Expr: "x in [0, 1]"}}
	t0.Send(want)
	if got := recvMsg(t, in1); !reflect.DeepEqual(got, want) {
		t.Fatalf("daemon 1 received %#v, want %#v", got, want)
	}

	back := simnet.Message{From: 201, To: 101, Payload: wire.Ack{Ref: 1}}
	t1.Send(back)
	if got := recvMsg(t, in0); !reflect.DeepEqual(got, back) {
		t.Fatalf("daemon 0 received %#v, want %#v", got, back)
	}

	if s := t0.Stats(); s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("t0 stats = %+v, want Sent=1 Delivered=1", s)
	}
}

func TestUnreachablePeerBounces(t *testing.T) {
	// Peer 1's address points at a closed port: every send toward it
	// must come back as a Bounce carrying the original payload.
	dead := listen(t)
	deadAddr := dead.Addr().String()
	dead.Close()

	ln0 := listen(t)
	in0 := make(chan simnet.Message, 16)
	t0 := start(t, Config{
		Self: 0, Peers: []string{ln0.Addr().String(), deadAddr}, Listener: ln0,
		Deliver: func(m simnet.Message) { in0 <- m }, Owner: ownerByHundreds,
		DialTimeout: 200 * time.Millisecond,
	})

	orig := wire.Publish{Ref: 7, Producer: 3, Attrs: []string{"p"}, Values: []float64{1}}
	t0.Send(simnet.Message{From: 101, To: 201, Payload: orig})

	m := recvMsg(t, in0)
	b, ok := m.Payload.(simnet.Bounce)
	if !ok || m.To != 101 || b.To != 201 {
		t.Fatalf("got %#v, want a bounce of the original to 101", m)
	}
	if got, ok := b.Original.(wire.Publish); !ok || got.Ref != orig.Ref {
		t.Fatalf("bounce carries %#v, want the original publish", b.Original)
	}
	if s := t0.Stats(); s.Bounced == 0 {
		t.Fatalf("stats = %+v, want Bounced > 0", s)
	}
}

func TestPeerDiesMidFrame(t *testing.T) {
	ln0 := listen(t)
	in0 := make(chan simnet.Message, 16)
	t0 := start(t, Config{
		Self: 0, Peers: []string{ln0.Addr().String(), "127.0.0.1:1"}, Listener: ln0,
		Deliver: func(m simnet.Message) { in0 <- m }, Owner: ownerByHundreds,
	})

	// A raw peer sends its Hello, one valid frame, then half of a second
	// frame and dies. The transport must deliver the whole frame, drop
	// the partial one without panicking, and keep serving afterwards.
	conn, err := net.Dial("tcp", t0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, simnet.Message{Payload: wire.Hello{Node: 1}}); err != nil {
		t.Fatal(err)
	}
	whole := simnet.Message{From: 201, To: 101, Payload: wire.Notify{Subscriber: 9, Seq: 1, Attrs: []string{"x"}, Values: []float64{2}}}
	frame, err := wire.EncodeFrame(whole)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	partial, err := wire.EncodeFrame(simnet.Message{From: 201, To: 101, Payload: wire.Ack{Ref: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(partial[:len(partial)-3]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if got := recvMsg(t, in0); !reflect.DeepEqual(got, whole) {
		t.Fatalf("received %#v, want %#v", got, whole)
	}

	// A fresh, well-behaved peer connection still works.
	conn2, err := net.Dial("tcp", t0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteMessage(conn2, simnet.Message{Payload: wire.Hello{Node: 1}}); err != nil {
		t.Fatal(err)
	}
	second := simnet.Message{From: 202, To: 102, Payload: wire.Ack{Ref: 3}}
	if err := wire.WriteMessage(conn2, second); err != nil {
		t.Fatal(err)
	}
	if got := recvMsg(t, in0); !reflect.DeepEqual(got, second) {
		t.Fatalf("after partial frame: received %#v, want %#v", got, second)
	}
	if s := t0.Stats(); s.Delivered != 2 {
		t.Fatalf("stats = %+v, want Delivered=2", s)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	// Peer 1 is down at first: sends bounce while the link backs off
	// (the reconnect storm is rate-limited by the jittered backoff).
	// When the peer comes up on the same address, traffic flows again
	// and the held messages count as Delayed.
	lnPeer := listen(t)
	peerAddr := lnPeer.Addr().String()
	lnPeer.Close()

	ln0 := listen(t)
	in0 := make(chan simnet.Message, 1024)
	t0 := start(t, Config{
		Self: 0, Peers: []string{ln0.Addr().String(), peerAddr}, Listener: ln0,
		Deliver: func(m simnet.Message) { in0 <- m }, Owner: ownerByHundreds,
		DialTimeout: 100 * time.Millisecond, BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
	})

	// Hammer the dead peer: every message must come back as a bounce —
	// none may be silently lost — and the backoff must keep the dial
	// rate finite (the test would time out under a tight dial loop).
	const storm = 40
	for i := 0; i < storm; i++ {
		t0.Send(simnet.Message{From: 101, To: 201, Payload: wire.Ack{Ref: uint64(i)}})
		time.Sleep(2 * time.Millisecond)
	}
	bounces := 0
	for bounces < storm {
		m := recvMsg(t, in0)
		if _, ok := m.Payload.(simnet.Bounce); ok {
			bounces++
		}
	}

	// Restart the peer on the same address.
	ln1, err := net.Listen("tcp", peerAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", peerAddr, err)
	}
	in1 := make(chan simnet.Message, 64)
	start(t, Config{
		Self: 1, Peers: []string{ln0.Addr().String(), peerAddr}, Listener: ln1,
		Deliver: func(m simnet.Message) { in1 <- m }, Owner: ownerByHundreds,
	})

	// Keep sending until one gets through (early sends may still hit
	// the tail of a backoff window and bounce).
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for !delivered && time.Now().Before(deadline) {
		t0.Send(simnet.Message{From: 101, To: 201, Payload: wire.Ack{Ref: 999}})
		select {
		case m := <-in1:
			if a, ok := m.Payload.(wire.Ack); ok && a.Ref == 999 {
				delivered = true
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no message delivered after peer restart")
	}
	s := t0.Stats()
	if s.Reconnects == 0 {
		t.Fatalf("stats = %+v, want Reconnects > 0 after peer restart", s)
	}
	if s.Delayed == 0 {
		t.Fatalf("stats = %+v, want Delayed > 0 for messages held across the outage", s)
	}
}

func TestPartitionSuppressesTraffic(t *testing.T) {
	t0, _, _, in1 := pair(t)

	t0.Partition(1, true)
	t0.Send(simnet.Message{From: 101, To: 201, Payload: wire.Ack{Ref: 1}})
	select {
	case m := <-in1:
		t.Fatalf("partitioned send leaked through: %#v", m)
	case <-time.After(200 * time.Millisecond):
	}
	if s := t0.Stats(); s.Partitioned != 1 {
		t.Fatalf("stats = %+v, want Partitioned=1", s)
	}

	t0.Partition(1, false)
	t0.Send(simnet.Message{From: 101, To: 201, Payload: wire.Ack{Ref: 2}})
	if m := recvMsg(t, in1); m.Payload.(wire.Ack).Ref != 2 {
		t.Fatalf("after heal: %#v", m)
	}
}

func TestClientSession(t *testing.T) {
	ln0 := listen(t)
	t0 := start(t, Config{
		Self: 0, Peers: []string{ln0.Addr().String()}, Listener: ln0,
		Deliver: func(simnet.Message) {}, Owner: func(core.ProcID) int { return 0 },
		OnClient: func(c *Conn) {
			defer c.Close()
			for {
				m, err := c.ReadMessage()
				if err != nil {
					return
				}
				sub, ok := m.Payload.(wire.Subscribe)
				if !ok {
					return
				}
				c.WriteMessage(simnet.Message{Payload: wire.Ack{Ref: sub.Ref}})
			}
		},
	})
	_ = t0

	c, err := DialClient(t0.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteMessage(simnet.Message{Payload: wire.Subscribe{Ref: 11, ID: 1, Expr: "x in [0, 1]"}}); err != nil {
		t.Fatal(err)
	}
	m, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := m.Payload.(wire.Ack); !ok || a.Ref != 11 {
		t.Fatalf("got %#v, want Ack{Ref: 11}", m)
	}
}

func TestSendAfterCloseDrops(t *testing.T) {
	t0, _, _, _ := pair(t)
	t0.Close()
	t0.Send(simnet.Message{From: 101, To: 201, Payload: wire.Ack{Ref: 1}})
	if s := t0.Stats(); s.Dropped == 0 {
		t.Fatalf("stats = %+v, want Dropped > 0 after close", s)
	}
}
