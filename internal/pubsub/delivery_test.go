package pubsub

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
)

var errNope = errors.New("injected handler failure")

// waitUntil polls cond until it holds or a generous deadline expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func newDeliveryBroker(t *testing.T, gws int) *Broker {
	t.Helper()
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(gws))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestSubscribeFuncDelivers: matching events reach the handler with
// consecutive sequence numbers; non-matching events do not.
func TestSubscribeFuncDelivers(t *testing.T) {
	b := newDeliveryBroker(t, 1)
	var mu sync.Mutex
	var got []Envelope
	h := func(e Envelope) error {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
		return nil
	}
	if err := b.SubscribeFunc(1, filter.Range("x", 0, 10), h); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{5, 50, 7} {
		if _, err := b.Publish(1, filter.Event{"x": x}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "two deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	for i, e := range got {
		if e.Seq != uint64(i+1) || e.Attempt != 1 {
			t.Fatalf("envelope %d: %+v", i, e)
		}
	}
	if got[0].Event["x"] != 5.0 || got[1].Event["x"] != 7.0 {
		t.Fatalf("delivered events %v", got)
	}
	st, ok := b.DeliveryStatsOf(1)
	if !ok || st.Delivered != 2 || st.Enqueued != 2 || st.Dropped != 0 {
		t.Fatalf("DeliveryStatsOf(1) = %+v, %v", st, ok)
	}
}

// TestSubscribeChanDelivers: the channel variant carries matching
// events and closes on Unsubscribe.
func TestSubscribeChanDelivers(t *testing.T) {
	b := newDeliveryBroker(t, 1)
	ch, err := b.SubscribeChan(1, filter.Range("x", 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(1, filter.Event{"x": 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.Seq != 1 || e.Event["x"] != 3.0 {
			t.Fatalf("envelope %+v", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery on the subscription channel")
	}
	if err := b.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("channel delivered after Unsubscribe")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel not closed by Unsubscribe")
	}
}

// TestDeliveryOptionValidation covers the option and argument guards.
func TestDeliveryOptionValidation(t *testing.T) {
	b := newDeliveryBroker(t, 1)
	h := func(Envelope) error { return nil }
	f := filter.Range("x", 0, 10)
	if err := b.SubscribeFunc(1, f, nil); err == nil {
		t.Error("nil handler must be rejected")
	}
	if err := b.SubscribeFunc(1, f, h, WithQueueDepth(0)); err == nil {
		t.Error("zero queue depth must be rejected")
	}
	if err := b.SubscribeFunc(1, f, h, WithOverflowPolicy(OverflowPolicy(99))); err == nil {
		t.Error("unknown overflow policy must be rejected")
	}
	if err := b.SubscribeFunc(1, f, h, WithAtLeastOnce(-1)); err == nil {
		t.Error("negative max redeliveries must be rejected")
	}
	if _, err := b.SubscribeChan(1, f, WithAtLeastOnce(0)); err == nil {
		t.Error("at-least-once over a channel must be rejected")
	}
	if err := b.SubscribeFunc(0, f, h); err == nil {
		t.Error("non-positive subscriber ID must be rejected")
	}
	// A rejected registration must not leave delivery state behind.
	if st := b.DeliveryStats(); len(st) != 0 {
		t.Errorf("DeliveryStats after rejected registrations: %+v", st)
	}
	// Record-only subscribers have no queue.
	if err := b.Subscribe(7, f); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.DeliveryStatsOf(7); ok {
		t.Error("record-only subscriber reported delivery stats")
	}
}

// TestAtLeastOnceThroughBroker: a failing handler sees the same
// envelope again with an incremented attempt counter, and the retries
// surface in DeliveryStats and the gateway aggregates.
func TestAtLeastOnceThroughBroker(t *testing.T) {
	b := newDeliveryBroker(t, 1)
	var mu sync.Mutex
	var attempts []int
	h := func(e Envelope) error {
		mu.Lock()
		attempts = append(attempts, e.Attempt)
		mu.Unlock()
		if e.Attempt < 3 {
			return errNope
		}
		return nil
	}
	if err := b.SubscribeFunc(1, filter.Range("x", 0, 10), h, WithAtLeastOnce(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(1, filter.Event{"x": 1}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "acknowledged delivery", func() bool {
		st, _ := b.DeliveryStatsOf(1)
		return st.Delivered == 1
	})
	mu.Lock()
	if len(attempts) != 3 || attempts[0] != 1 || attempts[1] != 2 || attempts[2] != 3 {
		t.Fatalf("attempts = %v, want [1 2 3]", attempts)
	}
	mu.Unlock()
	st, _ := b.DeliveryStatsOf(1)
	if st.Redelivered != 2 || st.Failed != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	gs := b.GatewayStats()
	var redelivered uint64
	for _, g := range gs {
		redelivered += g.Redelivered
	}
	if redelivered != 2 {
		t.Fatalf("gateway aggregate Redelivered = %d, want 2", redelivered)
	}
}

// TestCoalesceThroughBroker: with a blocked handler and a tiny queue,
// the coalescing policy keeps the newest events and counts the
// replacements, all without ever blocking the publisher.
func TestCoalesceThroughBroker(t *testing.T) {
	b := newDeliveryBroker(t, 1)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	var seqs []uint64
	first := true
	h := func(e Envelope) error {
		mu.Lock()
		seqs = append(seqs, e.Seq)
		hold := first
		first = false
		mu.Unlock()
		if hold {
			entered <- struct{}{}
			<-release
		}
		return nil
	}
	err := b.SubscribeFunc(1, filter.Range("x", 0, 10), h,
		WithQueueDepth(2), WithOverflowPolicy(CoalesceByFilter))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(1, filter.Event{"x": 1}); err != nil {
		t.Fatal(err)
	}
	<-entered // envelope 1 is in the handler; the queue is empty
	for i := 0; i < 4; i++ {
		if _, err := b.Publish(1, filter.Event{"x": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	waitUntil(t, "post-coalesce deliveries", func() bool {
		st, _ := b.DeliveryStatsOf(1)
		return st.Delivered == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 4 || seqs[2] != 5 {
		t.Fatalf("delivered seqs %v, want [1 4 5] (newest kept)", seqs)
	}
	st, _ := b.DeliveryStatsOf(1)
	if st.Coalesced != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want Coalesced=2 Dropped=0", st)
	}
}

// TestBrokerCloseClosesQueues: Close sheds backlogs and closes
// subscription channels without waiting on any consumer.
func TestBrokerCloseClosesQueues(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(2))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := b.SubscribeChan(1, filter.Range("x", 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// A channel subscriber nobody reads: its drainer parks on the send.
	if err := b.SubscribeFunc(2, filter.Range("x", 0, 10), func(Envelope) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(1, filter.Event{"x": 5}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on a consumer")
	}
	waitUntil(t, "channel close", func() bool {
		select {
		case _, open := <-ch:
			return !open
		default:
			return false
		}
	})
}

// TestFrozenConsumerNeverBlocksPublish is the tentpole's load-bearing
// guarantee: a consumer that never returns costs publishers nothing.
// The same publish load runs twice — all-fast, then with one frozen
// subscriber added — and the publishers' wall-clock must stay within a
// generous factor of the baseline while the frozen subscriber's losses
// are visible in DeliveryStats.
func TestFrozenConsumerNeverBlocksPublish(t *testing.T) {
	const (
		publishers = 4
		batches    = 25
		batchLen   = 4
		events     = publishers * batches * batchLen
	)
	run := func(frozen bool) (elapsed time.Duration, b *Broker, delivered []*atomic.Uint64) {
		b = newDeliveryBroker(t, 4)
		delivered = make([]*atomic.Uint64, publishers)
		for i := 1; i <= publishers; i++ {
			n := &atomic.Uint64{}
			delivered[i-1] = n
			err := b.SubscribeFunc(core.ProcID(i), filter.Range("x", 0, 100),
				func(Envelope) error { n.Add(1); return nil },
				WithQueueDepth(events))
			if err != nil {
				t.Fatal(err)
			}
		}
		if frozen {
			release := make(chan struct{})
			t.Cleanup(func() { close(release) })
			err := b.SubscribeFunc(9, filter.Range("x", 0, 100),
				func(Envelope) error { <-release; return nil },
				WithQueueDepth(8))
			if err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < publishers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				evs := make([]filter.Event, batchLen)
				for k := 0; k < batches; k++ {
					for i := range evs {
						evs[i] = filter.Event{"x": float64((w*batches + k + i) % 100)}
					}
					if _, err := b.PublishBatch(core.ProcID(w+1), evs); err != nil {
						t.Errorf("publisher %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed = time.Since(start)
		return elapsed, b, delivered
	}

	base, bb, baseDelivered := run(false)
	for i, n := range baseDelivered {
		waitUntil(t, "baseline fast consumer drain", func() bool { return n.Load() == events })
		_ = i
	}
	bb.Close()

	frozenElapsed, fb, fastDelivered := run(true)
	// Publisher latency within noise of the baseline: a generous bound
	// (an order of magnitude plus a constant) that still catches the
	// pre-fix behaviour of blocking on the frozen callback forever.
	if limit := base*10 + 2*time.Second; frozenElapsed > limit {
		t.Fatalf("publishing took %v with a frozen consumer, baseline %v (limit %v)", frozenElapsed, base, limit)
	}
	t.Logf("publish wall-time for %d events: %v all-fast baseline, %v with a frozen consumer", events, base, frozenElapsed)
	// Fast consumers still see every event.
	for i, n := range fastDelivered {
		waitUntil(t, "fast consumer drain beside frozen peer", func() bool { return n.Load() == events })
		_ = i
	}
	// The frozen subscriber's losses are visible, bounded by its queue.
	st, ok := fb.DeliveryStatsOf(9)
	if !ok {
		t.Fatal("no delivery stats for the frozen subscriber")
	}
	// One envelope is in the frozen handler, at most QueueDepth are
	// queued; everything else must have been shed.
	if wantMin := uint64(events - 8 - 1); st.Dropped < wantMin {
		t.Fatalf("frozen subscriber Dropped = %d, want >= %d (stats %+v)", st.Dropped, wantMin, st)
	}
	if st.Depth > 8 {
		t.Fatalf("frozen subscriber Depth = %d exceeds its capacity 8", st.Depth)
	}
	var aggDropped uint64
	var aggDepth int
	for _, g := range fb.GatewayStats() {
		aggDropped += g.Dropped
		aggDepth += g.QueueDepth
	}
	if aggDropped < st.Dropped {
		t.Fatalf("gateway aggregate Dropped = %d < subscriber's %d", aggDropped, st.Dropped)
	}
	if aggDepth < st.Depth {
		t.Fatalf("gateway aggregate QueueDepth = %d < subscriber's %d", aggDepth, st.Depth)
	}
}
