package pubsub

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/state"
)

// newDurableBroker builds a broker over a fresh sequential engine and
// the given store.
func newDurableBroker(t *testing.T, s state.Store, opts ...Option) *Broker {
	t.Helper()
	b, err := NewCore(filter.MustSpace("price", "qty"), core.Params{MinFanout: 2, MaxFanout: 4},
		append([]Option{WithStore(s)}, opts...)...)
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	return b
}

// subscriberSet snapshots id -> filter string for comparison.
func subscriberSet(b *Broker) map[core.ProcID]string {
	out := make(map[core.ProcID]string)
	for _, gw := range b.gws {
		gw.mu.RLock()
		for id, sub := range gw.subs {
			out[id] = sub.f.String()
		}
		gw.mu.RUnlock()
	}
	return out
}

func storesForRecovery(t *testing.T) map[string]func() (state.Store, func() state.Store) {
	return map[string]func() (state.Store, func() state.Store){
		"mem": func() (state.Store, func() state.Store) {
			m := state.NewMem()
			return m, func() state.Store { return m }
		},
		"wal": func() (state.Store, func() state.Store) {
			dir := t.TempDir()
			w, err := state.OpenWAL(dir)
			if err != nil {
				t.Fatalf("OpenWAL: %v", err)
			}
			return w, func() state.Store {
				w.Close()
				nw, err := state.OpenWAL(dir)
				if err != nil {
					t.Fatalf("reopen WAL: %v", err)
				}
				return nw
			}
		},
	}
}

func TestBrokerRecoverRebuildsSubscriptions(t *testing.T) {
	for name, mk := range storesForRecovery(t) {
		t.Run(name, func(t *testing.T) {
			s, reopen := mk()
			b := newDurableBroker(t, s)
			// A mix of plain, func and chan subscribers, plus churn.
			for i := 1; i <= 40; i++ {
				f := filter.Range("price", float64(i), float64(i+10))
				var err error
				switch i % 3 {
				case 0:
					err = b.Subscribe(core.ProcID(i), f)
				case 1:
					err = b.SubscribeFunc(core.ProcID(i), f, func(Envelope) error { return nil })
				default:
					_, err = b.SubscribeChan(core.ProcID(i), f)
				}
				if err != nil {
					t.Fatalf("subscribe %d: %v", i, err)
				}
			}
			for i := 1; i <= 40; i += 4 {
				if err := b.Unsubscribe(core.ProcID(i)); err != nil {
					t.Fatalf("unsubscribe %d: %v", i, err)
				}
			}
			for i := 2; i <= 40; i += 8 {
				if err := b.UpdateFilter(core.ProcID(i), filter.Range("qty", 0, float64(i))); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			want := subscriberSet(b)
			b.Close()

			// "Restart": fresh engine + broker over the reopened store.
			b2 := newDurableBroker(t, reopen())
			st, err := b2.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer b2.Close()
			b2.Repair()
			got := subscriberSet(b2)
			if len(got) != len(want) {
				t.Fatalf("recovered %d subscribers, want %d", len(got), len(want))
			}
			for id, f := range want {
				if got[id] != f {
					t.Fatalf("subscriber %d recovered filter %q, want %q", id, got[id], f)
				}
			}
			if st.Subscribers != len(want) {
				t.Fatalf("RecoverStats.Subscribers = %d, want %d", st.Subscribers, len(want))
			}
			// The recovered broker must route with zero false negatives.
			ev := filter.Event{"price": 15, "qty": 3}
			producer := core.ProcID(0)
			for id := range want {
				producer = id
				break
			}
			note, err := b2.Publish(producer, ev)
			if err != nil {
				t.Fatalf("Publish after recover: %v", err)
			}
			if len(note.FalseNegatives) != 0 {
				t.Fatalf("false negatives after recovery: %v", note.FalseNegatives)
			}
			if len(note.Interested) == 0 {
				t.Fatalf("nobody interested in %v — bad test setup", ev)
			}
		})
	}
}

func TestBrokerRecoverSnapshotPlusSuffix(t *testing.T) {
	for name, mk := range storesForRecovery(t) {
		t.Run(name, func(t *testing.T) {
			s, reopen := mk()
			b := newDurableBroker(t, s)
			for i := 1; i <= 20; i++ {
				if err := b.Subscribe(core.ProcID(i), filter.Range("price", 0, float64(i))); err != nil {
					t.Fatalf("subscribe: %v", err)
				}
			}
			if err := b.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			// Suffix after the snapshot: adds, removes, updates.
			for i := 21; i <= 30; i++ {
				if err := b.Subscribe(core.ProcID(i), filter.Range("qty", 0, float64(i))); err != nil {
					t.Fatalf("subscribe: %v", err)
				}
			}
			b.Unsubscribe(5)
			b.UpdateFilter(7, filter.Range("qty", 1, 2))
			want := subscriberSet(b)
			b.Close()

			b2 := newDurableBroker(t, reopen())
			st, err := b2.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer b2.Close()
			if !st.Snapshot {
				t.Fatalf("RecoverStats.Snapshot = false, want snapshot baseline")
			}
			got := subscriberSet(b2)
			if len(got) != len(want) {
				t.Fatalf("recovered %d subscribers, want %d", len(got), len(want))
			}
			for id, f := range want {
				if got[id] != f {
					t.Fatalf("subscriber %d: %q want %q", id, got[id], f)
				}
			}
		})
	}
}

func TestBrokerRecoverExactFloatRoundtrip(t *testing.T) {
	// Filter.String() rounds to 4 decimals; the journal must not. A
	// constant that %.4f destroys must survive recovery bit-exactly, or
	// an event on the boundary becomes a post-restart false negative.
	s := state.NewMem()
	b := newDurableBroker(t, s)
	exact := 0.12345678901234568
	f := filter.New(
		filter.Predicate{Attr: "price", Op: filter.OpGe, Value: exact},
		filter.Predicate{Attr: "price", Op: filter.OpLe, Value: exact},
	)
	if err := b.Subscribe(1, f); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	b.Close()

	b2 := newDurableBroker(t, s)
	if _, err := b2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer b2.Close()
	gw := b2.owner(1)
	gw.mu.RLock()
	preds := gw.subs[1].f.Predicates()
	gw.mu.RUnlock()
	if len(preds) != 2 {
		t.Fatalf("recovered %d predicates, want 2", len(preds))
	}
	for _, p := range preds {
		if p.Value != exact {
			t.Fatalf("recovered constant %v, want %v bit-exact", p.Value, exact)
		}
	}
	note, err := b2.Publish(1, filter.Event{"price": exact, "qty": 0})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(note.Interested) != 1 || len(note.FalseNegatives) != 0 {
		t.Fatalf("boundary event: interested=%v falseNegatives=%v", note.Interested, note.FalseNegatives)
	}
}

func TestBrokerRecoverOnNonEmptyBrokerFails(t *testing.T) {
	s := state.NewMem()
	b := newDurableBroker(t, s)
	defer b.Close()
	if err := b.Subscribe(1, filter.Range("price", 0, 1)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := b.Recover(); err == nil || !strings.Contains(err.Error(), "live subscribers") {
		t.Fatalf("Recover on live broker: %v, want live-subscribers error", err)
	}
	b2, err := NewCore(filter.MustSpace("price"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	defer b2.Close()
	if _, err := b2.Recover(); err == nil || !strings.Contains(err.Error(), "WithStore") {
		t.Fatalf("Recover without store: %v, want WithStore error", err)
	}
}

func TestBrokerAttachAfterRecover(t *testing.T) {
	s := state.NewMem()
	b := newDurableBroker(t, s)
	if _, err := b.SubscribeChan(7, filter.Range("price", 10, 20)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := b.Subscribe(8, filter.Range("price", 10, 20)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	b.Close()

	b2 := newDurableBroker(t, s)
	if _, err := b2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer b2.Close()
	// Recovered subscriptions are record-only: attach succeeds once.
	ch, err := b2.AttachChan(7)
	if err != nil {
		t.Fatalf("AttachChan: %v", err)
	}
	if _, err := b2.AttachChan(7); err == nil {
		t.Fatalf("second attach succeeded, want already-attached error")
	}
	if err := b2.AttachFunc(99, func(Envelope) error { return nil }); err == nil {
		t.Fatalf("attach to unknown subscriber succeeded")
	}
	if _, err := b2.Publish(8, filter.Event{"price": 15, "qty": 1}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case e := <-ch:
		if e.Event["price"] != 15 {
			t.Fatalf("delivered %v", e.Event)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no delivery to re-attached subscriber")
	}
}

func TestBrokerAutoCheckpoint(t *testing.T) {
	s := state.NewMem()
	b := newDurableBroker(t, s, WithSnapshotEvery(16))
	defer b.Close()
	for i := 1; i <= 64; i++ {
		if err := b.Subscribe(core.ProcID(i), filter.Range("price", 0, float64(i))); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().Snapshots > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 64 ops with cadence 16: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBrokerDeliveryDefaultsFromConstructor(t *testing.T) {
	// A DeliveryOption passed to New becomes the broker-wide default,
	// overridable per subscription.
	b, err := NewCore(filter.MustSpace("price"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithQueueDepth(3), WithOverflowPolicy(CoalesceByFilter))
	if err != nil {
		t.Fatalf("NewCore with delivery defaults: %v", err)
	}
	defer b.Close()
	if _, err := b.SubscribeChan(1, filter.Range("price", 0, 100)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := b.SubscribeChan(2, filter.Range("price", 0, 100), WithQueueDepth(9)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	st1, _ := b.DeliveryStatsOf(1)
	st2, _ := b.DeliveryStatsOf(2)
	if st1.Capacity != 3 || st1.Policy != CoalesceByFilter {
		t.Fatalf("subscriber 1 stats %+v, want broker defaults depth=3 coalesce", st1)
	}
	if st2.Capacity != 9 || st2.Policy != CoalesceByFilter {
		t.Fatalf("subscriber 2 stats %+v, want override depth=9, default coalesce", st2)
	}
	// Invalid combination is rejected at construction.
	if _, err := NewCore(filter.MustSpace("price"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithQueueDepth(0)); err == nil {
		t.Fatalf("NewCore accepted queue depth 0")
	}
}

func TestUpdateFilterMemoryOnly(t *testing.T) {
	// UpdateFilter works without a store too (memory-only broker).
	b, err := NewCore(filter.MustSpace("price", "qty"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	defer b.Close()
	ch, err := b.SubscribeChan(1, filter.Range("price", 0, 10))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := b.Subscribe(2, filter.Range("price", 90, 100)); err != nil {
		t.Fatalf("subscribe producer: %v", err)
	}
	if err := b.UpdateFilter(1, filter.Range("price", 50, 60)); err != nil {
		t.Fatalf("UpdateFilter: %v", err)
	}
	if err := b.UpdateFilter(99, filter.Range("price", 0, 1)); err == nil {
		t.Fatalf("UpdateFilter on unknown id succeeded")
	}
	note, err := b.Publish(2, filter.Event{"price": 55, "qty": 1})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(note.Interested) != 1 || note.Interested[0] != 1 {
		t.Fatalf("interested = %v, want [1] (new filter)", note.Interested)
	}
	select {
	case e := <-ch:
		if e.Event["price"] != 55 {
			t.Fatalf("delivered %v", e.Event)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no delivery after filter update")
	}
	// The old filter must no longer match.
	note, err = b.Publish(2, filter.Event{"price": 5, "qty": 1})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(note.Interested) != 0 {
		t.Fatalf("interested = %v after moving away, want none", note.Interested)
	}
}

func BenchmarkRecover100k(b *testing.B) {
	// Recovery time from a 100k-subscription log: the EXPERIMENTS.md
	// numbers. Run with -benchtime=1x: each iteration builds a fresh
	// broker from the same store. Cold replay (pure log) vs snapshot.
	for _, mode := range []string{"cold-log", "snapshot"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			w, err := state.OpenWAL(dir)
			if err != nil {
				b.Fatalf("OpenWAL: %v", err)
			}
			seedBroker, err := NewCore(filter.MustSpace("price", "qty"), core.Params{MinFanout: 4, MaxFanout: 16},
				WithStore(w), WithGateways(64), WithSnapshotEvery(0))
			if err != nil {
				b.Fatalf("NewCore: %v", err)
			}
			for i := 1; i <= 100_000; i++ {
				lo := float64(i % 1000)
				if err := seedBroker.Subscribe(core.ProcID(i), filter.Range("price", lo, lo+10)); err != nil {
					b.Fatalf("subscribe %d: %v", i, err)
				}
			}
			if mode == "snapshot" {
				if err := seedBroker.Checkpoint(); err != nil {
					b.Fatalf("Checkpoint: %v", err)
				}
			}
			seedBroker.Close()
			w.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rw, err := state.OpenWAL(dir)
				if err != nil {
					b.Fatalf("reopen: %v", err)
				}
				nb, err := NewCore(filter.MustSpace("price", "qty"), core.Params{MinFanout: 4, MaxFanout: 16},
					WithStore(rw), WithGateways(64), WithSnapshotEvery(0))
				if err != nil {
					b.Fatalf("NewCore: %v", err)
				}
				st, err := nb.Recover()
				if err != nil {
					b.Fatalf("Recover: %v", err)
				}
				if st.Subscribers != 100_000 {
					b.Fatalf("recovered %d, want 100000", st.Subscribers)
				}
				b.StopTimer()
				nb.Close()
				rw.Close()
				b.StartTimer()
			}
		})
	}
}

func TestBrokerRecoverTornWAL(t *testing.T) {
	// A daemon crash can tear the final journal record mid-write. The
	// store truncates the torn tail on reopen; the broker must recover
	// every fully-written subscription and route without false
	// negatives — losing only the op whose Append never returned.
	dir := t.TempDir()
	w, err := state.OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	b := newDurableBroker(t, w)
	for i := 1; i <= 25; i++ {
		if err := b.Subscribe(core.ProcID(i), filter.Range("price", float64(i), float64(i+5))); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	want := subscriberSet(b)
	b.Close()
	w.Close()

	// Tear the log: a record header promising more bytes than follow,
	// exactly what a crash mid-write leaves behind.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open log for tearing: %v", err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x40, 0x01, 0x01, 0xde, 0xad}); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	rw, err := state.OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen torn WAL: %v", err)
	}
	if torn := rw.Stats().TornBytes; torn == 0 {
		t.Fatalf("reopen did not report torn bytes")
	}
	b2 := newDurableBroker(t, rw)
	st, err := b2.Recover()
	if err != nil {
		t.Fatalf("Recover over torn log: %v", err)
	}
	defer b2.Close()
	defer rw.Close()
	if st.Subscribers != len(want) {
		t.Fatalf("recovered %d subscribers from torn log, want %d", st.Subscribers, len(want))
	}
	got := subscriberSet(b2)
	for id, fs := range want {
		if got[id] != fs {
			t.Fatalf("subscriber %d: %q want %q", id, got[id], fs)
		}
	}
	note, err := b2.Publish(3, filter.Event{"price": 10, "qty": 0})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(note.FalseNegatives) != 0 {
		t.Fatalf("false negatives after torn-tail recovery: %v", note.FalseNegatives)
	}
}
