package pubsub

// The adaptive gateway tier. Under WithGatewayPolicy the pool is no
// longer a fixed hash ring: subscriptions are *placed* on the gateway
// whose MBR-union they enlarge least (the R-tree ChooseLeaf heuristic
// lifted one level, so gateways stay spatially coherent and the
// top-level routing tree actually prunes), a gateway past its target
// load splits like an R-tree node (half its entries move to a fresh or
// idle gateway that joins the overlay with the moved group's union),
// and a gateway that falls far below target drains its entries into the
// rest of the pool and retires from the overlay.
//
// Lock order, broker-wide: poolMu -> gateway.mu -> (engMu | routeMu).
// Every pool mutation (placement, split, drain, retire) holds poolMu
// exclusively, which is also what makes reading another gateway's
// union/load without its lock safe here: the only writers that do not
// hold poolMu exclusively hold it shared (UpdateFilter), and shared and
// exclusive cannot coexist. Entry moves take both affected gateways'
// write locks; only poolMu writers ever hold two gateway locks, so the
// two-lock acquisition cannot deadlock against any other path.

import (
	"cmp"
	"errors"
	"slices"

	"drtree/internal/core"
	"drtree/internal/geom"
	"drtree/internal/rtree"
	"drtree/internal/split"
)

// errPoolEmpty guards the impossible case of placement over a pool the
// policy floor (min >= 1) should make non-empty.
var errPoolEmpty = errors.New("pubsub: gateway pool is empty")

// gatewayPolicy is the adaptive pool configuration (WithGatewayPolicy).
type gatewayPolicy struct {
	target int // subscriptions per gateway before it splits
	min    int // pool floor (never drains below)
	max    int // pool ceiling (never grows past)
}

// lowWater is the drain threshold: a gateway at or below it (and above
// zero) hands its entries to the rest of the pool and retires.
func (p *gatewayPolicy) lowWater() int {
	return max(1, p.target/4)
}

// newGateway builds an empty gateway for pool offset off.
func (b *Broker) newGateway(off int) *gateway {
	return &gateway{
		procID:  b.gwBase + core.ProcID(off),
		off:     off,
		subs:    make(map[core.ProcID]subscription),
		entries: make(map[string]*matchEntry),
		// Wide nodes + the R*-style split keep sibling overlap (and so
		// point-query node visits) low as the index grows: measured
		// ~1.7x visit growth for a 100x subscriber growth, the best of
		// the swept (m, M, policy) combinations.
		index: rtree.MustNew(8, 32, split.RStar{}),
	}
}

// growPoolLocked appends a fresh gateway at the next offset, journaling
// the pool change. poolMu held exclusively.
func (b *Broker) growPoolLocked() (*gateway, error) {
	off := b.nextOff
	if err := b.journalPoolOp(poolGrow, off); err != nil {
		return nil, err
	}
	b.nextOff++
	gw := b.newGateway(off)
	b.gws = append(b.gws, gw)
	b.byProc[gw.procID] = gw
	return gw, nil
}

// retireLocked removes an empty gateway from the pool. The gateway must
// hold no subscriptions; if it is still an overlay member (a drain
// whose Leave failed) it stays in the pool as idle instead. poolMu held
// exclusively, gw.mu not held.
func (b *Broker) retireLocked(gw *gateway) {
	gw.mu.Lock()
	if len(gw.subs) > 0 {
		gw.mu.Unlock()
		return
	}
	if gw.joined {
		b.engMu.Lock()
		err := b.eng.Leave(gw.procID)
		b.engMu.Unlock()
		if err != nil {
			gw.mu.Unlock()
			b.markIdleLocked(gw)
			return
		}
		gw.joined = false
	}
	gw.mu.Unlock()
	if err := b.journalPoolOp(poolRetire, gw.off); err != nil {
		// The retirement stands in memory either way; the journal is
		// behind (an extra idle gateway after recovery, nothing worse).
		_ = err
	}
	if i := slices.Index(b.gws, gw); i >= 0 {
		b.gws = slices.Delete(b.gws, i, i+1)
	}
	delete(b.byProc, gw.procID)
	b.unmarkIdleLocked(gw)
}

// markIdleLocked records gw as load-free and placeable.
func (b *Broker) markIdleLocked(gw *gateway) {
	if !slices.Contains(b.idle, gw) {
		b.idle = append(b.idle, gw)
	}
}

func (b *Broker) unmarkIdleLocked(gw *gateway) {
	if i := slices.Index(b.idle, gw); i >= 0 {
		b.idle = slices.Delete(b.idle, i, i+1)
	}
}

// fitScore orders placement candidates: least union enlargement, then
// smallest union, then lightest load, then lowest offset. The first two
// are the R-tree ChooseLeaf tie-break, the third spreads equal-cost
// load, the last makes placement deterministic.
type fitScore struct {
	enl, area float64
	load, off int
}

func (gw *gateway) score(r geom.Rect) fitScore {
	return fitScore{enl: gw.union.Enlargement(r), area: gw.union.Area(), load: len(gw.subs), off: gw.off}
}

func (a fitScore) better(b fitScore) bool {
	if a.enl != b.enl {
		return a.enl < b.enl
	}
	if a.area != b.area {
		return a.area < b.area
	}
	if a.load != b.load {
		return a.load < b.load
	}
	return a.off < b.off
}

// bestFitLocked picks the best gateway for rect among the routing
// tree's ChooseLeaf candidates plus every idle gateway, excluding
// skip. Falls back to a full pool scan when that set is empty (route
// empty, all candidates excluded). poolMu held exclusively.
func (b *Broker) bestFitLocked(rect geom.Rect, skip *gateway) *gateway {
	b.routeMu.RLock()
	leaf := b.route.ChooseEntries(rect)
	b.routeMu.RUnlock()
	cands := make([]*gateway, 0, len(leaf)+len(b.idle))
	for _, d := range leaf {
		cands = append(cands, d.(*gateway))
	}
	cands = append(cands, b.idle...) // idle unions are empty: disjoint from the route
	best := pickBest(cands, rect, skip)
	if best == nil {
		best = pickBest(b.gws, rect, skip)
	}
	return best
}

func pickBest(cands []*gateway, rect geom.Rect, skip *gateway) *gateway {
	var best *gateway
	var bestScore fitScore
	for _, g := range cands {
		if g == skip || g == nil {
			continue
		}
		if s := g.score(rect); best == nil || s.better(bestScore) {
			best, bestScore = g, s
		}
	}
	return best
}

// placeLocked chooses the gateway for a new subscription rectangle,
// splitting a full winner first when the pool may still grow. poolMu
// held exclusively.
func (b *Broker) placeLocked(rect geom.Rect) (*gateway, error) {
	best := b.bestFitLocked(rect, nil)
	if best == nil {
		return nil, errPoolEmpty
	}
	if len(best.subs) >= b.policy.target && len(b.gws) < b.policy.max {
		other, err := b.splitGatewayLocked(best)
		if err != nil {
			return nil, err
		}
		if other != nil && other.score(rect).better(best.score(rect)) {
			best = other
		}
	}
	return best, nil
}

// splitGatewayLocked splits src's entry set in two with a median cut
// along its union's longest dimension: the upper half's entries and
// subscribers move to an idle or fresh gateway, which joins the overlay
// with exactly the moved group's union. A median cut is O(k log k) in
// the entry count where the match indexes' R* splitter is quadratic —
// fine at node fan-out (~32 rectangles), ruinous at gateway scale
// (thousands per split) — and keeps both halves spatially coherent,
// which is all the top-level routing tree needs to prune. Returns the
// new gateway, or nil when src cannot usefully split (fewer than two
// unique rectangles, or the overlay refused the new member). poolMu
// held exclusively; takes both gateway locks.
func (b *Broker) splitGatewayLocked(src *gateway) (*gateway, error) {
	src.mu.Lock()
	defer src.mu.Unlock()
	if len(src.entries) < 2 {
		return nil, nil
	}
	keys := make([]string, 0, len(src.entries))
	for k := range src.entries {
		keys = append(keys, k)
	}
	slices.Sort(keys) // map order is random; the split must be deterministic
	rects := make([]geom.Rect, len(keys))
	for i, k := range keys {
		rects[i] = src.entries[k].rect
	}
	right := medianCutUpper(rects)
	var dst *gateway
	fresh := false
	if n := len(b.idle); n > 0 {
		dst = b.idle[n-1]
	} else {
		var err error
		if dst, err = b.growPoolLocked(); err != nil {
			return nil, err
		}
		fresh = true
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	var moveU geom.Rect
	for _, i := range right {
		moveU = moveU.Union(rects[i])
	}
	// Engine first: the new member must be routable before any entry
	// moves. A refusal aborts the split; a fresh gateway stays as idle
	// capacity for the next attempt. An idle gateway can linger joined
	// (a drain whose Leave the engine refused) with a stale filter, so
	// it gets a filter move, not a join.
	if dst.joined {
		if err := b.engUpdateFilter(dst, moveU); err != nil {
			return nil, nil
		}
	} else {
		if err := b.engJoin(dst.procID, moveU); err != nil {
			if fresh {
				b.markIdleLocked(dst)
			}
			return nil, nil
		}
		dst.joined = true
	}
	oldU := src.union
	var jerr error
	for _, i := range right {
		k := keys[i]
		e := src.entries[k]
		if err := dst.index.Insert(e.rect, e); err != nil {
			continue // entry stays on src; dst's filter is merely loose
		}
		delete(src.entries, k)
		src.index.Delete(e.rect, e)
		dst.entries[k] = e
		for id, se := range e.subs {
			delete(src.subs, id)
			dst.subs[id] = subscription{f: se.f, key: k, cons: se.cons}
			b.assign[id] = dst
			if err := b.journalAssign(id, dst.off); err != nil && jerr == nil {
				jerr = err
			}
		}
	}
	src.unionRebuild()
	dst.unionRebuild()
	b.routeReplace(src, src.union)
	b.routeReplace(dst, dst.union)
	b.unmarkIdleLocked(dst)
	// Shrink src's overlay filter to its surviving union. Best-effort:
	// a refused move leaves a loose filter (false positives only), and
	// the double-failure path inside engUpdateFilter keeps membership
	// accounting honest.
	if src.joined && !src.union.Equal(oldU) {
		_ = b.engUpdateFilter(src, src.union)
	}
	return dst, jerr
}

// medianCutUpper returns the indexes of the upper half of rects when
// sorted by center along their union's longest dimension. Both halves
// are non-empty for len(rects) >= 2, and the result is deterministic:
// equal centers fall back to the caller's (sorted-key) order.
func medianCutUpper(rects []geom.Rect) []int {
	u := rects[0]
	for _, r := range rects[1:] {
		u = u.Union(r)
	}
	axis := 0
	for d := 1; d < u.Dims(); d++ {
		if u.Side(d) > u.Side(axis) {
			axis = d
		}
	}
	idx := make([]int, len(rects))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		ca := rects[a].Lo(axis) + rects[a].Hi(axis)
		cb := rects[b].Lo(axis) + rects[b].Hi(axis)
		if c := cmp.Compare(ca, cb); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	return idx[len(idx)/2:]
}

// shrinkPoolLocked runs the retire/drain policy after gw lost a
// subscription. poolMu held exclusively, gw.mu not held.
func (b *Broker) shrinkPoolLocked(gw *gateway) {
	load := len(gw.subs)
	if load == 0 {
		if len(b.gws) > b.policy.min {
			b.retireLocked(gw)
		} else {
			b.markIdleLocked(gw)
		}
		return
	}
	if load > b.policy.lowWater() || len(b.gws) <= b.policy.min {
		return
	}
	b.drainLocked(gw)
}

// drainLocked moves every entry of an underfull gateway to its best-fit
// peer, then retires the emptied gateway. Engine-first per entry: a
// refusal strands the remaining entries on gw (it simply stays in the
// pool). poolMu held exclusively; takes gw's and each target's lock.
func (b *Broker) drainLocked(gw *gateway) {
	gw.mu.Lock()
	keys := make([]string, 0, len(gw.entries))
	for k := range gw.entries {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e := gw.entries[k]
		tgt := b.bestFitLocked(e.rect, gw)
		if tgt == nil {
			break
		}
		tgt.mu.Lock()
		if !b.moveEntryLocked(gw, tgt, k, e) {
			tgt.mu.Unlock()
			break
		}
		b.unmarkIdleLocked(tgt)
		tgt.mu.Unlock()
	}
	drained := len(gw.entries) == 0
	if drained {
		if gw.joined {
			b.engMu.Lock()
			err := b.eng.Leave(gw.procID)
			b.engMu.Unlock()
			if err == nil {
				gw.joined = false
			}
		}
		gw.unionReset()
		b.routeReplace(gw, geom.Rect{})
	} else {
		gw.unionRebuild()
		b.routeReplace(gw, gw.union)
		if gw.joined {
			_ = b.engUpdateFilter(gw, gw.union)
		}
	}
	gw.mu.Unlock()
	if drained {
		if len(b.gws) > b.policy.min {
			b.retireLocked(gw)
		} else {
			b.markIdleLocked(gw)
		}
	}
}

// moveEntryLocked relocates one match entry (and its subscribers) from
// src to tgt, growing tgt's overlay filter first. Both gateway locks
// and poolMu held. Reports whether the move committed.
func (b *Broker) moveEntryLocked(src, tgt *gateway, key string, e *matchEntry) bool {
	existing := tgt.entries[key]
	if existing == nil {
		target := tgt.unionPeekAdd(e.rect)
		switch {
		case !tgt.joined:
			if err := b.engJoin(tgt.procID, target); err != nil {
				return false
			}
			tgt.joined = true
		case !tgt.union.Contains(e.rect):
			if err := b.engUpdateFilter(tgt, target); err != nil {
				return false
			}
		}
		if err := tgt.index.Insert(e.rect, e); err != nil {
			return false
		}
		tgt.entries[key] = e
		tgt.unionCommitAdd(e.rect)
		b.routeReplace(tgt, tgt.union)
	}
	delete(src.entries, key)
	src.index.Delete(e.rect, e)
	for id, se := range e.subs {
		delete(src.subs, id)
		tgt.subs[id] = subscription{f: se.f, key: key, cons: se.cons}
		b.assign[id] = tgt
		_ = b.journalAssign(id, tgt.off)
		if existing != nil {
			existing.subs[id] = se
		}
	}
	return true
}

// routeReplace re-registers gw in the top-level routing tree under
// newRect (empty = remove). The registered rectangle is remembered so
// the later delete matches exactly; a numerically equal union keeps its
// existing registration. Called with gw.mu held (or during Recover's
// single-threaded rebuild).
func (b *Broker) routeReplace(gw *gateway, newRect geom.Rect) {
	if gw.routeRect.IsEmpty() && newRect.IsEmpty() {
		return
	}
	if !gw.routeRect.IsEmpty() && !newRect.IsEmpty() && gw.routeRect.Equal(newRect) {
		return
	}
	b.routeMu.Lock()
	defer b.routeMu.Unlock()
	if !gw.routeRect.IsEmpty() {
		b.route.Delete(gw.routeRect, gw)
	}
	if !newRect.IsEmpty() {
		if err := b.route.Insert(newRect, gw); err != nil {
			// Cannot happen for a non-empty rect of the right dimension;
			// leave the gateway unrouted (classify would miss it, but the
			// linear fallback in bestFit still places onto it).
			gw.routeRect = geom.Rect{}
			return
		}
	}
	gw.routeRect = newRect
}

// poolOffsets returns the pool's stable offsets in ascending order.
// poolMu held (shared suffices).
func (b *Broker) poolOffsetsLocked() []int {
	offs := make([]int, len(b.gws))
	for i, gw := range b.gws {
		offs[i] = gw.off
	}
	slices.SortFunc(offs, func(a, b int) int { return cmp.Compare(a, b) })
	return offs
}
