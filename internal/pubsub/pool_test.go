package pubsub

// Tests for the adaptive gateway tier: the incremental MBR-union
// bookkeeping (bit-identical to the naive fold), pool growth and
// shrinkage under load, routing-tree pruning, crash recovery of the
// pool shape, and the drift acceptance bound (contained filter moves
// never pay a full re-union).

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/workload"
)

// rectFilter builds the 2-d range filter covering r on axes x/y.
func rectFilter(r geom.Rect) filter.Filter {
	return filter.Range("x", r.Lo(0), r.Hi(0)).And(filter.Range("y", r.Lo(1), r.Hi(1)))
}

// bitsEqual compares two rectangles bit for bit (±0 are different).
func bitsEqual(a, b geom.Rect) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.IsEmpty() == b.IsEmpty()
	}
	if a.Dims() != b.Dims() {
		return false
	}
	for i := 0; i < a.Dims(); i++ {
		if math.Float64bits(a.Lo(i)) != math.Float64bits(b.Lo(i)) ||
			math.Float64bits(a.Hi(i)) != math.Float64bits(b.Hi(i)) {
			return false
		}
	}
	return true
}

// assertUnionOracle re-derives every gateway's union and boundary
// counts from scratch and fails if the incrementally maintained state
// diverges — the invariant the whole of union.go exists to keep.
func assertUnionOracle(t *testing.T, b *Broker, step string) {
	t.Helper()
	for _, gw := range b.poolSnapshot() {
		gw.mu.RLock()
		fold := gw.recomputeUnion()
		if !bitsEqual(fold, gw.union) {
			gw.mu.RUnlock()
			t.Fatalf("%s: gateway %d union %v not bit-identical to fold %v", step, gw.procID, gw.union, fold)
		}
		if !fold.IsEmpty() {
			d := fold.Dims()
			lo, hi := make([]int, d), make([]int, d)
			for _, e := range gw.entries {
				for i := 0; i < d; i++ {
					if e.rect.Lo(i) == fold.Lo(i) {
						lo[i]++
					}
					if e.rect.Hi(i) == fold.Hi(i) {
						hi[i]++
					}
				}
			}
			for i := 0; i < d; i++ {
				if lo[i] != gw.loAt[i] || hi[i] != gw.hiAt[i] {
					gw.mu.RUnlock()
					t.Fatalf("%s: gateway %d dim %d attainment (%d,%d), oracle (%d,%d)",
						step, gw.procID, i, gw.loAt[i], gw.hiAt[i], lo[i], hi[i])
				}
			}
		}
		gw.mu.RUnlock()
	}
}

// TestUnionBitIdenticalToOracle drives a random subscribe/unsubscribe/
// UpdateFilter sequence — with equivalent-rectangle sharing and signed
// zeros in the coordinate pool — and asserts after every operation that
// the incremental union equals the naive full re-union fold bitwise on
// every gateway, in both fixed and adaptive pool modes.
func TestUnionBitIdenticalToOracle(t *testing.T) {
	negZero := math.Copysign(0, -1)
	// A small discrete coordinate pool maximizes shared boundaries,
	// equivalent rectangles, and zero-valued bounds.
	coords := []float64{-8, -3, negZero, 0, 1, 2.5, 7, 12}
	for _, mode := range []struct {
		name string
		opt  Option
	}{
		{"fixed", WithGateways(2)},
		{"policy", WithGatewayPolicy(6, 1, 8)},
	} {
		t.Run(mode.name, func(t *testing.T) {
			b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4}, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			rng := rand.New(rand.NewPCG(0xBEEF, uint64(len(mode.name))))
			randRect := func() geom.Rect {
				pick := func() (float64, float64) {
					a, b := coords[rng.IntN(len(coords))], coords[rng.IntN(len(coords))]
					if b < a {
						a, b = b, a
					}
					return a, b
				}
				x1, x2 := pick()
				y1, y2 := pick()
				return geom.R2(x1, y1, x2, y2)
			}
			live := map[core.ProcID]bool{}
			for step := 0; step < 600; step++ {
				id := core.ProcID(1 + rng.IntN(40))
				var opErr error
				var op string
				switch {
				case !live[id]:
					op = "subscribe"
					if opErr = b.Subscribe(id, rectFilter(randRect())); opErr == nil {
						live[id] = true
					}
				case rng.IntN(3) == 0:
					op = "unsubscribe"
					if opErr = b.Unsubscribe(id); opErr == nil {
						delete(live, id)
					}
				default:
					op = "update"
					opErr = b.UpdateFilter(id, rectFilter(randRect()))
				}
				if opErr != nil {
					t.Fatalf("step %d: %s(%d): %v", step, op, id, opErr)
				}
				assertUnionOracle(t, b, fmt.Sprintf("step %d after %s(%d)", step, op, id))
			}
		})
	}
}

// TestPolicyOptionValidation covers WithGatewayPolicy's argument checks
// and its mutual exclusion with WithGateways.
func TestPolicyOptionValidation(t *testing.T) {
	sp := filter.MustSpace("x", "y")
	params := core.Params{MinFanout: 2, MaxFanout: 4}
	for _, bad := range [][3]int{{0, 1, 1}, {4, 0, 1}, {4, 3, 2}} {
		if _, err := NewCore(sp, params, WithGatewayPolicy(bad[0], bad[1], bad[2])); err == nil {
			t.Errorf("WithGatewayPolicy%v must be rejected", bad)
		}
	}
	if _, err := NewCore(sp, params, WithGateways(4), WithGatewayPolicy(8, 2, 16)); err == nil {
		t.Error("WithGateways + WithGatewayPolicy must be rejected")
	}
	if _, err := NewCore(sp, params, WithGatewayPolicy(8, 2, 16), WithGateways(4)); err == nil {
		t.Error("WithGatewayPolicy + WithGateways must be rejected (either order)")
	}
}

// TestAdaptivePoolGrowsAndShrinks certifies the pool's load response:
// a subscribe wave splits gateways until loads sit near the target, the
// overlay stays legal with engine filters equal to the broker unions,
// classification stays exact, and a mass unsubscribe drains the pool
// back toward its floor without stranding the survivors.
func TestAdaptivePoolGrowsAndShrinks(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithGatewayPolicy(10, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Gateways() != 2 {
		t.Fatalf("fresh pool has %d gateways, want the floor 2", b.Gateways())
	}
	rng := rand.New(rand.NewPCG(11, 7))
	w := workload.World{Size: 100}
	rects := workload.Subscriptions(rng, w, workload.Clustered, 300)
	for i, r := range rects {
		if err := b.Subscribe(core.ProcID(i+1), rectFilter(r)); err != nil {
			t.Fatalf("subscribe %d: %v", i+1, err)
		}
	}
	grown := b.Gateways()
	if grown <= 2 {
		t.Fatalf("pool did not grow under load: %d gateways for 300 subscribers at target 10", grown)
	}
	if grown > 64 {
		t.Fatalf("pool exceeded its ceiling: %d gateways", grown)
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("overlay illegal after growth: %v", err)
	}
	for _, st := range b.GatewayStats() {
		if !st.Joined {
			continue
		}
		f, ok := b.Engine().Filter(st.ProcID)
		if !ok || !f.Equal(st.Filter) {
			t.Fatalf("gateway %d: engine filter %v (ok=%v) != broker union %v", st.ProcID, f, ok, st.Filter)
		}
	}
	assertUnionOracle(t, b, "after growth")
	probe := func(stage string) {
		for k := 0; k < 40; k++ {
			ev := filter.Event{"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}
			n, err := b.Publish(core.ProcID(1+rng.IntN(20)), ev)
			if err != nil {
				t.Fatalf("%s probe %d: %v", stage, k, err)
			}
			if len(n.FalseNegatives) != 0 {
				t.Fatalf("%s probe %d: false negatives %v", stage, k, n.FalseNegatives)
			}
			if n.GatewayVisited < 0 || n.GatewayVisited > b.Gateways() {
				t.Fatalf("%s probe %d: GatewayVisited %d outside [0, %d]", stage, k, n.GatewayVisited, b.Gateways())
			}
		}
	}
	probe("grown")
	// Mass unsubscribe: everyone but the first 20 leaves.
	for i := 20; i < len(rects); i++ {
		if err := b.Unsubscribe(core.ProcID(i + 1)); err != nil {
			t.Fatalf("unsubscribe %d: %v", i+1, err)
		}
	}
	shrunk := b.Gateways()
	if shrunk >= grown {
		t.Fatalf("pool did not shrink after mass unsubscribe: %d gateways (was %d)", shrunk, grown)
	}
	if shrunk < 2 {
		t.Fatalf("pool fell below its floor: %d gateways", shrunk)
	}
	if b.Len() != 20 {
		t.Fatalf("Len = %d after churn, want 20", b.Len())
	}
	for i := 1; i <= 20; i++ {
		if b.GatewayOf(core.ProcID(i)) == core.NoProc {
			t.Fatalf("survivor %d lost its gateway assignment", i)
		}
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("overlay illegal after shrink: %v", err)
	}
	assertUnionOracle(t, b, "after shrink")
	probe("shrunk")
}

// TestRoutePrunesGateways certifies the two-level classification: with
// a spatially coherent (policy-placed) pool, an event's point query on
// the routing tree must exclude most gateways, and the excluded ones
// are never probed (GatewayVisited stays well under the pool size).
func TestRoutePrunesGateways(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithGatewayPolicy(8, 2, 128))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rng := rand.New(rand.NewPCG(5, 99))
	w := workload.World{Size: 1000}
	// Small uniform rectangles: spatial placement keeps per-gateway
	// unions compact, so most unions miss most points.
	rects := workload.Subscriptions(rng, w, workload.Uniform, 400)
	for i, r := range rects {
		if err := b.Subscribe(core.ProcID(i+1), rectFilter(r)); err != nil {
			t.Fatalf("subscribe %d: %v", i+1, err)
		}
	}
	pool := b.Gateways()
	if pool < 16 {
		t.Fatalf("pool only grew to %d gateways; the pruning assertion needs a real pool", pool)
	}
	totalVisited, probes := 0, 0
	for k := 0; k < 100; k++ {
		ev := filter.Event{"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}
		n, err := b.Publish(core.ProcID(1+rng.IntN(400)), ev)
		if err != nil {
			t.Fatalf("probe %d: %v", k, err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("probe %d: false negatives %v", k, n.FalseNegatives)
		}
		totalVisited += n.GatewayVisited
		probes++
	}
	avg := float64(totalVisited) / float64(probes)
	if avg > float64(pool)/2 {
		t.Fatalf("routing tree is not pruning: %.1f gateways visited per event across a %d-gateway pool", avg, pool)
	}
	t.Logf("pool %d gateways, %.2f visited per event", pool, avg)
}

// TestPolicyRecoverMidGrowth kills a durable adaptive broker after its
// pool has grown and partially drained, then certifies that Recover
// rebuilds the exact pre-crash pool (count and membership) and the
// exact per-subscriber gateway assignment — and that a second recovery
// from the same store reproduces the same shape again.
func TestPolicyRecoverMidGrowth(t *testing.T) {
	for name, mk := range storesForRecovery(t) {
		t.Run(name, func(t *testing.T) {
			s, reopen := mk()
			b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
				WithStore(s), WithGatewayPolicy(8, 2, 64))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(21, 42))
			w := workload.World{Size: 500}
			rects := workload.Subscriptions(rng, w, workload.Clustered, 120)
			for i, r := range rects {
				if err := b.Subscribe(core.ProcID(i+1), rectFilter(r)); err != nil {
					t.Fatalf("subscribe %d: %v", i+1, err)
				}
				if i == 60 {
					// A checkpoint mid-growth: recovery must stitch the
					// snapshot pool with the journal suffix.
					if err := b.Checkpoint(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			// Partial drain: a block of unsubscribes forces retires/drains
			// so the journal holds pool-shrink records too.
			for i := 30; i < 90; i++ {
				if err := b.Unsubscribe(core.ProcID(i + 1)); err != nil {
					t.Fatalf("unsubscribe %d: %v", i+1, err)
				}
			}
			snapshot := func(b *Broker) (int, map[core.ProcID]core.ProcID) {
				assign := map[core.ProcID]core.ProcID{}
				for i := range rects {
					id := core.ProcID(i + 1)
					if gw := b.GatewayOf(id); gw != core.NoProc {
						assign[id] = gw
					}
				}
				return b.Gateways(), assign
			}
			wantPool, wantAssign := snapshot(b)
			if wantPool <= 2 {
				t.Fatalf("pool never grew (%d gateways); the test needs growth records", wantPool)
			}
			b.Close()

			check := func(b2 *Broker, pass string) {
				gotPool, gotAssign := snapshot(b2)
				if gotPool != wantPool {
					t.Fatalf("%s: recovered %d gateways, pre-crash had %d", pass, gotPool, wantPool)
				}
				if len(gotAssign) != len(wantAssign) {
					t.Fatalf("%s: recovered %d assignments, pre-crash had %d", pass, len(gotAssign), len(wantAssign))
				}
				for id, want := range wantAssign {
					if gotAssign[id] != want {
						t.Fatalf("%s: subscriber %d recovered onto gateway %d, was on %d", pass, id, gotAssign[id], want)
					}
				}
				assertUnionOracle(t, b2, pass)
				if err := b2.Engine().CheckLegal(); err != nil {
					t.Fatalf("%s: recovered overlay illegal: %v", pass, err)
				}
			}
			s2 := reopen()
			b2, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
				WithStore(s2), WithGatewayPolicy(8, 2, 64))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b2.Recover(); err != nil {
				t.Fatalf("first Recover: %v", err)
			}
			check(b2, "first recovery")
			b2.Close()

			s3 := reopen()
			b3, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
				WithStore(s3), WithGatewayPolicy(8, 2, 64))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b3.Recover(); err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			check(b3, "second recovery")
			b3.Close()
		})
	}
}

// TestDriftNoFullReunions is the drift acceptance bound: at 100k
// subscribers whose interest regions random-walk inside their gateway
// unions, every UpdateFilter must take the O(d) incremental path — the
// FullReunions counters stay exactly flat — and classification stays
// exact (zero false negatives) before and after the drift tick.
func TestDriftNoFullReunions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100k-subscriber broker")
	}
	const (
		gateways = 32
		subs     = 100_000
	)
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithGateways(gateways))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	w := workload.DefaultWorld()
	rng := rand.New(rand.NewPCG(2026, 808))
	// Anchor subscribers 1..32 (one per gateway under the hash
	// assignment) hold a rectangle slightly larger than the world, so
	// every gateway union strictly contains the world and a drifted
	// rectangle clamped to a world edge still attains no union boundary.
	anchor := rectFilter(geom.R2(-1, -1, w.Size+1, w.Size+1))
	for i := 1; i <= gateways; i++ {
		if err := b.Subscribe(core.ProcID(i), anchor); err != nil {
			t.Fatalf("anchor %d: %v", i, err)
		}
	}
	rects := workload.Subscriptions(rng, w, workload.Uniform, subs)
	for i, r := range rects {
		if err := b.Subscribe(core.ProcID(gateways+i+1), rectFilter(r)); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	reunions := func() uint64 {
		var n uint64
		for _, st := range b.GatewayStats() {
			n += st.FullReunions
		}
		return n
	}
	probe := func(stage string) {
		for k := 0; k < 50; k++ {
			ev := filter.Event{"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}
			n, err := b.Publish(core.ProcID(1+rng.IntN(gateways)), ev)
			if err != nil {
				t.Fatalf("%s probe %d: %v", stage, k, err)
			}
			if len(n.FalseNegatives) != 0 {
				t.Fatalf("%s probe %d: false negatives %v", stage, k, n.FalseNegatives)
			}
		}
	}
	probe("pre-drift")
	before := reunions()
	drifted := workload.DriftRects(rng, w, rects, 0.01)
	for i, r := range drifted {
		if err := b.UpdateFilter(core.ProcID(gateways+i+1), rectFilter(r)); err != nil {
			t.Fatalf("drift move %d: %v", i, err)
		}
	}
	if after := reunions(); after != before {
		t.Fatalf("drift tick paid %d full re-unions (counter %d -> %d); contained moves must be O(d)",
			after-before, before, after)
	}
	probe("post-drift")
	assertUnionOracle(t, b, "post-drift")
}

// TestFlashCrowdChurnHammer drives an adaptive-pool broker from many
// goroutines at once through a flash-crowd burst: churners pile near-
// identical subscriptions onto one hot spot (forcing splits) and rip
// them back out (forcing drains and retires) while publishers stream
// events into the crowd and readers walk the stats surfaces. Run under
// -race in CI; the assertions here are liveness and sanity, the
// detector certifies the pool/route/gateway lock discipline.
func TestFlashCrowdChurnHammer(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4},
		WithGatewayPolicy(12, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	w := workload.World{Size: 100}
	const pinned = 8
	for i := 1; i <= pinned; i++ {
		r := geom.R2(float64(i*10-10), 0, float64(i*10), w.Size)
		if err := b.Subscribe(core.ProcID(i), rectFilter(r)); err != nil {
			t.Fatal(err)
		}
	}
	const (
		churners   = 4
		publishers = 3
		ops        = 150
	)
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0xC0FFEE))
			crowd := workload.FlashCrowdRects(rng, w, ops)
			base := core.ProcID(1000 + c*10000)
			for k := 0; k < ops; k++ {
				id := base + core.ProcID(k%23)
				if err := b.Subscribe(id, rectFilter(crowd[k])); err == nil {
					switch rng.IntN(3) {
					case 0:
						if err := b.Fail(id); err != nil {
							t.Errorf("churner %d: fail %d: %v", c, id, err)
							return
						}
					case 1:
						if err := b.UpdateFilter(id, rectFilter(crowd[(k+7)%ops])); err != nil {
							t.Errorf("churner %d: update %d: %v", c, id, err)
							return
						}
						if err := b.Unsubscribe(id); err != nil {
							t.Errorf("churner %d: unsubscribe %d after update: %v", c, id, err)
							return
						}
					default:
						if err := b.Unsubscribe(id); err != nil {
							t.Errorf("churner %d: unsubscribe %d: %v", c, id, err)
							return
						}
					}
				}
			}
		}(c)
	}
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(p), 0xF1A5))
			producer := core.ProcID(1 + p%pinned)
			for k := 0; k < ops; k++ {
				ev := filter.Event{"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}
				if k%4 == 0 {
					evs := []filter.Event{ev, {"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}}
					if _, err := b.PublishBatch(producer, evs); err != nil {
						t.Errorf("publisher %d: batch: %v", p, err)
						return
					}
				} else if _, err := b.Publish(producer, ev); err != nil {
					t.Errorf("publisher %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < ops; k++ {
			_ = b.Gateways()
			_ = b.Len()
			for _, st := range b.GatewayStats() {
				_ = st
			}
			_ = b.GatewayOf(core.ProcID(1))
		}
	}()
	wg.Wait()
	// The dust has settled: pinned subscribers intact, pool within
	// bounds, unions exact, overlay legal, classification exact again.
	if b.Len() < pinned {
		t.Fatalf("Len = %d, pinned %d subscribers must survive", b.Len(), pinned)
	}
	if g := b.Gateways(); g < 2 || g > 64 {
		t.Fatalf("pool escaped its bounds: %d gateways", g)
	}
	assertUnionOracle(t, b, "post-hammer")
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("overlay illegal after churn: %v", err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for k := 0; k < 30; k++ {
		ev := filter.Event{"x": rng.Float64() * w.Size, "y": rng.Float64() * w.Size}
		n, err := b.Publish(core.ProcID(1+rng.IntN(pinned)), ev)
		if err != nil {
			t.Fatalf("settled probe %d: %v", k, err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("settled probe %d: false negatives %v", k, n.FalseNegatives)
		}
	}
}
