package pubsub

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
)

// TestConcurrentBrokerHammer drives the sharded broker from many
// goroutines at once — publishers (single and batched), subscribe/
// unsubscribe churners and readers — and relies on the race detector
// (CI runs the suite with -race) to certify the shard locking. A core
// population of pinned subscribers guarantees every publisher keeps a
// registered producer for the whole run.
func TestConcurrentBrokerHammer(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	const pinned = 8
	for i := 1; i <= pinned; i++ {
		if err := b.SubscribeExpr(core.ProcID(i), fmt.Sprintf("x in [%d, %d] && y in [0, 100]", i*5, i*5+30)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		publishers = 4
		churners   = 4
		ops        = 150
	)
	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xF00))
			producer := core.ProcID(1 + w%pinned)
			for k := 0; k < ops; k++ {
				ev := filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
				if k%3 == 0 {
					evs := []filter.Event{ev, {"x": rng.Float64() * 100, "y": rng.Float64() * 100}}
					if _, err := b.PublishBatch(producer, evs); err != nil {
						t.Errorf("publisher %d: batch: %v", w, err)
						return
					}
				} else {
					if _, err := b.Publish(producer, ev); err != nil {
						t.Errorf("publisher %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xC0))
			// Disjoint ID ranges per churner: a churner only races its own
			// subscribers' lifecycle, never another goroutine's.
			base := core.ProcID(100 + w*1000)
			for k := 0; k < ops; k++ {
				id := base + core.ProcID(k%17)
				x := rng.Float64() * 80
				if err := b.SubscribeExpr(id, fmt.Sprintf("x in [%.2f, %.2f]", x, x+15)); err == nil {
					_ = b.Len()
					if rng.IntN(4) == 0 {
						if err := b.Fail(id); err != nil {
							t.Errorf("churner %d: fail %d: %v", w, id, err)
							return
						}
					} else if err := b.Unsubscribe(id); err != nil {
						t.Errorf("churner %d: unsubscribe %d: %v", w, id, err)
						return
					}
				}
			}
		}(w)
	}
	// A publisher whose producer is churned concurrently: the
	// registered-check/engine-call race must surface as the
	// producer-not-registered sentinel, never a raw engine error.
	const churnedProducer = core.ProcID(77)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < ops; k++ {
			if err := b.SubscribeExpr(churnedProducer, "x in [10, 40]"); err == nil {
				_ = b.Unsubscribe(churnedProducer)
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(0xD1CE, 0xF01))
		for k := 0; k < ops; k++ {
			ev := filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
			if _, err := b.PublishBatch(churnedProducer, []filter.Event{ev}); err != nil && !errors.Is(err, ErrProducerNotRegistered) {
				t.Errorf("churned producer: non-sentinel error: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if st := b.Repair(); !st.Converged {
		t.Fatalf("overlay did not stabilize after the hammer: %v", b.Engine().CheckLegal())
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("illegal configuration after concurrent churn: %v", err)
	}
	if got := b.Len(); got < pinned {
		t.Fatalf("Len = %d, want >= %d pinned subscribers", got, pinned)
	}
	// After quiescence the accuracy guarantees hold again.
	n, err := b.Publish(1, filter.Event{"x": 20, "y": 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.FalseNegatives) != 0 {
		t.Fatalf("false negatives after quiescence: %v", n.FalseNegatives)
	}
}

// TestPublishBatchMatchesSequential certifies at the broker layer what
// enginetest certifies at the engine layer: a batch notification stream
// equals the sequential one, event for event.
func TestPublishBatchMatchesSequential(t *testing.T) {
	mk := func() *Broker {
		b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(7, 7))
		for i := 1; i <= 60; i++ {
			x, y := rng.Float64()*80, rng.Float64()*80
			f := filter.Range("x", x, x+15).And(filter.Range("y", y, y+15))
			if err := b.Subscribe(core.ProcID(i), f); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	rng := rand.New(rand.NewPCG(8, 8))
	evs := make([]filter.Event, 32)
	for k := range evs {
		evs[k] = filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
	}

	seq := mk()
	var want []Notification
	for _, ev := range evs {
		n, err := seq.Publish(3, ev)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, n)
	}
	got, err := mk().PublishBatch(3, evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d notifications, want %d", len(got), len(want))
	}
	for k := range got {
		if fmt.Sprint(got[k]) != fmt.Sprint(want[k]) {
			t.Errorf("event %d: batch %+v, sequential %+v", k, got[k], want[k])
		}
	}
}

// TestPublishBatchErrors covers the batch entry points' validation.
func TestPublishBatchErrors(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if notes, err := b.PublishBatch(1, nil); err != nil || notes != nil {
		t.Errorf("empty batch: %v, %v", notes, err)
	}
	if _, err := b.PublishBatch(1, []filter.Event{{"x": 1}}); err == nil {
		t.Error("unregistered producer must error")
	}
	if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatch(1, []filter.Event{{"y": 1}}); err == nil {
		t.Error("event outside the space must error")
	}
}

// TestAdversarialConsumerHammer mixes adversarial consumer speeds —
// frozen (never returns), bursty (periodic long stalls), jittery
// (random pauses), a blocked-policy fast consumer and a channel
// consumer — with concurrent publishers and subscriber churn, under the
// race detector. The broker must stay live throughout: every publish
// completes, fast consumers keep receiving, and the frozen consumer's
// losses are visible in its delivery stats.
func TestAdversarialConsumerHammer(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	release := make(chan struct{})
	defer close(release)
	wide := filter.Range("x", 0, 100).And(filter.Range("y", 0, 100))

	var fastN, burstyN, jitteryN, blockedN atomic.Uint64
	// 1: frozen — enters the handler once and never returns.
	if err := b.SubscribeFunc(1, wide, func(Envelope) error { <-release; return nil },
		WithQueueDepth(8)); err != nil {
		t.Fatal(err)
	}
	// 2: fast.
	if err := b.SubscribeFunc(2, wide, func(Envelope) error { fastN.Add(1); return nil },
		WithQueueDepth(1<<14)); err != nil {
		t.Fatal(err)
	}
	// 3: bursty — stalls hard every 32nd envelope.
	if err := b.SubscribeFunc(3, wide, func(e Envelope) error {
		if burstyN.Add(1)%32 == 0 {
			time.Sleep(3 * time.Millisecond)
		}
		return nil
	}, WithQueueDepth(64), WithOverflowPolicy(CoalesceByFilter)); err != nil {
		t.Fatal(err)
	}
	// 4: jittery — random sub-millisecond pauses, with redelivery churn.
	jrng := rand.New(rand.NewPCG(4, 4)) // only touched by 4's drainer goroutine
	if err := b.SubscribeFunc(4, wide, func(e Envelope) error {
		time.Sleep(time.Duration(jrng.IntN(200)) * time.Microsecond)
		jitteryN.Add(1)
		if e.Attempt == 1 && jrng.IntN(8) == 0 {
			return fmt.Errorf("transient consumer failure")
		}
		return nil
	}, WithQueueDepth(256), WithAtLeastOnce(2)); err != nil {
		t.Fatal(err)
	}
	// 5: fast consumer under the Block policy — the only one allowed to
	// slow a publisher, and it keeps up, so publishers still finish.
	if err := b.SubscribeFunc(5, wide, func(Envelope) error { blockedN.Add(1); return nil },
		WithQueueDepth(1<<14), WithOverflowPolicy(Block)); err != nil {
		t.Fatal(err)
	}
	// 6: channel consumer drained by its own reader.
	ch, err := b.SubscribeChan(6, wide, WithQueueDepth(1024))
	if err != nil {
		t.Fatal(err)
	}
	var chanN atomic.Uint64
	chanDone := make(chan struct{})
	go func() {
		defer close(chanDone)
		for range ch {
			chanN.Add(1)
		}
	}()

	const (
		publishers = 4
		ops        = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xADE))
			producer := core.ProcID(2 + w%4) // 2..5: never the frozen one
			for k := 0; k < ops; k++ {
				ev := filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
				if k%4 == 0 {
					evs := []filter.Event{ev, {"x": rng.Float64() * 100, "y": rng.Float64() * 100}}
					if _, err := b.PublishBatch(producer, evs); err != nil {
						t.Errorf("publisher %d: batch: %v", w, err)
						return
					}
				} else if _, err := b.Publish(producer, ev); err != nil {
					t.Errorf("publisher %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Record-only churners race the consumer lifecycle paths.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xC1))
			base := core.ProcID(500 + w*1000)
			for k := 0; k < ops; k++ {
				id := base + core.ProcID(k%11)
				x := rng.Float64() * 80
				if err := b.SubscribeExpr(id, fmt.Sprintf("x in [%.2f, %.2f]", x, x+15)); err == nil {
					_ = b.DeliveryStats()
					_ = b.Unsubscribe(id)
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(publishers * ops * 5 / 4) // each publisher: ops/4 batches of 2 + 3*ops/4 singles
	waitUntil(t, "fast consumers draining", func() bool {
		return fastN.Load() == total && blockedN.Load() == total && chanN.Load() == total
	})
	frozen, ok := b.DeliveryStatsOf(1)
	if !ok || frozen.Dropped == 0 {
		t.Fatalf("frozen consumer stats = %+v (ok=%v), want visible drops", frozen, ok)
	}
	// The jittery drainer sleeps per envelope, so it lags the fast
	// consumers; give it the same bounded wait instead of a snapshot
	// (a wedged drainer still fails the deadline).
	waitUntil(t, "jittery at-least-once consumer delivering", func() bool {
		jit, _ := b.DeliveryStatsOf(4)
		return jit.Delivered > 0
	})
	if err := b.Unsubscribe(6); err != nil {
		t.Fatal(err)
	}
	<-chanDone
}
