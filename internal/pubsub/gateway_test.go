package pubsub

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/proto"
)

// TestGatewayPoolBoundsOverlay is the gateway layer's core claim: many
// subscribers, few overlay processes. 200 subscribers over an 8-gateway
// pool must produce an overlay of at most 8 processes while classifying
// with zero false negatives.
func TestGatewayPoolBoundsOverlay(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(8))
	if err != nil {
		t.Fatal(err)
	}
	if b.Gateways() != 8 {
		t.Fatalf("Gateways = %d", b.Gateways())
	}
	rng := rand.New(rand.NewPCG(3, 33))
	for i := 1; i <= 200; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		f := filter.Range("x", x, x+10).And(filter.Range("y", y, y+10))
		if err := b.Subscribe(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	if n := b.Engine().Len(); n > 8 {
		t.Fatalf("overlay has %d processes, want <= 8 gateways", n)
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("gateway overlay illegal: %v", err)
	}
	// Every gateway's overlay filter must equal the union of its local
	// subscription rectangles.
	for _, st := range b.GatewayStats() {
		if !st.Joined {
			continue
		}
		f, ok := b.Engine().Filter(st.ProcID)
		if !ok || !f.Equal(st.Filter) {
			t.Fatalf("gateway %d: engine filter %v (ok=%v), broker union %v", st.ProcID, f, ok, st.Filter)
		}
	}
	for k := 0; k < 50; k++ {
		ev := filter.Event{"x": rng.Float64() * 120, "y": rng.Float64() * 120}
		n, err := b.Publish(core.ProcID(1+rng.IntN(200)), ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("probe %d: false negatives %v", k, n.FalseNegatives)
		}
		if n.ScanVisited <= 0 {
			t.Fatalf("probe %d: no match-index scan recorded", k)
		}
	}
}

// TestDoubleSubscribeSameID certifies the duplicate-ID edge path: the
// second Subscribe of a live ID fails and leaves the first registration
// (and the gateway's overlay filter) untouched.
func TestDoubleSubscribeSameID(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	before := b.GatewayStats()
	if err := b.SubscribeExpr(1, "x in [50, 60]"); err == nil {
		t.Fatal("double Subscribe of the same ID must error")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after rejected duplicate", b.Len())
	}
	after := b.GatewayStats()
	for i := range before {
		if !before[i].Filter.Equal(after[i].Filter) || before[i].Subscribers != after[i].Subscribers {
			t.Fatalf("gateway %d changed by a rejected duplicate: %+v -> %+v", i, before[i], after[i])
		}
	}
	// The original subscription still classifies.
	n, err := b.Publish(1, filter.Event{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 1 || n.Interested[0] != 1 {
		t.Fatalf("Interested = %v", n.Interested)
	}
	// An event only inside the rejected filter must interest nobody.
	n, err = b.Publish(1, filter.Event{"x": 55})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 0 || len(n.FalseNegatives) != 0 {
		t.Fatalf("rejected filter leaked into matching: %+v", n)
	}
}

// TestUnsubscribeUnknownID certifies the unknown-ID edge paths.
func TestUnsubscribeUnknownID(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(42); err == nil {
		t.Error("unsubscribe of an unknown ID must error")
	}
	if err := b.Fail(42); err == nil {
		t.Error("fail of an unknown ID must error")
	}
	if err := b.Subscribe(0, filter.Range("x", 0, 1)); err == nil {
		t.Error("non-positive subscriber ID must error")
	}
	// Unsubscribing a once-valid ID twice: second call errors.
	if err := b.SubscribeExpr(7, "x in [0, 1]"); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(7); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(7); err == nil {
		t.Error("second unsubscribe of the same ID must error")
	}
}

// TestLastSubscriptionGatewayLeaves certifies that a gateway losing its
// last subscription leaves the overlay instead of lingering with a stale
// filter — and that the spot is reusable by a later subscriber.
func TestLastSubscriptionGatewayLeaves(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(4))
	if err != nil {
		t.Fatal(err)
	}
	// IDs 1, 2, 3 land on gateways 1, 2, 3; ID 5 shares gateway 1 with ID 1.
	for _, id := range []core.ProcID{1, 2, 3, 5} {
		if err := b.SubscribeExpr(id, fmt.Sprintf("x in [%d, %d]", id*10, id*10+5)); err != nil {
			t.Fatal(err)
		}
	}
	if n := b.Engine().Len(); n != 3 {
		t.Fatalf("overlay has %d processes, want 3 gateways", n)
	}
	// Gateway 3 empties: it must leave the overlay.
	if err := b.Unsubscribe(3); err != nil {
		t.Fatal(err)
	}
	if n := b.Engine().Len(); n != 2 {
		t.Fatalf("overlay has %d processes after last-subscription unsubscribe, want 2", n)
	}
	if _, ok := b.Engine().Filter(core.ProcID(4)); ok {
		t.Fatal("gateway 4 (pool slot 3) must not linger in the overlay")
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatalf("overlay illegal after gateway departure: %v", err)
	}
	// An event only subscriber 3 would have wanted reaches nobody and is
	// not a false negative.
	n, err := b.Publish(1, filter.Event{"x": 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 0 || len(n.FalseNegatives) != 0 || len(n.Received) != 0 {
		t.Fatalf("stale gateway filter leaked: %+v", n)
	}
	// Gateway 1 still has subscriber 5 after 1 leaves: it must stay, with
	// a shrunken filter.
	if err := b.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	if f, ok := b.Engine().Filter(core.ProcID(2)); !ok {
		t.Fatal("gateway with remaining subscriptions must stay joined")
	} else if want, _ := b.Space().Rect(filter.Range("x", 50, 55)); !f.Equal(want) {
		t.Fatalf("gateway filter %v did not shrink to remaining union %v", f, want)
	}
	// The vacated pool slot (ID 7 maps to slot 3, the gateway that left)
	// rejoins on the next subscription.
	if err := b.SubscribeExpr(7, "x in [70, 75]"); err != nil {
		t.Fatal(err)
	}
	if n := b.Engine().Len(); n != 3 {
		t.Fatalf("overlay has %d processes after re-join, want 3", n)
	}
	note, err := b.Publish(7, filter.Event{"x": 72})
	if err != nil {
		t.Fatal(err)
	}
	if len(note.Interested) != 1 || note.Interested[0] != 7 || len(note.FalseNegatives) != 0 {
		t.Fatalf("re-joined gateway does not classify: %+v", note)
	}
}

// TestFailLastSubscriptionCrashesGateway covers the abrupt variant: the
// gateway crashes out and the next Repair restores legality.
func TestFailLastSubscriptionCrashesGateway(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.ProcID{1, 2, 3} {
		if err := b.SubscribeExpr(id, fmt.Sprintf("x in [%d, %d]", id*10, id*10+5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Fail(2); err != nil {
		t.Fatal(err)
	}
	if n := b.Engine().Len(); n != 2 {
		t.Fatalf("overlay has %d processes after crash, want 2", n)
	}
	if st := b.Repair(); !st.Converged {
		t.Fatalf("repair did not converge: %v", b.Engine().CheckLegal())
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

// TestEquivalentFilterDedup: subscribers with identical rectangles share
// one match-index entry, and the index shrinks only when the last of
// them leaves.
func TestEquivalentFilterDedup(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(1))
	if err != nil {
		t.Fatal(err)
	}
	// Same rectangle three ways (including predicate-order variants).
	if err := b.SubscribeExpr(1, "x in [0, 10] && y in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "y in [0, 10] && x in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(3, filter.Range("x", 0, 10).And(filter.Range("y", 0, 10))); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(4, "x in [5, 20] && y in [5, 20]"); err != nil {
		t.Fatal(err)
	}
	st := b.GatewayStats()[0]
	if st.Subscribers != 4 || st.UniqueFilters != 2 {
		t.Fatalf("gateway stats %+v, want 4 subscribers over 2 unique filters", st)
	}
	n, err := b.Publish(1, filter.Event{"x": 7, "y": 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := []core.ProcID{1, 2, 3, 4}; len(n.Interested) != 4 ||
		n.Interested[0] != want[0] || n.Interested[3] != want[3] {
		t.Fatalf("Interested = %v, want %v", n.Interested, want)
	}
	if err := b.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(2); err != nil {
		t.Fatal(err)
	}
	st = b.GatewayStats()[0]
	if st.Subscribers != 2 || st.UniqueFilters != 2 {
		t.Fatalf("gateway stats %+v, want 2 subscribers over 2 unique filters", st)
	}
	if err := b.Unsubscribe(3); err != nil {
		t.Fatal(err)
	}
	st = b.GatewayStats()[0]
	if st.UniqueFilters != 1 {
		t.Fatalf("entry must vanish with its last subscriber: %+v", st)
	}
}

// TestGatewayFilterShrinksOnUnsubscribe: dropping the maximal rectangle
// shrinks the gateway's overlay filter to the union of the remaining
// rectangles (the union of the containment order's remaining maximal
// elements).
func TestGatewayFilterShrinksOnUnsubscribe(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(1, "x in [0, 100]"); err != nil { // maximal
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "x in [10, 20]"); err != nil { // contained
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(3, "x in [40, 60]"); err != nil { // contained
		t.Fatal(err)
	}
	wide, _ := b.Space().Rect(filter.Range("x", 0, 100))
	if f, _ := b.Engine().Filter(1); !f.Equal(wide) {
		t.Fatalf("gateway filter %v, want %v", f, wide)
	}
	if err := b.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	want, _ := b.Space().Rect(filter.Range("x", 10, 60))
	if f, _ := b.Engine().Filter(1); !f.Equal(want) {
		t.Fatalf("gateway filter %v did not shrink to %v", f, want)
	}
	// An event in the vacated region no longer reaches the gateway.
	n, err := b.Publish(2, filter.Event{"x": 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Received) != 0 || len(n.Interested) != 0 {
		t.Fatalf("stale union leaked: %+v", n)
	}
}

// hiddenCapEngine narrows an Engine to the bare interface, hiding the
// FilterUpdater capability, to exercise the broker's leave/re-join
// fallback.
type hiddenCapEngine struct{ engine.Engine }

// TestGatewayFallbackWithoutFilterUpdater runs the gateway layer over an
// engine without UpdateFilter: filter moves degrade to leave/re-join but
// classification stays exact.
func TestGatewayFallbackWithoutFilterUpdater(t *testing.T) {
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(filter.MustSpace("x", "y"), hiddenCapEngine{tree}, WithGateways(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 1))
	for i := 1; i <= 40; i++ {
		x, y := rng.Float64()*80, rng.Float64()*80
		f := filter.Range("x", x, x+15).And(filter.Range("y", y, y+15))
		if err := b.Subscribe(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Unsubscribe(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		ev := filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
		n, err := b.Publish(1, ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("false negatives without FilterUpdater: %v", n.FalseNegatives)
		}
	}
}

// flakyJoinEngine hides FilterUpdater (embedding the interface narrows
// the method set) and fails the next failJoins Join calls, to drive the
// leave/re-join fallback into its failure branches.
type flakyJoinEngine struct {
	engine.Engine
	failJoins int
}

func (f *flakyJoinEngine) Join(id core.ProcID, r geom.Rect) error {
	if f.failJoins > 0 {
		f.failJoins--
		return fmt.Errorf("injected join failure")
	}
	return f.Engine.Join(id, r)
}

// TestFallbackFailedMoveKeepsMembershipAccurate: when the leave/re-join
// fallback loses the Join, the broker must not keep believing in an
// overlay membership the engine no longer has. With the old filter
// restorable, existing subscribers keep receiving; with the restore
// failing too, the gateway is marked unjoined and the next Subscribe
// re-joins with a union covering every local subscription.
func TestFallbackFailedMoveKeepsMembershipAccurate(t *testing.T) {
	mk := func(failJoins int) (*Broker, *flakyJoinEngine) {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		fe := &flakyJoinEngine{Engine: tree}
		b, err := New(filter.MustSpace("x"), fe, WithGateways(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
			t.Fatal(err)
		}
		fe.failJoins = failJoins
		return b, fe
	}

	// Restore succeeds: the move fails but subscriber 1 stays served.
	b, _ := mk(1)
	if err := b.SubscribeExpr(2, "x in [50, 60]"); err == nil {
		t.Fatal("failed filter move must surface as an error")
	}
	n, err := b.Publish(1, filter.Event{"x": 5})
	if err != nil {
		t.Fatalf("existing subscriber lost service after a failed move: %v", err)
	}
	if len(n.Interested) != 1 || len(n.FalseNegatives) != 0 {
		t.Fatalf("classification broken after restored move: %+v", n)
	}
	// The next attempt (engine healthy again) succeeds end to end.
	if err := b.SubscribeExpr(2, "x in [50, 60]"); err != nil {
		t.Fatal(err)
	}
	if n, err = b.Publish(2, filter.Event{"x": 55}); err != nil || len(n.Interested) != 1 {
		t.Fatalf("post-recovery publish: %+v, %v", n, err)
	}

	// Restore fails too: the gateway is out of the overlay and the broker
	// must know it — the next publish lazily re-joins it (the engine has
	// healed by then) so subscriber 1 keeps being served instead of
	// silently missing every event, and a later Subscribe keeps the
	// union covering ALL local rects.
	b, _ = mk(2)
	if err := b.SubscribeExpr(2, "x in [50, 60]"); err == nil {
		t.Fatal("failed filter move must surface as an error")
	}
	if b.Engine().Len() != 0 {
		t.Fatalf("engine population %d after double join failure, want 0", b.Engine().Len())
	}
	n, err = b.Publish(1, filter.Event{"x": 5})
	if err != nil {
		t.Fatalf("publish must lazily re-join the stranded gateway, got %v", err)
	}
	if len(n.Interested) != 1 || n.Interested[0] != 1 || len(n.FalseNegatives) != 0 {
		t.Fatalf("subscriber 1 not served after lazy re-join: %+v", n)
	}
	if b.Engine().Len() != 1 {
		t.Fatalf("engine population %d after lazy re-join, want 1", b.Engine().Len())
	}
	if err := b.SubscribeExpr(3, "x in [90, 95]"); err != nil {
		t.Fatal(err)
	}
	f, ok := b.Engine().Filter(1)
	want, _ := b.Space().Rect(filter.Range("x", 0, 95))
	if !ok || !f.Equal(want) {
		t.Fatalf("re-join filter %v (ok=%v), want the full local union %v", f, ok, want)
	}
	n, err = b.Publish(1, filter.Event{"x": 5})
	if err != nil || len(n.Interested) != 1 || n.Interested[0] != 1 || len(n.FalseNegatives) != 0 {
		t.Fatalf("subscriber 1 not served after gateway re-join: %+v, %v", n, err)
	}
}

// TestGatewaysOverWireEngine drives the gateway layer over the wire
// protocol: subscriptions spread over few gateways, filter updates ride
// FILTER_UPDATE messages, and after Repair classification is exact.
func TestGatewaysOverWireEngine(t *testing.T) {
	cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(filter.MustSpace("x", "y"), cl, WithGateways(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 2))
	for i := 1; i <= 60; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		f := filter.Range("x", x, x+12).And(filter.Range("y", y, y+12))
		if err := b.Subscribe(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Repair(); !st.Converged {
		t.Fatalf("wire gateway overlay did not stabilize: %v", b.Engine().CheckLegal())
	}
	if n := b.Engine().Len(); n != 4 {
		t.Fatalf("overlay has %d processes, want 4 gateways", n)
	}
	for k := 0; k < 25; k++ {
		ev := filter.Event{"x": rng.Float64() * 110, "y": rng.Float64() * 110}
		n, err := b.Publish(core.ProcID(1+rng.IntN(60)), ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("probe %d: false negatives over the wire: %v", k, n.FalseNegatives)
		}
	}
	// Churn: drop a batch of subscribers (shrinking several gateways),
	// re-stabilize, and re-certify.
	for i := 1; i <= 20; i++ {
		if err := b.Unsubscribe(core.ProcID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Repair(); !st.Converged {
		t.Fatalf("wire overlay did not restabilize after churn: %v", b.Engine().CheckLegal())
	}
	for k := 0; k < 25; k++ {
		ev := filter.Event{"x": rng.Float64() * 110, "y": rng.Float64() * 110}
		n, err := b.Publish(core.ProcID(21+rng.IntN(40)), ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("post-churn probe %d: false negatives: %v", k, n.FalseNegatives)
		}
	}
}

// TestWithGatewaysValidation covers the option's error path.
func TestWithGatewaysValidation(t *testing.T) {
	if _, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(0)); err == nil {
		t.Error("gateway count 0 must be rejected")
	}
}

// TestClassificationMatchesLinearScan cross-checks the gateway R-tree
// classification against a naive scan over every subscriber on random
// workloads — the sublinear path must be observably identical to the
// linear scan it replaced.
func TestClassificationMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 7))
	b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(5))
	if err != nil {
		t.Fatal(err)
	}
	subs := map[core.ProcID]filter.Filter{}
	for i := 1; i <= 150; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		var f filter.Filter
		if i%10 == 0 {
			f = filter.Range("x", x, x) // degenerate: exact-value filter
		} else {
			f = filter.Range("x", x, x+rng.Float64()*25).And(filter.Range("y", y, y+rng.Float64()*25))
		}
		if err := b.Subscribe(core.ProcID(i), f); err != nil {
			t.Fatal(err)
		}
		subs[core.ProcID(i)] = f
	}
	for k := 0; k < 40; k++ {
		ev := filter.Event{"x": rng.Float64() * 110, "y": rng.Float64() * 110}
		n, err := b.Publish(1, ev)
		if err != nil {
			t.Fatal(err)
		}
		var want []core.ProcID
		for id, f := range subs {
			if f.Match(ev) {
				want = append(want, id)
			}
		}
		if len(want) != len(n.Interested) {
			t.Fatalf("probe %d: Interested %v, linear scan %v", k, n.Interested, want)
		}
		got := map[core.ProcID]bool{}
		for _, id := range n.Interested {
			got[id] = true
		}
		for _, id := range want {
			if !got[id] {
				t.Fatalf("probe %d: linear scan found %d, gateway index missed it", k, id)
			}
		}
		if len(n.FalseNegatives) != 0 {
			t.Fatalf("probe %d: false negatives %v", k, n.FalseNegatives)
		}
	}
}
