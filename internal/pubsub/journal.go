package pubsub

// The broker's durability layer over state.Store: Subscribe,
// Unsubscribe and UpdateFilter journal one record each; Checkpoint
// snapshots the whole subscription table and compacts the log; Recover
// rebuilds a fresh broker from snapshot + suffix.
//
// Records carry the subscriber ID and the *exact* predicate list —
// attribute, operator, and the raw float64 bits of the constant — via
// the internal/wire primitives. Filter.String() is deliberately not
// used: its %.4f rendering is lossy, and a recovered filter must
// compile to bit-identically the same rectangle as the original or the
// zero-false-negative guarantee dies on round-trip. Gateway unions are
// not journaled at all: Recover replays subscriptions through the
// normal Subscribe path against a fresh engine, which re-derives every
// gateway's MBR-union from scratch — the union is a pure function of
// the live subscription set, and rebuilding it is both simpler and
// tighter than trusting whatever (possibly loosened-by-failure) union
// the previous incarnation carried.
//
// Record layout (inside a state.Store record, which adds its own
// framing, CRC and seq):
//
//	version(1) op(1) id(varint) [npreds(uvarint) {attr(string) op(1) value(f64)}...]
//
// The predicate list is present for subscribe and update, absent for
// unsubscribe. A snapshot blob is version(1) count(uvarint) followed by
// count (id, predicate-list) pairs. The leading version byte is the
// migration hook, independent of the store's on-disk format version.

import (
	"cmp"
	"fmt"
	"slices"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/state"
	"drtree/internal/wire"
)

// DefaultSnapshotEvery is the default checkpoint cadence of a durable
// broker: after this many journaled operations a background
// snapshot+compact bounds both log growth and recovery time.
const DefaultSnapshotEvery = 4096

const (
	journalVersion = byte(1)

	journalSubscribe   = byte(1)
	journalUnsubscribe = byte(2)
	journalUpdate      = byte(3)
)

// journalAppend durably records one subscription operation. No-op on a
// memory-only broker. Called with the owning gateway's lock held, which
// is what orders the journal consistently with the in-memory commit
// order for any single subscriber ID.
func (b *Broker) journalAppend(op byte, id core.ProcID, f filter.Filter) error {
	if b.store == nil {
		return nil
	}
	w := wire.NewWriter(make([]byte, 0, 64))
	w.Byte(journalVersion)
	w.Byte(op)
	w.Varint(int64(id))
	if op != journalUnsubscribe {
		encodeFilter(w, f)
	}
	if err := b.store.Append(w.Bytes()); err != nil {
		return fmt.Errorf("pubsub: journal append: %w", err)
	}
	if b.snapEvery > 0 && b.sinceSnap.Add(1) >= uint64(b.snapEvery) {
		b.checkpointAsync()
	}
	return nil
}

// checkpointAsync runs Checkpoint in the background, one at a time.
func (b *Broker) checkpointAsync() {
	if !b.snapBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer b.snapBusy.Store(false)
		// Best-effort: a failed background checkpoint leaves the log
		// longer than ideal; the next cadence trigger retries.
		_ = b.Checkpoint()
	}()
}

// Checkpoint snapshots the current subscription table into the store
// and compacts the journal. The snapshot is cut under every gateway's
// read lock simultaneously, which excludes all journal appends (they
// run under a gateway write lock), so the blob and the covered log
// prefix describe exactly the same history — no operation can slip
// between the cut and the snapshot's coverage point. No-op on a
// memory-only broker.
func (b *Broker) Checkpoint() error {
	if b.store == nil {
		return nil
	}
	for _, gw := range b.gws {
		gw.mu.RLock()
	}
	w := wire.NewWriter(make([]byte, 0, 1024))
	w.Byte(journalVersion)
	n := 0
	for _, gw := range b.gws {
		n += len(gw.subs)
	}
	w.Uvarint(uint64(n))
	for _, gw := range b.gws {
		for id, sub := range gw.subs {
			w.Varint(int64(id))
			encodeFilter(w, sub.f)
		}
	}
	err := b.store.Snapshot(w.Bytes())
	for _, gw := range b.gws {
		gw.mu.RUnlock()
	}
	if err != nil {
		return fmt.Errorf("pubsub: checkpoint: %w", err)
	}
	b.sinceSnap.Store(0)
	if err := b.store.Compact(); err != nil {
		return fmt.Errorf("pubsub: compact: %w", err)
	}
	return nil
}

// RecoverStats summarizes one Recover pass.
type RecoverStats struct {
	// Snapshot reports whether a snapshot baseline was replayed.
	Snapshot bool
	// Records is the number of journal records replayed after it.
	Records int
	// Subscribers is the size of the rebuilt subscription set.
	Subscribers int
}

// Recover rebuilds the subscription set from the broker's store: the
// snapshot baseline (if any) plus every journaled operation after it,
// re-applied through the normal subscribe path so subscriber shards,
// match-index R-trees and gateway MBR-unions are all re-derived and the
// gateways re-join the overlay. Recovered subscriptions are record-only
// — delivery queues cannot outlive a process — and their owners
// re-attach with AttachFunc/AttachChan. Call on a freshly constructed
// broker (it fails on one that already has subscribers), then Repair to
// drive the overlay to quiescence.
func (b *Broker) Recover() (RecoverStats, error) {
	var st RecoverStats
	if b.store == nil {
		return st, fmt.Errorf("pubsub: Recover needs a broker constructed WithStore")
	}
	if b.Len() != 0 {
		return st, fmt.Errorf("pubsub: Recover on a broker with live subscribers")
	}
	subs := make(map[core.ProcID]filter.Filter)
	err := b.store.Replay(func(e state.Entry) error {
		if e.Snapshot {
			st.Snapshot = true
			return decodeSnapshot(e.Data, subs)
		}
		st.Records++
		return applyJournalRecord(e.Data, subs)
	})
	if err != nil {
		return st, err
	}
	ids := make([]core.ProcID, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b core.ProcID) int { return cmp.Compare(a, b) })
	for _, id := range ids {
		if err := b.subscribe(id, subs[id], nil, false); err != nil {
			return st, fmt.Errorf("pubsub: recovering subscriber %d: %w", id, err)
		}
	}
	st.Subscribers = len(ids)
	// The replayed suffix counts toward the checkpoint cadence: a
	// broker that crashes repeatedly still converges on a snapshot.
	b.sinceSnap.Store(uint64(st.Records))
	return st, nil
}

// encodeFilter appends a filter's exact predicate list.
func encodeFilter(w *wire.Writer, f filter.Filter) {
	preds := f.Predicates()
	w.Uvarint(uint64(len(preds)))
	for _, p := range preds {
		w.String(p.Attr)
		w.Byte(byte(p.Op))
		w.F64(p.Value)
	}
}

// decodeFilter reads a predicate list and rebuilds the filter.
func decodeFilter(r *wire.Reader) filter.Filter {
	n := r.Uvarint()
	if r.Err() != nil {
		return filter.Filter{}
	}
	// Each predicate is at least 1 (attr len) + 1 (op) + 8 (value).
	if n > uint64(r.Remaining())/10 {
		r.Fail(fmt.Errorf("pubsub: journal: %d predicates exceed record", n))
		return filter.Filter{}
	}
	preds := make([]filter.Predicate, n)
	for i := range preds {
		preds[i].Attr = r.String()
		op := filter.Op(r.Byte())
		if r.Err() == nil && (op < filter.OpEq || op > filter.OpGe) {
			r.Fail(fmt.Errorf("pubsub: journal: unknown predicate op %d", op))
		}
		preds[i].Op = op
		preds[i].Value = r.F64()
	}
	if r.Err() != nil {
		return filter.Filter{}
	}
	return filter.New(preds...)
}

// applyJournalRecord folds one journal record into the subscription map.
func applyJournalRecord(rec []byte, subs map[core.ProcID]filter.Filter) error {
	r := wire.NewReader(rec)
	if v := r.Byte(); r.Err() == nil && v != journalVersion {
		return fmt.Errorf("pubsub: journal record version %d, this build reads %d", v, journalVersion)
	}
	op := r.Byte()
	id := core.ProcID(r.Varint())
	switch op {
	case journalSubscribe, journalUpdate:
		f := decodeFilter(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		subs[id] = f
	case journalUnsubscribe:
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		delete(subs, id)
	default:
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		return fmt.Errorf("pubsub: journal record op %d unknown", op)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("pubsub: journal record: %d trailing bytes", r.Remaining())
	}
	return nil
}

// decodeSnapshot folds a snapshot blob into the subscription map.
func decodeSnapshot(blob []byte, subs map[core.ProcID]filter.Filter) error {
	r := wire.NewReader(blob)
	if v := r.Byte(); r.Err() == nil && v != journalVersion {
		return fmt.Errorf("pubsub: snapshot version %d, this build reads %d", v, journalVersion)
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("pubsub: snapshot: %w", err)
	}
	// Each entry is at least id(1) + npreds(1).
	if n > uint64(r.Remaining())/2 {
		return fmt.Errorf("pubsub: snapshot: %d entries exceed blob", n)
	}
	for i := uint64(0); i < n; i++ {
		id := core.ProcID(r.Varint())
		f := decodeFilter(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: snapshot entry %d: %w", i, err)
		}
		subs[id] = f
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("pubsub: snapshot: %d trailing bytes", r.Remaining())
	}
	return nil
}
