package pubsub

// The broker's durability layer over state.Store: Subscribe,
// Unsubscribe and UpdateFilter journal one record each; Checkpoint
// snapshots the whole subscription table and compacts the log; Recover
// rebuilds a fresh broker from snapshot + suffix.
//
// Records carry the subscriber ID and the *exact* predicate list —
// attribute, operator, and the raw float64 bits of the constant — via
// the internal/wire primitives. Filter.String() is deliberately not
// used: its %.4f rendering is lossy, and a recovered filter must
// compile to bit-identically the same rectangle as the original or the
// zero-false-negative guarantee dies on round-trip. Gateway unions are
// not journaled at all: Recover replays subscriptions through the
// normal Subscribe path against a fresh engine, which re-derives every
// gateway's MBR-union from scratch — the union is a pure function of
// the live subscription set, and rebuilding it is both simpler and
// tighter than trusting whatever (possibly loosened-by-failure) union
// the previous incarnation carried.
//
// Record layout (inside a state.Store record, which adds its own
// framing, CRC and seq). Version 2, written by this build:
//
//	subscribe/update: version(2) op(1) id(varint) gwOff(uvarint) npreds(uvarint) {attr(string) op(1) value(f64)}...
//	unsubscribe:      version(2) op(1) id(varint)
//	assign:           version(2) op(1) id(varint) gwOff(uvarint)
//	pool:             version(2) op(1) kind(1) gwOff(uvarint)
//
// gwOff is the owning gateway's stable pool offset; assign records pin
// a subscription that *moved* gateways after registration (a pool split
// or drain), and pool records track adaptive-pool membership (grow /
// retire). Version 1 records (no gateway offsets, no assign/pool ops)
// are still read: their subscriptions recover through fresh placement.
// A version-2 snapshot blob is version(2) poolCount(uvarint) {gwOff}...
// count(uvarint) {id gwOff predicate-list}... — poolCount is 0 for a
// fixed pool, whose shape is configuration, not state. The leading
// version byte is the migration hook, independent of the store's
// on-disk format version.

import (
	"cmp"
	"fmt"
	"slices"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/state"
	"drtree/internal/wire"
)

// DefaultSnapshotEvery is the default checkpoint cadence of a durable
// broker: after this many journaled operations a background
// snapshot+compact bounds both log growth and recovery time.
const DefaultSnapshotEvery = 4096

const (
	journalVersion  = byte(2)
	journalVersion1 = byte(1) // still readable

	journalSubscribe   = byte(1)
	journalUnsubscribe = byte(2)
	journalUpdate      = byte(3)
	journalAssignOp    = byte(4)
	journalPoolOp      = byte(5)

	poolGrow   = byte(1)
	poolRetire = byte(2)
)

// journalAppend durably records one subscription operation. No-op on a
// memory-only broker. Called with the owning gateway's lock held, which
// is what orders the journal consistently with the in-memory commit
// order for any single subscriber ID.
func (b *Broker) journalAppend(op byte, id core.ProcID, f filter.Filter, gwOff int) error {
	if b.store == nil {
		return nil
	}
	w := wire.NewWriter(make([]byte, 0, 64))
	w.Byte(journalVersion)
	w.Byte(op)
	w.Varint(int64(id))
	if op != journalUnsubscribe {
		w.Uvarint(uint64(gwOff))
		encodeFilter(w, f)
	}
	return b.appendRecord(w.Bytes())
}

// journalAssign records that subscriber id now lives on the gateway at
// pool offset gwOff — a move (split/drain), not a new registration.
func (b *Broker) journalAssign(id core.ProcID, gwOff int) error {
	if b.store == nil {
		return nil
	}
	w := wire.NewWriter(make([]byte, 0, 16))
	w.Byte(journalVersion)
	w.Byte(journalAssignOp)
	w.Varint(int64(id))
	w.Uvarint(uint64(gwOff))
	return b.appendRecord(w.Bytes())
}

// journalPoolOp records an adaptive-pool membership change.
func (b *Broker) journalPoolOp(kind byte, gwOff int) error {
	if b.store == nil {
		return nil
	}
	w := wire.NewWriter(make([]byte, 0, 8))
	w.Byte(journalVersion)
	w.Byte(journalPoolOp)
	w.Byte(kind)
	w.Uvarint(uint64(gwOff))
	return b.appendRecord(w.Bytes())
}

// appendRecord writes one framed record and drives the checkpoint
// cadence.
func (b *Broker) appendRecord(rec []byte) error {
	if err := b.store.Append(rec); err != nil {
		return fmt.Errorf("pubsub: journal append: %w", err)
	}
	if b.snapEvery > 0 && b.sinceSnap.Add(1) >= uint64(b.snapEvery) {
		b.checkpointAsync()
	}
	return nil
}

// checkpointAsync runs Checkpoint in the background, one at a time.
func (b *Broker) checkpointAsync() {
	if !b.snapBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer b.snapBusy.Store(false)
		// Best-effort: a failed background checkpoint leaves the log
		// longer than ideal; the next cadence trigger retries.
		_ = b.Checkpoint()
	}()
}

// Checkpoint snapshots the current subscription table (and, for an
// adaptive pool, the pool membership) into the store and compacts the
// journal. The snapshot is cut under the shared pool lock plus every
// gateway's read lock simultaneously, which excludes all journal
// appends (they run under a gateway write lock) and all pool
// reorganizations (they hold the pool lock exclusively), so the blob
// and the covered log prefix describe exactly the same history — no
// operation can slip between the cut and the snapshot's coverage
// point. No-op on a memory-only broker.
func (b *Broker) Checkpoint() error {
	if b.store == nil {
		return nil
	}
	b.poolMu.RLock()
	gws := b.gws
	for _, gw := range gws {
		gw.mu.RLock()
	}
	w := wire.NewWriter(make([]byte, 0, 1024))
	w.Byte(journalVersion)
	if b.policy != nil {
		offs := b.poolOffsetsLocked()
		w.Uvarint(uint64(len(offs)))
		for _, off := range offs {
			w.Uvarint(uint64(off))
		}
	} else {
		w.Uvarint(0)
	}
	n := 0
	for _, gw := range gws {
		n += len(gw.subs)
	}
	w.Uvarint(uint64(n))
	for _, gw := range gws {
		for id, sub := range gw.subs {
			w.Varint(int64(id))
			w.Uvarint(uint64(gw.off))
			encodeFilter(w, sub.f)
		}
	}
	err := b.store.Snapshot(w.Bytes())
	for _, gw := range gws {
		gw.mu.RUnlock()
	}
	b.poolMu.RUnlock()
	if err != nil {
		return fmt.Errorf("pubsub: checkpoint: %w", err)
	}
	b.sinceSnap.Store(0)
	if err := b.store.Compact(); err != nil {
		return fmt.Errorf("pubsub: compact: %w", err)
	}
	return nil
}

// RecoverStats summarizes one Recover pass.
type RecoverStats struct {
	// Snapshot reports whether a snapshot baseline was replayed.
	Snapshot bool
	// Records is the number of journal records replayed after it.
	Records int
	// Subscribers is the size of the rebuilt subscription set.
	Subscribers int
}

// replaySub is one subscription folded out of the log: its filter and
// the pool offset of its last known gateway (-1 when unknown — a
// version-1 record).
type replaySub struct {
	f   filter.Filter
	off int
}

// replayState is the fold target of one Replay pass.
type replayState struct {
	subs map[core.ProcID]replaySub
	// pool is the set of live adaptive-pool offsets (grow minus
	// retire); nil until the log proves the store was written by an
	// adaptive pool (a pool record or a v2 snapshot with offsets).
	pool   map[int]bool
	maxOff int
}

func (st *replayState) poolSet() map[int]bool {
	if st.pool == nil {
		st.pool = make(map[int]bool)
	}
	return st.pool
}

func (st *replayState) noteOff(off int) {
	if off > st.maxOff {
		st.maxOff = off
	}
}

// Recover rebuilds the subscription set from the broker's store: the
// snapshot baseline (if any) plus every journaled operation after it,
// re-applied through the normal subscribe path so subscriber shards,
// match-index R-trees and gateway MBR-unions are all re-derived and the
// gateways re-join the overlay. An adaptive pool first rebuilds its
// pre-crash shape from the journaled pool records, then pins every
// subscription to its journaled gateway, so the recovered assignment is
// the pre-crash assignment, not a re-derived one. Recovered
// subscriptions are record-only — delivery queues cannot outlive a
// process — and their owners re-attach with AttachFunc/AttachChan. Call
// on a freshly constructed broker (it fails on one that already has
// subscribers), then Repair to drive the overlay to quiescence.
func (b *Broker) Recover() (RecoverStats, error) {
	var st RecoverStats
	if b.store == nil {
		return st, fmt.Errorf("pubsub: Recover needs a broker constructed WithStore")
	}
	if b.Len() != 0 {
		return st, fmt.Errorf("pubsub: Recover on a broker with live subscribers")
	}
	rs := replayState{subs: make(map[core.ProcID]replaySub)}
	if b.policy != nil {
		// The initial floor gateways predate any journal record.
		for i := 0; i < b.policy.min; i++ {
			rs.poolSet()[i] = true
			rs.noteOff(i)
		}
	}
	err := b.store.Replay(func(e state.Entry) error {
		if e.Snapshot {
			st.Snapshot = true
			return decodeSnapshot(e.Data, &rs)
		}
		st.Records++
		return applyJournalRecord(e.Data, &rs)
	})
	if err != nil {
		return st, err
	}
	if b.policy != nil {
		b.rebuildPool(&rs)
	}
	ids := make([]core.ProcID, 0, len(rs.subs))
	for id := range rs.subs {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b core.ProcID) int { return cmp.Compare(a, b) })
	for _, id := range ids {
		off := -1
		if b.policy != nil {
			off = rs.subs[id].off
		}
		if err := b.subscribeAt(id, rs.subs[id].f, nil, false, off); err != nil {
			return st, fmt.Errorf("pubsub: recovering subscriber %d: %w", id, err)
		}
	}
	st.Subscribers = len(ids)
	// The replayed suffix counts toward the checkpoint cadence: a
	// broker that crashes repeatedly still converges on a snapshot.
	b.sinceSnap.Store(uint64(st.Records))
	return st, nil
}

// rebuildPool reshapes the virgin adaptive pool to the journaled
// membership before any subscription replays: every journaled offset
// gets an (empty, unjoined) gateway, in offset order.
func (b *Broker) rebuildPool(rs *replayState) {
	offs := make([]int, 0, len(rs.pool))
	for off := range rs.pool {
		offs = append(offs, off)
	}
	slices.Sort(offs)
	b.poolMu.Lock()
	defer b.poolMu.Unlock()
	b.gws = b.gws[:0]
	b.idle = b.idle[:0]
	clear(b.byProc)
	for _, off := range offs {
		gw := b.newGateway(off)
		b.gws = append(b.gws, gw)
		b.byProc[gw.procID] = gw
		b.idle = append(b.idle, gw)
	}
	b.nextOff = max(rs.maxOff+1, b.policy.min)
}

// encodeFilter appends a filter's exact predicate list.
func encodeFilter(w *wire.Writer, f filter.Filter) {
	preds := f.Predicates()
	w.Uvarint(uint64(len(preds)))
	for _, p := range preds {
		w.String(p.Attr)
		w.Byte(byte(p.Op))
		w.F64(p.Value)
	}
}

// decodeFilter reads a predicate list and rebuilds the filter.
func decodeFilter(r *wire.Reader) filter.Filter {
	n := r.Uvarint()
	if r.Err() != nil {
		return filter.Filter{}
	}
	// Each predicate is at least 1 (attr len) + 1 (op) + 8 (value).
	if n > uint64(r.Remaining())/10 {
		r.Fail(fmt.Errorf("pubsub: journal: %d predicates exceed record", n))
		return filter.Filter{}
	}
	preds := make([]filter.Predicate, n)
	for i := range preds {
		preds[i].Attr = r.String()
		op := filter.Op(r.Byte())
		if r.Err() == nil && (op < filter.OpEq || op > filter.OpGe) {
			r.Fail(fmt.Errorf("pubsub: journal: unknown predicate op %d", op))
		}
		preds[i].Op = op
		preds[i].Value = r.F64()
	}
	if r.Err() != nil {
		return filter.Filter{}
	}
	return filter.New(preds...)
}

// applyJournalRecord folds one journal record into the replay state.
func applyJournalRecord(rec []byte, rs *replayState) error {
	r := wire.NewReader(rec)
	v := r.Byte()
	if r.Err() == nil && v != journalVersion && v != journalVersion1 {
		return fmt.Errorf("pubsub: journal record version %d, this build reads %d", v, journalVersion)
	}
	op := r.Byte()
	if op == journalPoolOp {
		kind := r.Byte()
		off := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		switch kind {
		case poolGrow:
			rs.poolSet()[off] = true
			rs.noteOff(off)
		case poolRetire:
			delete(rs.poolSet(), off)
			rs.noteOff(off)
		default:
			return fmt.Errorf("pubsub: journal pool record kind %d unknown", kind)
		}
		if r.Remaining() != 0 {
			return fmt.Errorf("pubsub: journal record: %d trailing bytes", r.Remaining())
		}
		return nil
	}
	id := core.ProcID(r.Varint())
	switch op {
	case journalSubscribe, journalUpdate:
		off := -1
		if v >= journalVersion {
			off = int(r.Uvarint())
		}
		f := decodeFilter(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		if off >= 0 {
			rs.noteOff(off)
		}
		rs.subs[id] = replaySub{f: f, off: off}
	case journalUnsubscribe:
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		delete(rs.subs, id)
	case journalAssignOp:
		off := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		rs.noteOff(off)
		// An assign for an id the fold no longer holds is a harmless
		// stale move record (its subscribe was compacted away after an
		// unsubscribe); placement at recovery handles the rest.
		if s, ok := rs.subs[id]; ok {
			s.off = off
			rs.subs[id] = s
		}
	default:
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: journal record: %w", err)
		}
		return fmt.Errorf("pubsub: journal record op %d unknown", op)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("pubsub: journal record: %d trailing bytes", r.Remaining())
	}
	return nil
}

// decodeSnapshot folds a snapshot blob into the replay state, replacing
// whatever the fold held (a snapshot is a full baseline).
func decodeSnapshot(blob []byte, rs *replayState) error {
	r := wire.NewReader(blob)
	v := r.Byte()
	if r.Err() == nil && v != journalVersion && v != journalVersion1 {
		return fmt.Errorf("pubsub: snapshot version %d, this build reads %d", v, journalVersion)
	}
	clear(rs.subs)
	if v >= journalVersion {
		np := r.Uvarint()
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: snapshot: %w", err)
		}
		if np > uint64(r.Remaining()) {
			return fmt.Errorf("pubsub: snapshot: %d pool offsets exceed blob", np)
		}
		if np > 0 {
			pool := rs.poolSet()
			clear(pool)
			for i := uint64(0); i < np; i++ {
				off := int(r.Uvarint())
				pool[off] = true
				rs.noteOff(off)
			}
		}
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("pubsub: snapshot: %w", err)
	}
	// Each entry is at least id(1) + npreds(1).
	if n > uint64(r.Remaining())/2 {
		return fmt.Errorf("pubsub: snapshot: %d entries exceed blob", n)
	}
	for i := uint64(0); i < n; i++ {
		id := core.ProcID(r.Varint())
		off := -1
		if v >= journalVersion {
			off = int(r.Uvarint())
			rs.noteOff(off)
		}
		f := decodeFilter(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("pubsub: snapshot entry %d: %w", i, err)
		}
		rs.subs[id] = replaySub{f: f, off: off}
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("pubsub: snapshot: %d trailing bytes", r.Remaining())
	}
	return nil
}
