package pubsub

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
	"drtree/internal/proto"
)

func newBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := NewCore(filter.MustSpace("price", "qty"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := NewCore(nil, core.Params{MinFanout: 2, MaxFanout: 4}); err == nil {
		t.Error("nil space must be rejected")
	}
	if _, err := NewCore(filter.MustSpace("a"), core.Params{MinFanout: 0, MaxFanout: 4}); err == nil {
		t.Error("bad params must be rejected")
	}
}

func TestSubscribePublishRoundTrip(t *testing.T) {
	b := newBroker(t)
	if err := b.SubscribeExpr(1, "price in [10, 20] && qty in [1, 5]"); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "price in [15, 30] && qty in [2, 8]"); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(3, "price in [100, 200]"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}

	n, err := b.Publish(1, filter.Event{"price": 16, "qty": 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := []core.ProcID{1, 2}; !reflect.DeepEqual(n.Interested, want) {
		t.Fatalf("Interested = %v, want %v", n.Interested, want)
	}
	if len(n.FalseNegatives) != 0 {
		t.Fatalf("false negatives: %v", n.FalseNegatives)
	}

	// Unmatched event: nobody interested, no false negatives.
	n, err = b.Publish(1, filter.Event{"price": 50, "qty": 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 0 || len(n.FalseNegatives) != 0 {
		t.Fatalf("unexpected: %+v", n)
	}
}

func TestSubscribeErrors(t *testing.T) {
	b := newBroker(t)
	if err := b.SubscribeExpr(1, "bogus ?? 3"); err == nil {
		t.Error("bad expression must error")
	}
	if err := b.SubscribeExpr(1, "other = 3"); err == nil {
		t.Error("attribute outside space must error")
	}
	if err := b.SubscribeExpr(1, "price < 1 && price > 2"); err == nil {
		t.Error("unsatisfiable filter must error")
	}
	if _, err := b.Publish(9, filter.Event{"price": 1, "qty": 1}); err == nil {
		t.Error("unregistered producer must error")
	}
	if err := b.Unsubscribe(9); err == nil {
		t.Error("unknown unsubscribe must error")
	}
	if err := b.Fail(9); err == nil {
		t.Error("unknown fail must error")
	}
}

func TestPublishEventValidation(t *testing.T) {
	b := newBroker(t)
	if err := b.SubscribeExpr(1, "price in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(1, filter.Event{"price": 1}); err == nil {
		t.Error("event missing a space attribute must error")
	}
}

func TestUnsubscribeAndFail(t *testing.T) {
	b := newBroker(t)
	for i := 1; i <= 10; i++ {
		if err := b.SubscribeExpr(core.ProcID(i), "price in [0, 100] && qty in [0, 100]"); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Unsubscribe(4); err != nil {
		t.Fatal(err)
	}
	if err := b.Fail(7); err != nil {
		t.Fatal(err)
	}
	b.Repair()
	if err := b.Engine().CheckLegal(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestStrictPredicateBoundary(t *testing.T) {
	// price < 20 is compiled to the closed rectangle [.., 20]; an event
	// at exactly 20 is delivered (rectangle semantics) but not matched
	// (strict predicate): it must appear as a false positive, never as a
	// false negative.
	b, err := NewCore(filter.MustSpace("price"), core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(1, "price >= 10 && price < 20"); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "price >= 0 && price <= 100"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(2, filter.Event{"price": 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.FalseNegatives) != 0 {
		t.Fatalf("false negatives: %v", n.FalseNegatives)
	}
	if !reflect.DeepEqual(n.Interested, []core.ProcID{2}) {
		t.Fatalf("Interested = %v", n.Interested)
	}
}

func TestPropertyNoFalseNegativesThroughBroker(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		b, err := NewCore(filter.MustSpace("x", "y"), core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			return false
		}
		n := 5 + rng.IntN(30)
		for i := 1; i <= n; i++ {
			x := rng.Float64() * 80
			y := rng.Float64() * 80
			f := filter.Range("x", x, x+rng.Float64()*20).And(filter.Range("y", y, y+rng.Float64()*20))
			if err := b.Subscribe(core.ProcID(i), f); err != nil {
				return false
			}
		}
		for k := 0; k < 10; k++ {
			ev := filter.Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
			producer := core.ProcID(1 + rng.IntN(n))
			note, err := b.Publish(producer, ev)
			if err != nil {
				return false
			}
			if len(note.FalseNegatives) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBrokerOverWireEngine runs the Broker over the message-passing
// cluster: the engine-agnostic front end composed with the wire
// protocol, with a full subscribe/repair/publish/unsubscribe round trip.
func TestBrokerOverWireEngine(t *testing.T) {
	cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	space := filter.MustSpace("price", "qty")
	b, err := New(space, cl)
	if err != nil {
		t.Fatal(err)
	}
	if b.Space() != space || b.Engine() != engine.Engine(cl) {
		t.Fatal("accessors must expose the wired space and engine")
	}
	for i, expr := range []string{
		"price in [0, 100] && qty in [0, 100]",
		"price in [10, 20] && qty in [1, 5]",
		"price in [15, 30] && qty in [2, 8]",
		"price in [50, 90] && qty in [0, 50]",
	} {
		if err := b.SubscribeExpr(core.ProcID(i+1), expr); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Repair(); !st.Converged {
		t.Fatalf("wire overlay did not stabilize: %v", b.Engine().CheckLegal())
	}
	n, err := b.Publish(1, filter.Event{"price": 17, "qty": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.FalseNegatives) != 0 {
		t.Fatalf("false negatives over the wire: %+v", n)
	}
	if len(n.Interested) != 3 {
		t.Fatalf("want subscribers 1, 2, 3 interested, got %+v", n.Interested)
	}
	if err := b.Unsubscribe(2); err != nil {
		t.Fatal(err)
	}
	if st := b.Repair(); !st.Converged {
		t.Fatal("repair after unsubscribe failed")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidatesEngine covers the nil-engine constructor path.
func TestNewValidatesEngine(t *testing.T) {
	if _, err := New(filter.MustSpace("a"), nil); err == nil {
		t.Error("nil engine must be rejected")
	}
}
