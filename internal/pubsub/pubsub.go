// Package pubsub embeds a content-based publish/subscribe system in the
// DR-tree overlay (the paper's overall goal): subscribers register
// predicate filters (package filter), the broker compiles them to
// poly-space rectangles over a fixed attribute Space, organizes them in
// the DR-tree (package core), and routes events with no false negatives
// and few false positives.
package pubsub

import (
	"fmt"
	"sort"

	"drtree/internal/core"
	"drtree/internal/filter"
)

// Broker is the pub/sub front end over one DR-tree overlay. It is not
// safe for concurrent use.
type Broker struct {
	space *filter.Space
	tree  *core.Tree
	subs  map[core.ProcID]filter.Filter
}

// New creates a broker over the given attribute space and DR-tree
// parameters.
func New(space *filter.Space, params core.Params) (*Broker, error) {
	if space == nil {
		return nil, fmt.Errorf("pubsub: nil space")
	}
	tree, err := core.New(params)
	if err != nil {
		return nil, err
	}
	return &Broker{space: space, tree: tree, subs: make(map[core.ProcID]filter.Filter)}, nil
}

// Tree exposes the underlying overlay (for inspection and experiments).
func (b *Broker) Tree() *core.Tree { return b.tree }

// Space returns the broker's attribute space.
func (b *Broker) Space() *filter.Space { return b.space }

// Len returns the number of active subscribers.
func (b *Broker) Len() int { return len(b.subs) }

// Subscribe registers subscriber id with the given filter: the filter is
// compiled to its rectangle and the subscriber joins the overlay.
func (b *Broker) Subscribe(id core.ProcID, f filter.Filter) (core.JoinStats, error) {
	rect, err := b.space.Rect(f)
	if err != nil {
		return core.JoinStats{}, fmt.Errorf("pubsub: compiling filter: %w", err)
	}
	st, err := b.tree.Join(id, rect)
	if err != nil {
		return core.JoinStats{}, err
	}
	b.subs[id] = f
	return st, nil
}

// SubscribeExpr is Subscribe with a textual filter (filter.Parse syntax).
func (b *Broker) SubscribeExpr(id core.ProcID, src string) (core.JoinStats, error) {
	f, err := filter.Parse(src)
	if err != nil {
		return core.JoinStats{}, err
	}
	return b.Subscribe(id, f)
}

// Unsubscribe removes a subscriber via a controlled departure.
func (b *Broker) Unsubscribe(id core.ProcID) error {
	if _, ok := b.subs[id]; !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	if _, err := b.tree.Leave(id); err != nil {
		return err
	}
	delete(b.subs, id)
	return nil
}

// Fail simulates an abrupt subscriber failure; call Repair (or rely on
// the next Repair) to restore the overlay.
func (b *Broker) Fail(id core.ProcID) error {
	if _, ok := b.subs[id]; !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	if err := b.tree.Crash(id); err != nil {
		return err
	}
	delete(b.subs, id)
	return nil
}

// Repair runs the overlay stabilization to a fixpoint.
func (b *Broker) Repair() core.StabStats { return b.tree.Stabilize() }

// Notification is the outcome of publishing one event.
type Notification struct {
	// Interested lists subscribers whose filter exactly matches the
	// event (strict predicate semantics), ascending.
	Interested []core.ProcID
	// Received lists subscribers that physically received the event.
	Received []core.ProcID
	// FalsePositives = received but not interested.
	FalsePositives []core.ProcID
	// FalseNegatives = interested but not received (must always be
	// empty; kept for verification).
	FalseNegatives []core.ProcID
	// Messages is the inter-process message count.
	Messages int
}

// Publish routes an event from the given producer through the overlay.
// The producer must be a subscriber (the paper's model: publishers and
// consumers share the overlay).
func (b *Broker) Publish(producer core.ProcID, ev filter.Event) (Notification, error) {
	if _, ok := b.subs[producer]; !ok {
		return Notification{}, fmt.Errorf("pubsub: producer %d not registered", producer)
	}
	p, err := b.space.Point(ev)
	if err != nil {
		return Notification{}, err
	}
	d, err := b.tree.Publish(producer, p)
	if err != nil {
		return Notification{}, err
	}
	var n Notification
	n.Messages = d.Messages
	n.Received = d.Received
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	for id, f := range b.subs {
		if f.Match(ev) {
			n.Interested = append(n.Interested, id)
			if !got[id] {
				n.FalseNegatives = append(n.FalseNegatives, id)
			}
		} else if got[id] {
			n.FalsePositives = append(n.FalsePositives, id)
		}
	}
	sortIDs(n.Interested)
	sortIDs(n.FalsePositives)
	sortIDs(n.FalseNegatives)
	return n, nil
}

func sortIDs(ids []core.ProcID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
