// Package pubsub embeds a content-based publish/subscribe system in the
// DR-tree overlay (the paper's overall goal): subscribers register
// predicate filters (package filter), the broker compiles them to
// poly-space rectangles over a fixed attribute Space, organizes them in
// a DR-tree engine, and routes events with no false negatives and few
// false positives.
//
// The broker is engine-agnostic: it consumes only the unified
// engine.Engine interface, so the same pub/sub front end runs over the
// sequential tree, the deterministic message-passing cluster (including
// lossy simulated networks), or the goroutine-per-node live cluster.
package pubsub

import (
	"fmt"
	"slices"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
)

// Broker is the pub/sub front end over one DR-tree engine. It is not
// safe for concurrent use.
type Broker struct {
	space *filter.Space
	eng   engine.Engine
	subs  map[core.ProcID]filter.Filter
}

// New creates a broker over the given attribute space and overlay
// engine. The broker owns the engine from then on: subscribers must be
// managed through the broker only.
func New(space *filter.Space, eng engine.Engine) (*Broker, error) {
	if space == nil {
		return nil, fmt.Errorf("pubsub: nil space")
	}
	if eng == nil {
		return nil, fmt.Errorf("pubsub: nil engine")
	}
	return &Broker{space: space, eng: eng, subs: make(map[core.ProcID]filter.Filter)}, nil
}

// NewCore is New over a fresh sequential engine — the common case and
// the previous hardwired behaviour.
func NewCore(space *filter.Space, params core.Params) (*Broker, error) {
	tree, err := core.New(params)
	if err != nil {
		return nil, err
	}
	return New(space, tree)
}

// Engine exposes the underlying overlay engine (for inspection and
// experiments).
func (b *Broker) Engine() engine.Engine { return b.eng }

// Space returns the broker's attribute space.
func (b *Broker) Space() *filter.Space { return b.space }

// Len returns the number of active subscribers.
func (b *Broker) Len() int { return len(b.subs) }

// Subscribe registers subscriber id with the given filter: the filter is
// compiled to its rectangle and the subscriber joins the overlay.
// Message-passing engines may still be routing the join when Subscribe
// returns; Repair drives the overlay to quiescence.
func (b *Broker) Subscribe(id core.ProcID, f filter.Filter) error {
	rect, err := b.space.Rect(f)
	if err != nil {
		return fmt.Errorf("pubsub: compiling filter: %w", err)
	}
	if err := b.eng.Join(id, rect); err != nil {
		return err
	}
	b.subs[id] = f
	return nil
}

// SubscribeExpr is Subscribe with a textual filter (filter.Parse syntax).
func (b *Broker) SubscribeExpr(id core.ProcID, src string) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.Subscribe(id, f)
}

// Unsubscribe removes a subscriber via a controlled departure.
func (b *Broker) Unsubscribe(id core.ProcID) error {
	if _, ok := b.subs[id]; !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	if err := b.eng.Leave(id); err != nil {
		return err
	}
	delete(b.subs, id)
	return nil
}

// Fail simulates an abrupt subscriber failure; call Repair (or rely on
// the next Repair) to restore the overlay.
func (b *Broker) Fail(id core.ProcID) error {
	if _, ok := b.subs[id]; !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	if err := b.eng.Crash(id); err != nil {
		return err
	}
	delete(b.subs, id)
	return nil
}

// Repair runs the overlay stabilization to quiescence.
func (b *Broker) Repair() core.StabReport { return b.eng.Stabilize() }

// Close releases the underlying engine's resources.
func (b *Broker) Close() error { return b.eng.Close() }

// Notification is the outcome of publishing one event.
type Notification struct {
	// Interested lists subscribers whose filter exactly matches the
	// event (strict predicate semantics), ascending.
	Interested []core.ProcID
	// Received lists subscribers that physically received the event.
	Received []core.ProcID
	// FalsePositives = received but not interested.
	FalsePositives []core.ProcID
	// FalseNegatives = interested but not received (must always be
	// empty on a stabilized overlay; kept for verification).
	FalseNegatives []core.ProcID
	// Messages is the inter-process message count.
	Messages int
	// Rounds is the dissemination latency in network rounds
	// (message-passing engines; 0 for the sequential engine).
	Rounds int
}

// Publish routes an event from the given producer through the overlay.
// The producer must be a subscriber (the paper's model: publishers and
// consumers share the overlay).
func (b *Broker) Publish(producer core.ProcID, ev filter.Event) (Notification, error) {
	if _, ok := b.subs[producer]; !ok {
		return Notification{}, fmt.Errorf("pubsub: producer %d not registered", producer)
	}
	p, err := b.space.Point(ev)
	if err != nil {
		return Notification{}, err
	}
	d, err := b.eng.Publish(producer, p)
	if err != nil {
		return Notification{}, err
	}
	var n Notification
	n.Messages = d.Messages
	n.Rounds = d.Rounds
	n.Received = d.Received
	got := make(map[core.ProcID]bool, len(d.Received))
	for _, id := range d.Received {
		got[id] = true
	}
	for id, f := range b.subs {
		if f.Match(ev) {
			n.Interested = append(n.Interested, id)
			if !got[id] {
				n.FalseNegatives = append(n.FalseNegatives, id)
			}
		} else if got[id] {
			n.FalsePositives = append(n.FalsePositives, id)
		}
	}
	slices.Sort(n.Interested)
	slices.Sort(n.FalsePositives)
	slices.Sort(n.FalseNegatives)
	return n, nil
}
