// Package pubsub embeds a content-based publish/subscribe system in the
// DR-tree overlay (the paper's overall goal): subscribers register
// predicate filters (package filter), the broker compiles them to
// poly-space rectangles over a fixed attribute Space, organizes them in
// a DR-tree engine, and routes events with no false negatives and few
// false positives.
//
// The broker is engine-agnostic: it consumes only the unified
// engine.Engine interface, so the same pub/sub front end runs over the
// sequential tree, the deterministic message-passing cluster (including
// lossy simulated networks), or the goroutine-per-node live cluster.
package pubsub

import (
	"fmt"
	"slices"
	"sync"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
)

// shardCount is the number of subscriber-table shards. Sixteen keeps a
// shard's lock essentially uncontended for any realistic publisher count
// while the per-shard maps stay cache-friendly.
const shardCount = 16

// subShard is one slice of the subscriber table with its own lock, so
// subscribe/unsubscribe churn on one shard never blocks match scans or
// churn on the other fifteen.
type subShard struct {
	mu   sync.RWMutex
	subs map[core.ProcID]filter.Filter
}

// Broker is the pub/sub front end over one DR-tree engine. It is safe
// for concurrent use: the subscriber table is sharded by subscriber ID
// under per-shard read/write locks, and overlay-engine calls (which the
// Engine contract does not require to be concurrency-safe) are
// serialized behind a single engine mutex. The expensive per-event work
// — compiling filters and events, and scanning every subscriber to
// classify interest — runs outside the engine mutex, so concurrent
// publishers only serialize on the overlay traversal itself.
type Broker struct {
	space  *filter.Space
	engMu  sync.Mutex // serializes all calls into eng; never taken while holding a shard lock
	eng    engine.Engine
	shards [shardCount]subShard
}

// New creates a broker over the given attribute space and overlay
// engine. The broker owns the engine from then on: subscribers must be
// managed through the broker only.
func New(space *filter.Space, eng engine.Engine) (*Broker, error) {
	if space == nil {
		return nil, fmt.Errorf("pubsub: nil space")
	}
	if eng == nil {
		return nil, fmt.Errorf("pubsub: nil engine")
	}
	b := &Broker{space: space, eng: eng}
	for i := range b.shards {
		b.shards[i].subs = make(map[core.ProcID]filter.Filter)
	}
	return b, nil
}

// NewCore is New over a fresh sequential engine — the common case and
// the previous hardwired behaviour.
func NewCore(space *filter.Space, params core.Params) (*Broker, error) {
	tree, err := core.New(params)
	if err != nil {
		return nil, err
	}
	return New(space, tree)
}

// shard returns the table slice owning subscriber id.
func (b *Broker) shard(id core.ProcID) *subShard {
	return &b.shards[uint64(id)%shardCount]
}

// registered reports whether id is a current subscriber.
func (b *Broker) registered(id core.ProcID) bool {
	sh := b.shard(id)
	sh.mu.RLock()
	_, ok := sh.subs[id]
	sh.mu.RUnlock()
	return ok
}

// Engine exposes the underlying overlay engine (for inspection and
// experiments). Callers must not mutate the engine concurrently with
// broker operations.
func (b *Broker) Engine() engine.Engine { return b.eng }

// Space returns the broker's attribute space.
func (b *Broker) Space() *filter.Space { return b.space }

// Len returns the number of active subscribers.
func (b *Broker) Len() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		n += len(sh.subs)
		sh.mu.RUnlock()
	}
	return n
}

// Subscribe registers subscriber id with the given filter: the filter is
// compiled to its rectangle and the subscriber joins the overlay.
// Message-passing engines may still be routing the join when Subscribe
// returns; Repair drives the overlay to quiescence.
func (b *Broker) Subscribe(id core.ProcID, f filter.Filter) error {
	rect, err := b.space.Rect(f)
	if err != nil {
		return fmt.Errorf("pubsub: compiling filter: %w", err)
	}
	// Engine mutex first, shard lock second (the fixed lock order): the
	// engine join is the authority on duplicate IDs, and the table entry
	// appears only once the overlay accepted the subscriber.
	b.engMu.Lock()
	err = b.eng.Join(id, rect)
	b.engMu.Unlock()
	if err != nil {
		return err
	}
	sh := b.shard(id)
	sh.mu.Lock()
	sh.subs[id] = f
	sh.mu.Unlock()
	return nil
}

// SubscribeExpr is Subscribe with a textual filter (filter.Parse syntax).
func (b *Broker) SubscribeExpr(id core.ProcID, src string) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.Subscribe(id, f)
}

// remove is the shared tail of Unsubscribe and Fail: claim the table
// entry, then detach the subscriber from the overlay via leave. If the
// engine refuses, the claim is rolled back.
func (b *Broker) remove(id core.ProcID, leave func(core.ProcID) error) error {
	sh := b.shard(id)
	sh.mu.Lock()
	f, ok := sh.subs[id]
	if ok {
		delete(sh.subs, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	b.engMu.Lock()
	err := leave(id)
	b.engMu.Unlock()
	if err != nil {
		sh.mu.Lock()
		sh.subs[id] = f
		sh.mu.Unlock()
		return err
	}
	return nil
}

// Unsubscribe removes a subscriber via a controlled departure.
func (b *Broker) Unsubscribe(id core.ProcID) error {
	return b.remove(id, b.eng.Leave)
}

// Fail simulates an abrupt subscriber failure; call Repair (or rely on
// the next Repair) to restore the overlay.
func (b *Broker) Fail(id core.ProcID) error {
	return b.remove(id, b.eng.Crash)
}

// Repair runs the overlay stabilization to quiescence.
func (b *Broker) Repair() core.StabReport {
	b.engMu.Lock()
	defer b.engMu.Unlock()
	return b.eng.Stabilize()
}

// Close releases the underlying engine's resources.
func (b *Broker) Close() error {
	b.engMu.Lock()
	defer b.engMu.Unlock()
	return b.eng.Close()
}

// Notification is the outcome of publishing one event.
type Notification struct {
	// Interested lists subscribers whose filter exactly matches the
	// event (strict predicate semantics), ascending.
	Interested []core.ProcID
	// Received lists subscribers that physically received the event.
	Received []core.ProcID
	// FalsePositives = received but not interested.
	FalsePositives []core.ProcID
	// FalseNegatives = interested but not received (must always be
	// empty on a stabilized overlay; kept for verification). Under
	// concurrent subscriber churn the classification is best-effort: a
	// subscriber joining between overlay routing and the match scan can
	// appear here transiently.
	FalseNegatives []core.ProcID
	// Messages is the inter-process message count.
	Messages int
	// Rounds is the dissemination latency in network rounds
	// (message-passing engines; 0 for the sequential engine).
	Rounds int
}

// Publish routes an event from the given producer through the overlay.
// The producer must be a subscriber (the paper's model: publishers and
// consumers share the overlay). It is PublishBatch with a batch of one.
func (b *Broker) Publish(producer core.ProcID, ev filter.Event) (Notification, error) {
	notes, err := b.PublishBatch(producer, []filter.Event{ev})
	if err != nil {
		return Notification{}, err
	}
	return notes[0], nil
}

// PublishBatch routes a batch of events from the given producer through
// the overlay's batched pipeline (engine.Engine.PublishBatch) and
// returns one Notification per event, index-aligned. The overlay is
// traversed with the whole batch in flight under one engine-mutex
// acquisition, and the subscriber match scan visits each table shard
// once for all events, so the per-event cost falls with the batch size.
func (b *Broker) PublishBatch(producer core.ProcID, evs []filter.Event) ([]Notification, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	if !b.registered(producer) {
		return nil, fmt.Errorf("pubsub: producer %d not registered", producer)
	}
	batch := make([]core.Publication, len(evs))
	for i, ev := range evs {
		p, err := b.space.Point(ev)
		if err != nil {
			return nil, err
		}
		batch[i] = core.Publication{Producer: producer, Event: p}
	}
	b.engMu.Lock()
	ds, err := b.eng.PublishBatch(batch)
	b.engMu.Unlock()
	if err != nil {
		return nil, err
	}
	notes := make([]Notification, len(evs))
	for i := range ds {
		notes[i].Messages = ds[i].Messages
		notes[i].Rounds = ds[i].Rounds
		notes[i].Received = ds[i].Received
	}
	b.classifyBatch(notes, evs)
	return notes, nil
}

// classifyBatch fills the Interested/FalsePositives/FalseNegatives sets
// of each notification from the sharded subscriber table: each shard is
// locked and scanned once, matching every subscriber against every
// event of the batch.
func (b *Broker) classifyBatch(notes []Notification, evs []filter.Event) {
	got := make([]map[core.ProcID]bool, len(notes))
	for k := range notes {
		got[k] = make(map[core.ProcID]bool, len(notes[k].Received))
		for _, id := range notes[k].Received {
			got[k][id] = true
		}
	}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for id, f := range sh.subs {
			for k := range notes {
				if f.Match(evs[k]) {
					notes[k].Interested = append(notes[k].Interested, id)
					if !got[k][id] {
						notes[k].FalseNegatives = append(notes[k].FalseNegatives, id)
					}
				} else if got[k][id] {
					notes[k].FalsePositives = append(notes[k].FalsePositives, id)
				}
			}
		}
		sh.mu.RUnlock()
	}
	for k := range notes {
		slices.Sort(notes[k].Interested)
		slices.Sort(notes[k].FalsePositives)
		slices.Sort(notes[k].FalseNegatives)
	}
}
